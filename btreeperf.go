// Package btreeperf reproduces Johnson & Shasha, "A Framework for the
// Performance Analysis of Concurrent B-tree Algorithms" (PODS 1990), as a
// production-quality Go library. It exposes three layers:
//
//   - A concurrent B⁺-tree (NewTree) safe for any number of goroutines,
//     with the paper's three concurrency-control algorithms — naive lock
//     coupling, optimistic descent, and the Link-type (Lehman–Yao)
//     algorithm — selectable at construction.
//
//   - The paper's analytical framework (NewModel, Analyze, MaxThroughput,
//     rules of thumb): closed-form performance prediction of response
//     times and maximum throughput for a B-tree under a given operation
//     mix, arrival rate, node size and disk-cost model.
//
//   - The validation simulator (RunSim): a process-oriented discrete-event
//     simulation that executes the real algorithms on a real tree in
//     virtual time, reproducing the measurements the analysis predicts.
//
// Quick start with the concurrent tree:
//
//	t := btreeperf.NewTree(64, btreeperf.LinkType)
//	t.Insert(42, 1)
//	v, ok := t.Search(42)
//
// Capacity planning with the analytical model:
//
//	m, _ := btreeperf.NewModel(1_000_000, 128, btreeperf.PaperCosts(5), 0.5, 0.2)
//	lmax, _ := btreeperf.MaxThroughput(btreeperf.Link, m,
//	    btreeperf.Workload{Mix: btreeperf.PaperMix}, 0)
//
// The cmd/ directory ships btmodel (analysis), btsim (simulation) and
// btfigures (regenerate every figure of the paper's evaluation).
package btreeperf

import (
	"btreeperf/internal/cbtree"
	"btreeperf/internal/core"
	"btreeperf/internal/diskbtree"
	"btreeperf/internal/shape"
	"btreeperf/internal/sim"
	"btreeperf/internal/workload"
)

// ---------------------------------------------------------------------------
// Concurrent B⁺-tree.

// Tree is a goroutine-safe concurrent B⁺-tree. See NewTree.
type Tree = cbtree.Tree

// TreeAlgorithm selects the concurrency-control protocol of a Tree.
type TreeAlgorithm = cbtree.Algorithm

// Concurrency-control protocols for NewTree.
const (
	// LockCoupling is Bayer & Schkolnick's naive lock coupling.
	LockCoupling = cbtree.LockCoupling
	// Optimistic is the optimistic-descent protocol.
	Optimistic = cbtree.Optimistic
	// LinkType is the Lehman–Yao right-link protocol (recommended; the
	// paper shows it dominates the others at every concurrency level).
	LinkType = cbtree.LinkType
	// TreeOLC is optimistic lock-coupling: Link-type writers plus
	// version-validated latch-free reads that never touch the lock
	// queues, restarting on conflict with a bounded-retry fallback to
	// the locked path. Best read-side latency under read-heavy load.
	TreeOLC = cbtree.OLC
)

// TreeStats counts a Tree's structural and protocol events.
type TreeStats = cbtree.Stats

// NewTree creates an empty concurrent B⁺-tree whose nodes hold at most
// cap items (cap >= 3) under the given protocol.
func NewTree(cap int, alg TreeAlgorithm) *Tree { return cbtree.New(cap, alg) }

// BulkLoadTree builds a concurrent tree bottom-up from sorted data with a
// target fill factor — far faster than repeated Insert.
func BulkLoadTree(cap int, alg TreeAlgorithm, keys []int64, vals []uint64, fill float64) (*Tree, error) {
	return cbtree.BulkLoad(cap, alg, keys, vals, fill)
}

// ---------------------------------------------------------------------------
// Disk-backed concurrent B⁺-tree.

// DiskTree is a disk-backed concurrent B⁺-tree under the Lehman–Yao
// protocol, with an LRU buffer pool over fixed-size checksummed pages.
// See OpenDiskTree and internal/diskbtree for the concurrency and
// durability contract.
type DiskTree = diskbtree.Tree

// DiskTreeOptions configures OpenDiskTree.
type DiskTreeOptions = diskbtree.Options

// DiskCacheStats reports a DiskTree's buffer-pool effectiveness — the
// measured counterpart of the BufferedCosts analytical model.
type DiskCacheStats = diskbtree.CacheStats

// OpenDiskTree opens (creating if necessary) a disk-backed tree at path.
func OpenDiskTree(path string, opts DiskTreeOptions) (*DiskTree, error) {
	return diskbtree.Open(path, opts)
}

// BulkLoadDiskTree creates a disk-backed tree at path, built bottom-up
// from sorted data with the given fill factor.
func BulkLoadDiskTree(path string, opts DiskTreeOptions, keys []int64, vals []uint64, fill float64) (*DiskTree, error) {
	return diskbtree.BulkLoad(path, opts, keys, vals, fill)
}

// ---------------------------------------------------------------------------
// Analytical framework.

// Algorithm identifies an algorithm in the analytical framework and the
// simulator.
type Algorithm = core.Algorithm

// Analyzable algorithms. TwoPhase (strict two-phase locking of the whole
// descent path) is the extension the paper defers to its full version;
// it lower-bounds the other protocols.
const (
	NLC      = core.NLC
	OD       = core.OD
	Link     = core.Link
	TwoPhase = core.TwoPhase
	OLC      = core.OLC
)

// RecoveryPolicy selects the §7 recovery protocol.
type RecoveryPolicy = core.RecoveryPolicy

// Recovery protocols.
const (
	NoRecovery    = core.NoRecovery
	LeafOnly      = core.LeafOnly
	NaiveRecovery = core.NaiveRecovery
)

// Mix holds operation proportions (q_s, q_i, q_d).
type Mix = workload.Mix

// PaperMix is the paper's operation mix: 30% searches, 50% inserts,
// 20% deletes.
var PaperMix = workload.PaperMix

// CostModel parameterizes node-access costs (root search = 1 time unit).
type CostModel = core.CostModel

// PaperCosts returns the paper's cost model with disk-cost multiplier d.
func PaperCosts(d float64) CostModel { return core.PaperCosts(d) }

// Model bundles a tree shape with a cost model.
type Model = core.Model

// Workload is an offered load: arrival rate λ plus operation mix.
type Workload = core.Workload

// Result is a solved analytical operating point.
type Result = core.Result

// LevelResult is one level's solved lock queue.
type LevelResult = core.LevelResult

// ODOptions extends the Optimistic Descent analysis with recovery.
type ODOptions = core.ODOptions

// TreeShape is the analytical B-tree shape model (heights, fanouts, split
// probabilities) of Johnson & Shasha [9,10].
type TreeShape = shape.Model

// NewModel derives the analytical model of a merge-at-empty B-tree holding
// items keys in nodes of capacity n under the given insert/delete
// fractions, with the given cost model.
func NewModel(items, n int, costs CostModel, qi, qd float64) (Model, error) {
	s, err := shape.New(items, n, qi, qd)
	if err != nil {
		return Model{}, err
	}
	return Model{Shape: s, Costs: costs}, nil
}

// NewModelWithHeight forces an explicit height and root fanout.
func NewModelWithHeight(height, n int, rootFanout float64, costs CostModel, qi, qd float64) (Model, error) {
	s, err := shape.NewWithHeight(height, n, rootFanout, qi, qd)
	if err != nil {
		return Model{}, err
	}
	return Model{Shape: s, Costs: costs}, nil
}

// BufferedCosts replaces the sharp "top levels in memory" assumption with
// an LRU buffer pool of bufferNodes frames, deriving per-level miss
// probabilities from the tree shape — the "LRU buffering" extension the
// paper defers to its full version (§8).
func BufferedCosts(s *TreeShape, bufferNodes float64, base CostModel) (CostModel, error) {
	return core.BufferedCosts(s, bufferNodes, base)
}

// ExpectedHitRatio returns a cost model's buffer hit ratio for a uniform
// search workload over the given shape.
func ExpectedHitRatio(s *TreeShape, c CostModel) float64 {
	return core.ExpectedHitRatio(s, c)
}

// Analyze predicts response times and per-level queue behavior for an
// algorithm under a workload.
func Analyze(a Algorithm, m Model, w Workload) (*Result, error) { return core.Analyze(a, m, w) }

// AnalyzeOD is Analyze for Optimistic Descent with recovery options.
func AnalyzeOD(m Model, w Workload, opts ODOptions) (*Result, error) {
	return core.AnalyzeOD(m, w, opts)
}

// MaxThroughput returns the largest sustainable arrival rate (rtol <= 0
// uses a 1e-4 relative tolerance).
func MaxThroughput(a Algorithm, m Model, mix Workload, rtol float64) (float64, error) {
	return core.MaxThroughput(a, m, mix, rtol)
}

// EffectiveMaxThroughput returns the arrival rate at which the root's
// writer presence reaches target (the paper uses 0.5).
func EffectiveMaxThroughput(a Algorithm, m Model, mix Workload, target, rtol float64) (float64, error) {
	return core.EffectiveMaxThroughput(a, m, mix, target, rtol)
}

// Rules of thumb (§6): closed-form approximations of the effective maximum
// arrival rate λ_{ρ=.5}.
var (
	RuleOfThumb1 = core.RuleOfThumb1 // Naive Lock-coupling
	RuleOfThumb2 = core.RuleOfThumb2 // Naive Lock-coupling, large-node limit
	RuleOfThumb3 = core.RuleOfThumb3 // Optimistic Descent
	RuleOfThumb4 = core.RuleOfThumb4 // Optimistic Descent, large-node limit
)

// ---------------------------------------------------------------------------
// Simulator.

// SimConfig parameterizes one simulation run.
type SimConfig = sim.Config

// SimResult holds one run's measurements.
type SimResult = sim.Result

// SimReplicated aggregates runs across seeds.
type SimReplicated = sim.Replicated

// PaperSim returns the paper's baseline simulator configuration for an
// algorithm at arrival rate lambda and disk cost d.
func PaperSim(a Algorithm, lambda, d float64) SimConfig { return sim.Paper(a, lambda, d) }

// RunSim executes one simulation.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// RunSimSeeds executes one simulation per seed and aggregates.
func RunSimSeeds(cfg SimConfig, seeds []uint64) (*SimReplicated, error) {
	return sim.RunSeeds(cfg, seeds)
}

// SimSeeds returns n sequential seeds starting at 1.
func SimSeeds(n int) []uint64 { return sim.DefaultSeeds(n) }
