package btreeperf_test

import (
	"fmt"

	"btreeperf"
)

// ExampleNewTree shows the concurrent B⁺-tree under the Lehman–Yao
// protocol.
func ExampleNewTree() {
	tree := btreeperf.NewTree(64, btreeperf.LinkType)
	tree.Insert(42, 4200)
	tree.Insert(7, 700)
	v, ok := tree.Search(42)
	fmt.Println(v, ok)
	tree.Range(0, 100, func(k int64, v uint64) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 4200 true
	// 7 700
	// 42 4200
}

// ExampleAnalyze predicts the paper's headline comparison: the maximum
// sustainable throughput of each concurrency-control algorithm on the
// paper's baseline tree (N=13, 40k keys, disk cost 5).
func ExampleAnalyze() {
	m, _ := btreeperf.NewModel(40000, 13, btreeperf.PaperCosts(5), 0.5, 0.2)
	w := btreeperf.Workload{Mix: btreeperf.PaperMix}
	for _, alg := range []btreeperf.Algorithm{
		btreeperf.TwoPhase, btreeperf.NLC, btreeperf.OD,
	} {
		lmax, _ := btreeperf.MaxThroughput(alg, m, w, 1e-4)
		fmt.Printf("%v %.2f\n", alg, lmax)
	}
	// Output:
	// two-phase-locking 0.04
	// naive-lock-coupling 0.62
	// optimistic-descent 4.03
}

// ExampleRuleOfThumb2 evaluates the paper's simplest design formula: the
// effective maximum arrival rate of Naive Lock-coupling in the large-node
// limit depends only on the root search cost and the search fraction.
func ExampleRuleOfThumb2() {
	m, _ := btreeperf.NewModel(40000, 13, btreeperf.PaperCosts(5), 0.5, 0.2)
	r2, _ := btreeperf.RuleOfThumb2(m, btreeperf.Workload{Mix: btreeperf.PaperMix})
	fmt.Printf("%.3f\n", r2)
	// Output:
	// 0.598
}

// ExampleBulkLoadTree builds a tree from sorted data bottom-up.
func ExampleBulkLoadTree() {
	keys := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	vals := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	tree, _ := btreeperf.BulkLoadTree(4, btreeperf.LinkType, keys, vals, 0.9)
	v, ok := tree.Search(5)
	fmt.Println(tree.Len(), v, ok)
	// Output:
	// 8 50 true
}
