package btreeperf_test

import (
	"sync"
	"testing"

	"btreeperf"
)

func TestFacadeConcurrentTree(t *testing.T) {
	tr := btreeperf.NewTree(32, btreeperf.LinkType)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := int64(i*4 + w)
				tr.Insert(k, uint64(k))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 4000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Search(1234); !ok || v != 1234 {
		t.Fatalf("Search = %d,%v", v, ok)
	}
	n := 0
	tr.Range(0, 3999, func(int64, uint64) bool { n++; return true })
	if n != 4000 {
		t.Fatalf("Range saw %d", n)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	m, err := btreeperf.NewModel(40000, 13, btreeperf.PaperCosts(5), 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := btreeperf.Analyze(btreeperf.NLC, m,
		btreeperf.Workload{Lambda: 0.1, Mix: btreeperf.PaperMix})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable || res.RespSearch <= 0 {
		t.Fatalf("analysis: %+v", res)
	}
	lmax, err := btreeperf.MaxThroughput(btreeperf.Link, m,
		btreeperf.Workload{Mix: btreeperf.PaperMix}, 0)
	if err != nil {
		t.Fatal(err)
	}
	nlcMax, err := btreeperf.MaxThroughput(btreeperf.NLC, m,
		btreeperf.Workload{Mix: btreeperf.PaperMix}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lmax <= nlcMax {
		t.Fatalf("Link max %v should beat NLC max %v", lmax, nlcMax)
	}
	if r1, err := btreeperf.RuleOfThumb1(m, btreeperf.Workload{Mix: btreeperf.PaperMix}); err != nil || r1 <= 0 {
		t.Fatalf("rule of thumb 1: %v, %v", r1, err)
	}
}

func TestFacadeSimulator(t *testing.T) {
	cfg := btreeperf.PaperSim(btreeperf.OD, 0.05, 5)
	cfg.InitialItems = 4000
	cfg.Ops = 1500
	cfg.Warmup = 150
	res, err := btreeperf.RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1500 || res.RespInsert.Mean <= 0 {
		t.Fatalf("sim: %+v", res)
	}
	rep, err := btreeperf.RunSimSeeds(cfg, btreeperf.SimSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("replications: %d", len(rep.Results))
	}
}

func TestFacadeDiskTree(t *testing.T) {
	path := t.TempDir() + "/facade.db"
	tr, err := btreeperf.OpenDiskTree(path, btreeperf.DiskTreeOptions{Cap: 32, CacheNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		if _, err := tr.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok, _ := tr.Search(1234); !ok || v != 1234 {
		t.Fatalf("Search = %d,%v", v, ok)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := btreeperf.OpenDiskTree(path, btreeperf.DiskTreeOptions{Cap: 32, CacheNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != 2000 {
		t.Fatalf("Len after reopen = %d", tr2.Len())
	}

	// Buffer planning APIs.
	m, err := btreeperf.NewModel(100000, 64, btreeperf.PaperCosts(10), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := btreeperf.BufferedCosts(m.Shape, 100, m.Costs)
	if err != nil {
		t.Fatal(err)
	}
	hr := btreeperf.ExpectedHitRatio(m.Shape, costs)
	if hr <= 0 || hr >= 1 {
		t.Fatalf("hit ratio %v", hr)
	}
}

func TestFacadeRecovery(t *testing.T) {
	m, err := btreeperf.NewModelWithHeight(5, 13, 6, btreeperf.PaperCosts(10), 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	w := btreeperf.Workload{Lambda: 0.02, Mix: btreeperf.PaperMix}
	naive, err := btreeperf.AnalyzeOD(m, w, btreeperf.ODOptions{Recovery: btreeperf.NaiveRecovery, TTrans: 100})
	if err != nil {
		t.Fatal(err)
	}
	none, err := btreeperf.AnalyzeOD(m, w, btreeperf.ODOptions{Recovery: btreeperf.NoRecovery})
	if err != nil {
		t.Fatal(err)
	}
	if naive.RespInsert <= none.RespInsert {
		t.Fatalf("naive %v should exceed none %v", naive.RespInsert, none.RespInsert)
	}
}
