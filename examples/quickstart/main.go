// Quickstart: a goroutine-safe B⁺-tree with the Lehman–Yao (Link-type)
// protocol — the algorithm the paper shows dominating at every concurrency
// level. Eight goroutines hammer the tree while a scanner watches a stable
// key range.
package main

import (
	"fmt"
	"sync"

	"btreeperf"
)

func main() {
	tree := btreeperf.NewTree(64, btreeperf.LinkType)

	// A stable range of even keys that the writers never touch.
	for k := int64(0); k < 10_000; k += 2 {
		tree.Insert(k, uint64(k*10))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns the odd keys congruent to its index.
			for i := 0; i < 20_000; i++ {
				k := int64(i*16+2*w) + 1
				tree.Insert(k, uint64(k))
				if i%3 == 0 {
					tree.Delete(k)
				}
			}
		}(w)
	}

	// Concurrent scans see every even key exactly once, in order.
	scans := 0
	for scans < 20 {
		count := 0
		tree.Range(0, 9_999, func(k int64, v uint64) bool {
			if k%2 == 0 {
				count++
			}
			return true
		})
		if count != 5_000 {
			panic(fmt.Sprintf("scan saw %d even keys, want 5000", count))
		}
		scans++
	}
	wg.Wait()

	v, ok := tree.Search(4242)
	fmt.Printf("tree holds %d keys at height %d\n", tree.Len(), tree.Height())
	fmt.Printf("Search(4242) = %d, %v\n", v, ok)
	st := tree.Stats()
	fmt.Printf("splits=%d link-crossings=%d (crossings are rare, as the paper predicts)\n",
		st.Splits, st.Crossings)
}
