// Recovery-protocol comparison (§7 of the paper): a database manager that
// holds a transaction's exclusive locks until commit must decide whether
// that discipline applies to B-tree index nodes too. The paper's answer:
// holding every index W lock (Naive recovery) cripples throughput, while
// holding only the leaf locks (Leaf-only) costs almost nothing — so index
// locking deserves its own protocol.
//
// This example reproduces the comparison with the analytical model and
// spot-checks one operating point with the simulator.
package main

import (
	"fmt"

	"btreeperf"
)

func main() {
	const ttrans = 100 // expected residual transaction time (time units)
	m, err := btreeperf.NewModelWithHeight(5, 13, 6, btreeperf.PaperCosts(10), 0.5, 0.2)
	if err != nil {
		panic(err)
	}
	mix := btreeperf.Workload{Mix: btreeperf.PaperMix}

	protocols := []struct {
		name string
		opts btreeperf.ODOptions
	}{
		{"no recovery", btreeperf.ODOptions{Recovery: btreeperf.NoRecovery}},
		{"leaf-only", btreeperf.ODOptions{Recovery: btreeperf.LeafOnly, TTrans: ttrans}},
		{"naive", btreeperf.ODOptions{Recovery: btreeperf.NaiveRecovery, TTrans: ttrans}},
	}

	fmt.Println("Optimistic Descent, disk cost 10, T_trans =", ttrans)
	fmt.Println("\nprotocol      insert response at λ")
	fmt.Println("              0.005    0.010    0.020    0.040")
	for _, p := range protocols {
		fmt.Printf("%-12s", p.name)
		for _, lambda := range []float64{0.005, 0.01, 0.02, 0.04} {
			res, err := btreeperf.AnalyzeOD(m, btreeperf.Workload{Lambda: lambda, Mix: mix.Mix}, p.opts)
			if err != nil {
				panic(err)
			}
			if res.Stable {
				fmt.Printf("  %7.2f", res.RespInsert)
			} else {
				fmt.Printf("  %7s", "sat.")
			}
		}
		fmt.Println()
	}

	// Simulator spot check at λ=0.02.
	fmt.Println("\nsimulator spot check at λ=0.02 (insert response, 2 seeds):")
	for _, p := range protocols {
		cfg := btreeperf.PaperSim(btreeperf.OD, 0.02, 10)
		cfg.Recovery = p.opts.Recovery
		cfg.TTrans = p.opts.TTrans
		cfg.Ops = 4000
		cfg.Warmup = 400
		rep, err := btreeperf.RunSimSeeds(cfg, btreeperf.SimSeeds(2))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s  %7.2f ± %.2f\n", p.name, rep.RespInsert.Mean, rep.RespInsert.CI95)
	}

	fmt.Println("\nconclusion: leaf-only recovery tracks the no-recovery curve;")
	fmt.Println("naive recovery pays for held ancestor locks — use a separate")
	fmt.Println("protocol for index locks.")
}
