// Node-size tuning with the §6 rules of thumb. The paper's design
// guidance: Naive Lock-coupling's effective maximum throughput is
// independent of node size — and since larger roots take longer to search,
// lock-coupling wants SMALL nodes. Optimistic Descent's effective maximum
// grows like N/log²N — it wants the LARGEST nodes available.
//
// This example sweeps the node size and prints both the closed-form rules
// of thumb and the full model, reproducing the shape of Figures 13 and 14.
package main

import (
	"fmt"
	"math"

	"btreeperf"
)

func main() {
	mix := btreeperf.Workload{Mix: btreeperf.PaperMix}
	fmt.Println("effective maximum arrival rate λ(ρ_w=.5), in-memory tree (D=1):")
	fmt.Println()
	fmt.Println("node    ---- lock-coupling ----    ---- optimistic descent ----")
	fmt.Println("size    model    rule1    rule2    model    rule3    rule4")

	// Root search cost grows logarithmically with node size (binary
	// search): Se(root) = 1 + log2(N)/log2(13) scaled so N=13 matches the
	// paper's unit.
	for _, n := range []int{7, 13, 29, 59, 101, 201, 401} {
		costs := btreeperf.PaperCosts(1)
		costs.SearchMem = math.Log2(float64(n)) / math.Log2(13)
		m, err := btreeperf.NewModelWithHeight(5, n, 6, costs, 0.5, 0.2)
		if err != nil {
			panic(err)
		}
		nlcModel, err := btreeperf.EffectiveMaxThroughput(btreeperf.NLC, m, mix, 0.5, 0)
		if err != nil {
			panic(err)
		}
		r1, err := btreeperf.RuleOfThumb1(m, mix)
		if err != nil {
			panic(err)
		}
		r2, err := btreeperf.RuleOfThumb2(m, mix)
		if err != nil {
			panic(err)
		}
		odModel, err := btreeperf.EffectiveMaxThroughput(btreeperf.OD, m, mix, 0.5, 0)
		if err != nil {
			panic(err)
		}
		r3, err := btreeperf.RuleOfThumb3(m, mix)
		if err != nil {
			panic(err)
		}
		r4, err := btreeperf.RuleOfThumb4(m, mix)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6d  %-7.3f  %-7.3f  %-7.3f  %-7.2f  %-7.2f  %-7.2f\n",
			n, nlcModel, r1, r2, odModel, r3, r4)
	}

	fmt.Println()
	fmt.Println("reading the table: lock-coupling's ceiling FALLS with node size")
	fmt.Println("(root searches get slower, no compensating gain) while optimistic")
	fmt.Println("descent's ceiling RISES (splits get rarer faster than searches slow).")
	fmt.Println("→ small nodes for lock-coupling, big nodes for optimistic descent.")
}
