// Capacity planning with the analytical framework: an index of 2 million
// keys must sustain a transaction-processing workload (the paper's
// motivating scenario — 1000+ transactions/second, 4–6 record accesses
// each, most through indices). Which concurrency-control algorithm keeps
// up, and what response times should we expect?
//
// Everything here is closed-form analysis — no simulation — so the whole
// what-if sweep runs in milliseconds.
package main

import (
	"fmt"

	"btreeperf"
)

func main() {
	const items = 2_000_000
	const nodeCap = 128
	costs := btreeperf.PaperCosts(5) // disk nodes cost 5× memory nodes
	mix := btreeperf.Mix{QS: 0.3, QI: 0.5, QD: 0.2}

	m, err := btreeperf.NewModel(items, nodeCap, costs, mix.QI, mix.QD)
	if err != nil {
		panic(err)
	}
	fmt.Printf("index: %d keys, node capacity %d → %v\n\n", items, nodeCap, m.Shape)

	fmt.Println("algorithm           max λ     effective λ (ρw=.5)")
	for _, alg := range []btreeperf.Algorithm{btreeperf.NLC, btreeperf.OD, btreeperf.Link} {
		lmax, err := btreeperf.MaxThroughput(alg, m, btreeperf.Workload{Mix: mix}, 0)
		if err != nil {
			panic(err)
		}
		l50, err := btreeperf.EffectiveMaxThroughput(alg, m, btreeperf.Workload{Mix: mix}, 0.5, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-18v  %8.3f  %8.3f\n", alg, lmax, l50)
	}

	// Response-time curves: operations per root-search time unit.
	fmt.Println("\nresponse times (insert) as load rises:")
	fmt.Println("λ        nlc       od        link")
	for _, lambda := range []float64{0.1, 0.3, 0.5, 0.7} {
		fmt.Printf("%-7.2f", lambda)
		for _, alg := range []btreeperf.Algorithm{btreeperf.NLC, btreeperf.OD, btreeperf.Link} {
			res, err := btreeperf.Analyze(alg, m, btreeperf.Workload{Lambda: lambda, Mix: mix})
			if err != nil {
				panic(err)
			}
			if res.Stable {
				fmt.Printf("  %-8.2f", res.RespInsert)
			} else {
				fmt.Printf("  %-8s", "saturated")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nconclusion: the Link-type algorithm sustains loads that saturate")
	fmt.Println("lock coupling outright — adopt Lehman–Yao for high-concurrency indices.")
}
