// Disk-backed index with buffer-pool planning: the Lehman–Yao tree over
// real pages, plus the §8 LRU-buffering analysis to choose the pool size.
//
// The workflow a practitioner would follow:
//  1. predict, from the tree shape alone, how the buffer pool size trades
//     off against throughput (closed form, instant);
//  2. open the disk tree with the chosen pool and verify the predicted
//     hit ratio against the pool's real measurements.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"btreeperf"
)

func main() {
	const items = 50_000
	const nodeCap = 64

	// --- 1. Plan: how big a pool does this index need?
	m, err := btreeperf.NewModel(items, nodeCap, btreeperf.PaperCosts(10), 0.5, 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("planned index: %v\n\n", m.Shape)
	fmt.Println("pool(nodes)  hit-ratio  NLC max λ  Link search resp @λ=1")
	for _, pool := range []float64{8, 64, 512, 4096} {
		costs, err := btreeperf.BufferedCosts(m.Shape, pool, m.Costs)
		if err != nil {
			panic(err)
		}
		bm := btreeperf.Model{Shape: m.Shape, Costs: costs}
		lmax, err := btreeperf.MaxThroughput(btreeperf.NLC, bm,
			btreeperf.Workload{Mix: btreeperf.PaperMix}, 0)
		if err != nil {
			panic(err)
		}
		res, err := btreeperf.Analyze(btreeperf.Link, bm,
			btreeperf.Workload{Lambda: 1, Mix: btreeperf.PaperMix})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-11.0f  %-9.3f  %-9.3f  %.2f\n",
			pool, btreeperf.ExpectedHitRatio(m.Shape, costs), lmax, res.RespSearch)
	}

	// --- 2. Build the real thing and check the prediction.
	dir, err := os.MkdirTemp("", "btreeperf-disk")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.db")

	const pool = 512
	tree, err := btreeperf.OpenDiskTree(path, btreeperf.DiskTreeOptions{Cap: nodeCap, CacheNodes: pool})
	if err != nil {
		panic(err)
	}

	// Load concurrently.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < items; i += 4 {
				if _, err := tree.Insert(int64(i)*7919%1_000_003, uint64(i)); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// A uniform read phase to measure the pool.
	before := tree.CacheStats()
	for i := 0; i < 100_000; i++ {
		if _, _, err := tree.Search(int64(i) * 7919 % 1_000_003); err != nil {
			panic(err)
		}
	}
	after := tree.CacheStats()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	measured := float64(hits) / float64(hits+misses)

	costs, _ := btreeperf.BufferedCosts(m.Shape, pool, m.Costs)
	fmt.Printf("\npool of %d nodes: measured hit ratio %.3f, model predicted %.3f\n",
		pool, measured, btreeperf.ExpectedHitRatio(m.Shape, costs))

	if err := tree.Close(); err != nil {
		panic(err)
	}

	// Reopen to show durability.
	tree2, err := btreeperf.OpenDiskTree(path, btreeperf.DiskTreeOptions{Cap: nodeCap, CacheNodes: pool})
	if err != nil {
		panic(err)
	}
	defer tree2.Close()
	fmt.Printf("reopened: %d keys survive on disk\n", tree2.Len())
}
