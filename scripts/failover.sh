#!/usr/bin/env bash
# Survivable-failover harness: the end-to-end check that no write the
# LEADER acknowledged is ever lost to losing the leader.
#
# Two btserved nodes run on disk engines with semi-synchronous
# replication (-repl-acks 1): the leader acknowledges a mutation only
# after the follower has applied and acked it, so an ack is a promise
# the write exists on both nodes. Each cycle drives the leader with
# `btload -audit` (recording every ACKED write), kill -9s the leader
# mid-load, promotes the follower over POST /promote, and replays the
# whole accumulated audit file against the promoted node: every acked
# write must be present. The loss budget is zero.
#
# Roles then rotate: the promoted node keeps leading the next cycle and
# the killed node rejoins as a follower — its on-disk state carries the
# dead lineage's epoch (plus any unacked writes the new leader never
# saw), so the rejoin exercises the epoch-mismatch path: full snapshot
# resync from the new leader, then tail. The harness waits for the
# rejoined follower to report zero lag before the next kill.
#
#   scripts/failover.sh             # 3 cycles
#   CYCLES=5 scripts/failover.sh
#   SHARDS=4 scripts/failover.sh    # sharded engines, one oplog each
set -euo pipefail

cd "$(dirname "$0")/.."
cycles="${CYCLES:-3}"
shards="${SHARDS:-1}"
bin="$(mktemp -d)"
trap 'kill -9 "${pid_a:-}" "${pid_b:-}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/btserved" ./cmd/btserved
go build -o "$bin/btload" ./cmd/btload

# Fixed per-node addresses; the leader role moves between the nodes.
declare -A listen=([a]=127.0.0.1:9480 [b]=127.0.0.1:9485)
declare -A http=([a]=127.0.0.1:9481 [b]=127.0.0.1:9486)
declare -A repl=([a]=127.0.0.1:9482 [b]=127.0.0.1:9487)
mkdir -p "$bin/a" "$bin/b"
audit="$bin/audit.log"

# At SHARDS>1 btserved treats -path as a directory (one shard-N/tree.db
# under it); at 1 it is the data file itself.
db_path() {
  if [ "$shards" -gt 1 ]; then echo "$bin/$1"; else echo "$bin/$1/tree.db"; fi
}

# start_node NODE [FOLLOW_NODE] — leader when no follow target. Both
# roles pass -repl-listen: a follower's hub listener sits pre-opened
# until promotion. Semi-sync (-repl-acks 1) is what turns the audit's
# acks into cross-node promises.
start_node() {
  local n="$1" followflags=()
  [ $# -gt 1 ] && followflags=(-follow "${repl[$2]}")
  "$bin/btserved" -engine disk -path "$(db_path "$n")" -shards "$shards" -cap 64 \
    -listen "${listen[$n]}" -http "${http[$n]}" -repl-listen "${repl[$n]}" \
    -repl-acks 1 -repl-ack-timeout 10s "${followflags[@]}" \
    >>"$bin/$n.log" 2>&1 &
  eval "pid_$n=\$!"
  disown # kills are deliberate; keep job-control noise out of the report
  local pid; eval "pid=\$pid_$n"
  for _ in $(seq 100); do
    curl -sf "http://${http[$n]}/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$pid" 2>/dev/null || { echo "FAIL: node $n died on startup" >&2; tail "$bin/$n.log" >&2; exit 1; }
    sleep 0.1
  done
  echo "FAIL: node $n never became healthy" >&2; exit 1
}

# wait_caught_up LEADER_NODE — poll the leader's /metrics until its one
# follower is connected with zero sequence lag (covers both initial
# snapshot resync and post-rejoin catch-up).
wait_caught_up() {
  local n="$1"
  for _ in $(seq 600); do
    if curl -sf "http://${http[$n]}/metrics" 2>/dev/null \
        | grep -q 'follower id=.*connected=true.*lag_seqs=0'; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: follower never caught up to leader $n" >&2
  curl -s "http://${http[$n]}/metrics" | grep -E '^replication|^follower' >&2 || true
  tail "$bin/a.log" "$bin/b.log" >&2
  exit 1
}

leader=a; follower=b
start_node "$leader"
start_node "$follower" "$leader"

delays=(0.60 1.10 0.45 0.90 0.75 1.30 0.50 1.00)
failover_times=()

for ((i = 0; i < cycles; i++)); do
  wait_caught_up "$leader"

  "$bin/btload" -addr "${listen[$leader]}" -audit "$audit" \
    -keystart "$((i * 10000000))" -conns 4 -depth 64 -duration 30s \
    >>"$bin/load.log" 2>&1 &
  lpid=$!
  sleep "${delays[$((i % ${#delays[@]}))]}"

  t0=$(date +%s%N)
  eval "kill -9 \$pid_$leader"
  eval "wait \$pid_$leader 2>/dev/null || true"
  wait "$lpid" || { echo "FAIL: btload did not survive the kill (cycle $i)" >&2; tail "$bin/load.log" >&2; exit 1; }

  out="$(curl -sf -X POST "http://${http[$follower]}/promote")" || {
    echo "FAIL: promote refused (cycle $i): $out" >&2
    tail "$bin/$follower.log" >&2
    exit 1
  }
  case "$out" in promoted\ epoch=*) ;; *)
    echo "FAIL: unexpected promote response: $out" >&2; exit 1 ;;
  esac
  # Promoted-and-serving: healthz must report the leader role.
  for _ in $(seq 100); do
    curl -sf "http://${http[$follower]}/healthz" 2>/dev/null | grep -q 'role=leader' && break
    sleep 0.05
  done
  t1=$(date +%s%N)
  failover_times+=("$(((t1 - t0) / 1000000))")

  # Zero-loss check: every write ever acked must live on the promoted
  # node. The -repl-acks 1 barrier is what makes this exact — an acked
  # write was applied by this node before its ack left the old leader.
  "$bin/btload" -addr "${listen[$follower]}" -audit-verify "$audit" \
    -conns 4 -depth 128 >>"$bin/verify.log" 2>&1 || {
    echo "FAIL: acked writes lost across failover (cycle $i)" >&2
    tail "$bin/verify.log" "$bin/$follower.log" >&2
    exit 1
  }

  # Rotate: the killed node rejoins as a follower of the new leader.
  # Its disk still holds the dead lineage (stale epoch, possibly writes
  # the new leader never acked) — the epoch mismatch forces a full
  # snapshot resync, discarding the divergent tail.
  old=$leader; leader=$follower; follower=$old
  start_node "$follower" "$leader"
done

wait_caught_up "$leader"
acked="$(wc -l <"$audit")"
floor="$((cycles * 50))"
[ "$acked" -ge "$floor" ] || {
  echo "FAIL: only $acked acked writes across $cycles cycles (floor $floor) — the harness is not exercising the ack path" >&2
  exit 1
}
# The final leader served the last rejoin, whose stale epoch must have
# forced a snapshot resync — visible on its hub counters.
curl -s "http://${http[$leader]}/metrics" | grep -qE '^replication .*snapshots=[1-9]' || {
  echo "FAIL: no snapshot resync observed — the rejoin path was not exercised" >&2
  curl -s "http://${http[$leader]}/metrics" | grep '^replication' >&2 || true
  exit 1
}

echo "failover: $cycles kill-the-leader cycles at shards=$shards, $acked acked writes, zero lost"
echo "failover: promote-to-serving times (ms): ${failover_times[*]}"
