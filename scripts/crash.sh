#!/usr/bin/env bash
# Acked-durability kill harness: the end-to-end check that no write the
# server acknowledged is ever lost to a crash.
#
# Each cycle starts btserved on the disk engine (recovering whatever the
# previous kill left behind), drives it with `btload -audit` — a
# puts-only workload that appends every ACKNOWLEDGED write to an audit
# file — and kill -9s the server mid-load. btload must absorb the dead
# connections and exit 0. After all cycles a final server runs recovery
# one last time and `btload -audit-verify` replays the audit file as
# gets: every acked write must be present with its recorded value. The
# loss budget is zero.
#
# Mild network chaos (injected latency + resets) runs on the server's
# listener throughout, so the kills land while connections are already
# misbehaving.
#
#   scripts/crash.sh              # 25 cycles, ~45 s
#   CYCLES=5 scripts/crash.sh     # quicker local run
#   SHARDS=4 scripts/crash.sh     # sharded disk engine: one journal per
#                                 # shard, all must replay on recovery
#   CKPT_KILL=1 scripts/crash.sh  # retune the server to checkpoint
#                                 # constantly (low threshold, small
#                                 # chunks) and time each kill into the
#                                 # checkpoint window, so recovery runs
#                                 # against a half-written image / oplog
#                                 # rotation left by a mid-checkpoint
#                                 # death
set -euo pipefail

cd "$(dirname "$0")/.."
cycles="${CYCLES:-25}"
shards="${SHARDS:-1}"
ckptkill="${CKPT_KILL:-0}"
bin="$(mktemp -d)"
trap 'kill -9 "${spid:-}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/btserved" ./cmd/btserved
go build -o "$bin/btload" ./cmd/btload

listen=127.0.0.1:9470
http=127.0.0.1:9471
# At SHARDS>1 btserved treats -path as a directory and lays out one
# shard-N/tree.db under it; at 1 it is the legacy single db file.
if [ "$shards" -gt 1 ]; then db="$bin/db"; else db="$bin/tree.db"; fi
audit="$bin/audit.log"
chaos='latency=50us,preset=0.0005,seed=11'

# start_server [chaos-spec] — no argument serves a clean listener (the
# final verification pass must not have its gets reset mid-replay).
start_server() {
  local chaosflags=() ckptflags=()
  [ $# -gt 0 ] && chaosflags=(-chaos "$1")
  [ "$ckptkill" = 1 ] && ckptflags=(-checkpoint-ops 2000 -checkpoint-chunk 256)
  "$bin/btserved" -engine disk -path "$db" -shards "$shards" -cap 64 \
    -listen "$listen" -http "$http" "${chaosflags[@]}" "${ckptflags[@]}" \
    >>"$bin/serv.log" 2>&1 &
  spid=$!
  for _ in $(seq 100); do
    curl -sf "http://$http/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$spid" 2>/dev/null || { echo "FAIL: btserved died on startup" >&2; tail "$bin/serv.log" >&2; exit 1; }
    sleep 0.1
  done
  echo "FAIL: btserved never became healthy" >&2; exit 1
}

# Deterministic "random-ish" kill delays, cycling so kills land at
# different phases of the load: mid-rampup, steady state, etc.
delays=(0.30 0.70 0.45 1.00 0.25 0.85 0.55 0.40 0.90 0.60)

for ((i = 0; i < cycles; i++)); do
  start_server "$chaos"
  # A disjoint key range per cycle keeps every audited write unique.
  "$bin/btload" -addr "$listen" -audit "$audit" -keystart "$((i * 10000000))" \
    -conns 4 -depth 128 -duration 30s >>"$bin/load.log" 2>&1 &
  lpid=$!
  if [ "$ckptkill" = 1 ]; then
    # Let the load ramp, then kill the instant /metrics shows an
    # incremental checkpoint walk in flight (chunks_done > 0). If no
    # walk shows within the budget (tiny tree in early cycles), the
    # fallback kill still lands near an install: the 2000-mutation
    # threshold keeps checkpoints nearly back-to-back under load.
    sleep 0.15
    for _ in $(seq 150); do
      m="$(curl -sf "http://$http/metrics" 2>/dev/null | grep '^checkpoint ' || true)"
      case "$m" in
      *"chunks_done=0 "*) ;;
      *chunks_done=*) break ;;
      esac
      sleep 0.01
    done
  else
    sleep "${delays[$((i % ${#delays[@]}))]}"
  fi
  kill -9 "$spid"
  wait "$spid" 2>/dev/null || true
  wait "$lpid" || { echo "FAIL: btload did not survive the kill (cycle $i)" >&2; tail "$bin/load.log" >&2; exit 1; }
done

acked="$(wc -l <"$audit")"
floor="$((cycles * 50))"
[ "$acked" -ge "$floor" ] || {
  echo "FAIL: only $acked acked writes across $cycles cycles (floor $floor) — the harness is not exercising the ack path" >&2
  exit 1
}

# Final recovery, then replay the whole audit file. Zero-loss budget.
start_server
grep -q 'ops recovered' "$bin/serv.log" || {
  echo "FAIL: server never reported recovery" >&2; exit 1; }
"$bin/btload" -addr "$listen" -audit-verify "$audit" -conns 4 -depth 128 | tee "$bin/verify.out" || {
  echo "FAIL: acked writes lost after $cycles kill -9 cycles" >&2
  tail "$bin/serv.log" >&2
  exit 1
}

kill -TERM "$spid"
wait "$spid" || { echo "FAIL: final btserved exited nonzero" >&2; exit 1; }

mode="random kills"
[ "$ckptkill" = 1 ] && mode="kills timed into the checkpoint window"
echo "crash: $cycles kill -9 cycles ($mode) at shards=$shards, $acked acked writes, zero lost"
