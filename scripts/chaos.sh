#!/usr/bin/env bash
# Chaos test for the serving path's self-defense: start btserved with
# the internal/faults injector active on its listener (latency, stalls,
# mid-stream resets, truncated frames, dropped accepts), drive it with
# btload in tolerant -chaos mode, and assert that
#
#   1. the server stays healthy: /healthz answers "ok" during and after
#      the storm, and SIGTERM still drains cleanly;
#   2. the client's error budget holds: requests lost to injected
#      connection failures stay under 1% of requests sent.
#
# The storm runs twice: once against the single-engine server and once
# against a 4-shard one, so injected failures land while the router is
# fanning batches across independent engines.
#
#   scripts/chaos.sh            # ~20 s, two server runs
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/btserved" ./cmd/btserved
go build -o "$bin/btload" ./cmd/btload

listen=127.0.0.1:9490
http=127.0.0.1:9491

for shards in 1 4; do
  echo "== chaos storm, shards=$shards =="
  "$bin/btserved" -alg link-type -shards "$shards" -listen "$listen" -http "$http" \
    -prefill 20000 -max-conns 256 -idle-timeout 30s -write-timeout 5s \
    -chaos 'latency=20us,pstall=0.0002,stall=5ms,preset=0.0002,ptrunc=0.0002,pdrop=0.01,seed=11' \
    2>"$bin/serv-$shards.log" &
  spid=$!

  for _ in $(seq 50); do
    curl -sf "http://$http/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done

  "$bin/btload" -addr "$listen" -conns 4 -depth 16 -duration 5s \
    -chaos 'latency=20us,pdrop=0.01,seed=5' | tee "$bin/load-$shards.out" &
  lpid=$!

  # Mid-storm health probe.
  sleep 2
  mid="$(curl -sf "http://$http/healthz" | head -1)"
  [ "$mid" = ok ] || [ "$mid" = degraded ] || {
    echo "FAIL(shards=$shards): /healthz mid-storm said '$mid'" >&2; exit 1; }

  wait "$lpid" || { echo "FAIL(shards=$shards): btload exited nonzero" >&2; exit 1; }

  # Post-storm the server must be fully healthy.
  post="$(curl -sf "http://$http/healthz" | head -1)"
  [ "$post" = ok ] || { echo "FAIL(shards=$shards): /healthz post-storm said '$post'" >&2; exit 1; }

  # Client error budget: lost requests under 1% of sent.
  awk -v shards="$shards" '
    /^[0-9]+ ops in / { ops = $1 }
    /^errors: / { errs = $2; sub(/\(/, "", $3); pct = $3 + 0; found = 1 }
    END {
      if (!found)    { print "FAIL(shards=" shards "): btload printed no error report" > "/dev/stderr"; exit 1 }
      if (ops + 0 == 0) { print "FAIL(shards=" shards "): btload completed no ops" > "/dev/stderr"; exit 1 }
      if (pct >= 1)  { print "FAIL(shards=" shards "): client error rate " pct "% >= 1% budget" > "/dev/stderr"; exit 1 }
      print "ok: " ops " ops through chaos, " errs " lost (" pct "%)"
    }' "$bin/load-$shards.out"

  kill -TERM "$spid"
  wait "$spid" || { echo "FAIL(shards=$shards): btserved exited nonzero after chaos" >&2; exit 1; }
  grep -q drained "$bin/serv-$shards.log" || {
    echo "FAIL(shards=$shards): btserved did not drain cleanly after chaos" >&2; exit 1; }
  grep -q 'chaos injected' "$bin/serv-$shards.log" || {
    echo "FAIL(shards=$shards): server-side injector reported no activity" >&2; exit 1; }
done

echo "chaos: server stayed healthy and drained at shards=1 and shards=4; client error budget held"
