#!/usr/bin/env bash
# Smoke test for the btserved/btload serving path: for each of the three
# concurrency-control algorithms, start a server, push a pipelined burst
# through it with btload, then scrape /metrics and assert the per-level
# telemetry saw the traffic (nonzero arrival rate and a populated rho_w
# column). Exercises the real binaries over loopback TCP, not the test
# harness.
#
#   scripts/smoke.sh            # ~15 s, three server runs
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/btserved" ./cmd/btserved
go build -o "$bin/btload" ./cmd/btload

listen=127.0.0.1:9470
http=127.0.0.1:9471

for alg in lock-coupling optimistic link-type; do
  echo "== $alg =="
  "$bin/btserved" -alg "$alg" -listen "$listen" -http "$http" -prefill 20000 \
    2>"$bin/serv-$alg.log" &
  spid=$!

  # Wait for both listeners to come up.
  for _ in $(seq 50); do
    curl -sf "http://$http/metrics" >/dev/null 2>&1 && break
    sleep 0.2
  done

  "$bin/btload" -addr "$listen" -conns 2 -depth 32 -duration 2s

  metrics="$(curl -sf "http://$http/metrics")"
  echo "$metrics" | grep -E '^level=' || {
    echo "FAIL($alg): /metrics has no per-level telemetry" >&2; exit 1; }

  # The burst is write-heavy (paper mix), so the leaf level must report a
  # nonzero writer arrival rate and a nonzero writer utilization rho_w.
  echo "$metrics" | awk -F'[ =]' '
    /^level=1 / {
      for (i = 1; i < NF; i++) {
        if ($i == "lambda_w") lw = $(i+1)
        if ($i == "rho_w")    rw = $(i+1)
      }
      found = 1
    }
    END {
      if (!found)   { print "FAIL: no level=1 line" > "/dev/stderr"; exit 1 }
      if (lw+0 <= 0) { print "FAIL: leaf lambda_w=" lw " not > 0" > "/dev/stderr"; exit 1 }
      if (rw+0 <= 0) { print "FAIL: leaf rho_w=" rw " not > 0" > "/dev/stderr"; exit 1 }
      print "ok: leaf lambda_w=" lw " rho_w=" rw
    }'
  echo "$metrics" | grep -E '^saturation ' || {
    echo "FAIL($alg): /metrics has no saturation line" >&2; exit 1; }
  curl -sf "http://$http/debug/model" | grep -q 'qmodel evaluated' || {
    echo "FAIL($alg): /debug/model did not evaluate the model" >&2; exit 1; }

  kill -TERM "$spid"
  wait "$spid" || { echo "FAIL($alg): btserved exited nonzero" >&2; exit 1; }
  grep -q drained "$bin/serv-$alg.log" || {
    echo "FAIL($alg): btserved did not drain cleanly" >&2; exit 1; }
done

# Sharded pass: the same burst against a 4-shard server. The merged view
# must still carry the per-level telemetry, and every shard must report
# its own rho_w gauge line — the router spreading traffic across all
# four is what makes the per-shard gauges nonempty.
echo "== link-type -shards=4 =="
"$bin/btserved" -alg link-type -shards 4 -listen "$listen" -http "$http" -prefill 20000 \
  2>"$bin/serv-sharded.log" &
spid=$!
for _ in $(seq 50); do
  curl -sf "http://$http/metrics" >/dev/null 2>&1 && break
  sleep 0.2
done

"$bin/btload" -addr "$listen" -conns 2 -depth 32 -duration 2s

metrics="$(curl -sf "http://$http/metrics")"
echo "$metrics" | grep -E '^level=' >/dev/null || {
  echo "FAIL(sharded): /metrics has no merged per-level telemetry" >&2; exit 1; }
for sh in 0 1 2 3; do
  echo "$metrics" | grep -E "^shard=$sh " >/dev/null || {
    echo "FAIL(sharded): /metrics has no gauge line for shard $sh" >&2; exit 1; }
done
echo "$metrics" | awk -F'[ =]' '
  /^shard=/ {
    for (i = 1; i < NF; i++) if ($i == "rate") r = $(i+1)
    if (r + 0 <= 0) { print "FAIL: shard line with zero rate: " $0 > "/dev/stderr"; exit 1 }
    n++
  }
  END {
    if (n != 4) { print "FAIL: " n " shard gauge lines, want 4" > "/dev/stderr"; exit 1 }
    print "ok: all 4 shards served traffic"
  }'
model="$(curl -sf "http://$http/debug/model")"
echo "$model" | grep -q 'shard 3' || {
  echo "FAIL(sharded): /debug/model has no per-shard sections" >&2; exit 1; }
echo "$model" | grep -q 'aggregate:' || {
  echo "FAIL(sharded): /debug/model has no aggregate verdict" >&2; exit 1; }

kill -TERM "$spid"
wait "$spid" || { echo "FAIL(sharded): btserved exited nonzero" >&2; exit 1; }
grep -q drained "$bin/serv-sharded.log" || {
  echo "FAIL(sharded): btserved did not drain cleanly" >&2; exit 1; }

echo "smoke: all three algorithms plus the 4-shard server served, drained, and reported telemetry"
