#!/usr/bin/env bash
# Smoke test for the btserved/btload serving path: for each of the four
# concurrency-control algorithms, start a server, push a pipelined burst
# through it with btload, then scrape /metrics and assert the per-level
# telemetry saw the traffic (nonzero arrival rate and a populated rho_w
# column). Exercises the real binaries over loopback TCP, not the test
# harness.
#
#   scripts/smoke.sh            # ~20 s, four server runs
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/btserved" ./cmd/btserved
go build -o "$bin/btload" ./cmd/btload
go build -o "$bin/btquery" ./cmd/btquery

listen=127.0.0.1:9470
http=127.0.0.1:9471

for alg in lock-coupling optimistic link-type olc; do
  echo "== $alg =="
  "$bin/btserved" -alg "$alg" -listen "$listen" -http "$http" -prefill 20000 \
    2>"$bin/serv-$alg.log" &
  spid=$!

  # Wait for both listeners to come up.
  for _ in $(seq 50); do
    curl -sf "http://$http/metrics" >/dev/null 2>&1 && break
    sleep 0.2
  done

  "$bin/btload" -addr "$listen" -conns 2 -depth 32 -duration 2s

  metrics="$(curl -sf "http://$http/metrics")"
  echo "$metrics" | grep -E '^level=' || {
    echo "FAIL($alg): /metrics has no per-level telemetry" >&2; exit 1; }

  # The burst is write-heavy (paper mix), so the leaf level must report a
  # nonzero writer arrival rate and a nonzero writer utilization rho_w.
  echo "$metrics" | awk -F'[ =]' '
    /^level=1 / {
      for (i = 1; i < NF; i++) {
        if ($i == "lambda_w") lw = $(i+1)
        if ($i == "rho_w")    rw = $(i+1)
      }
      found = 1
    }
    END {
      if (!found)   { print "FAIL: no level=1 line" > "/dev/stderr"; exit 1 }
      if (lw+0 <= 0) { print "FAIL: leaf lambda_w=" lw " not > 0" > "/dev/stderr"; exit 1 }
      if (rw+0 <= 0) { print "FAIL: leaf rho_w=" rw " not > 0" > "/dev/stderr"; exit 1 }
      print "ok: leaf lambda_w=" lw " rho_w=" rw
    }'
  echo "$metrics" | grep -E '^saturation ' || {
    echo "FAIL($alg): /metrics has no saturation line" >&2; exit 1; }
  # The olc engine must export its latch-free read telemetry.
  if [ "$alg" = olc ]; then
    echo "$metrics" | grep -E '^tree .*read_restarts=' >/dev/null || {
      echo "FAIL(olc): /metrics tree line has no read_restarts counter" >&2; exit 1; }
  fi
  curl -sf "http://$http/debug/model" | grep -q 'qmodel evaluated' || {
    echo "FAIL($alg): /debug/model did not evaluate the model" >&2; exit 1; }

  kill -TERM "$spid"
  wait "$spid" || { echo "FAIL($alg): btserved exited nonzero" >&2; exit 1; }
  grep -q drained "$bin/serv-$alg.log" || {
    echo "FAIL($alg): btserved did not drain cleanly" >&2; exit 1; }
done

# Sharded pass: the same burst against a 4-shard server, with the
# secondary index on and scan traffic in the mix. The merged view must
# still carry the per-level telemetry, and every shard must report its
# own rho_w gauge line — the router spreading traffic across all four is
# what makes the per-shard gauges nonempty.
echo "== link-type -shards=4 -index =="
"$bin/btserved" -alg link-type -shards 4 -index -listen "$listen" -http "$http" -prefill 20000 \
  2>"$bin/serv-sharded.log" &
spid=$!
for _ in $(seq 50); do
  curl -sf "http://$http/metrics" >/dev/null 2>&1 && break
  sleep 0.2
done

"$bin/btload" -addr "$listen" -conns 2 -depth 32 -duration 2s -scenario scan-mixed

# Query path end to end: paged scans with token-following, a seek, and a
# secondary-index lookup, all through btquery against the live server.
# Prefill key i is i*2654435761 with value i, so looking up value 7 must
# return its deterministic primary key.
count_out="$("$bin/btquery" -addr "$listen" -limit 128 count 0 1099511627776)"
echo "$count_out"
keys=$(echo "$count_out" | awk '{print $1}')
pages=$(echo "$count_out" | awk '{print $(NF-1)}')
[ "$keys" -ge 15000 ] || { echo "FAIL(query): full-range count saw $keys keys, want >= 15000" >&2; exit 1; }
[ "$pages" -ge 2 ] || { echo "FAIL(query): count used $pages pages, token paging untested" >&2; exit 1; }
"$bin/btquery" -addr "$listen" seek 0 | grep -Eq '^[0-9]+ [0-9]+$' || {
  echo "FAIL(query): seek 0 found no key" >&2; exit 1; }
"$bin/btquery" -addr "$listen" lookup 7 | grep -q '^18581050327$' || {
  echo "FAIL(query): lookup 7 missing prefill key 18581050327" >&2; exit 1; }

metrics="$(curl -sf "http://$http/metrics")"
echo "$metrics" | grep -E '^level=' >/dev/null || {
  echo "FAIL(sharded): /metrics has no merged per-level telemetry" >&2; exit 1; }
for sh in 0 1 2 3; do
  echo "$metrics" | grep -E "^shard=$sh " >/dev/null || {
    echo "FAIL(sharded): /metrics has no gauge line for shard $sh" >&2; exit 1; }
done
echo "$metrics" | awk -F'[ =]' '
  /^shard=/ {
    for (i = 1; i < NF; i++) if ($i == "rate") r = $(i+1)
    if (r + 0 <= 0) { print "FAIL: shard line with zero rate: " $0 > "/dev/stderr"; exit 1 }
    n++
  }
  END {
    if (n != 4) { print "FAIL: " n " shard gauge lines, want 4" > "/dev/stderr"; exit 1 }
    print "ok: all 4 shards served traffic"
  }'
# The query traffic above (btload scans + btquery) must show up in the
# aggregate query counters, and the index must report itself populated.
echo "$metrics" | grep -E '^query ' || {
  echo "FAIL(sharded): /metrics has no query line" >&2; exit 1; }
echo "$metrics" | awk -F'[ =]' '
  /^query / {
    for (i = 1; i < NF; i++) {
      if ($i == "scan_pages")   sp = $(i+1)
      if ($i == "lookup_pages") lp = $(i+1)
      if ($i == "indexed")      ix = $(i+1)
      if ($i == "index_keys")   ik = $(i+1)
    }
    found = 1
  }
  END {
    if (!found)     { print "FAIL: no query line" > "/dev/stderr"; exit 1 }
    if (sp+0 <= 0)  { print "FAIL: scan_pages=" sp " not > 0" > "/dev/stderr"; exit 1 }
    if (lp+0 <= 0)  { print "FAIL: lookup_pages=" lp " not > 0" > "/dev/stderr"; exit 1 }
    if (ix != "true") { print "FAIL: indexed=" ix ", want true" > "/dev/stderr"; exit 1 }
    if (ik+0 <= 0)  { print "FAIL: index_keys=" ik " not > 0" > "/dev/stderr"; exit 1 }
    print "ok: query counters scan_pages=" sp " lookup_pages=" lp " index_keys=" ik
  }'

model="$(curl -sf "http://$http/debug/model")"
echo "$model" | grep -q 'shard 3' || {
  echo "FAIL(sharded): /debug/model has no per-shard sections" >&2; exit 1; }
echo "$model" | grep -q 'aggregate:' || {
  echo "FAIL(sharded): /debug/model has no aggregate verdict" >&2; exit 1; }

kill -TERM "$spid"
wait "$spid" || { echo "FAIL(sharded): btserved exited nonzero" >&2; exit 1; }
grep -q drained "$bin/serv-sharded.log" || {
  echo "FAIL(sharded): btserved did not drain cleanly" >&2; exit 1; }

echo "smoke: all four algorithms plus the 4-shard indexed server served point and query traffic, drained, and reported telemetry"
