#!/usr/bin/env bash
# Serving-path benchmark baseline: runs the protocol codec, batch
# dispatch, and end-to-end loopback serving benchmarks — including the
# BenchmarkServeLoopbackSharded shard-count sweep (N=1,2,4,8 on the
# mixed depth-128 workload) — and writes the tracked JSON baseline
# (median of -count runs per metric, plus allocs/op and sampled p50/p99
# response times). The sharded sweep uses distinct benchmark names, so
# the N=1 ServeLoopback baseline stays benchstat-comparable across
# runs that predate sharding.
#
#   scripts/bench.sh                 # full baseline, -count=3 (~5 min)
#   scripts/bench.sh -quick          # one short pass, for CI smoke
#
# The raw `go test -bench` text (benchstat-comparable) goes to stdout
# and to $BENCH_RAW if set; the JSON summary goes to
# results/BENCH_serving.json (override with $BENCH_OUT).
set -euo pipefail

cd "$(dirname "$0")/.."

count=3
benchtime=1s
if [[ "${1:-}" == "-quick" ]]; then
  count=1
  benchtime=0.2s
fi
out="${BENCH_OUT:-results/BENCH_serving.json}"
raw="${BENCH_RAW:-$(mktemp)}"

go test ./internal/server -run '^$' \
  -bench 'BenchmarkAppendRequest|BenchmarkAppendResponse|BenchmarkReadRequest|BenchmarkReadResponse|BenchmarkBatchDispatch|BenchmarkServeLoopback|BenchmarkScanLoopback|BenchmarkReplicatedGet' \
  -benchmem -benchtime "$benchtime" -count "$count" | tee "$raw"

go run ./cmd/benchjson \
  -note "scripts/bench.sh: count=$count benchtime=$benchtime; ServeLoopback is a mixed get/put/del pipeline over loopback TCP, client and server in one process, swept over all four algorithms; ServeLoopbackReadHeavy is the 87.5%-get mix head-to-head between link-type and olc (latch-free reads); ServeLoopbackSharded sweeps the hash-routed shard count on the depth-128 mix; ScanLoopback is one paged range-scan request per op (fan-out + k-way merge), keys/op = page fill; ReplicatedGet is one bounded-staleness get through a ReplicaSet against a disk leader plus N oplog-streaming followers, writes quiesced" \
  <"$raw" >"$out"
echo "wrote $out"
