// Package des is a process-oriented discrete-event simulation kernel.
//
// Each simulated process is a goroutine, but exactly one goroutine (either
// the scheduler or a single process) runs at any instant: control is handed
// off explicitly, so simulations are fully deterministic given a seed.
// Virtual time advances only through the event heap.
//
// The kernel provides the two facilities the B-tree simulator needs:
// processes that can sleep for a virtual duration (Proc.Delay) and
// first-come-first-served reader/writer locks in virtual time (RWLock),
// matching the lock queues of Johnson & Shasha's analytical framework.
package des

import (
	"container/heap"
	"fmt"
)

// Environment owns the virtual clock and the event heap. Create one with
// NewEnvironment; it is not safe for use from multiple OS threads except
// through the kernel's own hand-off discipline.
type Environment struct {
	now     float64
	events  eventHeap
	seq     uint64
	yielded chan struct{}
	procs   map[*Proc]struct{}
	killed  bool
	running bool
}

// NewEnvironment returns an empty environment at virtual time 0.
func NewEnvironment() *Environment {
	return &Environment{
		yielded: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (env *Environment) Now() float64 { return env.now }

// Schedule arranges for fn to run in scheduler context at virtual time at
// (>= Now). Events at equal times fire in scheduling order.
func (env *Environment) Schedule(at float64, fn func()) {
	if at < env.now {
		panic(fmt.Sprintf("des: scheduling into the past: %v < %v", at, env.now))
	}
	env.seq++
	heap.Push(&env.events, &event{t: at, seq: env.seq, fn: fn})
}

// Spawn creates a process running fn and schedules its start at the current
// virtual time. fn runs in process context: it may call Delay and block on
// locks. Spawn may be called both before Run and from within running
// processes or events.
func (env *Environment) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    env,
		name:   name,
		resume: make(chan struct{}),
	}
	env.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && r != errKilled {
				panic(r)
			}
			delete(env.procs, p)
			env.yielded <- struct{}{}
		}()
		// A process first resumed by Close/Shutdown (its start event never
		// fired) must unwind immediately instead of running fn: killing an
		// environment must not execute not-yet-started process bodies.
		if env.killed {
			panic(errKilled)
		}
		fn(p)
	}()
	env.Schedule(env.now, func() { env.unpark(p) })
	return p
}

// Run executes events until the heap is empty or until virtual time would
// exceed until (use Run(math.Inf(1)) — or RunAll — to drain). It returns
// the virtual time reached.
func (env *Environment) Run(until float64) float64 {
	if env.running {
		panic("des: Run re-entered")
	}
	env.running = true
	defer func() { env.running = false }()
	for len(env.events) > 0 {
		next := env.events[0]
		if next.t > until {
			env.now = until
			return env.now
		}
		heap.Pop(&env.events)
		env.now = next.t
		next.fn()
	}
	return env.now
}

// RunAll drains every event.
func (env *Environment) RunAll() float64 {
	for len(env.events) > 0 {
		next := heap.Pop(&env.events).(*event)
		env.now = next.t
		next.fn()
	}
	return env.now
}

// Close terminates the environment. Every live process — parked on a
// Delay, waiting on a lock, or spawned but never started — is unwound via
// the kill sentinel so its goroutine exits, and all pending events are
// dropped (a stale event waking a dead process would otherwise block
// forever on its resume channel). Close is idempotent and must be called
// from scheduler context, i.e. not from within a running process. A run
// that terminates early (an unstable abort, an error return) would
// otherwise leak one parked goroutine per abandoned process.
func (env *Environment) Close() {
	env.killed = true
	for len(env.procs) > 0 {
		for p := range env.procs {
			env.unpark(p)
			break // unpark may mutate the map; restart iteration
		}
	}
	env.events = nil
}

// Shutdown terminates all parked processes (their pending Delay/lock waits
// panic internally and the goroutines exit). Call after Run when abandoning
// a simulation early, e.g. when it is detected to be unstable.
//
// Deprecated: use Close, which additionally drops pending events so the
// environment cannot wake dead processes.
func (env *Environment) Shutdown() { env.Close() }

// unpark hands control to p until it parks again or finishes. Must only be
// called from scheduler context (inside an event function).
func (env *Environment) unpark(p *Proc) {
	p.resume <- struct{}{}
	<-env.yielded
}

// Pending returns the number of scheduled events (for tests).
func (env *Environment) Pending() int { return len(env.events) }

// Live returns the number of live processes (for tests and in-flight
// operation accounting).
func (env *Environment) Live() int { return len(env.procs) }

// errKilled is the sentinel panic value used to unwind killed processes.
var errKilled = new(int)

// Proc is a simulated process. Its methods must only be called from the
// process's own goroutine.
type Proc struct {
	env    *Environment
	name   string
	resume chan struct{}
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Environment { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Delay suspends the process for d units of virtual time (d >= 0).
func (p *Proc) Delay(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	p.env.Schedule(p.env.now+d, func() { p.env.unpark(p) })
	p.park()
}

// park suspends the process until something schedules an unpark.
// Exposed to the lock implementation below.
func (p *Proc) park() {
	p.env.yielded <- struct{}{}
	<-p.resume
	if p.env.killed {
		panic(errKilled)
	}
}

// wake schedules the process to resume at the current virtual time.
func (p *Proc) wake() {
	env := p.env
	env.Schedule(env.now, func() { env.unpark(p) })
}

// event heap -----------------------------------------------------------------

type event struct {
	t   float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
