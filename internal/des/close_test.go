package des

import (
	"runtime"
	"testing"
	"time"
)

// TestCloseReleasesGoroutines parks many processes on long delays and lock
// queues, abandons the run early, and asserts Close unwinds every process
// goroutine — the leak the simulator's early-exit paths would otherwise
// accumulate per abandoned Environment.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	for i := 0; i < 50; i++ {
		env.Spawn("sleeper", func(p *Proc) {
			p.Delay(1e9)
		})
		env.Spawn("waiter", func(p *Proc) {
			g := l.Acquire(p, Write)
			p.Delay(1e9)
			l.Release(g)
		})
	}
	env.Run(1) // start everyone; all park far in the future
	if env.Live() != 100 {
		t.Fatalf("Live = %d, want 100", env.Live())
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Live after Close = %d", env.Live())
	}
	if env.Pending() != 0 {
		t.Fatalf("Pending after Close = %d, want 0", env.Pending())
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
}

// TestCloseKillsNeverStarted asserts a process spawned but never started
// (its start event still pending) is unwound without running its body.
func TestCloseKillsNeverStarted(t *testing.T) {
	env := NewEnvironment()
	ran := false
	env.Spawn("unstarted", func(p *Proc) {
		ran = true
	})
	// No Run: the start event never fires.
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Live after Close = %d", env.Live())
	}
	if ran {
		t.Fatal("Close executed a never-started process body")
	}
}

// TestCloseIdempotent closes twice, with a fresh spawn in between killed on
// the second call.
func TestCloseIdempotent(t *testing.T) {
	env := NewEnvironment()
	env.Spawn("a", func(p *Proc) { p.Delay(100) })
	env.Run(1)
	env.Close()
	env.Close()
	if env.Live() != 0 || env.Pending() != 0 {
		t.Fatalf("Live=%d Pending=%d after double Close", env.Live(), env.Pending())
	}
}
