package des

import (
	"fmt"

	"btreeperf/internal/stats"
)

// Class distinguishes shared (reader) from exclusive (writer) lock requests.
type Class int

const (
	// Read requests are shared: any number of readers may hold the lock
	// together.
	Read Class = iota
	// Write requests are exclusive of both readers and writers.
	Write
)

func (c Class) String() string {
	if c == Read {
		return "R"
	}
	return "W"
}

// RWLock is a first-come-first-served reader/writer lock in virtual time —
// the paper's lock queue. Grants are strictly FIFO: a reader arriving
// behind a queued writer waits even though it is compatible with the
// current holders. The lock records the statistics the analytical model
// predicts: per-class waiting and holding times and the time-average
// probability that a writer is present in the system (the paper's ρ_w).
type RWLock struct {
	env     *Environment
	name    string
	readers int
	writer  bool
	queue   []*waiter

	waitR, waitW stats.Welford
	holdR, holdW stats.Welford
	rhoW         stats.TimeWeighted
	queueLen     stats.TimeWeighted
	grantsR      int64
	grantsW      int64
	queuedW      int // writers currently queued (excludes the active writer)
}

type waiter struct {
	p       *Proc
	class   Class
	arrived float64
}

// Grant is a held lock; pass it to RWLock.Release.
type Grant struct {
	lock    *RWLock
	class   Class
	granted float64
}

// Class returns the grant's lock class.
func (g *Grant) Class() Class { return g.class }

// NewRWLock creates a lock bound to env.
func NewRWLock(env *Environment, name string) *RWLock {
	l := &RWLock{env: env, name: name}
	l.rhoW.Set(env.now, 0)
	l.queueLen.Set(env.now, 0)
	return l
}

// Name returns the lock's diagnostic name.
func (l *RWLock) Name() string { return l.name }

// Acquire blocks the calling process until the lock is granted in FCFS
// order and returns the grant.
func (l *RWLock) Acquire(p *Proc, c Class) *Grant {
	arrived := l.env.now
	if c == Write {
		l.noteWriters(+1)
	}
	if l.grantable(c) && len(l.queue) == 0 {
		return l.grant(p, c, arrived)
	}
	w := &waiter{p: p, class: c, arrived: arrived}
	l.queue = append(l.queue, w)
	l.noteQueue()
	p.park()
	// The releaser granted us before waking: record the wait.
	return l.finishGrant(c, arrived)
}

// grantable reports whether a request of class c is compatible with the
// current holders.
func (l *RWLock) grantable(c Class) bool {
	if c == Read {
		return !l.writer
	}
	return !l.writer && l.readers == 0
}

// grant marks the lock held for class c and returns the Grant (immediate
// grant path — no queueing).
func (l *RWLock) grant(p *Proc, c Class, arrived float64) *Grant {
	l.hold(c)
	return l.finishGrant(c, arrived)
}

// hold updates holder state for a newly granted class-c request.
func (l *RWLock) hold(c Class) {
	if c == Read {
		l.readers++
	} else {
		l.writer = true
	}
}

// finishGrant records wait statistics and builds the Grant. The caller (or
// the releaser, for queued requests) has already updated holder state.
func (l *RWLock) finishGrant(c Class, arrived float64) *Grant {
	now := l.env.now
	if c == Read {
		l.waitR.Add(now - arrived)
		l.grantsR++
	} else {
		l.waitW.Add(now - arrived)
		l.grantsW++
	}
	return &Grant{lock: l, class: c, granted: now}
}

// Release returns the lock and hands it to the longest-waiting compatible
// prefix of the queue (one writer, or a run of readers).
func (l *RWLock) Release(g *Grant) {
	if g == nil || g.lock != l {
		panic("des: Release of foreign grant")
	}
	now := l.env.now
	if g.class == Read {
		if l.readers <= 0 {
			panic("des: Release without held read lock")
		}
		l.readers--
		l.holdR.Add(now - g.granted)
	} else {
		if !l.writer {
			panic("des: Release without held write lock")
		}
		l.writer = false
		l.holdW.Add(now - g.granted)
		l.noteWriters(-1)
	}
	l.dispatch()
}

// dispatch grants the head of the queue while compatible: either one
// writer, or consecutive readers up to the first queued writer.
func (l *RWLock) dispatch() {
	for len(l.queue) > 0 {
		head := l.queue[0]
		if !l.grantable(head.class) {
			break
		}
		l.queue = l.queue[1:]
		l.hold(head.class)
		head.p.wake()
		if head.class == Write {
			break
		}
	}
	l.noteQueue()
}

// noteWriters adjusts the queued+active writer count and the ρ_w signal.
func (l *RWLock) noteWriters(d int) {
	l.queuedW += d
	v := 0.0
	if l.queuedW > 0 {
		v = 1
	}
	l.rhoW.Set(l.env.now, v)
}

func (l *RWLock) noteQueue() {
	l.queueLen.Set(l.env.now, float64(len(l.queue)))
}

// LockStats is a snapshot of a lock's measurements.
type LockStats struct {
	Name      string
	GrantsR   int64
	GrantsW   int64
	MeanWaitR float64
	MeanWaitW float64
	MeanHoldR float64
	MeanHoldW float64
	RhoW      float64 // time-average P(writer in system) up to the snapshot time
	QueueLen  float64 // time-average queue length
}

// Snapshot returns the lock's statistics evaluated at virtual time t.
func (l *RWLock) Snapshot(t float64) LockStats {
	return LockStats{
		Name:      l.name,
		GrantsR:   l.grantsR,
		GrantsW:   l.grantsW,
		MeanWaitR: l.waitR.Mean(),
		MeanWaitW: l.waitW.Mean(),
		MeanHoldR: l.holdR.Mean(),
		MeanHoldW: l.holdW.Mean(),
		RhoW:      l.rhoW.Average(t),
		QueueLen:  l.queueLen.Average(t),
	}
}

// WaitWelford exposes the per-class waiting-time accumulators (for merging
// across locks of one tree level).
func (l *RWLock) WaitWelford(c Class) *stats.Welford {
	if c == Read {
		return &l.waitR
	}
	return &l.waitW
}

// Holders returns the current holder state (for tests).
func (l *RWLock) Holders() (readers int, writer bool) { return l.readers, l.writer }

// QueueLen returns the current queue length (for tests).
func (l *RWLock) QueueLen() int { return len(l.queue) }

// String renders a diagnostic summary.
func (l *RWLock) String() string {
	return fmt.Sprintf("RWLock(%s: r=%d w=%v q=%d)", l.name, l.readers, l.writer, len(l.queue))
}
