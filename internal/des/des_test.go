package des

import (
	"math"
	"testing"

	"btreeperf/internal/xrand"
)

func TestDelayAdvancesClock(t *testing.T) {
	env := NewEnvironment()
	var times []float64
	env.Spawn("p", func(p *Proc) {
		p.Delay(5)
		times = append(times, p.Now())
		p.Delay(2.5)
		times = append(times, p.Now())
	})
	env.RunAll()
	if len(times) != 2 || times[0] != 5 || times[1] != 7.5 {
		t.Fatalf("times = %v", times)
	}
	if env.Now() != 7.5 {
		t.Fatalf("final time %v", env.Now())
	}
}

func TestZeroDelay(t *testing.T) {
	env := NewEnvironment()
	ran := false
	env.Spawn("p", func(p *Proc) {
		p.Delay(0)
		ran = true
	})
	env.RunAll()
	if !ran {
		t.Fatal("process with zero delay did not complete")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	env := NewEnvironment()
	var recovered interface{}
	env.Spawn("p", func(p *Proc) {
		defer func() { recovered = recover() }()
		p.Delay(-1)
	})
	env.RunAll()
	if recovered == nil {
		t.Fatal("negative delay did not panic in process")
	}
}

func TestEventOrdering(t *testing.T) {
	env := NewEnvironment()
	var order []int
	env.Schedule(3, func() { order = append(order, 3) })
	env.Schedule(1, func() { order = append(order, 1) })
	env.Schedule(2, func() { order = append(order, 2) })
	env.Schedule(1, func() { order = append(order, 10) }) // same time: FIFO
	env.RunAll()
	want := []int{1, 10, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	env := NewEnvironment()
	env.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		env.Schedule(4, func() {})
	})
	env.RunAll()
}

func TestRunUntilStopsEarly(t *testing.T) {
	env := NewEnvironment()
	fired := 0
	env.Schedule(1, func() { fired++ })
	env.Schedule(10, func() { fired++ })
	got := env.Run(5)
	if fired != 1 || got != 5 {
		t.Fatalf("fired=%d now=%v", fired, got)
	}
	env.RunAll()
	if fired != 2 {
		t.Fatalf("drain fired=%d", fired)
	}
}

func TestInterleavedProcessesDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnvironment()
		var log []string
		for _, d := range []struct {
			name  string
			delay float64
		}{{"a", 2}, {"b", 1}, {"c", 3}, {"d", 1}} {
			d := d
			env.Spawn(d.name, func(p *Proc) {
				p.Delay(d.delay)
				log = append(log, d.name)
				p.Delay(d.delay)
				log = append(log, d.name+"2")
			})
		}
		env.RunAll()
		return log
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("length differs across runs")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, first, again)
			}
		}
	}
	// b and d fire at t=1 in spawn order, then a, then b2/d2 at 2...
	if first[0] != "b" || first[1] != "d" {
		t.Fatalf("log = %v", first)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnvironment()
	done := 0
	env.Spawn("parent", func(p *Proc) {
		p.Delay(1)
		for i := 0; i < 3; i++ {
			env.Spawn("child", func(c *Proc) {
				c.Delay(1)
				done++
			})
		}
	})
	env.RunAll()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if env.Live() != 0 {
		t.Fatalf("%d processes leaked", env.Live())
	}
}

func TestShutdownKillsParked(t *testing.T) {
	env := NewEnvironment()
	reached := false
	env.Spawn("sleeper", func(p *Proc) {
		p.Delay(1e9)
		reached = true
	})
	env.Run(10)
	if env.Live() != 1 {
		t.Fatalf("Live = %d, want 1", env.Live())
	}
	env.Shutdown()
	if env.Live() != 0 {
		t.Fatalf("Live after shutdown = %d", env.Live())
	}
	if reached {
		t.Fatal("killed process ran past its Delay")
	}
}

func TestRWLockSharedReaders(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	concurrent := 0
	maxConcurrent := 0
	for i := 0; i < 5; i++ {
		env.Spawn("r", func(p *Proc) {
			g := l.Acquire(p, Read)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Delay(10)
			concurrent--
			l.Release(g)
		})
	}
	env.RunAll()
	if maxConcurrent != 5 {
		t.Fatalf("max concurrent readers = %d, want 5", maxConcurrent)
	}
}

func TestRWLockWriterExclusive(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	inCritical := 0
	violations := 0
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p *Proc) {
			g := l.Acquire(p, Write)
			inCritical++
			if inCritical > 1 {
				violations++
			}
			p.Delay(3)
			inCritical--
			l.Release(g)
		})
	}
	env.RunAll()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if env.Now() != 12 {
		t.Fatalf("4 serialized writers of 3 units should end at 12, got %v", env.Now())
	}
}

func TestRWLockFCFSReaderBehindWriterWaits(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	var order []string
	// t=0: reader1 gets the lock, holds 10.
	env.Spawn("r1", func(p *Proc) {
		g := l.Acquire(p, Read)
		order = append(order, "r1")
		p.Delay(10)
		l.Release(g)
	})
	// t=1: writer queues.
	env.Spawn("w", func(p *Proc) {
		p.Delay(1)
		g := l.Acquire(p, Write)
		order = append(order, "w")
		p.Delay(10)
		l.Release(g)
	})
	// t=2: reader2 arrives; although compatible with r1, FCFS makes it
	// wait behind the queued writer.
	env.Spawn("r2", func(p *Proc) {
		p.Delay(2)
		g := l.Acquire(p, Read)
		order = append(order, "r2")
		if p.Now() != 20 {
			t.Errorf("r2 granted at %v, want 20 (after the writer)", p.Now())
		}
		l.Release(g)
	})
	env.RunAll()
	if len(order) != 3 || order[0] != "r1" || order[1] != "w" || order[2] != "r2" {
		t.Fatalf("grant order = %v", order)
	}
}

func TestRWLockReaderBatchGrant(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	var grantedAt []float64
	env.Spawn("w", func(p *Proc) {
		g := l.Acquire(p, Write)
		p.Delay(5)
		l.Release(g)
	})
	for i := 0; i < 3; i++ {
		env.Spawn("r", func(p *Proc) {
			p.Delay(1)
			g := l.Acquire(p, Read)
			grantedAt = append(grantedAt, p.Now())
			p.Delay(4)
			l.Release(g)
		})
	}
	// A second writer behind the readers.
	env.Spawn("w2", func(p *Proc) {
		p.Delay(2)
		g := l.Acquire(p, Write)
		if p.Now() != 9 {
			t.Errorf("w2 granted at %v, want 9", p.Now())
		}
		l.Release(g)
	})
	env.RunAll()
	if len(grantedAt) != 3 {
		t.Fatalf("granted %d readers", len(grantedAt))
	}
	for _, g := range grantedAt {
		if g != 5 {
			t.Fatalf("readers granted at %v, want all at 5 (batch)", grantedAt)
		}
	}
}

func TestRWLockImmediateGrantRequiresEmptyQueue(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	// Holder: reader until t=10. Writer queues at t=1. Reader at t=2 must
	// queue (not jump the writer), even though readers currently hold it.
	env.Spawn("hold", func(p *Proc) {
		g := l.Acquire(p, Read)
		p.Delay(10)
		l.Release(g)
	})
	env.Spawn("w", func(p *Proc) {
		p.Delay(1)
		g := l.Acquire(p, Write)
		p.Delay(1)
		l.Release(g)
	})
	env.Spawn("r", func(p *Proc) {
		p.Delay(2)
		g := l.Acquire(p, Read)
		if p.Now() != 11 {
			t.Errorf("late reader granted at %v, want 11", p.Now())
		}
		l.Release(g)
	})
	env.RunAll()
}

func TestRWLockStats(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	env.Spawn("w1", func(p *Proc) {
		g := l.Acquire(p, Write)
		p.Delay(4)
		l.Release(g)
	})
	env.Spawn("w2", func(p *Proc) {
		g := l.Acquire(p, Write)
		p.Delay(4)
		l.Release(g)
	})
	end := env.RunAll()
	s := l.Snapshot(end)
	if s.GrantsW != 2 {
		t.Fatalf("GrantsW = %d", s.GrantsW)
	}
	if s.MeanHoldW != 4 {
		t.Fatalf("MeanHoldW = %v", s.MeanHoldW)
	}
	if s.MeanWaitW != 2 { // w1 waits 0, w2 waits 4
		t.Fatalf("MeanWaitW = %v", s.MeanWaitW)
	}
	if math.Abs(s.RhoW-1) > 1e-9 { // a writer is in the system for all 8 units
		t.Fatalf("RhoW = %v", s.RhoW)
	}
}

func TestReleaseValidation(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "x")
	l2 := NewRWLock(env, "y")
	env.Spawn("p", func(p *Proc) {
		g := l.Acquire(p, Read)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("foreign release did not panic")
				}
			}()
			l2.Release(g)
		}()
		l.Release(g)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double release did not panic")
				}
			}()
			l.Release(g)
		}()
	})
	env.RunAll()
}

// TestMM1AgainstTheory drives the lock as an M/M/1 queue (writers only) and
// compares the measured mean wait with ρ/((1-ρ)μ). This validates the
// kernel and the lock against queueing theory end to end.
func TestMM1AgainstTheory(t *testing.T) {
	lambda, mu := 0.6, 1.0
	rho := lambda / mu
	wantWait := rho / ((1 - rho) * mu)

	env := NewEnvironment()
	l := NewRWLock(env, "mm1")
	src := xrand.New(42)
	arrivals := src.Split(1)
	services := src.Split(2)
	const n = 60000
	env.Spawn("arrivals", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Delay(arrivals.ExpRate(lambda))
			svc := services.Exp(1 / mu)
			env.Spawn("job", func(j *Proc) {
				g := l.Acquire(j, Write)
				j.Delay(svc)
				l.Release(g)
			})
		}
	})
	end := env.RunAll()
	s := l.Snapshot(end)
	if math.Abs(s.MeanWaitW-wantWait) > 0.15*wantWait {
		t.Fatalf("M/M/1 wait = %v, theory %v", s.MeanWaitW, wantWait)
	}
	// Writer-in-system probability for M/M/1 is ρ.
	if math.Abs(s.RhoW-rho) > 0.05 {
		t.Fatalf("RhoW = %v, theory %v", s.RhoW, rho)
	}
}

// TestMM1ReadersDontQueue checks that a reader-only workload (shared
// grants) sees zero waiting regardless of load.
func TestReadersOnlyNeverWait(t *testing.T) {
	env := NewEnvironment()
	l := NewRWLock(env, "r")
	src := xrand.New(7)
	const n = 5000
	env.Spawn("arrivals", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Delay(src.ExpRate(5))
			svc := src.Exp(1)
			env.Spawn("job", func(j *Proc) {
				g := l.Acquire(j, Read)
				j.Delay(svc)
				l.Release(g)
			})
		}
	})
	end := env.RunAll()
	s := l.Snapshot(end)
	if s.MeanWaitR != 0 {
		t.Fatalf("readers waited %v without writers", s.MeanWaitR)
	}
	if s.GrantsR != n {
		t.Fatalf("GrantsR = %d", s.GrantsR)
	}
}

func TestClassString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Class.String")
	}
}
