package experiments

import "testing"

func TestExtrasRegistered(t *testing.T) {
	ex := Extras()
	if len(ex) != 5 {
		t.Fatalf("%d extras", len(ex))
	}
	for _, id := range []string{"extA", "extB", "extC", "extD", "extE"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("%s not resolvable", id)
		}
	}
}

func TestExtMergePolicyQuick(t *testing.T) {
	tb := runQuick(t, "extA")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		empty := parseF(t, row[2])
		half := parseF(t, row[3])
		if half <= empty {
			t.Errorf("merge-at-half restructuring (%v) should exceed merge-at-empty (%v) for mix %v/%v",
				half, empty, row[0], row[1])
		}
		// Merge-at-half buys somewhat higher utilization.
		if parseF(t, row[5]) <= parseF(t, row[4])*0.95 {
			t.Errorf("merge-at-half utilization unexpectedly low: %v vs %v", row[5], row[4])
		}
	}
}

func TestExtTwoPhaseQuick(t *testing.T) {
	tb := runQuick(t, "extB")
	// Row 0: max throughputs in order 2PL < NLC < OD < Link.
	maxes := make([]float64, 4)
	for i := 0; i < 4; i++ {
		maxes[i] = parseF(t, tb.Rows[0][i+1])
	}
	if !(maxes[0] < maxes[1] && maxes[1] < maxes[2] && maxes[2] < maxes[3]) {
		t.Errorf("max throughput ordering violated: %v", maxes)
	}
}

func TestExtBufferingQuick(t *testing.T) {
	tb := runQuick(t, "extC")
	// Max throughput rises monotonically with the pool.
	prev := -1.0
	for _, row := range tb.Rows {
		v := parseF(t, row[2])
		if v <= prev {
			t.Fatalf("NLC max not rising with pool: %v", tb.Rows)
		}
		prev = v
	}
	// Hit ratio 0 at pool 0, 1 at the largest pool.
	if parseF(t, tb.Rows[0][1]) != 0 {
		t.Fatalf("pool 0 hit ratio %v", tb.Rows[0][1])
	}
	// The 5000-node pool covers all but a sliver of the ~4500 leaves.
	if parseF(t, tb.Rows[len(tb.Rows)-1][1]) < 0.99 {
		t.Fatalf("large pool hit ratio %v", tb.Rows[len(tb.Rows)-1][1])
	}
}

func TestExtSkewQuick(t *testing.T) {
	tb := runQuick(t, "extD")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	uniform := parseF(t, tb.Rows[0][1])
	skew80 := parseF(t, tb.Rows[1][1])
	skew95 := parseF(t, tb.Rows[2][1])
	// Skew concentrates accesses on hot pages: hit ratio must rise.
	if !(uniform < skew80 && skew80 < skew95) {
		t.Fatalf("hit ratio should rise with skew: %v %v %v", uniform, skew80, skew95)
	}
	// The uniform measurement tracks the uniform-shape model closely.
	model := parseF(t, tb.Rows[0][2])
	if uniform < model-0.15 || uniform > model+0.15 {
		t.Fatalf("uniform measured %v vs model %v", uniform, model)
	}
}

func TestExtOLCQuick(t *testing.T) {
	tb := runQuick(t, "extE")
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	prevSim := -1.0
	for _, row := range tb.Rows {
		model := parseF(t, row[1])
		sim := parseF(t, row[2])
		if model <= 0 || sim <= 0 {
			t.Fatalf("degenerate restart rates: %v", row)
		}
		// Model and simulator agree within a factor of two on restarts.
		if ratio := sim / model; ratio > 2 || ratio < 0.5 {
			t.Errorf("λ=%s: sim %v vs model %v restarts/op", row[0], sim, model)
		}
		if sim <= prevSim {
			t.Errorf("restart rate not rising with load: %v", tb.Rows)
		}
		prevSim = sim
	}
}
