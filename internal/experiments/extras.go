package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"btreeperf/internal/btree"
	"btreeperf/internal/core"
	"btreeperf/internal/diskbtree"
	"btreeperf/internal/shape"
	"btreeperf/internal/sim"
	"btreeperf/internal/table"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

// Extras returns experiments beyond the paper's figures: the §3.2
// merge-policy justification and the Two-Phase Locking extension the paper
// defers to its full version.
func Extras() []Figure {
	return []Figure{
		{"extA", "Extra A: merge-at-empty vs. merge-at-half restructuring rates",
			"the §3.2 design choice, after Johnson & Shasha [9,10]: restructuring events per 1000 operations while maintaining a 40k-item tree", extMergePolicy},
		{"extB", "Extra B: Two-Phase Locking vs. the paper's algorithms",
			"the extension deferred to the paper's full version: maximum throughputs and insert responses near 2PL's saturation", extTwoPhase},
		{"extC", "Extra C: LRU buffering (the §8 extension)",
			"maximum throughput vs. buffer-pool size at raw disk cost D=10; model hit ratio plus a simulator point per pool size", extBuffering},
		{"extD", "Extra D: access skew and the buffer pool",
			"measured LRU hit ratios of the disk-backed tree under uniform vs. self-similar key popularity; the uniform-shape model is the skew-free baseline", extSkew},
		{"extE", "Extra E: OLC restart model vs. simulation",
			"the fourth algorithm: optimistic lock-coupling's predicted restart and fallback rates (writer-utilization conflicts, correlated retries) against the simulator's measured rates, with search responses", extOLC},
	}
}

// extOLC validates the fourth algorithm's restart-probability model: per
// load, the analytical restarts-per-operation and fallback probability
// next to the simulator's measured rates, plus both search responses.
func extOLC(o Options) (*table.Table, error) {
	o = o.defaults()
	m, err := paperModel(5)
	if err != nil {
		return nil, err
	}
	// The top load sits near the simulator's own saturation; short quick
	// runs have not converged there (contention is still building when
	// the run ends), so quick mode stays on the two lower loads.
	lambdas := []float64{5, 10, 25}
	if o.Quick {
		lambdas = []float64{5, 10}
	}
	tb := table.New("",
		"lambda", "model_restarts_per_op", "sim_restarts_per_op",
		"model_fallback_prob", "sim_fallback_per_op",
		"model_search", "sim_search")
	rows := make([][]string, len(lambdas))
	err = sim.ForEachPoint(len(lambdas), func(i int) error {
		lambda := lambdas[i]
		res, err := core.AnalyzeOLC(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			return err
		}
		cfg := sim.Paper(core.OLC, lambda, 5)
		cfg.Ops = o.Ops
		cfg.Warmup = o.Ops / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(min(o.Seeds, 3)))
		if err != nil {
			return err
		}
		var restarts, fallbacks, completed int64
		for _, r := range rep.Results {
			restarts += r.ReadRestarts
			fallbacks += r.ReadFallbacks
			completed += int64(r.Completed)
		}
		simSearch := table.F(rep.RespSearch.Mean)
		if rep.Unstable {
			simSearch = "unstable"
		}
		rows[i] = []string{table.F(lambda),
			table.F(res.RestartsPerOp), table.F(float64(restarts) / float64(completed)),
			table.F(res.FallbackProb), table.F(float64(fallbacks) / float64(completed)),
			table.F(res.RespSearch), simSearch}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb, nil
}

// extSkew measures the real LRU pool of internal/diskbtree under
// increasingly skewed search popularity. The analytical buffer model
// assumes uniform access within a level, so it is exact for the uniform
// row and a lower bound under skew (LRU exploits hot keys the shape model
// cannot see).
func extSkew(o Options) (*table.Table, error) {
	o = o.defaults()
	const items = 20000
	const nodeCap = 32
	const poolNodes = 64
	searches := 60000
	if o.Quick {
		searches = 20000
	}

	dir, err := os.MkdirTemp("", "btreeperf-extD")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	s, err := shape.New(items, nodeCap, 1, 0)
	if err != nil {
		return nil, err
	}
	costs, err := core.BufferedCosts(s, poolNodes, core.PaperCosts(10))
	if err != nil {
		return nil, err
	}
	modelHit := core.ExpectedHitRatio(s, costs)

	tb := table.New("", "popularity", "measured_hit_ratio", "uniform_model")
	dists := []struct {
		name string
		hot  float64 // 0.5 = uniform
	}{
		{"uniform", 0.5},
		{"80/20", 0.2},
		{"95/5", 0.05},
	}
	for di, dist := range dists {
		tr, err := diskbtree.Open(filepath.Join(dir, fmt.Sprintf("d%d.db", di)),
			diskbtree.Options{Cap: nodeCap, CacheNodes: poolNodes})
		if err != nil {
			return nil, err
		}
		src := xrand.New(71)
		keys := make([]int64, 0, items)
		for len(keys) < items {
			k := src.Int63n(1 << 30)
			if fresh, err := tr.Insert(k, 1); err != nil {
				tr.Close()
				return nil, err
			} else if fresh {
				keys = append(keys, k)
			}
		}
		reads := xrand.New(73)
		// Warm, then measure.
		for i := 0; i < searches/3; i++ {
			tr.Search(keys[reads.SelfSimilar(len(keys), dist.hot)])
		}
		before := tr.CacheStats()
		for i := 0; i < searches; i++ {
			tr.Search(keys[reads.SelfSimilar(len(keys), dist.hot)])
		}
		after := tr.CacheStats()
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		measured := float64(hits) / float64(hits+misses)
		tb.AddRow(dist.name, table.F(measured), table.F(modelHit))
		tr.Close()
	}
	return tb, nil
}

// extBuffering sweeps the buffer-pool size, replacing the paper's sharp
// "2 levels in memory" assumption with the LRU model of core.BufferedCosts.
func extBuffering(o Options) (*table.Table, error) {
	o = o.defaults()
	s, err := shape.New(40000, 13, 0.5, 0.2)
	if err != nil {
		return nil, err
	}
	base := core.PaperCosts(10)
	base.MemLevels = 0 // the pool, not a level rule, decides residency
	mix := core.Workload{Mix: workload.PaperMix}
	pools := []float64{0, 7, 70, 600, 5000}
	if o.Quick {
		pools = []float64{0, 70, 5000}
	}
	tb := table.New("",
		"pool_nodes", "hit_ratio", "nlc_max", "od_max", "model_search@0.1", "sim_search@0.1")
	rows := make([][]string, len(pools))
	err = sim.ForEachPoint(len(pools), func(i int) error {
		pool := pools[i]
		costs, err := core.BufferedCosts(s, pool, base)
		if err != nil {
			return err
		}
		m := core.Model{Shape: s, Costs: costs}
		nlcMax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
		if err != nil {
			return err
		}
		odMax, err := core.MaxThroughput(core.OD, m, mix, 1e-4)
		if err != nil {
			return err
		}
		res, err := core.AnalyzeNLC(m, core.Workload{Lambda: 0.1, Mix: workload.PaperMix})
		if err != nil {
			return err
		}
		cfg := sim.Paper(core.NLC, 0.1, 10)
		cfg.Costs = costs
		cfg.Ops = o.Ops
		cfg.Warmup = o.Ops / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(min(o.Seeds, 2)))
		if err != nil {
			return err
		}
		simCell := table.F(rep.RespSearch.Mean)
		if rep.Unstable {
			simCell = "unstable"
		}
		modelCell := table.F(res.RespSearch)
		if !res.Stable {
			modelCell = "unstable"
		}
		rows[i] = []string{table.F(pool), table.F(core.ExpectedHitRatio(s, costs)),
			table.F(nlcMax), table.F(odMax), modelCell, simCell}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb, nil
}

// extMergePolicy measures restructuring rates of the two policies under
// steady-state mixes with varying delete shares.
func extMergePolicy(o Options) (*table.Table, error) {
	o = o.defaults()
	ops := 60000
	if o.Quick {
		ops = 20000
	}
	tb := table.New("", "insert_frac", "delete_frac",
		"empty_restr_per_1k", "half_restr_per_1k", "empty_util", "half_util")
	mixes := []struct{ qi, qd float64 }{
		{0.9, 0.1}, {0.7, 0.3}, {0.55, 0.45},
	}
	for _, mx := range mixes {
		var restr [2]float64
		var util [2]float64
		for pi, policy := range []btree.Policy{btree.MergeAtEmpty, btree.MergeAtHalf} {
			tr := btree.New(13, policy)
			src := xrand.New(uint64(pi)*131 + uint64(mx.qi*100))
			pool := workload.NewKeyPool()
			// Grow to steady-state size.
			for tr.Len() < 40000 {
				k := src.Int63n(1 << 31)
				if tr.Insert(k, 0) {
					pool.Add(k)
				}
			}
			base := tr.Stats()
			// Churn with the mix, deletes targeting live keys.
			for i := 0; i < ops; i++ {
				if src.Float64() < mx.qi || pool.Len() == 0 {
					k := src.Int63n(1 << 31)
					if tr.Insert(k, 0) {
						pool.Add(k)
					}
				} else if k, ok := pool.Take(src); ok {
					tr.Delete(k)
				}
			}
			st := tr.Stats()
			events := (st.Splits - base.Splits) + (st.Removes - base.Removes) +
				(st.Merges - base.Merges) + (st.Borrows - base.Borrows)
			restr[pi] = float64(events) / float64(ops) * 1000
			stats := tr.StructureStats()
			util[pi] = stats[0].Util
		}
		tb.AddRow(table.F(mx.qi), table.F(mx.qd),
			table.F(restr[0]), table.F(restr[1]), table.F(util[0]), table.F(util[1]))
	}
	return tb, nil
}

// extTwoPhase compares 2PL against the paper's three algorithms.
func extTwoPhase(o Options) (*table.Table, error) {
	o = o.defaults()
	m, err := paperModel(5)
	if err != nil {
		return nil, err
	}
	mix := core.Workload{Mix: workload.PaperMix}
	algs := []core.Algorithm{core.TwoPhase, core.NLC, core.OD, core.Link}

	tpMax, err := core.MaxThroughput(core.TwoPhase, m, mix, 1e-4)
	if err != nil {
		return nil, err
	}
	tb := table.New("", "metric", "two_phase", "nlc", "od", "link")

	row := []string{"max_throughput"}
	for _, a := range algs {
		lmax, err := core.MaxThroughput(a, m, mix, 1e-4)
		if err != nil {
			return nil, err
		}
		row = append(row, table.F(lmax))
	}
	tb.AddRow(row...)

	lambda := 0.9 * tpMax
	row = []string{fmt.Sprintf("model_insert@λ=%s", table.F(lambda))}
	for _, a := range algs {
		res, err := core.Analyze(a, m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			return nil, err
		}
		row = append(row, table.F(res.RespInsert))
	}
	tb.AddRow(row...)

	cells := make([]string, len(algs))
	err = sim.ForEachPoint(len(algs), func(i int) error {
		cfg := sim.Paper(algs[i], lambda, 5)
		cfg.Ops = o.Ops
		cfg.Warmup = o.Ops / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(min(o.Seeds, 3)))
		if err != nil {
			return err
		}
		if rep.Unstable {
			cells[i] = "unstable"
		} else {
			cells[i] = table.F(rep.RespInsert.Mean)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	row = append([]string{fmt.Sprintf("sim_insert@λ=%s", table.F(lambda))}, cells...)
	tb.AddRow(row...)
	return tb, nil
}
