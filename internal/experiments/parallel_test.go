package experiments

import (
	"bytes"
	"testing"

	"btreeperf/internal/sim"
)

// renderFig runs one figure and returns its rendered table bytes.
func renderFig(t *testing.T, id string, o Options) []byte {
	t.Helper()
	f, ok := ByID(id)
	if !ok {
		t.Fatalf("figure %s missing", id)
	}
	tb, err := f.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return append(buf.Bytes(), csv.Bytes()...)
}

// TestFigureTablesDeterministicAcrossWorkers renders a simulation-backed
// figure sequentially and under two parallel worker counts, asserting the
// emitted tables (text and CSV) are byte-identical — the committed
// results/ directory must not depend on -parallel.
func TestFigureTablesDeterministicAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { sim.SetParallelism(1) })
	o := Options{Quick: true, Seeds: 2, Ops: 500}

	sim.SetParallelism(1)
	want := renderFig(t, "fig10", o)

	for _, workers := range []int{3, 5} {
		sim.SetParallelism(workers)
		got := renderFig(t, "fig10", o)
		if !bytes.Equal(got, want) {
			t.Errorf("fig10 output differs at %d workers:\n%s\nvs sequential:\n%s",
				workers, got, want)
		}
	}
}
