package experiments

import (
	"strconv"
	"testing"

	"btreeperf/internal/table"
)

func TestAllFiguresRegistered(t *testing.T) {
	figs := All()
	if len(figs) != 14 {
		t.Fatalf("%d figures registered, want 14 (Figures 3–16)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.Run == nil {
			t.Errorf("incomplete figure %+v", f.ID)
		}
		if seen[f.ID] {
			t.Errorf("duplicate id %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig03", "3", "03"} {
		f, ok := ByID(id)
		if !ok || f.ID != "fig03" {
			t.Errorf("ByID(%q) = %v, %v", id, f.ID, ok)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID(fig99) matched")
	}
	if _, ok := ByID("bogus"); ok {
		t.Error("ByID(bogus) matched")
	}
}

// runQuick executes a figure in quick mode and returns its table.
func runQuick(t *testing.T, id string) *table.Table {
	t.Helper()
	f, ok := ByID(id)
	if !ok {
		t.Fatalf("figure %s missing", id)
	}
	tb, err := f.Run(Options{Quick: true, Seeds: 1, Ops: 1500})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tb
}

func TestFig03Quick(t *testing.T) {
	tb := runQuick(t, "fig03")
	if len(tb.Columns) != 7 {
		t.Fatalf("columns: %v", tb.Columns)
	}
	// Response times grow monotonically along the sweep (model column).
	prev := -1.0
	for _, row := range tb.Rows {
		v := parseF(t, row[1])
		if v <= prev {
			t.Fatalf("model response not increasing: %v", tb.Rows)
		}
		prev = v
	}
}

func TestFig09Quick(t *testing.T) {
	tb := runQuick(t, "fig09")
	// Crossings per op must be tiny in every row.
	for _, row := range tb.Rows {
		if v := parseF(t, row[5]); v > 0.05 {
			t.Fatalf("crossings per op %v", v)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	tb := runQuick(t, "fig11")
	prev := 1e18
	for _, row := range tb.Rows {
		v := parseF(t, row[1])
		if v >= prev {
			t.Fatalf("max throughput not decreasing in disk cost: %v", tb.Rows)
		}
		prev = v
	}
}

func TestFig13Quick(t *testing.T) {
	tb := runQuick(t, "fig13")
	// Every row: rule of thumb within a factor ~2 of the model at D=1.
	for _, row := range tb.Rows {
		if row[0] != "1" {
			continue
		}
		model := parseF(t, row[2])
		rot := parseF(t, row[3])
		if rot < model/2 || rot > model*2 {
			t.Fatalf("rule of thumb %v vs model %v", rot, model)
		}
	}
}

func TestFig15Quick(t *testing.T) {
	tb := runQuick(t, "fig15")
	// Model columns: naive >= leaf >= none in every row.
	for _, row := range tb.Rows {
		none := parseF(t, row[1])
		leaf := parseF(t, row[2])
		naive := parseF(t, row[3])
		if !(naive >= leaf && leaf >= none*0.999) {
			t.Fatalf("recovery ordering violated: none=%v leaf=%v naive=%v", none, leaf, naive)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	if s == "inf" {
		return 1e18
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}
