// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 3–16). Each Figure couples the analytical model
// (internal/core) with the simulator (internal/sim) on the configuration
// the paper used and emits one table per figure: the same series the paper
// plots.
//
// The absolute numbers are in the paper's abstract time unit (root search
// = 1); what must reproduce is the shape — who wins, by what factor, and
// where the knees fall. EXPERIMENTS.md records the comparison.
package experiments

import (
	"fmt"
	"math"

	"btreeperf/internal/core"
	"btreeperf/internal/shape"
	"btreeperf/internal/sim"
	"btreeperf/internal/table"
	"btreeperf/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	Seeds int  // replications per simulated point (paper: 5)
	Ops   int  // concurrent operations per replication (paper: 10,000)
	Quick bool // reduce sweeps for smoke runs and benchmarks
}

// Defaults fills the paper's settings for unset fields.
func (o Options) defaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 5
	}
	if o.Ops == 0 {
		o.Ops = 10000
	}
	if o.Quick {
		if o.Seeds > 2 {
			o.Seeds = 2
		}
		if o.Ops > 2500 {
			o.Ops = 2500
		}
	}
	return o
}

// Figure is one reproducible experiment.
type Figure struct {
	ID      string
	Title   string
	Caption string
	Run     func(Options) (*table.Table, error)
}

// All returns every figure in order.
func All() []Figure {
	return []Figure{
		{"fig03", "Figure 3: Naive Lock-coupling insert response time vs. arrival rate",
			"disk cost=5, 2 in-memory levels, N=13, ~40k items; analysis vs. simulation", fig34(workload.Insert)},
		{"fig04", "Figure 4: Naive Lock-coupling search response time vs. arrival rate",
			"disk cost=5, 2 in-memory levels; analysis vs. simulation", fig34(workload.Search)},
		{"fig05", "Figure 5: Optimistic Descent insert response time vs. arrival rate",
			"disk cost=5, 2 in-memory levels; analysis vs. simulation", fig56(workload.Insert)},
		{"fig06", "Figure 6: Optimistic Descent search response time vs. arrival rate",
			"disk cost=5, 2 in-memory levels; analysis vs. simulation", fig56(workload.Search)},
		{"fig07", "Figure 7: Link-type insert response time vs. arrival rate",
			"disk cost=5, 2 in-memory levels; analysis vs. simulation", fig78(workload.Insert)},
		{"fig08", "Figure 8: Link-type search response time vs. arrival rate",
			"disk cost=5, 2 in-memory levels; analysis vs. simulation", fig78(workload.Search)},
		{"fig09", "Figure 9: Link-type algorithm at disk cost 10",
			"response times and link-crossing frequency (crossings are negligible)", fig9},
		{"fig10", "Figure 10: Increasing root writer utilization in Naive Lock-coupling",
			"ρ_w(root) grows non-linearly with the arrival rate", fig10},
		{"fig11", "Figure 11: Naive Lock-coupling maximum throughput vs. disk cost",
			"locking nodes two levels below the root dominates as D grows", fig11},
		{"fig12", "Figure 12: Comparison of insert response times",
			"Link-type ≫ Optimistic Descent ≫ Naive Lock-coupling; disk cost=5", fig12},
		{"fig13", "Figure 13: Naive Lock-coupling rule-of-thumb vs. model predictions",
			"λ_{ρ=.5} vs. maximum node size, D ∈ {1, 10}; rules of thumb 1 and 2", fig13},
		{"fig14", "Figure 14: Optimistic Descent rule-of-thumb vs. model predictions",
			"λ_{ρ=.5} vs. maximum node size, D ∈ {1, 10}; rules of thumb 3 and 4", fig14},
		{"fig15", "Figure 15: Comparison of recovery algorithms, node size 13",
			"Optimistic Descent insert response; D=10, T_trans=100, 5 levels", figRecovery(13, 5)},
		{"fig16", "Figure 16: Comparison of recovery algorithms, node size 59",
			"Optimistic Descent insert response; D=10, T_trans=100, 4 levels", figRecovery(59, 4)},
	}
}

// ByID finds a figure by its identifier: "fig03", "03" and "3" all match,
// as do the extra-experiment IDs ("extA", "extB").
func ByID(id string) (Figure, bool) {
	numeric := fmt.Sprintf("fig%02d", atoiSafe(id))
	for _, f := range append(All(), Extras()...) {
		if f.ID == id || f.ID == numeric {
			return f, true
		}
	}
	return Figure{}, false
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// paperModel is the analytic model of the paper's baseline tree.
func paperModel(d float64) (core.Model, error) {
	s, err := shape.New(40000, 13, 0.5, 0.2)
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{Shape: s, Costs: core.PaperCosts(d)}, nil
}

// sweep returns fractions of an algorithm's maximum throughput to sample.
func sweep(quick bool) []float64 {
	if quick {
		return []float64{0.2, 0.6, 0.9}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
}

// respOf selects the response-time series for an operation class.
func respOf(res *core.Result, op workload.Op) float64 {
	switch op {
	case workload.Search:
		return res.RespSearch
	case workload.Insert:
		return res.RespInsert
	default:
		return res.RespDelete
	}
}

func simRespOf(rep *sim.Replicated, op workload.Op) (mean, ci float64) {
	switch op {
	case workload.Search:
		return rep.RespSearch.Mean, rep.RespSearch.CI95
	case workload.Insert:
		return rep.RespInsert.Mean, rep.RespInsert.CI95
	default:
		return rep.RespDelete.Mean, rep.RespDelete.CI95
	}
}

// runCurve produces the analysis-vs-simulation response curve shared by
// Figures 3–8. Sweep points run concurrently under the sim worker pool;
// rows are collected by point index, so the table is identical at any
// worker count.
func runCurve(a core.Algorithm, op workload.Op, d float64, lambdas []float64, o Options) (*table.Table, error) {
	m, err := paperModel(d)
	if err != nil {
		return nil, err
	}
	tb := table.New("",
		"lambda", "model_resp", "sim_resp", "sim_ci95", "model_rho_w", "sim_rho_w", "stable")
	rows := make([][]string, len(lambdas))
	err = sim.ForEachPoint(len(lambdas), func(i int) error {
		lambda := lambdas[i]
		res, err := core.Analyze(a, m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			return err
		}
		cfg := sim.Paper(a, lambda, d)
		cfg.Ops = o.Ops
		cfg.Warmup = o.Ops / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(o.Seeds))
		if err != nil {
			return err
		}
		simResp, simCI := simRespOf(rep, op)
		stable := "yes"
		if !res.Stable || rep.Unstable {
			stable = "no"
		}
		rows[i] = []string{table.F(lambda), table.F(respOf(res, op)), table.F(simResp),
			table.F(simCI), table.F(res.RootRhoW()), table.F(rep.RootRhoW.Mean), stable}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb, nil
}

// lambdaSweepFor finds the λ values to sample for an algorithm.
func lambdaSweepFor(a core.Algorithm, d float64, quick bool) ([]float64, error) {
	m, err := paperModel(d)
	if err != nil {
		return nil, err
	}
	lmax, err := core.MaxThroughput(a, m, core.Workload{Mix: workload.PaperMix}, 1e-4)
	if err != nil {
		return nil, err
	}
	if math.IsInf(lmax, 1) || lmax > 60 {
		lmax = 60 // Link-type: effectively unbounded; sample a wide range
	}
	var out []float64
	for _, f := range sweep(quick) {
		out = append(out, f*lmax)
	}
	return out, nil
}

func fig34(op workload.Op) func(Options) (*table.Table, error) {
	return func(o Options) (*table.Table, error) {
		o = o.defaults()
		lambdas, err := lambdaSweepFor(core.NLC, 5, o.Quick)
		if err != nil {
			return nil, err
		}
		return runCurve(core.NLC, op, 5, lambdas, o)
	}
}

func fig56(op workload.Op) func(Options) (*table.Table, error) {
	return func(o Options) (*table.Table, error) {
		o = o.defaults()
		lambdas, err := lambdaSweepFor(core.OD, 5, o.Quick)
		if err != nil {
			return nil, err
		}
		return runCurve(core.OD, op, 5, lambdas, o)
	}
}

func fig78(op workload.Op) func(Options) (*table.Table, error) {
	return func(o Options) (*table.Table, error) {
		o = o.defaults()
		lambdas, err := lambdaSweepFor(core.Link, 5, o.Quick)
		if err != nil {
			return nil, err
		}
		return runCurve(core.Link, op, 5, lambdas, o)
	}
}

// fig9: Link-type at disk cost 10 with the link-crossing rate.
func fig9(o Options) (*table.Table, error) {
	o = o.defaults()
	m, err := paperModel(10)
	if err != nil {
		return nil, err
	}
	lambdas, err := lambdaSweepFor(core.Link, 10, o.Quick)
	if err != nil {
		return nil, err
	}
	tb := table.New("",
		"lambda", "model_search", "sim_search", "model_insert", "sim_insert", "crossings_per_op")
	rows := make([][]string, len(lambdas))
	err = sim.ForEachPoint(len(lambdas), func(i int) error {
		lambda := lambdas[i]
		res, err := core.AnalyzeLink(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			return err
		}
		cfg := sim.Paper(core.Link, lambda, 10)
		cfg.Ops = o.Ops
		cfg.Warmup = o.Ops / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(o.Seeds))
		if err != nil {
			return err
		}
		var crossings, completed float64
		for _, r := range rep.Results {
			crossings += float64(r.LinkCrossings)
			completed += float64(r.Completed)
		}
		rows[i] = []string{table.F(lambda), table.F(res.RespSearch), table.F(rep.RespSearch.Mean),
			table.F(res.RespInsert), table.F(rep.RespInsert.Mean), table.F(crossings / completed)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb, nil
}

// fig10: NLC root writer utilization vs arrival rate.
func fig10(o Options) (*table.Table, error) {
	o = o.defaults()
	m, err := paperModel(5)
	if err != nil {
		return nil, err
	}
	lambdas, err := lambdaSweepFor(core.NLC, 5, o.Quick)
	if err != nil {
		return nil, err
	}
	tb := table.New("", "lambda", "model_rho_w", "sim_rho_w", "sim_ci95")
	rows := make([][]string, len(lambdas))
	err = sim.ForEachPoint(len(lambdas), func(i int) error {
		lambda := lambdas[i]
		res, err := core.AnalyzeNLC(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			return err
		}
		cfg := sim.Paper(core.NLC, lambda, 5)
		cfg.Ops = o.Ops
		cfg.Warmup = o.Ops / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(o.Seeds))
		if err != nil {
			return err
		}
		rows[i] = []string{table.F(lambda), table.F(res.RootRhoW()),
			table.F(rep.RootRhoW.Mean), table.F(rep.RootRhoW.CI95)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb, nil
}

// fig11: NLC maximum throughput vs disk cost.
func fig11(o Options) (*table.Table, error) {
	o = o.defaults()
	ds := []float64{1, 2, 5, 10, 20}
	if o.Quick {
		ds = []float64{1, 5, 20}
	}
	tb := table.New("", "disk_cost", "max_throughput", "effective_max_rho_0.5")
	for _, d := range ds {
		m, err := paperModel(d)
		if err != nil {
			return nil, err
		}
		mix := core.Workload{Mix: workload.PaperMix}
		lmax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
		if err != nil {
			return nil, err
		}
		l50, err := core.EffectiveMaxThroughput(core.NLC, m, mix, 0.5, 1e-4)
		if err != nil {
			return nil, err
		}
		tb.AddRow(table.F(d), table.F(lmax), table.F(l50))
	}
	return tb, nil
}

// fig12: the three algorithms' insert response times on a shared λ axis.
func fig12(o Options) (*table.Table, error) {
	o = o.defaults()
	m, err := paperModel(5)
	if err != nil {
		return nil, err
	}
	mix := core.Workload{Mix: workload.PaperMix}
	nlcMax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
	if err != nil {
		return nil, err
	}
	odMax, err := core.MaxThroughput(core.OD, m, mix, 1e-4)
	if err != nil {
		return nil, err
	}
	// Shared axis covering both knees.
	var lambdas []float64
	for _, f := range sweep(o.Quick) {
		lambdas = append(lambdas, f*nlcMax)
	}
	if !o.Quick {
		for _, f := range []float64{0.3, 0.6, 0.9} {
			lambdas = append(lambdas, f*odMax)
		}
	}
	tb := table.New("", "lambda", "nlc_model", "od_model", "link_model", "nlc_sim", "od_sim", "link_sim")
	rows := make([][]string, len(lambdas))
	err = sim.ForEachPoint(len(lambdas), func(i int) error {
		lambda := lambdas[i]
		row := []string{table.F(lambda)}
		for _, a := range []core.Algorithm{core.NLC, core.OD, core.Link} {
			res, err := core.Analyze(a, m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
			if err != nil {
				return err
			}
			row = append(row, table.F(res.RespInsert))
		}
		for _, a := range []core.Algorithm{core.NLC, core.OD, core.Link} {
			cell := "unstable"
			res, err := core.Analyze(a, m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
			if err != nil {
				return err
			}
			if res.Stable {
				cfg := sim.Paper(a, lambda, 5)
				cfg.Ops = o.Ops
				cfg.Warmup = o.Ops / 10
				rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(min(o.Seeds, 2)))
				if err != nil {
					return err
				}
				if rep.Unstable {
					cell = "unstable"
				} else {
					cell = table.F(rep.RespInsert.Mean)
				}
			}
			row = append(row, cell)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb, nil
}

// ruleFigure runs the Figure 13/14 sweeps over node size and disk cost.
func ruleFigure(a core.Algorithm,
	rot func(core.Model, core.Workload) (float64, error),
	limit func(core.Model, core.Workload) (float64, error)) func(Options) (*table.Table, error) {
	return func(o Options) (*table.Table, error) {
		o = o.defaults()
		sizes := []int{7, 13, 29, 59, 101, 201}
		if o.Quick {
			sizes = []int{13, 59, 201}
		}
		tb := table.New("", "disk_cost", "node_size", "model_lambda_.5", "rule_of_thumb", "limit_rule")
		for _, d := range []float64{1, 10} {
			for _, n := range sizes {
				s, err := shape.NewWithHeight(5, n, 6, 0.5, 0.2)
				if err != nil {
					return nil, err
				}
				m := core.Model{Shape: s, Costs: core.PaperCosts(d)}
				mix := core.Workload{Mix: workload.PaperMix}
				full, err := core.EffectiveMaxThroughput(a, m, mix, 0.5, 1e-5)
				if err != nil {
					return nil, err
				}
				r, err := rot(m, mix)
				if err != nil {
					return nil, err
				}
				l, err := limit(m, mix)
				if err != nil {
					return nil, err
				}
				tb.AddRow(table.F(d), fmt.Sprint(n), table.F(full), table.F(r), table.F(l))
			}
		}
		return tb, nil
	}
}

func fig13(o Options) (*table.Table, error) {
	return ruleFigure(core.NLC, core.RuleOfThumb1, core.RuleOfThumb2)(o)
}

func fig14(o Options) (*table.Table, error) {
	return ruleFigure(core.OD, core.RuleOfThumb3, core.RuleOfThumb4)(o)
}

// figRecovery runs the Figure 15/16 recovery comparison.
func figRecovery(nodeSize, height int) func(Options) (*table.Table, error) {
	return func(o Options) (*table.Table, error) {
		o = o.defaults()
		const d = 10
		const ttrans = 100
		s, err := shape.NewWithHeight(height, nodeSize, 6, 0.5, 0.2)
		if err != nil {
			return nil, err
		}
		m := core.Model{Shape: s, Costs: core.PaperCosts(d)}
		mix := core.Workload{Mix: workload.PaperMix}
		// Sweep relative to the Naive recovery variant's saturation, the
		// earliest of the three.
		naiveMax, err := maxODRecovery(m, mix, core.ODOptions{Recovery: core.NaiveRecovery, TTrans: ttrans})
		if err != nil {
			return nil, err
		}
		tb := table.New("",
			"lambda", "none_model", "leaf_model", "naive_model", "none_sim", "leaf_sim", "naive_sim")
		items := s.Items
		fracs := sweep(o.Quick)
		rows := make([][]string, len(fracs))
		err = sim.ForEachPoint(len(fracs), func(i int) error {
			lambda := fracs[i] * naiveMax
			row := []string{table.F(lambda)}
			opts := []core.ODOptions{
				{Recovery: core.NoRecovery},
				{Recovery: core.LeafOnly, TTrans: ttrans},
				{Recovery: core.NaiveRecovery, TTrans: ttrans},
			}
			for _, op := range opts {
				res, err := core.AnalyzeOD(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix}, op)
				if err != nil {
					return err
				}
				row = append(row, table.F(res.RespInsert))
			}
			for _, op := range opts {
				cfg := sim.Paper(core.OD, lambda, d)
				cfg.NodeCap = nodeSize
				cfg.InitialItems = items
				cfg.Recovery = op.Recovery
				cfg.TTrans = op.TTrans
				cfg.Ops = o.Ops
				cfg.Warmup = o.Ops / 10
				rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(min(o.Seeds, 3)))
				if err != nil {
					return err
				}
				if rep.Unstable {
					row = append(row, "unstable")
				} else {
					row = append(row, table.F(rep.RespInsert.Mean))
				}
			}
			rows[i] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			tb.AddRow(row...)
		}
		return tb, nil
	}
}

// maxODRecovery is MaxThroughput for OD with recovery options.
func maxODRecovery(m core.Model, mix core.Workload, opts core.ODOptions) (float64, error) {
	lo, hi := 0.0, 1e-3
	stable := func(lambda float64) (bool, error) {
		res, err := core.AnalyzeOD(m, core.Workload{Lambda: lambda, Mix: mix.Mix}, opts)
		if err != nil {
			return false, err
		}
		return res.Stable, nil
	}
	for {
		ok, err := stable(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1), nil
		}
	}
	for hi-lo > 1e-4*hi {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
