package repl

import (
	"fmt"
	"math"
	"net"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"btreeperf/internal/journal"
)

func TestProtoRoundTrips(t *testing.T) {
	h := Hello{ID: 0xDEADBEEF, Epoch: 7, Seqs: []int64{0, 42, 1 << 40}}
	if got, err := ParseHello(EncodeHello(h)); err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("hello: %+v / %v", got, err)
	}
	a := HelloAck{Epoch: 9, Modes: []byte{ModeTail, ModeSnapshot}}
	if got, err := ParseHelloAck(EncodeHelloAck(a)); err != nil || !reflect.DeepEqual(got, a) {
		t.Fatalf("helloack: %+v / %v", got, err)
	}
	o := Ops{Shard: 3, First: 100, Head: 120, Ops: []journal.Op{
		{Kind: journal.OpInsert, Key: -5, Val: 77},
		{Kind: journal.OpDelete, Key: 9},
	}}
	if got, err := ParseOps(EncodeOps(o)); err != nil || !reflect.DeepEqual(got, o) {
		t.Fatalf("ops: %+v / %v", got, err)
	}
	ack := Ack{Shard: 2, Seq: 55}
	if got, err := ParseAck(EncodeAck(ack)); err != nil || got != ack {
		t.Fatalf("ack: %+v / %v", got, err)
	}
	if got, err := ParseSnapBegin(EncodeSnapBegin(4)); err != nil || got != 4 {
		t.Fatalf("snapbegin: %d / %v", got, err)
	}
	sd := SnapData{Shard: 1, KVs: []KV{{Key: 1, Val: 2}, {Key: -3, Val: 4}}}
	if got, err := ParseSnapData(EncodeSnapData(sd)); err != nil || !reflect.DeepEqual(got, sd) {
		t.Fatalf("snapdata: %+v / %v", got, err)
	}
	se := SnapEnd{Shard: 0, Seq: 31}
	if got, err := ParseSnapEnd(EncodeSnapEnd(se)); err != nil || got != se {
		t.Fatalf("snapend: %+v / %v", got, err)
	}
}

// A corrupted record inside an Ops frame must fail parsing (the CRC
// framing travels with the record), not reach apply.
func TestParseOpsRejectsCorruptRecord(t *testing.T) {
	o := Ops{Shard: 0, First: 1, Head: 2, Ops: []journal.Op{
		{Kind: journal.OpInsert, Key: 1, Val: 1},
		{Kind: journal.OpInsert, Key: 2, Val: 2},
	}}
	b := EncodeOps(o)
	b[24+journal.OpRecSize+3] ^= 0xFF
	if _, err := ParseOps(b); err == nil {
		t.Fatal("corrupt ops frame parsed cleanly")
	}
}

// leaderShard is a test leader: a journal plus a map oracle, mutated the
// way the serving engine does it — op applied, journaled, group
// committed.
type leaderShard struct {
	mu   sync.Mutex
	data map[int64]uint64
	jnl  *journal.Journal
}

func newLeaderShard(t *testing.T, dir string, i int) *leaderShard {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("shard-%d.db", i))
	j, err := journal.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(0); err != nil {
		t.Fatal(err)
	}
	ls := &leaderShard{data: make(map[int64]uint64), jnl: j}
	t.Cleanup(func() { j.Close() })
	return ls
}

func (ls *leaderShard) put(t *testing.T, key int64, val uint64) {
	t.Helper()
	ls.mu.Lock()
	ls.data[key] = val
	err := ls.jnl.Append(journal.Op{Kind: journal.OpInsert, Key: key, Val: val})
	ls.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

func (ls *leaderShard) del(t *testing.T, key int64) {
	t.Helper()
	ls.mu.Lock()
	delete(ls.data, key)
	err := ls.jnl.Append(journal.Op{Kind: journal.OpDelete, Key: key})
	ls.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

func (ls *leaderShard) hubShard() HubShard {
	return HubShard{
		Journal: ls.jnl,
		Snapshot: func(yield func([]KV) error) (int64, error) {
			// Capture the durable bound BEFORE reading state — the fuzzy
			// snapshot contract.
			snapSeq := ls.jnl.SeqDurable()
			ls.mu.Lock()
			kvs := make([]KV, 0, len(ls.data))
			for k, v := range ls.data {
				kvs = append(kvs, KV{Key: k, Val: v})
			}
			ls.mu.Unlock()
			sort.Slice(kvs, func(a, b int) bool { return kvs[a].Key < kvs[b].Key })
			return snapSeq, yield(kvs)
		},
	}
}

func (ls *leaderShard) snapshot() map[int64]uint64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := make(map[int64]uint64, len(ls.data))
	for k, v := range ls.data {
		out[k] = v
	}
	return out
}

// followerShard applies the stream into a map.
type followerShard struct {
	mu   sync.Mutex
	data map[int64]uint64
}

func (fs *followerShard) applierShard() ApplierShard {
	return ApplierShard{
		Apply: func(o Ops) error {
			fs.mu.Lock()
			defer fs.mu.Unlock()
			for _, op := range o.Ops {
				switch op.Kind {
				case journal.OpInsert:
					fs.data[op.Key] = op.Val
				case journal.OpDelete:
					delete(fs.data, op.Key)
				}
			}
			return nil
		},
		Reset: func() error {
			fs.mu.Lock()
			fs.data = make(map[int64]uint64)
			fs.mu.Unlock()
			return nil
		},
		Load: func(kvs []KV) error {
			fs.mu.Lock()
			for _, kv := range kvs {
				fs.data[kv.Key] = kv.Val
			}
			fs.mu.Unlock()
			return nil
		},
	}
}

func (fs *followerShard) snapshot() map[int64]uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[int64]uint64, len(fs.data))
	for k, v := range fs.data {
		out[k] = v
	}
	return out
}

type replPair struct {
	leaders   []*leaderShard
	followers []*followerShard
	hub       *Hub
	applier   *Applier
	addr      string
}

func startHub(t *testing.T, leaders []*leaderShard, epoch uint64) (*Hub, string) {
	t.Helper()
	shards := make([]HubShard, len(leaders))
	for i, ls := range leaders {
		shards[i] = ls.hubShard()
	}
	hub := NewHub(epoch, shards, t.Logf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(ln)
	t.Cleanup(func() { ln.Close(); hub.Close() })
	return hub, ln.Addr().String()
}

func startPair(t *testing.T, nShards int, followerID uint64) *replPair {
	t.Helper()
	dir := t.TempDir()
	leaders := make([]*leaderShard, nShards)
	for i := range leaders {
		leaders[i] = newLeaderShard(t, dir, i)
	}
	hub, addr := startHub(t, leaders, 1)
	followers := make([]*followerShard, nShards)
	shards := make([]ApplierShard, nShards)
	for i := range followers {
		followers[i] = &followerShard{data: make(map[int64]uint64)}
		shards[i] = followers[i].applierShard()
	}
	ap := NewApplier(ApplierConfig{
		Addr:   addr,
		ID:     followerID,
		Shards: shards,
		Logf:   t.Logf,
	})
	go ap.Run()
	t.Cleanup(ap.Stop)
	return &replPair{leaders: leaders, followers: followers, hub: hub, applier: ap, addr: addr}
}

func (p *replPair) waitCaughtUp(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for s, ls := range p.leaders {
			if p.applier.AppliedSeq(s) < ls.jnl.SeqDurable() {
				ok = false
				break
			}
		}
		if ok {
			for s := range p.leaders {
				if !reflect.DeepEqual(p.leaders[s].snapshot(), p.followers[s].snapshot()) {
					ok = false // applied seq can lead state mid-resync; keep waiting
					break
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for s := range p.leaders {
				want, got := p.leaders[s].snapshot(), p.followers[s].snapshot()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("shard %d diverged: leader %d keys, follower %d keys (applied %v)",
						s, len(want), len(got), p.applier.AppliedSeqs())
				}
			}
			t.Fatalf("follower never caught up: applied %v", p.applier.AppliedSeqs())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Live streaming: a connected follower converges on the leader's state
// across multiple shards, with deletes mixed in.
func TestHubApplierLiveStream(t *testing.T) {
	p := startPair(t, 2, 11)
	for i := int64(0); i < 400; i++ {
		s := int(i) % 2
		p.leaders[s].put(t, i, uint64(i)*7)
		if i%5 == 4 {
			p.leaders[s].del(t, i-4)
		}
		if i%31 == 0 {
			if err := p.leaders[s].jnl.Commit(); err != nil {
				t.Fatal(err)
			}
			p.hub.Poke()
		}
	}
	for _, ls := range p.leaders {
		if err := ls.jnl.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	p.hub.Poke()
	p.waitCaughtUp(t)
	if st := p.applier.Stats(); st.Snapshots != 0 {
		t.Fatalf("live stream took %d snapshots, want 0", st.Snapshots)
	}
}

// A follower connecting late catches up from sealed segments spanning
// several checkpoints — the retained-log path, no snapshot.
func TestCatchUpFromRetainedSegments(t *testing.T) {
	dir := t.TempDir()
	ls := newLeaderShard(t, dir, 0)
	// A registered-follower floor of 0 retains everything.
	ls.jnl.SetRetention(func() int64 { return 0 }, 1<<20)
	for i := int64(0); i < 300; i++ {
		ls.put(t, i, uint64(i)+1)
		if i%100 == 99 {
			if err := ls.jnl.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := ls.jnl.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ls.jnl.Commit()

	hub, addr := startHub(t, []*leaderShard{ls}, 1)
	fs := &followerShard{data: make(map[int64]uint64)}
	ap := NewApplier(ApplierConfig{Addr: addr, ID: 21, Shards: []ApplierShard{fs.applierShard()}, Logf: t.Logf})
	go ap.Run()
	defer ap.Stop()

	p := &replPair{leaders: []*leaderShard{ls}, followers: []*followerShard{fs}, hub: hub, applier: ap}
	p.waitCaughtUp(t)
	if st := ap.Stats(); st.Snapshots != 0 {
		t.Fatalf("segment catch-up took %d snapshots, want 0", st.Snapshots)
	}
	// The applier is caught up, but the hub only learns that when the
	// ack frame lands; poll rather than racing the wire.
	ackDeadline := time.Now().Add(10 * time.Second)
	for {
		st := hub.Stats()
		if len(st.Followers) == 1 && st.Followers[0].LagSeqs == 0 {
			break
		}
		if time.Now().After(ackDeadline) {
			t.Fatalf("hub stats after catch-up: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// A follower whose position was evicted from the retained log must be
// degraded to a snapshot resync and still converge exactly.
func TestEvictedFollowerSnapshotResync(t *testing.T) {
	dir := t.TempDir()
	ls := newLeaderShard(t, dir, 0)
	// Budget below one segment: every checkpoint evicts the history.
	ls.jnl.SetRetention(func() int64 { return 0 }, 1)
	for i := int64(0); i < 150; i++ {
		ls.put(t, i, uint64(i)+1)
	}
	ls.jnl.Commit()
	ls.jnl.Checkpoint()
	for i := int64(150); i < 200; i++ {
		ls.put(t, i, uint64(i)+1)
	}
	ls.jnl.Commit()

	if low := ls.jnl.LowestSeq(); low == 0 {
		t.Fatal("test setup: history not evicted")
	}
	hub, addr := startHub(t, []*leaderShard{ls}, 1)
	fs := &followerShard{data: make(map[int64]uint64)}
	ap := NewApplier(ApplierConfig{Addr: addr, ID: 31, Shards: []ApplierShard{fs.applierShard()}, Logf: t.Logf})
	go ap.Run()
	defer ap.Stop()

	p := &replPair{leaders: []*leaderShard{ls}, followers: []*followerShard{fs}, hub: hub, applier: ap}
	p.waitCaughtUp(t)
	if st := ap.Stats(); st.Snapshots == 0 {
		t.Fatal("evicted follower caught up without a snapshot?")
	}
}

// A follower carrying sequences from another epoch (a previous leader's
// lineage) must be resynced from a snapshot, never tailed.
func TestEpochMismatchForcesSnapshot(t *testing.T) {
	dir := t.TempDir()
	ls := newLeaderShard(t, dir, 0)
	ls.jnl.SetRetention(func() int64 { return 0 }, 1<<20)
	for i := int64(0); i < 50; i++ {
		ls.put(t, i, uint64(i)+1)
	}
	ls.jnl.Commit()

	hub, addr := startHub(t, []*leaderShard{ls}, 7)
	fs := &followerShard{data: make(map[int64]uint64)}
	ap := NewApplier(ApplierConfig{
		Addr:   addr,
		ID:     41,
		Epoch:  3,           // a dead leader's epoch
		Seqs:   []int64{50}, // plausible position in the old lineage
		Shards: []ApplierShard{fs.applierShard()},
		Logf:   t.Logf,
	})
	go ap.Run()
	defer ap.Stop()

	p := &replPair{leaders: []*leaderShard{ls}, followers: []*followerShard{fs}, hub: hub, applier: ap}
	p.waitCaughtUp(t)
	if st := ap.Stats(); st.Snapshots == 0 {
		t.Fatal("epoch-mismatched follower was tailed, want snapshot resync")
	}
	if got := ap.Epoch(); got != 7 {
		t.Fatalf("follower epoch = %d, want 7 (adopted from leader)", got)
	}
}

// WaitAcked is the semi-sync barrier: it must release once enough
// followers ack, and time out — without releasing — when they can't.
func TestWaitAcked(t *testing.T) {
	p := startPair(t, 1, 51)
	p.leaders[0].put(t, 1, 100)
	if err := p.leaders[0].jnl.Commit(); err != nil {
		t.Fatal(err)
	}
	seq := p.leaders[0].jnl.SeqDurable()
	p.hub.Poke()
	if !p.hub.WaitAcked(0, seq, 1, 5*time.Second) {
		t.Fatal("WaitAcked(k=1) timed out with a live follower")
	}
	// Only one follower exists: k=2 must time out, not falsely succeed.
	start := time.Now()
	if p.hub.WaitAcked(0, seq, 2, 100*time.Millisecond) {
		t.Fatal("WaitAcked(k=2) succeeded with one follower")
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Fatal("WaitAcked(k=2) returned before its timeout")
	}
}

// The retention floor follows the slowest registered follower and stays
// pinned while it is disconnected.
func TestRetentionFloorTracksFollowers(t *testing.T) {
	p := startPair(t, 1, 61)
	if got := p.hub.RetentionFloor(0); got != math.MaxInt64 {
		// The follower may already have registered with seq 0.
		if got != 0 {
			t.Fatalf("floor before acks = %d, want 0 or MaxInt64", got)
		}
	}
	p.leaders[0].put(t, 1, 1)
	p.leaders[0].jnl.Commit()
	seq := p.leaders[0].jnl.SeqDurable()
	p.hub.Poke()
	if !p.hub.WaitAcked(0, seq, 1, 5*time.Second) {
		t.Fatal("follower never acked")
	}
	if got := p.hub.RetentionFloor(0); got != seq {
		t.Fatalf("floor = %d, want %d", got, seq)
	}
	// Disconnect: the registration (and floor) must survive.
	p.applier.Stop()
	time.Sleep(20 * time.Millisecond)
	if got := p.hub.RetentionFloor(0); got != seq {
		t.Fatalf("floor after disconnect = %d, want %d (registration dropped?)", got, seq)
	}
}
