// Package repl implements oplog replication for the sharded serving
// engine: a leader-side Hub that ships sequence-numbered journal records
// to follower processes, and a follower-side Applier that replays them
// into its own engine and acknowledges the highest contiguously applied
// sequence per shard.
//
// The design follows the journal's durability discipline end to end:
//
//   - The Hub only ever ships records at or below the shard journal's
//     durable sequence (journal.Tail enforces this), so a leader crash
//     can never retract a shipped record.
//   - A follower that falls behind the leader's retained log — its
//     resume sequence was pruned or budget-evicted — is degraded to a
//     snapshot resync: the leader streams a fuzzy engine snapshot
//     captured at a known sequence, then tails the log from there.
//     Replay is idempotent (insert/delete are set-semantics), so a
//     snapshot overlapping subsequent ops converges.
//   - Epochs guard lineage: a promoted leader runs under a fresh random
//     epoch, and a follower whose stored epoch disagrees is resynced
//     from a snapshot rather than tailed — its log position belongs to a
//     history that may have diverged at the failover point.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"btreeperf/internal/journal"
)

// Frame types on the replication connection. Every frame is a 4-byte
// big-endian length (of what follows, type byte included), a type byte,
// and a type-specific payload with little-endian integer fields.
const (
	FrameHello     = 1 // follower → leader: id, epoch, per-shard resume seqs
	FrameHelloAck  = 2 // leader → follower: leader epoch, per-shard mode
	FrameOps       = 3 // leader → follower: a batch of oplog records for one shard
	FrameAck       = 4 // follower → leader: highest contiguously applied seq
	FrameSnapBegin = 5 // leader → follower: snapshot resync starts at snapSeq
	FrameSnapData  = 6 // leader → follower: a batch of key/value pairs
	FrameSnapEnd   = 7 // leader → follower: snapshot complete, log tail follows
	FrameError     = 8 // either direction: fatal protocol error, then close
)

// Per-shard modes in a HelloAck.
const (
	ModeTail     = 0 // resume seq is retained: log catch-up, then stream
	ModeSnapshot = 1 // resume seq evicted (or epoch mismatch): full resync
)

// MaxFrame bounds a frame's encoded size; a peer announcing more is
// corrupt or hostile and the connection is dropped.
const MaxFrame = 1 << 20

// MaxSnapBatch is the number of key/value pairs per SnapData frame.
const MaxSnapBatch = 512

// MaxOpsBatch is the number of oplog records per Ops frame.
const MaxOpsBatch = 1024

// KV is one key/value pair in a snapshot stream.
type KV struct {
	Key int64
	Val uint64
}

// ErrFrameTooLarge reports a length prefix above MaxFrame.
var ErrFrameTooLarge = errors.New("repl: frame exceeds MaxFrame")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if 1+len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr[0:], uint32(1+len(payload)))
	hdr[4] = typ
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one frame, enforcing MaxFrame.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n < 1 {
		return 0, nil, errors.New("repl: empty frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// Hello is the follower's opening frame.
type Hello struct {
	ID    uint64  // persistent random follower identity
	Epoch uint64  // leader epoch the resume seqs belong to (0 = none)
	Seqs  []int64 // per-shard highest applied global sequence
}

// EncodeHello encodes h.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 8+8+4+8*len(h.Seqs))
	binary.LittleEndian.PutUint64(b[0:], h.ID)
	binary.LittleEndian.PutUint64(b[8:], h.Epoch)
	binary.LittleEndian.PutUint32(b[16:], uint32(len(h.Seqs)))
	for i, s := range h.Seqs {
		binary.LittleEndian.PutUint64(b[20+8*i:], uint64(s))
	}
	return b
}

// ParseHello decodes a Hello payload.
func ParseHello(b []byte) (Hello, error) {
	if len(b) < 20 {
		return Hello{}, errors.New("repl: short hello")
	}
	n := int(binary.LittleEndian.Uint32(b[16:]))
	if n < 0 || len(b) != 20+8*n {
		return Hello{}, errors.New("repl: malformed hello")
	}
	h := Hello{
		ID:    binary.LittleEndian.Uint64(b[0:]),
		Epoch: binary.LittleEndian.Uint64(b[8:]),
		Seqs:  make([]int64, n),
	}
	for i := range h.Seqs {
		h.Seqs[i] = int64(binary.LittleEndian.Uint64(b[20+8*i:]))
	}
	return h, nil
}

// HelloAck is the leader's handshake reply.
type HelloAck struct {
	Epoch uint64 // the leader's current epoch; the follower adopts it
	Modes []byte // per-shard ModeTail / ModeSnapshot
}

// EncodeHelloAck encodes a.
func EncodeHelloAck(a HelloAck) []byte {
	b := make([]byte, 8+4+len(a.Modes))
	binary.LittleEndian.PutUint64(b[0:], a.Epoch)
	binary.LittleEndian.PutUint32(b[8:], uint32(len(a.Modes)))
	copy(b[12:], a.Modes)
	return b
}

// ParseHelloAck decodes a HelloAck payload.
func ParseHelloAck(b []byte) (HelloAck, error) {
	if len(b) < 12 {
		return HelloAck{}, errors.New("repl: short helloack")
	}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if n < 0 || len(b) != 12+n {
		return HelloAck{}, errors.New("repl: malformed helloack")
	}
	for _, m := range b[12 : 12+n] {
		if m != ModeTail && m != ModeSnapshot {
			return HelloAck{}, errors.New("repl: unknown shard mode")
		}
	}
	return HelloAck{
		Epoch: binary.LittleEndian.Uint64(b[0:]),
		Modes: append([]byte(nil), b[12:12+n]...),
	}, nil
}

// Ops is a batch of oplog records for one shard: records carrying global
// sequences First..First+len(Ops)-1. Head is the leader's durable head
// for the shard at send time, letting the follower measure its own lag.
type Ops struct {
	Shard int
	First int64
	Head  int64
	Ops   []journal.Op
}

// EncodeOps encodes o.
func EncodeOps(o Ops) []byte {
	b := make([]byte, 4+8+8+4, 4+8+8+4+len(o.Ops)*journal.OpRecSize)
	binary.LittleEndian.PutUint32(b[0:], uint32(o.Shard))
	binary.LittleEndian.PutUint64(b[4:], uint64(o.First))
	binary.LittleEndian.PutUint64(b[12:], uint64(o.Head))
	binary.LittleEndian.PutUint32(b[20:], uint32(len(o.Ops)))
	for _, op := range o.Ops {
		b = journal.AppendEncodedOp(b, op)
	}
	return b
}

// ParseOps decodes an Ops payload. The records reuse the journal's CRC
// framing, so a corrupted record fails decode here, not at apply time.
func ParseOps(b []byte) (Ops, error) {
	if len(b) < 24 {
		return Ops{}, errors.New("repl: short ops")
	}
	n := int(binary.LittleEndian.Uint32(b[20:]))
	if n < 0 || n > MaxOpsBatch || len(b) != 24+n*journal.OpRecSize {
		return Ops{}, errors.New("repl: malformed ops")
	}
	ops := journal.DecodeOps(b[24:])
	if len(ops) != n {
		return Ops{}, fmt.Errorf("repl: ops batch decoded %d/%d records", len(ops), n)
	}
	return Ops{
		Shard: int(binary.LittleEndian.Uint32(b[0:])),
		First: int64(binary.LittleEndian.Uint64(b[4:])),
		Head:  int64(binary.LittleEndian.Uint64(b[12:])),
		Ops:   ops,
	}, nil
}

// Ack reports the follower's highest contiguously applied sequence for
// one shard (also sent after a snapshot, at the snapshot's sequence).
type Ack struct {
	Shard int
	Seq   int64
}

// EncodeAck encodes a.
func EncodeAck(a Ack) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:], uint32(a.Shard))
	binary.LittleEndian.PutUint64(b[4:], uint64(a.Seq))
	return b
}

// ParseAck decodes an Ack payload.
func ParseAck(b []byte) (Ack, error) {
	if len(b) != 12 {
		return Ack{}, errors.New("repl: malformed ack")
	}
	return Ack{
		Shard: int(binary.LittleEndian.Uint32(b[0:])),
		Seq:   int64(binary.LittleEndian.Uint64(b[4:])),
	}, nil
}

// EncodeSnapBegin opens a snapshot resync for one shard: the follower
// discards its shard state and loads the SnapData stream that follows.
func EncodeSnapBegin(shard int) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(shard))
	return b
}

// ParseSnapBegin decodes a SnapBegin payload.
func ParseSnapBegin(b []byte) (int, error) {
	if len(b) != 4 {
		return 0, errors.New("repl: malformed snapbegin")
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

// SnapData is a batch of pairs within a snapshot stream.
type SnapData struct {
	Shard int
	KVs   []KV
}

// EncodeSnapData encodes s.
func EncodeSnapData(s SnapData) []byte {
	b := make([]byte, 4+4+16*len(s.KVs))
	binary.LittleEndian.PutUint32(b[0:], uint32(s.Shard))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(s.KVs)))
	for i, kv := range s.KVs {
		binary.LittleEndian.PutUint64(b[8+16*i:], uint64(kv.Key))
		binary.LittleEndian.PutUint64(b[16+16*i:], kv.Val)
	}
	return b
}

// ParseSnapData decodes a SnapData payload.
func ParseSnapData(b []byte) (SnapData, error) {
	if len(b) < 8 {
		return SnapData{}, errors.New("repl: short snapdata")
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if n < 0 || n > MaxSnapBatch || len(b) != 8+16*n {
		return SnapData{}, errors.New("repl: malformed snapdata")
	}
	s := SnapData{
		Shard: int(binary.LittleEndian.Uint32(b[0:])),
		KVs:   make([]KV, n),
	}
	for i := range s.KVs {
		s.KVs[i].Key = int64(binary.LittleEndian.Uint64(b[8+16*i:]))
		s.KVs[i].Val = binary.LittleEndian.Uint64(b[16+16*i:])
	}
	return s, nil
}

// SnapEnd closes a shard's snapshot stream. Seq is the durable sequence
// the fuzzy snapshot is consistent with: the scan started at it, so the
// snapshot plus an idempotent replay of every record after Seq converges
// to the leader's state. The follower adopts Seq as its applied position.
type SnapEnd struct {
	Shard int
	Seq   int64
}

// EncodeSnapEnd encodes s.
func EncodeSnapEnd(s SnapEnd) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:], uint32(s.Shard))
	binary.LittleEndian.PutUint64(b[4:], uint64(s.Seq))
	return b
}

// ParseSnapEnd decodes a SnapEnd payload.
func ParseSnapEnd(b []byte) (SnapEnd, error) {
	if len(b) != 12 {
		return SnapEnd{}, errors.New("repl: malformed snapend")
	}
	return SnapEnd{
		Shard: int(binary.LittleEndian.Uint32(b[0:])),
		Seq:   int64(binary.LittleEndian.Uint64(b[4:])),
	}, nil
}
