package repl

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/journal"
)

// HubShard is the leader-side view of one shard: the journal whose oplog
// is shipped, and a fuzzy snapshot scan for followers too far behind the
// retained log. Snapshot must capture the shard's durable sequence
// BEFORE scanning and return it: the snapshot then needs only an
// idempotent replay of records after that sequence to converge, no
// matter what the scan raced with.
type HubShard struct {
	Journal  *journal.Journal
	Snapshot func(yield func(kvs []KV) error) (snapSeq int64, err error)
}

// writeTimeout bounds a single frame write to a follower; a stuck peer
// is dropped, not allowed to pin a shipping goroutine forever.
const writeTimeout = 10 * time.Second

// handshakeTimeout bounds the wait for a connecting follower's Hello.
const handshakeTimeout = 10 * time.Second

// pokeInterval is the fallback poll period when no commit wakes shippers.
const pokeInterval = 50 * time.Millisecond

// followerState is the hub's durable memory of one follower, surviving
// disconnects: its acked positions keep holding the retention floor (up
// to the journals' byte budgets) so a restarting follower can usually
// catch up from the log instead of resyncing.
type followerState struct {
	id        uint64
	addr      string
	connected bool
	acked     []int64 // per shard; guarded by Hub.mu
	heads     []int64 // leader durable head at last ship; guarded by Hub.mu
	poke      chan struct{}
}

// Hub is the leader side: it accepts follower connections, catches each
// one up from retained log segments (or a snapshot), then streams the
// live oplog, tracking per-follower acks for the retention floor and for
// semi-synchronous commit waits.
type Hub struct {
	epoch  uint64
	shards []HubShard
	logf   func(format string, args ...any)

	mu        sync.Mutex
	followers map[uint64]*followerState
	conns     map[net.Conn]struct{}
	ackCh     chan struct{} // closed+replaced on every ack: broadcast
	closed    bool
	wg        sync.WaitGroup

	opsShipped   atomic.Int64
	bytesShipped atomic.Int64
	acks         atomic.Int64
	snapshots    atomic.Int64
	evictions    atomic.Int64
}

// NewHub creates a hub for the given epoch and shards. logf may be nil.
func NewHub(epoch uint64, shards []HubShard, logf func(string, ...any)) *Hub {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Hub{
		epoch:     epoch,
		shards:    shards,
		logf:      logf,
		followers: make(map[uint64]*followerState),
		conns:     make(map[net.Conn]struct{}),
		ackCh:     make(chan struct{}),
	}
}

// Epoch returns the hub's replication epoch.
func (h *Hub) Epoch() uint64 { return h.epoch }

// Serve accepts follower connections until the listener closes. Call
// from its own goroutine; Close unblocks it.
func (h *Hub) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			c.Close()
			return nil
		}
		h.conns[c] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go func() {
			defer h.wg.Done()
			h.handleConn(c)
		}()
	}
}

// Close drops every follower connection and waits for their goroutines.
// The caller closes the listener (Serve then returns nil).
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	for c := range h.conns {
		c.Close()
	}
	h.mu.Unlock()
	h.wg.Wait()
}

// Poke wakes every connected follower's shipping loop — call after a
// group commit advances a shard's durable sequence.
func (h *Hub) Poke() {
	h.mu.Lock()
	for _, f := range h.followers {
		if f.connected && f.poke != nil {
			select {
			case f.poke <- struct{}{}:
			default:
			}
		}
	}
	h.mu.Unlock()
}

// RetentionFloor returns the lowest acked sequence for the shard across
// all registered followers — the sequence the journal must keep retained
// (within its byte budget) for log catch-up. math.MaxInt64 when no
// follower is registered.
func (h *Hub) RetentionFloor(shard int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	floor := int64(math.MaxInt64)
	for _, f := range h.followers {
		if f.acked[shard] < floor {
			floor = f.acked[shard]
		}
	}
	return floor
}

// WaitAcked blocks until at least k followers have acked seq on the
// shard, or the timeout expires. k <= 0 is immediately true. This is the
// semi-synchronous commit barrier: with k = #followers, any follower
// with the maximal applied sequence is guaranteed to hold every write
// acknowledged through this wait — the failover promotion invariant.
func (h *Hub) WaitAcked(shard int, seq int64, k int, timeout time.Duration) bool {
	if k <= 0 {
		return true
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		h.mu.Lock()
		n := 0
		for _, f := range h.followers {
			if f.acked[shard] >= seq {
				n++
			}
		}
		ch := h.ackCh
		h.mu.Unlock()
		if n >= k {
			return true
		}
		if timer == nil {
			timer = time.NewTimer(timeout)
		}
		select {
		case <-ch:
		case <-timer.C:
			return false
		}
	}
}

// broadcastAck wakes every WaitAcked waiter.
func (h *Hub) broadcastAck() {
	h.mu.Lock()
	close(h.ackCh)
	h.ackCh = make(chan struct{})
	h.mu.Unlock()
}

func (h *Hub) handleConn(c net.Conn) {
	defer func() {
		c.Close()
		h.mu.Lock()
		delete(h.conns, c)
		h.mu.Unlock()
	}()

	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := ReadFrame(c)
	if err != nil || typ != FrameHello {
		h.logf("repl: %s: bad handshake: %v", c.RemoteAddr(), err)
		return
	}
	hello, err := ParseHello(payload)
	if err != nil || len(hello.Seqs) != len(h.shards) {
		WriteFrame(c, FrameError, []byte(fmt.Sprintf("want %d shards", len(h.shards))))
		return
	}
	c.SetReadDeadline(time.Time{})

	// A follower from another epoch carries positions from a history that
	// may have diverged at a failover: resync everything from snapshots.
	startSeqs := append([]int64(nil), hello.Seqs...)
	if hello.Epoch != 0 && hello.Epoch != h.epoch {
		for i := range startSeqs {
			startSeqs[i] = 0
		}
	}

	modes := make([]byte, len(h.shards))
	for s := range h.shards {
		if hello.Epoch != 0 && hello.Epoch != h.epoch {
			modes[s] = ModeSnapshot
		} else if startSeqs[s] < h.shards[s].Journal.LowestSeq() {
			modes[s] = ModeSnapshot
		}
	}
	if hello.Epoch != 0 && hello.Epoch != h.epoch {
		h.logf("repl: follower %x from epoch %d (ours %d): full snapshot resync", hello.ID, hello.Epoch, h.epoch)
	}

	h.mu.Lock()
	f := h.followers[hello.ID]
	if f == nil {
		f = &followerState{
			id:    hello.ID,
			acked: make([]int64, len(h.shards)),
			heads: make([]int64, len(h.shards)),
		}
		h.followers[hello.ID] = f
	}
	f.addr = c.RemoteAddr().String()
	f.connected = true
	poke := make(chan struct{}, 1)
	f.poke = poke
	for s, seq := range startSeqs {
		if modes[s] == ModeTail && seq > f.acked[s] {
			f.acked[s] = seq
		}
	}
	h.mu.Unlock()

	defer func() {
		h.mu.Lock()
		if f.poke == poke { // a reconnect may have replaced us
			f.connected = false
			f.poke = nil
		}
		h.mu.Unlock()
	}()

	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := WriteFrame(c, FrameHelloAck, EncodeHelloAck(HelloAck{Epoch: h.epoch, Modes: modes})); err != nil {
		return
	}

	// Acks arrive on their own goroutine so a slow snapshot stream never
	// deadlocks against a follower trying to ack previous batches.
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer c.Close() // unblock the shipping loop on reader death
		for {
			typ, payload, err := ReadFrame(c)
			if err != nil {
				return
			}
			if typ != FrameAck {
				h.logf("repl: follower %x sent frame %d, dropping", hello.ID, typ)
				return
			}
			ack, err := ParseAck(payload)
			if err != nil || ack.Shard < 0 || ack.Shard >= len(h.shards) {
				return
			}
			h.mu.Lock()
			if ack.Seq > f.acked[ack.Shard] {
				f.acked[ack.Shard] = ack.Seq
			}
			h.mu.Unlock()
			h.acks.Add(1)
			h.broadcastAck()
		}
	}()

	h.ship(c, f, poke, startSeqs, modes)
}

// ship is a follower's shipping loop: snapshot what must be resynced,
// then stream every shard's retained log and live tail, round-robin.
func (h *Hub) ship(c net.Conn, f *followerState, poke chan struct{}, startSeqs []int64, modes []byte) {
	tails := make([]*journal.Tail, len(h.shards))
	defer func() {
		for _, t := range tails {
			if t != nil {
				t.Close()
			}
		}
	}()

	for s := range h.shards {
		if modes[s] == ModeSnapshot {
			snapSeq, err := h.sendSnapshot(c, s)
			if err != nil {
				h.logf("repl: follower %x shard %d snapshot: %v", f.id, s, err)
				return
			}
			startSeqs[s] = snapSeq
		}
		tails[s] = h.shards[s].Journal.Tail(startSeqs[s])
	}

	ticker := time.NewTicker(pokeInterval)
	defer ticker.Stop()
	for {
		progress := false
		for s := range h.shards {
			first, ops, err := tails[s].Next(MaxOpsBatch)
			if err == journal.ErrEvicted {
				// The follower's position fell off the retained log while
				// it was connected (budget eviction mid-stream): degrade
				// to a snapshot resync on the spot.
				h.evictions.Add(1)
				h.logf("repl: follower %x shard %d evicted at seq %d, snapshot resync", f.id, s, tails[s].Pos())
				tails[s].Close()
				snapSeq, serr := h.sendSnapshot(c, s)
				if serr != nil {
					return
				}
				tails[s] = h.shards[s].Journal.Tail(snapSeq)
				progress = true
				continue
			}
			if err != nil {
				h.logf("repl: follower %x shard %d tail: %v", f.id, s, err)
				return
			}
			if len(ops) == 0 {
				continue
			}
			head := h.shards[s].Journal.SeqDurable()
			frame := EncodeOps(Ops{Shard: s, First: first, Head: head, Ops: ops})
			c.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err := WriteFrame(c, FrameOps, frame); err != nil {
				return
			}
			h.opsShipped.Add(int64(len(ops)))
			h.bytesShipped.Add(int64(len(frame) + 5))
			h.mu.Lock()
			f.heads[s] = head
			h.mu.Unlock()
			progress = true
		}
		if !progress {
			select {
			case <-poke:
			case <-ticker.C:
			}
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return
			}
		}
	}
}

// sendSnapshot streams one shard's fuzzy snapshot.
func (h *Hub) sendSnapshot(c net.Conn, s int) (int64, error) {
	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := WriteFrame(c, FrameSnapBegin, EncodeSnapBegin(s)); err != nil {
		return 0, err
	}
	snapSeq, err := h.shards[s].Snapshot(func(kvs []KV) error {
		for len(kvs) > 0 {
			n := len(kvs)
			if n > MaxSnapBatch {
				n = MaxSnapBatch
			}
			frame := EncodeSnapData(SnapData{Shard: s, KVs: kvs[:n]})
			c.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err := WriteFrame(c, FrameSnapData, frame); err != nil {
				return err
			}
			h.bytesShipped.Add(int64(len(frame) + 5))
			kvs = kvs[n:]
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := WriteFrame(c, FrameSnapEnd, EncodeSnapEnd(SnapEnd{Shard: s, Seq: snapSeq})); err != nil {
		return 0, err
	}
	h.snapshots.Add(1)
	return snapSeq, nil
}

// FollowerStats is one follower's replication position as the leader
// sees it.
type FollowerStats struct {
	ID        uint64
	Addr      string
	Connected bool
	Acked     []int64 // per shard: highest acked sequence
	LagSeqs   int64   // Σ over shards of (leader durable head − acked)
	LagBytes  int64   // LagSeqs × the wire size of one record
}

// HubStats is a point-in-time summary of the hub.
type HubStats struct {
	Epoch        uint64
	Followers    []FollowerStats
	OpsShipped   int64
	BytesShipped int64
	Acks         int64
	Snapshots    int64
	Evictions    int64
}

// Stats snapshots the hub's counters and per-follower lag.
func (h *Hub) Stats() HubStats {
	heads := make([]int64, len(h.shards))
	for s := range h.shards {
		heads[s] = h.shards[s].Journal.SeqDurable()
	}
	st := HubStats{
		Epoch:        h.epoch,
		OpsShipped:   h.opsShipped.Load(),
		BytesShipped: h.bytesShipped.Load(),
		Acks:         h.acks.Load(),
		Snapshots:    h.snapshots.Load(),
		Evictions:    h.evictions.Load(),
	}
	h.mu.Lock()
	for _, f := range h.followers {
		fs := FollowerStats{
			ID:        f.id,
			Addr:      f.addr,
			Connected: f.connected,
			Acked:     append([]int64(nil), f.acked...),
		}
		for s := range heads {
			if d := heads[s] - f.acked[s]; d > 0 {
				fs.LagSeqs += d
			}
		}
		fs.LagBytes = fs.LagSeqs * journal.OpRecSize
		st.Followers = append(st.Followers, fs)
	}
	h.mu.Unlock()
	return st
}
