package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ApplierShard is the follower-side view of one shard. Apply must make
// the batch durable (or as durable as the follower's engine is
// configured to be) before returning: the sequence is acked to the
// leader right after, and an acked sequence is a promise the write
// survives a follower restart on durable engines.
type ApplierShard struct {
	// Apply replays a batch of oplog records in order and commits.
	Apply func(ops Ops) error
	// Reset discards the shard's entire state (snapshot resync begins).
	Reset func() error
	// Load inserts a snapshot batch (between Reset and snapshot end).
	Load func(kvs []KV) error
}

// ApplierConfig configures a follower's replication client.
type ApplierConfig struct {
	Addr   string  // leader's replication listener
	ID     uint64  // persistent follower identity
	Epoch  uint64  // leader epoch the start seqs belong to (0 = none)
	Seqs   []int64 // per-shard applied seqs to resume from
	Shards []ApplierShard
	// OnProgress, if set, runs after every applied batch or completed
	// snapshot with the current epoch and applied seqs — the hook where
	// btserved persists its replication sidecar state. It must not block.
	OnProgress func(epoch uint64, seqs []int64)
	Logf       func(format string, args ...any)
	// RedialWait is the pause between connection attempts (default 250ms).
	RedialWait time.Duration
}

// Applier connects to a leader and replays its oplog stream. Run retries
// the connection until Stop; a follower outliving a dead leader keeps
// its last applied state and serves bounded-staleness reads.
type Applier struct {
	cfg ApplierConfig

	mu      sync.Mutex
	conn    net.Conn
	stopped bool
	epoch   uint64
	applied []int64
	heads   []int64 // leader durable head per shard, from Ops frames

	// done is closed when Run returns — after the last in-flight Apply
	// has landed, so Wait() gives promotion a quiesced engine.
	done chan struct{}

	opsApplied atomic.Int64
	snapshots  atomic.Int64
	reconnects atomic.Int64
}

// NewApplier builds an applier; call Run to start streaming.
func NewApplier(cfg ApplierConfig) *Applier {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RedialWait <= 0 {
		cfg.RedialWait = 250 * time.Millisecond
	}
	seqs := make([]int64, len(cfg.Shards))
	copy(seqs, cfg.Seqs)
	return &Applier{
		cfg:     cfg,
		epoch:   cfg.Epoch,
		applied: seqs,
		heads:   make([]int64, len(cfg.Shards)),
		done:    make(chan struct{}),
	}
}

// Run streams from the leader until Stop, reconnecting on any error.
// Call from its own goroutine.
func (a *Applier) Run() {
	defer close(a.done)
	for {
		a.mu.Lock()
		if a.stopped {
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
		if err := a.session(); err != nil {
			a.cfg.Logf("repl: follower: %v", err)
		}
		a.mu.Lock()
		stopped := a.stopped
		a.mu.Unlock()
		if stopped {
			return
		}
		a.reconnects.Add(1)
		time.Sleep(a.cfg.RedialWait)
	}
}

// Stop ends the stream and unblocks Run. The applier keeps its applied
// state; AppliedSeqs remains valid (promotion reads it).
func (a *Applier) Stop() {
	a.mu.Lock()
	a.stopped = true
	if a.conn != nil {
		a.conn.Close()
	}
	a.mu.Unlock()
}

// Wait blocks until Run has returned — i.e. until the last in-flight
// Apply has committed. Promotion must Stop then Wait before mutating the
// engines under a new role: a straggler apply racing post-promotion
// writes would silently diverge the shard.
func (a *Applier) Wait() { <-a.done }

// AppliedSeqs returns the per-shard highest applied sequences.
func (a *Applier) AppliedSeqs() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int64(nil), a.applied...)
}

// AppliedSeq returns one shard's highest applied sequence — the bound
// the serving layer compares a client's min-seq against.
func (a *Applier) AppliedSeq(shard int) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= len(a.applied) {
		return 0
	}
	return a.applied[shard]
}

// Epoch returns the leader epoch the applied seqs belong to.
func (a *Applier) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// ApplierStats is a point-in-time summary of the follower's stream.
type ApplierStats struct {
	Epoch      uint64
	Applied    []int64 // per shard
	Heads      []int64 // leader durable head per shard at last batch
	LagSeqs    int64   // Σ max(0, head − applied)
	OpsApplied int64
	Snapshots  int64
	Reconnects int64
	Connected  bool
}

// Stats snapshots the applier.
func (a *Applier) Stats() ApplierStats {
	a.mu.Lock()
	st := ApplierStats{
		Epoch:      a.epoch,
		Applied:    append([]int64(nil), a.applied...),
		Heads:      append([]int64(nil), a.heads...),
		Connected:  a.conn != nil,
		OpsApplied: a.opsApplied.Load(),
		Snapshots:  a.snapshots.Load(),
		Reconnects: a.reconnects.Load(),
	}
	a.mu.Unlock()
	for s := range st.Applied {
		if d := st.Heads[s] - st.Applied[s]; d > 0 {
			st.LagSeqs += d
		}
	}
	return st
}

func (a *Applier) progress() {
	if a.cfg.OnProgress == nil {
		return
	}
	a.mu.Lock()
	epoch := a.epoch
	seqs := append([]int64(nil), a.applied...)
	a.mu.Unlock()
	a.cfg.OnProgress(epoch, seqs)
}

// session runs one connection's lifetime: handshake, then frames until
// an error.
func (a *Applier) session() error {
	c, err := net.DialTimeout("tcp", a.cfg.Addr, handshakeTimeout)
	if err != nil {
		return err
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		c.Close()
		return nil
	}
	a.conn = c
	hello := Hello{ID: a.cfg.ID, Epoch: a.epoch, Seqs: append([]int64(nil), a.applied...)}
	a.mu.Unlock()
	defer func() {
		c.Close()
		a.mu.Lock()
		if a.conn == c {
			a.conn = nil
		}
		a.mu.Unlock()
	}()

	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := WriteFrame(c, FrameHello, EncodeHello(hello)); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := ReadFrame(c)
	if err != nil {
		return err
	}
	if typ == FrameError {
		return fmt.Errorf("leader rejected: %s", payload)
	}
	if typ != FrameHelloAck {
		return fmt.Errorf("handshake got frame %d", typ)
	}
	ack, err := ParseHelloAck(payload)
	if err != nil {
		return err
	}
	if len(ack.Modes) != len(a.cfg.Shards) {
		return errors.New("leader shard count mismatch")
	}
	a.mu.Lock()
	a.epoch = ack.Epoch
	a.mu.Unlock()
	c.SetReadDeadline(time.Time{})

	// inSnap tracks shards mid-resync: Reset has run, applied seq is not
	// yet meaningful, ops for them are not expected until SnapEnd.
	inSnap := make([]bool, len(a.cfg.Shards))
	for {
		typ, payload, err := ReadFrame(c)
		if err != nil {
			return err
		}
		switch typ {
		case FrameSnapBegin:
			s, err := ParseSnapBegin(payload)
			if err != nil || s < 0 || s >= len(a.cfg.Shards) {
				return errors.New("bad snapbegin")
			}
			if err := a.cfg.Shards[s].Reset(); err != nil {
				return fmt.Errorf("shard %d reset: %w", s, err)
			}
			inSnap[s] = true

		case FrameSnapData:
			sd, err := ParseSnapData(payload)
			if err != nil || sd.Shard < 0 || sd.Shard >= len(a.cfg.Shards) || !inSnap[sd.Shard] {
				return errors.New("bad snapdata")
			}
			if err := a.cfg.Shards[sd.Shard].Load(sd.KVs); err != nil {
				return fmt.Errorf("shard %d load: %w", sd.Shard, err)
			}

		case FrameSnapEnd:
			se, err := ParseSnapEnd(payload)
			if err != nil || se.Shard < 0 || se.Shard >= len(a.cfg.Shards) || !inSnap[se.Shard] {
				return errors.New("bad snapend")
			}
			// Seal the loaded state with an empty apply (commits the
			// engine) before adopting the snapshot's sequence.
			if err := a.cfg.Shards[se.Shard].Apply(Ops{Shard: se.Shard, First: se.Seq + 1, Head: se.Seq}); err != nil {
				return fmt.Errorf("shard %d snapshot commit: %w", se.Shard, err)
			}
			inSnap[se.Shard] = false
			a.mu.Lock()
			a.applied[se.Shard] = se.Seq
			if se.Seq > a.heads[se.Shard] {
				a.heads[se.Shard] = se.Seq
			}
			a.mu.Unlock()
			a.snapshots.Add(1)
			a.progress()
			c.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err := WriteFrame(c, FrameAck, EncodeAck(Ack{Shard: se.Shard, Seq: se.Seq})); err != nil {
				return err
			}

		case FrameOps:
			o, err := ParseOps(payload)
			if err != nil {
				return err
			}
			if o.Shard < 0 || o.Shard >= len(a.cfg.Shards) || inSnap[o.Shard] {
				return errors.New("ops for unexpected shard")
			}
			a.mu.Lock()
			applied := a.applied[o.Shard]
			a.mu.Unlock()
			// Tolerate overlap (a reconnect can replay acked records —
			// replay is idempotent, but skipping keeps apply cheap); a gap
			// would silently diverge, so it kills the session instead.
			if o.First > applied+1 {
				return fmt.Errorf("shard %d stream gap: have %d, got %d", o.Shard, applied, o.First)
			}
			last := o.First + int64(len(o.Ops)) - 1
			if last <= applied {
				continue
			}
			if skip := applied + 1 - o.First; skip > 0 {
				o.Ops = o.Ops[skip:]
				o.First = applied + 1
			}
			if err := a.cfg.Shards[o.Shard].Apply(o); err != nil {
				return fmt.Errorf("shard %d apply: %w", o.Shard, err)
			}
			a.opsApplied.Add(int64(len(o.Ops)))
			a.mu.Lock()
			a.applied[o.Shard] = last
			if o.Head > a.heads[o.Shard] {
				a.heads[o.Shard] = o.Head
			}
			a.mu.Unlock()
			a.progress()
			c.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err := WriteFrame(c, FrameAck, EncodeAck(Ack{Shard: o.Shard, Seq: last})); err != nil {
				return err
			}

		case FrameError:
			return fmt.Errorf("leader error: %s", payload)

		default:
			return fmt.Errorf("unexpected frame %d", typ)
		}
	}
}
