package repl

import (
	"bytes"
	"io"
	"testing"

	"btreeperf/internal/journal"
)

// FuzzReadReplFrame throws arbitrary bytes at the frame reader and every
// payload parser: nothing may panic or over-allocate, and whatever
// parses must re-encode to an equivalent frame (the parsers are the
// trust boundary between processes).
func FuzzReadReplFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, FrameHello, EncodeHello(Hello{ID: 1, Epoch: 2, Seqs: []int64{0, 5}}))
	f.Add(buf.Bytes())
	buf.Reset()
	WriteFrame(&buf, FrameOps, EncodeOps(Ops{Shard: 1, First: 9, Head: 12, Ops: []journal.Op{
		{Kind: journal.OpInsert, Key: 3, Val: 4},
	}}))
	f.Add(buf.Bytes())
	buf.Reset()
	WriteFrame(&buf, FrameSnapData, EncodeSnapData(SnapData{Shard: 0, KVs: []KV{{Key: 1, Val: 2}}}))
	f.Add(buf.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if err != ErrFrameTooLarge && err != io.EOF && err != io.ErrUnexpectedEOF && err.Error() != "repl: empty frame" {
				t.Fatalf("unexpected read error class: %v", err)
			}
			return
		}
		switch typ {
		case FrameHello:
			if h, err := ParseHello(payload); err == nil {
				if !bytes.Equal(EncodeHello(h), payload) {
					t.Fatal("hello round-trip mismatch")
				}
			}
		case FrameHelloAck:
			if a, err := ParseHelloAck(payload); err == nil {
				if !bytes.Equal(EncodeHelloAck(a), payload) {
					t.Fatal("helloack round-trip mismatch")
				}
			}
		case FrameOps:
			if o, err := ParseOps(payload); err == nil {
				if !bytes.Equal(EncodeOps(o), payload) {
					t.Fatal("ops round-trip mismatch")
				}
			}
		case FrameAck:
			if a, err := ParseAck(payload); err == nil {
				if !bytes.Equal(EncodeAck(a), payload) {
					t.Fatal("ack round-trip mismatch")
				}
			}
		case FrameSnapBegin:
			if s, err := ParseSnapBegin(payload); err == nil {
				if !bytes.Equal(EncodeSnapBegin(s), payload) {
					t.Fatal("snapbegin round-trip mismatch")
				}
			}
		case FrameSnapData:
			if s, err := ParseSnapData(payload); err == nil {
				if !bytes.Equal(EncodeSnapData(s), payload) {
					t.Fatal("snapdata round-trip mismatch")
				}
			}
		case FrameSnapEnd:
			if s, err := ParseSnapEnd(payload); err == nil {
				if !bytes.Equal(EncodeSnapEnd(s), payload) {
					t.Fatal("snapend round-trip mismatch")
				}
			}
		}
	})
}
