package server

import (
	"bufio"
	"bytes"
	"testing"
)

// Allocation regression tests: the wire codec and the pooled batch path
// must stay allocation-free in steady state, or the serving fast path
// silently regresses. testing.AllocsPerRun catches that at test time
// instead of at the next benchmark run. Skipped under -race, whose
// instrumentation allocates on its own schedule.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
}

func TestAppendRequestAllocs(t *testing.T) {
	skipUnderRace(t)
	buf := make([]byte, 0, 32)
	reqs := []Request{
		{Op: OpGet, Key: 12345678},
		{Op: OpPut, Key: 12345678, Val: 87654321},
		{Op: OpDel, Key: -5},
		{Op: OpPing},
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, req := range reqs {
			buf = AppendRequest(buf[:0], req)
		}
	}); n != 0 {
		t.Errorf("AppendRequest: %v allocs/op, want 0", n)
	}
}

func TestAppendResponseAllocs(t *testing.T) {
	skipUnderRace(t)
	buf := make([]byte, 0, 16)
	resps := []Response{
		{Status: StatusOK, HasVal: true, Val: 87654321},
		{Status: StatusMiss},
		{Status: StatusBusy},
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, resp := range resps {
			buf = AppendResponse(buf[:0], resp)
		}
	}); n != 0 {
		t.Errorf("AppendResponse: %v allocs/op, want 0", n)
	}
}

func TestReadRequestAllocs(t *testing.T) {
	skipUnderRace(t)
	frame := AppendRequest(nil, Request{Op: OpPut, Key: 12345678, Val: 87654321})
	src := bytes.NewReader(frame)
	br := bufio.NewReaderSize(src, 1<<10)
	buf := make([]byte, MaxPayload)
	if n := testing.AllocsPerRun(100, func() {
		src.Reset(frame)
		br.Reset(src)
		if _, err := ReadRequest(br, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReadRequest: %v allocs/op, want 0", n)
	}
}

func TestReadResponseAllocs(t *testing.T) {
	skipUnderRace(t)
	frame := AppendResponse(nil, Response{Status: StatusOK, HasVal: true, Val: 87654321})
	src := bytes.NewReader(frame)
	br := bufio.NewReaderSize(src, 1<<10)
	buf := make([]byte, MaxPayload)
	if n := testing.AllocsPerRun(100, func() {
		src.Reset(frame)
		br.Reset(src)
		if _, err := ReadResponse(br, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReadResponse: %v allocs/op, want 0", n)
	}
}

// TestBatchPathAllocs exercises the pooled batch lifecycle exactly as the
// connection reader and writer do: get a slab from the pool, append jobs,
// complete, wait, recycle. After a warm-up round sizes the pooled slab,
// the cycle must not allocate.
func TestBatchPathAllocs(t *testing.T) {
	skipUnderRace(t)
	const jobs = DefaultMaxBatch
	for _, nShards := range []int{1, 4} {
		cycle := func() {
			bt := getBatch(nShards)
			for i := 0; i < jobs; i++ {
				j := bt.add()
				j.req = Request{Op: OpGet, Key: int64(i)}
				j.resp = Response{Status: StatusOK}
				j.shard = int32(shardIndex(int64(i), nShards))
				bt.nexecSh[j.shard]++
			}
			involved := int32(0)
			for _, n := range bt.nexecSh {
				if n > 0 {
					involved++
				}
			}
			bt.arm(involved)
			for i := int32(0); i < involved; i++ {
				bt.completeOne()
			}
			bt.wait()
			putBatch(bt)
		}
		cycle() // warm up: grow the slabs to capacity once
		if n := testing.AllocsPerRun(100, cycle); n != 0 {
			t.Errorf("shards=%d: batch get/add/complete/wait/put cycle: %v allocs/op, want 0", nShards, n)
		}
	}
}
