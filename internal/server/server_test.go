package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"btreeperf/internal/cbtree"
)

// startServer runs a Server on an ephemeral loopback port, returning its
// address and a shutdown func that cancels and waits for a clean drain.
// testing.TB so the replication benchmarks can share it.
func startServer(t testing.TB, cfg Config) (*Server, string, func()) {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	return s, ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not drain within 10s")
		}
	}
}

func TestServerBasicOps(t *testing.T) {
	for _, alg := range []cbtree.Algorithm{cbtree.LockCoupling, cbtree.Optimistic, cbtree.LinkType} {
		t.Run(alg.String(), func(t *testing.T) {
			_, addr, shutdown := startServer(t, Config{Algorithm: alg})
			defer shutdown()
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			if fresh, err := c.Put(1, 100); err != nil || !fresh {
				t.Fatalf("put: fresh=%v err=%v", fresh, err)
			}
			if fresh, err := c.Put(1, 200); err != nil || fresh {
				t.Fatalf("re-put: fresh=%v err=%v", fresh, err)
			}
			if v, ok, err := c.Get(1); err != nil || !ok || v != 200 {
				t.Fatalf("get: v=%d ok=%v err=%v", v, ok, err)
			}
			if _, ok, err := c.Get(2); err != nil || ok {
				t.Fatalf("get missing: ok=%v err=%v", ok, err)
			}
			if ok, err := c.Del(1); err != nil || !ok {
				t.Fatalf("del: ok=%v err=%v", ok, err)
			}
			if ok, err := c.Del(1); err != nil || ok {
				t.Fatalf("re-del: ok=%v err=%v", ok, err)
			}
			if resp, err := c.Do(Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
				t.Fatalf("ping: %+v err=%v", resp, err)
			}
		})
	}
}

// TestServerPipelining floods one connection with pipelined puts and gets
// and checks responses come back in order.
func TestServerPipelining(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType})
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			c.Send(Request{Op: OpPut, Key: int64(i), Val: uint64(i) * 3})
		}
		c.Flush()
		for i := 0; i < n; i++ {
			c.Send(Request{Op: OpGet, Key: int64(i)})
		}
		c.Flush()
	}()
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("put resp %d: %v", i, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("put %d: status %d", i, resp.Status)
		}
	}
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("get resp %d: %v", i, err)
		}
		if !resp.HasVal || resp.Val != uint64(i)*3 {
			t.Fatalf("get %d: %+v (in-order pipelining broken)", i, resp)
		}
	}
	wg.Wait()
	if got := s.Tree().Len(); got != n {
		t.Fatalf("tree has %d keys, want %d", got, n)
	}
}

// TestServerConcurrentConnections hammers the server from several
// pipelined connections at once.
func TestServerConcurrentConnections(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.Optimistic, Workers: 4})
	defer shutdown()

	const conns, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			recvDone := make(chan struct{})
			go func() {
				defer close(recvDone)
				for i := 0; i < per; i++ {
					if _, err := c.Recv(); err != nil {
						t.Errorf("conn %d recv %d: %v", w, i, err)
						return
					}
				}
			}()
			for i := 0; i < per; i++ {
				op := Request{Op: OpPut, Key: int64(w*per + i), Val: 1}
				if i%3 == 0 {
					op = Request{Op: OpGet, Key: int64(i)}
				}
				c.Send(op)
				if i%64 == 0 {
					c.Flush()
				}
			}
			c.Flush()
			<-recvDone
		}(w)
	}
	wg.Wait()
	if s.shards[0].opCount.Load() != conns*per {
		t.Fatalf("served %d ops, want %d", s.shards[0].opCount.Load(), conns*per)
	}
}

// TestGracefulDrain cancels the server while requests are in flight and
// verifies every already-sent request still gets its response.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Algorithm: cbtree.LinkType})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		c.Send(Request{Op: OpPut, Key: int64(i), Val: uint64(i)})
	}
	c.Flush()
	cancel() // drain while the pipeline is likely still full
	got := 0
	for ; got < n; got++ {
		if _, err := c.Recv(); err != nil {
			break
		}
	}
	if got != n {
		t.Fatalf("received %d of %d responses across graceful drain", got, n)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// New connections must be refused after shutdown.
	if c2, err := Dial(ln.Addr().String()); err == nil {
		c2.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestMetricsEndpoints drives traffic and checks /metrics and
// /debug/model report per-level telemetry and the model evaluation.
func TestMetricsEndpoints(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LockCoupling, Capacity: 8, Prefill: 2000})
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3000; i++ {
		c.Send(Request{Op: OpPut, Key: int64(i) * 17, Val: uint64(i)})
		c.Send(Request{Op: OpGet, Key: int64(i)})
	}
	c.Flush()
	for i := 0; i < 6000; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	body := httpGet(t, hs.URL+"/metrics")
	for _, want := range []string{"level=1", "role=root", "rho_w=", "lambda_w=", "saturation"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "algorithm=lock-coupling") {
		t.Errorf("/metrics missing algorithm line:\n%s", body)
	}

	jbody := httpGet(t, hs.URL+"/metrics?format=json")
	if !strings.Contains(jbody, `"levels"`) || !strings.Contains(jbody, `"root_rho_w"`) {
		t.Errorf("/metrics json malformed:\n%s", jbody)
	}

	// Drive a second burst so the model window has traffic of its own.
	for i := 0; i < 3000; i++ {
		c.Send(Request{Op: OpPut, Key: int64(i) * 31, Val: uint64(i)})
	}
	c.Flush()
	for i := 0; i < 3000; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	mbody := httpGet(t, hs.URL+"/debug/model")
	for _, want := range []string{"qmodel evaluated", "ρ_w", "response time", "root rho_w"} {
		if !strings.Contains(mbody, want) {
			t.Errorf("/debug/model missing %q:\n%s", want, mbody)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
