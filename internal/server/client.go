package server

import (
	"bufio"
	"net"
)

// Client speaks the btserved wire protocol. It supports pipelining: one
// goroutine may Send/Flush while another Recvs, and because the server
// answers in request order the n-th Recv matches the n-th Send. A Client
// is otherwise not safe for concurrent use.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	wbuf []byte
	rbuf []byte
}

// Dial connects to a btserved address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
		bw:   bufio.NewWriterSize(conn, 32<<10),
		wbuf: make([]byte, 0, 32),
		rbuf: make([]byte, MaxPayload),
	}, nil
}

// Send buffers one request frame.
func (c *Client) Send(req Request) error {
	c.wbuf = AppendRequest(c.wbuf[:0], req)
	_, err := c.bw.Write(c.wbuf)
	return err
}

// Flush pushes buffered requests to the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next in-order response.
func (c *Client) Recv() (Response, error) {
	return ReadResponse(c.br, c.rbuf)
}

// Do sends one request and waits for its response (no pipelining).
func (c *Client) Do(req Request) (Response, error) {
	if err := c.Send(req); err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// Get looks key up.
func (c *Client) Get(key int64) (uint64, bool, error) {
	resp, err := c.Do(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == StatusOK, nil
}

// Put stores key→val, reporting whether the key was fresh.
func (c *Client) Put(key int64, val uint64) (bool, error) {
	resp, err := c.Do(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Del removes key, reporting whether it was present.
func (c *Client) Del(key int64) (bool, error) {
	resp, err := c.Do(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// CloseWrite half-closes the connection so the server drains in-flight
// responses; pair with draining Recv until error.
func (c *Client) CloseWrite() error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
