package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"btreeperf/internal/query"
)

// Client speaks the btserved wire protocol. It supports pipelining: one
// goroutine may Send/Flush while another Recvs, and because the server
// answers in request order the n-th Recv matches the n-th Send. A Client
// is otherwise not safe for concurrent use.
//
// With SetOpTimeout, every Recv (and the write side of Do) carries a
// deadline, so a server that dies between Flush and response surfaces
// os.ErrDeadlineExceeded instead of blocking forever; a connection
// closed underneath a blocked Recv surfaces net.ErrClosed.
type Client struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	wbuf      []byte
	rbuf      []byte
	opTimeout time.Duration
}

// Dial connects to a btserved address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout is Dial with a bound on connection establishment.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (possibly decorated, e.g.
// by internal/faults) in a Client.
func NewClient(conn net.Conn) *Client {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
		bw:   bufio.NewWriterSize(conn, 32<<10),
		wbuf: make([]byte, 0, 32),
		rbuf: make([]byte, MaxPayload),
	}
}

// SetOpTimeout bounds every subsequent Recv (and Do's flush) with a
// deadline; zero restores unbounded blocking. Set it before the client
// is shared between a sending and a receiving goroutine.
func (c *Client) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// Send buffers one request frame.
func (c *Client) Send(req Request) error {
	c.wbuf = AppendRequest(c.wbuf[:0], req)
	_, err := c.bw.Write(c.wbuf)
	return err
}

// Flush pushes buffered requests to the wire.
func (c *Client) Flush() error {
	if c.opTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opTimeout))
	}
	return c.bw.Flush()
}

// Recv reads the next in-order response. Under SetOpTimeout it returns
// os.ErrDeadlineExceeded when no response arrives in time; a Close from
// another goroutine surfaces as net.ErrClosed.
func (c *Client) Recv() (Response, error) {
	if c.opTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opTimeout))
	}
	return ReadResponse(c.br, c.rbuf)
}

// RecvPage reads the next in-order response as a page frame (scan, seek,
// lookup). Because responses carry no opcode, the caller — who knows
// which ops it pipelined, in order — picks Recv or RecvPage per response;
// RecvPage also accepts a bare point-shaped status (a shed or error
// reply), surfacing it as an empty page with that status.
func (c *Client) RecvPage() (Response, error) {
	if c.opTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opTimeout))
	}
	return ReadPageResponse(c.br, c.rbuf)
}

// Do sends one request and waits for its response (no pipelining).
func (c *Client) Do(req Request) (Response, error) {
	if err := c.Send(req); err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// DoPage sends one query request and waits for its page response.
func (c *Client) DoPage(req Request) (Response, error) {
	if err := c.Send(req); err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	return c.RecvPage()
}

// Get looks key up.
func (c *Client) Get(key int64) (uint64, bool, error) {
	resp, err := c.Do(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == StatusOK, nil
}

// Put stores key→val, reporting whether the key was fresh.
func (c *Client) Put(key int64, val uint64) (bool, error) {
	resp, err := c.Do(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Del removes key, reporting whether it was present.
func (c *Client) Del(key int64) (bool, error) {
	resp, err := c.Do(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Scan fetches one page of [lo, hi): up to limit entries in ascending
// key order plus the continuation token for the next page. Pass a nil
// token for the first page and the previous response's token afterwards;
// a nil returned token means the range is exhausted. limit <= 0 asks for
// the server default.
func (c *Client) Scan(lo, hi int64, limit int, token []byte) ([]query.KV, []byte, error) {
	resp, err := c.DoPage(Request{Op: OpScan, Key: lo, Hi: hi, Limit: limit, Token: token})
	if err != nil {
		return nil, nil, err
	}
	if resp.Status != StatusOK {
		return nil, nil, fmt.Errorf("server: scan: %s", StatusName(resp.Status))
	}
	return resp.Entries, resp.Token, nil
}

// ScanAll drains [lo, hi) page by page, calling emit for every entry in
// ascending key order.
func (c *Client) ScanAll(lo, hi int64, limit int, emit func(key int64, val uint64)) error {
	var token []byte
	for {
		page, next, err := c.Scan(lo, hi, limit, token)
		if err != nil {
			return err
		}
		for _, e := range page {
			emit(e.Key, e.Val)
		}
		if next == nil {
			return nil
		}
		token = next
	}
}

// SeekGE returns the smallest stored key >= key and its value; ok is false
// when no such key exists.
func (c *Client) SeekGE(key int64) (int64, uint64, bool, error) {
	resp, err := c.DoPage(Request{Op: OpSeek, Key: key})
	if err != nil {
		return 0, 0, false, err
	}
	if resp.Status != StatusOK {
		return 0, 0, false, fmt.Errorf("server: seek: %s", StatusName(resp.Status))
	}
	if len(resp.Entries) == 0 {
		return 0, 0, false, nil
	}
	return resp.Entries[0].Key, resp.Entries[0].Val, true, nil
}

// Lookup fetches one page of the primary keys whose indexed value is
// val, ascending; the token contract matches Scan. Requires a server
// built with -index (StatusBadRequest otherwise).
func (c *Client) Lookup(val uint64, limit int, token []byte) ([]int64, []byte, error) {
	resp, err := c.DoPage(Request{Op: OpLookup, Val: val, Limit: limit, Token: token})
	if err != nil {
		return nil, nil, err
	}
	if resp.Status != StatusOK {
		return nil, nil, fmt.Errorf("server: lookup: %s", StatusName(resp.Status))
	}
	keys := make([]int64, len(resp.Entries))
	for i, e := range resp.Entries {
		keys[i] = e.Key
	}
	return keys, resp.Token, nil
}

// Seqs returns the server's per-shard replication sequences, indexed by
// shard: the durable sequence on a journal-backed leader, the applied
// sequence on a follower, zeros on an unreplicated in-memory server.
// The slice length is the server's shard count — how replica-set
// clients learn it.
func (c *Client) Seqs() ([]int64, error) {
	resp, err := c.DoPage(Request{Op: OpSeqs})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("server: seqs: %s", StatusName(resp.Status))
	}
	seqs := make([]int64, len(resp.Entries))
	for _, e := range resp.Entries {
		if e.Key < 0 || e.Key >= int64(len(seqs)) {
			return nil, fmt.Errorf("server: seqs: shard %d out of range", e.Key)
		}
		seqs[e.Key] = int64(e.Val)
	}
	return seqs, nil
}

// GetSeq is a bounded-staleness Get: the read is served only by a
// replica whose applied sequence has reached minSeq. A follower answers
// StatusLagging when behind — surfaced here as ErrLagging so callers
// (see DialReplicaSet) retry the leader instead of reading stale state.
func (c *Client) GetSeq(key int64, minSeq int64) (uint64, bool, error) {
	resp, err := c.Do(Request{Op: OpGetSeq, Key: key, MinSeq: minSeq})
	if err != nil {
		return 0, false, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Val, true, nil
	case StatusMiss:
		return 0, false, nil
	case StatusLagging:
		return 0, false, ErrLagging
	default:
		return 0, false, fmt.Errorf("server: getseq: %s", StatusName(resp.Status))
	}
}

// CloseWrite half-closes the connection so the server drains in-flight
// responses; pair with draining Recv until error.
func (c *Client) CloseWrite() error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if cw, ok := c.conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
