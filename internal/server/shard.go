package server

import (
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/metrics"
	"btreeperf/internal/query/index"
	"btreeperf/internal/repl"
)

// shard is one independent serving partition: its own storage engine,
// tree telemetry probe, worker queue, overload governor, operation
// counters, and scrape windows. The paper's queueing model caps a single
// tree's throughput at root ρ_w = .5; partitioning the keyspace across N
// shards gives N independent root locks, so the model's per-tree
// saturation analysis applies shard by shard and aggregate throughput
// scales with the shard count until the hardware runs out.
type shard struct {
	id    int
	srv   *Server
	eng   Engine
	tree  *cbtree.Tree // nil unless the shard's engine is the in-memory one
	probe *metrics.TreeProbe
	work  chan *batch
	gov   *governor

	// idx is the shard's secondary index (value → primary keys); nil
	// unless the server was built with Config.Index.
	idx *index.Index

	opLat   metrics.Hist // per-op tree service time
	opNsSum atomic.Int64
	opCount atomic.Int64
	gets    atomic.Int64
	puts    atomic.Int64
	dels    atomic.Int64
	opBad   atomic.Int64 // unknown opcodes and bad query requests

	// Query counters: pages served with this shard as the merge home,
	// and entries returned on those pages.
	scans      atomic.Int64
	seeks      atomic.Int64
	lookups    atomic.Int64
	scanKeys   atomic.Int64
	lookupKeys atomic.Int64

	// Durability counters.
	commitFails atomic.Int64 // batches whose group commit failed
	unavail     atomic.Int64 // requests answered StatusUnavail

	// Replication counters.
	ackTimeouts atomic.Int64 // batches that missed the semi-sync follower-ack barrier
	notLeader   atomic.Int64 // mutations refused with StatusNotLeader (follower role)
	lagging     atomic.Int64 // getseqs refused with StatusLagging (staleness floor unmet)

	// Shed counters (per shard: overload shedding acts on the shard
	// whose root is saturated, not globally).
	shedOverload atomic.Int64 // updates shed with StatusOverload (governor)
	shedBusy     atomic.Int64 // requests shed with StatusBusy (queue full)

	metricsWin windowState // /metrics scrape window
	modelWin   windowState // /debug/model scrape window
}

// shardIndex routes a key to a shard with a full-avalanche mixer
// (splitmix64 finalizer), so adjacent or patterned key streams spread
// evenly. It is a pure function of (key, n): the same key always lands
// on the same shard, across restarts and across processes — btload's
// audit-verify and the crash harness depend on that.
func shardIndex(key int64, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(key)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(n))
}

// shardIdx routes a key to this server's shard index.
func (s *Server) shardIdx(key int64) int32 {
	return int32(shardIndex(key, len(s.shards)))
}

// run is one worker of this shard's pool: it executes the shard's slice
// of each batch, group-commits the shard's engine once per batch that
// mutated it, and retires the shard's completion. Jobs of other shards
// in the same batch are skipped — slab entries are disjoint across
// shards, so concurrent shard workers never touch the same job.
func (sh *shard) run() {
	s := sh.srv
	// Telemetry is tallied locally and flushed once per batch: per-op
	// atomic adds from every worker bounce the counters' cache lines and
	// were a measurable share of service time.
	var tally opTally
	for bt := range sh.work {
		tally = opTally{}
		t0 := time.Now()
		for i := range bt.jobs {
			j := &bt.jobs[i]
			if j.skip || int(j.shard) != sh.id {
				continue
			}
			j.resp = s.apply(sh, j.req, &tally)
		}
		if tally.puts+tally.dels > 0 {
			// Group commit: one engine fsync covers every mutation this
			// shard executed from the batch; their OK responses are
			// withheld until it returns. On failure nothing is
			// acknowledged — the engine is poisoned (fail stop), so
			// rewriting the shard's mutation responses to StatusUnavail
			// closes the last window where an ack could outrun the disk.
			if err := sh.eng.Commit(); err != nil {
				sh.commitFails.Add(1)
				for i := range bt.jobs {
					j := &bt.jobs[i]
					if !j.skip && int(j.shard) == sh.id && (j.req.Op == OpPut || j.req.Op == OpDel) {
						j.resp = Response{Status: StatusUnavail}
					}
				}
			} else if hub := s.Hub(); hub != nil {
				sh.replCommit(bt, hub)
			}
		}
		if n := tally.gets + tally.puts + tally.dels + tally.pings + tally.bad +
			tally.scans + tally.seeks + tally.lookups + tally.notLeader; n > 0 {
			ns := time.Since(t0).Nanoseconds()
			// The histogram records the batch's amortized per-op service
			// time for each op (exact in the mean, batch-smoothed in the
			// tails).
			sh.opLat.ObserveN(ns/n, n)
			sh.opNsSum.Add(ns)
			sh.opCount.Add(n)
			if tally.gets > 0 {
				sh.gets.Add(tally.gets)
			}
			if tally.puts > 0 {
				sh.puts.Add(tally.puts)
			}
			if tally.dels > 0 {
				sh.dels.Add(tally.dels)
			}
			if tally.bad > 0 {
				sh.opBad.Add(tally.bad)
			}
			if tally.unavail > 0 {
				sh.unavail.Add(tally.unavail)
			}
			if tally.scans > 0 {
				sh.scans.Add(tally.scans)
			}
			if tally.seeks > 0 {
				sh.seeks.Add(tally.seeks)
			}
			if tally.scanKeys > 0 { // scan-page entries plus seek hits
				sh.scanKeys.Add(tally.scanKeys)
			}
			if tally.lookups > 0 {
				sh.lookups.Add(tally.lookups)
			}
			if tally.lookupKeys > 0 {
				sh.lookupKeys.Add(tally.lookupKeys)
			}
			if tally.notLeader > 0 {
				sh.notLeader.Add(tally.notLeader)
			}
			if tally.lagging > 0 {
				sh.lagging.Add(tally.lagging)
			}
		}
		bt.completeOne()
	}
}

// replCommit is the leader-side replication epilogue of a batch whose
// group commit succeeded: wake the hub's shippers, hold the batch for
// the semi-sync follower-ack barrier when one is configured, and stamp
// each acknowledged mutation with the shard's durable sequence (wire:
// the value field of the put/del response) — the client's staleness
// floor for bounded-staleness follower reads.
func (sh *shard) replCommit(bt *batch, hub *repl.Hub) {
	s := sh.srv
	seq := sh.eng.(seqEngine).DurableSeq()
	hub.Poke()
	acked := true
	if k := s.cfg.ReplAcks; k > 0 {
		if !hub.WaitAcked(sh.id, seq, k, s.cfg.ReplAckTimeout) {
			// The write is durable here but its follower redundancy was
			// not confirmed in time. Busy is the honest retryable answer:
			// the client must treat the op as possibly applied (standard
			// semi-sync ambiguity) — puts and dels are idempotent, so a
			// retry converges.
			acked = false
			sh.ackTimeouts.Add(1)
		}
	}
	for i := range bt.jobs {
		j := &bt.jobs[i]
		if j.skip || int(j.shard) != sh.id || (j.req.Op != OpPut && j.req.Op != OpDel) {
			continue
		}
		if j.resp.Status != StatusOK && j.resp.Status != StatusMiss {
			continue
		}
		if !acked {
			j.resp = Response{Status: StatusBusy}
			continue
		}
		j.resp.HasVal = true
		j.resp.Val = uint64(seq)
	}
}
