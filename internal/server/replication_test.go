package server

import (
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"btreeperf/internal/query"
	"btreeperf/internal/repl"
)

// diskEngines builds one disk engine per shard under dir.
func diskEngines(t testing.TB, dir string, shards int) []Engine {
	t.Helper()
	engines := make([]Engine, shards)
	for i := 0; i < shards; i++ {
		sd := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(sd, 0o755); err != nil {
			t.Fatal(err)
		}
		e, err := NewDiskEngine(DiskEngineConfig{
			Path:          filepath.Join(sd, "tree.db"),
			CheckpointOps: 256, // small: checkpoints (and log truncation) happen under test load
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines
}

// leaderHarness is a serving leader with a live replication hub.
type leaderHarness struct {
	s        *Server
	addr     string // serving listener
	replAddr string // replication listener
	hub      *repl.Hub
	shutdown func()
}

// startLeader runs a disk-backed leader with a replication hub on
// ephemeral ports.
func startLeader(t testing.TB, shards int, cfg Config) *leaderHarness {
	t.Helper()
	if cfg.Engines == nil {
		cfg.Engines = diskEngines(t, t.TempDir(), shards)
	}
	s, addr, stop := startServer(t, cfg)
	hub, err := s.StartHub(1, 4<<20, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(rln)
	return &leaderHarness{
		s:        s,
		addr:     addr,
		replAddr: rln.Addr().String(),
		hub:      hub,
		shutdown: func() {
			stop()
			hub.Close()
			s.Close()
		},
	}
}

// followerHarness is a serving follower streaming from a leader.
type followerHarness struct {
	s        *Server
	addr     string
	ap       *repl.Applier
	shutdown func()
}

// startFollower runs a follower server (mem by default; pass Engines in
// cfg for disk) attached to the leader's replication listener.
func startFollower(t testing.TB, cfg Config, replAddr string, id uint64) *followerHarness {
	t.Helper()
	s, addr, stop := startServer(t, cfg)
	ap := repl.NewApplier(repl.ApplierConfig{
		Addr:       replAddr,
		ID:         id,
		Shards:     s.ApplierShards(),
		Logf:       t.Logf,
		RedialWait: 20 * time.Millisecond,
	})
	s.AttachFollower(ap)
	go ap.Run()
	return &followerHarness{
		s:    s,
		addr: addr,
		ap:   ap,
		shutdown: func() {
			ap.Stop()
			ap.Wait()
			stop()
			s.Close()
		},
	}
}

// waitSeqs polls until want(seqs) holds for the address's seqs probe.
func waitSeqs(t testing.TB, addr string, want func([]int64) bool) []int64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last []int64
	for time.Now().Before(deadline) {
		c, err := Dial(addr)
		if err == nil {
			seqs, err := c.Seqs()
			c.Close()
			if err == nil {
				last = seqs
				if want(seqs) {
					return seqs
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("seqs never converged; last=%v", last)
	return nil
}

// scanAll drains the full keyspace of addr into a map.
func scanAll(t testing.TB, addr string) map[int64]uint64 {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make(map[int64]uint64)
	if err := c.ScanAll(math.MinInt64, math.MaxInt64, 512, func(k int64, v uint64) {
		out[k] = v
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplicationFollowerEquivalence drives concurrent writers at a
// disk leader while a follower streams the oplog over real TCP, then
// checks the follower's full contents equal the leader's — across
// follower engine kinds and shard counts, and with the follower
// connecting late enough that catch-up (from retained segments or via
// snapshot resync) is exercised, not just steady-state tailing.
func TestReplicationFollowerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("replication equivalence is a multi-process-shaped test")
	}
	for _, tc := range []struct {
		name   string
		shards int
		mem    bool
	}{
		{"disk-1shard", 1, false},
		{"disk-4shard", 4, false},
		{"mem-1shard", 1, true},
		{"mem-4shard", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ld := startLeader(t, tc.shards, Config{})
			defer ld.shutdown()

			// Phase 1: write before the follower exists, so it must
			// catch up from history rather than tail from zero lag.
			const writers, opsPerWriter = 4, 300
			load := func(base int64) {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						c, err := Dial(ld.addr)
						if err != nil {
							t.Error(err)
							return
						}
						defer c.Close()
						for i := 0; i < opsPerWriter; i++ {
							k := base + int64(w*opsPerWriter+i)
							if _, err := c.Put(k, uint64(k)*3+1); err != nil {
								t.Error(err)
								return
							}
							if i%5 == 0 { // deletions replicate too
								if _, err := c.Del(base + int64(w*opsPerWriter+i/2)); err != nil {
									t.Error(err)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
			}
			load(0)

			fcfg := Config{Shards: tc.shards}
			if !tc.mem {
				fcfg = Config{Engines: diskEngines(t, t.TempDir(), tc.shards)}
			}
			fl := startFollower(t, fcfg, ld.replAddr, 42)
			defer fl.shutdown()

			// Phase 2: keep writing while the follower streams.
			load(1 << 20)

			leaderSeqs := waitSeqs(t, ld.addr, func([]int64) bool { return true })
			waitSeqs(t, fl.addr, func(seqs []int64) bool {
				for i := range seqs {
					if seqs[i] < leaderSeqs[i] {
						return false
					}
				}
				return true
			})

			want := scanAll(t, ld.addr)
			got := scanAll(t, fl.addr)
			if len(got) != len(want) {
				t.Fatalf("follower has %d keys, leader %d", len(got), len(want))
			}
			for k, v := range want {
				if gv, ok := got[k]; !ok || gv != v {
					t.Fatalf("key %d: follower %d (present=%v), leader %d", k, gv, ok, v)
				}
			}
		})
	}
}

// fakeFollower is a FollowerSource with fixed applied seqs, for testing
// the serving layer's role handling without a live stream.
type fakeFollower struct{ seqs []int64 }

func (f fakeFollower) AppliedSeq(shard int) int64 { return f.seqs[shard] }
func (f fakeFollower) Stats() repl.ApplierStats {
	return repl.ApplierStats{Applied: f.seqs}
}

// TestFollowerRefusals pins the follower serving contract: mutations
// answer StatusNotLeader, a bounded-staleness get past the applied seq
// answers StatusLagging (never stale data), and one at or below it is
// served.
func TestFollowerRefusals(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{})
	defer shutdown()
	s.AttachFollower(fakeFollower{seqs: []int64{100}})
	s.shards[0].eng.Put(7, 77)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if resp, err := c.Do(Request{Op: OpPut, Key: 1, Val: 2}); err != nil || resp.Status != StatusNotLeader {
		t.Fatalf("put on follower: %+v err=%v, want StatusNotLeader", resp, err)
	}
	if resp, err := c.Do(Request{Op: OpDel, Key: 1}); err != nil || resp.Status != StatusNotLeader {
		t.Fatalf("del on follower: %+v err=%v, want StatusNotLeader", resp, err)
	}
	if resp, err := c.Do(Request{Op: OpGetSeq, Key: 7, MinSeq: 101}); err != nil || resp.Status != StatusLagging {
		t.Fatalf("getseq past applied: %+v err=%v, want StatusLagging", resp, err)
	}
	if v, ok, err := c.GetSeq(7, 100); err != nil || !ok || v != 77 {
		t.Fatalf("getseq at applied: v=%d ok=%v err=%v", v, ok, err)
	}
	if _, ok, err := c.GetSeq(99, 0); err != nil || ok {
		t.Fatalf("getseq miss: ok=%v err=%v", ok, err)
	}
	// Seqs reports the follower's applied positions.
	seqs, err := c.Seqs()
	if err != nil || len(seqs) != 1 || seqs[0] != 100 {
		t.Fatalf("seqs: %v err=%v, want [100]", seqs, err)
	}

	// Detach: the same server serves mutations again.
	s.DetachFollower()
	if fresh, err := c.Put(1, 2); err != nil || !fresh {
		t.Fatalf("put after detach: fresh=%v err=%v", fresh, err)
	}
}

// TestLeaderAckStamping pins the repl-leader ack contract: once a hub is
// attached, acknowledged mutations carry the shard's durable sequence in
// the value field, and the sequence is monotone.
func TestLeaderAckStamping(t *testing.T) {
	ld := startLeader(t, 1, Config{})
	defer ld.shutdown()

	c, err := Dial(ld.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var prev uint64
	for i := int64(0); i < 10; i++ {
		resp, err := c.Do(Request{Op: OpPut, Key: i, Val: uint64(i)})
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %+v err=%v", i, resp, err)
		}
		if !resp.HasVal || resp.Val == 0 {
			t.Fatalf("put %d: response not stamped with durable seq: %+v", i, resp)
		}
		if resp.Val < prev {
			t.Fatalf("put %d: seq regressed %d -> %d", i, prev, resp.Val)
		}
		prev = resp.Val
	}
	// Deleting an absent key is a Miss — stamped all the same (the del
	// was journaled and committed).
	resp, err := c.Do(Request{Op: OpDel, Key: 1 << 40})
	if err != nil || resp.Status != StatusMiss || !resp.HasVal {
		t.Fatalf("absent del: %+v err=%v, want stamped Miss", resp, err)
	}
}

// TestSemiSyncAckBarrier pins ReplAcks: with no follower connected, a
// mutation misses the barrier and answers StatusBusy (durable locally,
// redundancy unconfirmed); once a follower streams, mutations ack.
func TestSemiSyncAckBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a live follower stream")
	}
	ld := startLeader(t, 1, Config{ReplAcks: 1, ReplAckTimeout: 150 * time.Millisecond})
	defer ld.shutdown()

	c, err := Dial(ld.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Do(Request{Op: OpPut, Key: 1, Val: 1})
	if err != nil || resp.Status != StatusBusy {
		t.Fatalf("put without follower: %+v err=%v, want StatusBusy", resp, err)
	}
	if got := ld.s.shards[0].ackTimeouts.Load(); got == 0 {
		t.Fatal("ack timeout not counted")
	}
	// The write IS durable despite the Busy answer.
	if v, ok, err := c.Get(1); err != nil || !ok || v != 1 {
		t.Fatalf("unacked write not readable: v=%d ok=%v err=%v", v, ok, err)
	}

	fl := startFollower(t, Config{Shards: 1}, ld.replAddr, 7)
	defer fl.shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = c.Do(Request{Op: OpPut, Key: 2, Val: 2})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusOK {
			if !resp.HasVal {
				t.Fatalf("acked put not stamped: %+v", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("semi-sync put never acked; last %+v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaSetRouting pins the replication-aware client: writes land
// on the leader, reads fan out to the follower under the client's own
// read floor, and read-your-writes holds — a get after an acked put
// never observes the pre-put state, no matter which target serves it.
func TestReplicaSetRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a live follower stream")
	}
	ld := startLeader(t, 2, Config{})
	defer ld.shutdown()
	fl := startFollower(t, Config{Shards: 2}, ld.replAddr, 9)
	defer fl.shutdown()

	rs, err := DialReplicaSet(ReplicaSetConfig{
		Leader:   ld.addr,
		Replicas: []string{fl.addr},
		Retry:    RetryConfig{MaxAttempts: 2, OpTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.NumShards() != 2 {
		t.Fatalf("shard count: %d, want 2", rs.NumShards())
	}

	for i := int64(0); i < 200; i++ {
		if _, err := rs.Put(i, uint64(i)+1); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		// Immediate read-back: must never be stale, whoever serves it.
		v, ok, err := rs.Get(i)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !ok || v != uint64(i)+1 {
			t.Fatalf("stale read after acked put: key %d v=%d ok=%v", i, v, ok)
		}
	}
	for i := int64(0); i < 200; i += 7 {
		if _, err := rs.Del(i); err != nil {
			t.Fatalf("del %d: %v", i, err)
		}
		if _, ok, err := rs.Get(i); err != nil || ok {
			t.Fatalf("stale read after acked del: key %d ok=%v err=%v", i, ok, err)
		}
	}

	// Scans go to the follower (or fall back); either way the merged
	// view must reflect every acked write.
	var got []query.KV
	var token []byte
	for {
		page, next, err := rs.Scan(math.MinInt64, math.MaxInt64, 64, token)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		if next == nil {
			break
		}
		token = next
	}
	want := scanAll(t, ld.addr)
	if len(got) != len(want) {
		t.Fatalf("scan saw %d keys, leader has %d", len(got), len(want))
	}

	st := rs.Stats()
	if len(st.Targets) != 1 {
		t.Fatalf("targets: %+v", st.Targets)
	}
	reads := st.Targets[0].Gets + st.LeaderReads
	if reads == 0 {
		t.Fatal("no reads counted")
	}
	t.Logf("replica served %d gets, %d scan pages; leader served %d reads (%d fallbacks, %d lagging refusals)",
		st.Targets[0].Gets, st.Targets[0].Scans, st.LeaderReads, st.LeaderFalls, st.StaleRefused)
}

// TestPromoteFlipsRoles pins the in-process promotion path: a follower
// with a promote hook detaches its applier, starts a hub under a new
// epoch, and serves mutations.
func TestPromoteFlipsRoles(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a live follower stream")
	}
	ld := startLeader(t, 1, Config{})
	fl := &followerHarness{}
	// The follower must be disk-backed to lead after promotion.
	s, addr, stop := startServer(t, Config{Engines: diskEngines(t, t.TempDir(), 1)})
	ap := repl.NewApplier(repl.ApplierConfig{
		Addr:       ld.replAddr,
		ID:         5,
		Shards:     s.ApplierShards(),
		Logf:       t.Logf,
		RedialWait: 20 * time.Millisecond,
	})
	s.AttachFollower(ap)
	go ap.Run()
	fl.s, fl.addr, fl.ap = s, addr, ap
	defer func() {
		stop()
		s.Close()
	}()

	var hub *repl.Hub
	s.SetPromoteHook(func() (uint64, error) {
		ap.Stop()
		ap.Wait()
		s.DetachFollower()
		h, err := s.StartHub(2, 4<<20, t.Logf)
		if err != nil {
			return 0, err
		}
		hub = h
		return h.Epoch(), nil
	})

	// Replicate some state, then kill the leader.
	cl, err := Dial(ld.addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if _, err := cl.Put(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	leaderSeqs := waitSeqs(t, ld.addr, func([]int64) bool { return true })
	waitSeqs(t, fl.addr, func(seqs []int64) bool { return seqs[0] >= leaderSeqs[0] })
	ld.shutdown()

	epoch, err := fl.s.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("epoch: %d, want 2", epoch)
	}
	defer hub.Close()
	if fl.s.IsFollower() {
		t.Fatal("still a follower after promote")
	}
	if _, err := fl.s.Promote(); err == nil {
		t.Fatal("second promote should refuse")
	}

	// The promoted node serves mutations, stamped (it now leads).
	c, err := Dial(fl.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(Request{Op: OpPut, Key: 1000, Val: 1})
	if err != nil || resp.Status != StatusOK || !resp.HasVal {
		t.Fatalf("put on promoted leader: %+v err=%v", resp, err)
	}
	if v, ok, err := c.Get(25); err != nil || !ok || v != 25 {
		t.Fatalf("replicated state lost across promotion: v=%d ok=%v err=%v", v, ok, err)
	}
}
