// Package server is btserved's serving subsystem: a pipelined binary
// key-value protocol over TCP in front of the concurrent B-tree, with the
// paper's lock-queue telemetry measured live and exposed over HTTP.
//
// # Wire protocol
//
// Every message is a length-prefixed frame: a 4-byte big-endian payload
// length followed by the payload. Requests carry an opcode, a key, and —
// depending on the op — a value, a range bound, a page limit, or a
// continuation token:
//
//	get:    op(1) key(8)
//	put:    op(1) key(8) val(8)
//	del:    op(1) key(8)
//	ping:   op(1)
//	seek:   op(1) key(8)
//	scan:   op(1) lo(8) hi(8) limit(2) toklen(2) token(toklen)
//	lookup: op(1) val(8) limit(2) toklen(2) token(toklen)
//	getseq: op(1) key(8) minseq(8)
//	seqs:   op(1)
//
// Point responses carry a status byte, plus the value for a get hit:
//
//	hit:  status(1) val(8)
//	else: status(1)
//
// Query ops (scan, seek, lookup) answer with the page shape:
//
//	page: status(1) count(2) [key(8) val(8)]×count toklen(2) token(toklen)
//
// A scan pages through keys in [lo, hi) in ascending order: the client
// passes an empty token on the first request and the previous response's
// token after that; an empty response token means the range is
// exhausted. hi is exclusive, so key math.MaxInt64 (the tree's +inf
// sentinel) is not scannable. A seek answers at most one entry — the
// smallest stored key >= key — and never a token. A lookup pages, with
// the same token discipline as scan, through the primary keys whose
// value equals val on a server running the secondary index (btserved
// -index); each entry's val echoes the looked-up value. A shed query op
// may be answered with a bare 1-byte status frame; page readers accept
// both shapes.
//
// Responses are returned in request order, so clients may pipeline any
// number of requests on one connection without tagging them; the client
// knows which response shape to expect from the op it sent.
//
// # Status × op semantics
//
//	               get          put           del          ping  scan/seek/lookup
//	OK             hit          fresh insert  key removed  pong  page follows (possibly empty)
//	Miss           absent key   replaced old  absent key   —     never: an empty page is OK
//	BadRequest     unknown opcode on any op   —            —     malformed/mismatched token,
//	                                                             or lookup without -index
//	Busy           queue/conn capacity shed; retryable; applies to every op
//	Overload       governor shedding updates: put and del only — query ops are
//	               read traffic and are never governor-shed
//	Unavail        storage engine poisoned (failed fsync); applies to every
//	               op that touches an engine (all but ping)
//	Lagging        getseq only: a replication follower's applied sequence for
//	               the key's shard is below the request's minseq — read the
//	               leader instead (a follower never serves past its bound)
//	NotLeader      put/del on a replication follower; mutate the leader
//
// A getseq is a get carrying a bounded-staleness floor; on a leader (or
// an unreplicated server) it behaves exactly like get. A seqs request
// answers the page shape with one entry per shard: key = shard index,
// val = that shard's replication sequence (durable on a leader, applied
// on a follower). In replicated-leader mode, acknowledged put/del
// responses carry the shard's durable sequence in the value field
// (point-hit shape); clients feed it back as minseq to make follower
// reads read-your-writes.
//
// An empty scan or lookup page is StatusOK with count=0 — StatusMiss is a
// point-op verdict about one key and is never used for ranges, where
// "nothing in range" is a successful answer, not a failure to find.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"btreeperf/internal/query"
)

// Opcodes.
const (
	OpGet  byte = 1
	OpPut  byte = 2
	OpDel  byte = 3
	OpPing byte = 4
	// OpScan pages through [lo, hi); OpSeek returns the smallest key >=
	// key; OpLookup pages through the primary keys holding a value (needs
	// the secondary index). See the package comment for wire shapes.
	OpScan   byte = 5
	OpSeek   byte = 6
	OpLookup byte = 7
	// OpSeqs answers one page of (shard index, replication sequence)
	// pairs: the highest durable sequence per shard on a leader, the
	// highest applied sequence per shard on a follower. OpGetSeq is a get
	// carrying a bounded-staleness floor: a follower whose applied
	// sequence for the key's shard is below MinSeq answers StatusLagging
	// instead of possibly-stale data.
	OpSeqs   byte = 8
	OpGetSeq byte = 9
)

// Statuses.
const (
	// StatusOK: get hit, fresh put, del of a present key, ping, or a
	// query-op page (including an empty one — see the package comment).
	StatusOK byte = 0
	// StatusMiss: get or del of an absent key, or a put that replaced an
	// existing key's value. Never used for query ops.
	StatusMiss byte = 1
	// StatusBadRequest: malformed or unknown request payload, a
	// continuation token that fails to decode or does not match the
	// server's shard count, or a lookup against a server running without
	// the secondary index.
	StatusBadRequest byte = 2
	// StatusBusy: the server refused the request for capacity reasons —
	// the connection cap was hit (sent once, then the conn closes) or the
	// worker queue stayed full past the admission timeout. Retryable.
	StatusBusy byte = 3
	// StatusOverload: the overload governor is shedding update traffic
	// because the measured root writer utilization ρ_w crossed the
	// saturation threshold (§6's λ_{ρ=.5}). Only puts and deletes are
	// shed — scans, seeks, and lookups are read traffic and pass;
	// retry after backing off.
	StatusOverload byte = 4
	// StatusUnavail: the storage engine refused the operation — a failed
	// group-commit fsync or an earlier storage error has poisoned it
	// (fail stop: nothing is acknowledged that a crash could lose). Not
	// retryable on this server; the operation was NOT made durable even
	// if it briefly applied in memory.
	StatusUnavail byte = 5
	// StatusLagging: a replication follower refused an OpGetSeq because
	// its applied sequence for the key's shard is below the request's
	// MinSeq — answering would risk serving stale data past the client's
	// staleness bound. The client should read the leader (or retry the
	// follower after it catches up). Never returned by a leader.
	StatusLagging byte = 6
	// StatusNotLeader: a put or del arrived at a replication follower.
	// Followers apply mutations only from the leader's oplog stream;
	// direct that traffic at the leader.
	StatusNotLeader byte = 7
)

// Retryable reports whether a response status signals a transient
// capacity condition the client may retry after backing off.
func Retryable(status byte) bool {
	return status == StatusBusy || status == StatusOverload
}

// StatusName renders a status byte for error messages and logs.
func StatusName(status byte) string {
	switch status {
	case StatusOK:
		return "ok"
	case StatusMiss:
		return "miss"
	case StatusBadRequest:
		return "bad-request"
	case StatusBusy:
		return "busy"
	case StatusOverload:
		return "overload"
	case StatusUnavail:
		return "unavail"
	case StatusLagging:
		return "lagging"
	case StatusNotLeader:
		return "not-leader"
	default:
		return fmt.Sprintf("status(%d)", status)
	}
}

// MaxPayload bounds a frame payload; anything larger is a protocol
// error. It is sized for the largest page response: 1 status + 2 count +
// 16·MaxScanLimit entries + 2 toklen + MaxTokenSize ≤ 8192.
const MaxPayload = 8192

// MaxScanLimit caps a scan/lookup page's entry count; DefaultScanLimit
// is used when a request carries limit 0. Requests past the cap are
// clamped, not rejected.
const (
	MaxScanLimit     = 256
	DefaultScanLimit = 64
)

// Request is one decoded client request.
type Request struct {
	Op    byte
	Key   int64  // get/put/del key; seek key; scan lo
	Val   uint64 // put value; lookup value
	Hi    int64  // scan: exclusive upper bound
	Limit int    // scan/lookup: page entry cap; 0 = DefaultScanLimit

	// MinSeq is OpGetSeq's bounded-staleness floor: the lowest replication
	// sequence the answering shard must have applied. Clients learn it
	// from the sequence a replicated leader stamps onto mutation acks.
	MinSeq int64

	// Token is the scan/lookup continuation token (nil = first page). It
	// is copied out of the read buffer at decode time: the buffer is
	// reused across the frames of a batch. Point ops never touch it, so
	// the point path stays allocation-free.
	Token []byte
}

// Response is one decoded server response.
type Response struct {
	Status byte
	HasVal bool
	Val    uint64

	// Page-shaped responses (scan/seek/lookup). Entries is nil on an
	// empty page; Token is nil when the range is exhausted.
	Page    bool
	Entries []query.KV
	Token   []byte
}

// AppendRequest appends req's frame to dst.
func AppendRequest(dst []byte, req Request) []byte {
	switch req.Op {
	case OpScan:
		n := 1 + 8 + 8 + 2 + 2 + len(req.Token)
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = append(dst, req.Op)
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Key))
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Hi))
		dst = binary.BigEndian.AppendUint16(dst, uint16(req.Limit))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Token)))
		return append(dst, req.Token...)
	case OpLookup:
		n := 1 + 8 + 2 + 2 + len(req.Token)
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = append(dst, req.Op)
		dst = binary.BigEndian.AppendUint64(dst, req.Val)
		dst = binary.BigEndian.AppendUint16(dst, uint16(req.Limit))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Token)))
		return append(dst, req.Token...)
	}
	n := 1 + 8
	switch req.Op {
	case OpPut, OpGetSeq:
		n = 1 + 8 + 8
	case OpPing, OpSeqs:
		n = 1
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, req.Op)
	if req.Op != OpPing && req.Op != OpSeqs {
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Key))
	}
	if req.Op == OpPut {
		dst = binary.BigEndian.AppendUint64(dst, req.Val)
	}
	if req.Op == OpGetSeq {
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.MinSeq))
	}
	return dst
}

// AppendResponse appends resp's frame to dst: the page shape when
// resp.Page is set, the point shape otherwise.
func AppendResponse(dst []byte, resp Response) []byte {
	if resp.Page {
		n := 1 + 2 + 16*len(resp.Entries) + 2 + len(resp.Token)
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = append(dst, resp.Status)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(resp.Entries)))
		for _, e := range resp.Entries {
			dst = binary.BigEndian.AppendUint64(dst, uint64(e.Key))
			dst = binary.BigEndian.AppendUint64(dst, e.Val)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(resp.Token)))
		return append(dst, resp.Token...)
	}
	n := 1
	if resp.HasVal {
		n = 1 + 8
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, resp.Status)
	if resp.HasVal {
		dst = binary.BigEndian.AppendUint64(dst, resp.Val)
	}
	return dst
}

// readFull is io.ReadFull on the concrete *bufio.Reader: going through
// io.ReadFull's io.Reader parameter would force the destination slice to
// escape to the heap (one allocation per frame on the serving hot path).
// The destination here is always a caller-owned reusable buffer.
func readFull(br *bufio.Reader, p []byte) error {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed payload into buf (which must have
// MaxPayload capacity), returning the payload slice. io.EOF is returned
// unwrapped only when the stream ends cleanly between frames.
//
// The header is read with Peek+Discard rather than into a local array:
// bufio can pass a Read destination through to the underlying io.Reader,
// so a local header buffer would escape to the heap on every frame.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return nil, err // clean EOF between frames stays io.EOF
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxPayload {
		return nil, fmt.Errorf("server: frame payload %d bytes (max %d)", n, MaxPayload)
	}
	br.Discard(4)
	payload := buf[:n]
	if err := readFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// tokenSuffix validates and copies the trailing limit(2) toklen(2)
// token(toklen) fields of a scan/lookup request payload starting at off.
// The token length is bounded by the frame length checks alone — a
// toklen that disagrees with the payload length is a protocol error, so
// the decoder can never over-read. Token CONTENT is not validated here:
// a token that fails to decode answers StatusBadRequest at execution.
func tokenSuffix(payload []byte, off int, req *Request) error {
	req.Limit = int(binary.BigEndian.Uint16(payload[off:]))
	tokLen := int(binary.BigEndian.Uint16(payload[off+2:]))
	if tokLen > query.MaxTokenSize || len(payload) != off+4+tokLen {
		return fmt.Errorf("server: op %d token length %d in %d-byte payload", req.Op, tokLen, len(payload))
	}
	if tokLen > 0 {
		req.Token = append([]byte(nil), payload[off+4:]...)
	}
	return nil
}

// ReadRequest reads and decodes one request frame. buf must have at least
// MaxPayload capacity and is reused across calls.
func ReadRequest(br *bufio.Reader, buf []byte) (Request, error) {
	payload, err := readFrame(br, buf)
	if err != nil {
		return Request{}, err
	}
	var req Request
	req.Op = payload[0]
	switch req.Op {
	case OpPing, OpSeqs:
		if len(payload) != 1 {
			return Request{}, fmt.Errorf("server: op %d with %d-byte payload, want 1", req.Op, len(payload))
		}
	case OpGet, OpDel, OpSeek:
		if len(payload) != 9 {
			return Request{}, fmt.Errorf("server: op %d with %d-byte payload, want 9", req.Op, len(payload))
		}
		req.Key = int64(binary.BigEndian.Uint64(payload[1:9]))
	case OpPut:
		if len(payload) != 17 {
			return Request{}, fmt.Errorf("server: put with %d-byte payload, want 17", len(payload))
		}
		req.Key = int64(binary.BigEndian.Uint64(payload[1:9]))
		req.Val = binary.BigEndian.Uint64(payload[9:17])
	case OpGetSeq:
		if len(payload) != 17 {
			return Request{}, fmt.Errorf("server: getseq with %d-byte payload, want 17", len(payload))
		}
		req.Key = int64(binary.BigEndian.Uint64(payload[1:9]))
		req.MinSeq = int64(binary.BigEndian.Uint64(payload[9:17]))
	case OpScan:
		if len(payload) < 21 {
			return Request{}, fmt.Errorf("server: scan with %d-byte payload, want >= 21", len(payload))
		}
		req.Key = int64(binary.BigEndian.Uint64(payload[1:9]))
		req.Hi = int64(binary.BigEndian.Uint64(payload[9:17]))
		if err := tokenSuffix(payload, 17, &req); err != nil {
			return Request{}, err
		}
	case OpLookup:
		if len(payload) < 13 {
			return Request{}, fmt.Errorf("server: lookup with %d-byte payload, want >= 13", len(payload))
		}
		req.Val = binary.BigEndian.Uint64(payload[1:9])
		if err := tokenSuffix(payload, 9, &req); err != nil {
			return Request{}, err
		}
	default:
		return Request{}, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	return req, nil
}

// ReadResponse reads and decodes one point-shaped response frame. buf
// must have at least MaxPayload capacity and is reused across calls.
// Use ReadPageResponse for the responses to scan/seek/lookup requests —
// responses are untagged, so the shape to read is determined by the op
// that was sent (responses arrive in request order).
func ReadResponse(br *bufio.Reader, buf []byte) (Response, error) {
	payload, err := readFrame(br, buf)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Status: payload[0]}
	switch len(payload) {
	case 1:
	case 9:
		resp.HasVal = true
		resp.Val = binary.BigEndian.Uint64(payload[1:9])
	default:
		return Response{}, fmt.Errorf("server: response with %d-byte payload", len(payload))
	}
	return resp, nil
}

// ReadPageResponse reads and decodes one page-shaped response frame (the
// response to a scan, seek, or lookup). A bare 1-byte status frame is
// also accepted: shed paths may answer a query op with just a status.
// Entries and token are copied into fresh slices — the page path is not
// allocation-free, by design; the point path is.
func ReadPageResponse(br *bufio.Reader, buf []byte) (Response, error) {
	payload, err := readFrame(br, buf)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Status: payload[0]}
	if len(payload) == 1 {
		return resp, nil
	}
	if len(payload) < 5 {
		return Response{}, fmt.Errorf("server: page response with %d-byte payload", len(payload))
	}
	resp.Page = true
	count := int(binary.BigEndian.Uint16(payload[1:3]))
	if count > MaxScanLimit {
		return Response{}, fmt.Errorf("server: page response with %d entries (max %d)", count, MaxScanLimit)
	}
	off := 3 + 16*count
	if len(payload) < off+2 {
		return Response{}, fmt.Errorf("server: page response truncated at %d bytes for %d entries", len(payload), count)
	}
	if count > 0 {
		resp.Entries = make([]query.KV, count)
		for i := range resp.Entries {
			resp.Entries[i].Key = int64(binary.BigEndian.Uint64(payload[3+16*i:]))
			resp.Entries[i].Val = binary.BigEndian.Uint64(payload[11+16*i:])
		}
	}
	tokLen := int(binary.BigEndian.Uint16(payload[off:]))
	if tokLen > query.MaxTokenSize || len(payload) != off+2+tokLen {
		return Response{}, fmt.Errorf("server: page response token length %d in %d-byte payload", tokLen, len(payload))
	}
	if tokLen > 0 {
		resp.Token = append([]byte(nil), payload[off+2:]...)
	}
	return resp, nil
}
