// Package server is btserved's serving subsystem: a pipelined binary
// key-value protocol over TCP in front of the concurrent B-tree, with the
// paper's lock-queue telemetry measured live and exposed over HTTP.
//
// # Wire protocol
//
// Every message is a length-prefixed frame: a 4-byte big-endian payload
// length followed by the payload. Requests carry an opcode, a key, and —
// for puts — a value:
//
//	get:  op(1) key(8)
//	put:  op(1) key(8) val(8)
//	del:  op(1) key(8)
//	ping: op(1)
//
// Responses carry a status byte, plus the value for a get hit:
//
//	hit:  status(1) val(8)
//	else: status(1)
//
// Responses are returned in request order, so clients may pipeline any
// number of requests on one connection without tagging them.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpGet  byte = 1
	OpPut  byte = 2
	OpDel  byte = 3
	OpPing byte = 4
)

// Statuses.
const (
	// StatusOK: get hit, fresh put, del of a present key, or ping.
	StatusOK byte = 0
	// StatusMiss: get or del of an absent key, or a put that replaced an
	// existing key's value.
	StatusMiss byte = 1
	// StatusBadRequest: malformed or unknown request payload.
	StatusBadRequest byte = 2
	// StatusBusy: the server refused the request for capacity reasons —
	// the connection cap was hit (sent once, then the conn closes) or the
	// worker queue stayed full past the admission timeout. Retryable.
	StatusBusy byte = 3
	// StatusOverload: the overload governor is shedding update traffic
	// because the measured root writer utilization ρ_w crossed the
	// saturation threshold (§6's λ_{ρ=.5}). Only puts and deletes are
	// shed; retry after backing off.
	StatusOverload byte = 4
	// StatusUnavail: the storage engine refused the operation — a failed
	// group-commit fsync or an earlier storage error has poisoned it
	// (fail stop: nothing is acknowledged that a crash could lose). Not
	// retryable on this server; the operation was NOT made durable even
	// if it briefly applied in memory.
	StatusUnavail byte = 5
)

// Retryable reports whether a response status signals a transient
// capacity condition the client may retry after backing off.
func Retryable(status byte) bool {
	return status == StatusBusy || status == StatusOverload
}

// MaxPayload bounds a frame payload; anything larger is a protocol error.
const MaxPayload = 64

// Request is one decoded client request.
type Request struct {
	Op  byte
	Key int64
	Val uint64
}

// Response is one decoded server response.
type Response struct {
	Status byte
	HasVal bool
	Val    uint64
}

// AppendRequest appends req's frame to dst.
func AppendRequest(dst []byte, req Request) []byte {
	n := 1 + 8
	switch req.Op {
	case OpPut:
		n = 1 + 8 + 8
	case OpPing:
		n = 1
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, req.Op)
	if req.Op != OpPing {
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Key))
	}
	if req.Op == OpPut {
		dst = binary.BigEndian.AppendUint64(dst, req.Val)
	}
	return dst
}

// AppendResponse appends resp's frame to dst.
func AppendResponse(dst []byte, resp Response) []byte {
	n := 1
	if resp.HasVal {
		n = 1 + 8
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, resp.Status)
	if resp.HasVal {
		dst = binary.BigEndian.AppendUint64(dst, resp.Val)
	}
	return dst
}

// readFull is io.ReadFull on the concrete *bufio.Reader: going through
// io.ReadFull's io.Reader parameter would force the destination slice to
// escape to the heap (one allocation per frame on the serving hot path).
// The destination here is always a caller-owned reusable buffer.
func readFull(br *bufio.Reader, p []byte) error {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed payload into buf (which must have
// MaxPayload capacity), returning the payload slice. io.EOF is returned
// unwrapped only when the stream ends cleanly between frames.
//
// The header is read with Peek+Discard rather than into a local array:
// bufio can pass a Read destination through to the underlying io.Reader,
// so a local header buffer would escape to the heap on every frame.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return nil, err // clean EOF between frames stays io.EOF
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxPayload {
		return nil, fmt.Errorf("server: frame payload %d bytes (max %d)", n, MaxPayload)
	}
	br.Discard(4)
	payload := buf[:n]
	if err := readFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadRequest reads and decodes one request frame. buf must have at least
// MaxPayload capacity and is reused across calls.
func ReadRequest(br *bufio.Reader, buf []byte) (Request, error) {
	payload, err := readFrame(br, buf)
	if err != nil {
		return Request{}, err
	}
	var req Request
	req.Op = payload[0]
	switch req.Op {
	case OpPing:
		if len(payload) != 1 {
			return Request{}, fmt.Errorf("server: ping with %d-byte payload", len(payload))
		}
	case OpGet, OpDel:
		if len(payload) != 9 {
			return Request{}, fmt.Errorf("server: op %d with %d-byte payload, want 9", req.Op, len(payload))
		}
		req.Key = int64(binary.BigEndian.Uint64(payload[1:9]))
	case OpPut:
		if len(payload) != 17 {
			return Request{}, fmt.Errorf("server: put with %d-byte payload, want 17", len(payload))
		}
		req.Key = int64(binary.BigEndian.Uint64(payload[1:9]))
		req.Val = binary.BigEndian.Uint64(payload[9:17])
	default:
		return Request{}, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	return req, nil
}

// ReadResponse reads and decodes one response frame. buf must have at
// least MaxPayload capacity and is reused across calls.
func ReadResponse(br *bufio.Reader, buf []byte) (Response, error) {
	payload, err := readFrame(br, buf)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Status: payload[0]}
	switch len(payload) {
	case 1:
	case 9:
		resp.HasVal = true
		resp.Val = binary.BigEndian.Uint64(payload[1:9])
	default:
		return Response{}, fmt.Errorf("server: response with %d-byte payload", len(payload))
	}
	return resp, nil
}
