package server

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/faults"
)

// leakCheck snapshots the goroutine count and returns a func that fails
// the test if the count has not returned to the baseline (plus a small
// slack for runtime helpers) within 5 seconds.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			now := runtime.NumGoroutine()
			if now <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestMaxConnsBusy: the connection past the cap gets one StatusBusy
// frame and a close; capped conns keep working; a slot freed by a close
// is reusable.
func TestMaxConnsBusy(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, MaxConns: 2})
	defer shutdown()

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Round-trip both so the accept loop has registered them.
	for _, c := range []*Client{c1, c2} {
		if resp, err := c.Do(Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
			t.Fatalf("ping: %+v err=%v", resp, err)
		}
	}

	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c3.SetOpTimeout(2 * time.Second)
	resp, err := c3.Recv() // Busy frame arrives unsolicited, then EOF
	if err != nil {
		t.Fatalf("over-cap conn: %v, want StatusBusy frame", err)
	}
	if resp.Status != StatusBusy {
		t.Fatalf("over-cap conn got status %d, want StatusBusy", resp.Status)
	}
	if _, err := c3.Recv(); err == nil {
		t.Fatal("over-cap conn stayed open after Busy")
	}
	c3.Close()
	if got := s.Governor().ConnRejects; got != 1 {
		t.Fatalf("conn_rejects=%d, want 1", got)
	}

	// Capped conns unaffected; freeing one admits a newcomer.
	if resp, err := c1.Do(Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("capped conn broken after rejection: %+v err=%v", resp, err)
	}
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		c4.SetOpTimeout(time.Second)
		resp, err := c4.Do(Request{Op: OpPing})
		c4.Close()
		if err == nil && resp.Status == StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("freed slot never became admittable: %+v err=%v", resp, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleTimeoutReapsHalfOpenConn: a connected peer that goes silent
// (half-open) is closed by the idle deadline without disturbing others.
func TestIdleTimeoutReapsHalfOpenConn(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, IdleTimeout: 100 * time.Millisecond})
	defer shutdown()

	silent, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	silent.SetOpTimeout(5 * time.Second)
	if _, err := silent.Recv(); err == nil {
		t.Fatal("silent conn delivered a response")
	} // EOF once reaped

	deadline := time.Now().Add(5 * time.Second)
	for s.readTimeouts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle conn never counted as read timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The server is still fully serviceable.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Do(Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("server unserviceable after reaping idle conn: %+v err=%v", resp, err)
	}
}

// TestSlowLorisReaped: trickling a frame one byte at a time does not
// reset the idle deadline — the whole frame must arrive within it.
func TestSlowLorisReaped(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, IdleTimeout: 150 * time.Millisecond})
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A get frame is 4+9 bytes; send one byte every 50ms so bytes keep
	// flowing but no frame ever completes within 150ms.
	frame := AppendRequest(nil, Request{Op: OpGet, Key: 1})
	closed := false
	for i := 0; i < len(frame) && !closed; i++ {
		if _, err := conn.Write(frame[i : i+1]); err != nil {
			closed = true
			break
		}
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := conn.Read(make([]byte, 1)); err != nil {
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				closed = true // server hung up on us — the desired outcome
			}
		}
	}
	if !closed {
		// Writes can succeed into buffers after the peer closed; confirm
		// via a read with a generous deadline.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("slow-loris conn still open after trickling a frame for %v", time.Duration(len(frame))*50*time.Millisecond)
		}
	}
	if s.readTimeouts.Load() == 0 {
		t.Fatal("slow-loris close not counted as read timeout")
	}
}

// pipeListener turns net.Pipe into a net.Listener so tests can exercise
// deadline paths on a transport with zero kernel buffering.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the server side of a fresh pipe to Accept.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	c1, c2 := net.Pipe()
	select {
	case l.conns <- c2:
	case <-time.After(2 * time.Second):
		t.Fatal("pipeListener.dial: accept loop not draining")
	}
	return c1
}

// TestStalledWriterReaped: a peer that pipelines requests but never
// drains responses is killed by the write deadline instead of parking a
// writer goroutine forever, and the server drains cleanly afterwards.
func TestStalledWriterReaped(t *testing.T) {
	defer leakCheck(t)()
	s := New(Config{Algorithm: cbtree.LinkType, WriteTimeout: 150 * time.Millisecond, IdleTimeout: -1})
	ln := newPipeListener()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	conn := ln.dial(t)
	defer conn.Close()
	var wire []byte
	for i := 0; i < 8; i++ {
		wire = AppendRequest(wire, Request{Op: OpPut, Key: int64(i), Val: 7})
	}
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(wire); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Never read. The first response write blocks on the pipe until the
	// write deadline kills the connection.
	deadline := time.Now().Add(5 * time.Second)
	for s.writeTimeouts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled writer never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain after reaping stalled writer")
	}
}

// TestQueueFullShedsBusyAndDrains is the regression for the worker-queue
// admission semantics: when the queue stays full past AdmitTimeout the
// request is answered StatusBusy in order (never silently dropped), and
// a drain that starts with the queue full completes without deadlock.
func TestQueueFullShedsBusyAndDrains(t *testing.T) {
	defer leakCheck(t)()
	s := New(Config{
		Algorithm:    cbtree.LinkType,
		Workers:      1,
		QueueDepth:   2,
		AdmitTimeout: -1, // fail-fast admission
		Depth:        512,
	})
	s.testApplyDelay = 2 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(10 * time.Second)
	const n = 300
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		for i := 0; i < n; i++ {
			c.Send(Request{Op: OpPut, Key: int64(i), Val: 1})
		}
		c.Flush()
	}()
	okCnt, busyCnt := 0, 0
	for i := 0; i < n; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("response %d/%d lost: %v", i, n, err)
		}
		switch resp.Status {
		case StatusOK, StatusMiss:
			okCnt++
		case StatusBusy:
			busyCnt++
		default:
			t.Fatalf("response %d: unexpected status %d", i, resp.Status)
		}
	}
	if busyCnt == 0 {
		t.Fatalf("queue never shed: ok=%d busy=%d (apply delay too small?)", okCnt, busyCnt)
	}
	if okCnt == 0 {
		t.Fatal("every request shed: admission never admits")
	}
	if got := s.Governor().ShedBusy; got != int64(busyCnt) {
		t.Fatalf("shed_busy=%d, client saw %d", got, busyCnt)
	}

	// Refill the pipeline and cancel mid-flood: the drain must complete
	// even though the queue is full the whole time. (Wait for the first
	// sender so the two floods never share the bufio.Writer unsynced.)
	<-sent
	go func() {
		for i := 0; i < n; i++ {
			c.Send(Request{Op: OpPut, Key: int64(i), Val: 2})
		}
		c.Flush()
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	for {
		if _, err := c.Recv(); err != nil {
			break
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain deadlocked with a full worker queue")
	}
}

// TestGovernorShedsWritesAndRecovers drives the governor through its
// full state machine with an injected ρ_w source and checks admission
// and /healthz at every stage.
func TestGovernorShedsWritesAndRecovers(t *testing.T) {
	s := New(Config{
		Algorithm: cbtree.LinkType,
		Governor:  GovernorConfig{Interval: 5 * time.Millisecond, RecoverTicks: 2},
	})
	var rho atomic.Uint64
	setRho := func(v float64) { rho.Store(uint64(v * 1e6)) }
	s.shards[0].gov.rhoFn = func() float64 { return float64(rho.Load()) / 1e6 }
	setRho(0.01)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not drain")
		}
	}()

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	waitState := func(want GovState) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.Governor().State != want {
			if time.Now().After(deadline) {
				t.Fatalf("governor stuck in %v, want %v", s.Governor().State, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	healthz := func() int {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(5 * time.Second)

	// Healthy: everything admitted.
	waitState(GovOK)
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("/healthz ok state: %d", code)
	}
	if resp, _ := c.Do(Request{Op: OpPut, Key: 1, Val: 1}); resp.Status != StatusOK {
		t.Fatalf("healthy put: %+v", resp)
	}

	// Saturated: updates shed, reads and pings keep flowing.
	setRho(0.9)
	waitState(GovOverloaded)
	if code := healthz(); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz overloaded: %d, want 503", code)
	}
	if resp, err := c.Do(Request{Op: OpPut, Key: 2, Val: 2}); err != nil || resp.Status != StatusOverload {
		t.Fatalf("overloaded put: %+v err=%v, want StatusOverload", resp, err)
	}
	if resp, err := c.Do(Request{Op: OpDel, Key: 1}); err != nil || resp.Status != StatusOverload {
		t.Fatalf("overloaded del: %+v err=%v, want StatusOverload", resp, err)
	}
	if resp, err := c.Do(Request{Op: OpGet, Key: 1}); err != nil || resp.Status != StatusOK {
		t.Fatalf("overloaded get: %+v err=%v, want reads admitted", resp, err)
	}
	if resp, err := c.Do(Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("overloaded ping: %+v err=%v", resp, err)
	}
	if s.Governor().ShedOverload < 2 {
		t.Fatalf("shed_overload=%d, want >= 2", s.Governor().ShedOverload)
	}
	if got := s.Tree().Len(); got != 1 {
		t.Fatalf("tree mutated while shedding: %d keys, want 1", got)
	}

	// Hysteretic recovery: below ExitRho for RecoverTicks → degraded →
	// ok, and updates are admitted again.
	setRho(0.01)
	waitState(GovOK)
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("/healthz recovered: %d", code)
	}
	if resp, err := c.Do(Request{Op: OpPut, Key: 3, Val: 3}); err != nil || resp.Status != StatusOK {
		t.Fatalf("recovered put: %+v err=%v", resp, err)
	}
	if s.Governor().Transitions < 2 {
		t.Fatalf("transitions=%d, want >= 2", s.Governor().Transitions)
	}

	// Degraded: between exit and enter thresholds, nothing shed.
	setRho(0.45)
	waitState(GovDegraded)
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("/healthz degraded: %d, want 200", code)
	}
	if resp, err := c.Do(Request{Op: OpPut, Key: 4, Val: 4}); err != nil || resp.Status != StatusOK {
		t.Fatalf("degraded put shed: %+v err=%v", resp, err)
	}
}

// TestChaosKillUnderLoad floods a fault-injected server (latency,
// stalls, resets, truncations, drops) with resilient and raw clients,
// then cancels mid-load: Serve must drain without deadlock and without
// leaking goroutines.
func TestChaosKillUnderLoad(t *testing.T) {
	defer leakCheck(t)()

	s := New(Config{
		Algorithm:    cbtree.LinkType,
		IdleTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
	})
	inj := faults.New(faults.Config{
		Seed:    42,
		Latency: 50 * time.Microsecond,
		PStall:  0.002, Stall: 20 * time.Millisecond,
		PReset: 0.005,
		PTrunc: 0.002,
		PDrop:  0.05,
	})
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rawLn.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, inj.Listener(rawLn)) }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var opsDone atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) { // resilient clients: survive resets via reconnect
			defer wg.Done()
			rc, err := DialResilient(addr, RetryConfig{
				OpTimeout: 250 * time.Millisecond, DialTimeout: 250 * time.Millisecond,
				BaseBackoff: time.Millisecond, Seed: uint64(i) + 1,
			})
			if err != nil {
				return // server may already be saturated with faults
			}
			defer rc.Close()
			for k := int64(0); ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if k%3 == 0 {
					rc.Put(k, uint64(k))
				} else {
					rc.Get(k)
				}
				opsDone.Add(1)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { // raw pipelining clients: die on faults, redial
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := DialTimeout(addr, 250*time.Millisecond)
				if err != nil {
					continue
				}
				c.SetOpTimeout(250 * time.Millisecond)
				for j := 0; j < 100; j++ {
					if err := c.Send(Request{Op: OpPut, Key: int64(j), Val: 9}); err != nil {
						break
					}
				}
				c.Flush()
				for j := 0; j < 100; j++ {
					if _, err := c.Recv(); err != nil {
						break
					}
					opsDone.Add(1)
				}
				c.Close()
			}
		}()
	}

	time.Sleep(400 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve under chaos: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve deadlocked draining under chaos")
	}
	close(stop)
	wg.Wait()
	st := inj.Stats()
	if st.Resets+st.Drops+st.Truncs == 0 {
		t.Fatalf("chaos injected nothing (%v); test proves nothing", st)
	}
	t.Logf("chaos survived: %d client ops, faults %v", opsDone.Load(), st)
}
