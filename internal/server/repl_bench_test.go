package server

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkReplicatedGet measures read fan-out across a replica set:
// a disk-backed leader plus N in-memory followers streaming its oplog,
// read through a ReplicaSet client from GOMAXPROCS goroutines. One
// iteration is one bounded-staleness Get. replicas=0 is the baseline
// (every read hits the leader); each added follower adds an independent
// serving process and connection, so steady-state read throughput
// should grow with the target count until the client serializes.
// Writes are quiesced during measurement, so no read is refused for
// staleness — the lagging path is benchmarked by the failover harness
// and priced in EXPERIMENTS.md instead.
func BenchmarkReplicatedGet(b *testing.B) {
	for _, replicas := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("link-type/replicas=%d", replicas), func(b *testing.B) {
			benchReplicatedGet(b, replicas)
		})
	}
}

const benchReplPrefill = 1 << 13

func benchReplicatedGet(b *testing.B, replicas int) {
	// A dedicated engine with the default checkpoint cadence: the tiny
	// CheckpointOps the tests use would checkpoint dozens of times
	// during prefill (concurrently, but still burning I/O) and swamp
	// the setup.
	eng, err := NewDiskEngine(DiskEngineConfig{Path: b.TempDir() + "/tree.db"})
	if err != nil {
		b.Fatal(err)
	}
	ld := startLeader(b, 1, Config{Engines: []Engine{eng}})
	defer ld.shutdown()

	// Prefill through the wire so every write ships to the followers.
	c, err := Dial(ld.addr)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchReplPrefill; i++ {
		if err := c.Send(Request{Op: OpPut, Key: benchKey(uint64(i)), Val: uint64(i)}); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 256; j++ {
				if _, err := c.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	c.Close()

	cfgAddrs := make([]string, 0, replicas)
	for r := 0; r < replicas; r++ {
		fl := startFollower(b, Config{Shards: 1}, ld.replAddr, uint64(100+r))
		defer fl.shutdown()
		cfgAddrs = append(cfgAddrs, fl.addr)
	}
	leaderSeqs := waitSeqs(b, ld.addr, func([]int64) bool { return true })
	for _, addr := range cfgAddrs {
		waitSeqs(b, addr, func(seqs []int64) bool { return seqs[0] >= leaderSeqs[0] })
	}

	rs, err := DialReplicaSet(ReplicaSetConfig{Leader: ld.addr, Replicas: cfgAddrs})
	if err != nil {
		b.Fatal(err)
	}
	defer rs.Close()

	var miss atomic.Int64
	var n atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := n.Add(1)
			_, ok, err := rs.Get(benchKey(i % benchReplPrefill))
			if err != nil {
				b.Error(err)
				return
			}
			if !ok {
				miss.Add(1)
			}
		}
	})
	b.StopTimer()
	if m := miss.Load(); m > 0 {
		b.Fatalf("%d misses on prefilled keys", m)
	}
	st := rs.Stats()
	if replicas > 0 && st.StaleRefused > 0 {
		// Quiesced reads must never be refused; a refusal here means the
		// followers were not caught up when the timer started.
		b.Fatalf("%d stale refusals in steady state", st.StaleRefused)
	}
}
