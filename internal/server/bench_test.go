package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"btreeperf/internal/cbtree"
)

// Protocol micro-benchmarks: encode and decode must be zero-allocation so
// the per-request serving path stays allocation-free end to end.

func BenchmarkAppendRequest(b *testing.B) {
	buf := make([]byte, 0, 32)
	req := Request{Op: OpPut, Key: 12345678, Val: 87654321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRequest(buf[:0], req)
	}
	_ = buf
}

func BenchmarkAppendResponse(b *testing.B) {
	buf := make([]byte, 0, 16)
	resp := Response{Status: StatusOK, HasVal: true, Val: 87654321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendResponse(buf[:0], resp)
	}
	_ = buf
}

func BenchmarkReadRequest(b *testing.B) {
	frame := AppendRequest(nil, Request{Op: OpPut, Key: 12345678, Val: 87654321})
	src := bytes.NewReader(frame)
	br := bufio.NewReaderSize(src, 1<<10)
	buf := make([]byte, MaxPayload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		br.Reset(src)
		if _, err := ReadRequest(br, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadResponse(b *testing.B) {
	frame := AppendResponse(nil, Response{Status: StatusOK, HasVal: true, Val: 87654321})
	src := bytes.NewReader(frame)
	br := bufio.NewReaderSize(src, 1<<10)
	buf := make([]byte, MaxPayload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		br.Reset(src)
		if _, err := ReadResponse(br, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeLoopback is the end-to-end serving benchmark: a real TCP
// loopback connection driving a pipelined mixed workload (50% get,
// 25% put, 25% del) against a prefilled tree, for each algorithm and
// pipeline depth. ns/op is the inverse of serving throughput; p50_us and
// p99_us are sampled pipelined response times. allocs/op covers the whole
// process (client and server share it), so 0 here means the steady-state
// request path on both sides is allocation-free.
func BenchmarkServeLoopback(b *testing.B) {
	for _, alg := range []cbtree.Algorithm{cbtree.LockCoupling, cbtree.Optimistic, cbtree.LinkType, cbtree.OLC} {
		for _, depth := range []int{1, 16, 128} {
			b.Run(fmt.Sprintf("%s/depth=%d", alg, depth), func(b *testing.B) {
				benchServeLoopback(b, alg, depth)
			})
		}
	}
}

// BenchmarkServeLoopbackReadHeavy is the workload OLC exists for: mostly
// gets (14/16) with just enough puts and dels (1/16 each) to keep
// writers in play. Under link-type every get still queues through the
// root's FCFS R lock; under olc the same gets descend latch-free and
// only validate versions, so olc should win this head-to-head at depth
// where the pipeline keeps the tree busy.
func BenchmarkServeLoopbackReadHeavy(b *testing.B) {
	for _, alg := range []cbtree.Algorithm{cbtree.LinkType, cbtree.OLC} {
		for _, depth := range []int{16, 128} {
			b.Run(fmt.Sprintf("%s/depth=%d", alg, depth), func(b *testing.B) {
				benchServeLoopbackMix(b, Config{Algorithm: alg, Capacity: 64, Depth: depth, Prefill: benchPrefill}, readHeavyReq)
			})
		}
	}
}

const benchPrefill = 1 << 17

// benchKey mirrors the server's deterministic prefill scatter so gets and
// dels mostly hit existing keys.
func benchKey(i uint64) int64 {
	return int64(i*2654435761) % (1 << 40)
}

func benchServeLoopback(b *testing.B, alg cbtree.Algorithm, depth int) {
	benchServeLoopbackMB(b, alg, depth, 0)
}

func benchServeLoopbackMB(b *testing.B, alg cbtree.Algorithm, depth, maxBatch int) {
	benchServeLoopbackCfg(b, Config{Algorithm: alg, Capacity: 64, Depth: depth, Prefill: benchPrefill, MaxBatch: maxBatch})
}

// BenchmarkServeLoopbackSharded is the shard-count sweep on the mixed
// depth-128 workload: the same client stream fanned across N independent
// engines by the hash router. On a multi-core runner throughput should
// scale near-linearly until the cores run out; shards=1 must match
// BenchmarkServeLoopback's link-type/depth=128 case (the N=1 path is the
// unsharded one).
func BenchmarkServeLoopbackSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("link-type/depth=128/shards=%d", shards), func(b *testing.B) {
			benchServeLoopbackCfg(b, Config{
				Algorithm: cbtree.LinkType, Capacity: 64, Depth: 128,
				Prefill: benchPrefill, Shards: shards,
			})
		})
	}
}

// BenchmarkScanLoopback measures paged range-scan throughput over
// loopback TCP: one iteration is one page request (fan-out, merge,
// encode, wire round trip), cycling through the prefilled keyspace by
// following continuation tokens and restarting when a pass completes.
// keys/op is the realized page fill; keys/s throughput is keys/op
// divided by ns/op.
func BenchmarkScanLoopback(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, limit := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("link-type/shards=%d/limit=%d", shards, limit), func(b *testing.B) {
				benchScanLoopback(b, shards, limit)
			})
		}
	}
}

func benchScanLoopback(b *testing.B, shards, limit int) {
	s := New(Config{Algorithm: cbtree.LinkType, Capacity: 64, Prefill: benchPrefill, Shards: shards})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			b.Errorf("Serve: %v", err)
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const lo, hi = int64(0), int64(1) << 40
	var token []byte
	keys := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, next, err := c.Scan(lo, hi, limit, token)
		if err != nil {
			b.Fatal(err)
		}
		keys += len(page)
		token = next // nil after the last page: the next iteration restarts
	}
	b.StopTimer()
	b.ReportMetric(float64(keys)/float64(b.N), "keys/op")
}

// mixedReq is the default 50% get / 25% put / 25% del request mix.
func mixedReq(seq int, r uint64) Request {
	switch seq % 4 {
	case 0, 1:
		return Request{Op: OpGet, Key: benchKey(r % benchPrefill)}
	case 2:
		return Request{Op: OpPut, Key: int64(r) % (1 << 40), Val: r}
	default:
		return Request{Op: OpDel, Key: benchKey(r % benchPrefill)}
	}
}

// readHeavyReq is the 87.5% get / 6.25% put / 6.25% del mix.
func readHeavyReq(seq int, r uint64) Request {
	switch seq % 16 {
	case 14:
		return Request{Op: OpPut, Key: int64(r) % (1 << 40), Val: r}
	case 15:
		return Request{Op: OpDel, Key: benchKey(r % benchPrefill)}
	default:
		return Request{Op: OpGet, Key: benchKey(r % benchPrefill)}
	}
}

func benchServeLoopbackCfg(b *testing.B, cfg Config) {
	benchServeLoopbackMix(b, cfg, mixedReq)
}

func benchServeLoopbackMix(b *testing.B, cfg Config, mix func(seq int, r uint64) Request) {
	depth := cfg.Depth
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			b.Errorf("Serve: %v", err)
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Preallocate everything the measurement loop touches: the send-stamp
	// ring (latency sampling), the latency sample reservoir, and the rng
	// state, so allocs/op reflects the serving path alone.
	const sampleEvery = 16
	// The stamp ring is 2×depth so a slot is never overwritten while its
	// response (at most depth behind) is still outstanding.
	stamps := make([]int64, 2*depth)
	samples := make([]int64, 0, b.N/sampleEvery+1)
	rng := uint64(1)
	nextReq := func(seq int) Request {
		rng = rng*6364136223846793005 + 1442695040888963407
		return mix(seq, rng>>33)
	}

	b.ReportAllocs()
	b.ResetTimer()
	sent, recvd := 0, 0
	for recvd < b.N {
		// Fill the window, then drain half of it, keeping the pipeline
		// between depth/2 and depth outstanding.
		for sent < b.N && sent-recvd < depth {
			if sent%sampleEvery == 0 {
				stamps[sent%(2*depth)] = time.Now().UnixNano()
			}
			if err := c.Send(nextReq(sent)); err != nil {
				b.Fatal(err)
			}
			sent++
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		drain := (sent - recvd + 1) / 2
		for j := 0; j < drain; j++ {
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
			if recvd%sampleEvery == 0 {
				samples = append(samples, time.Now().UnixNano()-stamps[recvd%(2*depth)])
			}
			recvd++
		}
	}
	b.StopTimer()

	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		q := func(p float64) float64 {
			return float64(samples[int(p*float64(len(samples)-1))]) / 1e3
		}
		b.ReportMetric(q(0.50), "p50_us")
		b.ReportMetric(q(0.99), "p99_us")
	}
}
