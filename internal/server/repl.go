package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"btreeperf/internal/journal"
	"btreeperf/internal/query"
	"btreeperf/internal/repl"
)

// Replication wiring. A server plays one of three roles:
//
//   - unreplicated (the default): nothing here is active, and the wire
//     protocol is byte-identical to the pre-replication server;
//   - leader: StartHub builds a repl.Hub over the shards' journals and
//     installs each journal's retention floor, the worker pool stamps
//     acknowledged mutations with the shard's durable sequence and —
//     with Config.ReplAcks > 0 — holds them for the semi-synchronous
//     follower-ack barrier;
//   - follower: AttachFollower points the serving layer at a
//     FollowerSource (normally a *repl.Applier); puts and dels answer
//     StatusNotLeader, and OpGetSeq enforces the client's staleness
//     bound against the applied sequence, answering StatusLagging
//     rather than ever serving past it.
//
// Promotion flips a follower to a leader in place: the promote hook
// (installed by btserved) stops the applier, waits for its last apply to
// land, detaches it, and starts a hub under a fresh epoch.

// seqEngine is the engine capability replication leadership requires:
// journal-backed global sequences. Only the disk engine has it.
type seqEngine interface {
	Journal() *journal.Journal
	DurableSeq() int64
}

// FollowerSource is the follower-side replication state the serving
// layer consults: per-shard applied sequences for bounded-staleness
// reads, and a stats snapshot for telemetry. *repl.Applier implements it.
type FollowerSource interface {
	AppliedSeq(shard int) int64
	Stats() repl.ApplierStats
}

// followerRef boxes a FollowerSource so the role can live in an
// atomic.Pointer (interfaces cannot).
type followerRef struct{ src FollowerSource }

// replState is the server's mutable replication role. The hub and
// follower pointers are atomics — apply() consults the role on every
// mutation, and promotion flips it concurrently with serving; the mutex
// guards only the rarely-touched promote hook.
type replState struct {
	hub      atomic.Pointer[repl.Hub]
	follower atomic.Pointer[followerRef]
	mu       sync.Mutex
	promote  func() (uint64, error)
}

// Hub returns the leader-side replication hub, nil unless leading.
func (s *Server) Hub() *repl.Hub { return s.repl.hub.Load() }

// Follower returns the follower source, nil unless following.
func (s *Server) Follower() FollowerSource {
	if r := s.repl.follower.Load(); r != nil {
		return r.src
	}
	return nil
}

// IsFollower reports whether the server currently refuses mutations.
func (s *Server) IsFollower() bool { return s.Follower() != nil }

// StartHub makes the server a replication leader: it builds a repl.Hub
// over every shard's journal (each engine must be a disk engine — only
// journal-backed shards have the global sequences replication ships) and
// installs each journal's retention policy: segments at or above the
// slowest registered follower's acked sequence are retained, up to
// retainBudget bytes per shard, beyond which the slowest follower is
// evicted into a snapshot resync. The caller serves the returned hub on
// its replication listener.
func (s *Server) StartHub(epoch uint64, retainBudget int64, logf func(string, ...any)) (*repl.Hub, error) {
	shards := make([]repl.HubShard, len(s.shards))
	for i, sh := range s.shards {
		se, ok := sh.eng.(seqEngine)
		if !ok || se.Journal() == nil {
			return nil, fmt.Errorf("server: shard %d engine %q cannot lead: no journal", i, sh.eng.Kind())
		}
		shards[i] = repl.HubShard{
			Journal:  se.Journal(),
			Snapshot: s.snapshotShard(i),
		}
	}
	hub := repl.NewHub(epoch, shards, logf)
	for i, sh := range s.shards {
		shard := i
		se := sh.eng.(seqEngine)
		se.Journal().SetRetention(func() int64 { return hub.RetentionFloor(shard) }, retainBudget)
	}
	s.repl.follower.Store(nil)
	s.repl.hub.Store(hub)
	return hub, nil
}

// snapshotShard returns the fuzzy-snapshot closure for one shard: it
// captures the shard's durable sequence BEFORE scanning, so the snapshot
// plus an idempotent replay of every record after that sequence
// converges regardless of the mutations the scan raced with.
func (s *Server) snapshotShard(i int) func(yield func([]repl.KV) error) (int64, error) {
	sh := s.shards[i]
	return func(yield func([]repl.KV) error) (int64, error) {
		seq := sh.eng.(seqEngine).DurableSeq()
		const page = 1024
		cursor := int64(math.MinInt64)
		buf := make([]query.KV, 0, page)
		for {
			ents, more, err := sh.eng.Scan(cursor, math.MaxInt64, page, buf[:0])
			if err != nil {
				return 0, err
			}
			if len(ents) > 0 {
				kvs := make([]repl.KV, len(ents))
				for j, e := range ents {
					kvs[j] = repl.KV{Key: e.Key, Val: e.Val}
				}
				if err := yield(kvs); err != nil {
					return 0, err
				}
			}
			if !more || len(ents) == 0 {
				return seq, nil
			}
			cursor = ents[len(ents)-1].Key + 1
		}
	}
}

// AttachFollower makes the server a replication follower: mutations
// answer StatusNotLeader and OpGetSeq enforces its staleness bound
// against src. Call before Serve, or at role changes.
func (s *Server) AttachFollower(src FollowerSource) {
	s.repl.follower.Store(&followerRef{src: src})
}

// DetachFollower clears the follower role (promotion path).
func (s *Server) DetachFollower() {
	s.repl.follower.Store(nil)
}

// ApplierShards builds the follower-side replay callbacks over the
// server's shards, index maintenance included — the follower's engines
// and secondary index track the leader exactly as if the ops had arrived
// over the wire. Pass them to repl.NewApplier.
func (s *Server) ApplierShards() []repl.ApplierShard {
	out := make([]repl.ApplierShard, len(s.shards))
	for i := range s.shards {
		sh := s.shards[i]
		out[i] = repl.ApplierShard{
			Apply: func(o repl.Ops) error {
				for _, op := range o.Ops {
					var err error
					switch op.Kind {
					case journal.OpInsert:
						if sh.idx != nil {
							_, err = sh.idx.Put(op.Key, op.Val, func() (bool, error) {
								return sh.eng.Put(op.Key, op.Val)
							})
						} else {
							_, err = sh.eng.Put(op.Key, op.Val)
						}
					case journal.OpDelete:
						if sh.idx != nil {
							_, err = sh.idx.Del(op.Key, func() (bool, error) {
								return sh.eng.Del(op.Key)
							})
						} else {
							_, err = sh.eng.Del(op.Key)
						}
					default:
						err = fmt.Errorf("server: replicated op kind %d", op.Kind)
					}
					if err != nil {
						return err
					}
				}
				// The ack that follows promises durability: group-commit
				// the engine before returning.
				return sh.eng.Commit()
			},
			Reset: func() error {
				return s.resetShard(sh)
			},
			Load: func(kvs []repl.KV) error {
				for _, kv := range kvs {
					var err error
					if sh.idx != nil {
						_, err = sh.idx.Put(kv.Key, kv.Val, func() (bool, error) {
							return sh.eng.Put(kv.Key, kv.Val)
						})
					} else {
						_, err = sh.eng.Put(kv.Key, kv.Val)
					}
					if err != nil {
						return err
					}
				}
				return nil
			},
		}
	}
	return out
}

// resetShard empties one shard for a snapshot resync by scanning and
// deleting page by page — engine-agnostic, and keeps the secondary index
// in step. Slow for a large shard, but resync is already the degraded
// path (the follower fell off the retained log).
func (s *Server) resetShard(sh *shard) error {
	const page = 1024
	buf := make([]query.KV, 0, page)
	for {
		ents, _, err := sh.eng.Scan(math.MinInt64, math.MaxInt64, page, buf[:0])
		if err != nil {
			return err
		}
		if len(ents) == 0 {
			return sh.eng.Commit()
		}
		for _, e := range ents {
			if sh.idx != nil {
				_, err = sh.idx.Del(e.Key, func() (bool, error) {
					return sh.eng.Del(e.Key)
				})
			} else {
				_, err = sh.eng.Del(e.Key)
			}
			if err != nil {
				return err
			}
		}
	}
}

// SetPromoteHook installs the role-flip procedure POST /promote runs.
// The hook must stop the applier (and wait for its last apply), detach
// the follower role, start a hub, and return the new epoch.
func (s *Server) SetPromoteHook(fn func() (uint64, error)) {
	s.repl.mu.Lock()
	s.repl.promote = fn
	s.repl.mu.Unlock()
}

// ErrNotFollower is returned by Promote on a server not following.
var ErrNotFollower = errors.New("server: not a follower")

// Promote flips a follower into a leader via the installed hook,
// returning the new epoch.
func (s *Server) Promote() (uint64, error) {
	if !s.IsFollower() {
		return 0, ErrNotFollower
	}
	s.repl.mu.Lock()
	fn := s.repl.promote
	s.repl.mu.Unlock()
	if fn == nil {
		return 0, errors.New("server: no promote hook installed")
	}
	return fn()
}

// shardSeq is the replication sequence OpSeqs reports for one shard:
// the applied sequence on a follower, the durable sequence on a
// journal-backed leader, zero otherwise.
func (s *Server) shardSeq(i int) int64 {
	if f := s.Follower(); f != nil {
		return f.AppliedSeq(i)
	}
	if se, ok := s.shards[i].eng.(seqEngine); ok {
		return se.DurableSeq()
	}
	return 0
}

// ReplicationStats is the /metrics replication block.
type ReplicationStats struct {
	Role        string // "leader" or "follower"
	Acks        int    // configured semi-sync follower-ack requirement
	AckTimeouts int64  // commits that missed the ack barrier (answered Busy)
	NotLeader   int64  // mutations refused on a follower
	Lagging     int64  // getseqs refused past the staleness bound
	Hub         *repl.HubStats
	Follower    *repl.ApplierStats
}

// replicationStats snapshots the active role's replication telemetry;
// nil when the server is unreplicated.
func (s *Server) replicationStats() *ReplicationStats {
	hub, fol := s.Hub(), s.Follower()
	if hub == nil && fol == nil {
		return nil
	}
	st := &ReplicationStats{Acks: s.cfg.ReplAcks}
	for _, sh := range s.shards {
		st.AckTimeouts += sh.ackTimeouts.Load()
		st.NotLeader += sh.notLeader.Load()
		st.Lagging += sh.lagging.Load()
	}
	if hub != nil {
		st.Role = "leader"
		hs := hub.Stats()
		st.Hub = &hs
	} else {
		st.Role = "follower"
		fs := fol.Stats()
		st.Follower = &fs
	}
	return st
}
