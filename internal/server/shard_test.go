package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/xrand"
)

// TestShardIndexDeterministic pins the routing contract every durability
// guarantee rides on: the shard of a key is a pure function of (key, n),
// always in range — the same key always lands on the same shard, across
// restarts and across processes (btload -audit-verify replays against a
// restarted server).
func TestShardIndexDeterministic(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		for i := 0; i < 10000; i++ {
			k := int64(rng.Uint64()) % (1 << 40)
			a, b := shardIndex(k, n), shardIndex(k, n)
			if a != b {
				t.Fatalf("shardIndex(%d, %d) not deterministic: %d vs %d", k, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("shardIndex(%d, %d) = %d out of range", k, n, a)
			}
		}
	}
	// Negative keys are legal protocol keys and must route in range too.
	for _, k := range []int64{-1, -5, math.MinInt64, math.MaxInt64} {
		for _, n := range []int{1, 3, 8} {
			if idx := shardIndex(k, n); idx < 0 || idx >= n {
				t.Fatalf("shardIndex(%d, %d) = %d out of range", k, n, idx)
			}
		}
	}
}

// TestShardRouterSpread checks the splitmix64 mixer actually spreads a
// patterned (sequential) key stream: with 64k sequential keys over 8
// shards, every shard should hold within 3x of its fair share.
func TestShardRouterSpread(t *testing.T) {
	const n, keys = 8, 1 << 16
	var counts [n]int
	for i := 0; i < keys; i++ {
		counts[shardIndex(int64(i), n)]++
	}
	fair := keys / n
	for i, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Fatalf("shard %d holds %d of %d sequential keys (fair share %d): router not spreading", i, c, keys, fair)
		}
	}
}

// TestShardedRouterMatchesOracle runs a randomized mixed workload through
// a multi-shard server on one pipelined connection and checks every
// response against a single-map oracle applied in request order. One
// connection's responses arrive in request order, so agreement here means
// the router + per-shard execution is sequentially consistent with one
// tree. Afterwards it checks the partition invariants: Len sums across
// shards, and every live key is present in exactly the shard the router
// names (and no other).
func TestShardedRouterMatchesOracle(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, addr, shutdown := startServer(t, Config{
				Algorithm: cbtree.LinkType, Capacity: 8, Shards: shards,
			})
			defer shutdown()
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const nOps = 20000
			const keySpace = 512 // small: lots of same-key collisions across ops
			oracle := make(map[int64]uint64)
			rng := xrand.New(42)
			type sent struct {
				req      Request
				wantStat uint8
				wantVal  uint64
				hasVal   bool
			}
			pendingCh := make(chan sent, 256)
			var recvErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for p := range pendingCh {
					resp, err := c.Recv()
					if err != nil {
						recvErr = fmt.Errorf("recv %d: %w", i, err)
						return
					}
					if resp.Status != p.wantStat {
						recvErr = fmt.Errorf("op %d (%+v): status %d, oracle wants %d", i, p.req, resp.Status, p.wantStat)
						return
					}
					if p.hasVal && (!resp.HasVal || resp.Val != p.wantVal) {
						recvErr = fmt.Errorf("op %d (%+v): val %d/%v, oracle wants %d", i, p.req, resp.Val, resp.HasVal, p.wantVal)
						return
					}
					i++
				}
			}()
			for i := 0; i < nOps; i++ {
				key := int64(rng.Uint64() % keySpace)
				var p sent
				switch rng.Uint64() % 4 {
				case 0, 1: // get
					p.req = Request{Op: OpGet, Key: key}
					if v, ok := oracle[key]; ok {
						p.wantStat, p.wantVal, p.hasVal = StatusOK, v, true
					} else {
						p.wantStat = StatusMiss
					}
				case 2: // put
					v := rng.Uint64()
					p.req = Request{Op: OpPut, Key: key, Val: v}
					if _, ok := oracle[key]; ok {
						p.wantStat = StatusMiss // overwrite: not fresh
					} else {
						p.wantStat = StatusOK
					}
					oracle[key] = v
				default: // del
					p.req = Request{Op: OpDel, Key: key}
					if _, ok := oracle[key]; ok {
						p.wantStat = StatusOK
					} else {
						p.wantStat = StatusMiss
					}
					delete(oracle, key)
				}
				if err := c.Send(p.req); err != nil {
					t.Fatal(err)
				}
				pendingCh <- p
				if i%97 == 0 {
					c.Flush()
				}
			}
			c.Flush()
			close(pendingCh)
			wg.Wait()
			if recvErr != nil {
				t.Fatal(recvErr)
			}

			// Partition invariants.
			if got := s.Len(); got != len(oracle) {
				t.Fatalf("Len() = %d, oracle holds %d keys", got, len(oracle))
			}
			sum := 0
			for _, sh := range s.shards {
				sum += sh.eng.Len()
			}
			if sum != len(oracle) {
				t.Fatalf("shard Lens sum to %d, oracle holds %d keys", sum, len(oracle))
			}
			for key, val := range oracle {
				home := shardIndex(key, shards)
				for i, sh := range s.shards {
					v, ok, err := sh.eng.Get(key)
					if err != nil {
						t.Fatal(err)
					}
					if i == home {
						if !ok || v != val {
							t.Fatalf("key %d missing/wrong on its home shard %d: ok=%v v=%d want %d", key, home, ok, v, val)
						}
					} else if ok {
						t.Fatalf("key %d present on shard %d, home is %d: key on more than one shard", key, i, home)
					}
				}
			}
		})
	}
}

// TestShardedGovernorShedsPerShard forces one shard's governor over the
// saturation threshold and checks shedding is per shard: updates routed
// to the hot shard come back Overload while the other shards' updates
// keep succeeding — the router cannot steer keys, but a cold shard must
// not pay for a hot one.
func TestShardedGovernorShedsPerShard(t *testing.T) {
	const shards = 4
	const hot = 2
	var hotRho atomic.Bool
	s := New(Config{
		Algorithm: cbtree.LinkType, Shards: shards,
		Governor: GovernorConfig{Interval: 5 * time.Millisecond, Rho: 0.5},
	})
	for i, sh := range s.shards {
		i := i
		sh.gov.rhoFn = func() float64 {
			if i == hot && hotRho.Load() {
				return 0.99
			}
			return 0.01
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find keys homed on the hot shard and on a cold one.
	hotKey, coldKey := int64(-1), int64(-1)
	for k := int64(0); hotKey < 0 || coldKey < 0; k++ {
		switch shardIndex(k, shards) {
		case hot:
			hotKey = k
		default:
			if coldKey < 0 {
				coldKey = k
			}
		}
	}

	hotRho.Store(true)
	deadline := time.After(5 * time.Second)
	for GovState(s.shards[hot].gov.state.Load()) != GovOverloaded {
		select {
		case <-deadline:
			t.Fatal("hot shard governor never entered GovOverloaded")
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := c.Do(Request{Op: OpPut, Key: hotKey, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOverload {
		t.Fatalf("put to hot shard: status %d, want Overload", resp.Status)
	}
	resp, err = c.Do(Request{Op: OpPut, Key: coldKey, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("put to cold shard: status %d, want OK (cold shards must not shed)", resp.Status)
	}
	// Gets pass even on the hot shard: only updates are shed.
	resp, err = c.Do(Request{Op: OpGet, Key: hotKey})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusMiss {
		t.Fatalf("get on hot shard: status %d, want Miss (reads must not be shed)", resp.Status)
	}
	if s.shards[hot].shedOverload.Load() == 0 {
		t.Error("hot shard shed counter not incremented")
	}
	for i, sh := range s.shards {
		if i != hot && sh.shedOverload.Load() != 0 {
			t.Errorf("cold shard %d shed %d updates", i, sh.shedOverload.Load())
		}
	}

	// /healthz reports the aggregate as overloaded (503) with the hot
	// shard identified.
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	res, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz with one overloaded shard: %d, want 503\n%s", res.StatusCode, body)
	}
	if !strings.Contains(string(body), fmt.Sprintf("shard=%d state=overloaded", hot)) {
		t.Errorf("/healthz does not identify the overloaded shard:\n%s", body)
	}
}

// checkNoNaN walks any decoded JSON value and fails on NaN or Inf. The
// JSON encoder refuses non-finite floats outright (the scrape would 500
// or truncate), but the decode-side walk also catches "999999999999"-
// style sentinel garbage from float formatting having gone through %v.
func checkNoNaN(t *testing.T, path string, v any) {
	t.Helper()
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("%s is %v", path, x)
		}
	case map[string]any:
		for k, vv := range x {
			checkNoNaN(t, path+"."+k, vv)
		}
	case []any:
		for i, vv := range x {
			checkNoNaN(t, fmt.Sprintf("%s[%d]", path, i), vv)
		}
	}
}

// TestIdleServerTelemetryFinite is the zero-traffic regression scrape:
// every telemetry endpoint of a server that has served nothing — and is
// scraped twice back to back, so the second window is near zero-width
// with zero ops — must produce finite, parseable output. This pins the
// divide-by-zero guards in windowState.advance, metrics.Rates, and the
// model evaluation (λ=0 windows are not evaluated).
func TestIdleServerTelemetryFinite(t *testing.T) {
	for _, tc := range []struct {
		shards int
		disk   bool
	}{{1, false}, {4, false}, {1, true}, {4, true}} {
		name := fmt.Sprintf("shards=%d", tc.shards)
		if tc.disk {
			name += "/disk"
		}
		t.Run(name, func(t *testing.T) {
			shards := tc.shards
			cfg := Config{Algorithm: cbtree.LinkType, Shards: shards}
			// The disk passes cover the checkpoint telemetry block
			// (pause last/max, chunks done/total, mutations-behind): an
			// idle engine must report them as finite zeros, never NaN
			// from a 0/0 progress ratio.
			if tc.disk {
				var engines []Engine
				for i := 0; i < shards; i++ {
					engines = append(engines, newDiskEngine(t, DiskEngineConfig{
						Path: filepath.Join(t.TempDir(), fmt.Sprintf("s%d.db", i)),
						Cap:  8, CacheNodes: 32,
					}))
				}
				if shards == 1 {
					cfg.Engine = engines[0]
				} else {
					cfg.Engines = engines
				}
			}
			s, _, shutdown := startServer(t, cfg)
			defer shutdown()
			hs := httptest.NewServer(s.Handler())
			defer hs.Close()

			for round := 0; round < 2; round++ {
				for _, ep := range []string{"/metrics", "/debug/model", "/healthz"} {
					body := httpGet(t, hs.URL+ep)
					for _, bad := range []string{"NaN", "nan", "+Inf", "-Inf"} {
						if strings.Contains(body, bad) {
							t.Errorf("round %d %s contains %q:\n%s", round, ep, bad, body)
						}
					}
				}
				raw := httpGet(t, hs.URL+"/metrics?format=json")
				var decoded map[string]any
				if err := json.Unmarshal([]byte(raw), &decoded); err != nil {
					t.Fatalf("round %d: idle /metrics json does not parse: %v\n%s", round, err, raw)
				}
				checkNoNaN(t, "metrics", decoded)
				if got := decoded["shards"].(float64); int(got) != shards {
					t.Errorf("round %d: shards = %v, want %d", round, got, shards)
				}
				if got := decoded["ops_per_sec"].(float64); got != 0 {
					t.Errorf("round %d: idle ops_per_sec = %v, want 0", round, got)
				}
				if got := decoded["governor"].(string); got != "ok" {
					t.Errorf("round %d: idle governor = %q, want ok (stale gauge?)", round, got)
				}
				if tc.disk {
					body := httpGet(t, hs.URL+"/metrics")
					if !strings.Contains(body, "checkpoint pause_last_us=") ||
						!strings.Contains(body, "chunks_done=0 chunks_total=0") {
						t.Errorf("round %d: idle disk /metrics missing the checkpoint telemetry line:\n%s", round, body)
					}
					for _, f := range []string{"ckpt_pause_last_us", "ckpt_pause_max_us", "ckpt_chunks_done", "ckpt_chunks_total", "ckpt_fails"} {
						if _, ok := decoded[f]; !ok {
							t.Errorf("round %d: idle disk /metrics json missing %q", round, f)
						}
					}
				}
			}
		})
	}
}

// TestMultiShardMetrics drives traffic through a 4-shard server and
// checks the merged and per-shard telemetry views agree: shard blocks
// exist for every shard, their op counts sum to the merged count, the
// merged keys figure matches Len, and the text format carries per-shard
// ρ_w gauges.
func TestMultiShardMetrics(t *testing.T) {
	const shards = 4
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, Capacity: 8, Shards: shards, Prefill: 3000})
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 4000
	for i := 0; i < n; i++ {
		c.Send(Request{Op: OpPut, Key: int64(i) * 13, Val: uint64(i)})
		c.Send(Request{Op: OpGet, Key: int64(i) * 13})
	}
	c.Flush()
	for i := 0; i < 2*n; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var m metricsJSON
	if err := json.Unmarshal([]byte(httpGet(t, hs.URL+"/metrics?format=json")), &m); err != nil {
		t.Fatal(err)
	}
	if m.Shards != shards || len(m.ShardBlocks) != shards {
		t.Fatalf("shards=%d blocks=%d, want %d", m.Shards, len(m.ShardBlocks), shards)
	}
	var keys int
	var gets, puts int64
	for i, b := range m.ShardBlocks {
		if b.Shard != i {
			t.Errorf("block %d labeled shard %d", i, b.Shard)
		}
		if b.Gets == 0 || b.Puts == 0 {
			t.Errorf("shard %d saw no traffic (gets=%d puts=%d): router not spreading", i, b.Gets, b.Puts)
		}
		if len(b.Levels) == 0 {
			t.Errorf("shard %d block has no levels", i)
		}
		keys += b.Keys
		gets += b.Gets
		puts += b.Puts
	}
	if keys != m.Keys || m.Keys != s.Len() {
		t.Errorf("keys: merged %d, blocks sum %d, Len %d", m.Keys, keys, s.Len())
	}
	if gets != m.Gets || puts != m.Puts {
		t.Errorf("ops: merged gets/puts %d/%d, blocks sum %d/%d", m.Gets, m.Puts, gets, puts)
	}
	if len(m.Levels) == 0 {
		t.Error("merged view has no levels")
	}

	text := httpGet(t, hs.URL+"/metrics")
	for i := 0; i < shards; i++ {
		if !strings.Contains(text, fmt.Sprintf("shard=%d ", i)) {
			t.Errorf("text /metrics missing shard=%d gauge line:\n%s", i, text)
		}
	}
	if !strings.Contains(text, "root_rho_w=") || !strings.Contains(text, "shards=4") {
		t.Errorf("text /metrics missing per-shard rho gauges or shard count:\n%s", text)
	}

	model := httpGet(t, hs.URL+"/debug/model")
	for i := 0; i < shards; i++ {
		if !strings.Contains(model, fmt.Sprintf("shard %d", i)) {
			t.Errorf("/debug/model missing shard %d section:\n%s", i, model)
		}
	}
	if !strings.Contains(model, "aggregate:") {
		t.Errorf("/debug/model missing aggregate verdict:\n%s", model)
	}
}

// TestDrainThenCloseUnderScrape is the shutdown-ordering race test: a
// server under pipelined load and concurrent telemetry scrapes is
// drained (ctx cancel) while both keep running, then Close()d the moment
// Serve returns — exactly btserved's SIGTERM path. Under -race this
// catches any window where a scrape handler or a final group commit
// touches an engine Close is tearing down. Runs per engine kind and
// shard count.
func TestDrainThenCloseUnderScrape(t *testing.T) {
	kinds := []struct {
		name string
		cfg  func(t *testing.T, shards int) Config
	}{
		{"mem", func(t *testing.T, shards int) Config {
			return Config{Algorithm: cbtree.LinkType, Shards: shards}
		}},
		{"disk", func(t *testing.T, shards int) Config {
			dir := t.TempDir()
			var engines []Engine
			for i := 0; i < shards; i++ {
				e, err := NewDiskEngine(DiskEngineConfig{
					Path: filepath.Join(dir, fmt.Sprintf("shard-%d.db", i)),
					Cap:  8, CacheNodes: 64,
				})
				if err != nil {
					t.Fatal(err)
				}
				engines = append(engines, e)
			}
			return Config{Engines: engines}
		}},
	}
	for _, k := range kinds {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", k.name, shards), func(t *testing.T) {
				s := New(k.cfg(t, shards))
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				serveDone := make(chan error, 1)
				go func() { serveDone <- s.Serve(ctx, ln) }()

				hs := httptest.NewServer(s.Handler())
				defer hs.Close()

				var wg sync.WaitGroup
				stop := make(chan struct{})
				// Load: pipelined mixed ops; errors expected once the drain
				// cuts the conn.
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func(seed uint64) {
						defer wg.Done()
						c, err := Dial(ln.Addr().String())
						if err != nil {
							return
						}
						defer c.Close()
						rng := xrand.New(seed)
						inFlight := 0
						for {
							select {
							case <-stop:
								return
							default:
							}
							k := int64(rng.Uint64() % 4096)
							if err := c.Send(Request{Op: OpPut, Key: k, Val: rng.Uint64()}); err != nil {
								return
							}
							inFlight++
							if inFlight == 64 {
								if err := c.Flush(); err != nil {
									return
								}
								for ; inFlight > 0; inFlight-- {
									if _, err := c.Recv(); err != nil {
										return
									}
								}
							}
						}
					}(uint64(w) + 1)
				}
				// Scrapers: hammer every endpoint through the drain and past
				// Close; after Close they must see 503, never a torn read.
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						eps := []string{"/metrics", "/metrics?format=json", "/debug/model", "/healthz"}
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							res, err := http.Get(hs.URL + eps[i%len(eps)])
							if err != nil {
								continue
							}
							io.Copy(io.Discard, res.Body)
							res.Body.Close()
						}
					}()
				}

				time.Sleep(50 * time.Millisecond)
				cancel() // SIGTERM
				select {
				case err := <-serveDone:
					if err != nil {
						t.Errorf("Serve: %v", err)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("Serve did not drain")
				}
				// btserved closes engines immediately after Serve returns,
				// with scrapers still running.
				if err := s.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
				// A scrape after Close answers 503, not a crash.
				res, err := http.Get(hs.URL + "/metrics")
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("scrape after Close: %d, want 503", res.StatusCode)
				}
				close(stop)
				wg.Wait()
				if err := s.Close(); err != nil { // idempotent
					t.Errorf("second Close: %v", err)
				}
			})
		}
	}
}

// TestShardedDiskRecovery is the sharded crash-durability test: acked
// writes against a 4-shard disk server must survive losing the process.
// The crash is simulated in-process by abandoning the engines without
// Close (the pagestore holds no lock), then reopening the same
// directories: recovery replays each shard's journal independently, and
// every acknowledged write must be there — on its home shard.
func TestShardedDiskRecovery(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	mkEngines := func() []Engine {
		var engines []Engine
		for i := 0; i < shards; i++ {
			e, err := NewDiskEngine(DiskEngineConfig{
				Path: filepath.Join(dir, fmt.Sprintf("shard-%d.db", i)),
				Cap:  8, CacheNodes: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, e)
		}
		return engines
	}

	s := New(Config{Engines: mkEngines()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	const n = 2000
	acked := make(map[int64]uint64)
	for i := 0; i < n; i++ {
		k := int64(i) * 7
		v := uint64(i)*0x9E3779B97F4A7C15 + 1
		if _, err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
		// Put returned: the response was written, so the batch's group
		// commit fsync already happened — this write is acked-durable.
		acked[k] = v
	}
	c.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	// Crash: the engines are abandoned, never Closed — whatever is not
	// already durable is lost, like a kill -9.

	reopened := mkEngines()
	defer func() {
		for _, e := range reopened {
			e.Close()
		}
	}()
	total := 0
	for i, e := range reopened {
		total += e.Len()
		if rec := e.(*DiskEngine).Recovered(); rec == 0 {
			t.Errorf("shard %d recovered 0 ops (journal replay did not run)", i)
		}
	}
	if total != len(acked) {
		t.Errorf("recovered %d keys across shards, acked %d", total, len(acked))
	}
	for k, v := range acked {
		home := shardIndex(k, shards)
		got, ok, err := reopened[home].Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != v {
			t.Errorf("acked write lost after crash: key %d on shard %d: ok=%v v=%d want %d", k, home, ok, got, v)
		}
	}
}

// TestShardedSingleShardDelegates pins the N=1 compatibility contract:
// shard-0 accessors, no shard blocks in JSON, no shard= lines in text.
func TestShardedSingleShardDelegates(t *testing.T) {
	s, _, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, Prefill: 100})
	defer shutdown()
	if s.NumShards() != 1 {
		t.Fatalf("default NumShards = %d, want 1", s.NumShards())
	}
	if s.Tree() == nil || s.Engine() == nil || s.Probe() == nil {
		t.Fatal("shard-0 delegate accessors returned nil")
	}
	if s.Len() != s.Tree().Len() {
		t.Fatalf("Len %d != tree len %d", s.Len(), s.Tree().Len())
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	var m metricsJSON
	if err := json.Unmarshal([]byte(httpGet(t, hs.URL+"/metrics?format=json")), &m); err != nil {
		t.Fatal(err)
	}
	if m.Shards != 1 || m.ShardBlocks != nil {
		t.Errorf("single-shard JSON: shards=%d blocks=%v, want 1/none", m.Shards, m.ShardBlocks)
	}
	text := httpGet(t, hs.URL+"/metrics")
	if strings.Contains(text, "shard=") {
		t.Errorf("single-shard text /metrics has shard= lines:\n%s", text)
	}
}
