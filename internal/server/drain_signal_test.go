package server

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"btreeperf/internal/cbtree"
)

// TestGracefulDrainOnSIGTERM exercises the real production shutdown
// path — a SIGTERM delivered to the process, caught by
// signal.NotifyContext exactly as cmd/btserved wires it — with requests
// pipelined in flight, and asserts zero lost responses at both a serial
// pipeline (depth 1) and a deep one (depth 128).
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	for _, depth := range []int{1, 128} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			s := New(Config{Algorithm: cbtree.LinkType, Depth: depth})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
			defer stop()
			done := make(chan error, 1)
			go func() { done <- s.Serve(ctx, ln) }()

			c, err := Dial(ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Keep the pipeline as full as the depth allows, then SIGTERM
			// ourselves mid-flight.
			sent := depth
			for i := 0; i < sent; i++ {
				if err := c.Send(Request{Op: OpPut, Key: int64(i), Val: uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
				t.Fatal("SIGTERM never reached NotifyContext")
			}

			c.SetOpTimeout(10 * time.Second)
			got := 0
			for ; got < sent; got++ {
				if _, err := c.Recv(); err != nil {
					break
				}
			}
			if got != sent {
				t.Fatalf("depth %d: %d of %d in-flight responses lost across SIGTERM drain", depth, sent-got, sent)
			}
			// And nothing extra dribbles in: the conn is closed.
			if _, err := c.Recv(); err == nil {
				t.Fatal("conn still open after drain")
			}
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("Serve: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Serve did not return after SIGTERM drain")
			}
		})
	}
}
