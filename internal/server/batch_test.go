package server

import (
	"context"
	"fmt"
	"net"
	"testing"

	"btreeperf/internal/cbtree"
)

// TestResponseOrderAcrossDepths checks the acceptance invariant of the
// batched pipeline: responses come back in request order at every
// combination of pipeline depth and batch bound, including the degenerate
// ones (depth 1 = one batch in flight, max-batch 1 = every batch a single
// job). Each get's value encodes its key, so any reordering anywhere in
// the reader → worker → writer pipeline is caught.
func TestResponseOrderAcrossDepths(t *testing.T) {
	for _, depth := range []int{1, 2, 16, 128} {
		for _, maxBatch := range []int{1, 4, 32} {
			t.Run(fmt.Sprintf("depth=%d/maxBatch=%d", depth, maxBatch), func(t *testing.T) {
				t.Parallel()
				_, addr, shutdown := startServer(t, Config{
					Algorithm: cbtree.LinkType, Depth: depth, MaxBatch: maxBatch,
				})
				defer shutdown()
				c, err := Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				const n = 2000
				done := make(chan struct{})
				go func() {
					defer close(done)
					for i := 0; i < n; i++ {
						c.Send(Request{Op: OpPut, Key: int64(i), Val: uint64(i)*7 + 1})
						if i%3 == 0 {
							c.Flush() // vary framing so batches split unevenly
						}
					}
					for i := 0; i < n; i++ {
						c.Send(Request{Op: OpGet, Key: int64(i)})
					}
					c.Flush()
				}()
				for i := 0; i < n; i++ {
					resp, err := c.Recv()
					if err != nil {
						t.Fatalf("put resp %d: %v", i, err)
					}
					if resp.Status != StatusOK {
						t.Fatalf("put %d: status %d", i, resp.Status)
					}
				}
				for i := 0; i < n; i++ {
					resp, err := c.Recv()
					if err != nil {
						t.Fatalf("get resp %d: %v", i, err)
					}
					if !resp.HasVal || resp.Val != uint64(i)*7+1 {
						t.Fatalf("get %d: %+v (responses out of request order)", i, resp)
					}
				}
				<-done
			})
		}
	}
}

// BenchmarkBatchDispatch measures the batch handoff alone — queue
// admission, worker apply, completion signal — without the network or
// codec, by feeding pooled batches of gets straight into the worker
// queue. ns/op is per request; the spread across batch sizes is the
// per-batch overhead being amortized.
func BenchmarkBatchDispatch(b *testing.B) {
	for _, size := range []int{1, 8, DefaultMaxBatch} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			s := New(Config{Algorithm: cbtree.LinkType, Prefill: benchPrefill})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- s.Serve(ctx, ln) }()
			defer func() {
				cancel()
				if err := <-done; err != nil {
					b.Errorf("Serve: %v", err)
				}
			}()

			rng := uint64(1)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; {
				bt := getBatch(1)
				for i := 0; i < size && n < b.N; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					j := bt.add()
					j.req = Request{Op: OpGet, Key: benchKey((rng >> 33) % benchPrefill)}
					bt.nexec++
					bt.nexecSh[0]++
					n++
				}
				bt.arm(1)
				s.shards[0].work <- bt
				bt.wait()
				putBatch(bt)
			}
		})
	}
}
