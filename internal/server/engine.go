package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/diskbtree"
	"btreeperf/internal/journal"
	"btreeperf/internal/pagestore"
	"btreeperf/internal/query"
)

// Engine is the storage behind the serving layer. The in-memory engine
// (the default) wraps the instrumented cbtree; the disk engine wraps a
// durable diskbtree. The worker pool calls Commit once per executed
// batch that contained a mutation, and withholds those mutations' OK
// responses until it returns — group commit: one oplog fsync covers the
// whole batch, and nothing is acknowledged that a crash could lose.
//
// Engines fail stop: after a storage error every call returns a non-nil
// error (see diskbtree.ErrPoisoned) and Poisoned reports the cause. The
// serving layer maps engine errors to StatusUnavail and /healthz to 503.
type Engine interface {
	Get(key int64) (uint64, bool, error)
	Put(key int64, val uint64) (bool, error)
	Del(key int64) (bool, error)
	// Commit makes every mutation applied before the call durable. The
	// in-memory engine returns nil immediately.
	Commit() error
	// Scan appends to dst up to limit entries whose keys lie in [lo, hi),
	// in ascending key order, reporting whether more remain in range.
	// Both engines serve scans from the leaf chain (link-mode traversal:
	// one leaf shared-locked at a time), so a scan runs concurrently with
	// point ops and splits.
	Scan(lo, hi int64, limit int, dst []query.KV) ([]query.KV, bool, error)

	Kind() string      // "mem" or "disk"
	Algorithm() string // concurrency algorithm name for telemetry
	Cap() int
	Len() int
	Height() int
	Poisoned() error // sticky storage failure, nil while healthy
	Stats() EngineStats
	Close() error
}

// EngineStats is the engine telemetry block for /metrics.
type EngineStats struct {
	Splits, Restarts, Crossings int64

	// OLC latch-free read telemetry; zero under the locking algorithms.
	ReadRestarts  int64 // failed snapshot validations
	ReadFallbacks int64 // descents that fell back to the locked path

	// Durability progress; all zero on the in-memory engine.
	Recovered       int64 // ops replayed at open
	Appended        int64 // oplog records appended this epoch
	Synced          int64 // oplog records fsync-covered this epoch
	OplogBytes      int64
	Fsyncs          int64 // group-commit fsyncs issued this epoch
	Checkpoints     int64 // checkpoint images installed
	CheckpointLag   int64 // mutations behind the last installed image (replay debt)
	CheckpointFails int64 // checkpoint attempts that failed (each one poisons)

	// Global sequence positions (see internal/journal): every mutation
	// since the shard's creation carries one sequence number, surviving
	// checkpoints and restarts. SeqAppended covers every appended
	// mutation, SeqDurable every fsync-covered one (the committed bound
	// replication ships up to), SeqLowest-1 is the oldest sequence the
	// retained oplog can still replay.
	SeqAppended int64
	SeqDurable  int64
	SeqLowest   int64

	// Retained sealed oplog segments held for lagging replication
	// followers, and their byte footprint.
	RetainedSegs  int64
	RetainedBytes int64

	// Checkpoint pause: how long the last checkpoint blocked serving and
	// the maximum observed, in nanoseconds. Incremental mode reports the
	// bounded install window (independent of tree size); stop-the-world
	// mode reports the whole quiescent rebuild.
	CkptPauseLastNs int64
	CkptPauseMaxNs  int64

	// Incremental checkpoint progress: walk chunks completed / planned
	// for the in-flight checkpoint (both zero when idle).
	CkptChunksDone  int64
	CkptChunksTotal int64
}

// memEngine adapts the instrumented in-memory cbtree. Commit is a no-op:
// the tree lives exactly as long as the process, so there is nothing a
// crash could lose that an fsync would save.
type memEngine struct{ t *cbtree.Tree }

func (e *memEngine) Get(key int64) (uint64, bool, error) {
	v, ok := e.t.Search(key)
	return v, ok, nil
}

func (e *memEngine) Put(key int64, val uint64) (bool, error) {
	return e.t.Insert(key, val), nil
}

func (e *memEngine) Del(key int64) (bool, error) {
	return e.t.Delete(key), nil
}

// Scan walks the cbtree leaf chain. It fetches one entry past limit so
// the "more" verdict needs no second traversal; Range's hi is inclusive,
// so the exclusive bound becomes hi-1 (safe: hi > lo >= MinInt64).
func (e *memEngine) Scan(lo, hi int64, limit int, dst []query.KV) ([]query.KV, bool, error) {
	if hi <= lo || limit <= 0 {
		return dst, false, nil
	}
	base := len(dst)
	more := false
	e.t.Range(lo, hi-1, func(k int64, v uint64) bool {
		if len(dst)-base == limit {
			more = true
			return false
		}
		dst = append(dst, query.KV{Key: k, Val: v})
		return true
	})
	return dst, more, nil
}

func (e *memEngine) Commit() error     { return nil }
func (e *memEngine) Kind() string      { return "mem" }
func (e *memEngine) Algorithm() string { return e.t.Algorithm().String() }
func (e *memEngine) Cap() int          { return e.t.Cap() }
func (e *memEngine) Len() int          { return e.t.Len() }
func (e *memEngine) Height() int       { return e.t.Height() }
func (e *memEngine) Poisoned() error   { return nil }
func (e *memEngine) Close() error      { return nil }

func (e *memEngine) Stats() EngineStats {
	ts := e.t.Stats()
	return EngineStats{
		Splits: ts.Splits, Restarts: ts.Restarts, Crossings: ts.Crossings,
		ReadRestarts: ts.ReadRestarts, ReadFallbacks: ts.ReadFallbacks,
	}
}

// DiskEngineConfig parameterizes NewDiskEngine.
type DiskEngineConfig struct {
	Path       string
	Cap        int // node capacity; default 128
	CacheNodes int // buffer-pool size; default 4096

	// SyncEveryOp fsyncs the oplog on every mutation instead of once per
	// batch — the per-op-fsync baseline the durability study measures
	// group commit against.
	SyncEveryOp bool

	// CheckpointOps bounds the oplog: once this many mutations have
	// accumulated past the last installed image, a checkpoint is taken
	// (incremental and concurrent by default; see CheckpointMode), so
	// recovery replay stays bounded. Default 1 << 18 (a ~5.5 MB oplog,
	// sub-second replay); negative disables checkpointing (the oplog
	// grows until Close).
	CheckpointOps int64

	// CheckpointMode selects how the threshold checkpoint runs:
	// CheckpointIncremental (default) walks the tree in bounded chunks on
	// a background goroutine, fully concurrent with serving — only the
	// image install blocks appends, for a bounded window independent of
	// tree size. CheckpointSTW is the old stop-the-world baseline: the
	// committing request holds the engine write lock for the whole
	// rebuild.
	CheckpointMode string

	// CheckpointChunk is the number of keys an incremental checkpoint
	// walks per latched chunk. Default 4096.
	CheckpointChunk int

	// FS overrides the file layer (failpoint tests). Nil = real files.
	FS pagestore.FS
}

// CheckpointMode values.
const (
	CheckpointIncremental = "inc"
	CheckpointSTW         = "stw"
)

// DiskEngine serves from a durable diskbtree. Operations and Commit run
// concurrently under a read lock. In incremental mode (the default) a
// background goroutine checkpoints concurrently with serving and Commit
// only blocks — backpressure — when the replay debt reaches twice the
// threshold; in stop-the-world mode the committing request takes the
// write lock and pays the full rebuild pause, the serving-layer analogue
// of the paper's §7 observation that recovery protocols buy their
// guarantees with longer lock hold times.
type DiskEngine struct {
	t         *diskbtree.Tree
	mu        sync.RWMutex // RLock: ops and Commit; Lock: stw checkpoint, Close
	ckptOps   int64
	ckptChunk int
	stw       bool

	checkpointFails atomic.Int64

	// Incremental-mode background checkpointer.
	kick chan struct{} // non-blocking wake-up, capacity 1
	stop chan struct{}
	done chan struct{}

	// Backpressure: committers at ≥ 2× the threshold wait here until the
	// next checkpoint attempt (success or failure) completes.
	genMu   sync.Mutex
	genCond *sync.Cond
	ckptGen int64
	closed  bool

	// Pause telemetry: how long the last checkpoint blocked serving
	// (install window in incremental mode, whole rebuild in stw mode),
	// and the maximum observed.
	pauseLastNs atomic.Int64
	pauseMaxNs  atomic.Int64

	// In-flight incremental walk progress.
	chunksDone  atomic.Int64
	chunksTotal atomic.Int64
}

// NewDiskEngine opens (creating or recovering) the tree at cfg.Path.
func NewDiskEngine(cfg DiskEngineConfig) (*DiskEngine, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("server: disk engine needs a path")
	}
	if cfg.CacheNodes == 0 {
		cfg.CacheNodes = 4096
	}
	if cfg.CheckpointOps == 0 {
		cfg.CheckpointOps = 1 << 18
	}
	if cfg.CheckpointMode == "" {
		cfg.CheckpointMode = CheckpointIncremental
	}
	if cfg.CheckpointMode != CheckpointIncremental && cfg.CheckpointMode != CheckpointSTW {
		return nil, fmt.Errorf("server: unknown checkpoint mode %q (want %q or %q)",
			cfg.CheckpointMode, CheckpointIncremental, CheckpointSTW)
	}
	if cfg.CheckpointChunk == 0 {
		cfg.CheckpointChunk = 4096
	}
	if cfg.CheckpointChunk < 0 {
		return nil, fmt.Errorf("server: checkpoint chunk %d must be positive", cfg.CheckpointChunk)
	}
	t, err := diskbtree.Open(cfg.Path, diskbtree.Options{
		Cap:        cfg.Cap,
		CacheNodes: cfg.CacheNodes,
		Durable:    true,
		SyncOps:    cfg.SyncEveryOp,
		FS:         cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	e := &DiskEngine{
		t:         t,
		ckptOps:   cfg.CheckpointOps,
		ckptChunk: cfg.CheckpointChunk,
		stw:       cfg.CheckpointMode == CheckpointSTW,
	}
	e.genCond = sync.NewCond(&e.genMu)
	if !e.stw && e.ckptOps > 0 {
		e.kick = make(chan struct{}, 1)
		e.stop = make(chan struct{})
		e.done = make(chan struct{})
		go e.checkpointLoop()
	}
	return e, nil
}

// Recovered returns the number of operations replayed at open.
func (e *DiskEngine) Recovered() int { return e.t.Recovered() }

func (e *DiskEngine) Get(key int64) (uint64, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.t.Search(key)
}

func (e *DiskEngine) Put(key int64, val uint64) (bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.t.Insert(key, val)
}

func (e *DiskEngine) Del(key int64) (bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.t.Delete(key)
}

// Scan walks the diskbtree leaf chain under the engine's read lock (in
// stop-the-world mode the checkpoint waits for in-flight scan pages;
// incremental checkpoints need no exclusion at all).
func (e *DiskEngine) Scan(lo, hi int64, limit int, dst []query.KV) ([]query.KV, bool, error) {
	if hi <= lo || limit <= 0 {
		return dst, false, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	base := len(dst)
	more := false
	err := e.t.ScanRange(lo, hi, func(k int64, v uint64) bool {
		if len(dst)-base == limit {
			more = true
			return false
		}
		dst = append(dst, query.KV{Key: k, Val: v})
		return true
	})
	if err != nil {
		return dst[:base], false, err
	}
	return dst, more, nil
}

// Commit group-commits the oplog, then — if the replay debt has reached
// the checkpoint threshold — triggers a checkpoint: inline and
// stop-the-world in stw mode, a background wake-up in incremental mode.
// An incremental commit only blocks (backpressure) when the debt reaches
// twice the threshold, so the oplog and recovery replay stay bounded
// even when writes outrun the checkpointer.
func (e *DiskEngine) Commit() error {
	e.mu.RLock()
	err := e.t.Commit()
	e.mu.RUnlock()
	if err != nil || e.ckptOps <= 0 || e.lag() < e.ckptOps {
		return err
	}
	if e.stw {
		return e.checkpointSTW()
	}
	e.genMu.Lock()
	for !e.closed && e.t.Poisoned() == nil && e.lag() >= e.ckptOps {
		select {
		case e.kick <- struct{}{}:
		default:
		}
		if e.lag() < 2*e.ckptOps {
			break // kicked; only wait when the debt is critical
		}
		e.genCond.Wait()
	}
	e.genMu.Unlock()
	return nil
}

// lag is the replay debt: mutations appended past the last installed
// checkpoint image. Recovery replays exactly this many operations.
func (e *DiskEngine) lag() int64 {
	if j := e.t.Journal(); j != nil {
		return j.SeqAppended() - e.t.CheckpointSeq()
	}
	return 0
}

func (e *DiskEngine) recordPause(ns int64) {
	e.pauseLastNs.Store(ns)
	for {
		max := e.pauseMaxNs.Load()
		if ns <= max || e.pauseMaxNs.CompareAndSwap(max, ns) {
			return
		}
	}
}

// checkpointSTW is the stop-the-world baseline: the committing request
// holds the engine write lock for the entire image rebuild.
func (e *DiskEngine) checkpointSTW() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lag() < e.ckptOps {
		return nil // another committer got here first
	}
	t0 := time.Now()
	if err := e.t.Sync(); err != nil {
		e.checkpointFails.Add(1)
		return err
	}
	e.recordPause(time.Since(t0).Nanoseconds())
	return nil
}

// checkpointLoop is the incremental-mode background checkpointer. Every
// attempt — success or failure — bumps the generation and wakes blocked
// committers so backpressure can re-evaluate (or observe the poison).
func (e *DiskEngine) checkpointLoop() {
	defer close(e.done)
	for {
		select {
		case <-e.stop:
			return
		case <-e.kick:
		}
		e.runCheckpoint()
		e.genMu.Lock()
		e.ckptGen++
		e.genCond.Broadcast()
		e.genMu.Unlock()
	}
}

// runCheckpoint takes one incremental checkpoint: walk the tree in
// bounded chunks, yielding between them, then finalize and install the
// image. No engine lock is held — serving proceeds concurrently; only
// the install step inside c.Install blocks appends, briefly.
func (e *DiskEngine) runCheckpoint() {
	if e.lag() < e.ckptOps {
		return
	}
	c, err := e.t.BeginCheckpoint()
	if err != nil {
		e.checkpointFails.Add(1)
		return
	}
	e.chunksTotal.Store(int64(e.t.Len()/e.ckptChunk) + 1)
	e.chunksDone.Store(0)
	defer func() {
		e.chunksDone.Store(0)
		e.chunksTotal.Store(0)
	}()
	for {
		select {
		case <-e.stop:
			c.Abort()
			return
		default:
		}
		done, err := c.Step(e.ckptChunk)
		if err != nil {
			e.checkpointFails.Add(1)
			c.Abort()
			return
		}
		e.chunksDone.Add(1)
		if done {
			break
		}
		runtime.Gosched()
	}
	if err := c.Finalize(); err != nil {
		e.checkpointFails.Add(1)
		c.Abort()
		return
	}
	pause, err := c.Install()
	if err != nil {
		e.checkpointFails.Add(1)
		c.Abort()
		return
	}
	e.recordPause(pause)
}

// Journal exposes the engine's oplog journal — the replication hub tails
// it and pins its retention floor.
func (e *DiskEngine) Journal() *journal.Journal { return e.t.Journal() }

// DurableSeq returns the engine's highest fsync-covered global sequence:
// the bound stamped onto acknowledged mutations in replicated mode.
func (e *DiskEngine) DurableSeq() int64 {
	if j := e.t.Journal(); j != nil {
		return j.SeqDurable()
	}
	return 0
}

func (e *DiskEngine) Kind() string      { return "disk" }
func (e *DiskEngine) Algorithm() string { return "link-type(disk)" }
func (e *DiskEngine) Cap() int          { return e.t.Cap() }
func (e *DiskEngine) Len() int          { return e.t.Len() }
func (e *DiskEngine) Height() int       { return e.t.Height() }
func (e *DiskEngine) Poisoned() error   { return e.t.Poisoned() }

func (e *DiskEngine) Stats() EngineStats {
	splits, crossings := e.t.Stats()
	app, syn, bytes, commits := e.t.DurabilityStats()
	st := EngineStats{
		Splits:          splits,
		Crossings:       crossings,
		Recovered:       int64(e.t.Recovered()),
		Appended:        app,
		Synced:          syn,
		OplogBytes:      bytes,
		Fsyncs:          commits,
		Checkpoints:     e.t.Checkpoints(),
		CheckpointLag:   e.lag(),
		CheckpointFails: e.checkpointFails.Load(),
		CkptPauseLastNs: e.pauseLastNs.Load(),
		CkptPauseMaxNs:  e.pauseMaxNs.Load(),
		CkptChunksDone:  e.chunksDone.Load(),
		CkptChunksTotal: e.chunksTotal.Load(),
	}
	if j := e.t.Journal(); j != nil {
		st.SeqAppended = j.SeqAppended()
		st.SeqDurable = j.SeqDurable()
		st.SeqLowest = j.LowestSeq()
		segs, segBytes := j.RetainedSegments()
		st.RetainedSegs = int64(segs)
		st.RetainedBytes = segBytes
	}
	return st
}

// Close stops the background checkpointer, wakes any blocked
// committers, takes a final checkpoint (unless poisoned) and releases
// the files.
func (e *DiskEngine) Close() error {
	if e.stop != nil {
		close(e.stop)
		<-e.done
	}
	e.genMu.Lock()
	e.closed = true
	e.genCond.Broadcast()
	e.genMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.t.Close()
}
