package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/diskbtree"
	"btreeperf/internal/journal"
	"btreeperf/internal/pagestore"
	"btreeperf/internal/query"
)

// Engine is the storage behind the serving layer. The in-memory engine
// (the default) wraps the instrumented cbtree; the disk engine wraps a
// durable diskbtree. The worker pool calls Commit once per executed
// batch that contained a mutation, and withholds those mutations' OK
// responses until it returns — group commit: one oplog fsync covers the
// whole batch, and nothing is acknowledged that a crash could lose.
//
// Engines fail stop: after a storage error every call returns a non-nil
// error (see diskbtree.ErrPoisoned) and Poisoned reports the cause. The
// serving layer maps engine errors to StatusUnavail and /healthz to 503.
type Engine interface {
	Get(key int64) (uint64, bool, error)
	Put(key int64, val uint64) (bool, error)
	Del(key int64) (bool, error)
	// Commit makes every mutation applied before the call durable. The
	// in-memory engine returns nil immediately.
	Commit() error
	// Scan appends to dst up to limit entries whose keys lie in [lo, hi),
	// in ascending key order, reporting whether more remain in range.
	// Both engines serve scans from the leaf chain (link-mode traversal:
	// one leaf shared-locked at a time), so a scan runs concurrently with
	// point ops and splits.
	Scan(lo, hi int64, limit int, dst []query.KV) ([]query.KV, bool, error)

	Kind() string      // "mem" or "disk"
	Algorithm() string // concurrency algorithm name for telemetry
	Cap() int
	Len() int
	Height() int
	Poisoned() error // sticky storage failure, nil while healthy
	Stats() EngineStats
	Close() error
}

// EngineStats is the engine telemetry block for /metrics.
type EngineStats struct {
	Splits, Restarts, Crossings int64

	// OLC latch-free read telemetry; zero under the locking algorithms.
	ReadRestarts  int64 // failed snapshot validations
	ReadFallbacks int64 // descents that fell back to the locked path

	// Durability progress; all zero on the in-memory engine.
	Recovered     int64 // ops replayed at open
	Appended      int64 // oplog records appended this epoch
	Synced        int64 // oplog records fsync-covered this epoch
	OplogBytes    int64
	Fsyncs        int64 // group-commit fsyncs issued this epoch
	Checkpoints   int64 // stop-the-world checkpoints taken
	CheckpointLag int64 // mutations since the last checkpoint

	// Global sequence positions (see internal/journal): every mutation
	// since the shard's creation carries one sequence number, surviving
	// checkpoints and restarts. SeqAppended covers every appended
	// mutation, SeqDurable every fsync-covered one (the committed bound
	// replication ships up to), SeqLowest-1 is the oldest sequence the
	// retained oplog can still replay.
	SeqAppended int64
	SeqDurable  int64
	SeqLowest   int64

	// Retained sealed oplog segments held for lagging replication
	// followers, and their byte footprint.
	RetainedSegs  int64
	RetainedBytes int64

	// Stop-the-world checkpoint pause: the duration of the last
	// checkpoint's quiescent window and the maximum observed, in
	// nanoseconds.
	CkptPauseLastNs int64
	CkptPauseMaxNs  int64
}

// memEngine adapts the instrumented in-memory cbtree. Commit is a no-op:
// the tree lives exactly as long as the process, so there is nothing a
// crash could lose that an fsync would save.
type memEngine struct{ t *cbtree.Tree }

func (e *memEngine) Get(key int64) (uint64, bool, error) {
	v, ok := e.t.Search(key)
	return v, ok, nil
}

func (e *memEngine) Put(key int64, val uint64) (bool, error) {
	return e.t.Insert(key, val), nil
}

func (e *memEngine) Del(key int64) (bool, error) {
	return e.t.Delete(key), nil
}

// Scan walks the cbtree leaf chain. It fetches one entry past limit so
// the "more" verdict needs no second traversal; Range's hi is inclusive,
// so the exclusive bound becomes hi-1 (safe: hi > lo >= MinInt64).
func (e *memEngine) Scan(lo, hi int64, limit int, dst []query.KV) ([]query.KV, bool, error) {
	if hi <= lo || limit <= 0 {
		return dst, false, nil
	}
	base := len(dst)
	more := false
	e.t.Range(lo, hi-1, func(k int64, v uint64) bool {
		if len(dst)-base == limit {
			more = true
			return false
		}
		dst = append(dst, query.KV{Key: k, Val: v})
		return true
	})
	return dst, more, nil
}

func (e *memEngine) Commit() error     { return nil }
func (e *memEngine) Kind() string      { return "mem" }
func (e *memEngine) Algorithm() string { return e.t.Algorithm().String() }
func (e *memEngine) Cap() int          { return e.t.Cap() }
func (e *memEngine) Len() int          { return e.t.Len() }
func (e *memEngine) Height() int       { return e.t.Height() }
func (e *memEngine) Poisoned() error   { return nil }
func (e *memEngine) Close() error      { return nil }

func (e *memEngine) Stats() EngineStats {
	ts := e.t.Stats()
	return EngineStats{
		Splits: ts.Splits, Restarts: ts.Restarts, Crossings: ts.Crossings,
		ReadRestarts: ts.ReadRestarts, ReadFallbacks: ts.ReadFallbacks,
	}
}

// DiskEngineConfig parameterizes NewDiskEngine.
type DiskEngineConfig struct {
	Path       string
	Cap        int // node capacity; default 128
	CacheNodes int // buffer-pool size; default 4096

	// SyncEveryOp fsyncs the oplog on every mutation instead of once per
	// batch — the per-op-fsync baseline the durability study measures
	// group commit against.
	SyncEveryOp bool

	// CheckpointOps bounds the oplog: after this many mutations the next
	// Commit takes a stop-the-world checkpoint (flush + truncate the
	// logs), so recovery replay stays bounded. Default 1 << 18 (a ~5.5 MB
	// oplog, sub-second replay); negative disables checkpointing (the
	// oplog grows until Close).
	CheckpointOps int64

	// FS overrides the file layer (failpoint tests). Nil = real files.
	FS pagestore.FS
}

// DiskEngine serves from a durable diskbtree. Operations and Commit run
// concurrently under a read lock; the periodic checkpoint — which needs
// a quiescent tree — takes the write lock, trading a stop-the-world
// pause for a bounded recovery replay. That pause is the serving-layer
// analogue of the paper's §7 observation that recovery protocols buy
// their guarantees with longer lock hold times.
type DiskEngine struct {
	t       *diskbtree.Tree
	mu      sync.RWMutex // RLock: ops and Commit; Lock: checkpoint
	ckptOps int64

	muts        atomic.Int64 // mutations since the last checkpoint
	checkpoints atomic.Int64

	// Stop-the-world pause telemetry: how long the last checkpoint held
	// the write lock, and the maximum observed.
	pauseLastNs atomic.Int64
	pauseMaxNs  atomic.Int64
}

// NewDiskEngine opens (creating or recovering) the tree at cfg.Path.
func NewDiskEngine(cfg DiskEngineConfig) (*DiskEngine, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("server: disk engine needs a path")
	}
	if cfg.CacheNodes == 0 {
		cfg.CacheNodes = 4096
	}
	if cfg.CheckpointOps == 0 {
		cfg.CheckpointOps = 1 << 18
	}
	t, err := diskbtree.Open(cfg.Path, diskbtree.Options{
		Cap:        cfg.Cap,
		CacheNodes: cfg.CacheNodes,
		Durable:    true,
		SyncOps:    cfg.SyncEveryOp,
		FS:         cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	return &DiskEngine{t: t, ckptOps: cfg.CheckpointOps}, nil
}

// Recovered returns the number of operations replayed at open.
func (e *DiskEngine) Recovered() int { return e.t.Recovered() }

func (e *DiskEngine) Get(key int64) (uint64, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.t.Search(key)
}

func (e *DiskEngine) Put(key int64, val uint64) (bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ok, err := e.t.Insert(key, val)
	if err == nil {
		e.muts.Add(1)
	}
	return ok, err
}

func (e *DiskEngine) Del(key int64) (bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ok, err := e.t.Delete(key)
	if err == nil {
		e.muts.Add(1)
	}
	return ok, err
}

// Scan walks the diskbtree leaf chain under the engine's read lock (so a
// stop-the-world checkpoint waits for in-flight scan pages, and pages
// bound how long a scan can hold the checkpoint out).
func (e *DiskEngine) Scan(lo, hi int64, limit int, dst []query.KV) ([]query.KV, bool, error) {
	if hi <= lo || limit <= 0 {
		return dst, false, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	base := len(dst)
	more := false
	err := e.t.ScanRange(lo, hi, func(k int64, v uint64) bool {
		if len(dst)-base == limit {
			more = true
			return false
		}
		dst = append(dst, query.KV{Key: k, Val: v})
		return true
	})
	if err != nil {
		return dst[:base], false, err
	}
	return dst, more, nil
}

// Commit group-commits the oplog, then — if the checkpoint threshold has
// been reached — takes the stop-the-world checkpoint.
func (e *DiskEngine) Commit() error {
	e.mu.RLock()
	err := e.t.Commit()
	lag := e.muts.Load()
	e.mu.RUnlock()
	if err != nil || e.ckptOps <= 0 || lag < e.ckptOps {
		return err
	}
	return e.checkpoint()
}

func (e *DiskEngine) checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.muts.Load() < e.ckptOps {
		return nil // another committer got here first
	}
	t0 := time.Now()
	if err := e.t.Sync(); err != nil {
		return err
	}
	pause := time.Since(t0).Nanoseconds()
	e.pauseLastNs.Store(pause)
	if pause > e.pauseMaxNs.Load() {
		e.pauseMaxNs.Store(pause)
	}
	e.muts.Store(0)
	e.checkpoints.Add(1)
	return nil
}

// Journal exposes the engine's oplog journal — the replication hub tails
// it and pins its retention floor.
func (e *DiskEngine) Journal() *journal.Journal { return e.t.Journal() }

// DurableSeq returns the engine's highest fsync-covered global sequence:
// the bound stamped onto acknowledged mutations in replicated mode.
func (e *DiskEngine) DurableSeq() int64 {
	if j := e.t.Journal(); j != nil {
		return j.SeqDurable()
	}
	return 0
}

func (e *DiskEngine) Kind() string      { return "disk" }
func (e *DiskEngine) Algorithm() string { return "link-type(disk)" }
func (e *DiskEngine) Cap() int          { return e.t.Cap() }
func (e *DiskEngine) Len() int          { return e.t.Len() }
func (e *DiskEngine) Height() int       { return e.t.Height() }
func (e *DiskEngine) Poisoned() error   { return e.t.Poisoned() }

func (e *DiskEngine) Stats() EngineStats {
	splits, crossings := e.t.Stats()
	app, syn, bytes, commits := e.t.DurabilityStats()
	st := EngineStats{
		Splits:          splits,
		Crossings:       crossings,
		Recovered:       int64(e.t.Recovered()),
		Appended:        app,
		Synced:          syn,
		OplogBytes:      bytes,
		Fsyncs:          commits,
		Checkpoints:     e.checkpoints.Load(),
		CheckpointLag:   e.muts.Load(),
		CkptPauseLastNs: e.pauseLastNs.Load(),
		CkptPauseMaxNs:  e.pauseMaxNs.Load(),
	}
	if j := e.t.Journal(); j != nil {
		st.SeqAppended = j.SeqAppended()
		st.SeqDurable = j.SeqDurable()
		st.SeqLowest = j.LowestSeq()
		segs, segBytes := j.RetainedSegments()
		st.RetainedSegs = int64(segs)
		st.RetainedBytes = segBytes
	}
	return st
}

// Close checkpoints (unless poisoned) and releases the files.
func (e *DiskEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.t.Close()
}
