package server

// Incremental-checkpoint regression tests: disk-full fail-stop, the
// checkpoint running concurrently with serving traffic (puts, deletes
// driving merge-at-empty compaction, and scans) on 1- and 4-shard disk
// engines, and a scan pinned across the image install step.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"btreeperf/internal/pagestore"
	"btreeperf/internal/query"
)

// TestCheckpointENOSPCPoisonsEngine fills the simulated disk so the
// background checkpoint's image build hits ENOSPC: the engine must go
// fail-stop (StatusUnavail on every op, 503 /healthz) rather than ack
// writes against a half-written image.
func TestCheckpointENOSPCPoisonsEngine(t *testing.T) {
	// Probe run: the identical workload with checkpointing disabled
	// sizes the budget. The slack is smaller than one 4 KiB image page
	// but covers ~90 more oplog records, so the checkpoint's first page
	// write — not the serving path — is what exceeds the budget.
	probe := pagestore.NewFailFS(nil, pagestore.FailPlan{})
	pe := newDiskEngine(t, DiskEngineConfig{Cap: 8, CacheNodes: 32, CheckpointOps: -1, FS: probe})
	for i := int64(0); i < 60; i++ {
		if _, err := pe.Put(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := pe.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	budget := probe.BytesWritten() + 2048 // before Close: Close checkpoints too
	pe.Close()

	fs := pagestore.NewFailFS(nil, pagestore.FailPlan{WriteBudget: budget})
	eng := newDiskEngine(t, DiskEngineConfig{
		Cap: 8, CacheNodes: 32, CheckpointOps: 50, CheckpointChunk: 16, FS: fs,
	})
	s, addr, shutdown := startServer(t, Config{Engine: eng})
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The first 60 puts mirror the probe byte for byte; commit 50 kicks
	// the background checkpoint, which runs out of disk mid-image. Keep
	// writing until the poison surfaces as StatusUnavail.
	poisoned := false
	deadline := time.Now().Add(15 * time.Second)
	for i := int64(0); time.Now().Before(deadline); i++ {
		resp, err := c.Do(Request{Op: OpPut, Key: i, Val: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == StatusUnavail {
			poisoned = true
			break
		}
	}
	if !poisoned {
		t.Fatal("engine never went fail-stop after the checkpoint ran out of disk")
	}
	if eng.Poisoned() == nil {
		t.Fatal("StatusUnavail answered but engine not poisoned")
	}
	if eng.Stats().CheckpointFails == 0 {
		t.Fatal("poisoned, but no checkpoint failure was counted (wrong failure path?)")
	}

	h := httptest.NewServer(s.Handler())
	defer h.Close()
	hr, err := http.Get(h.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after disk-full checkpoint = %d, want 503; body: %s", hr.StatusCode, body)
	}
	mbody := httpGet(t, h.URL+"/metrics")
	if !strings.Contains(mbody, "poisoned=true") {
		t.Fatalf("metrics does not report the poisoning:\n%s", mbody)
	}
	if !strings.Contains(mbody, "ckpt_fails=") {
		t.Fatalf("metrics missing ckpt_fails:\n%s", mbody)
	}
}

// TestCheckpointConcurrentWithTraffic hammers 1- and 4-shard disk
// servers with concurrent puts, deletes (emptying leaves exercises the
// merge-at-empty compaction path under the walk), and scans while the
// low-threshold background checkpointer installs images continuously.
// Run under -race this is the data-race proof for the latch-coupled
// chunk walk; afterwards every shard's tree must pass its invariant
// check and hold exactly the surviving keys.
func TestCheckpointConcurrentWithTraffic(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			var engines []Engine
			var disks []*DiskEngine
			for i := 0; i < shards; i++ {
				e := newDiskEngine(t, DiskEngineConfig{
					Path:            filepath.Join(dir, fmt.Sprintf("shard-%d.db", i)),
					Cap:             8,
					CacheNodes:      64,
					CheckpointOps:   200,
					CheckpointChunk: 32,
				})
				engines = append(engines, e)
				disks = append(disks, e)
			}
			cfg := Config{Shards: shards}
			if shards == 1 {
				cfg.Engine = engines[0]
			} else {
				cfg.Engines = engines
			}
			_, addr, shutdown := startServer(t, cfg)

			const (
				writers    = 3
				perWriter  = 1200
				delEvery   = 3 // a third of the writes are later deleted
				scanPasses = 6
			)
			var wg sync.WaitGroup
			errc := make(chan error, writers+1)
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := Dial(addr)
					if err != nil {
						errc <- err
						return
					}
					defer c.Close()
					base := int64(w) * 1_000_000
					for i := int64(0); i < perWriter; i++ {
						k := base + i
						if _, err := c.Put(k, uint64(k)+1); err != nil {
							errc <- fmt.Errorf("writer %d put %d: %w", w, k, err)
							return
						}
						if i%delEvery == 0 {
							if _, err := c.Del(k); err != nil {
								errc <- fmt.Errorf("writer %d del %d: %w", w, k, err)
								return
							}
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					errc <- err
					return
				}
				defer c.Close()
				for pass := 0; pass < scanPasses; pass++ {
					var bad error
					err := c.ScanAll(0, writers*1_000_000, 128, func(k int64, v uint64) {
						if bad == nil && v != uint64(k)+1 {
							bad = fmt.Errorf("scan pass %d: key %d = %d", pass, k, v)
						}
					})
					if err == nil {
						err = bad
					}
					if err != nil {
						errc <- fmt.Errorf("scan pass %d: %w", pass, err)
						return
					}
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			shutdown()

			var checkpoints int64
			for i, e := range disks {
				checkpoints += e.Stats().Checkpoints
				if err := e.t.CheckInvariants(); err != nil {
					t.Fatalf("shard %d tree corrupt after concurrent checkpoints: %v", i, err)
				}
				if err := e.Close(); err != nil {
					t.Fatalf("shard %d close: %v", i, err)
				}
			}
			// Each shard bootstraps one image at open; traffic past the
			// 200-mutation threshold must have installed more.
			if checkpoints <= int64(shards) {
				t.Fatalf("only %d checkpoints across %d shards: the background checkpointer never ran", checkpoints, shards)
			}

			// Reopen and verify the surviving keys — the installed image
			// plus oplog suffix must reconstruct exactly the model.
			for i := 0; i < shards; i++ {
				re := newDiskEngine(t, DiskEngineConfig{
					Path: filepath.Join(dir, fmt.Sprintf("shard-%d.db", i)), Cap: 8, CacheNodes: 64,
				})
				var kv []query.KV
				kv, _, err := re.Scan(0, writers*1_000_000, 10*writers*perWriter, kv)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range kv {
					// Writers used keys base + i (base a 1M multiple) and
					// deleted every delEvery-th i.
					if (e.Key%1_000_000)%delEvery == 0 || e.Val != uint64(e.Key)+1 {
						t.Fatalf("shard %d after reopen: key %d = %d (deleted key back, or wrong value)", i, e.Key, e.Val)
					}
				}
				re.Close()
			}
		})
	}
}

// TestScanStraddlesCheckpointInstall pins a scan mid-leaf-chain, runs a
// complete incremental checkpoint — walk, finalize, install — while the
// scan is parked, commits more writes against the freshly installed
// image, and then lets the scan finish. The scan must deliver every key
// exactly once in order: the install swaps the recovery image and
// rebases the oplog but never touches the live tree the scan is walking.
func TestScanStraddlesCheckpointInstall(t *testing.T) {
	eng := newDiskEngine(t, DiskEngineConfig{Cap: 8, CacheNodes: 64, CheckpointOps: -1})
	defer eng.Close()
	const n = 2000
	for i := int64(0); i < n; i++ {
		if _, err := eng.Put(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Commit(); err != nil {
		t.Fatal(err)
	}

	parked := make(chan struct{})  // scan reached the middle
	release := make(chan struct{}) // install done, scan may proceed
	scanDone := make(chan error, 1)
	go func() {
		var next int64
		err := eng.t.ScanRange(0, n, func(k int64, v uint64) bool {
			if k != next || v != uint64(k) {
				scanDone <- fmt.Errorf("scan out of order: got %d (val %d), want %d", k, v, next)
				return false
			}
			next++
			if k == n/2 {
				close(parked)
				<-release
			}
			return true
		})
		if err == nil && next != n {
			err = fmt.Errorf("scan saw %d keys, want %d", next, n)
		}
		scanDone <- err
	}()

	<-parked
	before := eng.t.Checkpoints()
	c, err := eng.t.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := c.Step(64)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Install(); err != nil {
		t.Fatal(err)
	}
	if eng.t.Checkpoints() != before+1 {
		t.Fatalf("install did not count: %d -> %d", before, eng.t.Checkpoints())
	}
	// The rebased oplog must accept appends while the scan is parked.
	for i := int64(0); i < 50; i++ {
		if _, err := eng.Put(1_000_000+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Commit(); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-scanDone; err != nil {
		t.Fatal(err)
	}
	if err := eng.t.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
