package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"btreeperf/internal/pagestore"
)

func newDiskEngine(t *testing.T, cfg DiskEngineConfig) *DiskEngine {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "tree.db")
	}
	e, err := NewDiskEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDiskEngineEndToEnd serves from the disk engine over the real wire
// protocol and checks the data survives a close and reopen.
func TestDiskEngineEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	eng := newDiskEngine(t, DiskEngineConfig{Path: path, Cap: 8, CacheNodes: 32})
	s, addr, shutdown := startServer(t, Config{Engine: eng})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := int64(0); i < n; i++ {
		if fresh, err := c.Put(i, uint64(i)*3); err != nil || !fresh {
			t.Fatalf("put %d: fresh=%v err=%v", i, fresh, err)
		}
	}
	if ok, err := c.Del(0); err != nil || !ok {
		t.Fatalf("del: ok=%v err=%v", ok, err)
	}
	if v, ok, err := c.Get(7); err != nil || !ok || v != 21 {
		t.Fatalf("get: v=%d ok=%v err=%v", v, ok, err)
	}
	if s.Tree() != nil {
		t.Fatal("disk-engine server still exposes an in-memory tree")
	}
	c.Close()
	shutdown()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := newDiskEngine(t, DiskEngineConfig{Path: path, Cap: 8, CacheNodes: 32})
	defer re.Close()
	if re.Len() != n-1 {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), n-1)
	}
	for i := int64(1); i < n; i++ {
		v, ok, err := re.Get(i)
		if err != nil || !ok || v != uint64(i)*3 {
			t.Fatalf("reopened key %d = %d,%v,%v", i, v, ok, err)
		}
	}
}

// TestCommitFailureNeverAcks is the serving-layer fsyncgate regression:
// when the batch's group-commit fsync fails, every mutation in the batch
// is answered StatusUnavail — never OK — the engine stays poisoned for
// all later requests, and /healthz flips to 503.
func TestCommitFailureNeverAcks(t *testing.T) {
	// Probe run: how many fsyncs does opening the engine cost? The next
	// sync after that is the first put's group commit.
	probe := pagestore.NewFailFS(nil, pagestore.FailPlan{})
	pe := newDiskEngine(t, DiskEngineConfig{Cap: 8, CacheNodes: 32, FS: probe})
	openSyncs := probe.Syncs()
	pe.Close()

	fs := pagestore.NewFailFS(nil, pagestore.FailPlan{FailSyncAt: openSyncs + 1})
	eng := newDiskEngine(t, DiskEngineConfig{Cap: 8, CacheNodes: 32, FS: fs})
	s, addr, shutdown := startServer(t, Config{Engine: eng})
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Do(Request{Op: OpPut, Key: 1, Val: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusUnavail {
		t.Fatalf("put whose fsync failed answered status %d, want StatusUnavail", resp.Status)
	}
	// The write must not have been acknowledged anywhere: the engine is
	// poisoned, so every later request is StatusUnavail too.
	for _, req := range []Request{
		{Op: OpPut, Key: 2, Val: 20},
		{Op: OpGet, Key: 1},
		{Op: OpDel, Key: 1},
	} {
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusUnavail {
			t.Fatalf("op %d after poison answered status %d, want StatusUnavail", req.Op, resp.Status)
		}
	}
	if Retryable(StatusUnavail) {
		t.Fatal("StatusUnavail must not be retryable on the same server")
	}
	if s.shards[0].commitFails.Load() == 0 {
		t.Fatal("commit failure not counted")
	}

	// Health and metrics report the poisoning.
	h := httptest.NewServer(s.Handler())
	defer h.Close()
	hr, err := http.Get(h.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d, want 503; body: %s", hr.StatusCode, body)
	}
	if !strings.HasPrefix(string(body), "poisoned") {
		t.Fatalf("healthz body = %q, want poisoned", body)
	}
	mr, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mbody), "kind=disk poisoned=true") {
		t.Fatalf("metrics missing poisoned engine line:\n%s", mbody)
	}
}

// TestDiskEngineCheckpointing drives enough committed mutations through
// the engine to cross the checkpoint threshold repeatedly and checks the
// lag stays bounded.
func TestDiskEngineCheckpointing(t *testing.T) {
	eng := newDiskEngine(t, DiskEngineConfig{Cap: 8, CacheNodes: 32, CheckpointOps: 100})
	defer eng.Close()
	for i := int64(0); i < 1000; i++ {
		if _, err := eng.Put(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Checkpoints < 5 {
		t.Fatalf("only %d checkpoints over 1000 mutations at threshold 100", st.Checkpoints)
	}
	if st.CheckpointLag >= 200 {
		t.Fatalf("checkpoint lag %d never reset", st.CheckpointLag)
	}
}

// TestMemEngineDefault checks the no-Engine config still serves from the
// instrumented in-memory tree and reports it on /metrics.
func TestMemEngineDefault(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Prefill: 10})
	defer shutdown()
	if s.Engine().Kind() != "mem" || s.Tree() == nil {
		t.Fatalf("default engine = %q, tree nil=%v", s.Engine().Kind(), s.Tree() == nil)
	}
	if s.Engine().Len() != 10 {
		t.Fatalf("prefill through engine: Len = %d", s.Engine().Len())
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if fresh, err := c.Put(1, 1); err != nil || !fresh {
		t.Fatalf("put: fresh=%v err=%v", fresh, err)
	}
	h := httptest.NewServer(s.Handler())
	defer h.Close()
	mr, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(body), "engine kind=mem poisoned=false") {
		t.Fatalf("metrics missing engine line:\n%s", body)
	}
}
