package server

import (
	"math"

	"btreeperf/internal/query"
)

// Query-op execution. Scans, seeks, and lookups are cross-shard
// operations: the keyspace is hash-partitioned, so a contiguous key
// range has entries on every shard and one page is a per-shard fan-out
// plus an ordered k-way merge. A query job therefore has no home shard
// by key; the connection reader deals query jobs round-robin across
// shards (spreading the merge work), and the executing worker reads
// every shard's engine directly — engines are concurrent-reader-safe
// (the cbtree by construction, the disk engine under its RWMutex), so no
// cross-shard coordination is needed beyond the engines' own latches.
//
// Paging is stateless: the continuation token encodes one cursor per
// shard (see internal/query), so the server keeps nothing between pages
// and a token can be replayed against any connection. The governor never
// sheds query ops — they are read traffic and do not drive root ρ_w the
// way updates do.

// isQueryOp reports whether op answers with the page wire shape. OpSeqs
// rides the query path because it too is cross-shard (one entry per
// shard) and page-shaped.
func isQueryOp(op byte) bool {
	return op == OpScan || op == OpSeek || op == OpLookup || op == OpSeqs
}

// badPage is the page-shaped StatusBadRequest (malformed token, lookup
// without an index): page-shaped so pipelined clients parsing by sent-op
// shape never desynchronize.
func badPage() Response {
	return Response{Status: StatusBadRequest, Page: true}
}

// queryCursors resolves a query op's starting cursors: all lo on the
// first page, the token's cursors afterwards. A token that fails to
// decode, carries the wrong shard count, or places a cursor outside
// [lo, hi] is a bad request.
func (s *Server) queryCursors(tok []byte, lo, hi int64) ([]int64, bool) {
	cursors := make([]int64, len(s.shards))
	if len(tok) == 0 {
		for i := range cursors {
			cursors[i] = lo
		}
		return cursors, true
	}
	dec, err := query.DecodeToken(tok)
	if err != nil || len(dec) != len(s.shards) {
		return nil, false
	}
	for _, c := range dec {
		if c < lo || c > hi {
			return nil, false
		}
	}
	return dec, true
}

// clampLimit resolves a request's page limit.
func clampLimit(limit int) int {
	switch {
	case limit <= 0:
		return DefaultScanLimit
	case limit > MaxScanLimit:
		return MaxScanLimit
	default:
		return limit
	}
}

// execScan serves one page of [req.Key, req.Hi): fetch up to limit
// entries per shard from that shard's cursor, merge the globally
// smallest limit of them, and re-encode the advanced cursors as the next
// token (empty when the range is exhausted).
func (s *Server) execScan(req Request, t *opTally) Response {
	lo, hi := req.Key, req.Hi
	if hi <= lo {
		t.scans++
		return Response{Status: StatusOK, Page: true} // empty range: OK, zero entries, no token
	}
	limit := clampLimit(req.Limit)
	cursors, ok := s.queryCursors(req.Token, lo, hi)
	if !ok {
		t.bad++
		return badPage()
	}
	t.scans++
	fetches := make([]query.ShardFetch, len(s.shards))
	for i, sh := range s.shards {
		if cursors[i] >= hi {
			continue // this shard's range is already exhausted
		}
		ents, more, err := sh.eng.Scan(cursors[i], hi, limit, nil)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail, Page: true}
		}
		fetches[i] = query.ShardFetch{Entries: ents, More: more}
	}
	page, done := query.MergePage(fetches, cursors, hi, limit, nil)
	t.scanKeys += int64(len(page))
	resp := Response{Status: StatusOK, Page: true, Entries: page}
	if !done {
		resp.Token = query.EncodeToken(nil, cursors)
	}
	return resp
}

// execSeek answers the smallest stored key >= req.Key as a page of at
// most one entry: the per-shard minimum of a limit-1 scan to +inf.
func (s *Server) execSeek(req Request, t *opTally) Response {
	t.seeks++
	var best query.KV
	found := false
	for _, sh := range s.shards {
		ents, _, err := sh.eng.Scan(req.Key, math.MaxInt64, 1, nil)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail, Page: true}
		}
		if len(ents) > 0 && (!found || ents[0].Key < best.Key) {
			best, found = ents[0], true
		}
	}
	resp := Response{Status: StatusOK, Page: true}
	if found {
		resp.Entries = []query.KV{best}
		t.scanKeys++
	}
	return resp
}

// execLookup serves one page of the primary keys whose indexed value is
// req.Val, ascending, with the same per-shard cursor/merge machinery as
// scans — the cursors range over the primary-key space. Answering
// StatusBadRequest on an index-less server (rather than an empty OK
// page) keeps "no index" distinguishable from "value not present".
func (s *Server) execLookup(req Request, t *opTally) Response {
	if s.shards[0].idx == nil {
		t.bad++
		return badPage()
	}
	const hi = math.MaxInt64 // lookups page over the full primary-key space
	limit := clampLimit(req.Limit)
	cursors, ok := s.queryCursors(req.Token, math.MinInt64, hi)
	if !ok {
		t.bad++
		return badPage()
	}
	t.lookups++
	fetches := make([]query.ShardFetch, len(s.shards))
	for i, sh := range s.shards {
		if cursors[i] >= hi {
			continue
		}
		keys, more := sh.idx.Lookup(req.Val, cursors[i], limit, nil)
		if len(keys) > 0 || more {
			ents := make([]query.KV, len(keys))
			for j, k := range keys {
				ents[j] = query.KV{Key: k, Val: req.Val}
			}
			fetches[i] = query.ShardFetch{Entries: ents, More: more}
		}
	}
	page, done := query.MergePage(fetches, cursors, hi, limit, nil)
	t.lookupKeys += int64(len(page))
	resp := Response{Status: StatusOK, Page: true, Entries: page}
	if !done {
		resp.Token = query.EncodeToken(nil, cursors)
	}
	return resp
}

// execSeqs answers the replication sequence probe: one page entry per
// shard, key = shard index, value = that shard's sequence (applied on a
// follower, durable on a journal-backed leader, zero on an unreplicated
// in-memory server). Clients use it to learn the shard count and to
// measure follower lag; failover uses it to pick the most-caught-up
// follower. Tallied as a ping — it is a meta op, not key traffic.
func (s *Server) execSeqs(t *opTally) Response {
	t.pings++
	ents := make([]query.KV, len(s.shards))
	for i := range s.shards {
		ents[i] = query.KV{Key: int64(i), Val: uint64(s.shardSeq(i))}
	}
	return Response{Status: StatusOK, Page: true, Entries: ents}
}

// rebuildIndexes scans every shard's (already recovered and prefilled)
// engine into its secondary index before the server takes traffic. The
// index needs no journal of its own: it is a pure function of the
// primary tree, whose oplog already made these entries durable, so
// kill -9 consistency is inherited from primary recovery.
func (s *Server) rebuildIndexes() error {
	const page = 1024
	for _, sh := range s.shards {
		cursor := int64(math.MinInt64)
		buf := make([]query.KV, 0, page)
		for {
			ents, more, err := sh.eng.Scan(cursor, math.MaxInt64, page, buf[:0])
			if err != nil {
				return err
			}
			for _, e := range ents {
				sh.idx.Add(e.Key, e.Val)
			}
			if !more || len(ents) == 0 {
				break
			}
			cursor = ents[len(ents)-1].Key + 1
		}
	}
	return nil
}
