package server

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/query"
	"btreeperf/internal/xrand"
)

// queryEngineKinds enumerates the engine configurations the query tests
// run against: the in-memory cbtree and the durable disk engine, so the
// scan path is exercised over both leaf-chain implementations.
var queryEngineKinds = []struct {
	name string
	cfg  func(t *testing.T, shards int) Config
}{
	{"mem", func(t *testing.T, shards int) Config {
		return Config{Algorithm: cbtree.LinkType, Shards: shards, Capacity: 8}
	}},
	{"disk", func(t *testing.T, shards int) Config {
		dir := t.TempDir()
		var engines []Engine
		for i := 0; i < shards; i++ {
			e, err := NewDiskEngine(DiskEngineConfig{
				Path: filepath.Join(dir, fmt.Sprintf("shard-%d.db", i)),
				Cap:  8, CacheNodes: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, e)
		}
		return Config{Engines: engines}
	}},
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestScanEmptyRange pins the empty-page contract: an empty or inverted
// range answers StatusOK with zero entries and no token — emptiness is
// not an error (StatusMiss is a point-op status only).
func TestScanEmptyRange(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType})
	defer shutdown()
	c := dialT(t, addr)

	if _, err := c.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{7, 7}, {10, 3}, {100, 200}} {
		page, tok, err := c.Scan(r[0], r[1], 0, nil)
		if err != nil {
			t.Fatalf("scan [%d,%d): %v", r[0], r[1], err)
		}
		if len(page) != 0 || tok != nil {
			t.Fatalf("scan [%d,%d): %d entries, token %v; want empty OK page", r[0], r[1], len(page), tok)
		}
	}
}

// TestScanPagingVsOracle pages the full keyspace and several subranges
// through servers of both engine kinds and 1 or 4 shards, comparing the
// merged stream against a single sorted oracle: every key exactly once,
// globally ascending, values intact, across every page-size the wire
// allows (1, an odd mid-size, and the max).
func TestScanPagingVsOracle(t *testing.T) {
	for _, kind := range queryEngineKinds {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", kind.name, shards), func(t *testing.T) {
				_, addr, shutdown := startServer(t, kind.cfg(t, shards))
				defer shutdown()
				c := dialT(t, addr)

				rng := xrand.New(31)
				oracle := map[int64]uint64{}
				for len(oracle) < 700 {
					k := int64(rng.IntN(1 << 14))
					v := rng.Uint64()
					oracle[k] = v
					if _, err := c.Put(k, v); err != nil {
						t.Fatal(err)
					}
				}
				keys := make([]int64, 0, len(oracle))
				for k := range oracle {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

				check := func(lo, hi int64, limit int) {
					t.Helper()
					i := sort.Search(len(keys), func(j int) bool { return keys[j] >= lo })
					var got []query.KV
					err := c.ScanAll(lo, hi, limit, func(k int64, v uint64) {
						got = append(got, query.KV{Key: k, Val: v})
					})
					if err != nil {
						t.Fatalf("scan [%d,%d) limit %d: %v", lo, hi, limit, err)
					}
					for _, e := range got {
						if i >= len(keys) || keys[i] >= hi {
							t.Fatalf("scan [%d,%d): extra key %d past oracle", lo, hi, e.Key)
						}
						if e.Key != keys[i] || e.Val != oracle[keys[i]] {
							t.Fatalf("scan [%d,%d): got (%d,%d), oracle (%d,%d)",
								lo, hi, e.Key, e.Val, keys[i], oracle[keys[i]])
						}
						i++
					}
					if i < len(keys) && keys[i] < hi {
						t.Fatalf("scan [%d,%d) limit %d: stopped before oracle key %d", lo, hi, limit, keys[i])
					}
				}

				for _, limit := range []int{1, 7, MaxScanLimit} {
					check(math.MinInt64, math.MaxInt64, limit)
					check(0, 1<<14, limit)
					check(100, 5000, limit)
					check(keys[10], keys[len(keys)-10], limit)
				}
			})
		}
	}
}

// TestScanUnderMutation is the acceptance test for cursor correctness
// under concurrent structural change: writers churn the odd keys (puts,
// deletes — forcing splits and, on the mem engine, Compact-driven leaf
// merges) while a scanner pages the whole range with a small limit. The
// stable even keys, which no writer touches, must each appear exactly
// once in ascending order on every full pass; churned keys may come and
// go but whatever appears must keep the global order invariant.
func TestScanUnderMutation(t *testing.T) {
	for _, kind := range queryEngineKinds {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", kind.name, shards), func(t *testing.T) {
				const n = 400 // stable keys 0,2,...,798
				s, addr, shutdown := startServer(t, kind.cfg(t, shards))
				defer shutdown()

				setup := dialT(t, addr)
				for k := int64(0); k < 2*n; k += 2 {
					if _, err := setup.Put(k, uint64(k)*3); err != nil {
						t.Fatal(err)
					}
				}

				stop := make(chan struct{})
				var wg sync.WaitGroup
				for w := 0; w < 3; w++ {
					wg.Add(1)
					go func(seed uint64) {
						defer wg.Done()
						c, err := Dial(addr)
						if err != nil {
							t.Error(err)
							return
						}
						defer c.Close()
						rng := xrand.New(seed)
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							k := int64(rng.IntN(n))*2 + 1 // odd: never a stable key
							if rng.IntN(3) == 0 {
								_, err = c.Del(k)
							} else {
								_, err = c.Put(k, rng.Uint64())
							}
							if err != nil {
								t.Error(err)
								return
							}
							// Periodic compaction churns the mem engine's leaf
							// chain from the other side: scans must survive
							// empty-leaf unlinking, not just splits.
							if i%512 == 0 {
								if me, ok := s.shards[int(seed)%len(s.shards)].eng.(*memEngine); ok {
									me.t.Compact()
								}
							}
						}
					}(uint64(w + 1))
				}

				scanner := dialT(t, addr)
				for pass := 0; pass < 20; pass++ {
					last := int64(math.MinInt64)
					nextStable := int64(0)
					err := scanner.ScanAll(0, 2*n, 13, func(k int64, v uint64) {
						if k <= last {
							t.Errorf("pass %d: key %d after %d — order broken", pass, k, last)
						}
						last = k
						if k%2 == 0 {
							if k != nextStable {
								t.Errorf("pass %d: stable key %d, want %d", pass, k, nextStable)
							}
							if v != uint64(k)*3 {
								t.Errorf("pass %d: stable key %d has value %d, want %d", pass, k, v, uint64(k)*3)
							}
							nextStable = k + 2
						}
					})
					if err != nil {
						t.Fatalf("pass %d: %v", pass, err)
					}
					if nextStable != 2*n {
						t.Fatalf("pass %d: stable keys stopped at %d, want %d", pass, nextStable, 2*n)
					}
					if t.Failed() {
						break
					}
				}
				close(stop)
				wg.Wait()
			})
		}
	}
}

// TestScanBadToken sends content-level garbage tokens: each must answer
// StatusBadRequest on the same connection (not kill it), and the
// connection must remain fully usable — point ops and well-formed scans
// afterwards still work.
func TestScanBadToken(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, Shards: 4, Index: true})
	defer shutdown()
	c := dialT(t, addr)

	for k := int64(0); k < 50; k++ {
		if _, err := c.Put(k, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}

	wrongCount := query.EncodeToken(nil, []int64{5})            // 1 cursor, server has 4 shards
	outOfRange := query.EncodeToken(nil, []int64{5, 5, 5, 999}) // cursor past hi
	bad := [][]byte{
		{0xff},       // count 255 > MaxShards
		{4, 1, 2, 3}, // truncated cursors
		wrongCount,
		outOfRange,
	}
	for i, tok := range bad {
		resp, err := c.DoPage(Request{Op: OpScan, Key: 0, Hi: 100, Limit: 8, Token: tok})
		if err != nil {
			t.Fatalf("bad token %d: transport error %v (content errors must not kill the conn)", i, err)
		}
		if resp.Status != StatusBadRequest {
			t.Fatalf("bad token %d: status %s, want bad-request", i, StatusName(resp.Status))
		}
	}
	// Lookup with a malformed token takes the same path.
	if resp, err := c.DoPage(Request{Op: OpLookup, Val: 1, Token: []byte{9, 9}}); err != nil || resp.Status != StatusBadRequest {
		t.Fatalf("lookup bad token: status=%v err=%v", resp.Status, err)
	}

	// The connection survived: point ops and a clean scan still work.
	if v, ok, err := c.Get(7); err != nil || !ok || v != 7 {
		t.Fatalf("get after bad tokens: v=%d ok=%v err=%v", v, ok, err)
	}
	n := 0
	if err := c.ScanAll(0, 50, 8, func(int64, uint64) { n++ }); err != nil {
		t.Fatalf("scan after bad tokens: %v", err)
	}
	if n != 50 {
		t.Fatalf("scan after bad tokens saw %d keys, want 50", n)
	}
}

func TestSeekGE(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, Shards: shards})
			defer shutdown()
			c := dialT(t, addr)
			for _, k := range []int64{10, 20, 30} {
				if _, err := c.Put(k, uint64(k)*7); err != nil {
					t.Fatal(err)
				}
			}
			cases := []struct {
				at, want int64
				ok       bool
			}{
				{math.MinInt64, 10, true}, {5, 10, true}, {10, 10, true},
				{11, 20, true}, {25, 30, true}, {30, 30, true}, {31, 0, false},
			}
			for _, tc := range cases {
				k, v, ok, err := c.SeekGE(tc.at)
				if err != nil {
					t.Fatalf("seek %d: %v", tc.at, err)
				}
				if ok != tc.ok || (ok && (k != tc.want || v != uint64(tc.want)*7)) {
					t.Fatalf("seek %d: (%d,%d,%v), want (%d,*,%v)", tc.at, k, v, ok, tc.want, tc.ok)
				}
			}
		})
	}
}

// TestLookupVsBruteForce checks the secondary index against the
// authoritative answer — a full scan filtered by value — through puts,
// re-points, and deletes, paged with a small limit.
func TestLookupVsBruteForce(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, Shards: shards, Index: true})
			defer shutdown()
			c := dialT(t, addr)

			rng := xrand.New(97)
			for i := 0; i < 2000; i++ {
				k := int64(rng.IntN(300))
				switch rng.IntN(10) {
				case 0:
					if _, err := c.Del(k); err != nil {
						t.Fatal(err)
					}
				default:
					if _, err := c.Put(k, uint64(rng.IntN(16))); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Brute force: one scan, bucketed by value.
			want := map[uint64][]int64{}
			if err := c.ScanAll(math.MinInt64, math.MaxInt64, 0, func(k int64, v uint64) {
				want[v] = append(want[v], k)
			}); err != nil {
				t.Fatal(err)
			}

			for v := uint64(0); v < 16; v++ {
				var got []int64
				var token []byte
				for {
					keys, next, err := c.Lookup(v, 3, token)
					if err != nil {
						t.Fatalf("lookup %d: %v", v, err)
					}
					got = append(got, keys...)
					if next == nil {
						break
					}
					token = next
				}
				if len(got) != len(want[v]) {
					t.Fatalf("value %d: %d keys, brute force %d", v, len(got), len(want[v]))
				}
				for i := range got {
					if got[i] != want[v][i] {
						t.Fatalf("value %d position %d: %d != %d", v, i, got[i], want[v][i])
					}
				}
			}
		})
	}
}

// TestLookupWithoutIndex pins that an index-less server answers lookups
// with StatusBadRequest rather than a misleading empty page.
func TestLookupWithoutIndex(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType})
	defer shutdown()
	c := dialT(t, addr)
	if _, err := c.Put(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(100, 0, nil); err == nil {
		t.Fatal("lookup on index-less server succeeded; want bad-request")
	}
}

// TestLookupIndexSurvivesReopen is the durability half of the index
// contract: the index has no journal of its own, so after the disk
// engines are closed and reopened (the recovery path kill -9 lands on),
// the index rebuilt from the recovered primary must agree with brute
// force again.
func TestLookupIndexSurvivesReopen(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	open := func() []Engine {
		var engines []Engine
		for i := 0; i < shards; i++ {
			e, err := NewDiskEngine(DiskEngineConfig{
				Path: filepath.Join(dir, fmt.Sprintf("shard-%d.db", i)),
				Cap:  8, CacheNodes: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, e)
		}
		return engines
	}

	// First life: write through the indexed server, remember the truth.
	want := map[uint64][]int64{}
	{
		s, addr, shutdown := startServer(t, Config{Engines: open(), Index: true})
		c := dialT(t, addr)
		rng := xrand.New(5)
		state := map[int64]uint64{}
		for i := 0; i < 1500; i++ {
			k := int64(rng.IntN(200))
			if rng.IntN(8) == 0 {
				if _, err := c.Del(k); err != nil {
					t.Fatal(err)
				}
				delete(state, k)
			} else {
				v := uint64(rng.IntN(12))
				if _, err := c.Put(k, v); err != nil {
					t.Fatal(err)
				}
				state[k] = v
			}
		}
		for k, v := range state {
			want[v] = append(want[v], k)
		}
		for v := range want {
			sort.Slice(want[v], func(a, b int) bool { return want[v][a] < want[v][b] })
		}
		c.Close()
		shutdown()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: recover the primaries, rebuild the index, re-check.
	s, addr, shutdown := startServer(t, Config{Engines: open(), Index: true})
	defer func() {
		shutdown()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	c := dialT(t, addr)
	for v := uint64(0); v < 12; v++ {
		var got []int64
		var token []byte
		for {
			keys, next, err := c.Lookup(v, 5, token)
			if err != nil {
				t.Fatalf("lookup %d after reopen: %v", v, err)
			}
			got = append(got, keys...)
			if next == nil {
				break
			}
			token = next
		}
		if len(got) != len(want[v]) {
			t.Fatalf("value %d after reopen: %d keys, want %d", v, len(got), len(want[v]))
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("value %d position %d after reopen: %d != %d", v, i, got[i], want[v][i])
			}
		}
	}
}

// TestQueryMetrics checks that query traffic lands in the op tallies the
// telemetry endpoint reports.
func TestQueryMetrics(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType, Shards: 2, Index: true})
	defer shutdown()
	c := dialT(t, addr)

	for k := int64(0); k < 100; k++ {
		if _, err := c.Put(k, uint64(k%5)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := c.ScanAll(0, 100, 16, func(int64, uint64) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("scan saw %d keys", n)
	}
	if _, _, _, err := c.SeekGE(50); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(3, 0, nil); err != nil {
		t.Fatal(err)
	}

	var scans, scanKeys, seeks, lookups int64
	for _, sh := range s.shards {
		scans += sh.scans.Load()
		scanKeys += sh.scanKeys.Load()
		seeks += sh.seeks.Load()
		lookups += sh.lookups.Load()
	}
	if scans < 7 { // 100 keys / 16 per page = 7 pages
		t.Errorf("scan pages tallied %d, want >= 7", scans)
	}
	if scanKeys < 100 {
		t.Errorf("scan keys tallied %d, want >= 100", scanKeys)
	}
	if seeks != 1 {
		t.Errorf("seeks tallied %d, want 1", seeks)
	}
	if lookups != 1 {
		t.Errorf("lookup pages tallied %d, want 1", lookups)
	}
}
