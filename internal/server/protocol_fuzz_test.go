package server

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzReadRequest feeds arbitrary bytes through the request decoder: it
// must never panic, must consume any stream to either EOF or a non-nil
// error, and anything it does decode must re-encode to an identical
// decode (round-trip closure).
func FuzzReadRequest(f *testing.F) {
	for _, req := range []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: -7, Val: 1<<63 + 9},
		{Op: OpDel, Key: 1 << 40},
		{Op: OpPing},
	} {
		f.Add(AppendRequest(nil, req))
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 9, byte(OpGet), 1, 2})
	f.Add([]byte{0, 0, 0, 1, 99})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		buf := make([]byte, MaxPayload)
		for {
			req, err := ReadRequest(br, buf)
			if err != nil {
				if err == io.EOF && br.Buffered() > 0 {
					t.Fatalf("clean EOF with %d bytes unconsumed", br.Buffered())
				}
				return // any error is fine; hanging or panicking is not
			}
			wire := AppendRequest(nil, req)
			got, err := ReadRequest(bufio.NewReader(bytes.NewReader(wire)), make([]byte, MaxPayload))
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", req, err)
			}
			if got != req {
				t.Fatalf("round trip drifted: %+v -> %+v", req, got)
			}
		}
	})
}

// FuzzReadResponse is the same property for the response decoder.
func FuzzReadResponse(f *testing.F) {
	for _, resp := range []Response{
		{Status: StatusOK, HasVal: true, Val: 12345},
		{Status: StatusMiss},
		{Status: StatusBusy},
		{Status: StatusOverload},
	} {
		f.Add(AppendResponse(nil, resp))
	}
	f.Add([]byte{0, 0, 0, 2, 0, 0})
	f.Add([]byte{0, 0, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		buf := make([]byte, MaxPayload)
		for {
			resp, err := ReadResponse(br, buf)
			if err != nil {
				if err == io.EOF && br.Buffered() > 0 {
					t.Fatalf("clean EOF with %d bytes unconsumed", br.Buffered())
				}
				return
			}
			wire := AppendResponse(nil, resp)
			got, err := ReadResponse(bufio.NewReader(bytes.NewReader(wire)), make([]byte, MaxPayload))
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", resp, err)
			}
			if got != resp {
				t.Fatalf("round trip drifted: %+v -> %+v", resp, got)
			}
		}
	})
}
