package server

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"btreeperf/internal/query"
)

// FuzzReadRequest feeds arbitrary bytes through the request decoder: it
// must never panic or over-read, must consume any stream to either EOF
// or a non-nil error, and anything it does decode must re-encode to an
// identical decode (round-trip closure).
func FuzzReadRequest(f *testing.F) {
	tok := query.EncodeToken(nil, []int64{1, 2, 3, 4})
	for _, req := range []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: -7, Val: 1<<63 + 9},
		{Op: OpDel, Key: 1 << 40},
		{Op: OpPing},
		{Op: OpSeek, Key: -1},
		{Op: OpScan, Key: 0, Hi: 1000, Limit: 64},
		{Op: OpScan, Key: -50, Hi: 50, Limit: 256, Token: tok},
		{Op: OpLookup, Val: 99, Limit: 16},
		{Op: OpLookup, Val: 1 << 40, Token: tok},
	} {
		f.Add(AppendRequest(nil, req))
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 9, byte(OpGet), 1, 2})
	f.Add([]byte{0, 0, 0, 1, 99})
	// Scan frame whose toklen field lies about the payload length.
	f.Add([]byte{0, 0, 0, 21, byte(OpScan),
		0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 64, 0, 200})
	// Lookup with a huge toklen claim.
	f.Add([]byte{0, 0, 0, 13, byte(OpLookup),
		0, 0, 0, 0, 0, 0, 0, 5, 0, 8, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		buf := make([]byte, MaxPayload)
		for {
			req, err := ReadRequest(br, buf)
			if err != nil {
				if err == io.EOF && br.Buffered() > 0 {
					t.Fatalf("clean EOF with %d bytes unconsumed", br.Buffered())
				}
				return // any error is fine; hanging or panicking is not
			}
			wire := AppendRequest(nil, req)
			got, err := ReadRequest(bufio.NewReader(bytes.NewReader(wire)), make([]byte, MaxPayload))
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", req, err)
			}
			if !reqEqual(got, req) {
				t.Fatalf("round trip drifted: %+v -> %+v", req, got)
			}
		}
	})
}

// FuzzReadResponse is the same property for the point-response decoder.
func FuzzReadResponse(f *testing.F) {
	for _, resp := range []Response{
		{Status: StatusOK, HasVal: true, Val: 12345},
		{Status: StatusMiss},
		{Status: StatusBusy},
		{Status: StatusOverload},
	} {
		f.Add(AppendResponse(nil, resp))
	}
	f.Add([]byte{0, 0, 0, 2, 0, 0})
	f.Add([]byte{0, 0, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		buf := make([]byte, MaxPayload)
		for {
			resp, err := ReadResponse(br, buf)
			if err != nil {
				if err == io.EOF && br.Buffered() > 0 {
					t.Fatalf("clean EOF with %d bytes unconsumed", br.Buffered())
				}
				return
			}
			wire := AppendResponse(nil, resp)
			got, err := ReadResponse(bufio.NewReader(bytes.NewReader(wire)), make([]byte, MaxPayload))
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", resp, err)
			}
			if !respEqual(got, resp) {
				t.Fatalf("round trip drifted: %+v -> %+v", resp, got)
			}
		}
	})
}

// FuzzReadPageResponse is the round-trip-closure property for the page
// decoder: no panic, no over-read, and every decoded page re-encodes to
// an identical decode.
func FuzzReadPageResponse(f *testing.F) {
	tok := query.EncodeToken(nil, []int64{10, 20})
	for _, resp := range []Response{
		{Status: StatusOK, Page: true},
		{Status: StatusOK, Page: true, Entries: []query.KV{{Key: 3, Val: 4}}},
		{Status: StatusOK, Page: true,
			Entries: []query.KV{{Key: -1, Val: 0}, {Key: 2, Val: 1 << 50}}, Token: tok},
		{Status: StatusBadRequest, Page: true},
		{Status: StatusBusy}, // bare status frame: shed reply to a query op
	} {
		f.Add(AppendResponse(nil, resp))
	}
	// Count field larger than the carried entries.
	f.Add([]byte{0, 0, 0, 5, StatusOK, 0, 7, 0, 0})
	// Token length overrunning the frame.
	f.Add([]byte{0, 0, 0, 5, StatusOK, 0, 0, 0, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		buf := make([]byte, MaxPayload)
		for {
			resp, err := ReadPageResponse(br, buf)
			if err != nil {
				if err == io.EOF && br.Buffered() > 0 {
					t.Fatalf("clean EOF with %d bytes unconsumed", br.Buffered())
				}
				return
			}
			wire := AppendResponse(nil, resp)
			got, err := ReadPageResponse(bufio.NewReader(bytes.NewReader(wire)), make([]byte, MaxPayload))
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", resp, err)
			}
			if !respEqual(got, resp) {
				t.Fatalf("round trip drifted: %+v -> %+v", resp, got)
			}
		}
	})
}
