package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"btreeperf/internal/metrics"
	"btreeperf/internal/table"
)

// SaturationRho is the paper's §6 saturation threshold: the rules of
// thumb define the effective maximum arrival rate λ_{ρ=.5} as the load at
// which the root's writer utilization ρ_w reaches one half. A measured or
// model root ρ_w at or past this value means the tree is at its effective
// maximum throughput for the chosen algorithm and node size.
const SaturationRho = 0.5

// windowState differences probe snapshots between scrapes so each
// endpoint reports rates over the interval since its previous scrape
// (the first scrape covers the time since the server started).
type windowState struct {
	mu       sync.Mutex
	prev     metrics.Snapshot
	prevOps  int64
	prevNs   int64
	prevHist metrics.HistSnapshot
}

// window is one evaluated scrape interval.
type window struct {
	Dt        float64 // seconds
	Rates     []metrics.LevelRates
	OpRate    float64 // operations per second
	Ops       int64   // operations in the window
	ObsMeanNs float64 // observed mean per-op tree service time
	OpHist    metrics.HistSnapshot
}

// advance captures a new snapshot and returns the window since the last.
func (w *windowState) advance(s *Server) window {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.prev.At.IsZero() {
		w.prev = metrics.Snapshot{At: s.start}
	}
	cur := s.probe.Snapshot()
	ops := s.opCount.Load()
	opNs := s.opNsSum.Load()
	hist := s.opLat.Snapshot()

	out := window{
		Dt:     cur.At.Sub(w.prev.At).Seconds(),
		Rates:  metrics.Rates(w.prev, cur),
		Ops:    ops - w.prevOps,
		OpHist: hist.Sub(w.prevHist),
	}
	if out.Dt > 0 {
		out.OpRate = float64(out.Ops) / out.Dt
	}
	if out.Ops > 0 {
		out.ObsMeanNs = float64(opNs-w.prevNs) / float64(out.Ops)
	}
	w.prev = cur
	w.prevOps = ops
	w.prevNs = opNs
	w.prevHist = hist
	return out
}

// rootRho returns the measured and model ρ_w at the root level, and
// whether either crosses the saturation threshold.
func rootRho(points []metrics.ModelPoint, height int) (measured, model float64, saturated bool) {
	for _, p := range points {
		if p.Level != height {
			continue
		}
		measured = p.RhoW
		if p.Evaluated {
			model = p.Sol.RhoW
		}
	}
	saturated = measured >= SaturationRho || model >= SaturationRho
	return measured, model, saturated
}

// Handler returns the HTTP mux serving /metrics, /debug/model, and
// /healthz.
func (s *Server) Handler() http.Handler { return s.handler(false) }

// HandlerWithProfiling is Handler plus net/http/pprof mounted under
// /debug/pprof/, exposing the CPU, heap, goroutine, mutex, and block
// profiles on the telemetry listener. Mutex and block profiles are empty
// unless the process also sets runtime.SetMutexProfileFraction and
// runtime.SetBlockProfileRate (btserved's -pprof-mutex-frac and
// -pprof-block-rate flags).
func (s *Server) HandlerWithProfiling() http.Handler { return s.handler(true) }

func (s *Server) handler(profiled bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/model", s.handleModel)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if profiled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleHealthz reports the server's health: "ok" and "degraded" answer
// 200; "overloaded" (governor shedding) and "poisoned" (the storage
// engine fail-stopped after an I/O error) answer 503 so load balancers
// stop routing traffic. A poisoned engine never recovers in-process —
// the report stays 503 until the operator restarts the server, which
// re-runs recovery from the last durable state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.Governor()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if perr := s.eng.Poisoned(); perr != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "poisoned")
		fmt.Fprintf(w, "engine=%s error=%q commit_fails=%d unavail=%d\n",
			s.eng.Kind(), perr, s.commitFails.Load(), s.unavail.Load())
		return
	}
	if g.State == GovOverloaded {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, g.State)
	fmt.Fprintf(w, "root_rho_w=%.4f threshold=%.2f exit=%.2f shed_overload=%d shed_busy=%d conn_rejects=%d\n",
		g.RootRhoW, g.Rho, g.ExitRho, g.ShedOverload, g.ShedBusy, g.ConnRejects)
}

// metricsJSON is the ?format=json shape of /metrics.
type metricsJSON struct {
	UptimeS   float64 `json:"uptime_s"`
	Algorithm string  `json:"algorithm"`
	Capacity  int     `json:"capacity"`
	Keys      int     `json:"keys"`
	Height    int     `json:"height"`
	Workers   int     `json:"workers"`
	Conns     int64   `json:"connections"`
	WindowS   float64 `json:"window_s"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Gets      int64   `json:"gets"`
	Puts      int64   `json:"puts"`
	Dels      int64   `json:"dels"`
	BadReqs   int64   `json:"bad_requests"`
	OpMeanUs  float64 `json:"op_mean_us"`
	OpP50Us   float64 `json:"op_p50_us"`
	OpP99Us   float64 `json:"op_p99_us"`
	Splits    int64   `json:"splits"`
	Restarts  int64   `json:"restarts"`
	Crossings int64   `json:"crossings"`
	RootRhoW  float64 `json:"root_rho_w"`
	Saturated bool    `json:"saturated"`

	Engine        string `json:"engine"` // mem | disk
	Poisoned      bool   `json:"poisoned"`
	Recovered     int64  `json:"recovered_ops"`
	OplogAppended int64  `json:"oplog_appended"`
	OplogSynced   int64  `json:"oplog_synced"`
	OplogBytes    int64  `json:"oplog_bytes"`
	Fsyncs        int64  `json:"group_commit_fsyncs"`
	Checkpoints   int64  `json:"checkpoints"`
	CheckpointLag int64  `json:"checkpoint_lag"`
	CommitFails   int64  `json:"commit_fails"`
	Unavail       int64  `json:"unavail"`

	Governor      string  `json:"governor"` // ok | degraded | overloaded | disabled
	GovernorRhoW  float64 `json:"governor_rho_w"`
	GovernorRho   float64 `json:"governor_threshold"`
	GovernorExit  float64 `json:"governor_exit"`
	GovernorFlips int64   `json:"governor_transitions"`
	ShedOverload  int64   `json:"shed_overload"`
	ShedBusy      int64   `json:"shed_busy"`
	ConnRejects   int64   `json:"conn_rejects"`
	ReadTimeouts  int64   `json:"read_timeouts"`
	WriteTimeouts int64   `json:"write_timeouts"`

	Levels []levelMetricsJSON `json:"levels"`
}

type levelMetricsJSON struct {
	Level     int     `json:"level"`
	Root      bool    `json:"root"`
	LambdaR   float64 `json:"lambda_r"`
	LambdaW   float64 `json:"lambda_w"`
	MuR       float64 `json:"mu_r"`
	MuW       float64 `json:"mu_w"`
	HoldRUs   float64 `json:"hold_r_us"`
	HoldWUs   float64 `json:"hold_w_us"`
	WaitRUs   float64 `json:"wait_r_us"`
	WaitWUs   float64 `json:"wait_w_us"`
	WaitWP99  float64 `json:"wait_w_p99_us"`
	RhoW      float64 `json:"rho_w"`
	ModelRhoW float64 `json:"model_rho_w"`
	Stable    bool    `json:"model_stable"`
}

func us(sec float64) float64 { return sec * 1e6 }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	win := s.metricsWin.advance(s)
	points := metrics.EvaluateAll(win.Rates)
	height := s.eng.Height()
	rhoMeas, rhoModel, saturated := rootRho(points, height)
	es := s.eng.Stats()

	out := metricsJSON{
		UptimeS:   time.Since(s.start).Seconds(),
		Algorithm: s.eng.Algorithm(),
		Capacity:  s.eng.Cap(),
		Keys:      s.eng.Len(),
		Height:    height,
		Workers:   s.cfg.Workers,
		Conns:     s.connsNow.Load(),
		WindowS:   win.Dt,
		OpsPerSec: win.OpRate,
		Gets:      s.gets.Load(),
		Puts:      s.puts.Load(),
		Dels:      s.dels.Load(),
		BadReqs:   s.badReqs.Load(),
		OpMeanUs:  win.ObsMeanNs / 1e3,
		OpP50Us:   float64(win.OpHist.Quantile(0.5)) / 1e3,
		OpP99Us:   float64(win.OpHist.Quantile(0.99)) / 1e3,
		Splits:    es.Splits,
		Restarts:  es.Restarts,
		Crossings: es.Crossings,
		RootRhoW:  math.Max(rhoMeas, rhoModel),
		Saturated: saturated,

		Engine:        s.eng.Kind(),
		Poisoned:      s.eng.Poisoned() != nil,
		Recovered:     es.Recovered,
		OplogAppended: es.Appended,
		OplogSynced:   es.Synced,
		OplogBytes:    es.OplogBytes,
		Fsyncs:        es.Fsyncs,
		Checkpoints:   es.Checkpoints,
		CheckpointLag: es.CheckpointLag,
		CommitFails:   s.commitFails.Load(),
		Unavail:       s.unavail.Load(),
	}
	gov := s.Governor()
	out.Governor = gov.State.String()
	if gov.Disabled {
		out.Governor = "disabled"
	}
	out.GovernorRhoW = gov.RootRhoW
	out.GovernorRho = gov.Rho
	out.GovernorExit = gov.ExitRho
	out.GovernorFlips = gov.Transitions
	out.ShedOverload = gov.ShedOverload
	out.ShedBusy = gov.ShedBusy
	out.ConnRejects = gov.ConnRejects
	out.ReadTimeouts = s.readTimeouts.Load()
	out.WriteTimeouts = s.writeTimeouts.Load()
	for _, p := range points {
		lj := levelMetricsJSON{
			Level:    p.Level,
			Root:     p.Level == height,
			LambdaR:  p.LambdaR,
			LambdaW:  p.LambdaW,
			MuR:      p.MuR,
			MuW:      p.MuW,
			HoldRUs:  us(p.MeanHoldR),
			HoldWUs:  us(p.MeanHoldW),
			WaitRUs:  us(p.MeanWaitR),
			WaitWUs:  us(p.MeanWaitW),
			WaitWP99: float64(p.WaitHistW.Quantile(0.99)) / 1e3,
			RhoW:     p.RhoW,
		}
		if p.Evaluated {
			lj.ModelRhoW = p.Sol.RhoW
			lj.Stable = p.Sol.Stable
		}
		out.Levels = append(out.Levels, lj)
	}

	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
		return
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "btserved uptime_s=%.1f algorithm=%s cap=%d keys=%d height=%d workers=%d conns=%d\n",
		out.UptimeS, out.Algorithm, out.Capacity, out.Keys, out.Height, out.Workers, out.Conns)
	fmt.Fprintf(w, "ops window_s=%.2f rate=%.0f gets=%d puts=%d dels=%d bad=%d\n",
		out.WindowS, out.OpsPerSec, out.Gets, out.Puts, out.Dels, out.BadReqs)
	fmt.Fprintf(w, "op_latency_us mean=%.1f p50=%.1f p99=%.1f\n", out.OpMeanUs, out.OpP50Us, out.OpP99Us)
	fmt.Fprintf(w, "tree splits=%d restarts=%d crossings=%d\n", out.Splits, out.Restarts, out.Crossings)
	fmt.Fprintf(w, "engine kind=%s poisoned=%v recovered=%d oplog_appended=%d oplog_synced=%d oplog_bytes=%d fsyncs=%d checkpoints=%d checkpoint_lag=%d commit_fails=%d unavail=%d\n",
		out.Engine, out.Poisoned, out.Recovered, out.OplogAppended, out.OplogSynced,
		out.OplogBytes, out.Fsyncs, out.Checkpoints, out.CheckpointLag, out.CommitFails, out.Unavail)
	for _, l := range out.Levels {
		role := "inner"
		if l.Root {
			role = "root"
		} else if l.Level == 1 {
			role = "leaf"
		}
		fmt.Fprintf(w, "level=%d role=%s lambda_r=%.0f lambda_w=%.0f mu_r=%.0f mu_w=%.0f hold_r_us=%.2f hold_w_us=%.2f wait_r_us=%.2f wait_w_us=%.2f wait_w_p99_us=%.1f rho_w=%.4f model_rho_w=%.4f stable=%v\n",
			l.Level, role, l.LambdaR, l.LambdaW, l.MuR, l.MuW,
			l.HoldRUs, l.HoldWUs, l.WaitRUs, l.WaitWUs, l.WaitWP99,
			l.RhoW, l.ModelRhoW, l.Stable)
	}
	fmt.Fprintf(w, "governor state=%s rho_w=%.4f threshold=%.2f exit=%.2f transitions=%d shed_overload=%d shed_busy=%d conn_rejects=%d read_timeouts=%d write_timeouts=%d\n",
		out.Governor, out.GovernorRhoW, out.GovernorRho, out.GovernorExit,
		out.GovernorFlips, out.ShedOverload, out.ShedBusy, out.ConnRejects,
		out.ReadTimeouts, out.WriteTimeouts)
	fmt.Fprintf(w, "saturation root_rho_w=%.4f threshold=%.2f saturated=%v\n",
		out.RootRhoW, SaturationRho, out.Saturated)
	if out.Saturated {
		fmt.Fprintf(w, "WARNING: root writer utilization rho_w >= %.2f — the tree is past the paper's effective maximum arrival rate (§6, rules of thumb 1–4)\n", SaturationRho)
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	win := s.modelWin.advance(s)
	points := metrics.EvaluateAll(win.Rates)
	height := s.eng.Height()
	rhoMeas, rhoModel, saturated := rootRho(points, height)
	predNs := metrics.PredictedResponse(points, win.OpRate) * 1e9

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "qmodel evaluated at measured parameters (window %.2fs, %d ops, %.0f ops/s, algorithm %s)\n\n",
		win.Dt, win.Ops, win.OpRate, s.eng.Algorithm())

	tb := table.New("per-level FCFS R/W queues (leaf=1 .. root)",
		"level", "λ_r/s", "λ_w/s", "μ_r/s", "μ_w/s",
		"ρ_w meas", "ρ_w model", "T_a µs", "W_w meas µs", "W_w pred µs", "stable")
	for _, p := range points {
		row := []string{
			fmt.Sprintf("%d", p.Level),
			table.F(p.LambdaR), table.F(p.LambdaW),
			table.F(p.MuR), table.F(p.MuW),
			table.F(p.RhoW),
		}
		if p.Evaluated {
			row = append(row,
				table.F(p.Sol.RhoW),
				table.F(us(p.Sol.TA)),
				table.F(us(p.MeanWaitW)),
				table.F(us(p.PredWaitW)),
				fmt.Sprintf("%v", p.Sol.Stable))
		} else {
			row = append(row, "-", "-", table.F(us(p.MeanWaitW)), "-", "-")
		}
		tb.AddRow(row...)
	}
	tb.Render(w)

	fmt.Fprintf(w, "\nresponse time: observed mean %.1f µs, model predicted %.1f µs",
		win.ObsMeanNs/1e3, predNs/1e3)
	if win.ObsMeanNs > 0 && predNs > 0 {
		ratio := predNs / win.ObsMeanNs
		fmt.Fprintf(w, " (pred/obs = %.2f)", ratio)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "root rho_w: measured %.4f, model %.4f, threshold %.2f\n", rhoMeas, rhoModel, SaturationRho)
	if saturated {
		fmt.Fprintf(w, "WARNING: SATURATED — root writer utilization ρ_w >= %.2f, the paper's effective maximum arrival rate λ_{ρ=.5} (§6, rules of thumb 1–4). Raise node capacity (Optimistic/Link-type) or shard.\n", SaturationRho)
	} else {
		fmt.Fprintf(w, "root below the λ_{ρ=.5} saturation threshold\n")
	}
}
