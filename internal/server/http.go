package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"btreeperf/internal/core"
	"btreeperf/internal/metrics"
	"btreeperf/internal/shape"
	"btreeperf/internal/table"
	"btreeperf/internal/workload"
)

// SaturationRho is the paper's §6 saturation threshold: the rules of
// thumb define the effective maximum arrival rate λ_{ρ=.5} as the load at
// which the root's writer utilization ρ_w reaches one half. A measured or
// model root ρ_w at or past this value means the tree is at its effective
// maximum throughput for the chosen algorithm and node size. Sharding
// multiplies the ceiling, not the threshold: each shard's root saturates
// independently at this same value.
const SaturationRho = 0.5

// windowState differences one shard's probe snapshots between scrapes so
// each endpoint reports rates over the interval since its previous scrape
// (the first scrape covers the time since the server started).
type windowState struct {
	mu       sync.Mutex
	prev     metrics.Snapshot
	prevOps  int64
	prevNs   int64
	prevHist metrics.HistSnapshot
}

// window is one evaluated scrape interval.
type window struct {
	Dt        float64 // seconds
	Rates     []metrics.LevelRates
	OpRate    float64 // operations per second
	Ops       int64   // operations in the window
	ObsMeanNs float64 // observed mean per-op tree service time
	OpHist    metrics.HistSnapshot
}

// advance captures a new snapshot of the shard and returns the window
// since the last.
func (w *windowState) advance(sh *shard) window {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.prev.At.IsZero() {
		w.prev = metrics.Snapshot{At: sh.srv.start}
	}
	cur := sh.probe.Snapshot()
	ops := sh.opCount.Load()
	opNs := sh.opNsSum.Load()
	hist := sh.opLat.Snapshot()

	out := window{
		Dt:     cur.At.Sub(w.prev.At).Seconds(),
		Rates:  metrics.Rates(w.prev, cur),
		Ops:    ops - w.prevOps,
		OpHist: hist.Sub(w.prevHist),
	}
	if out.Dt > 0 {
		out.OpRate = float64(out.Ops) / out.Dt
	}
	if out.Ops > 0 {
		out.ObsMeanNs = float64(opNs-w.prevNs) / float64(out.Ops)
	}
	w.prev = cur
	w.prevOps = ops
	w.prevNs = opNs
	w.prevHist = hist
	return out
}

// rootRho returns the measured and model ρ_w at the root level, and
// whether either crosses the saturation threshold.
func rootRho(points []metrics.ModelPoint, height int) (measured, model float64, saturated bool) {
	for _, p := range points {
		if p.Level != height {
			continue
		}
		measured = p.RhoW
		if p.Evaluated {
			model = p.Sol.RhoW
		}
	}
	saturated = measured >= SaturationRho || model >= SaturationRho
	return measured, model, saturated
}

// shardScrape is one shard's fully evaluated scrape: its window, its
// model points, and its engine stats, captured together so the per-shard
// and merged views of one HTTP response agree with each other.
type shardScrape struct {
	sh        *shard
	win       window
	points    []metrics.ModelPoint
	height    int
	es        EngineStats
	poisoned  bool
	rhoMeas   float64
	rhoModel  float64
	saturated bool
}

// scrape advances the selected window of every shard and evaluates the
// model at each shard's measured parameters.
func (s *Server) scrape(winOf func(*shard) *windowState) []shardScrape {
	out := make([]shardScrape, len(s.shards))
	for i, sh := range s.shards {
		sc := shardScrape{
			sh:       sh,
			win:      winOf(sh).advance(sh),
			height:   sh.eng.Height(),
			es:       sh.eng.Stats(),
			poisoned: sh.eng.Poisoned() != nil,
		}
		sc.points = metrics.EvaluateAll(sc.win.Rates)
		sc.rhoMeas, sc.rhoModel, sc.saturated = rootRho(sc.points, sc.height)
		out[i] = sc
	}
	return out
}

// Handler returns the HTTP mux serving /metrics, /debug/model, and
// /healthz.
func (s *Server) Handler() http.Handler { return s.handler(false) }

// HandlerWithProfiling is Handler plus net/http/pprof mounted under
// /debug/pprof/, exposing the CPU, heap, goroutine, mutex, and block
// profiles on the telemetry listener. Mutex and block profiles are empty
// unless the process also sets runtime.SetMutexProfileFraction and
// runtime.SetBlockProfileRate (btserved's -pprof-mutex-frac and
// -pprof-block-rate flags).
func (s *Server) HandlerWithProfiling() http.Handler { return s.handler(true) }

func (s *Server) handler(profiled bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.guarded(s.handleMetrics))
	mux.HandleFunc("/debug/model", s.guarded(s.handleModel))
	mux.HandleFunc("/healthz", s.guarded(s.handleHealthz))
	mux.HandleFunc("/promote", s.guarded(s.handlePromote))
	if profiled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// guarded wraps a telemetry handler in the server's lifecycle lock: the
// scrape holds the read side for its full duration, so Server.Close (the
// write side) cannot close an engine out from under a handler mid-scrape,
// and scrapes arriving after Close answer 503 without touching any
// engine.
func (s *Server) guarded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.lifeMu.RLock()
		defer s.lifeMu.RUnlock()
		if s.closed {
			http.Error(w, "server closed", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// handleHealthz reports the server's health: "ok" and "degraded" answer
// 200; "overloaded" (any shard's governor shedding) and "poisoned" (any
// shard's storage engine fail-stopped after an I/O error) answer 503 so
// load balancers stop routing traffic. A poisoned engine never recovers
// in-process — the report stays 503 until the operator restarts the
// server, which re-runs recovery from the last durable state. One bad
// shard is enough to fail aggregate health: clients cannot steer keys
// away from it, so the node as a whole cannot honor its contract.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.Governor()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var poisoned []int
	for i, sh := range s.shards {
		if sh.eng.Poisoned() != nil {
			poisoned = append(poisoned, i)
		}
	}
	if len(poisoned) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "poisoned")
		for _, i := range poisoned {
			sh := s.shards[i]
			perr := sh.eng.Poisoned()
			if len(s.shards) > 1 {
				fmt.Fprintf(w, "shard=%d engine=%s error=%q commit_fails=%d unavail=%d\n",
					i, sh.eng.Kind(), perr, sh.commitFails.Load(), sh.unavail.Load())
			} else {
				fmt.Fprintf(w, "engine=%s error=%q commit_fails=%d unavail=%d\n",
					sh.eng.Kind(), perr, sh.commitFails.Load(), sh.unavail.Load())
			}
		}
		return
	}
	if g.State == GovOverloaded {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, g.State)
	fmt.Fprintf(w, "root_rho_w=%.4f threshold=%.2f exit=%.2f shed_overload=%d shed_busy=%d conn_rejects=%d\n",
		g.RootRhoW, g.Rho, g.ExitRho, g.ShedOverload, g.ShedBusy, g.ConnRejects)
	if rs := s.replicationStats(); rs != nil {
		seqs := make([]int64, len(s.shards))
		var lag int64
		for i := range s.shards {
			seqs[i] = s.shardSeq(i)
		}
		if rs.Follower != nil {
			lag = rs.Follower.LagSeqs
		}
		fmt.Fprintf(w, "replication role=%s seqs=%v lag_seqs=%d\n", rs.Role, seqs, lag)
	} else if se, ok := s.shards[0].eng.(seqEngine); ok && se.Journal() != nil {
		// Unreplicated but journal-backed: still report the durable seqs —
		// the committed bound a future follower would resume from.
		seqs := make([]int64, len(s.shards))
		for i := range s.shards {
			seqs[i] = s.shardSeq(i)
		}
		fmt.Fprintf(w, "seqs durable=%v\n", seqs)
	}
	if len(s.shards) > 1 {
		for i, sh := range s.shards {
			gs := sh.gov.Status()
			fmt.Fprintf(w, "shard=%d state=%s rho_w=%.4f shed_overload=%d shed_busy=%d\n",
				i, gs.State, gs.RootRhoW, gs.ShedOverload, gs.ShedBusy)
		}
	}
}

// metricsJSON is the ?format=json shape of /metrics. On a multi-shard
// server the top-level fields are the merged view (counts summed, root
// ρ_w the max over shards, histograms merged) and ShardBlocks carries
// each shard's own block; a single-shard server reports its one shard at
// the top level, with no shard blocks, exactly as before sharding.
type metricsJSON struct {
	UptimeS   float64 `json:"uptime_s"`
	Algorithm string  `json:"algorithm"`
	Capacity  int     `json:"capacity"`
	Shards    int     `json:"shards"`
	Keys      int     `json:"keys"`
	Height    int     `json:"height"`
	Workers   int     `json:"workers"`
	Conns     int64   `json:"connections"`
	WindowS   float64 `json:"window_s"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Gets      int64   `json:"gets"`
	Puts      int64   `json:"puts"`
	Dels      int64   `json:"dels"`
	BadReqs   int64   `json:"bad_requests"`

	// Query traffic: pages served (a scan of k pages counts k), entries
	// returned on those pages, and — when the server runs the secondary
	// index — lookup pages, lookup entries, and the index's current size.
	Scans      int64   `json:"scan_pages"`
	ScanKeys   int64   `json:"scan_keys"`
	Seeks      int64   `json:"seeks"`
	Lookups    int64   `json:"lookup_pages"`
	LookupKeys int64   `json:"lookup_keys"`
	Indexed    bool    `json:"indexed"`
	IndexKeys  int64   `json:"index_keys"`
	OpMeanUs   float64 `json:"op_mean_us"`
	OpP50Us    float64 `json:"op_p50_us"`
	OpP99Us    float64 `json:"op_p99_us"`
	Splits     int64   `json:"splits"`
	Restarts   int64   `json:"restarts"`
	Crossings  int64   `json:"crossings"`
	RootRhoW   float64 `json:"root_rho_w"`
	Saturated  bool    `json:"saturated"`

	// OLC latch-free read telemetry; zero under the locking algorithms.
	ReadRestarts  int64 `json:"read_restarts"`
	ReadFallbacks int64 `json:"read_fallbacks"`

	Engine        string `json:"engine"` // mem | disk
	Poisoned      bool   `json:"poisoned"`
	Recovered     int64  `json:"recovered_ops"`
	OplogAppended int64  `json:"oplog_appended"`
	OplogSynced   int64  `json:"oplog_synced"`
	OplogBytes    int64  `json:"oplog_bytes"`
	Fsyncs        int64  `json:"group_commit_fsyncs"`
	Checkpoints   int64  `json:"checkpoints"`
	CheckpointLag int64  `json:"checkpoint_lag"`
	CkptFails     int64  `json:"ckpt_fails"`
	CommitFails   int64  `json:"commit_fails"`
	Unavail       int64  `json:"unavail"`

	// Global sequence positions (summed over shards on a multi-shard
	// server; per-shard values are in the shard blocks and on /healthz),
	// oplog-segment retention held for lagging followers, and the stop-
	// the-world checkpoint pause (max over shards).
	SeqAppended     int64   `json:"seq_appended"`
	SeqDurable      int64   `json:"seq_durable"`
	SeqLowest       int64   `json:"seq_lowest"`
	RetainedSegs    int64   `json:"retained_segments"`
	RetainedBytes   int64   `json:"retained_bytes"`
	CkptPauseLastUs float64 `json:"ckpt_pause_last_us"`
	CkptPauseMaxUs  float64 `json:"ckpt_pause_max_us"`
	CkptChunksDone  int64   `json:"ckpt_chunks_done"`
	CkptChunksTotal int64   `json:"ckpt_chunks_total"`

	// Replication is present only on a leader or follower.
	Replication *replicationJSON `json:"replication,omitempty"`

	Governor      string  `json:"governor"` // ok | degraded | overloaded | disabled
	GovernorRhoW  float64 `json:"governor_rho_w"`
	GovernorRho   float64 `json:"governor_threshold"`
	GovernorExit  float64 `json:"governor_exit"`
	GovernorFlips int64   `json:"governor_transitions"`
	ShedOverload  int64   `json:"shed_overload"`
	ShedBusy      int64   `json:"shed_busy"`
	ConnRejects   int64   `json:"conn_rejects"`
	ReadTimeouts  int64   `json:"read_timeouts"`
	WriteTimeouts int64   `json:"write_timeouts"`

	Levels []levelMetricsJSON `json:"levels"`

	ShardBlocks []shardMetricsJSON `json:"shard_blocks,omitempty"`
}

// shardMetricsJSON is one shard's block on a multi-shard /metrics.
type shardMetricsJSON struct {
	Shard         int     `json:"shard"`
	Keys          int     `json:"keys"`
	Height        int     `json:"height"`
	WindowS       float64 `json:"window_s"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Gets          int64   `json:"gets"`
	Puts          int64   `json:"puts"`
	Dels          int64   `json:"dels"`
	Scans         int64   `json:"scan_pages"`
	ScanKeys      int64   `json:"scan_keys"`
	Seeks         int64   `json:"seeks"`
	Lookups       int64   `json:"lookup_pages"`
	LookupKeys    int64   `json:"lookup_keys"`
	OpMeanUs      float64 `json:"op_mean_us"`
	OpP50Us       float64 `json:"op_p50_us"`
	OpP99Us       float64 `json:"op_p99_us"`
	Splits        int64   `json:"splits"`
	Restarts      int64   `json:"restarts"`
	Crossings     int64   `json:"crossings"`
	ReadRestarts  int64   `json:"read_restarts"`
	ReadFallbacks int64   `json:"read_fallbacks"`
	RootRhoW      float64 `json:"root_rho_w"`
	ModelRhoW     float64 `json:"model_rho_w"`
	Saturated     bool    `json:"saturated"`
	Poisoned      bool    `json:"poisoned"`
	CommitFails   int64   `json:"commit_fails"`
	Unavail       int64   `json:"unavail"`
	Governor      string  `json:"governor"`
	GovernorRhoW  float64 `json:"governor_rho_w"`
	ShedOverload  int64   `json:"shed_overload"`
	ShedBusy      int64   `json:"shed_busy"`

	// Seq is the shard's replication sequence: applied on a follower,
	// durable on a journal-backed leader, zero otherwise.
	Seq int64 `json:"seq"`

	Levels []levelMetricsJSON `json:"levels"`
}

// replicationJSON is the /metrics replication block: role-common
// refusal counters plus the active role's stream telemetry.
type replicationJSON struct {
	Role        string `json:"role"` // leader | follower
	Epoch       uint64 `json:"epoch"`
	Acks        int    `json:"acks"`         // configured semi-sync requirement
	AckTimeouts int64  `json:"ack_timeouts"` // batches that missed the barrier
	NotLeader   int64  `json:"not_leader"`   // mutations refused on a follower
	Lagging     int64  `json:"lagging"`      // getseqs refused past the bound

	// Leader side.
	OpsShipped   int64                 `json:"ops_shipped,omitempty"`
	BytesShipped int64                 `json:"bytes_shipped,omitempty"`
	AcksRecv     int64                 `json:"acks_received,omitempty"`
	Snapshots    int64                 `json:"snapshots,omitempty"`
	Evictions    int64                 `json:"evictions,omitempty"`
	Followers    []replicationFollower `json:"followers,omitempty"`

	// Follower side.
	Applied    []int64 `json:"applied,omitempty"` // per shard
	Heads      []int64 `json:"heads,omitempty"`   // leader durable head per shard
	LagSeqs    int64   `json:"lag_seqs,omitempty"`
	OpsApplied int64   `json:"ops_applied,omitempty"`
	Reconnects int64   `json:"reconnects,omitempty"`
	Connected  bool    `json:"connected,omitempty"`
}

// replicationFollower is one follower's position as the leader sees it.
type replicationFollower struct {
	ID        uint64  `json:"id"`
	Addr      string  `json:"addr"`
	Connected bool    `json:"connected"`
	Acked     []int64 `json:"acked"` // per shard
	LagSeqs   int64   `json:"lag_seqs"`
	LagBytes  int64   `json:"lag_bytes"`
}

// replJSON converts the active role's stats for /metrics.
func replJSON(rs *ReplicationStats) *replicationJSON {
	if rs == nil {
		return nil
	}
	out := &replicationJSON{
		Role:        rs.Role,
		Acks:        rs.Acks,
		AckTimeouts: rs.AckTimeouts,
		NotLeader:   rs.NotLeader,
		Lagging:     rs.Lagging,
	}
	if rs.Hub != nil {
		out.Epoch = rs.Hub.Epoch
		out.OpsShipped = rs.Hub.OpsShipped
		out.BytesShipped = rs.Hub.BytesShipped
		out.AcksRecv = rs.Hub.Acks
		out.Snapshots = rs.Hub.Snapshots
		out.Evictions = rs.Hub.Evictions
		for _, f := range rs.Hub.Followers {
			out.Followers = append(out.Followers, replicationFollower{
				ID:        f.ID,
				Addr:      f.Addr,
				Connected: f.Connected,
				Acked:     f.Acked,
				LagSeqs:   f.LagSeqs,
				LagBytes:  f.LagBytes,
			})
		}
	}
	if rs.Follower != nil {
		out.Epoch = rs.Follower.Epoch
		out.Applied = rs.Follower.Applied
		out.Heads = rs.Follower.Heads
		out.LagSeqs = rs.Follower.LagSeqs
		out.OpsApplied = rs.Follower.OpsApplied
		out.Snapshots = rs.Follower.Snapshots
		out.Reconnects = rs.Follower.Reconnects
		out.Connected = rs.Follower.Connected
	}
	return out
}

type levelMetricsJSON struct {
	Level     int     `json:"level"`
	Root      bool    `json:"root"`
	LambdaR   float64 `json:"lambda_r"`
	LambdaW   float64 `json:"lambda_w"`
	MuR       float64 `json:"mu_r"`
	MuW       float64 `json:"mu_w"`
	HoldRUs   float64 `json:"hold_r_us"`
	HoldWUs   float64 `json:"hold_w_us"`
	WaitRUs   float64 `json:"wait_r_us"`
	WaitWUs   float64 `json:"wait_w_us"`
	WaitWP99  float64 `json:"wait_w_p99_us"`
	RhoW      float64 `json:"rho_w"`
	ModelRhoW float64 `json:"model_rho_w"`
	Stable    bool    `json:"model_stable"`

	// OLC latch-free read telemetry for this level over the window.
	ReadRestarts  int64   `json:"read_restarts"`
	ReadFallbacks int64   `json:"read_fallbacks"`
	RestartRate   float64 `json:"restart_rate"`
	FallbackRate  float64 `json:"fallback_rate"`
}

func us(sec float64) float64 { return sec * 1e6 }

// levelJSON converts one shard's model points, marking the shard's root.
func levelJSON(points []metrics.ModelPoint, height int) []levelMetricsJSON {
	var out []levelMetricsJSON
	for _, p := range points {
		lj := levelMetricsJSON{
			Level:    p.Level,
			Root:     p.Level == height,
			LambdaR:  p.LambdaR,
			LambdaW:  p.LambdaW,
			MuR:      p.MuR,
			MuW:      p.MuW,
			HoldRUs:  us(p.MeanHoldR),
			HoldWUs:  us(p.MeanHoldW),
			WaitRUs:  us(p.MeanWaitR),
			WaitWUs:  us(p.MeanWaitW),
			WaitWP99: float64(p.WaitHistW.Quantile(0.99)) / 1e3,
			RhoW:     p.RhoW,

			ReadRestarts:  p.ReadRestarts,
			ReadFallbacks: p.ReadFallbacks,
			RestartRate:   p.RestartRate,
			FallbackRate:  p.FallbackRate,
		}
		if p.Evaluated {
			lj.ModelRhoW = p.Sol.RhoW
			lj.Stable = p.Sol.Stable
		}
		out = append(out, lj)
	}
	return out
}

// mergeLevels folds every shard's model points into one per-level view:
// arrival rates sum (total offered load at that depth across shards),
// service rates and holds are arrival-weighted means, and both measured
// and model ρ_w take the max over shards — the merged gauge answers "is
// any root at this depth saturated", which is what sharding makes the
// operative question. Stable is the conjunction over evaluated shards.
func mergeLevels(scrapes []shardScrape) []levelMetricsJSON {
	maxH := 0
	for _, sc := range scrapes {
		for _, p := range sc.points {
			if p.Level > maxH {
				maxH = p.Level
			}
		}
	}
	var out []levelMetricsJSON
	for lvl := 1; lvl <= maxH; lvl++ {
		m := levelMetricsJSON{Level: lvl, Stable: true}
		var wsum, muR, muW, holdR, holdW, waitR, waitW float64
		var hist metrics.HistSnapshot
		found, anyEval := false, false
		for _, sc := range scrapes {
			for _, p := range sc.points {
				if p.Level != lvl {
					continue
				}
				found = true
				wgt := p.LambdaR + p.LambdaW
				if wgt <= 0 {
					wgt = 1
				}
				wsum += wgt
				m.LambdaR += p.LambdaR
				m.LambdaW += p.LambdaW
				muR += wgt * p.MuR
				muW += wgt * p.MuW
				holdR += wgt * us(p.MeanHoldR)
				holdW += wgt * us(p.MeanHoldW)
				waitR += wgt * us(p.MeanWaitR)
				waitW += wgt * us(p.MeanWaitW)
				hist = hist.Add(p.WaitHistW)
				m.ReadRestarts += p.ReadRestarts
				m.ReadFallbacks += p.ReadFallbacks
				m.RestartRate += p.RestartRate
				m.FallbackRate += p.FallbackRate
				if p.RhoW > m.RhoW {
					m.RhoW = p.RhoW
				}
				m.Root = m.Root || p.Level == sc.height
				if p.Evaluated {
					anyEval = true
					if p.Sol.RhoW > m.ModelRhoW {
						m.ModelRhoW = p.Sol.RhoW
					}
					m.Stable = m.Stable && p.Sol.Stable
				}
			}
		}
		if !found {
			continue
		}
		if wsum > 0 {
			m.MuR = muR / wsum
			m.MuW = muW / wsum
			m.HoldRUs = holdR / wsum
			m.HoldWUs = holdW / wsum
			m.WaitRUs = waitR / wsum
			m.WaitWUs = waitW / wsum
		}
		m.WaitWP99 = float64(hist.Quantile(0.99)) / 1e3
		if !anyEval {
			m.Stable = false
		}
		out = append(out, m)
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := s.scrape(func(sh *shard) *windowState { return &sh.metricsWin })
	single := len(scrapes) == 1

	// Merged view: counts and rates sum across shards; height, window,
	// and root ρ_w take the max; the op histogram is the bucket-wise sum.
	var (
		keys, height                        int
		dt, opRate, opNsSum                 float64
		ops, gets, puts, dels, opBad        int64
		scans, scanKeys, seeks              int64
		lookups, lookupKeys, indexKeys      int64
		splits, restarts, crossings         int64
		readRestarts, readFallbacks         int64
		recovered, appended, synced, oplogB int64
		fsyncs, checkpoints, ckptLag        int64
		ckptFails                           int64
		commitFails, unavail                int64
		seqAppended, seqDurable, seqLowest  int64
		retainedSegs, retainedBytes         int64
		pauseLastNs, pauseMaxNs             int64
		chunksDone, chunksTotal             int64
		rhoMeas, rhoModel                   float64
		saturated, poisoned                 bool
		hist                                metrics.HistSnapshot
	)
	for _, sc := range scrapes {
		keys += sc.sh.eng.Len()
		if sc.height > height {
			height = sc.height
		}
		if sc.win.Dt > dt {
			dt = sc.win.Dt
		}
		opRate += sc.win.OpRate
		ops += sc.win.Ops
		opNsSum += sc.win.ObsMeanNs * float64(sc.win.Ops)
		hist = hist.Add(sc.win.OpHist)
		gets += sc.sh.gets.Load()
		puts += sc.sh.puts.Load()
		dels += sc.sh.dels.Load()
		opBad += sc.sh.opBad.Load()
		scans += sc.sh.scans.Load()
		scanKeys += sc.sh.scanKeys.Load()
		seeks += sc.sh.seeks.Load()
		lookups += sc.sh.lookups.Load()
		lookupKeys += sc.sh.lookupKeys.Load()
		if sc.sh.idx != nil {
			indexKeys += int64(sc.sh.idx.Len())
		}
		splits += sc.es.Splits
		restarts += sc.es.Restarts
		crossings += sc.es.Crossings
		readRestarts += sc.es.ReadRestarts
		readFallbacks += sc.es.ReadFallbacks
		recovered += sc.es.Recovered
		appended += sc.es.Appended
		synced += sc.es.Synced
		oplogB += sc.es.OplogBytes
		fsyncs += sc.es.Fsyncs
		checkpoints += sc.es.Checkpoints
		ckptLag += sc.es.CheckpointLag
		ckptFails += sc.es.CheckpointFails
		chunksDone += sc.es.CkptChunksDone
		chunksTotal += sc.es.CkptChunksTotal
		commitFails += sc.sh.commitFails.Load()
		unavail += sc.sh.unavail.Load()
		seqAppended += sc.es.SeqAppended
		seqDurable += sc.es.SeqDurable
		seqLowest += sc.es.SeqLowest
		retainedSegs += sc.es.RetainedSegs
		retainedBytes += sc.es.RetainedBytes
		if sc.es.CkptPauseLastNs > pauseLastNs {
			pauseLastNs = sc.es.CkptPauseLastNs
		}
		if sc.es.CkptPauseMaxNs > pauseMaxNs {
			pauseMaxNs = sc.es.CkptPauseMaxNs
		}
		if sc.rhoMeas > rhoMeas {
			rhoMeas = sc.rhoMeas
		}
		if sc.rhoModel > rhoModel {
			rhoModel = sc.rhoModel
		}
		saturated = saturated || sc.saturated
		poisoned = poisoned || sc.poisoned
	}
	meanNs := 0.0
	if ops > 0 {
		meanNs = opNsSum / float64(ops)
	}

	eng0 := s.shards[0].eng
	out := metricsJSON{
		UptimeS:    time.Since(s.start).Seconds(),
		Algorithm:  eng0.Algorithm(),
		Capacity:   eng0.Cap(),
		Shards:     len(s.shards),
		Keys:       keys,
		Height:     height,
		Workers:    s.cfg.Workers,
		Conns:      s.connsNow.Load(),
		WindowS:    dt,
		OpsPerSec:  opRate,
		Gets:       gets,
		Puts:       puts,
		Dels:       dels,
		BadReqs:    s.badReqs.Load() + opBad,
		Scans:      scans,
		ScanKeys:   scanKeys,
		Seeks:      seeks,
		Lookups:    lookups,
		LookupKeys: lookupKeys,
		Indexed:    s.shards[0].idx != nil,
		IndexKeys:  indexKeys,
		OpMeanUs:   meanNs / 1e3,
		OpP50Us:    float64(hist.Quantile(0.5)) / 1e3,
		OpP99Us:    float64(hist.Quantile(0.99)) / 1e3,
		Splits:     splits,
		Restarts:   restarts,
		Crossings:  crossings,
		RootRhoW:   math.Max(rhoMeas, rhoModel),
		Saturated:  saturated,

		ReadRestarts:  readRestarts,
		ReadFallbacks: readFallbacks,

		Engine:        eng0.Kind(),
		Poisoned:      poisoned,
		Recovered:     recovered,
		OplogAppended: appended,
		OplogSynced:   synced,
		OplogBytes:    oplogB,
		Fsyncs:        fsyncs,
		Checkpoints:   checkpoints,
		CheckpointLag: ckptLag,
		CkptFails:     ckptFails,
		CommitFails:   commitFails,
		Unavail:       unavail,

		SeqAppended:     seqAppended,
		SeqDurable:      seqDurable,
		SeqLowest:       seqLowest,
		RetainedSegs:    retainedSegs,
		RetainedBytes:   retainedBytes,
		CkptPauseLastUs: float64(pauseLastNs) / 1e3,
		CkptPauseMaxUs:  float64(pauseMaxNs) / 1e3,
		CkptChunksDone:  chunksDone,
		CkptChunksTotal: chunksTotal,

		Replication: replJSON(s.replicationStats()),
	}
	gov := s.Governor()
	out.Governor = gov.State.String()
	if gov.Disabled {
		out.Governor = "disabled"
	}
	out.GovernorRhoW = gov.RootRhoW
	out.GovernorRho = gov.Rho
	out.GovernorExit = gov.ExitRho
	out.GovernorFlips = gov.Transitions
	out.ShedOverload = gov.ShedOverload
	out.ShedBusy = gov.ShedBusy
	out.ConnRejects = gov.ConnRejects
	out.ReadTimeouts = s.readTimeouts.Load()
	out.WriteTimeouts = s.writeTimeouts.Load()
	if single {
		out.Levels = levelJSON(scrapes[0].points, scrapes[0].height)
	} else {
		out.Levels = mergeLevels(scrapes)
		for i, sc := range scrapes {
			gs := sc.sh.gov.Status()
			govName := gs.State.String()
			if gs.Disabled {
				govName = "disabled"
			}
			out.ShardBlocks = append(out.ShardBlocks, shardMetricsJSON{
				Shard:         i,
				Keys:          sc.sh.eng.Len(),
				Height:        sc.height,
				WindowS:       sc.win.Dt,
				OpsPerSec:     sc.win.OpRate,
				Gets:          sc.sh.gets.Load(),
				Puts:          sc.sh.puts.Load(),
				Dels:          sc.sh.dels.Load(),
				Scans:         sc.sh.scans.Load(),
				ScanKeys:      sc.sh.scanKeys.Load(),
				Seeks:         sc.sh.seeks.Load(),
				Lookups:       sc.sh.lookups.Load(),
				LookupKeys:    sc.sh.lookupKeys.Load(),
				OpMeanUs:      sc.win.ObsMeanNs / 1e3,
				OpP50Us:       float64(sc.win.OpHist.Quantile(0.5)) / 1e3,
				OpP99Us:       float64(sc.win.OpHist.Quantile(0.99)) / 1e3,
				Splits:        sc.es.Splits,
				Restarts:      sc.es.Restarts,
				Crossings:     sc.es.Crossings,
				ReadRestarts:  sc.es.ReadRestarts,
				ReadFallbacks: sc.es.ReadFallbacks,
				RootRhoW:      sc.rhoMeas,
				ModelRhoW:     sc.rhoModel,
				Saturated:     sc.saturated,
				Poisoned:      sc.poisoned,
				CommitFails:   sc.sh.commitFails.Load(),
				Unavail:       sc.sh.unavail.Load(),
				Governor:      govName,
				GovernorRhoW:  gs.RootRhoW,
				ShedOverload:  gs.ShedOverload,
				ShedBusy:      gs.ShedBusy,
				Seq:           s.shardSeq(i),
				Levels:        levelJSON(sc.points, sc.height),
			})
		}
	}

	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
		return
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if single {
		fmt.Fprintf(w, "btserved uptime_s=%.1f algorithm=%s cap=%d keys=%d height=%d workers=%d conns=%d\n",
			out.UptimeS, out.Algorithm, out.Capacity, out.Keys, out.Height, out.Workers, out.Conns)
	} else {
		fmt.Fprintf(w, "btserved uptime_s=%.1f algorithm=%s cap=%d keys=%d height=%d workers=%d conns=%d shards=%d\n",
			out.UptimeS, out.Algorithm, out.Capacity, out.Keys, out.Height, out.Workers, out.Conns, out.Shards)
	}
	fmt.Fprintf(w, "ops window_s=%.2f rate=%.0f gets=%d puts=%d dels=%d bad=%d\n",
		out.WindowS, out.OpsPerSec, out.Gets, out.Puts, out.Dels, out.BadReqs)
	fmt.Fprintf(w, "query scan_pages=%d scan_keys=%d seeks=%d lookup_pages=%d lookup_keys=%d indexed=%v index_keys=%d\n",
		out.Scans, out.ScanKeys, out.Seeks, out.Lookups, out.LookupKeys, out.Indexed, out.IndexKeys)
	fmt.Fprintf(w, "op_latency_us mean=%.1f p50=%.1f p99=%.1f\n", out.OpMeanUs, out.OpP50Us, out.OpP99Us)
	fmt.Fprintf(w, "tree splits=%d restarts=%d crossings=%d read_restarts=%d read_fallbacks=%d\n",
		out.Splits, out.Restarts, out.Crossings, out.ReadRestarts, out.ReadFallbacks)
	fmt.Fprintf(w, "engine kind=%s poisoned=%v recovered=%d oplog_appended=%d oplog_synced=%d oplog_bytes=%d fsyncs=%d checkpoints=%d checkpoint_lag=%d ckpt_fails=%d commit_fails=%d unavail=%d\n",
		out.Engine, out.Poisoned, out.Recovered, out.OplogAppended, out.OplogSynced,
		out.OplogBytes, out.Fsyncs, out.Checkpoints, out.CheckpointLag, out.CkptFails,
		out.CommitFails, out.Unavail)
	fmt.Fprintf(w, "checkpoint pause_last_us=%.1f pause_max_us=%.1f chunks_done=%d chunks_total=%d behind=%d\n",
		out.CkptPauseLastUs, out.CkptPauseMaxUs, out.CkptChunksDone, out.CkptChunksTotal, out.CheckpointLag)
	fmt.Fprintf(w, "seqs appended=%d durable=%d lowest=%d retained_segments=%d retained_bytes=%d\n",
		out.SeqAppended, out.SeqDurable, out.SeqLowest, out.RetainedSegs, out.RetainedBytes)
	if rp := out.Replication; rp != nil {
		if rp.Role == "leader" {
			fmt.Fprintf(w, "replication role=leader epoch=%d acks=%d ack_timeouts=%d ops_shipped=%d bytes_shipped=%d acks_received=%d snapshots=%d evictions=%d followers=%d\n",
				rp.Epoch, rp.Acks, rp.AckTimeouts, rp.OpsShipped, rp.BytesShipped,
				rp.AcksRecv, rp.Snapshots, rp.Evictions, len(rp.Followers))
			for _, f := range rp.Followers {
				fmt.Fprintf(w, "follower id=%d addr=%s connected=%v acked=%v lag_seqs=%d lag_bytes=%d\n",
					f.ID, f.Addr, f.Connected, f.Acked, f.LagSeqs, f.LagBytes)
			}
		} else {
			fmt.Fprintf(w, "replication role=follower epoch=%d connected=%v applied=%v heads=%v lag_seqs=%d ops_applied=%d snapshots=%d reconnects=%d not_leader=%d lagging=%d\n",
				rp.Epoch, rp.Connected, rp.Applied, rp.Heads, rp.LagSeqs,
				rp.OpsApplied, rp.Snapshots, rp.Reconnects, rp.NotLeader, rp.Lagging)
		}
	}
	if !single {
		// Per-shard ρ_w gauges: one line per shard with its own root
		// utilization, model prediction, governor, and shed counters.
		for _, b := range out.ShardBlocks {
			fmt.Fprintf(w, "shard=%d keys=%d height=%d rate=%.0f root_rho_w=%.4f model_rho_w=%.4f saturated=%v governor=%s poisoned=%v shed_overload=%d shed_busy=%d commit_fails=%d unavail=%d seq=%d\n",
				b.Shard, b.Keys, b.Height, b.OpsPerSec, b.RootRhoW, b.ModelRhoW,
				b.Saturated, b.Governor, b.Poisoned, b.ShedOverload, b.ShedBusy,
				b.CommitFails, b.Unavail, b.Seq)
		}
	}
	for _, l := range out.Levels {
		role := "inner"
		if l.Root {
			role = "root"
		} else if l.Level == 1 {
			role = "leaf"
		}
		fmt.Fprintf(w, "level=%d role=%s lambda_r=%.0f lambda_w=%.0f mu_r=%.0f mu_w=%.0f hold_r_us=%.2f hold_w_us=%.2f wait_r_us=%.2f wait_w_us=%.2f wait_w_p99_us=%.1f rho_w=%.4f model_rho_w=%.4f stable=%v",
			l.Level, role, l.LambdaR, l.LambdaW, l.MuR, l.MuW,
			l.HoldRUs, l.HoldWUs, l.WaitRUs, l.WaitWUs, l.WaitWP99,
			l.RhoW, l.ModelRhoW, l.Stable)
		if out.ReadRestarts > 0 || out.ReadFallbacks > 0 {
			fmt.Fprintf(w, " read_restarts=%d read_fallbacks=%d restart_rate=%.1f fallback_rate=%.1f",
				l.ReadRestarts, l.ReadFallbacks, l.RestartRate, l.FallbackRate)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "governor state=%s rho_w=%.4f threshold=%.2f exit=%.2f transitions=%d shed_overload=%d shed_busy=%d conn_rejects=%d read_timeouts=%d write_timeouts=%d\n",
		out.Governor, out.GovernorRhoW, out.GovernorRho, out.GovernorExit,
		out.GovernorFlips, out.ShedOverload, out.ShedBusy, out.ConnRejects,
		out.ReadTimeouts, out.WriteTimeouts)
	fmt.Fprintf(w, "saturation root_rho_w=%.4f threshold=%.2f saturated=%v\n",
		out.RootRhoW, SaturationRho, out.Saturated)
	if out.Saturated {
		fmt.Fprintf(w, "WARNING: root writer utilization rho_w >= %.2f — the tree is past the paper's effective maximum arrival rate (§6, rules of thumb 1–4)\n", SaturationRho)
	}
}

// handlePromote flips a follower into a leader (POST only). It answers
// 409 on a server that is not currently following — promotion of a
// leader or an unreplicated server is always an operator error — and
// 500 when the installed hook fails partway (the server may be left
// leaderless; the operator retries or restarts).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	epoch, err := s.Promote()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNotFollower) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "promoted epoch=%d\n", epoch)
}

// modelSection renders one shard's predicted-vs-measured table.
func modelSection(w http.ResponseWriter, sc shardScrape) {
	tb := table.New("per-level FCFS R/W queues (leaf=1 .. root)",
		"level", "λ_r/s", "λ_w/s", "μ_r/s", "μ_w/s",
		"ρ_w meas", "ρ_w model", "T_a µs", "W_w meas µs", "W_w pred µs", "stable")
	for _, p := range sc.points {
		row := []string{
			fmt.Sprintf("%d", p.Level),
			table.F(p.LambdaR), table.F(p.LambdaW),
			table.F(p.MuR), table.F(p.MuW),
			table.F(p.RhoW),
		}
		if p.Evaluated {
			row = append(row,
				table.F(p.Sol.RhoW),
				table.F(us(p.Sol.TA)),
				table.F(us(p.MeanWaitW)),
				table.F(us(p.PredWaitW)),
				fmt.Sprintf("%v", p.Sol.Stable))
		} else {
			row = append(row, "-", "-", table.F(us(p.MeanWaitW)), "-", "-")
		}
		tb.AddRow(row...)
	}
	tb.Render(w)

	predNs := metrics.PredictedResponse(sc.points, sc.win.OpRate) * 1e9
	fmt.Fprintf(w, "\nresponse time: observed mean %.1f µs, model predicted %.1f µs",
		sc.win.ObsMeanNs/1e3, predNs/1e3)
	if sc.win.ObsMeanNs > 0 && predNs > 0 {
		ratio := predNs / sc.win.ObsMeanNs
		fmt.Fprintf(w, " (pred/obs = %.2f)", ratio)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "root rho_w: measured %.4f, model %.4f, threshold %.2f\n", sc.rhoMeas, sc.rhoModel, SaturationRho)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	scrapes := s.scrape(func(sh *shard) *windowState { return &sh.modelWin })
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	if len(scrapes) == 1 {
		sc := scrapes[0]
		fmt.Fprintf(w, "qmodel evaluated at measured parameters (window %.2fs, %d ops, %.0f ops/s, algorithm %s)\n\n",
			sc.win.Dt, sc.win.Ops, sc.win.OpRate, sc.sh.eng.Algorithm())
		modelSection(w, sc)
		if sc.saturated {
			fmt.Fprintf(w, "WARNING: SATURATED — root writer utilization ρ_w >= %.2f, the paper's effective maximum arrival rate λ_{ρ=.5} (§6, rules of thumb 1–4). Raise node capacity (Optimistic/Link-type) or shard.\n", SaturationRho)
		} else {
			fmt.Fprintf(w, "root below the λ_{ρ=.5} saturation threshold\n")
		}
		s.saturationForecast(w)
		return
	}

	// Multi-shard: the model is a per-tree model, so each shard gets its
	// own evaluation at its own measured parameters, followed by the
	// aggregate verdict.
	var totOps int64
	var totRate float64
	saturatedShards := 0
	for _, sc := range scrapes {
		totOps += sc.win.Ops
		totRate += sc.win.OpRate
		if sc.saturated {
			saturatedShards++
		}
	}
	fmt.Fprintf(w, "qmodel evaluated per shard at measured parameters (%d shards, %d ops, %.0f ops/s aggregate, algorithm %s)\n",
		len(scrapes), totOps, totRate, scrapes[0].sh.eng.Algorithm())
	for i, sc := range scrapes {
		fmt.Fprintf(w, "\n--- shard %d (window %.2fs, %d ops, %.0f ops/s) ---\n\n",
			i, sc.win.Dt, sc.win.Ops, sc.win.OpRate)
		modelSection(w, sc)
		if sc.saturated {
			fmt.Fprintf(w, "shard %d SATURATED: root ρ_w >= %.2f\n", i, SaturationRho)
		} else {
			fmt.Fprintf(w, "shard %d below the λ_{ρ=.5} saturation threshold\n", i)
		}
	}
	fmt.Fprintf(w, "\naggregate: %d/%d shards saturated\n", saturatedShards, len(scrapes))
	if saturatedShards == len(scrapes) {
		fmt.Fprintf(w, "WARNING: SATURATED — every shard's root is past λ_{ρ=.5} (§6, rules of thumb 1–4). Raise node capacity (Optimistic/Link-type) or add shards.\n")
	} else if saturatedShards > 0 {
		fmt.Fprintf(w, "WARNING: partial saturation — the hottest shard's root is past λ_{ρ=.5}; the hash router cannot steer keys away from it\n")
	}
	s.saturationForecast(w)
}

// saturationForecast prints the framework's predicted effective maximum
// arrival rate λ_{ρ=.5} for each analyzable algorithm — NLC, OD, Link and
// the fourth, OLC — at the live tree's shape and measured operation mix.
// This is the §6 planning view behind the "raise capacity or shard"
// advice: it shows what ceiling each protocol choice would buy at this
// tree size. OLC's ceiling matches Link-type's (its writers are
// Link-type writers; its readers never occupy a queue), so the line
// quantifies how far the weaker protocols fall short rather than ranking
// OLC above Link here — OLC's advantage is response time below the
// ceiling, visible in the per-level wait columns above.
func (s *Server) saturationForecast(w io.Writer) {
	eng := s.shards[0].eng
	keys := 0
	var gets, puts, dels int64
	for _, sh := range s.shards {
		keys += sh.eng.Len()
		gets += sh.gets.Load()
		puts += sh.puts.Load()
		dels += sh.dels.Load()
	}
	tot := gets + puts + dels
	if tot == 0 || keys <= eng.Cap() {
		return // no traffic or a root-only tree: nothing to forecast
	}
	mix := workload.Mix{
		QS: float64(gets) / float64(tot),
		QI: float64(puts) / float64(tot),
		QD: float64(dels) / float64(tot),
	}
	// The shape model describes a tree grown by its workload; it needs a
	// growing mix. A read-only or shrinking window still gets a forecast,
	// pinned at the paper's canonical mix.
	if mix.QI <= mix.QD {
		mix = workload.PaperMix
	}
	shp, err := shape.New(keys, eng.Cap(), mix.QI, mix.QD)
	if err != nil {
		return
	}
	costs := core.PaperCosts(1)
	costs.MemLevels = shp.Height // the serving tree is memory-resident
	m := core.Model{Shape: shp, Costs: costs}
	fmt.Fprintf(w, "\npredicted λ_{ρ=.5} per algorithm at this tree (%d keys, cap %d, mix qs=%.2f qi=%.2f qd=%.2f; model time units):\n",
		keys, eng.Cap(), mix.QS, mix.QI, mix.QD)
	for _, alg := range []core.Algorithm{core.NLC, core.OD, core.Link, core.OLC} {
		leff, err := core.EffectiveMaxThroughput(alg, m, core.Workload{Mix: mix}, SaturationRho, 1e-3)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-4s λ_eff = %s\n", alg, table.F(leff))
	}
}
