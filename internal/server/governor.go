package server

import (
	"math"
	"sync/atomic"
	"time"
)

// GovState is the overload governor's health state, exposed on /healthz
// and /metrics.
type GovState int32

const (
	// GovOK: measured root ρ_w is comfortably below the threshold.
	GovOK GovState = iota
	// GovDegraded: ρ_w is between the exit and enter thresholds (on the
	// way up, a warning; on the way down, the recovery step out of
	// GovOverloaded). No traffic is shed.
	GovDegraded
	// GovOverloaded: ρ_w crossed the enter threshold; update traffic
	// (puts and deletes) is shed with StatusOverload until ρ_w has
	// stayed below the exit threshold for RecoverTicks intervals.
	GovOverloaded
)

func (g GovState) String() string {
	switch g {
	case GovOK:
		return "ok"
	case GovDegraded:
		return "degraded"
	case GovOverloaded:
		return "overloaded"
	default:
		return "unknown"
	}
}

// GovernorConfig parameterizes the model-driven overload governor: a
// background loop that watches the measured root writer utilization ρ_w
// — the quantity the paper's §6 rules of thumb bound — and sheds update
// traffic once it crosses the saturation threshold. Writers drive
// saturation in all three algorithms, so shedding them first is what
// restores the root's service capacity for reads.
//
// Every shard runs its own governor against its own root: saturation is
// a per-tree phenomenon in the model, so a hot shard sheds its own
// update traffic while the others keep serving at full admission.
//
// The governor is hysteretic in two ways: it enters shedding at Rho but
// only leaves once ρ_w has stayed below ExitRho for RecoverTicks
// consecutive intervals, and it passes through GovDegraded on the way
// back to GovOK. Under a sustained overload this duty-cycles admission:
// shed until the root cools off, re-admit, shed again — bounding root
// ρ_w near the threshold instead of collapsing past it.
type GovernorConfig struct {
	Disabled     bool
	Rho          float64       // enter threshold on root ρ_w; default SaturationRho (.5)
	ExitRho      float64       // leave threshold; default 0.8·Rho
	Interval     time.Duration // measurement interval; default 250ms
	RecoverTicks int           // consecutive below-ExitRho intervals to stop shedding; default 4
}

func (c *GovernorConfig) fill() {
	if c.Rho == 0 {
		c.Rho = SaturationRho
	}
	if c.ExitRho == 0 {
		c.ExitRho = 0.8 * c.Rho
	}
	if c.Interval == 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.RecoverTicks == 0 {
		c.RecoverTicks = 4
	}
}

// GovStatus is a snapshot of a governor for telemetry. Server.Governor
// returns the merged view across shards; shard blocks report each
// governor individually.
type GovStatus struct {
	State        GovState
	RootRhoW     float64 // last measured root ρ_w (merged view: max over shards)
	Rho          float64 // enter threshold
	ExitRho      float64
	Transitions  int64 // state changes since start (merged view: summed)
	ShedOverload int64 // updates shed with StatusOverload (merged view: summed)
	ShedBusy     int64 // requests shed with StatusBusy (merged view: summed)
	ConnRejects  int64 // connections refused at the MaxConns cap (server-wide)
	Disabled     bool
}

// governor watches one shard's root ρ_w and flips that shard's shedding
// switch.
type governor struct {
	cfg   GovernorConfig
	sh    *shard
	win   windowState
	state atomic.Int32
	shed  atomic.Bool
	rho   atomic.Uint64 // float64 bits of last measurement
	trans atomic.Int64
	below int // consecutive intervals below ExitRho while overloaded

	stopCh chan struct{}

	// rhoFn overrides the ρ_w source; tests only, set before Serve.
	rhoFn func() float64
}

func newGovernor(sh *shard, cfg GovernorConfig) *governor {
	return &governor{cfg: cfg, sh: sh, stopCh: make(chan struct{})}
}

// shedding is the admission-path check: true while updates must be shed.
func (g *governor) shedding() bool { return g.shed.Load() }

// Status snapshots the governor and its shard's shed counters.
func (g *governor) Status() GovStatus {
	return GovStatus{
		State:        GovState(g.state.Load()),
		RootRhoW:     math.Float64frombits(g.rho.Load()),
		Rho:          g.cfg.Rho,
		ExitRho:      g.cfg.ExitRho,
		Transitions:  g.trans.Load(),
		ShedOverload: g.sh.shedOverload.Load(),
		ShedBusy:     g.sh.shedBusy.Load(),
		ConnRejects:  g.sh.srv.connRejects.Load(),
		Disabled:     g.cfg.Disabled,
	}
}

// start launches the measurement loop; the returned channel closes when
// the loop exits. Disabled governors return an already-closed channel.
func (g *governor) start() <-chan struct{} {
	done := make(chan struct{})
	if g.cfg.Disabled {
		close(done)
		return done
	}
	go func() {
		defer close(done)
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-g.stopCh:
				return
			case <-t.C:
				g.tick(g.measure())
			}
		}
	}()
	return done
}

func (g *governor) stop() {
	select {
	case <-g.stopCh:
	default:
		close(g.stopCh)
	}
}

// measure returns the shard's root ρ_w over the interval since the last
// measurement.
func (g *governor) measure() float64 {
	if g.rhoFn != nil {
		return g.rhoFn()
	}
	win := g.win.advance(g.sh)
	height := g.sh.eng.Height()
	for _, r := range win.Rates {
		if r.Level == height {
			return r.RhoW
		}
	}
	return 0
}

// tick advances the hysteretic state machine on one measurement.
func (g *governor) tick(rho float64) {
	g.rho.Store(math.Float64bits(rho))
	st := GovState(g.state.Load())
	next := st
	switch st {
	case GovOK:
		switch {
		case rho >= g.cfg.Rho:
			next = GovOverloaded
		case rho >= g.cfg.ExitRho:
			next = GovDegraded
		}
	case GovDegraded:
		switch {
		case rho >= g.cfg.Rho:
			next = GovOverloaded
		case rho < g.cfg.ExitRho:
			next = GovOK
		}
	case GovOverloaded:
		if rho < g.cfg.ExitRho {
			g.below++
			if g.below >= g.cfg.RecoverTicks {
				next = GovDegraded
			}
		} else {
			g.below = 0
		}
	}
	if next != st {
		g.below = 0
		g.state.Store(int32(next))
		g.shed.Store(next == GovOverloaded)
		g.trans.Add(1)
	}
}

// Governor exposes the merged governor status (telemetry, tests): the
// worst state across shards, the hottest root ρ_w, and the shed counters
// summed. A single-shard server's merged view is exactly its shard's.
func (s *Server) Governor() GovStatus {
	st := s.shards[0].gov.Status()
	for _, sh := range s.shards[1:] {
		o := sh.gov.Status()
		if o.State > st.State {
			st.State = o.State
		}
		if o.RootRhoW > st.RootRhoW {
			st.RootRhoW = o.RootRhoW
		}
		st.Transitions += o.Transitions
		st.ShedOverload += o.ShedOverload
		st.ShedBusy += o.ShedBusy
	}
	return st
}

// ShardGovernor exposes one shard's governor status.
func (s *Server) ShardGovernor(i int) GovStatus { return s.shards[i].gov.Status() }
