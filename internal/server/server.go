package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/lock"
	"btreeperf/internal/metrics"
)

// Default self-defense settings (Config zero values resolve to these;
// a negative duration disables that guard).
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultAdmitTimeout = 100 * time.Millisecond
)

// DefaultMaxBatch is the default cap on how many pipelined requests the
// connection reader coalesces into one worker-pool dispatch. It trades
// handoff amortization (bigger is cheaper per op) against intra-
// connection parallelism (a deep pipeline split into several batches can
// occupy several workers at once).
const DefaultMaxBatch = 32

// Config parameterizes a Server.
type Config struct {
	Algorithm cbtree.Algorithm
	Capacity  int // node capacity; default 64
	Workers   int // worker-pool size; default GOMAXPROCS
	Depth     int // per-connection pipeline bound; default 128
	Prefill   int // keys inserted before serving; default 0
	MaxBatch  int // max requests per worker-pool dispatch; default DefaultMaxBatch

	// Self-defense. Zero values resolve to the Default* constants;
	// negative durations disable the guard.
	MaxConns     int           // concurrent connection cap; 0 = unlimited
	IdleTimeout  time.Duration // per-read deadline: a conn that sends no complete frame within it is closed
	WriteTimeout time.Duration // per-write deadline: a peer that won't drain responses is closed
	AdmitTimeout time.Duration // how long a batch may wait for a worker-queue slot before StatusBusy
	QueueDepth   int           // worker queue bound, in batches; default 4*Workers

	// Governor configures the model-driven overload governor; see
	// GovernorConfig.
	Governor GovernorConfig

	// Engine selects the storage engine. Nil builds the default
	// in-memory engine from Algorithm/Capacity; a *DiskEngine makes the
	// server durable: each batch's mutations are acknowledged only after
	// the engine's group-commit fsync returns. Algorithm and Capacity
	// are ignored when an Engine is supplied.
	Engine Engine
}

func (c *Config) fill() {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = DefaultAdmitTimeout
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	c.Governor.fill()
}

// Server owns the tree, its telemetry probe, and the worker pool. Create
// one with New, serve the binary protocol with Serve, and mount Handler
// on an HTTP listener for /metrics and /debug/model.
type Server struct {
	cfg   Config
	tree  *cbtree.Tree // nil unless the engine is the in-memory one
	eng   Engine
	probe *metrics.TreeProbe
	work  chan *batch

	start    time.Time
	opLat    metrics.Hist // per-op tree service time
	opNsSum  atomic.Int64
	opCount  atomic.Int64
	gets     atomic.Int64
	puts     atomic.Int64
	dels     atomic.Int64
	badReqs  atomic.Int64
	connsNow atomic.Int64
	connsTot atomic.Int64

	// Durability counters.
	commitFails atomic.Int64 // batches whose group commit failed
	unavail     atomic.Int64 // requests answered StatusUnavail

	// Self-defense counters.
	connRejects   atomic.Int64 // conns refused with StatusBusy at the cap
	shedBusy      atomic.Int64 // requests shed with StatusBusy (queue full)
	shedOverload  atomic.Int64 // updates shed with StatusOverload (governor)
	readTimeouts  atomic.Int64 // conns reaped by the idle/read deadline
	writeTimeouts atomic.Int64 // conns reaped by the write deadline

	gov     *governor
	stopped atomic.Bool

	// testApplyDelay slows apply down; set before Serve, tests only.
	testApplyDelay time.Duration

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	metricsWin windowState // /metrics scrape window
	modelWin   windowState // /debug/model scrape window
}

// New builds the tree (prefilled if requested), instruments every node
// lock with the per-level telemetry probe, and sizes the worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		probe: metrics.NewTreeProbe(),
		work:  make(chan *batch, cfg.QueueDepth),
		start: time.Now(),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Engine != nil {
		s.eng = cfg.Engine
	} else {
		s.tree = cbtree.New(cfg.Capacity, cfg.Algorithm)
		s.eng = &memEngine{t: s.tree}
	}
	s.gov = newGovernor(s, cfg.Governor)
	for i := 0; i < cfg.Prefill; i++ {
		// A simple odd multiplier scatters the prefill across the key
		// space deterministically.
		k := int64(uint64(i)*2654435761) % (1 << 40)
		if _, err := s.eng.Put(k, uint64(i)); err != nil {
			break // the engine is poisoned; Serve will answer StatusUnavail
		}
	}
	if cfg.Prefill > 0 {
		s.eng.Commit()
	}
	if s.tree != nil {
		s.tree.Instrument(func(level int) lock.Probe { return s.probe.Level(level) })
	}
	return s
}

// Engine exposes the storage engine (telemetry, tests).
func (s *Server) Engine() Engine { return s.eng }

// Tree exposes the underlying in-memory tree (tests, stats); nil when
// the server runs on another engine.
func (s *Server) Tree() *cbtree.Tree { return s.tree }

// Probe exposes the telemetry probe.
func (s *Server) Probe() *metrics.TreeProbe { return s.probe }

// closeRead shuts down the read side of a connection so its reader sees
// EOF after draining buffered data. Conns without a CloseRead method
// (tests' pipes) fall back to an immediate read deadline.
func closeRead(c net.Conn) {
	if cr, ok := c.(interface{ CloseRead() error }); ok {
		cr.CloseRead()
		return
	}
	c.SetReadDeadline(time.Now())
}

// Serve accepts connections on ln until ctx is cancelled, then drains: it
// stops accepting, lets every already-read request finish and its
// response be written, and closes the connections. It returns nil on a
// clean drain.
//
// Admission is bounded end to end: at most MaxConns connections (excess
// conns get one StatusBusy frame and are closed), at most Depth requests
// pipelined per connection, and at most QueueDepth batches queued for
// the worker pool — a batch that cannot get a queue slot within
// AdmitTimeout is answered StatusBusy in order, so a full queue sheds
// load instead of deadlocking or growing without bound. When the
// overload governor is shedding, puts and deletes are answered
// StatusOverload without touching the tree.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var workerWG sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			// Telemetry is tallied locally and flushed once per batch:
			// per-op atomic adds from every worker bounce the counters'
			// cache lines and were a measurable share of service time.
			var tally opTally
			for bt := range s.work {
				tally = opTally{}
				t0 := time.Now()
				for i := range bt.jobs {
					j := &bt.jobs[i]
					if j.skip {
						continue
					}
					j.resp = s.apply(j.req, &tally)
				}
				if tally.puts+tally.dels > 0 {
					// Group commit: one engine fsync covers every mutation
					// in the batch; their OK responses are withheld until
					// it returns. On failure nothing is acknowledged — the
					// engine is poisoned (fail stop), so rewriting the
					// batch's mutation responses to StatusUnavail closes
					// the last window where an ack could outrun the disk.
					if err := s.eng.Commit(); err != nil {
						s.commitFails.Add(1)
						for i := range bt.jobs {
							j := &bt.jobs[i]
							if !j.skip && (j.req.Op == OpPut || j.req.Op == OpDel) {
								j.resp = Response{Status: StatusUnavail}
							}
						}
					}
				}
				if n := tally.gets + tally.puts + tally.dels + tally.pings + tally.bad; n > 0 {
					ns := time.Since(t0).Nanoseconds()
					// The histogram records the batch's amortized per-op
					// service time for each op (exact in the mean,
					// batch-smoothed in the tails).
					s.opLat.ObserveN(ns/n, n)
					s.opNsSum.Add(ns)
					s.opCount.Add(n)
					if tally.gets > 0 {
						s.gets.Add(tally.gets)
					}
					if tally.puts > 0 {
						s.puts.Add(tally.puts)
					}
					if tally.dels > 0 {
						s.dels.Add(tally.dels)
					}
					if tally.bad > 0 {
						s.badReqs.Add(tally.bad)
					}
					if tally.unavail > 0 {
						s.unavail.Add(tally.unavail)
					}
				}
				bt.complete()
			}
		}()
	}

	govDone := s.gov.start()

	stop := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() {
			s.stopped.Store(true)
			close(stop)
			ln.Close()
			// Shut down the read side of every connection: readers see
			// EOF, finish submitting what they already read, and the
			// writers drain the pipeline.
			s.connMu.Lock()
			for c := range s.conns {
				closeRead(c)
			}
			s.connMu.Unlock()
		})
	}
	go func() {
		<-ctx.Done()
		shutdown()
	}()

	var connWG sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-stop:
			default:
				acceptErr = err
				shutdown()
			}
			break
		}
		if s.cfg.MaxConns > 0 && s.connsNow.Load() >= int64(s.cfg.MaxConns) {
			// Over the cap: tell the peer why before hanging up, without
			// letting a slow peer stall the accept loop.
			s.connRejects.Add(1)
			connWG.Add(1)
			go func(c net.Conn) {
				defer connWG.Done()
				defer c.Close()
				c.SetWriteDeadline(time.Now().Add(2 * time.Second))
				c.Write(AppendResponse(nil, Response{Status: StatusBusy}))
			}(conn)
			continue
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		// A connection accepted while shutdown was iterating the map
		// would miss its CloseRead; re-check now that it is registered.
		select {
		case <-stop:
			closeRead(conn)
		default:
		}
		s.connsNow.Add(1)
		s.connsTot.Add(1)
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			s.handle(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			s.connsNow.Add(-1)
		}()
	}

	connWG.Wait()
	close(s.work)
	workerWG.Wait()
	s.gov.stop()
	<-govDone
	if acceptErr != nil && !errors.Is(acceptErr, net.ErrClosed) {
		return fmt.Errorf("server: accept: %w", acceptErr)
	}
	return nil
}

// handle runs one connection's batched fast path: this goroutine reads
// frames and dispatches them in pooled batches, a second (connWriter)
// writes responses in request order. The pending channel carries batch
// ordering; the freed channel returns each written batch's job count to
// the reader, bounding the pipeline at Depth requests in flight with one
// channel op per batch instead of one per request.
//
// Batch accumulation never stalls the pipeline: after the (blocking,
// idle-deadlined) read of a batch's first frame, only frames already
// fully buffered join the batch, so a batch is dispatched the moment the
// wire runs dry — a lone request still crosses the server at single-op
// latency.
//
// Self-defense per connection: the first frame of every batch carries an
// IdleTimeout deadline (reaping idle peers and slow-loris
// byte-trickling alike), every response write carries a WriteTimeout
// deadline (reaping peers that pipeline requests but never drain
// responses), and batches that cannot be admitted to the worker queue
// within AdmitTimeout are answered StatusBusy in request order.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Every in-flight batch holds at least one of the Depth pipeline
	// credits, so Depth slots can never block on either channel.
	pending := make(chan *batch, s.cfg.Depth)
	freed := make(chan int, s.cfg.Depth)
	writerDone := make(chan struct{})
	go s.connWriter(conn, pending, freed, writerDone)

	// admitTimer is the connection's one reusable admission timer; the
	// old path allocated a time.Timer per contended request.
	var admitTimer *time.Timer
	defer func() {
		if admitTimer != nil {
			admitTimer.Stop()
		}
	}()

	br := bufio.NewReaderSize(conn, 32<<10)
	buf := make([]byte, MaxPayload)
	credits := s.cfg.Depth
	var bt *batch // accumulating batch; nil between batches
	submit := func() {
		if bt == nil {
			return
		}
		s.dispatch(bt, &admitTimer)
		pending <- bt
		bt = nil
	}

	for {
		if credits == 0 {
			// Depth requests in flight: dispatch what we have and wait
			// for the writer to retire a batch.
			submit()
			credits += <-freed
			continue
		}
		if bt == nil {
			// Between batches: reclaim retired pipeline credits without
			// blocking, and arm the idle deadline covering the whole
			// next frame, unless the server is draining (drain relies on
			// reading buffered requests out before EOF; see closeRead).
			for {
				select {
				case n := <-freed:
					credits += n
					continue
				default:
				}
				break
			}
			if s.cfg.IdleTimeout > 0 && !s.stopped.Load() {
				conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			}
		} else if len(bt.jobs) >= s.cfg.MaxBatch || !frameBuffered(br) {
			submit()
			continue
		}
		req, err := ReadRequest(br, buf)
		if err != nil {
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded):
				if !s.stopped.Load() {
					s.readTimeouts.Add(1)
				}
			case err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF):
				s.badReqs.Add(1)
			}
			break
		}
		credits--
		if bt == nil {
			bt = getBatch()
		}
		j := bt.add()
		j.req = req
		if s.gov.shedding() && (req.Op == OpPut || req.Op == OpDel) {
			// The governor is shedding update traffic: answer without
			// touching the tree so writers stop driving root ρ_w.
			s.shedOverload.Add(1)
			j.skip = true
			j.resp = Response{Status: StatusOverload}
		} else {
			bt.nexec++
		}
	}
	submit()
	close(pending)
	<-writerDone
}

// frameBuffered reports whether br already holds one complete frame, so
// decoding it cannot block. A buffered frame header with an invalid
// length reports true: ReadRequest will surface the protocol error.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, _ := br.Peek(4)
	n := int(binary.BigEndian.Uint32(hdr))
	if n <= 0 || n > MaxPayload {
		return true
	}
	return br.Buffered() >= 4+n
}

// connWriter writes completed batches' responses in request order, each
// batch coalesced into one buffered write, flushing only when the
// pipeline runs dry. It returns every batch's job count on freed (the
// reader's pipeline credits) and recycles the batch.
func (s *Server) connWriter(conn net.Conn, pending <-chan *batch, freed chan<- int, done chan<- struct{}) {
	defer close(done)
	bail := func(err error) {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.writeTimeouts.Add(1)
		}
		// Kill the conn so the reader unblocks, then keep retiring
		// batches so the reader never starves for pipeline credits.
		conn.Close()
		for bt := range pending {
			bt.wait()
			freed <- len(bt.jobs)
			putBatch(bt)
		}
	}
	bw := bufio.NewWriterSize(conn, 32<<10)
	buf := make([]byte, 0, 1<<10)
	for bt := range pending {
		bt.wait()
		buf = buf[:0]
		for i := range bt.jobs {
			buf = AppendResponse(buf, bt.jobs[i].resp)
		}
		n := len(bt.jobs)
		putBatch(bt)
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		_, err := bw.Write(buf)
		if err == nil && len(pending) == 0 {
			err = bw.Flush()
		}
		freed <- n
		if err != nil {
			bail(err)
			return
		}
	}
	bw.Flush()
}

// dispatch hands a full batch to the worker pool, or answers it on the
// spot: a batch whose every job was already decided (governor shedding)
// never crosses the queue, and a batch that cannot be admitted within
// AdmitTimeout has its undecided jobs answered StatusBusy in request
// order. After dispatch the batch belongs to the worker/writer; the
// caller must not touch it.
func (s *Server) dispatch(bt *batch, admitTimer **time.Timer) {
	if bt.nexec == 0 {
		bt.complete()
		return
	}
	if s.admit(bt, admitTimer) {
		return
	}
	shed := 0
	for i := range bt.jobs {
		j := &bt.jobs[i]
		if j.skip {
			continue
		}
		j.skip = true
		j.resp = Response{Status: StatusBusy}
		shed++
	}
	s.shedBusy.Add(int64(shed))
	bt.complete()
}

// admit places bt on the worker queue, waiting at most AdmitTimeout for
// a slot when the queue is full. It reports false when the batch must be
// shed (the caller answers StatusBusy). The contended path reuses the
// connection's timer instead of allocating one per attempt.
func (s *Server) admit(bt *batch, admitTimer **time.Timer) bool {
	select {
	case s.work <- bt:
		return true
	default:
	}
	if s.cfg.AdmitTimeout <= 0 {
		return false // fail-fast admission
	}
	t := *admitTimer
	if t == nil {
		t = time.NewTimer(s.cfg.AdmitTimeout)
		*admitTimer = t
	} else {
		t.Reset(s.cfg.AdmitTimeout)
	}
	select {
	case s.work <- bt:
		t.Stop()
		return true
	case <-t.C:
		return false
	}
}

// opTally is a worker-local count of the ops executed in one batch,
// flushed to the server's shared counters once per batch.
type opTally struct {
	gets, puts, dels, pings, bad, unavail int64
}

// apply executes one request against the engine, recording it in the
// worker's batch tally. Engine errors (a poisoned disk engine) answer
// StatusUnavail: the server keeps the wire protocol up but acknowledges
// nothing it cannot guarantee.
func (s *Server) apply(req Request, t *opTally) Response {
	if s.testApplyDelay > 0 {
		time.Sleep(s.testApplyDelay)
	}
	switch req.Op {
	case OpGet:
		t.gets++
		v, ok, err := s.eng.Get(req.Key)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if !ok {
			return Response{Status: StatusMiss}
		}
		return Response{Status: StatusOK, HasVal: true, Val: v}
	case OpPut:
		t.puts++
		ok, err := s.eng.Put(req.Key, req.Val)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if ok {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpDel:
		t.dels++
		ok, err := s.eng.Del(req.Key)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if ok {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpPing:
		t.pings++
		return Response{Status: StatusOK}
	default:
		t.bad++
		return Response{Status: StatusBadRequest}
	}
}
