package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/lock"
	"btreeperf/internal/metrics"
	"btreeperf/internal/query/index"
)

// Default self-defense settings (Config zero values resolve to these;
// a negative duration disables that guard).
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultAdmitTimeout = 100 * time.Millisecond
)

// DefaultMaxBatch is the default cap on how many pipelined requests the
// connection reader coalesces into one worker-pool dispatch. It trades
// handoff amortization (bigger is cheaper per op) against intra-
// connection parallelism (a deep pipeline split into several batches can
// occupy several workers at once).
const DefaultMaxBatch = 32

// Config parameterizes a Server.
type Config struct {
	Algorithm cbtree.Algorithm
	Capacity  int // node capacity; default 64
	Shards    int // keyspace shards, each an independent engine; default 1
	Workers   int // worker-pool size per shard; default ceil(GOMAXPROCS/Shards)
	Depth     int // per-connection pipeline bound; default 128
	Prefill   int // keys inserted before serving; default 0
	MaxBatch  int // max requests per worker-pool dispatch; default DefaultMaxBatch

	// Self-defense. Zero values resolve to the Default* constants;
	// negative durations disable the guard.
	MaxConns     int           // concurrent connection cap; 0 = unlimited
	IdleTimeout  time.Duration // per-read deadline: a conn that sends no complete frame within it is closed
	WriteTimeout time.Duration // per-write deadline: a peer that won't drain responses is closed
	AdmitTimeout time.Duration // how long a batch may wait for a worker-queue slot before StatusBusy
	QueueDepth   int           // worker queue bound per shard, in batches; default 4*Workers

	// Index enables the secondary index (value → primary keys, one per
	// shard): Put/Del maintain it transactionally per key, OpLookup
	// queries it. Built from the engines' contents in New (so a disk
	// engine's recovered state is indexed before serving); without it
	// OpLookup answers StatusBadRequest.
	Index bool

	// Governor configures the model-driven overload governor; each shard
	// runs its own instance against its own root ρ_w. See GovernorConfig.
	Governor GovernorConfig

	// Engine selects the storage engine of a single-shard server. Nil
	// builds the default in-memory engine from Algorithm/Capacity; a
	// *DiskEngine makes the server durable: each batch's mutations are
	// acknowledged only after the engine's group-commit fsync returns.
	// Algorithm and Capacity are ignored when an Engine is supplied.
	Engine Engine

	// Engines supplies one engine per shard and overrides both Engine
	// and Shards (the shard count becomes len(Engines)). The keyspace is
	// hash-partitioned across them; every engine must be the same kind.
	Engines []Engine

	// ReplAcks, on a replication leader, is the semi-synchronous
	// durability requirement: each batch's mutations are acknowledged
	// only after this many followers have applied and acked up to the
	// batch's durable sequence. Zero (the default) acknowledges on local
	// durability alone — replication stays asynchronous.
	ReplAcks int

	// ReplAckTimeout bounds the semi-sync wait. A batch that misses it
	// has its mutations answered StatusBusy: the write IS durable on the
	// leader (the client must treat it as possibly applied, the standard
	// semi-sync ambiguity), but the promised follower redundancy was not
	// confirmed. Default 2s.
	ReplAckTimeout time.Duration
}

func (c *Config) fill() {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if len(c.Engines) > 0 {
		c.Shards = len(c.Engines)
	} else if c.Engine != nil {
		c.Shards = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = (runtime.GOMAXPROCS(0) + c.Shards - 1) / c.Shards
	}
	if c.Depth <= 0 {
		c.Depth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = DefaultAdmitTimeout
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.ReplAckTimeout == 0 {
		c.ReplAckTimeout = 2 * time.Second
	}
	c.Governor.fill()
}

// Server owns the shard set — each shard an independent engine with its
// own telemetry probe, worker pool, and overload governor — plus the
// connection layer that routes each request's key to its shard. Create
// one with New, serve the binary protocol with Serve, and mount Handler
// on an HTTP listener for /metrics and /debug/model. A single-shard
// server behaves exactly like the pre-sharding one.
type Server struct {
	cfg    Config
	shards []*shard

	start    time.Time
	badReqs  atomic.Int64 // malformed frames (wire-level; op-level bads are per shard)
	connsNow atomic.Int64
	connsTot atomic.Int64

	// Self-defense counters (connection-level; shed counters are per
	// shard).
	connRejects   atomic.Int64 // conns refused with StatusBusy at the cap
	readTimeouts  atomic.Int64 // conns reaped by the idle/read deadline
	writeTimeouts atomic.Int64 // conns reaped by the write deadline

	stopped atomic.Bool

	// repl is the server's replication role — leader hub, follower
	// source, promote hook. Zero value = unreplicated. See repl.go.
	repl replState

	// testApplyDelay slows apply down; set before Serve, tests only.
	testApplyDelay time.Duration

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// lifeMu orders engine shutdown against the telemetry handlers:
	// handlers hold the read side for the duration of a scrape, Close
	// holds the write side while closing the engines, and closed makes
	// every later scrape answer without touching an engine.
	lifeMu sync.RWMutex
	closed bool
}

// New builds the shard set (prefilled if requested), instruments every
// in-memory node lock with its shard's per-level telemetry probe, and
// sizes the per-shard worker pools.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		start: time.Now(),
		conns: make(map[net.Conn]struct{}),
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			id:    i,
			srv:   s,
			probe: metrics.NewTreeProbe(),
			work:  make(chan *batch, cfg.QueueDepth),
		}
		switch {
		case len(cfg.Engines) > 0:
			sh.eng = cfg.Engines[i]
		case cfg.Engine != nil:
			sh.eng = cfg.Engine
		default:
			sh.tree = cbtree.New(cfg.Capacity, cfg.Algorithm)
			sh.eng = &memEngine{t: sh.tree}
		}
		sh.gov = newGovernor(sh, cfg.Governor)
		if cfg.Index {
			sh.idx = index.New()
		}
		s.shards[i] = sh
	}
	for i := 0; i < cfg.Prefill; i++ {
		// A simple odd multiplier scatters the prefill across the key
		// space deterministically; the router then scatters the keys
		// across shards.
		k := int64(uint64(i)*2654435761) % (1 << 40)
		sh := s.shards[s.shardIdx(k)]
		if _, err := sh.eng.Put(k, uint64(i)); err != nil {
			break // the engine is poisoned; Serve will answer StatusUnavail
		}
	}
	if cfg.Prefill > 0 {
		for _, sh := range s.shards {
			sh.eng.Commit()
		}
	}
	if cfg.Index {
		// Index the engines' current contents — prefill above, and any
		// state a disk engine recovered from its journal — before taking
		// traffic; from here on apply keeps the index in step per key.
		s.rebuildIndexes()
	}
	for _, sh := range s.shards {
		if sh.tree != nil {
			probe := sh.probe
			sh.tree.Instrument(func(level int) lock.Probe { return probe.Level(level) })
		}
	}
	return s
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Engine exposes shard 0's storage engine (telemetry, tests). Multi-
// shard servers have one engine per shard; see Len for the merged size.
func (s *Server) Engine() Engine { return s.shards[0].eng }

// Tree exposes shard 0's in-memory tree (tests, stats); nil when the
// shard runs on another engine.
func (s *Server) Tree() *cbtree.Tree { return s.shards[0].tree }

// Probe exposes shard 0's telemetry probe.
func (s *Server) Probe() *metrics.TreeProbe { return s.shards[0].probe }

// Len returns the total key count across all shards.
func (s *Server) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.eng.Len()
	}
	return n
}

// Close releases every shard's engine. It must be called only after
// Serve has returned (the worker pools own the engines while serving);
// it then excludes the telemetry handlers, so a scrape can never race a
// closing engine. Close is idempotent; later scrapes answer 503.
func (s *Server) Close() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	for _, sh := range s.shards {
		if cerr := sh.eng.Close(); cerr != nil {
			err = errors.Join(err, fmt.Errorf("shard %d: %w", sh.id, cerr))
		}
	}
	return err
}

// closeRead shuts down the read side of a connection so its reader sees
// EOF after draining buffered data. Conns without a CloseRead method
// (tests' pipes) fall back to an immediate read deadline.
func closeRead(c net.Conn) {
	if cr, ok := c.(interface{ CloseRead() error }); ok {
		cr.CloseRead()
		return
	}
	c.SetReadDeadline(time.Now())
}

// Serve accepts connections on ln until ctx is cancelled, then drains: it
// stops accepting, lets every already-read request finish and its
// response be written, and closes the connections. It returns nil on a
// clean drain. Every shard's worker pool has exited — and therefore
// every acknowledged batch's group commit has returned — before Serve
// returns, so Close after Serve can never race a final fsync.
//
// Admission is bounded end to end: at most MaxConns connections (excess
// conns get one StatusBusy frame and are closed), at most Depth requests
// pipelined per connection, and at most QueueDepth batches queued per
// shard — a batch that cannot get a queue slot within AdmitTimeout has
// that shard's requests answered StatusBusy in order, so a full queue
// sheds load instead of deadlocking or growing without bound. When a
// shard's overload governor is shedding, puts and deletes routed to that
// shard are answered StatusOverload without touching its tree.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var workerWG sync.WaitGroup
	for _, sh := range s.shards {
		for i := 0; i < s.cfg.Workers; i++ {
			workerWG.Add(1)
			go func(sh *shard) {
				defer workerWG.Done()
				sh.run()
			}(sh)
		}
	}

	govDones := make([]<-chan struct{}, len(s.shards))
	for i, sh := range s.shards {
		govDones[i] = sh.gov.start()
	}

	stop := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() {
			s.stopped.Store(true)
			close(stop)
			ln.Close()
			// Shut down the read side of every connection: readers see
			// EOF, finish submitting what they already read, and the
			// writers drain the pipeline.
			s.connMu.Lock()
			for c := range s.conns {
				closeRead(c)
			}
			s.connMu.Unlock()
		})
	}
	go func() {
		<-ctx.Done()
		shutdown()
	}()

	var connWG sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-stop:
			default:
				acceptErr = err
				shutdown()
			}
			break
		}
		if s.cfg.MaxConns > 0 && s.connsNow.Load() >= int64(s.cfg.MaxConns) {
			// Over the cap: tell the peer why before hanging up, without
			// letting a slow peer stall the accept loop.
			s.connRejects.Add(1)
			connWG.Add(1)
			go func(c net.Conn) {
				defer connWG.Done()
				defer c.Close()
				c.SetWriteDeadline(time.Now().Add(2 * time.Second))
				c.Write(AppendResponse(nil, Response{Status: StatusBusy}))
			}(conn)
			continue
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		// A connection accepted while shutdown was iterating the map
		// would miss its CloseRead; re-check now that it is registered.
		select {
		case <-stop:
			closeRead(conn)
		default:
		}
		s.connsNow.Add(1)
		s.connsTot.Add(1)
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			s.handle(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			s.connsNow.Add(-1)
		}()
	}

	connWG.Wait()
	for _, sh := range s.shards {
		close(sh.work)
	}
	workerWG.Wait()
	for i, sh := range s.shards {
		sh.gov.stop()
		<-govDones[i]
	}
	if acceptErr != nil && !errors.Is(acceptErr, net.ErrClosed) {
		return fmt.Errorf("server: accept: %w", acceptErr)
	}
	return nil
}

// handle runs one connection's batched fast path: this goroutine reads
// frames and dispatches them in pooled batches, a second (connWriter)
// writes responses in request order. The pending channel carries batch
// ordering; the freed channel returns each written batch's job count to
// the reader, bounding the pipeline at Depth requests in flight with one
// channel op per batch instead of one per request.
//
// Batch accumulation never stalls the pipeline: after the (blocking,
// idle-deadlined) read of a batch's first frame, only frames already
// fully buffered join the batch, so a batch is dispatched the moment the
// wire runs dry — a lone request still crosses the server at single-op
// latency.
//
// Self-defense per connection: the first frame of every batch carries an
// IdleTimeout deadline (reaping idle peers and slow-loris
// byte-trickling alike), every response write carries a WriteTimeout
// deadline (reaping peers that pipeline requests but never drain
// responses), and batches that cannot be admitted to a shard's worker
// queue within AdmitTimeout have that shard's requests answered
// StatusBusy in request order.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Every in-flight batch holds at least one of the Depth pipeline
	// credits, so Depth slots can never block on either channel.
	pending := make(chan *batch, s.cfg.Depth)
	freed := make(chan int, s.cfg.Depth)
	writerDone := make(chan struct{})
	go s.connWriter(conn, pending, freed, writerDone)

	// admitTimer is the connection's one reusable admission timer; the
	// old path allocated a time.Timer per contended request.
	var admitTimer *time.Timer
	defer func() {
		if admitTimer != nil {
			admitTimer.Stop()
		}
	}()

	br := bufio.NewReaderSize(conn, 32<<10)
	buf := make([]byte, MaxPayload)
	credits := s.cfg.Depth
	nShards := len(s.shards)
	queryRR := int32(0) // round-robin home shard for cross-shard query ops
	var bt *batch       // accumulating batch; nil between batches
	submit := func() {
		if bt == nil {
			return
		}
		s.dispatch(bt, &admitTimer)
		pending <- bt
		bt = nil
	}

	for {
		if credits == 0 {
			// Depth requests in flight: dispatch what we have and wait
			// for the writer to retire a batch.
			submit()
			credits += <-freed
			continue
		}
		if bt == nil {
			// Between batches: reclaim retired pipeline credits without
			// blocking, and arm the idle deadline covering the whole
			// next frame, unless the server is draining (drain relies on
			// reading buffered requests out before EOF; see closeRead).
			for {
				select {
				case n := <-freed:
					credits += n
					continue
				default:
				}
				break
			}
			if s.cfg.IdleTimeout > 0 && !s.stopped.Load() {
				conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			}
		} else if len(bt.jobs) >= s.cfg.MaxBatch || !frameBuffered(br) {
			submit()
			continue
		}
		req, err := ReadRequest(br, buf)
		if err != nil {
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded):
				if !s.stopped.Load() {
					s.readTimeouts.Add(1)
				}
			case err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF):
				s.badReqs.Add(1)
			}
			break
		}
		credits--
		if bt == nil {
			bt = getBatch(nShards)
		}
		j := bt.add()
		j.req = req
		if isQueryOp(req.Op) {
			// Query ops are cross-shard (the executing worker merges over
			// every shard's engine), so they have no home shard by key:
			// deal them round-robin to spread the merge work. The governor
			// never sheds them — scans are read traffic.
			j.shard = queryRR
			queryRR = (queryRR + 1) % int32(nShards)
			bt.nexec++
			bt.nexecSh[j.shard]++
		} else {
			j.shard = s.shardIdx(req.Key)
			sh := s.shards[j.shard]
			if sh.gov.shedding() && (req.Op == OpPut || req.Op == OpDel) {
				// The shard's governor is shedding update traffic: answer
				// without touching its tree so writers stop driving that
				// root's ρ_w.
				sh.shedOverload.Add(1)
				j.skip = true
				j.resp = Response{Status: StatusOverload}
			} else {
				bt.nexec++
				bt.nexecSh[j.shard]++
			}
		}
	}
	submit()
	close(pending)
	<-writerDone
}

// frameBuffered reports whether br already holds one complete frame, so
// decoding it cannot block. A buffered frame header with an invalid
// length reports true: ReadRequest will surface the protocol error.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, _ := br.Peek(4)
	n := int(binary.BigEndian.Uint32(hdr))
	if n <= 0 || n > MaxPayload {
		return true
	}
	return br.Buffered() >= 4+n
}

// connWriter writes completed batches' responses in request order, each
// batch coalesced into one buffered write, flushing only when the
// pipeline runs dry. It returns every batch's job count on freed (the
// reader's pipeline credits) and recycles the batch.
func (s *Server) connWriter(conn net.Conn, pending <-chan *batch, freed chan<- int, done chan<- struct{}) {
	defer close(done)
	bail := func(err error) {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.writeTimeouts.Add(1)
		}
		// Kill the conn so the reader unblocks, then keep retiring
		// batches so the reader never starves for pipeline credits.
		conn.Close()
		for bt := range pending {
			bt.wait()
			freed <- len(bt.jobs)
			putBatch(bt)
		}
	}
	bw := bufio.NewWriterSize(conn, 32<<10)
	buf := make([]byte, 0, 1<<10)
	for bt := range pending {
		bt.wait()
		buf = buf[:0]
		for i := range bt.jobs {
			buf = AppendResponse(buf, bt.jobs[i].resp)
		}
		n := len(bt.jobs)
		putBatch(bt)
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		_, err := bw.Write(buf)
		if err == nil && len(pending) == 0 {
			err = bw.Flush()
		}
		freed <- n
		if err != nil {
			bail(err)
			return
		}
	}
	bw.Flush()
}

// dispatch hands a full batch to every involved shard's worker queue, or
// answers jobs on the spot: a batch whose every job was already decided
// (governor shedding) never crosses a queue, and a shard that cannot
// admit the batch within AdmitTimeout has its jobs answered StatusBusy
// in request order — other shards' jobs still execute. The batch is
// armed with one completion per involved shard before the first
// dispatch, so the writer's token can only fire after every shard (and
// every admission-path shed) has retired its share. After dispatch the
// batch belongs to the workers/writer; the caller must not touch it.
func (s *Server) dispatch(bt *batch, admitTimer **time.Timer) {
	if bt.nexec == 0 {
		bt.arm(1)
		bt.completeOne()
		return
	}
	involved := int32(0)
	for _, n := range bt.nexecSh {
		if n > 0 {
			involved++
		}
	}
	bt.arm(involved)
	for si, n := range bt.nexecSh {
		if n == 0 {
			continue
		}
		sh := s.shards[si]
		if s.admit(sh, bt, admitTimer) {
			continue
		}
		// This shard's queue stayed full past AdmitTimeout: shed its
		// jobs. Only the reader touches them — the shard's workers never
		// saw the batch.
		shed := 0
		for i := range bt.jobs {
			j := &bt.jobs[i]
			if j.skip || int(j.shard) != si {
				continue
			}
			j.skip = true
			// Query ops get the page-shaped Busy so shape-by-sent-op
			// clients stay in sync (readers accept the bare form too).
			j.resp = Response{Status: StatusBusy, Page: isQueryOp(j.req.Op)}
			shed++
		}
		sh.shedBusy.Add(int64(shed))
		bt.completeOne()
	}
}

// admit places bt on the shard's worker queue, waiting at most
// AdmitTimeout for a slot when the queue is full. It reports false when
// the batch must be shed for that shard (the caller answers StatusBusy).
// The contended path reuses the connection's timer instead of allocating
// one per attempt.
func (s *Server) admit(sh *shard, bt *batch, admitTimer **time.Timer) bool {
	select {
	case sh.work <- bt:
		return true
	default:
	}
	if s.cfg.AdmitTimeout <= 0 {
		return false // fail-fast admission
	}
	t := *admitTimer
	if t == nil {
		t = time.NewTimer(s.cfg.AdmitTimeout)
		*admitTimer = t
	} else {
		t.Reset(s.cfg.AdmitTimeout)
	}
	select {
	case sh.work <- bt:
		t.Stop()
		return true
	case <-t.C:
		return false
	}
}

// opTally is a worker-local count of the ops executed in one batch,
// flushed to the shard's shared counters once per batch.
type opTally struct {
	gets, puts, dels, pings, bad, unavail int64

	// Query traffic: pages served and entries returned. A scan op is one
	// page; scanKeys/lookupKeys accumulate the entries across pages, so
	// keys-per-page is derivable from the pair.
	scans, seeks, lookups, scanKeys, lookupKeys int64

	// Replication refusals: mutations sent to a follower, and getseqs
	// whose staleness floor the follower had not yet applied.
	notLeader, lagging int64
}

// apply executes one request against the shard's engine, recording it in
// the worker's batch tally. Engine errors (a poisoned disk engine)
// answer StatusUnavail: the server keeps the wire protocol up but
// acknowledges nothing it cannot guarantee.
func (s *Server) apply(sh *shard, req Request, t *opTally) Response {
	if s.testApplyDelay > 0 {
		time.Sleep(s.testApplyDelay)
	}
	switch req.Op {
	case OpGet:
		t.gets++
		v, ok, err := sh.eng.Get(req.Key)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if !ok {
			return Response{Status: StatusMiss}
		}
		return Response{Status: StatusOK, HasVal: true, Val: v}
	case OpGetSeq:
		// A bounded-staleness get: on a follower, refuse (StatusLagging)
		// rather than serve state older than the client's floor — the
		// client retries the leader. On a leader the floor is always met
		// (clients learn MinSeq from this leader's own acks), and on an
		// unreplicated server it degrades to a plain get.
		t.gets++
		if f := s.Follower(); f != nil && f.AppliedSeq(sh.id) < req.MinSeq {
			t.lagging++
			return Response{Status: StatusLagging}
		}
		v, ok, err := sh.eng.Get(req.Key)
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if !ok {
			return Response{Status: StatusMiss}
		}
		return Response{Status: StatusOK, HasVal: true, Val: v}
	case OpPut:
		if s.IsFollower() {
			// Followers never mutate outside the replication stream; the
			// client re-routes this to the leader.
			t.notLeader++
			return Response{Status: StatusNotLeader}
		}
		t.puts++
		var ok bool
		var err error
		if sh.idx != nil {
			// The index wraps the tree op so the pair commits as one
			// per-key atomic step (see internal/query/index).
			ok, err = sh.idx.Put(req.Key, req.Val, func() (bool, error) {
				return sh.eng.Put(req.Key, req.Val)
			})
		} else {
			ok, err = sh.eng.Put(req.Key, req.Val)
		}
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if ok {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpDel:
		if s.IsFollower() {
			t.notLeader++
			return Response{Status: StatusNotLeader}
		}
		t.dels++
		var ok bool
		var err error
		if sh.idx != nil {
			ok, err = sh.idx.Del(req.Key, func() (bool, error) {
				return sh.eng.Del(req.Key)
			})
		} else {
			ok, err = sh.eng.Del(req.Key)
		}
		if err != nil {
			t.unavail++
			return Response{Status: StatusUnavail}
		}
		if ok {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpPing:
		t.pings++
		return Response{Status: StatusOK}
	// Query ops tally inside their exec functions: a bad token counts as
	// a bad request, not as a scan, so each request lands in exactly one
	// op-kind bucket.
	case OpScan:
		return s.execScan(req, t)
	case OpSeek:
		return s.execSeek(req, t)
	case OpLookup:
		return s.execLookup(req, t)
	case OpSeqs:
		return s.execSeqs(t)
	default:
		t.bad++
		return Response{Status: StatusBadRequest}
	}
}
