package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/lock"
	"btreeperf/internal/metrics"
)

// Config parameterizes a Server.
type Config struct {
	Algorithm cbtree.Algorithm
	Capacity  int // node capacity; default 64
	Workers   int // worker-pool size; default GOMAXPROCS
	Depth     int // per-connection pipeline bound; default 128
	Prefill   int // keys inserted before serving; default 0
}

func (c *Config) fill() {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = 128
	}
}

// job is one request in flight between a connection reader, a pool
// worker, and the connection writer.
type job struct {
	req  Request
	resp Response
	done chan struct{}
}

// Server owns the tree, its telemetry probe, and the worker pool. Create
// one with New, serve the binary protocol with Serve, and mount Handler
// on an HTTP listener for /metrics and /debug/model.
type Server struct {
	cfg   Config
	tree  *cbtree.Tree
	probe *metrics.TreeProbe
	work  chan *job

	start    time.Time
	opLat    metrics.Hist // per-op tree service time
	opNsSum  atomic.Int64
	opCount  atomic.Int64
	gets     atomic.Int64
	puts     atomic.Int64
	dels     atomic.Int64
	badReqs  atomic.Int64
	connsNow atomic.Int64
	connsTot atomic.Int64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	metricsWin windowState // /metrics scrape window
	modelWin   windowState // /debug/model scrape window
}

// New builds the tree (prefilled if requested), instruments every node
// lock with the per-level telemetry probe, and sizes the worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		tree:  cbtree.New(cfg.Capacity, cfg.Algorithm),
		probe: metrics.NewTreeProbe(),
		work:  make(chan *job, 4*cfg.Workers),
		start: time.Now(),
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < cfg.Prefill; i++ {
		// A simple odd multiplier scatters the prefill across the key
		// space deterministically.
		k := int64(uint64(i)*2654435761) % (1 << 40)
		s.tree.Insert(k, uint64(i))
	}
	s.tree.Instrument(func(level int) lock.Probe { return s.probe.Level(level) })
	return s
}

// Tree exposes the underlying tree (tests, stats).
func (s *Server) Tree() *cbtree.Tree { return s.tree }

// Probe exposes the telemetry probe.
func (s *Server) Probe() *metrics.TreeProbe { return s.probe }

// Serve accepts connections on ln until ctx is cancelled, then drains: it
// stops accepting, lets every already-read request finish and its
// response be written, and closes the connections. It returns nil on a
// clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var workerWG sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for j := range s.work {
				t0 := time.Now()
				j.resp = s.apply(j.req)
				ns := time.Since(t0).Nanoseconds()
				s.opLat.Observe(ns)
				s.opNsSum.Add(ns)
				s.opCount.Add(1)
				close(j.done)
			}
		}()
	}

	stop := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() {
			close(stop)
			ln.Close()
			// Shut down the read side of every connection: readers see
			// EOF, finish submitting what they already read, and the
			// writers drain the pipeline.
			s.connMu.Lock()
			for c := range s.conns {
				if tc, ok := c.(*net.TCPConn); ok {
					tc.CloseRead()
				} else {
					c.SetReadDeadline(time.Now())
				}
			}
			s.connMu.Unlock()
		})
	}
	go func() {
		<-ctx.Done()
		shutdown()
	}()

	var connWG sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-stop:
			default:
				acceptErr = err
				shutdown()
			}
			break
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		// A connection accepted while shutdown was iterating the map
		// would miss its CloseRead; re-check now that it is registered.
		select {
		case <-stop:
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseRead()
			} else {
				conn.SetReadDeadline(time.Now())
			}
		default:
		}
		s.connsNow.Add(1)
		s.connsTot.Add(1)
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			s.handle(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			s.connsNow.Add(-1)
		}()
	}

	connWG.Wait()
	close(s.work)
	workerWG.Wait()
	if acceptErr != nil && !errors.Is(acceptErr, net.ErrClosed) {
		return fmt.Errorf("server: accept: %w", acceptErr)
	}
	return nil
}

// handle runs one connection: this goroutine reads and dispatches
// requests, a second writes responses in request order. The pending
// channel bounds the pipeline (backpressure) and carries ordering.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pending := make(chan *job, s.cfg.Depth)
	writerDone := make(chan struct{})

	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 32<<10)
		buf := make([]byte, 0, 16)
		for j := range pending {
			<-j.done
			buf = AppendResponse(buf[:0], j.resp)
			if _, err := bw.Write(buf); err != nil {
				// Keep consuming so the reader never blocks on pending.
				for range pending {
				}
				return
			}
			if len(pending) == 0 {
				if err := bw.Flush(); err != nil {
					for range pending {
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 32<<10)
	buf := make([]byte, MaxPayload)
	for {
		req, err := ReadRequest(br, buf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.badReqs.Add(1)
			}
			break
		}
		j := &job{req: req, done: make(chan struct{})}
		pending <- j
		s.work <- j
	}
	close(pending)
	<-writerDone
}

// apply executes one request against the tree.
func (s *Server) apply(req Request) Response {
	switch req.Op {
	case OpGet:
		s.gets.Add(1)
		v, ok := s.tree.Search(req.Key)
		if !ok {
			return Response{Status: StatusMiss}
		}
		return Response{Status: StatusOK, HasVal: true, Val: v}
	case OpPut:
		s.puts.Add(1)
		if s.tree.Insert(req.Key, req.Val) {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpDel:
		s.dels.Add(1)
		if s.tree.Delete(req.Key) {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpPing:
		return Response{Status: StatusOK}
	default:
		s.badReqs.Add(1)
		return Response{Status: StatusBadRequest}
	}
}
