package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/lock"
	"btreeperf/internal/metrics"
)

// Default self-defense settings (Config zero values resolve to these;
// a negative duration disables that guard).
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultAdmitTimeout = 100 * time.Millisecond
)

// Config parameterizes a Server.
type Config struct {
	Algorithm cbtree.Algorithm
	Capacity  int // node capacity; default 64
	Workers   int // worker-pool size; default GOMAXPROCS
	Depth     int // per-connection pipeline bound; default 128
	Prefill   int // keys inserted before serving; default 0

	// Self-defense. Zero values resolve to the Default* constants;
	// negative durations disable the guard.
	MaxConns     int           // concurrent connection cap; 0 = unlimited
	IdleTimeout  time.Duration // per-read deadline: a conn that sends no complete frame within it is closed
	WriteTimeout time.Duration // per-write deadline: a peer that won't drain responses is closed
	AdmitTimeout time.Duration // how long a request may wait for a worker-queue slot before StatusBusy
	QueueDepth   int           // worker job-queue bound; default 4*Workers

	// Governor configures the model-driven overload governor; see
	// GovernorConfig.
	Governor GovernorConfig
}

func (c *Config) fill() {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = 128
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = DefaultAdmitTimeout
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	c.Governor.fill()
}

// job is one request in flight between a connection reader, a pool
// worker, and the connection writer.
type job struct {
	req  Request
	resp Response
	done chan struct{}
}

// Server owns the tree, its telemetry probe, and the worker pool. Create
// one with New, serve the binary protocol with Serve, and mount Handler
// on an HTTP listener for /metrics and /debug/model.
type Server struct {
	cfg   Config
	tree  *cbtree.Tree
	probe *metrics.TreeProbe
	work  chan *job

	start    time.Time
	opLat    metrics.Hist // per-op tree service time
	opNsSum  atomic.Int64
	opCount  atomic.Int64
	gets     atomic.Int64
	puts     atomic.Int64
	dels     atomic.Int64
	badReqs  atomic.Int64
	connsNow atomic.Int64
	connsTot atomic.Int64

	// Self-defense counters.
	connRejects   atomic.Int64 // conns refused with StatusBusy at the cap
	shedBusy      atomic.Int64 // requests shed with StatusBusy (queue full)
	shedOverload  atomic.Int64 // updates shed with StatusOverload (governor)
	readTimeouts  atomic.Int64 // conns reaped by the idle/read deadline
	writeTimeouts atomic.Int64 // conns reaped by the write deadline

	gov     *governor
	stopped atomic.Bool

	// testApplyDelay slows apply down; set before Serve, tests only.
	testApplyDelay time.Duration

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	metricsWin windowState // /metrics scrape window
	modelWin   windowState // /debug/model scrape window
}

// New builds the tree (prefilled if requested), instruments every node
// lock with the per-level telemetry probe, and sizes the worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		tree:  cbtree.New(cfg.Capacity, cfg.Algorithm),
		probe: metrics.NewTreeProbe(),
		work:  make(chan *job, cfg.QueueDepth),
		start: time.Now(),
		conns: make(map[net.Conn]struct{}),
	}
	s.gov = newGovernor(s, cfg.Governor)
	for i := 0; i < cfg.Prefill; i++ {
		// A simple odd multiplier scatters the prefill across the key
		// space deterministically.
		k := int64(uint64(i)*2654435761) % (1 << 40)
		s.tree.Insert(k, uint64(i))
	}
	s.tree.Instrument(func(level int) lock.Probe { return s.probe.Level(level) })
	return s
}

// Tree exposes the underlying tree (tests, stats).
func (s *Server) Tree() *cbtree.Tree { return s.tree }

// Probe exposes the telemetry probe.
func (s *Server) Probe() *metrics.TreeProbe { return s.probe }

// closeRead shuts down the read side of a connection so its reader sees
// EOF after draining buffered data. Conns without a CloseRead method
// (tests' pipes) fall back to an immediate read deadline.
func closeRead(c net.Conn) {
	if cr, ok := c.(interface{ CloseRead() error }); ok {
		cr.CloseRead()
		return
	}
	c.SetReadDeadline(time.Now())
}

// Serve accepts connections on ln until ctx is cancelled, then drains: it
// stops accepting, lets every already-read request finish and its
// response be written, and closes the connections. It returns nil on a
// clean drain.
//
// Admission is bounded end to end: at most MaxConns connections (excess
// conns get one StatusBusy frame and are closed), at most Depth requests
// pipelined per connection, and at most QueueDepth requests queued for
// the worker pool — a request that cannot get a queue slot within
// AdmitTimeout is answered StatusBusy in order, so a full queue sheds
// load instead of deadlocking or growing without bound. When the
// overload governor is shedding, puts and deletes are answered
// StatusOverload without touching the tree.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var workerWG sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for j := range s.work {
				t0 := time.Now()
				j.resp = s.apply(j.req)
				ns := time.Since(t0).Nanoseconds()
				s.opLat.Observe(ns)
				s.opNsSum.Add(ns)
				s.opCount.Add(1)
				close(j.done)
			}
		}()
	}

	govDone := s.gov.start()

	stop := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() {
			s.stopped.Store(true)
			close(stop)
			ln.Close()
			// Shut down the read side of every connection: readers see
			// EOF, finish submitting what they already read, and the
			// writers drain the pipeline.
			s.connMu.Lock()
			for c := range s.conns {
				closeRead(c)
			}
			s.connMu.Unlock()
		})
	}
	go func() {
		<-ctx.Done()
		shutdown()
	}()

	var connWG sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-stop:
			default:
				acceptErr = err
				shutdown()
			}
			break
		}
		if s.cfg.MaxConns > 0 && s.connsNow.Load() >= int64(s.cfg.MaxConns) {
			// Over the cap: tell the peer why before hanging up, without
			// letting a slow peer stall the accept loop.
			s.connRejects.Add(1)
			connWG.Add(1)
			go func(c net.Conn) {
				defer connWG.Done()
				defer c.Close()
				c.SetWriteDeadline(time.Now().Add(2 * time.Second))
				c.Write(AppendResponse(nil, Response{Status: StatusBusy}))
			}(conn)
			continue
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		// A connection accepted while shutdown was iterating the map
		// would miss its CloseRead; re-check now that it is registered.
		select {
		case <-stop:
			closeRead(conn)
		default:
		}
		s.connsNow.Add(1)
		s.connsTot.Add(1)
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			s.handle(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			s.connsNow.Add(-1)
		}()
	}

	connWG.Wait()
	close(s.work)
	workerWG.Wait()
	s.gov.stop()
	<-govDone
	if acceptErr != nil && !errors.Is(acceptErr, net.ErrClosed) {
		return fmt.Errorf("server: accept: %w", acceptErr)
	}
	return nil
}

// handle runs one connection: this goroutine reads and dispatches
// requests, a second writes responses in request order. The pending
// channel bounds the pipeline (backpressure) and carries ordering.
//
// Self-defense per connection: every frame read carries an IdleTimeout
// deadline (reaping idle peers and slow-loris byte-trickling alike),
// every response write carries a WriteTimeout deadline (reaping peers
// that pipeline requests but never drain responses), and requests that
// cannot be admitted to the worker queue within AdmitTimeout are
// answered StatusBusy in request order.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pending := make(chan *job, s.cfg.Depth)
	writerDone := make(chan struct{})

	go func() {
		defer close(writerDone)
		bail := func(err error) {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.writeTimeouts.Add(1)
			}
			// Kill the conn so the reader unblocks, then keep consuming
			// so the reader never blocks on pending.
			conn.Close()
			for j := range pending {
				<-j.done
			}
		}
		bw := bufio.NewWriterSize(conn, 32<<10)
		buf := make([]byte, 0, 16)
		for j := range pending {
			<-j.done
			buf = AppendResponse(buf[:0], j.resp)
			if s.cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if _, err := bw.Write(buf); err != nil {
				bail(err)
				return
			}
			if len(pending) == 0 {
				if err := bw.Flush(); err != nil {
					bail(err)
					return
				}
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 32<<10)
	buf := make([]byte, MaxPayload)
	for {
		// Arm the idle deadline covering the whole next frame, unless the
		// server is draining (drain relies on reading buffered requests
		// out before EOF; see closeRead).
		if s.cfg.IdleTimeout > 0 && !s.stopped.Load() {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		req, err := ReadRequest(br, buf)
		if err != nil {
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded):
				if !s.stopped.Load() {
					s.readTimeouts.Add(1)
				}
			case err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF):
				s.badReqs.Add(1)
			}
			break
		}
		j := &job{req: req, done: make(chan struct{})}
		switch {
		case s.gov.shedding() && (req.Op == OpPut || req.Op == OpDel):
			// The governor is shedding update traffic: answer without
			// touching the tree so writers stop driving root ρ_w.
			s.shedOverload.Add(1)
			j.resp = Response{Status: StatusOverload}
			close(j.done)
		default:
			if !s.admit(j) {
				s.shedBusy.Add(1)
				j.resp = Response{Status: StatusBusy}
				close(j.done)
			}
		}
		pending <- j
	}
	close(pending)
	<-writerDone
}

// admit places j on the worker queue, waiting at most AdmitTimeout for a
// slot when the queue is full. It reports false when the request must be
// shed (the caller answers StatusBusy).
func (s *Server) admit(j *job) bool {
	select {
	case s.work <- j:
		return true
	default:
	}
	if s.cfg.AdmitTimeout <= 0 {
		return false // fail-fast admission
	}
	t := time.NewTimer(s.cfg.AdmitTimeout)
	defer t.Stop()
	select {
	case s.work <- j:
		return true
	case <-t.C:
		return false
	}
}

// apply executes one request against the tree.
func (s *Server) apply(req Request) Response {
	if s.testApplyDelay > 0 {
		time.Sleep(s.testApplyDelay)
	}
	switch req.Op {
	case OpGet:
		s.gets.Add(1)
		v, ok := s.tree.Search(req.Key)
		if !ok {
			return Response{Status: StatusMiss}
		}
		return Response{Status: StatusOK, HasVal: true, Val: v}
	case OpPut:
		s.puts.Add(1)
		if s.tree.Insert(req.Key, req.Val) {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpDel:
		s.dels.Add(1)
		if s.tree.Delete(req.Key) {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusMiss}
	case OpPing:
		return Response{Status: StatusOK}
	default:
		s.badReqs.Add(1)
		return Response{Status: StatusBadRequest}
	}
}
