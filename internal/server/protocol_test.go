package server

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"btreeperf/internal/query"
)

// reqEqual compares requests field-wise (Request holds a token slice, so
// == no longer compiles).
func reqEqual(a, b Request) bool {
	return a.Op == b.Op && a.Key == b.Key && a.Val == b.Val && a.Hi == b.Hi &&
		a.Limit == b.Limit && a.MinSeq == b.MinSeq && bytes.Equal(a.Token, b.Token)
}

// respEqual compares responses field-wise.
func respEqual(a, b Response) bool {
	if a.Status != b.Status || a.HasVal != b.HasVal || a.Val != b.Val ||
		a.Page != b.Page || !bytes.Equal(a.Token, b.Token) || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

func TestRequestRoundTrip(t *testing.T) {
	tok := query.EncodeToken(nil, []int64{7, -3, 1 << 40, 0})
	reqs := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: -7, Val: 1<<63 + 9},
		{Op: OpDel, Key: 1 << 40},
		{Op: OpPing},
		{Op: OpGet, Key: -1 << 62},
		{Op: OpSeek, Key: -99},
		{Op: OpScan, Key: 10, Hi: 1 << 30, Limit: 128},
		{Op: OpScan, Key: -1 << 40, Hi: 1 << 40, Limit: 1, Token: tok},
		{Op: OpLookup, Val: 0xdeadbeef, Limit: 32},
		{Op: OpLookup, Val: 1, Limit: 256, Token: tok},
		{Op: OpSeqs},
		{Op: OpGetSeq, Key: 123, MinSeq: 1 << 50},
		{Op: OpGetSeq, Key: -1 << 40, MinSeq: 0},
		{Op: OpGetSeq, Key: 0, MinSeq: -1},
	}
	var wire []byte
	for _, r := range reqs {
		wire = AppendRequest(wire, r)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, MaxPayload)
	for i, want := range reqs {
		got, err := ReadRequest(br, buf)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want.Op != OpPut && want.Op != OpLookup {
			want.Val = 0
		}
		if !reqEqual(got, want) {
			t.Fatalf("request %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(br, buf); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, HasVal: true, Val: 12345},
		{Status: StatusMiss},
		{Status: StatusOK},
		{Status: StatusBadRequest},
	}
	var wire []byte
	for _, r := range resps {
		wire = AppendResponse(wire, r)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, MaxPayload)
	for i, want := range resps {
		got, err := ReadResponse(br, buf)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !respEqual(got, want) {
			t.Fatalf("response %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestPageResponseRoundTrip(t *testing.T) {
	tok := query.EncodeToken(nil, []int64{100, 200})
	resps := []Response{
		{Status: StatusOK, Page: true}, // empty page, range exhausted
		{Status: StatusOK, Page: true, Entries: []query.KV{{Key: 1, Val: 2}}},
		{Status: StatusOK, Page: true,
			Entries: []query.KV{{Key: -5, Val: 0}, {Key: 0, Val: 9}, {Key: 77, Val: 1 << 60}},
			Token:   tok},
		{Status: StatusBadRequest, Page: true},
		{Status: StatusBusy}, // bare point-shaped shed reply on a query op
	}
	var wire []byte
	for _, r := range resps {
		wire = AppendResponse(wire, r)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, MaxPayload)
	for i, want := range resps {
		got, err := ReadPageResponse(br, buf)
		if err != nil {
			t.Fatalf("page response %d: %v", i, err)
		}
		if !respEqual(got, want) {
			t.Fatalf("page response %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadPageResponse(br, buf); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

// TestPageResponseMaxSize pins the largest page frame under MaxPayload.
func TestPageResponseMaxSize(t *testing.T) {
	ents := make([]query.KV, MaxScanLimit)
	cursors := make([]int64, query.MaxShards)
	resp := Response{Status: StatusOK, Page: true, Entries: ents,
		Token: query.EncodeToken(nil, cursors)}
	wire := AppendResponse(nil, resp)
	if payload := len(wire) - 4; payload > MaxPayload {
		t.Fatalf("max page payload %d exceeds MaxPayload %d", payload, MaxPayload)
	}
	got, err := ReadPageResponse(bufio.NewReader(bytes.NewReader(wire)), make([]byte, MaxPayload))
	if err != nil {
		t.Fatalf("decoding max page: %v", err)
	}
	if !respEqual(got, resp) {
		t.Fatal("max page drifted through round trip")
	}
}

func TestMalformedFrames(t *testing.T) {
	buf := make([]byte, MaxPayload)
	cases := map[string][]byte{
		"zero length":    {0, 0, 0, 0},
		"oversized":      {0, 1, 0, 0}, // 65536 > MaxPayload
		"unknown opcode": {0, 0, 0, 1, 99},
		"short get":      {0, 0, 0, 5, byte(OpGet), 1, 2, 3, 4},
		"long ping":      {0, 0, 0, 2, byte(OpPing), 0},
		"truncated":      {0, 0, 0, 9, byte(OpGet), 1, 2},
		"short scan":     {0, 0, 0, 9, byte(OpScan), 0, 0, 0, 0, 0, 0, 0, 0},
		"short lookup":   {0, 0, 0, 9, byte(OpLookup), 0, 0, 0, 0, 0, 0, 0, 0},
	}
	// A scan whose toklen disagrees with the frame length must be a
	// protocol error, never an over-read: 21-byte frame claiming 8 token
	// bytes it does not carry.
	bad := AppendRequest(nil, Request{Op: OpScan, Key: 0, Hi: 100})
	bad[len(bad)-1] = 8
	cases["scan toklen overrun"] = bad
	// Same for an oversized token-length claim.
	huge := AppendRequest(nil, Request{Op: OpLookup, Val: 1})
	huge[len(huge)-2] = 0xff
	huge[len(huge)-1] = 0xff
	cases["lookup toklen huge"] = huge
	for name, wire := range cases {
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(wire)), buf); err == nil {
			t.Errorf("%s: accepted", name)
		} else if err == io.EOF {
			t.Errorf("%s: clean EOF for a partial frame", name)
		}
	}
}

func TestMalformedPageFrames(t *testing.T) {
	buf := make([]byte, MaxPayload)
	cases := map[string][]byte{
		"short page":     {0, 0, 0, 3, StatusOK, 0, 0},
		"count too big":  {0, 0, 0, 5, StatusOK, 0xff, 0xff, 0, 0},
		"entries absent": {0, 0, 0, 5, StatusOK, 0, 2, 0, 0},
	}
	// A page whose toklen overruns the frame.
	bad := AppendResponse(nil, Response{Status: StatusOK, Page: true,
		Entries: []query.KV{{Key: 1, Val: 1}}})
	bad[len(bad)-1] = 9
	cases["page toklen overrun"] = bad
	for name, wire := range cases {
		if _, err := ReadPageResponse(bufio.NewReader(bytes.NewReader(wire)), buf); err == nil {
			t.Errorf("%s: accepted", name)
		} else if err == io.EOF {
			t.Errorf("%s: clean EOF for a partial frame", name)
		}
	}
}
