package server

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: -7, Val: 1<<63 + 9},
		{Op: OpDel, Key: 1 << 40},
		{Op: OpPing},
		{Op: OpGet, Key: -1 << 62},
	}
	var wire []byte
	for _, r := range reqs {
		wire = AppendRequest(wire, r)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, MaxPayload)
	for i, want := range reqs {
		got, err := ReadRequest(br, buf)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want.Op != OpPut {
			want.Val = 0
		}
		if got != want {
			t.Fatalf("request %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(br, buf); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, HasVal: true, Val: 12345},
		{Status: StatusMiss},
		{Status: StatusOK},
		{Status: StatusBadRequest},
	}
	var wire []byte
	for _, r := range resps {
		wire = AppendResponse(wire, r)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, MaxPayload)
	for i, want := range resps {
		got, err := ReadResponse(br, buf)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("response %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestMalformedFrames(t *testing.T) {
	buf := make([]byte, MaxPayload)
	cases := map[string][]byte{
		"zero length":    {0, 0, 0, 0},
		"oversized":      {0, 0, 10, 0},
		"unknown opcode": {0, 0, 0, 1, 99},
		"short get":      {0, 0, 0, 5, byte(OpGet), 1, 2, 3, 4},
		"long ping":      {0, 0, 0, 2, byte(OpPing), 0},
		"truncated":      {0, 0, 0, 9, byte(OpGet), 1, 2},
	}
	for name, wire := range cases {
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(wire)), buf); err == nil {
			t.Errorf("%s: accepted", name)
		} else if err == io.EOF {
			t.Errorf("%s: clean EOF for a partial frame", name)
		}
	}
}
