package server

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/query"
)

// ErrShed is returned by RClient's typed helpers when the server kept
// answering StatusBusy/StatusOverload after every allowed retry: the
// request was refused for capacity reasons, not failed.
var ErrShed = errors.New("server: request shed after retries")

// RetryConfig parameterizes an RClient. Zero values resolve to the
// defaults documented per field.
type RetryConfig struct {
	OpTimeout   time.Duration // per-attempt deadline; default 2s
	DialTimeout time.Duration // per-reconnect deadline; default 2s
	MaxAttempts int           // total tries per op (1 = no retries); default 4
	BaseBackoff time.Duration // first retry delay; default 5ms
	MaxBackoff  time.Duration // backoff cap; default 250ms

	// Retry budget: every operation earns BudgetRatio tokens (capped at
	// BudgetBurst) and every retry spends one, so at sustained overload
	// retries add at most BudgetRatio amplification instead of doubling
	// the load the server is already shedding. Default .1 / 20.
	BudgetRatio float64
	BudgetBurst float64

	Seed uint64 // backoff-jitter seed; 0 draws from crypto/rand via rand/v2
}

func (c *RetryConfig) fill() {
	if c.OpTimeout == 0 {
		c.OpTimeout = 2 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 5 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.BudgetRatio == 0 {
		c.BudgetRatio = 0.1
	}
	if c.BudgetBurst == 0 {
		c.BudgetBurst = 20
	}
}

// RetryStats counts an RClient's resilience events.
type RetryStats struct {
	Ops           int64
	Retries       int64
	Reconnects    int64
	BudgetStops   int64 // retries forgone because the budget was empty
	ShedResponses int64 // Busy/Overload statuses observed (pre-retry)
	NetErrors     int64 // transport errors observed (pre-retry)
	FinalFailures int64 // ops that exhausted retries with an error
	FinalShed     int64 // ops that exhausted retries still shed
}

// RClient is a resilient single-op client: each operation carries a
// deadline, transport errors reconnect automatically, and retryable
// statuses (StatusBusy, StatusOverload) and transient network errors are
// retried with capped exponential backoff, full jitter, and a retry
// budget so retries cannot amplify an overload. Safe for concurrent use;
// operations are serialized on one connection.
type RClient struct {
	addr string
	cfg  RetryConfig

	mu     sync.Mutex
	c      *Client // nil when disconnected
	budget float64
	rng    *rand.Rand

	ops         atomic.Int64
	retries     atomic.Int64
	reconnects  atomic.Int64
	budgetStops atomic.Int64
	shedResps   atomic.Int64
	netErrors   atomic.Int64
	finalFail   atomic.Int64
	finalShed   atomic.Int64
}

// DialResilient connects an RClient. The initial dial is itself given
// MaxAttempts tries, so a server still coming up does not fail the
// constructor.
func DialResilient(addr string, cfg RetryConfig) (*RClient, error) {
	cfg.fill()
	var src rand.Source
	if cfg.Seed != 0 {
		src = rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)
	} else {
		src = rand.NewPCG(rand.Uint64(), rand.Uint64())
	}
	r := &RClient{addr: addr, cfg: cfg, budget: cfg.BudgetBurst, rng: rand.New(src)}
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoff(attempt))
		}
		r.mu.Lock()
		lastErr = r.connectLocked()
		r.mu.Unlock()
		if lastErr == nil {
			return r, nil
		}
	}
	return nil, fmt.Errorf("server: dial %s: %w", addr, lastErr)
}

// connectLocked (re)establishes the connection; call with mu held.
func (r *RClient) connectLocked() error {
	if r.c != nil {
		return nil
	}
	c, err := DialTimeout(r.addr, r.cfg.DialTimeout)
	if err != nil {
		return err
	}
	c.SetOpTimeout(r.cfg.OpTimeout)
	r.c = c
	return nil
}

// backoff returns the jittered delay before the attempt-th retry
// (attempt >= 1): full jitter over [base/2, base], base doubling per
// attempt up to MaxBackoff.
func (r *RClient) backoff(attempt int) time.Duration {
	base := r.cfg.BaseBackoff << (attempt - 1)
	if base > r.cfg.MaxBackoff || base <= 0 {
		base = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int64N(int64(base)/2 + 1))
	r.mu.Unlock()
	return base/2 + j
}

// spendRetryToken reports whether the budget allows one more retry.
func (r *RClient) spendRetryToken() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget < 1 {
		return false
	}
	r.budget--
	return true
}

// Do runs one request with retries. When every allowed attempt was shed,
// it returns the last (Busy/Overload) response with a nil error — the
// status carries the verdict; use the typed helpers for an error. When
// every attempt hit a transport error it returns the last error.
func (r *RClient) Do(req Request) (Response, error) { return r.do(req, false) }

// DoPage is Do for query ops (scan, seek, lookup), reading the response
// in the page wire shape. Shed pages (StatusBusy) are retried exactly
// like shed point ops — the server keeps shed replies to query ops
// page-shaped, so the retry loop sees the status either way.
func (r *RClient) DoPage(req Request) (Response, error) { return r.do(req, true) }

func (r *RClient) do(req Request, page bool) (Response, error) {
	r.ops.Add(1)
	r.mu.Lock()
	r.budget += r.cfg.BudgetRatio
	if r.budget > r.cfg.BudgetBurst {
		r.budget = r.cfg.BudgetBurst
	}
	r.mu.Unlock()

	var lastResp Response
	var lastErr error
	haveResp := false
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !r.spendRetryToken() {
				r.budgetStops.Add(1)
				break
			}
			r.retries.Add(1)
			time.Sleep(r.backoff(attempt))
		}

		r.mu.Lock()
		if err := r.connectLocked(); err != nil {
			r.mu.Unlock()
			r.netErrors.Add(1)
			lastErr, haveResp = err, false
			if attempt+1 >= r.cfg.MaxAttempts {
				break
			}
			continue
		}
		c := r.c
		var resp Response
		var err error
		if page {
			resp, err = c.DoPage(req)
		} else {
			resp, err = c.Do(req)
		}
		if err != nil {
			// The conn is in an unknown state (a response may still be in
			// flight); drop it so the next attempt starts clean.
			c.Close()
			if r.c == c {
				r.c = nil
			}
			r.mu.Unlock()
			r.netErrors.Add(1)
			r.reconnects.Add(1)
			lastErr, haveResp = err, false
			if attempt+1 >= r.cfg.MaxAttempts {
				break
			}
			continue
		}
		r.mu.Unlock()

		if Retryable(resp.Status) {
			r.shedResps.Add(1)
			lastResp, lastErr, haveResp = resp, nil, true
			if attempt+1 >= r.cfg.MaxAttempts {
				break
			}
			continue
		}
		return resp, nil
	}
	if haveResp {
		r.finalShed.Add(1)
		return lastResp, nil
	}
	r.finalFail.Add(1)
	return Response{}, lastErr
}

// shedErr wraps a still-shed final status.
func shedErr(status byte) error {
	name := "busy"
	if status == StatusOverload {
		name = "overloaded"
	}
	return fmt.Errorf("%w (server %s)", ErrShed, name)
}

// Get looks key up, retrying as configured.
func (r *RClient) Get(key int64) (uint64, bool, error) {
	resp, err := r.Do(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	if Retryable(resp.Status) {
		return 0, false, shedErr(resp.Status)
	}
	return resp.Val, resp.Status == StatusOK, nil
}

// Put stores key→val, retrying as configured.
func (r *RClient) Put(key int64, val uint64) (bool, error) {
	resp, err := r.Do(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	if Retryable(resp.Status) {
		return false, shedErr(resp.Status)
	}
	return resp.Status == StatusOK, nil
}

// Del removes key, retrying as configured.
func (r *RClient) Del(key int64) (bool, error) {
	resp, err := r.Do(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	if Retryable(resp.Status) {
		return false, shedErr(resp.Status)
	}
	return resp.Status == StatusOK, nil
}

// Scan fetches one page of [lo, hi), retrying as configured; the token
// contract matches Client.Scan. Stateless tokens make query retries
// safe: a replayed token re-serves the same page.
func (r *RClient) Scan(lo, hi int64, limit int, token []byte) ([]query.KV, []byte, error) {
	resp, err := r.DoPage(Request{Op: OpScan, Key: lo, Hi: hi, Limit: limit, Token: token})
	if err != nil {
		return nil, nil, err
	}
	if Retryable(resp.Status) {
		return nil, nil, shedErr(resp.Status)
	}
	if resp.Status != StatusOK {
		return nil, nil, fmt.Errorf("server: scan: %s", StatusName(resp.Status))
	}
	return resp.Entries, resp.Token, nil
}

// SeekGE returns the smallest stored key >= key, retrying as configured.
func (r *RClient) SeekGE(key int64) (int64, uint64, bool, error) {
	resp, err := r.DoPage(Request{Op: OpSeek, Key: key})
	if err != nil {
		return 0, 0, false, err
	}
	if Retryable(resp.Status) {
		return 0, 0, false, shedErr(resp.Status)
	}
	if resp.Status != StatusOK {
		return 0, 0, false, fmt.Errorf("server: seek: %s", StatusName(resp.Status))
	}
	if len(resp.Entries) == 0 {
		return 0, 0, false, nil
	}
	return resp.Entries[0].Key, resp.Entries[0].Val, true, nil
}

// Lookup fetches one page of primary keys indexed under val, retrying as
// configured.
func (r *RClient) Lookup(val uint64, limit int, token []byte) ([]int64, []byte, error) {
	resp, err := r.DoPage(Request{Op: OpLookup, Val: val, Limit: limit, Token: token})
	if err != nil {
		return nil, nil, err
	}
	if Retryable(resp.Status) {
		return nil, nil, shedErr(resp.Status)
	}
	if resp.Status != StatusOK {
		return nil, nil, fmt.Errorf("server: lookup: %s", StatusName(resp.Status))
	}
	keys := make([]int64, len(resp.Entries))
	for i, e := range resp.Entries {
		keys[i] = e.Key
	}
	return keys, resp.Token, nil
}

// Seqs returns the server's per-shard replication sequences, retrying
// as configured; see Client.Seqs.
func (r *RClient) Seqs() ([]int64, error) {
	resp, err := r.DoPage(Request{Op: OpSeqs})
	if err != nil {
		return nil, err
	}
	if Retryable(resp.Status) {
		return nil, shedErr(resp.Status)
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("server: seqs: %s", StatusName(resp.Status))
	}
	seqs := make([]int64, len(resp.Entries))
	for _, e := range resp.Entries {
		if e.Key < 0 || e.Key >= int64(len(seqs)) {
			return nil, fmt.Errorf("server: seqs: shard %d out of range", e.Key)
		}
		seqs[e.Key] = int64(e.Val)
	}
	return seqs, nil
}

// Ping round-trips a no-op.
func (r *RClient) Ping() error {
	resp, err := r.Do(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if Retryable(resp.Status) {
		return shedErr(resp.Status)
	}
	return nil
}

// Stats snapshots the resilience counters.
func (r *RClient) Stats() RetryStats {
	return RetryStats{
		Ops:           r.ops.Load(),
		Retries:       r.retries.Load(),
		Reconnects:    r.reconnects.Load(),
		BudgetStops:   r.budgetStops.Load(),
		ShedResponses: r.shedResps.Load(),
		NetErrors:     r.netErrors.Load(),
		FinalFailures: r.finalFail.Load(),
		FinalShed:     r.finalShed.Load(),
	}
}

// Close tears down the connection; in-flight operations error out.
func (r *RClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	if r.c != nil {
		err = r.c.Close()
		r.c = nil
	}
	return err
}
