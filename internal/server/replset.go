package server

import (
	"errors"
	"fmt"
	"sync/atomic"

	"btreeperf/internal/query"
)

// ErrLagging is returned when a follower refused a bounded-staleness
// read because its applied sequence had not reached the client's floor.
// ReplicaSet handles it internally (the read retries on the leader);
// callers of Client.GetSeq see it directly.
var ErrLagging = errors.New("server: follower lagging behind read floor")

// ShardIndex is the server's key→shard routing, exported so
// replication-aware clients (ReplicaSet here, btload's replica mode)
// can maintain per-shard read floors client-side. It is a pure function
// of (key, n): stable across restarts and processes.
func ShardIndex(key int64, n int) int { return shardIndex(key, n) }

// ReplicaSetConfig parameterizes DialReplicaSet.
type ReplicaSetConfig struct {
	Leader   string   // leader address (mutations, fallback reads)
	Replicas []string // follower addresses (gets and scans fan out here)
	Retry    RetryConfig
}

// ReplicaTargetStats counts one read target's traffic.
type ReplicaTargetStats struct {
	Addr    string
	Gets    int64 // gets served by this target (including misses)
	Scans   int64 // scan pages served by this target
	Errors  int64 // transport/status failures that fell back to the leader
	Lagging int64 // bounded-staleness refusals that fell back to the leader
}

// replicaTarget is one follower connection plus its counters.
type replicaTarget struct {
	addr    string
	c       *RClient
	gets    atomic.Int64
	scans   atomic.Int64
	errs    atomic.Int64
	lagging atomic.Int64
}

// ReplicaSet is a replication-aware client: mutations go to the leader,
// gets and scans fan out across the followers round-robin, and every
// read is bounded-staleness safe — the client tracks, per shard, the
// highest durable sequence the leader has acknowledged to it (stamped
// on put/del responses in replicated mode) and sends it as the read's
// floor. A follower that has not applied that far answers StatusLagging
// and the read retries on the leader, so the client never observes a
// state older than its own acknowledged writes (monotonic
// read-your-writes, per client). Safe for concurrent use.
type ReplicaSet struct {
	leader   *RClient
	replicas []*replicaTarget
	nShards  int
	minSeq   []atomic.Int64 // per shard: read floor learned from leader acks
	rr       atomic.Uint64

	leaderReads  atomic.Int64 // reads served by the leader (fallback or no replicas)
	leaderFalls  atomic.Int64 // reads that started on a replica and fell back
	staleRefused atomic.Int64 // StatusLagging refusals observed (never stale data)
}

// DialReplicaSet connects to the leader (learning the shard count from
// its seqs probe) and to every replica.
func DialReplicaSet(cfg ReplicaSetConfig) (*ReplicaSet, error) {
	leader, err := DialResilient(cfg.Leader, cfg.Retry)
	if err != nil {
		return nil, err
	}
	seqs, err := leader.Seqs()
	if err != nil {
		leader.Close()
		return nil, fmt.Errorf("server: replica set: leader seqs: %w", err)
	}
	rs := &ReplicaSet{
		leader:  leader,
		nShards: len(seqs),
		minSeq:  make([]atomic.Int64, len(seqs)),
	}
	for _, addr := range cfg.Replicas {
		c, err := DialResilient(addr, cfg.Retry)
		if err != nil {
			rs.Close()
			return nil, fmt.Errorf("server: replica set: replica %s: %w", addr, err)
		}
		rs.replicas = append(rs.replicas, &replicaTarget{addr: addr, c: c})
	}
	return rs, nil
}

// NumShards returns the leader's shard count.
func (rs *ReplicaSet) NumShards() int { return rs.nShards }

// observeSeq raises a shard's read floor to an acknowledged sequence.
func (rs *ReplicaSet) observeSeq(shard int, seq int64) {
	for {
		cur := rs.minSeq[shard].Load()
		if seq <= cur || rs.minSeq[shard].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// MinSeq returns the current read floor for the shard owning key.
func (rs *ReplicaSet) MinSeq(key int64) int64 {
	return rs.minSeq[shardIndex(key, rs.nShards)].Load()
}

// Put stores key→val on the leader and absorbs the acknowledged durable
// sequence into the shard's read floor.
func (rs *ReplicaSet) Put(key int64, val uint64) (bool, error) {
	resp, err := rs.leader.Do(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	if Retryable(resp.Status) {
		return false, shedErr(resp.Status)
	}
	if resp.Status == StatusNotLeader {
		return false, errors.New("server: replica set: leader target is a follower")
	}
	if resp.HasVal {
		rs.observeSeq(shardIndex(key, rs.nShards), int64(resp.Val))
	}
	return resp.Status == StatusOK, nil
}

// Del removes key on the leader, absorbing the acked sequence.
func (rs *ReplicaSet) Del(key int64) (bool, error) {
	resp, err := rs.leader.Do(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	if Retryable(resp.Status) {
		return false, shedErr(resp.Status)
	}
	if resp.Status == StatusNotLeader {
		return false, errors.New("server: replica set: leader target is a follower")
	}
	if resp.HasVal {
		rs.observeSeq(shardIndex(key, rs.nShards), int64(resp.Val))
	}
	return resp.Status == StatusOK, nil
}

// pick chooses the next replica round-robin; nil when the set has none.
func (rs *ReplicaSet) pick() *replicaTarget {
	if len(rs.replicas) == 0 {
		return nil
	}
	return rs.replicas[rs.rr.Add(1)%uint64(len(rs.replicas))]
}

// Get reads key with bounded staleness: a follower serves it only if
// its applied sequence has reached this client's floor for the key's
// shard; otherwise (lagging, shed, or transport failure) the leader
// serves it.
func (rs *ReplicaSet) Get(key int64) (uint64, bool, error) {
	t := rs.pick()
	if t == nil {
		rs.leaderReads.Add(1)
		return rs.leader.Get(key)
	}
	floor := rs.minSeq[shardIndex(key, rs.nShards)].Load()
	resp, err := t.c.Do(Request{Op: OpGetSeq, Key: key, MinSeq: floor})
	if err == nil {
		switch resp.Status {
		case StatusOK:
			t.gets.Add(1)
			return resp.Val, true, nil
		case StatusMiss:
			t.gets.Add(1)
			return 0, false, nil
		case StatusLagging:
			t.lagging.Add(1)
			rs.staleRefused.Add(1)
		default:
			t.errs.Add(1)
		}
	} else {
		t.errs.Add(1)
	}
	rs.leaderFalls.Add(1)
	rs.leaderReads.Add(1)
	return rs.leader.Get(key)
}

// Scan fetches one page of [lo, hi) from a follower (scans carry no
// staleness bound — range reads accept the follower's applied state),
// falling back to the leader on failure.
func (rs *ReplicaSet) Scan(lo, hi int64, limit int, token []byte) ([]query.KV, []byte, error) {
	t := rs.pick()
	if t == nil {
		rs.leaderReads.Add(1)
		return rs.leader.Scan(lo, hi, limit, token)
	}
	ents, next, err := t.c.Scan(lo, hi, limit, token)
	if err == nil {
		t.scans.Add(1)
		return ents, next, nil
	}
	t.errs.Add(1)
	rs.leaderFalls.Add(1)
	rs.leaderReads.Add(1)
	return rs.leader.Scan(lo, hi, limit, token)
}

// ReplicaSetStats summarizes the set's routing.
type ReplicaSetStats struct {
	LeaderReads  int64 // reads the leader served
	LeaderFalls  int64 // reads that started on a replica and fell back
	StaleRefused int64 // StatusLagging refusals (each fell back, none served stale)
	Targets      []ReplicaTargetStats
}

// Stats snapshots the routing counters.
func (rs *ReplicaSet) Stats() ReplicaSetStats {
	st := ReplicaSetStats{
		LeaderReads:  rs.leaderReads.Load(),
		LeaderFalls:  rs.leaderFalls.Load(),
		StaleRefused: rs.staleRefused.Load(),
	}
	for _, t := range rs.replicas {
		st.Targets = append(st.Targets, ReplicaTargetStats{
			Addr:    t.addr,
			Gets:    t.gets.Load(),
			Scans:   t.scans.Load(),
			Errors:  t.errs.Load(),
			Lagging: t.lagging.Load(),
		})
	}
	return st
}

// Close tears down every connection.
func (rs *ReplicaSet) Close() error {
	err := rs.leader.Close()
	for _, t := range rs.replicas {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
