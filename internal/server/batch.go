package server

import (
	"sync"
	"sync/atomic"
)

// The batched serving fast path.
//
// The old request path heap-allocated a job and a done channel per
// request and crossed the worker queue one operation at a time, so at
// high pipeline depth the serving scaffolding — allocator, scheduler,
// channel handoffs — cost more than the tree. The fast path amortizes
// all of it across pipeline depth: the connection reader decodes every
// frame already buffered on the wire into one pooled batch (a slab of
// jobs, no per-request channels), the batch crosses the worker queue as
// a single unit, the worker executes its jobs in slab order, completion
// is one token on the batch's reused ready channel, and the writer
// coalesces the whole batch's responses into one buffered write. In the
// steady state nothing on this path allocates: batches and their job
// slabs are recycled through a sync.Pool.
//
// With a sharded server the batch is still the unit of pipelining: the
// reader stamps each job with its key's shard and the batch is handed to
// every involved shard's worker queue. Each shard's worker executes only
// its own jobs (disjoint slab entries, so no coordination is needed) and
// retires one completion; the writer's token fires when the last shard
// finishes. A single-shard server degenerates to exactly the old
// one-dispatch one-token path.

// job is one request in flight inside a batch. Requests whose response
// was decided at admission time (governor or queue shedding) carry
// skip=true and are not executed by the worker.
type job struct {
	req   Request
	resp  Response
	shard int32 // owning shard, stamped by the connection reader
	skip  bool
}

// batch is one reader→worker→writer unit of pipelined requests, in
// request order. The ready channel (capacity 1, reused across the
// batch's pooled lifetimes) carries the single completion token to the
// connection writer once every armed completion has been retired.
type batch struct {
	jobs    []job
	nexec   int     // jobs the workers must execute (len(jobs) minus skips)
	nexecSh []int32 // per-shard executable counts; len = server shard count
	pending atomic.Int32
	ready   chan struct{}
}

var batchPool = sync.Pool{
	New: func() any {
		return &batch{ready: make(chan struct{}, 1)}
	},
}

// getBatch returns an empty batch sized for nShards; its job slab and
// shard-count slab keep the capacity they grew to in earlier lives, so
// steady-state accumulation never allocates.
func getBatch(nShards int) *batch {
	b := batchPool.Get().(*batch)
	b.jobs = b.jobs[:0]
	b.nexec = 0
	if cap(b.nexecSh) < nShards {
		b.nexecSh = make([]int32, nShards)
	} else {
		b.nexecSh = b.nexecSh[:nShards]
		for i := range b.nexecSh {
			b.nexecSh[i] = 0
		}
	}
	b.pending.Store(0)
	return b
}

// putBatch recycles b. The caller must hold the completion token (have
// returned from wait), so no worker can still touch the slab.
func putBatch(b *batch) { batchPool.Put(b) }

// add appends one zeroed job slot and returns it for in-place decoding.
func (b *batch) add() *job {
	if n := len(b.jobs); n < cap(b.jobs) {
		b.jobs = b.jobs[:n+1]
		b.jobs[n] = job{}
	} else {
		b.jobs = append(b.jobs, job{})
	}
	return &b.jobs[len(b.jobs)-1]
}

// arm sets how many completions the batch waits for: one per shard it
// was dispatched to (or one, for a batch answered on the admission
// path). Must be called before the first dispatch.
func (b *batch) arm(n int32) { b.pending.Store(n) }

// completeOne retires one armed completion; the last one hands the batch
// to its writer. The atomic add is the synchronization edge that makes
// every shard's response writes visible to the writer.
func (b *batch) completeOne() {
	if b.pending.Add(-1) == 0 {
		b.ready <- struct{}{}
	}
}

// wait blocks until the batch's responses are all in place.
func (b *batch) wait() { <-b.ready }
