package server

import "sync"

// The batched serving fast path.
//
// The old request path heap-allocated a job and a done channel per
// request and crossed the worker queue one operation at a time, so at
// high pipeline depth the serving scaffolding — allocator, scheduler,
// channel handoffs — cost more than the tree. The fast path amortizes
// all of it across pipeline depth: the connection reader decodes every
// frame already buffered on the wire into one pooled batch (a slab of
// jobs, no per-request channels), the batch crosses the worker queue as
// a single unit, the worker executes its jobs in slab order, completion
// is one token on the batch's reused ready channel, and the writer
// coalesces the whole batch's responses into one buffered write. In the
// steady state nothing on this path allocates: batches and their job
// slabs are recycled through a sync.Pool.

// job is one request in flight inside a batch. Requests whose response
// was decided at admission time (governor or queue shedding) carry
// skip=true and are not executed by the worker.
type job struct {
	req  Request
	resp Response
	skip bool
}

// batch is one reader→worker→writer unit of pipelined requests, in
// request order. The ready channel (capacity 1, reused across the
// batch's pooled lifetimes) carries the single completion token from
// the worker — or from the admission path, for fully-shed batches — to
// the connection writer.
type batch struct {
	jobs  []job
	nexec int // jobs the worker must execute (len(jobs) minus skips)
	ready chan struct{}
}

var batchPool = sync.Pool{
	New: func() any {
		return &batch{ready: make(chan struct{}, 1)}
	},
}

// getBatch returns an empty batch; its job slab keeps the capacity it
// grew to in earlier lives, so steady-state accumulation never allocates.
func getBatch() *batch {
	b := batchPool.Get().(*batch)
	b.jobs = b.jobs[:0]
	b.nexec = 0
	return b
}

// putBatch recycles b. The caller must hold the completion token (have
// returned from wait), so no worker can still touch the slab.
func putBatch(b *batch) { batchPool.Put(b) }

// add appends one zeroed job slot and returns it for in-place decoding.
func (b *batch) add() *job {
	if n := len(b.jobs); n < cap(b.jobs) {
		b.jobs = b.jobs[:n+1]
		b.jobs[n] = job{}
	} else {
		b.jobs = append(b.jobs, job{})
	}
	return &b.jobs[len(b.jobs)-1]
}

// complete hands the batch to its writer. Called exactly once per fill,
// by the worker that executed it or by the admission path that shed it.
func (b *batch) complete() { b.ready <- struct{}{} }

// wait blocks until the batch's responses are all in place.
func (b *batch) wait() { <-b.ready }
