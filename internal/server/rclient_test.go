package server

import (
	"bufio"
	"errors"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"btreeperf/internal/cbtree"
)

// scriptedServer runs handler once per accepted connection on an
// ephemeral port and returns the address; cleanup via t.Cleanup.
func scriptedServer(t *testing.T, handler func(conn int, c net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(i, c)
		}
	}()
	return ln.Addr().String()
}

// answer responds with status to every request on c.
func answer(c net.Conn, status func(n int) byte) {
	defer c.Close()
	br := bufio.NewReader(c)
	buf := make([]byte, MaxPayload)
	for n := 0; ; n++ {
		if _, err := ReadRequest(br, buf); err != nil {
			return
		}
		if _, err := c.Write(AppendResponse(nil, Response{Status: status(n)})); err != nil {
			return
		}
	}
}

// TestClientRecvDeadline is the regression for the hang: the server
// accepts and reads but never answers; Recv must fail with a deadline
// error instead of blocking forever.
func TestClientRecvDeadline(t *testing.T) {
	addr := scriptedServer(t, func(_ int, c net.Conn) {
		defer c.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(100 * time.Millisecond)
	t0 := time.Now()
	_, err = c.Do(Request{Op: OpPing})
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Do on a mute server: %v, want deadline exceeded", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("deadline took %v to fire", d)
	}
}

// TestClientRecvClosed: a Close from another goroutine surfaces
// net.ErrClosed out of a blocked Recv, not a hang or a panic.
func TestClientRecvClosed(t *testing.T) {
	addr := scriptedServer(t, func(_ int, c net.Conn) {
		defer c.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Recv after Close: %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after Close")
	}
}

// TestRClientRetriesBusy: a Busy answer is retried and the retry
// succeeds; the caller never sees the shed.
func TestRClientRetriesBusy(t *testing.T) {
	addr := scriptedServer(t, func(_ int, c net.Conn) {
		answer(c, func(n int) byte {
			if n == 0 {
				return StatusBusy
			}
			return StatusOK
		})
	})
	rc, err := DialResilient(addr, RetryConfig{BaseBackoff: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.Ping(); err != nil {
		t.Fatalf("Ping through one Busy: %v", err)
	}
	st := rc.Stats()
	if st.Retries != 1 || st.ShedResponses != 1 {
		t.Fatalf("stats %+v, want exactly one retry of one shed response", st)
	}
}

// TestRClientReconnects: a connection killed mid-stream is redialed
// transparently.
func TestRClientReconnects(t *testing.T) {
	var conns atomic.Int64
	addr := scriptedServer(t, func(i int, c net.Conn) {
		conns.Add(1)
		if i == 0 { // the conn serving the first op: kill it unanswered
			br := bufio.NewReader(c)
			ReadRequest(br, make([]byte, MaxPayload))
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			c.Close()
			return
		}
		answer(c, func(int) byte { return StatusOK })
	})
	rc, err := DialResilient(addr, RetryConfig{
		OpTimeout: 200 * time.Millisecond, BaseBackoff: time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.Ping(); err != nil {
		t.Fatalf("Ping across a reset: %v", err)
	}
	if st := rc.Stats(); st.Reconnects == 0 {
		t.Fatalf("stats %+v, want a reconnect", st)
	}
	if conns.Load() < 2 {
		t.Fatalf("server saw %d conns, want >= 2", conns.Load())
	}
}

// TestRClientBudgetBoundsRetryStorm: with the server shedding every
// request, retries stop once the budget is spent — the client cannot
// amplify an overload indefinitely.
func TestRClientBudgetBoundsRetryStorm(t *testing.T) {
	var reqs atomic.Int64
	addr := scriptedServer(t, func(_ int, c net.Conn) {
		answer(c, func(int) byte { reqs.Add(1); return StatusOverload })
	})
	rc, err := DialResilient(addr, RetryConfig{
		MaxAttempts: 100, // budget, not attempts, must be the binding cap
		BaseBackoff: time.Millisecond,
		BudgetRatio: 0.5, BudgetBurst: 3,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const ops = 10
	for i := 0; i < ops; i++ {
		if _, err := rc.Put(int64(i), 1); !errors.Is(err, ErrShed) {
			t.Fatalf("op %d on all-shedding server: %v, want ErrShed", i, err)
		}
	}
	st := rc.Stats()
	if st.BudgetStops == 0 {
		t.Fatalf("stats %+v: budget never became the binding constraint", st)
	}
	// ops requests + at most burst + ratio-earned retries.
	maxReqs := int64(ops + 3 + ops/2 + 1)
	if got := reqs.Load(); got > maxReqs {
		t.Fatalf("server saw %d requests for %d ops — retry amplification past the budget (max %d)", got, ops, maxReqs)
	}
	if st.FinalShed != ops {
		t.Fatalf("stats %+v, want %d final sheds", st, ops)
	}
}

// TestRClientAgainstRealServer: end-to-end sanity on the actual Server.
func TestRClientAgainstRealServer(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Algorithm: cbtree.LinkType})
	defer shutdown()
	rc, err := DialResilient(addr, RetryConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if fresh, err := rc.Put(10, 100); err != nil || !fresh {
		t.Fatalf("put: %v fresh=%v", err, fresh)
	}
	if v, ok, err := rc.Get(10); err != nil || !ok || v != 100 {
		t.Fatalf("get: v=%d ok=%v err=%v", v, ok, err)
	}
	if ok, err := rc.Del(10); err != nil || !ok {
		t.Fatalf("del: %v ok=%v", err, ok)
	}
}
