package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"btreeperf/internal/core"
)

// quickCfg is a small but non-trivial configuration for pool tests.
func quickCfg() Config {
	cfg := Paper(core.NLC, 0.3, 5)
	cfg.InitialItems = 3000
	cfg.Ops = 400
	cfg.Warmup = 40
	return cfg
}

// TestRunSeedsParallelDeterministic asserts the tentpole guarantee: the
// aggregate of RunSeeds is byte-identical at any worker count, because
// replications are independent and reduced in seed order.
func TestRunSeedsParallelDeterministic(t *testing.T) {
	t.Cleanup(func() { SetParallelism(1) })
	cfg := quickCfg()
	seeds := DefaultSeeds(5)

	SetParallelism(1)
	want, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	wantText := renderReplicated(want)

	for _, workers := range []int{4, 7} {
		SetParallelism(workers)
		got, err := RunSeeds(cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallel %d: Replicated differs from sequential run", workers)
		}
		if gotText := renderReplicated(got); gotText != wantText {
			t.Errorf("parallel %d: rendered summary differs:\n%s\nvs\n%s", workers, gotText, wantText)
		}
	}
}

// renderReplicated formats every value in a Replicated (dereferencing the
// per-seed results so the text is free of pointer addresses).
func renderReplicated(rep *Replicated) string {
	var b strings.Builder
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "%+v\n", *r)
	}
	fmt.Fprintf(&b, "%+v %+v %+v %+v %v",
		rep.RespSearch, rep.RespInsert, rep.RespDelete, rep.RootRhoW, rep.Unstable)
	return b.String()
}

func TestPoolProgressCounters(t *testing.T) {
	t.Cleanup(func() { SetParallelism(1) })
	SetParallelism(2)
	ResetPoolProgress()
	cfg := quickCfg()
	rep, err := RunSeeds(cfg, DefaultSeeds(3))
	if err != nil {
		t.Fatal(err)
	}
	p := PoolProgress()
	if p.Queued != 3 || p.Done != 3 {
		t.Errorf("progress queued/done = %d/%d, want 3/3", p.Queued, p.Done)
	}
	var completed int64
	for _, r := range rep.Results {
		completed += int64(r.Completed)
	}
	if p.Ops != completed {
		t.Errorf("progress ops = %d, want %d", p.Ops, completed)
	}
	ResetPoolProgress()
	if p := PoolProgress(); p != (Progress{}) {
		t.Errorf("progress after reset = %+v", p)
	}
}

func TestSetParallelismDefaults(t *testing.T) {
	t.Cleanup(func() { SetParallelism(1) })
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetParallelism(0) -> %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(1)
	if slot() != nil {
		t.Error("sequential pool should have no semaphore")
	}
}

func TestForEachPointOrderAndError(t *testing.T) {
	t.Cleanup(func() { SetParallelism(1) })
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		out := make([]int, 8)
		if err := ForEachPoint(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		err := ForEachPoint(6, func(i int) error {
			if i >= 2 {
				return fmt.Errorf("point %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "point 2 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index failure", workers, err)
		}
	}
}

// TestUnstableRunLeaksNoGoroutines drives the simulator into its
// MaxInFlight unstable abort and asserts every DES process goroutine is
// unwound (sim.run defers Environment.Close).
func TestUnstableRunLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := quickCfg()
	cfg.Lambda = 50 // far beyond NLC saturation
	cfg.Ops = 2000
	cfg.Warmup = 10
	cfg.MaxInFlight = 25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unstable {
		t.Fatal("run expected to be unstable")
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after unstable run", before, runtime.NumGoroutine())
}

// Parallel replications must also wind down all their DES goroutines.
func TestRunSeedsParallelLeaksNoGoroutines(t *testing.T) {
	t.Cleanup(func() { SetParallelism(1) })
	SetParallelism(4)
	before := runtime.NumGoroutine()
	if _, err := RunSeeds(quickCfg(), DefaultSeeds(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after parallel RunSeeds", before, runtime.NumGoroutine())
}
