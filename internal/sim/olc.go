package sim

import (
	"btreeperf/internal/des"
	"btreeperf/internal/workload"

	"btreeperf/internal/btree"
)

// Optimistic lock-coupling in the simulator: readers descend taking no
// locks, sampling each node's version word before the node access and
// re-validating it after; a failed validation restarts the descent from
// the root, and after olcMaxAttempts failed descents the operation falls
// back to the locked Link-type path. Writers are exactly the Link-type
// protocol, entered through the version-aware lock helpers so every W
// critical section is bracketed by version bumps.
//
// olcMaxAttempts must stay in sync with core.OLCMaxAttempts and
// cbtree's olcMaxAttempts: the analysis truncates its restart series at
// the same depth.
const olcMaxAttempts = 3

// readBegin samples n's version word; ok is false while a writer holds
// the node (version odd).
func (s *session) readBegin(n *btree.Node) (uint64, bool) {
	v := s.ver[n]
	return v, v&1 == 0
}

// validate reports whether n's version word is unchanged since readBegin.
func (s *session) validate(n *btree.Node, v uint64) bool { return s.ver[n] == v }

// olcAccess pays one latch-free node read: the full (possibly on-disk)
// access on the first visit, the warm in-memory cost on a revisit — a
// restarted descent re-walks a path the failed attempt just faulted
// into the buffer. This matches the analytical model's accounting of
// failed descents at memory speed.
func (s *session) olcAccess(p *des.Proc, n *btree.Node, visited map[*btree.Node]bool) {
	if visited[n] {
		s.work(p, s.cfg.Costs.SearchMem*s.cfg.Costs.Dilation)
		return
	}
	visited[n] = true
	s.access(p, n.Level())
}

// olcOp performs one operation under optimistic lock-coupling.
func (s *session) olcOp(p *des.Proc, op workload.Op, key int64) float64 {
	visited := make(map[*btree.Node]bool)
	if op == workload.Search {
		for attempt := 0; attempt < olcMaxAttempts; attempt++ {
			if done, ok := s.olcTrySearch(p, key, visited); ok {
				return done
			}
			s.readRestarts++
		}
		s.readFallbacks++
		return s.linkOp(p, op, key)
	}

	for attempt := 0; attempt < olcMaxAttempts; attempt++ {
		leaf, stack, ok := s.olcTryDescend(p, key, visited)
		if !ok {
			s.readRestarts++
			continue
		}
		return s.olcUpdateAt(p, op, key, leaf, stack)
	}
	s.readFallbacks++
	return s.linkOp(p, op, key)
}

// olcTrySearch makes one latch-free descent to the leaf and reads it,
// reporting failure on the first version conflict.
func (s *session) olcTrySearch(p *des.Proc, key int64, visited map[*btree.Node]bool) (float64, bool) {
	n := s.tree.Root()
	for {
		v, stable := s.readBegin(n)
		if !stable {
			return 0, false
		}
		s.olcAccess(p, n, visited)
		if !n.Covers(key) {
			right := n.Right()
			if !s.validate(n, v) {
				return 0, false
			}
			s.crossings++
			n = right
			continue
		}
		if n.IsLeaf() {
			n.LeafGet(key)
			if !s.validate(n, v) {
				return 0, false
			}
			return p.Now(), true
		}
		child := n.FindChild(key)
		if !s.validate(n, v) {
			return 0, false
		}
		n = child
	}
}

// olcTryDescend makes one latch-free descent to the (unlocked) leaf
// covering key, collecting the ancestor stack for split repair. The leaf
// itself is not validated: the update W-locks it.
func (s *session) olcTryDescend(p *des.Proc, key int64, visited map[*btree.Node]bool) (*btree.Node, []*btree.Node, bool) {
	var stack []*btree.Node
	n := s.tree.Root()
	for !n.IsLeaf() {
		v, stable := s.readBegin(n)
		if !stable {
			return nil, nil, false
		}
		s.olcAccess(p, n, visited)
		if !n.Covers(key) {
			right := n.Right()
			if !s.validate(n, v) {
				return nil, nil, false
			}
			s.crossings++
			n = right
			continue
		}
		child := n.FindChild(key)
		if !s.validate(n, v) {
			return nil, nil, false
		}
		stack = append(stack, n)
		n = child
	}
	return n, stack, true
}

// olcUpdateAt applies op at the latch-free-located leaf: the Link-type
// update tail (W-lock, move right, modify, half-split repair) under
// version-bumping locks.
func (s *session) olcUpdateAt(p *des.Proc, op workload.Op, key int64, n *btree.Node, stack []*btree.Node) float64 {
	g := s.acquireNode(p, n, des.Write)
	s.work(p, s.m())
	n, g = s.linkMoveRight(p, n, g, key, des.Write)

	if op == workload.Delete {
		s.tree.LeafDelete(n, key)
		return s.finishUpdate(p, []held{{n, g}})
	}
	s.tree.LeafInsert(n, key, uint64(key))
	return s.linkRepairSplits(p, n, g, stack)
}
