package sim

import (
	"math"
	"testing"

	"btreeperf/internal/core"
	"btreeperf/internal/shape"
	"btreeperf/internal/workload"
)

// These tests reproduce the paper's central validation claim (§5.3,
// Figures 3–8): the analytical framework and the simulator predict the
// same response times. Agreement is tight at low and moderate loads and
// loosens in the saturation knee, where the per-level Poisson assumption
// underestimates the burstiness that lock coupling induces.

// validationModel returns the paper-configuration analysis model.
func validationModel(t *testing.T, d float64) core.Model {
	t.Helper()
	s, err := shape.New(40000, 13, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return core.Model{Shape: s, Costs: core.PaperCosts(d)}
}

func runPoint(t *testing.T, a core.Algorithm, lambda float64) *Replicated {
	t.Helper()
	cfg := Paper(a, lambda, 5)
	cfg.Ops = 6000
	cfg.Warmup = 600
	rep, err := RunSeeds(cfg, DefaultSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / b }

func TestAnalysisMatchesSimulationModerateLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	m := validationModel(t, 5)
	mix := core.Workload{Mix: workload.PaperMix}
	for _, a := range []core.Algorithm{core.NLC, core.OD, core.Link} {
		lmax, err := core.MaxThroughput(a, m, mix, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		lambda := 0.3 * lmax
		if math.IsInf(lambda, 1) || lambda > 50 {
			lambda = 50
		}
		res, err := core.Analyze(a, m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			t.Fatal(err)
		}
		rep := runPoint(t, a, lambda)
		if rep.Unstable {
			t.Fatalf("%v unstable at 0.3·λmax", a)
		}
		// The OD model underestimates knee-region contention (per-level
		// Poisson assumption vs. lock-coupling burstiness); its tolerance
		// is looser.
		tol := 0.12
		if a == core.OD {
			tol = 0.20
		}
		if e := relErr(rep.RespSearch.Mean, res.RespSearch); e > tol {
			t.Errorf("%v search: sim %.2f vs model %.2f (rel %.2f)", a, rep.RespSearch.Mean, res.RespSearch, e)
		}
		if e := relErr(rep.RespInsert.Mean, res.RespInsert); e > tol+0.03 {
			t.Errorf("%v insert: sim %.2f vs model %.2f (rel %.2f)", a, rep.RespInsert.Mean, res.RespInsert, e)
		}
	}
}

func TestNLCAnalysisTracksKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	m := validationModel(t, 5)
	mix := core.Workload{Mix: workload.PaperMix}
	lmax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// At 0.6·λmax, responses agree within 15% and ρ_w within 0.08.
	lambda := 0.6 * lmax
	res, err := core.AnalyzeNLC(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
	if err != nil {
		t.Fatal(err)
	}
	rep := runPoint(t, core.NLC, lambda)
	if e := relErr(rep.RespInsert.Mean, res.RespInsert); e > 0.15 {
		t.Errorf("0.6·λmax insert: sim %.2f vs model %.2f", rep.RespInsert.Mean, res.RespInsert)
	}
	if d := math.Abs(rep.RootRhoW.Mean - res.RootRhoW()); d > 0.08 {
		t.Errorf("0.6·λmax root ρ_w: sim %.3f vs model %.3f", rep.RootRhoW.Mean, res.RootRhoW())
	}
	// At 0.9·λmax both blow up; root ρ_w still agrees closely (Figure 10).
	lambda = 0.9 * lmax
	res, err = core.AnalyzeNLC(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
	if err != nil {
		t.Fatal(err)
	}
	rep9 := runPoint(t, core.NLC, lambda)
	if d := math.Abs(rep9.RootRhoW.Mean - res.RootRhoW()); d > 0.10 {
		t.Errorf("0.9·λmax root ρ_w: sim %.3f vs model %.3f", rep9.RootRhoW.Mean, res.RootRhoW())
	}
	low := runPoint(t, core.NLC, 0.05*lmax)
	if rep9.RespSearch.Mean < 2*low.RespSearch.Mean {
		t.Errorf("no blow-up near saturation: %.2f vs low-load %.2f",
			rep9.RespSearch.Mean, low.RespSearch.Mean)
	}
}

func TestSimulatorConfirmsInstabilityBeyondModelMax(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	m := validationModel(t, 5)
	mix := core.Workload{Mix: workload.PaperMix}
	lmax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Paper(core.NLC, 2*lmax, 5)
	cfg.Ops = 10000
	cfg.MaxInFlight = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unstable {
		t.Fatalf("simulator stable at 2×model λmax (%v)", 2*lmax)
	}
}

func TestRhoWGrowthMirrorsFigure10(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Root writer presence grows faster than linearly in λ for NLC.
	m := validationModel(t, 5)
	mix := core.Workload{Mix: workload.PaperMix}
	lmax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	r1 := runPoint(t, core.NLC, 0.3*lmax)
	r2 := runPoint(t, core.NLC, 0.75*lmax)
	// Superlinear: 2.5× the rate should more than 2.5× ρ_w.
	if r2.RootRhoW.Mean < 2.5*r1.RootRhoW.Mean {
		t.Errorf("ρ_w growth sublinear: %.3f @0.3λmax vs %.3f @0.75λmax",
			r1.RootRhoW.Mean, r2.RootRhoW.Mean)
	}
}

func TestLevelWaitsMatchModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Per-level W-lock waits from the simulator line up with the model's
	// W(i) at a mid-range NLC load.
	m := validationModel(t, 5)
	mix := core.Workload{Mix: workload.PaperMix}
	lmax, err := core.MaxThroughput(core.NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.5 * lmax
	res, err := core.AnalyzeNLC(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Paper(core.NLC, lambda, 5)
	cfg.Ops = 10000
	simRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The root queue is where contention lives; compare there. The model
	// underestimates the root wait and overestimates the level below
	// (compensating biases — response times still agree), so the per-level
	// check is a factor-2.5 agreement, not a percentage one.
	rootSim := simRes.LevelWaits[len(simRes.LevelWaits)-1]
	rootModel := res.Level(res.Levels[len(res.Levels)-1].Level)
	if rootModel.W <= 0 {
		t.Fatal("model reports zero root wait at half load")
	}
	if ratio := rootSim.MeanWaitW / rootModel.W; ratio > 2.5 || ratio < 0.4 {
		t.Errorf("root W wait: sim %.3f vs model %.3f (ratio %.2f)", rootSim.MeanWaitW, rootModel.W, ratio)
	}
	// And both must grow with load.
	resLow, err := core.AnalyzeNLC(m, core.Workload{Lambda: 0.2 * lmax, Mix: workload.PaperMix})
	if err != nil {
		t.Fatal(err)
	}
	if resLow.Level(resLow.Levels[len(resLow.Levels)-1].Level).W >= rootModel.W {
		t.Error("model root wait not increasing in λ")
	}
}
