package sim

import (
	"math"
	"testing"

	"btreeperf/internal/core"
	"btreeperf/internal/workload"
)

// smallCfg is a scaled-down configuration that runs fast in tests: a
// 4,000-item tree at N=13 (4 levels) with 2,000 concurrent operations.
func smallCfg(a core.Algorithm, lambda float64) Config {
	cfg := Paper(a, lambda, 5)
	cfg.InitialItems = 4000
	cfg.Ops = 2000
	cfg.Warmup = 200
	return cfg
}

func TestValidate(t *testing.T) {
	good := Paper(core.NLC, 0.01, 5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NodeCap = 2 },
		func(c *Config) { c.InitialItems = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Ops = 0 },
		func(c *Config) { c.Warmup = c.Ops },
		func(c *Config) { c.TTrans = -1 },
		func(c *Config) { c.Mix = workload.Mix{QS: 1, QI: 1, QD: 1} },
	}
	for i, mutate := range bad {
		c := Paper(core.NLC, 0.01, 5)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunCompletesAndIsConsistent(t *testing.T) {
	for _, a := range []core.Algorithm{core.NLC, core.OD, core.Link, core.OLC} {
		t.Run(a.String(), func(t *testing.T) {
			cfg := smallCfg(a, 0.01)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Unstable {
				t.Fatal("low load reported unstable")
			}
			if res.Completed != cfg.Ops {
				t.Fatalf("completed %d of %d", res.Completed, cfg.Ops)
			}
			if res.Measured != cfg.Ops-cfg.Warmup {
				t.Fatalf("measured %d", res.Measured)
			}
			if res.RespSearch.Mean <= 0 || res.RespInsert.Mean <= 0 {
				t.Fatalf("non-positive responses: %+v %+v", res.RespSearch, res.RespInsert)
			}
			if res.Duration <= 0 {
				t.Fatal("no virtual time elapsed")
			}
			if len(res.LevelWaits) != res.TreeHeight && len(res.LevelWaits) < 4 {
				t.Fatalf("level waits: %d levels", len(res.LevelWaits))
			}
		})
	}
}

func TestTreeInvariantsSurviveConcurrency(t *testing.T) {
	// After thousands of concurrent operations under each algorithm, the
	// tree must still be structurally perfect. (Link-type leaves empty
	// leaves in place, which merge-at-empty invariants allow.)
	for _, a := range []core.Algorithm{core.NLC, core.OD, core.Link, core.OLC} {
		t.Run(a.String(), func(t *testing.T) {
			cfg := smallCfg(a, 0.05) // contended
			cfg.MaxInFlight = 100000
			s, err := runForTree(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.tree.CheckInvariants(); err != nil {
				t.Fatalf("tree corrupted: %v", err)
			}
		})
	}
}

// runForTree runs a simulation, returning the internal session so tests
// can inspect the final tree.
func runForTree(cfg Config) (*session, error) {
	return runCapture(cfg)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallCfg(core.NLC, 0.02)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RespInsert.Mean != b.RespInsert.Mean || a.Duration != b.Duration ||
		a.RootRhoW != b.RootRhoW || a.Splits != b.Splits {
		t.Fatalf("runs with identical seeds differ: %+v vs %+v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallCfg(core.NLC, 0.02)
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.RespInsert.Mean == b.RespInsert.Mean {
		t.Fatal("different seeds produced identical response times")
	}
}

func TestResponseGrowsWithLoad(t *testing.T) {
	cfg1 := smallCfg(core.NLC, 0.005)
	cfg2 := smallCfg(core.NLC, 0.04)
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.RespInsert.Mean <= r1.RespInsert.Mean {
		t.Fatalf("insert response did not grow with load: %v vs %v",
			r1.RespInsert.Mean, r2.RespInsert.Mean)
	}
	if r2.RootRhoW <= r1.RootRhoW {
		t.Fatalf("root ρ_w did not grow with load: %v vs %v", r1.RootRhoW, r2.RootRhoW)
	}
}

func TestNLCSaturationDetected(t *testing.T) {
	cfg := smallCfg(core.NLC, 1.0) // far beyond NLC's capacity
	cfg.MaxInFlight = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unstable {
		t.Fatal("overload not detected")
	}
	if res.Completed >= cfg.Ops {
		t.Fatal("unstable run completed all operations")
	}
}

func TestLinkSustainsLoadThatSaturatesNLC(t *testing.T) {
	// The core of Figure 12: a load far beyond NLC's maximum is easy for
	// the Link-type algorithm.
	lambda := 1.0
	nlcCfg := smallCfg(core.NLC, lambda)
	nlcCfg.MaxInFlight = 500
	linkCfg := smallCfg(core.Link, lambda)
	linkCfg.MaxInFlight = 500
	nlcRes, err := Run(nlcCfg)
	if err != nil {
		t.Fatal(err)
	}
	linkRes, err := Run(linkCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !nlcRes.Unstable {
		t.Error("NLC carried a load it should not")
	}
	if linkRes.Unstable {
		t.Error("Link-type failed a load it should carry")
	}
}

func TestODRestartsMatchSplitProbability(t *testing.T) {
	// Redo rate ≈ q_i·Pr[F(1)] of update operations reaching an unsafe
	// leaf. With N=13 and the paper mix, Pr[F(1)] ≈ 0.068.
	cfg := smallCfg(core.OD, 0.01)
	cfg.Ops = 4000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	updates := float64(cfg.Ops) * cfg.Mix.UpdateShare()
	rate := float64(res.Restarts) / updates
	// Inserts restart on full leaves; deletes on 1-item leaves (rare).
	if rate < 0.015 || rate > 0.15 {
		t.Errorf("restart rate %v outside plausible range", rate)
	}
}

func TestLinkCrossingsAreRare(t *testing.T) {
	// Figure 9's observation: link chases are negligible.
	cfg := smallCfg(core.Link, 0.1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perOp := float64(res.LinkCrossings) / float64(res.Completed)
	if perOp > 0.05 {
		t.Errorf("link crossings per op = %v, expected ≪ 1", perOp)
	}
}

func TestSearchResponseMatchesSerialCostAtLowLoad(t *testing.T) {
	// At vanishing load the mean search response approaches Σ Se(i):
	// 4-level tree, 2 in-memory levels, D=5 → 5+5+1+1 = 12.
	cfg := smallCfg(core.NLC, 0.001)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeHeight != 4 {
		t.Fatalf("tree height %d, want 4", res.TreeHeight)
	}
	want := 12.0
	if math.Abs(res.RespSearch.Mean-want) > 1.0 {
		t.Errorf("search response %v, want ≈%v", res.RespSearch.Mean, want)
	}
}

func TestRecoveryVariantsRankInSimulation(t *testing.T) {
	// §7 in simulation: naive recovery's responses exceed leaf-only's,
	// which exceed no-recovery's, at a moderate load.
	base := smallCfg(core.OD, 0.02)
	base.TTrans = 100
	base.MaxInFlight = 100000

	responses := map[core.RecoveryPolicy]float64{}
	for _, rec := range []core.RecoveryPolicy{core.NoRecovery, core.LeafOnly, core.NaiveRecovery} {
		cfg := base
		cfg.Recovery = rec
		if rec == core.NoRecovery {
			cfg.TTrans = 0
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Unstable {
			t.Fatalf("%v unstable at test load", rec)
		}
		responses[rec] = res.RespInsert.Mean
	}
	if !(responses[core.LeafOnly] > responses[core.NoRecovery]) {
		t.Errorf("leaf-only %v should exceed none %v",
			responses[core.LeafOnly], responses[core.NoRecovery])
	}
	if !(responses[core.NaiveRecovery] >= responses[core.LeafOnly]) {
		t.Errorf("naive %v should be ≥ leaf-only %v",
			responses[core.NaiveRecovery], responses[core.LeafOnly])
	}
}

func TestRunSeeds(t *testing.T) {
	cfg := smallCfg(core.Link, 0.02)
	cfg.Ops = 800
	cfg.Warmup = 100
	rep, err := RunSeeds(cfg, DefaultSeeds(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results", len(rep.Results))
	}
	if rep.RespInsert.N != 3 || rep.RespInsert.Mean <= 0 {
		t.Fatalf("bad aggregate: %+v", rep.RespInsert)
	}
	if rep.RespMean() <= 0 {
		t.Fatal("RespMean")
	}
	if _, err := RunSeeds(cfg, nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestContentsSurviveConcurrency(t *testing.T) {
	// All keys reported as present at the end must actually be findable
	// sequentially; checked via the invariant checker plus a sample of
	// searches on the final tree.
	cfg := smallCfg(core.Link, 0.05)
	s, err := runCapture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := 0
	s.tree.Range(0, 1<<31, func(int64, uint64) bool { found++; return true })
	if found != s.tree.Len() {
		t.Fatalf("Range saw %d keys, Len = %d", found, s.tree.Len())
	}
}

func TestPercentilesOrdered(t *testing.T) {
	res, err := Run(smallCfg(core.NLC, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Percentiles
	if !(p.P50 > 0 && p.P50 <= p.P90 && p.P90 <= p.P95 && p.P95 <= p.P99 && p.P99 <= p.Max) {
		t.Fatalf("percentiles out of order: %+v", p)
	}
	// The median sits near the mix-weighted mean at moderate load.
	if p.P50 > 3*res.RespMean() {
		t.Fatalf("median %v vs mean %v", p.P50, res.RespMean())
	}
}

func TestPercentilesGrowWithLoad(t *testing.T) {
	low, err := Run(smallCfg(core.NLC, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(smallCfg(core.NLC, 0.55))
	if err != nil {
		t.Fatal(err)
	}
	if high.Percentiles.P50 <= low.Percentiles.P50 ||
		high.Percentiles.P99 <= low.Percentiles.P99 {
		t.Fatalf("percentiles did not grow with load: %+v vs %+v",
			low.Percentiles, high.Percentiles)
	}
	// Contention spreads the distribution: near saturation the p99 is far
	// above the median.
	if high.Percentiles.P99 < 2*high.Percentiles.P50 {
		t.Fatalf("no dispersion near saturation: %+v", high.Percentiles)
	}
}
