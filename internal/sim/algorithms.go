package sim

import (
	"btreeperf/internal/btree"
	"btreeperf/internal/core"
	"btreeperf/internal/des"
	"btreeperf/internal/workload"
)

// held is one lock retained by a lock-coupling update.
type held struct {
	node  *btree.Node
	grant *des.Grant
}

// ---------------------------------------------------------------------------
// Shared R-lock-coupled search (Naive Lock-coupling and Optimistic Descent
// searches follow the identical protocol).

// coupledSearch descends with R-lock coupling: the child is locked before
// the parent's lock is released. It returns the operation's completion
// time.
func (s *session) coupledSearch(p *des.Proc, key int64) float64 {
	n, g := s.lockRoot(p, readClass)
	for {
		s.access(p, n.Level())
		if n.IsLeaf() {
			n.LeafGet(key)
			s.lockOf(n).Release(g)
			return p.Now()
		}
		child := n.FindChild(key)
		cg := s.lockOf(child).Acquire(p, des.Read)
		s.lockOf(n).Release(g)
		n, g = child, cg
	}
}

// ---------------------------------------------------------------------------
// Naive Lock-coupling updates.

// nlcUpdate descends placing W locks, releasing all ancestors whenever the
// child is safe for the operation, then applies the leaf modification and
// any restructuring under the retained locks.
func (s *session) nlcUpdate(p *des.Proc, op workload.Op, key int64) float64 {
	root, g := s.lockRoot(p, writeClass)
	chain := []held{{root, g}}
	n := root
	for !n.IsLeaf() {
		s.access(p, n.Level())
		child := n.FindChild(key)
		cg := s.lockOf(child).Acquire(p, des.Write)
		safe := s.tree.InsertSafe(child)
		if op == workload.Delete {
			safe = s.tree.DeleteSafe(child)
		}
		if safe {
			s.releaseAll(chain)
			chain = chain[:0]
		}
		chain = append(chain, held{child, cg})
		n = child
	}
	s.work(p, s.m())
	if op == workload.Insert {
		s.tree.LeafInsert(n, key, uint64(key))
		s.propagateSplits(p, chain)
	} else {
		s.tree.LeafDelete(n, key)
		s.propagateMerges(p, chain)
	}
	return s.finishUpdate(p, chain)
}

// propagateSplits splits overfull nodes bottom-up through the retained
// lock chain; the topmost retained node is either safe (absorbs the split)
// or the root (grows the tree).
func (s *session) propagateSplits(p *des.Proc, chain []held) {
	i := len(chain) - 1
	node := chain[i].node
	for s.tree.Overfull(node) {
		s.work(p, s.sp(node.Level()))
		sib, sep := s.tree.Split(node)
		if i == 0 {
			// The whole retained chain was unsafe up to the root.
			s.tree.GrowRoot(node, sep, sib)
			return
		}
		i--
		node = chain[i].node
		node.AddChild(sep, sib)
	}
}

// propagateMerges removes emptied nodes bottom-up through the retained
// chain (merge-at-empty), shrinking the root when the chain reaches it.
func (s *session) propagateMerges(p *des.Proc, chain []held) {
	i := len(chain) - 1
	node := chain[i].node
	for node.Items() == 0 && i > 0 {
		s.work(p, s.mg(node.Level()))
		parent := chain[i-1].node
		s.tree.RemoveChild(parent, node)
		i--
		node = parent
	}
	if chain[0].node == s.tree.Root() {
		s.tree.ShrinkRoot()
	}
}

// finishUpdate applies the recovery protocol and releases the retained
// chain: Naive recovery holds every retained W lock until commit;
// Leaf-only releases the non-leaf locks first and holds only the leaf.
// It returns the B-tree operation's logical completion time — the commit
// retention that follows blocks other operations but is not part of this
// operation's own index response time.
func (s *session) finishUpdate(p *des.Proc, chain []held) float64 {
	done := p.Now()
	switch s.cfg.Recovery {
	case core.NaiveRecovery:
		p.Delay(s.cfg.TTrans)
		s.releaseAll(chain)
	case core.LeafOnly:
		leaf := chain[len(chain)-1]
		s.releaseAll(chain[:len(chain)-1])
		p.Delay(s.cfg.TTrans)
		s.releaseNode(leaf.node, leaf.grant)
	default:
		s.releaseAll(chain)
	}
	return done
}

func (s *session) releaseAll(chain []held) {
	for _, h := range chain {
		s.releaseNode(h.node, h.grant)
	}
}

// acquireNode and releaseNode are the version-aware lock entry points:
// under OLC every W critical section bumps the node's version word on
// the way in and out (odd exactly while held), so latch-free readers
// can detect overlap. For the other algorithms they are plain lock
// operations.
func (s *session) acquireNode(p *des.Proc, n *btree.Node, c des.Class) *des.Grant {
	g := s.lockOf(n).Acquire(p, c)
	if s.versioned && c == des.Write {
		s.ver[n]++
	}
	return g
}

func (s *session) releaseNode(n *btree.Node, g *des.Grant) {
	if s.versioned && g.Class() == des.Write {
		s.ver[n]++
	}
	s.lockOf(n).Release(g)
}

// ---------------------------------------------------------------------------
// Two-Phase Locking (the paper's deferred extension): no lock is ever
// released before the operation finishes.

// twoPhaseSearch descends holding R locks on the whole path.
func (s *session) twoPhaseSearch(p *des.Proc, key int64) float64 {
	root, g := s.lockRoot(p, readClass)
	chain := []held{{root, g}}
	n := root
	for {
		s.access(p, n.Level())
		if n.IsLeaf() {
			n.LeafGet(key)
			break
		}
		child := n.FindChild(key)
		cg := s.lockOf(child).Acquire(p, des.Read)
		chain = append(chain, held{child, cg})
		n = child
	}
	done := p.Now()
	s.releaseAll(chain)
	return done
}

// twoPhaseUpdate descends holding W locks on the whole path, restructures
// under them, and releases everything only at the end.
func (s *session) twoPhaseUpdate(p *des.Proc, op workload.Op, key int64) float64 {
	root, g := s.lockRoot(p, writeClass)
	chain := []held{{root, g}}
	n := root
	for !n.IsLeaf() {
		s.access(p, n.Level())
		child := n.FindChild(key)
		cg := s.lockOf(child).Acquire(p, des.Write)
		chain = append(chain, held{child, cg})
		n = child
	}
	s.work(p, s.m())
	if op == workload.Insert {
		s.tree.LeafInsert(n, key, uint64(key))
		s.propagateSplits(p, chain)
	} else {
		s.tree.LeafDelete(n, key)
		s.propagateMerges(p, chain)
	}
	return s.finishUpdate(p, chain)
}

// ---------------------------------------------------------------------------
// Optimistic Descent updates.

// odUpdate makes an optimistic first descent with R locks, W-locking only
// the leaf (by lock coupling from its parent). If the leaf is unsafe it
// releases everything and re-descends with the Naive Lock-coupling
// protocol (a redo operation).
func (s *session) odUpdate(p *des.Proc, op workload.Op, key int64) float64 {
	n, g := s.lockRoot(p, firstClass)
	for !n.IsLeaf() {
		s.access(p, n.Level())
		child := n.FindChild(key)
		cg := s.lockOf(child).Acquire(p, firstClass(child))
		s.lockOf(n).Release(g)
		n, g = child, cg
	}
	safe := s.tree.InsertSafe(n)
	if op == workload.Delete {
		safe = s.tree.DeleteSafe(n)
	}
	if !safe {
		// Inspect-and-release, then redo pessimistically.
		s.access(p, 1)
		s.lockOf(n).Release(g)
		s.restarts++
		return s.nlcUpdate(p, op, key)
	}
	s.work(p, s.m())
	if op == workload.Insert {
		s.tree.LeafInsert(n, key, uint64(key))
	} else {
		s.tree.LeafDelete(n, key)
	}
	return s.finishUpdate(p, []held{{n, g}})
}

// firstClass is the lock class an OD first descent places on a node:
// R everywhere except the leaf.
func firstClass(n *btree.Node) des.Class {
	if n.IsLeaf() {
		return des.Write
	}
	return des.Read
}

// ---------------------------------------------------------------------------
// Link-type (Lehman–Yao) operations.

// linkOp holds at most one lock at a time, using right links to recover
// from concurrent splits. Updates W-lock only the nodes they modify.
func (s *session) linkOp(p *des.Proc, op workload.Op, key int64) float64 {
	// Descend with R locks, remembering the ancestor path for split repair.
	var stack []*btree.Node
	n := s.tree.Root()
	for !n.IsLeaf() {
		g := s.lockOf(n).Acquire(p, des.Read)
		s.access(p, n.Level())
		n, g = s.linkMoveRight(p, n, g, key, des.Read)
		child := n.FindChild(key)
		stack = append(stack, n)
		s.lockOf(n).Release(g)
		n = child
	}

	if op == workload.Search {
		g := s.lockOf(n).Acquire(p, des.Read)
		s.access(p, 1)
		n, g = s.linkMoveRight(p, n, g, key, des.Read)
		n.LeafGet(key)
		s.lockOf(n).Release(g)
		return p.Now()
	}

	g := s.acquireNode(p, n, des.Write)
	s.work(p, s.m())
	n, g = s.linkMoveRight(p, n, g, key, des.Write)

	if op == workload.Delete {
		// Merge-at-empty under the Link-type algorithm: emptied leaves stay
		// in place (the paper ignores the vanishingly rare merges).
		s.tree.LeafDelete(n, key)
		return s.finishUpdate(p, []held{{n, g}})
	}

	s.tree.LeafInsert(n, key, uint64(key))
	return s.linkRepairSplits(p, n, g, stack)
}

// linkMoveRight follows right links while key lies beyond the node's high
// key, re-locking with the same class at each hop.
func (s *session) linkMoveRight(p *des.Proc, n *btree.Node, g *des.Grant, key int64, class des.Class) (*btree.Node, *des.Grant) {
	for !n.Covers(key) {
		right := n.Right()
		s.releaseNode(n, g)
		s.crossings++
		n = right
		g = s.acquireNode(p, n, class)
		s.access(p, n.Level())
	}
	return n, g
}

// linkRepairSplits performs half-splits bottom-up: while the current node
// is overfull it is split under its own W lock, the lock released, and the
// parent W-locked to insert the new (separator, sibling) pair. When no
// split is needed the recovery protocol applies to the leaf lock (holding
// more would break the one-lock-at-a-time discipline, so a splitting
// insert releases promptly). Returns the logical completion time.
func (s *session) linkRepairSplits(p *des.Proc, n *btree.Node, g *des.Grant, stack []*btree.Node) float64 {
	if !s.tree.Overfull(n) {
		return s.finishUpdate(p, []held{{n, g}})
	}
	for s.tree.Overfull(n) {
		s.work(p, s.sp(n.Level()))
		sib, sep := s.tree.Split(n)
		if len(stack) == 0 && n == s.tree.Root() {
			s.tree.GrowRoot(n, sep, sib)
			break
		}
		level := n.Level() + 1
		s.releaseNode(n, g)

		var parent *btree.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			// The root grew since the descent began; locate the parent
			// level from the current root.
			parent = s.linkLocate(p, level, sep)
		}
		g = s.acquireNode(p, parent, des.Write)
		s.access(p, level)
		parent, g = s.linkMoveRight(p, parent, g, sep, des.Write)
		s.work(p, s.mod(level))
		parent.AddChild(sep, sib)
		n = parent
	}
	s.releaseNode(n, g)
	return p.Now()
}

// linkLocate descends from the current root to the node at the given level
// responsible for key (used when the remembered ancestor path has been
// outgrown by root splits).
func (s *session) linkLocate(p *des.Proc, level int, key int64) *btree.Node {
	n := s.tree.Root()
	for n.Level() > level {
		g := s.lockOf(n).Acquire(p, des.Read)
		s.access(p, n.Level())
		n, g = s.linkMoveRight(p, n, g, key, des.Read)
		child := n.FindChild(key)
		s.lockOf(n).Release(g)
		n = child
	}
	return n
}
