package sim

import (
	"fmt"
	"sync"

	"btreeperf/internal/stats"
)

// Replicated aggregates independent runs of the same configuration under
// different seeds (the paper runs 5 seeds per parameter setting).
type Replicated struct {
	Results []*Result

	RespSearch stats.Summary // across-seed distribution of per-run means
	RespInsert stats.Summary
	RespDelete stats.Summary
	RootRhoW   stats.Summary
	Unstable   bool // true if any replication exceeded its operation space
}

// RespMean returns the mix-weighted mean response across replications.
func (r *Replicated) RespMean() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	m := r.Results[0].Config.Mix
	return m.QS*r.RespSearch.Mean + m.QI*r.RespInsert.Mean + m.QD*r.RespDelete.Mean
}

// RunSeeds executes cfg once per seed and aggregates. Replications run
// concurrently when the worker pool is parallel (SetParallelism); each
// replication is fully independent — own seed, tree and DES environment —
// and the reduction below consumes results in seed order, so the
// aggregate is byte-identical to a sequential run at any worker count.
func RunSeeds(cfg Config, seeds []uint64) (*Replicated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: no seeds")
	}
	progQueued.Add(int64(len(seeds)))
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	runOne := func(i int) {
		c := cfg
		c.Seed = seeds[i]
		results[i], errs[i] = Run(c)
		progDone.Add(1)
		if results[i] != nil {
			progOps.Add(int64(results[i].Completed))
		}
	}
	if sem := slot(); sem != nil && len(seeds) > 1 {
		var wg sync.WaitGroup
		for i := range seeds {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range seeds {
			runOne(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &Replicated{}
	var search, insert, del, rho []float64
	for _, res := range results {
		rep.Results = append(rep.Results, res)
		rep.Unstable = rep.Unstable || res.Unstable
		search = append(search, res.RespSearch.Mean)
		insert = append(insert, res.RespInsert.Mean)
		del = append(del, res.RespDelete.Mean)
		rho = append(rho, res.RootRhoW)
	}
	rep.RespSearch = stats.Summarize(search)
	rep.RespInsert = stats.Summarize(insert)
	rep.RespDelete = stats.Summarize(del)
	rep.RootRhoW = stats.Summarize(rho)
	return rep, nil
}

// DefaultSeeds returns n sequential seeds starting at 1.
func DefaultSeeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}
