package sim

import (
	"fmt"

	"btreeperf/internal/stats"
)

// Replicated aggregates independent runs of the same configuration under
// different seeds (the paper runs 5 seeds per parameter setting).
type Replicated struct {
	Results []*Result

	RespSearch stats.Summary // across-seed distribution of per-run means
	RespInsert stats.Summary
	RespDelete stats.Summary
	RootRhoW   stats.Summary
	Unstable   bool // true if any replication exceeded its operation space
}

// RespMean returns the mix-weighted mean response across replications.
func (r *Replicated) RespMean() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	m := r.Results[0].Config.Mix
	return m.QS*r.RespSearch.Mean + m.QI*r.RespInsert.Mean + m.QD*r.RespDelete.Mean
}

// RunSeeds executes cfg once per seed and aggregates.
func RunSeeds(cfg Config, seeds []uint64) (*Replicated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: no seeds")
	}
	rep := &Replicated{}
	var search, insert, del, rho []float64
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
		rep.Unstable = rep.Unstable || res.Unstable
		search = append(search, res.RespSearch.Mean)
		insert = append(insert, res.RespInsert.Mean)
		del = append(del, res.RespDelete.Mean)
		rho = append(rho, res.RootRhoW)
	}
	rep.RespSearch = stats.Summarize(search)
	rep.RespInsert = stats.Summarize(insert)
	rep.RespDelete = stats.Summarize(del)
	rep.RootRhoW = stats.Summarize(rho)
	return rep, nil
}

// DefaultSeeds returns n sequential seeds starting at 1.
func DefaultSeeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}
