package sim

import (
	"testing"

	"btreeperf/internal/core"
)

func TestTwoPhaseSimCompletes(t *testing.T) {
	cfg := smallCfg(core.TwoPhase, 0.01)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unstable || res.Completed != cfg.Ops {
		t.Fatalf("completed=%d unstable=%v", res.Completed, res.Unstable)
	}
	if res.RespSearch.Mean <= 0 || res.RespInsert.Mean <= 0 {
		t.Fatal("non-positive responses")
	}
}

func TestTwoPhaseTreeInvariants(t *testing.T) {
	cfg := smallCfg(core.TwoPhase, 0.05)
	cfg.MaxInFlight = 100000
	s, err := runCapture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.tree.CheckInvariants(); err != nil {
		t.Fatalf("tree corrupted: %v", err)
	}
}

func TestTwoPhaseWorseThanNLCInSimulation(t *testing.T) {
	// At an equal moderate load 2PL's responses exceed NLC's: the held
	// root R/W locks serialize everything behind the slowest descent.
	lambda := 0.15
	tp, err := Run(smallCfg(core.TwoPhase, lambda))
	if err != nil {
		t.Fatal(err)
	}
	nlc, err := Run(smallCfg(core.NLC, lambda))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Unstable {
		t.Skip("2PL already unstable at test load; ordering trivially holds")
	}
	if tp.RespInsert.Mean <= nlc.RespInsert.Mean {
		t.Errorf("2PL insert %v should exceed NLC %v", tp.RespInsert.Mean, nlc.RespInsert.Mean)
	}
}

func TestTwoPhaseSaturatesBeforeNLC(t *testing.T) {
	// A load NLC carries comfortably overwhelms 2PL.
	lambda := 0.45
	tpCfg := smallCfg(core.TwoPhase, lambda)
	tpCfg.MaxInFlight = 400
	nlcCfg := smallCfg(core.NLC, lambda)
	nlcCfg.MaxInFlight = 400
	tp, err := Run(tpCfg)
	if err != nil {
		t.Fatal(err)
	}
	nlc, err := Run(nlcCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Unstable {
		t.Error("2PL stable at a load that should overwhelm it")
	}
	if nlc.Unstable {
		t.Error("NLC unstable at a load it should carry")
	}
}
