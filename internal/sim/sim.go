// Package sim is the concurrent B-tree simulator of the paper's §4. It
// builds an actual B⁺-tree from a sequence of insert and delete operations
// (with the same insert:delete proportion as the concurrent phase), then
// performs concurrent operations arriving in a Poisson process, each
// executing the real concurrency-control protocol — Naive Lock-coupling,
// Optimistic Descent, or Link-type — against the real tree, in virtual
// time with exponentially distributed service times.
//
// The simulator measures operation response times, per-level lock waiting
// times, the root's writer presence ρ_w, Optimistic Descent restarts and
// Link-type link crossings — the quantities the analytical framework in
// internal/core predicts.
package sim

import (
	"fmt"

	"btreeperf/internal/btree"
	"btreeperf/internal/core"
	"btreeperf/internal/des"
	"btreeperf/internal/stats"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

// Config parameterizes one simulation run.
type Config struct {
	Algorithm core.Algorithm
	Recovery  core.RecoveryPolicy
	TTrans    float64 // transaction commit delay for recovery protocols

	NodeCap      int // maximum items per node (the paper's N = 13)
	InitialItems int // tree size before the concurrent phase (≈40,000)
	Mix          workload.Mix
	Lambda       float64 // total operation arrival rate
	Costs        core.CostModel
	Ops          int // concurrent operations to perform (paper: 10,000)
	Warmup       int // leading operations excluded from statistics
	Seed         uint64
	MaxInFlight  int   // concurrent-operation space; exceeded ⇒ unstable
	KeySpace     int64 // insert keys are uniform over [0, KeySpace)
}

// Paper returns the paper's baseline configuration for an algorithm at
// arrival rate lambda with disk cost d.
func Paper(a core.Algorithm, lambda, d float64) Config {
	return Config{
		Algorithm:    a,
		NodeCap:      13,
		InitialItems: 40000,
		Mix:          workload.PaperMix,
		Lambda:       lambda,
		Costs:        core.PaperCosts(d),
		Ops:          10000,
		Warmup:       1000,
		Seed:         1,
		MaxInFlight:  20000,
		KeySpace:     1 << 31,
	}
}

// Validate checks the configuration, filling defaults for zero fields.
func (c *Config) Validate() error {
	if c.NodeCap < 3 {
		return fmt.Errorf("sim: node capacity %d", c.NodeCap)
	}
	if c.InitialItems < 1 {
		return fmt.Errorf("sim: initial items %d", c.InitialItems)
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("sim: arrival rate %v", c.Lambda)
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if c.Ops < 1 {
		return fmt.Errorf("sim: ops %d", c.Ops)
	}
	if c.Warmup < 0 || c.Warmup >= c.Ops {
		return fmt.Errorf("sim: warmup %d outside [0, %d)", c.Warmup, c.Ops)
	}
	if c.TTrans < 0 {
		return fmt.Errorf("sim: TTrans %v", c.TTrans)
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 20000
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 31
	}
	return nil
}

// LevelWait summarizes the lock waiting observed on one tree level.
type LevelWait struct {
	Level     int
	MeanWaitR float64
	MeanWaitW float64
	GrantsR   int64
	GrantsW   int64
}

// Result holds the measurements of one run.
type Result struct {
	Config Config

	Completed  int     // operations that finished
	Measured   int     // operations included in statistics
	Duration   float64 // virtual time of the concurrent phase
	Unstable   bool    // the in-flight population exceeded MaxInFlight
	TreeHeight int

	RespSearch stats.Summary
	RespInsert stats.Summary
	RespDelete stats.Summary

	// Percentiles holds the response-time distribution of all measured
	// operations combined (histogram-approximated).
	Percentiles Percentiles

	LevelWaits []LevelWait // index 0 = leaf level
	RootRhoW   float64     // time-average writer presence at the root

	Restarts      int64 // Optimistic Descent second descents
	LinkCrossings int64 // Link-type / OLC right-link follows
	Splits        int64 // node splits during the concurrent phase

	ReadRestarts  int64 // OLC failed latch-free descents
	ReadFallbacks int64 // OLC descents that fell back to the locked path
}

// RespMean returns the mix-weighted mean response time of the run.
func (r *Result) RespMean() float64 {
	m := r.Config.Mix
	return m.QS*r.RespSearch.Mean + m.QI*r.RespInsert.Mean + m.QD*r.RespDelete.Mean
}

// Percentiles summarizes a response-time distribution.
type Percentiles struct {
	P50 float64
	P90 float64
	P95 float64
	P99 float64
	Max float64
}

// session is the mutable state of one run.
type session struct {
	cfg  Config
	env  *des.Environment
	tree *btree.Tree
	h    int // height at the start of the concurrent phase

	locks     map[*btree.Node]*des.RWLock
	lockOrder []*des.RWLock
	lockLevel map[*des.RWLock]int

	svc *xrand.Source // service-time draws

	// OLC state: per-node seqlock-style version words (even = stable,
	// odd = write-locked), bumped around every W critical section when
	// versioned is set.
	versioned bool
	ver       map[*btree.Node]uint64

	respSearch, respInsert, respDelete stats.Welford
	respHist                           *stats.Histogram
	respMax                            float64
	inFlight                           int
	completed                          int
	measured                           int
	unstable                           bool
	restarts                           int64
	crossings                          int64
	readRestarts                       int64
	readFallbacks                      int64
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	res, _, err := run(cfg)
	return res, err
}

// run executes one simulation, also returning the session so tests can
// inspect the final tree.
func run(cfg Config) (*Result, *session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	root := xrand.New(cfg.Seed)

	// Construction phase (§4): build the tree with the concurrent mix's
	// insert:delete proportion.
	tree, pool, err := workload.Build(cfg.NodeCap, cfg.InitialItems, cfg.Mix, cfg.KeySpace, root.Split(1))
	if err != nil {
		return nil, nil, err
	}
	gen, err := workload.NewGenerator(cfg.Mix, pool, cfg.KeySpace, root.Split(2))
	if err != nil {
		return nil, nil, err
	}

	s := &session{
		cfg:       cfg,
		env:       des.NewEnvironment(),
		tree:      tree,
		h:         tree.Height(),
		locks:     make(map[*btree.Node]*des.RWLock),
		lockLevel: make(map[*des.RWLock]int),
		svc:       root.Split(3),
	}
	if cfg.Algorithm == core.OLC {
		s.versioned = true
		s.ver = make(map[*btree.Node]uint64)
	}
	// Unwind any process still parked when the run ends — on a normal
	// drain there are none, but an early exit (unstable abort, panic)
	// must not leak one goroutine per abandoned process.
	defer s.env.Close()
	// Response histogram spanning from zero to 200× the worst-case serial
	// descent (responses beyond land in the overflow bucket and clip the
	// high quantiles; Max is tracked exactly).
	serial := 0.0
	for i := 1; i <= s.h; i++ {
		serial += cfg.Costs.Se(i, s.h)
	}
	serial += cfg.Costs.M(s.h)
	s.respHist = stats.NewHistogram(0, 200*serial, 4000)

	splitsBefore := tree.Stats().Splits

	arrivals := root.Split(4)
	s.env.Spawn("arrivals", func(p *des.Proc) {
		for i := 0; i < cfg.Ops; i++ {
			p.Delay(arrivals.ExpRate(cfg.Lambda))
			if s.inFlight >= cfg.MaxInFlight {
				s.unstable = true
				return
			}
			op, key := gen.Next()
			idx := i
			s.inFlight++
			s.env.Spawn("op", func(q *des.Proc) {
				start := q.Now()
				done := s.runOp(q, op, key)
				s.inFlight--
				s.completed++
				if idx >= cfg.Warmup {
					s.measured++
					resp := done - start
					s.respHist.Add(resp)
					if resp > s.respMax {
						s.respMax = resp
					}
					switch op {
					case workload.Search:
						s.respSearch.Add(resp)
					case workload.Insert:
						s.respInsert.Add(resp)
					case workload.Delete:
						s.respDelete.Add(resp)
					}
				}
			})
		}
	})
	end := s.env.RunAll()

	res := &Result{
		Config:     cfg,
		Completed:  s.completed,
		Measured:   s.measured,
		Duration:   end,
		Unstable:   s.unstable,
		TreeHeight: tree.Height(),
		RespSearch: summaryOf(&s.respSearch),
		RespInsert: summaryOf(&s.respInsert),
		RespDelete: summaryOf(&s.respDelete),
		Restarts:   s.restarts,
		Splits:     tree.Stats().Splits - splitsBefore,

		LinkCrossings: s.crossings,
		ReadRestarts:  s.readRestarts,
		ReadFallbacks: s.readFallbacks,
		Percentiles: Percentiles{
			P50: s.respHist.Quantile(0.50),
			P90: s.respHist.Quantile(0.90),
			P95: s.respHist.Quantile(0.95),
			P99: s.respHist.Quantile(0.99),
			Max: s.respMax,
		},
	}

	// Aggregate per-level lock waits in lock-creation order (deterministic).
	waitR := make([]stats.Welford, s.h+2)
	waitW := make([]stats.Welford, s.h+2)
	grantsR := make([]int64, s.h+2)
	grantsW := make([]int64, s.h+2)
	for _, l := range s.lockOrder {
		lv := s.lockLevel[l]
		if lv > s.h+1 {
			lv = s.h + 1
		}
		snap := l.Snapshot(end)
		waitR[lv].Merge(l.WaitWelford(des.Read))
		waitW[lv].Merge(l.WaitWelford(des.Write))
		grantsR[lv] += snap.GrantsR
		grantsW[lv] += snap.GrantsW
	}
	for lv := 1; lv <= s.h; lv++ {
		res.LevelWaits = append(res.LevelWaits, LevelWait{
			Level:     lv,
			MeanWaitR: waitR[lv].Mean(),
			MeanWaitW: waitW[lv].Mean(),
			GrantsR:   grantsR[lv],
			GrantsW:   grantsW[lv],
		})
	}
	if l, ok := s.locks[tree.Root()]; ok {
		res.RootRhoW = l.Snapshot(end).RhoW
	}
	return res, s, nil
}

func summaryOf(w *stats.Welford) stats.Summary {
	return stats.Summary{Mean: w.Mean(), CI95: w.CI95(), N: int(w.N()), Min: w.Min(), Max: w.Max()}
}

// runOp dispatches one operation to the configured algorithm, returning
// its logical completion time (which excludes any post-commit lock
// retention under a recovery protocol).
func (s *session) runOp(p *des.Proc, op workload.Op, key int64) float64 {
	switch s.cfg.Algorithm {
	case core.NLC:
		if op == workload.Search {
			return s.coupledSearch(p, key)
		}
		return s.nlcUpdate(p, op, key)
	case core.OD:
		if op == workload.Search {
			return s.coupledSearch(p, key)
		}
		return s.odUpdate(p, op, key)
	case core.Link:
		return s.linkOp(p, op, key)
	case core.TwoPhase:
		if op == workload.Search {
			return s.twoPhaseSearch(p, key)
		}
		return s.twoPhaseUpdate(p, op, key)
	case core.OLC:
		return s.olcOp(p, op, key)
	default:
		panic(fmt.Sprintf("sim: unknown algorithm %v", s.cfg.Algorithm))
	}
}

// lockOf returns (creating on demand) the lock guarding node n.
func (s *session) lockOf(n *btree.Node) *des.RWLock {
	if l, ok := s.locks[n]; ok {
		return l
	}
	l := des.NewRWLock(s.env, fmt.Sprintf("L%d", n.Level()))
	s.locks[n] = l
	s.lockOrder = append(s.lockOrder, l)
	s.lockLevel[l] = n.Level()
	return l
}

// work delays the process by an exponential variate with the given mean.
func (s *session) work(p *des.Proc, mean float64) {
	p.Delay(s.svc.Exp(mean))
}

// access delays the process by one node access at the given level. With a
// buffered cost model (per-level miss probabilities) the draw is bimodal:
// a buffer hit costs an in-memory access, a miss a disk access.
func (s *session) access(p *des.Proc, level int) {
	c := s.cfg.Costs
	if c.MissProb == nil {
		s.work(p, s.se(level))
		return
	}
	mean := c.SearchMem * c.Dilation
	if s.svc.Bernoulli(c.MissAt(level, s.h)) {
		mean *= c.DiskCost
	}
	p.Delay(s.svc.Exp(mean))
}

// Cost means, by node level of the initial tree.
func (s *session) se(level int) float64 { return s.cfg.Costs.Se(level, s.h) }
func (s *session) m() float64           { return s.cfg.Costs.M(s.h) }
func (s *session) mod(level int) float64 {
	return s.cfg.Costs.Mod(level, s.h)
}
func (s *session) sp(level int) float64 { return s.cfg.Costs.Sp(level, s.h) }
func (s *session) mg(level int) float64 { return s.cfg.Costs.Mg(level, s.h) }

// lockRoot acquires the current root's lock, re-checking that the node is
// still the root after the (possibly long) wait — a concurrent operation
// may have grown or shrunk the tree meanwhile. classOf is re-evaluated on
// each attempt, since the class can depend on whether the root is a leaf.
func (s *session) lockRoot(p *des.Proc, classOf func(*btree.Node) des.Class) (*btree.Node, *des.Grant) {
	for {
		root := s.tree.Root()
		g := s.lockOf(root).Acquire(p, classOf(root))
		if root == s.tree.Root() {
			return root, g
		}
		s.lockOf(root).Release(g)
	}
}

func readClass(*btree.Node) des.Class  { return des.Read }
func writeClass(*btree.Node) des.Class { return des.Write }
