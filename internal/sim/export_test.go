package sim

// runCapture runs a simulation and returns the session so tests can
// inspect the final tree.
func runCapture(cfg Config) (*session, error) {
	_, s, err := run(cfg)
	return s, err
}
