package sim

import (
	"testing"

	"btreeperf/internal/core"
	"btreeperf/internal/workload"
)

func TestOLCCountsRestartsUnderContention(t *testing.T) {
	cfg := smallCfg(core.OLC, 0.05)
	cfg.MaxInFlight = 100000
	s, err := runForTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.readRestarts == 0 {
		t.Error("contended OLC run observed no read restarts")
	}
	if s.readFallbacks > s.readRestarts {
		t.Errorf("fallbacks %d exceed restarts %d", s.readFallbacks, s.readRestarts)
	}
	// Quiescent versions must all be even: every W critical section
	// bumped on the way in and out.
	for n, v := range s.ver {
		if v&1 != 0 {
			t.Fatalf("level-%d node version %d odd after drain", n.Level(), v)
		}
	}
}

func TestOLCRestartRateMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// The validation claim for the fourth algorithm: the analytical
	// restart model — first-attempt conflict probabilities from writer
	// utilization and Poisson overlap, correlated retries from writer
	// persistence — tracks the simulator's measured restart and
	// fallback rates. Validation runs in the load range the repo's
	// response validations use (the simulator's own saturation sits far
	// below the analytical Link λmax, so higher λ just measures an
	// overloaded simulator, not the model).
	m := validationModel(t, 5)
	prevRestarts := -1.0
	for _, lambda := range []float64{10, 25} {
		res, err := core.AnalyzeOLC(m, core.Workload{Lambda: lambda, Mix: workload.PaperMix})
		if err != nil {
			t.Fatal(err)
		}
		rep := runPoint(t, core.OLC, lambda)
		if rep.Unstable {
			t.Fatalf("OLC unstable at λ=%v", lambda)
		}
		var restarts, fallbacks, completed int64
		for _, r := range rep.Results {
			restarts += r.ReadRestarts
			fallbacks += r.ReadFallbacks
			completed += int64(r.Completed)
		}
		perOp := float64(restarts) / float64(completed)
		fbPerOp := float64(fallbacks) / float64(completed)
		if perOp <= prevRestarts {
			t.Errorf("restart rate not increasing: %.4g after %.4g", perOp, prevRestarts)
		}
		prevRestarts = perOp
		if res.RestartsPerOp <= 0 || res.FallbackProb <= 0 {
			t.Fatalf("model predicts no restarts at λ=%v", lambda)
		}
		if ratio := perOp / res.RestartsPerOp; ratio > 2 || ratio < 0.5 {
			t.Errorf("λ=%v: restarts/op sim %.4g vs model %.4g (ratio %.2f)",
				lambda, perOp, res.RestartsPerOp, ratio)
		}
		if ratio := fbPerOp / res.FallbackProb; ratio > 2 || ratio < 0.5 {
			t.Errorf("λ=%v: fallbacks/op sim %.4g vs model %.4g (ratio %.2f)",
				lambda, fbPerOp, res.FallbackProb, ratio)
		}
		// Responses: latch-free searches still track the model within
		// the tolerance the locking algorithms validate at.
		if e := relErr(rep.RespSearch.Mean, res.RespSearch); e > 0.12 {
			t.Errorf("λ=%v search: sim %.2f vs model %.2f (rel %.2f)",
				lambda, rep.RespSearch.Mean, res.RespSearch, e)
		}
		if e := relErr(rep.RespInsert.Mean, res.RespInsert); e > 0.15 {
			t.Errorf("λ=%v insert: sim %.2f vs model %.2f (rel %.2f)",
				lambda, rep.RespInsert.Mean, res.RespInsert, e)
		}
	}
}

func TestOLCDeterministicAcrossRuns(t *testing.T) {
	cfg := smallCfg(core.OLC, 0.03)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ReadRestarts != b.ReadRestarts || a.ReadFallbacks != b.ReadFallbacks ||
		a.RespSearch.Mean != b.RespSearch.Mean || a.Duration != b.Duration {
		t.Errorf("OLC runs with identical seed differ: %+v vs %+v",
			a.ReadRestarts, b.ReadRestarts)
	}
}
