package sim

// The package-level worker pool that fans independent simulation runs
// (replications and sweep points) across OS threads. Replications are
// embarrassingly parallel by construction — each owns its seed, its tree
// and its DES environment, and the packages they touch hold no mutable
// global state — so the only coordination needed is a bound on how many
// execute at once and a deterministic, seed-ordered reduction of their
// results.
//
// The pool is configured once at process start (SetParallelism, typically
// from a CLI's -parallel flag) and gates every replication launched by
// RunSeeds. Callers above the replication level (e.g. the per-figure
// sweep loops in internal/experiments) run their points on plain
// goroutines without holding a pool slot; only the leaf Run calls
// acquire one, so nested fan-out cannot deadlock the pool.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var pool = struct {
	mu  sync.Mutex
	n   int
	sem chan struct{}
}{n: 1}

// SetParallelism bounds the number of simulation runs executing
// concurrently. n <= 0 selects runtime.GOMAXPROCS(0). With n == 1 (the
// default) RunSeeds executes its replications strictly sequentially on
// the calling goroutine, exactly as before the pool existed.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	pool.n = n
	if n > 1 {
		pool.sem = make(chan struct{}, n)
	} else {
		pool.sem = nil
	}
}

// Parallelism returns the configured worker count.
func Parallelism() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.n
}

// slot returns the semaphore gating concurrent runs (nil when sequential).
func slot() chan struct{} {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.sem
}

// Progress is a snapshot of the pool's activity counters, for CLI
// observability (jobs completed/total and ops/sec lines).
type Progress struct {
	Queued int64 // replications enqueued by RunSeeds
	Done   int64 // replications completed
	Ops    int64 // simulated operations completed across replications
}

var progQueued, progDone, progOps atomic.Int64

// PoolProgress snapshots the counters.
func PoolProgress() Progress {
	return Progress{
		Queued: progQueued.Load(),
		Done:   progDone.Load(),
		Ops:    progOps.Load(),
	}
}

// ResetPoolProgress zeroes the counters (e.g. between figures).
func ResetPoolProgress() {
	progQueued.Store(0)
	progDone.Store(0)
	progOps.Store(0)
}

// ForEachPoint runs fn(i) for every i in [0, n). When the pool is
// parallel the points run concurrently on unpooled goroutines (each
// point's replications still contend for pool slots individually); when
// sequential they run in order on the calling goroutine. The returned
// error is the lowest-index failure, so error reporting is deterministic
// regardless of scheduling. fn must write its results into caller-owned,
// index-addressed storage.
func ForEachPoint(n int, fn func(i int) error) error {
	if Parallelism() <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
