package shape

import (
	"math"
	"testing"

	"btreeperf/internal/btree"
	"btreeperf/internal/xrand"
)

func TestPaperConfiguration(t *testing.T) {
	// The paper's simulations: N=13, ~40,000 items → 5 levels, root with
	// about 6 children.
	m, err := New(40000, 13, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height != 5 {
		t.Fatalf("height = %d, want 5", m.Height)
	}
	if rf := m.RootFanout(); rf < 4 || rf > 9 {
		t.Fatalf("root fanout = %v, want ≈6", rf)
	}
	// Interior fanout .69N.
	if got := m.E(3); math.Abs(got-0.69*13) > 1e-9 {
		t.Fatalf("E(3) = %v", got)
	}
	// Leaf occupancy .68N.
	if got := m.E(1); math.Abs(got-0.68*13) > 1e-9 {
		t.Fatalf("E(1) = %v", got)
	}
}

func TestCorollary1(t *testing.T) {
	// Pure inserts: Pr[F(1)] = 1/(.68N).
	m, _ := New(10000, 13, 1, 0)
	if got, want := m.PrF(1), 1/(0.68*13); math.Abs(got-want) > 1e-12 {
		t.Fatalf("pure insert PrF(1) = %v, want %v", got, want)
	}
	// Mixed: q = qd/(qi+qd) = 2/7 → (1−2q)/(1−q) = (3/7)/(5/7) = 0.6.
	m2, _ := New(10000, 13, 0.5, 0.2)
	want := 0.6 / (0.68 * 13)
	if got := m2.PrF(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mixed PrF(1) = %v, want %v", got, want)
	}
	// Upper levels: 1/(.69N) regardless of mix.
	if got, want := m2.PrF(3), 1/(0.69*13); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PrF(3) = %v, want %v", got, want)
	}
	// More deletes → lower leaf split probability.
	m3, _ := New(10000, 13, 0.4, 0.38)
	if m3.PrF(1) >= m2.PrF(1) {
		t.Fatalf("PrF(1) should fall as deletes rise: %v vs %v", m3.PrF(1), m2.PrF(1))
	}
}

func TestPrEmDefaultsZero(t *testing.T) {
	m, _ := New(10000, 13, 0.5, 0.2)
	for i := 1; i <= m.Height; i++ {
		if m.PrEm(i) != 0 {
			t.Fatalf("PrEm(%d) = %v, want 0", i, m.PrEm(i))
		}
	}
	m.SetPrEm(1, 0.01)
	if m.PrEm(1) != 0.01 {
		t.Fatal("SetPrEm did not stick")
	}
}

func TestProdPrF(t *testing.T) {
	m, _ := New(40000, 13, 1, 0)
	want := m.PrF(1) * m.PrF(2) * m.PrF(3)
	if got := m.ProdPrF(3); math.Abs(got-want) > 1e-15 {
		t.Fatalf("ProdPrF(3) = %v, want %v", got, want)
	}
	if m.ProdPrF(1) != m.PrF(1) {
		t.Fatal("ProdPrF(1) != PrF(1)")
	}
}

func TestTinyTree(t *testing.T) {
	m, err := New(5, 13, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height != 1 || m.E(1) != 5 {
		t.Fatalf("tiny tree: h=%d E(1)=%v", m.Height, m.E(1))
	}
}

func TestHeightMonotoneInItems(t *testing.T) {
	prev := 0
	for _, items := range []int{10, 100, 1000, 10000, 100000, 1000000} {
		m, err := New(items, 13, 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if m.Height < prev {
			t.Fatalf("height decreased at %d items", items)
		}
		prev = m.Height
	}
	if prev < 5 {
		t.Fatalf("1M items at N=13 should be at least 5 levels, got %d", prev)
	}
}

func TestLargerNodesShrinkHeight(t *testing.T) {
	m13, _ := New(40000, 13, 0.5, 0.2)
	m59, _ := New(40000, 59, 0.5, 0.2)
	if m59.Height >= m13.Height {
		t.Fatalf("N=59 height %d should be below N=13 height %d", m59.Height, m13.Height)
	}
}

func TestNewWithHeight(t *testing.T) {
	// Paper Figure 16: N=59, 4 levels.
	m, err := NewWithHeight(4, 59, 6, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height != 4 {
		t.Fatalf("height = %d", m.Height)
	}
	if math.Abs(m.RootFanout()-6) > 3 {
		t.Fatalf("root fanout = %v, want ≈6", m.RootFanout())
	}
	// Paper Figure 15: N=13, 5 levels.
	m2, err := NewWithHeight(5, 13, 6, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Height != 5 {
		t.Fatalf("height = %d", m2.Height)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(100, 2, 1, 0); err == nil {
		t.Error("capacity 2 accepted")
	}
	if _, err := New(0, 13, 1, 0); err == nil {
		t.Error("0 items accepted")
	}
	if _, err := New(100, 13, 0, 0); err == nil {
		t.Error("qi=0 accepted")
	}
	if _, err := New(100, 13, 0.2, 0.5); err == nil {
		t.Error("qd>qi accepted")
	}
}

func TestLevelBoundsPanic(t *testing.T) {
	m, _ := New(40000, 13, 1, 0)
	for _, i := range []int{0, m.Height + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("E(%d) did not panic", i)
				}
			}()
			m.E(i)
		}()
	}
}

// TestAgainstEmpiricalTrees builds real merge-at-empty trees and compares
// the model's height, root fanout, utilization and split rate predictions.
func TestAgainstEmpiricalTrees(t *testing.T) {
	cases := []struct {
		n      int
		target int
		qi, qd float64
	}{
		{13, 40000, 0.5, 0.2}, // the paper's configuration
		{13, 40000, 1.0, 0.0},
		{59, 40000, 0.5, 0.2},
		{7, 8000, 0.6, 0.3},
	}
	for _, c := range cases {
		tr := btree.New(c.n, btree.MergeAtEmpty)
		src := xrand.New(uint64(c.n)*31 + uint64(c.target))
		inserts := int64(0)
		var live []int64 // deletes must target existing keys ([10]'s model)
		// Grow the tree with the mix until the target size is reached.
		for tr.Len() < c.target {
			if src.Float64() < c.qi/(c.qi+c.qd) || len(live) == 0 {
				k := src.Int63n(1 << 31)
				if tr.Insert(k, 0) {
					inserts++
					live = append(live, k)
				}
			} else {
				i := src.IntN(len(live))
				tr.Delete(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		m, err := New(tr.Len(), c.n, c.qi, c.qd)
		if err != nil {
			t.Fatal(err)
		}
		if m.Height != tr.Height() {
			t.Errorf("N=%d: model height %d, tree height %d", c.n, m.Height, tr.Height())
		}
		// Root fanout within a factor of ~2 (the root is the noisiest level).
		rf := float64(tr.RootFanout())
		if m.RootFanout() < rf/2.2 || m.RootFanout() > rf*2.2 {
			t.Errorf("N=%d: model root fanout %.1f, tree %.0f", c.n, m.RootFanout(), rf)
		}
		// Per-level occupancy within 12%. The top two levels hold too few
		// nodes for the asymptotic constants to apply; skip them.
		for _, ls := range tr.StructureStats() {
			if ls.Level >= tr.Height()-1 {
				continue
			}
			want := m.E(ls.Level)
			if math.Abs(ls.MeanItems-want)/want > 0.12 {
				t.Errorf("N=%d level %d: occupancy %.2f, model %.2f", c.n, ls.Level, ls.MeanItems, want)
			}
		}
		// Leaf split probability ≈ splits observed per insert. Only leaf
		// splits dominate; allow a broad tolerance plus the upper-level
		// contribution.
		splitRate := float64(tr.Stats().Splits) / float64(inserts)
		predicted := m.PrF(1) * (1 + m.PrF(2)) // leaf splits + immediate parents
		if splitRate < predicted*0.6 || splitRate > predicted*1.6 {
			t.Errorf("N=%d: split rate %.4f, model %.4f", c.n, splitRate, predicted)
		}
	}
}

func TestStringIsInformative(t *testing.T) {
	m, _ := New(40000, 13, 0.5, 0.2)
	s := m.String()
	if len(s) == 0 || s[0] != 's' {
		t.Fatalf("String = %q", s)
	}
}

func TestNewWithHeightClampPath(t *testing.T) {
	// Request a height the derived item count would not naturally give:
	// a 2-level tree with an outsized root fanout triggers the clamp.
	m, err := NewWithHeight(2, 13, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height != 2 {
		t.Fatalf("height = %d", m.Height)
	}
	if math.Abs(m.RootFanout()-3) > 3 {
		t.Fatalf("root fanout %v", m.RootFanout())
	}
	if m.PrF(1) <= 0 || m.PrF(2) <= 0 {
		t.Fatal("split probabilities must be positive")
	}
	// Degenerate requests are rejected.
	if _, err := NewWithHeight(0, 13, 6, 1, 0); err == nil {
		t.Fatal("height 0 accepted")
	}
	// Height 1 (a root leaf).
	m1, err := NewWithHeight(1, 13, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Height != 1 || m1.E(1) <= 0 {
		t.Fatalf("h=1 shape: %+v", m1)
	}
}
