// Package shape models the steady-state structure of a merge-at-empty
// B⁺-tree under a mixed insert/delete workload, following Johnson & Shasha
// ("Random B-trees with inserts and deletes" [9] and "Utilization of
// B-trees with inserts, deletes and modifies" [10]). The PODS '90 framework
// consumes these results as the structural parameters of its queueing
// model:
//
//   - E(i)     — expected items per level-i node (the fanout above the
//     leaves, the item count at the leaves, the actual child
//     count at the root),
//   - Pr[F(i)] — probability a level-i node is insert-unsafe (full),
//   - Pr[Em(i)]— probability a level-i node is delete-unsafe
//     (about to empty); ≈ 0 when inserts outnumber deletes.
//
// The constants are the paper's: leaf space utilization ≈ .68, interior
// utilization ≈ .69 (ln 2), with Corollary 1's (1−2q)/(1−q) mix correction
// on the leaf split probability, where q is the fraction of deletes among
// update operations.
package shape

import (
	"fmt"
	"math"
)

// Utilization constants from [9,10].
const (
	LeafUtil     = 0.68 // leaf occupancy fraction
	InteriorUtil = 0.69 // interior fanout fraction (≈ ln 2)
)

// Model is the analytical tree shape. Levels are numbered as in the paper:
// leaves at 1, root at Height.
type Model struct {
	N      int // maximum items per node
	Items  int // keys in the tree
	Height int

	// e[i], prF[i], prEm[i] are stored 1-indexed (index 0 unused).
	e    []float64
	prF  []float64
	prEm []float64
}

// New derives the shape of a merge-at-empty B-tree holding items keys in
// nodes of capacity n, built and operated under an operation mix with
// insert and delete fractions qi and qd (qi + qd need not be 1; only their
// ratio matters). It requires qi > 0 and qi >= qd: the framework's
// restructuring results hold when inserts outnumber deletes.
func New(items, n int, qi, qd float64) (*Model, error) {
	if n < 3 {
		return nil, fmt.Errorf("shape: node capacity %d too small", n)
	}
	if items < 1 {
		return nil, fmt.Errorf("shape: need at least 1 item")
	}
	if qi <= 0 || qd < 0 || qd > qi {
		return nil, fmt.Errorf("shape: need qi > 0 and qi >= qd (got qi=%v qd=%v)", qi, qd)
	}
	m := &Model{N: n, Items: items}

	// Node population per level: items/(LeafUtil·N) leaves, each interior
	// level dividing by the interior fanout, until one node suffices.
	if float64(items) <= float64(n) {
		m.Height = 1
		m.e = []float64{0, float64(items)}
	} else {
		counts := []float64{float64(items) / (LeafUtil * float64(n))}
		for counts[len(counts)-1] > InteriorUtil*float64(n) {
			counts = append(counts, counts[len(counts)-1]/(InteriorUtil*float64(n)))
		}
		// counts[k] nodes on level k+1; a root above them holds them all.
		m.Height = len(counts) + 1
		m.e = make([]float64, m.Height+1)
		m.e[1] = LeafUtil * float64(n)
		for i := 2; i < m.Height; i++ {
			m.e[i] = InteriorUtil * float64(n)
		}
		root := counts[len(counts)-1]
		if root < 2 {
			root = 2
		}
		m.e[m.Height] = root
	}

	// Split probabilities: Corollary 1. q is the delete share of updates.
	q := 0.0
	if qi+qd > 0 {
		q = qd / (qi + qd)
	}
	m.prF = make([]float64, m.Height+1)
	m.prEm = make([]float64, m.Height+1)
	m.prF[1] = (1 - 2*q) / ((1 - q) * LeafUtil * float64(n))
	for i := 2; i <= m.Height; i++ {
		m.prF[i] = 1 / (InteriorUtil * float64(n))
	}
	// Merge-at-empty with qi >= qd: leaf merges are almost never observed
	// and propagating merges are "infinitely" rarer ([10]); the framework
	// takes Pr[Em] = 0. SetPrEm allows sensitivity studies.
	return m, nil
}

// NewWithHeight builds a shape with an explicit height (the paper's
// figures fix "5 levels" or "4 levels"); the item count is back-derived so
// that the root fanout comes out near rootFanout.
func NewWithHeight(height, n int, rootFanout float64, qi, qd float64) (*Model, error) {
	if height < 1 {
		return nil, fmt.Errorf("shape: height %d", height)
	}
	items := rootFanout
	for i := 2; i < height; i++ {
		items *= InteriorUtil * float64(n)
	}
	if height > 1 {
		items *= LeafUtil * float64(n)
	}
	m, err := New(int(math.Round(items)), n, qi, qd)
	if err != nil {
		return nil, err
	}
	if m.Height != height {
		// Clamp: force the requested height with the requested root fanout.
		m.Height = height
		m.e = make([]float64, height+1)
		m.e[1] = LeafUtil * float64(n)
		for i := 2; i < height; i++ {
			m.e[i] = InteriorUtil * float64(n)
		}
		if height > 1 {
			m.e[height] = rootFanout
		} else {
			m.e[1] = rootFanout
		}
		prF := m.prF[1]
		m.prF = make([]float64, height+1)
		m.prEm = make([]float64, height+1)
		m.prF[1] = prF
		for i := 2; i <= height; i++ {
			m.prF[i] = 1 / (InteriorUtil * float64(n))
		}
	}
	return m, nil
}

// E returns the expected items of a level-i node: key count at the leaves
// (i=1), child count (fanout) above.
func (m *Model) E(i int) float64 {
	m.check(i)
	return m.e[i]
}

// PrF returns Pr[F(i)], the probability a level-i node is insert-unsafe.
func (m *Model) PrF(i int) float64 {
	m.check(i)
	return m.prF[i]
}

// PrEm returns Pr[Em(i)], the probability a level-i node is delete-unsafe.
func (m *Model) PrEm(i int) float64 {
	m.check(i)
	return m.prEm[i]
}

// SetPrEm overrides the delete-unsafe probability of level i for
// sensitivity experiments.
func (m *Model) SetPrEm(i int, p float64) {
	m.check(i)
	m.prEm[i] = p
}

// RootFanout returns E(Height).
func (m *Model) RootFanout() float64 { return m.e[m.Height] }

// ProdPrF returns ∏_{k=1..i} Pr[F(k)] — the probability that a split
// starting at the leaves propagates through level i.
func (m *Model) ProdPrF(i int) float64 {
	m.check(i)
	p := 1.0
	for k := 1; k <= i; k++ {
		p *= m.prF[k]
	}
	return p
}

func (m *Model) check(i int) {
	if i < 1 || i > m.Height {
		panic(fmt.Sprintf("shape: level %d outside [1, %d]", i, m.Height))
	}
}

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("shape{N=%d items=%d h=%d rootFanout=%.2f PrF(1)=%.4f}",
		m.N, m.Items, m.Height, m.RootFanout(), m.prF[1])
}
