package journal

import (
	"os"
	"path/filepath"
	"testing"
)

func reopenJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendN(t *testing.T, j *Journal, from, n int64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i) + 1}); err != nil {
			t.Fatal(err)
		}
	}
}

// Global sequence numbers must survive rotations (which reset the
// per-epoch counters) and full restarts (which reload them from the
// persisted headers).
func TestSeqContinuityAcrossCheckpointAndRecover(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)

	appendN(t, j, 0, 3)
	if got := j.SeqAppended(); got != 3 {
		t.Fatalf("SeqAppended = %d, want 3", got)
	}
	if got := j.SeqDurable(); got != 0 {
		t.Fatalf("SeqDurable before commit = %d, want 0", got)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := j.SeqDurable(); got != 3 {
		t.Fatalf("SeqDurable after commit = %d, want 3", got)
	}

	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := j.SeqAppended(); got != 3 {
		t.Fatalf("SeqAppended after checkpoint = %d, want 3 (base must advance)", got)
	}
	if got := j.SeqDurable(); got != 3 {
		t.Fatalf("SeqDurable after checkpoint = %d, want 3", got)
	}

	appendN(t, j, 3, 2)
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := j.SeqAppended(); got != 5 {
		t.Fatalf("SeqAppended in second epoch = %d, want 5", got)
	}
	j.Close()

	// Reopen as after a crash whose last checkpoint image was at seq 3.
	j2 := reopenJournal(t, path)
	ops, err := j2.Recover(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("recovered %d ops, want 2 (second epoch only)", len(ops))
	}
	if got := j2.SeqAppended(); got != 5 {
		t.Fatalf("SeqAppended after reopen = %d, want 5", got)
	}
	if got := j2.SeqDurable(); got != 5 {
		t.Fatalf("SeqDurable after reopen = %d, want 5", got)
	}
	// Retention was never enabled, so the first epoch is gone.
	if got := j2.LowestSeq(); got != 3 {
		t.Fatalf("LowestSeq after reopen = %d, want 3", got)
	}
}

// With retention enabled, rotations seal the outgoing epoch instead of
// dropping it, the chain prunes as the follower floor advances, and
// the byte budget evicts oldest-first past it.
func TestRetentionSealPruneEvict(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)

	floor := int64(0)
	j.SetRetention(func() int64 { return floor }, 1<<20)

	appendN(t, j, 0, 3) // seqs 1..3
	j.Commit()
	j.Checkpoint()      // seals [0,3]
	appendN(t, j, 3, 4) // seqs 4..7
	j.Commit()
	j.Checkpoint() // seals (3,7]

	if n, bytes := j.RetainedSegments(); n != 2 || bytes != 2*OplogHdrSize+7*OpRecSize {
		t.Fatalf("retained = %d segs / %d bytes, want 2 / %d", n, bytes, 2*OplogHdrSize+7*OpRecSize)
	}
	if got := j.LowestSeq(); got != 0 {
		t.Fatalf("LowestSeq = %d, want 0", got)
	}

	// Follower advanced past the first segment: next rotation prunes it.
	floor = 3
	appendN(t, j, 7, 1)
	j.Commit()
	j.Checkpoint()
	if n, _ := j.RetainedSegments(); n != 2 {
		t.Fatalf("retained = %d segs after prune, want 2 ((3,7] and (7,8])", n)
	}
	if got := j.LowestSeq(); got != 3 {
		t.Fatalf("LowestSeq after prune = %d, want 3", got)
	}

	// Resume exactly at the truncation point succeeds (a Next call reads
	// from one file at a time, so drain across the segment boundary)...
	tl := j.Tail(3)
	defer tl.Close()
	got := 0
	for next := int64(4); next <= 8; {
		first, ops, err := tl.Next(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) == 0 || first != next {
			t.Fatalf("Tail(3) at seq %d: chunk %d/%d ops", next, first, len(ops))
		}
		next += int64(len(ops))
		got += len(ops)
	}
	if got != 5 {
		t.Fatalf("Tail(3) drained %d ops, want 5", got)
	}
	// ...one before it is evicted.
	tl2 := j.Tail(2)
	defer tl2.Close()
	if _, _, err := tl2.Next(100); err != ErrEvicted {
		t.Fatalf("Tail(2).Next err = %v, want ErrEvicted", err)
	}

	// A tiny budget evicts everything it must, oldest first, even though
	// the follower floor still wants it.
	floor = 0
	j.SetRetention(func() int64 { return floor }, OplogHdrSize+OpRecSize)
	appendN(t, j, 8, 1)
	j.Commit()
	j.Checkpoint()
	if n, bytes := j.RetainedSegments(); n != 1 || bytes > OplogHdrSize+OpRecSize {
		t.Fatalf("retained = %d segs / %d bytes after eviction, want 1 within budget", n, bytes)
	}
	if got := j.LowestSeq(); got != 8 {
		t.Fatalf("LowestSeq after eviction = %d, want 8", got)
	}
}

// The segment chain must survive a restart: recovery re-discovers the
// sealed files and a tail can still resume from any retained sequence.
func TestSegmentsSurviveRestart(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)
	j.SetRetention(func() int64 { return 0 }, 1<<20)

	appendN(t, j, 0, 3)
	j.Commit()
	j.Checkpoint()
	appendN(t, j, 3, 2)
	j.Commit()
	j.Close()

	j2 := reopenJournal(t, path)
	if _, err := j2.Recover(3); err != nil {
		t.Fatal(err)
	}
	if got := j2.LowestSeq(); got != 0 {
		t.Fatalf("LowestSeq after restart = %d, want 0 (segment lost?)", got)
	}
	tl := j2.Tail(0)
	defer tl.Close()
	var got []Op
	for len(got) < 5 {
		first, ops, err := tl.Next(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) == 0 {
			t.Fatalf("tail dried up at %d/5 ops", len(got))
		}
		if want := int64(len(got)) + 1; first != want {
			t.Fatalf("chunk starts at seq %d, want %d", first, want)
		}
		got = append(got, ops...)
	}
	for i, op := range got {
		if op.Key != int64(i) || op.Val != uint64(i)+1 {
			t.Fatalf("op %d = %+v, want key %d val %d", i, op, i, i+1)
		}
	}
	// A stray file matching the segment pattern but not chaining must be
	// discarded at the next recovery, not adopted.
	j2.Close()
	stray := segmentPath(path+".oplog", 9999)
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	j3 := reopenJournal(t, path)
	if _, err := j3.Recover(3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray segment file survived recovery: %v", err)
	}
	j3.Close()
}

// A rotation can crash after renaming the new image but before renaming
// the replacement oplog. The oplog on disk then belongs to the previous
// epoch (its base is behind the image's sequence): recovery must rebase
// it — not replay its prefix into the sequence space again — and the
// catch-up chain stays whole, because Rotate seals the outgoing records
// BEFORE the image rename.
func TestStaleOplogRebasedOnRecovery(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)
	j.SetRetention(func() int64 { return 0 }, 1<<20)

	appendN(t, j, 0, 3) // epoch base 0: seqs 1..3
	j.Commit()
	j.Checkpoint()      // seals [0,3]
	appendN(t, j, 3, 2) // epoch base 3: seqs 4,5
	j.Commit()

	// Save the base-3 epoch's oplog, run the real rotation (sealing
	// (3,5]), then undo the oplog replacement: the segment chain and the
	// "image" say seq 5, the oplog is the old base-3 epoch — exactly the
	// crash window's on-disk state.
	oplog := path + ".oplog"
	saved, err := os.ReadFile(oplog)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(oplog, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := reopenJournal(t, path)
	ops, err := j2.Recover(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("recovered %d ops from a stale oplog, want 0 (already imaged)", len(ops))
	}
	if got := j2.SeqAppended(); got != 5 {
		t.Fatalf("SeqAppended = %d, want 5", got)
	}
	if got := j2.LowestSeq(); got != 0 {
		t.Fatalf("LowestSeq = %d, want 0 (segment chain broken)", got)
	}
	tl := j2.Tail(0)
	defer tl.Close()
	var got []Op
	for len(got) < 5 {
		_, ops, err := tl.Next(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) == 0 {
			t.Fatalf("tail dried up at %d/5 ops", len(got))
		}
		got = append(got, ops...)
	}
	for i, op := range got {
		if op.Key != int64(i) {
			t.Fatalf("op %d has key %d, want %d", i, op.Key, i)
		}
	}
	j2.Close()
}

func TestSegmentFilesDeletedByPrune(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)
	floor := int64(0)
	j.SetRetention(func() int64 { return floor }, 1<<20)

	appendN(t, j, 0, 2)
	j.Commit()
	j.Checkpoint()
	seg := segmentPath(path+".oplog", 0)
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("sealed segment missing: %v", err)
	}
	floor = 2
	appendN(t, j, 2, 1)
	j.Commit()
	j.Checkpoint()
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatalf("pruned segment still on disk: %v", err)
	}
	// Sanity: nothing else of the pattern leaked beyond the live chain.
	matches, _ := filepath.Glob(path + ".oplog.seg-*")
	if len(matches) != 1 {
		t.Fatalf("segment files on disk = %v, want exactly the live one", matches)
	}
	j.Close()
}
