// Package journal makes a pagestore-backed tree crash-recoverable using
// the classic rollback-journal + logical-oplog design (as in SQLite's
// journal mode):
//
//   - The rollback journal captures, under the write-ahead rule, the
//     pre-image of every page overwritten since the last checkpoint,
//     together with a snapshot of the store's meta state. Restoring it
//     rewinds the data file to exactly the checkpoint.
//   - The oplog records every logical operation (insert key→val, delete
//     key) committed since the checkpoint. Replaying it onto the restored
//     checkpoint reconstructs all acknowledged state. Records are
//     CRC-framed, so a torn tail (an operation in flight at the crash) is
//     detected and dropped.
//
// Recovery = restore journal → replay oplog → checkpoint. Both steps are
// idempotent: page restoration is physical, and insert/delete are
// set-semantics operations, so crashing during recovery (or replaying ops
// that already reached a checkpoint) is harmless.
//
// A checkpoint (flush pages → fsync data → reset journal atomically via
// rename → truncate oplog) bounds both files.
//
// # Durability points and group commit
//
// Appended operations are durable only once an oplog fsync covers them:
// per operation when syncOps is set, or at the next Commit otherwise.
// Commit implements group commit — one fsync covers every record appended
// before it, concurrent committers piggyback on each other's fsyncs — so
// a serving layer can acknowledge a whole pipelined batch after a single
// disk barrier.
//
// # Fail-stop on storage errors
//
// After any write or fsync failure on either file, the journal poisons
// itself: every later Append, Commit, Guard, and Checkpoint returns the
// sticky first error. A failed fsync leaves the kernel free to have
// dropped the dirty pages whose writeback failed, so retrying the fsync
// and getting success proves nothing (the fsyncgate failure mode) — the
// only sound reaction is to stop acknowledging writes for good.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"btreeperf/internal/pagestore"
)

// OpKind labels an oplog record.
type OpKind byte

const (
	// OpInsert records insert(key, val).
	OpInsert OpKind = 1
	// OpDelete records delete(key).
	OpDelete OpKind = 2
)

// Op is one logical operation.
type Op struct {
	Kind OpKind
	Key  int64
	Val  uint64
}

const (
	journalMagic = 0x4254424a                 // "BTBJ"
	oplogMagic   = 0x4254424f                 // "BTBO"
	journalHdr   = 4 + 8 + 8 + 8 + 64 + 8 + 4 // magic pages freeHead root userData baseSeq crc
	oplogHdr     = 4 + 8 + 4                  // magic baseSeq crc
	opRecSize    = 1 + 8 + 8 + 4
)

// OpRecSize is the size in bytes of one encoded oplog record.
const OpRecSize = opRecSize

// OplogHdrSize is the size in bytes of the oplog's epoch header (magic,
// base sequence, CRC), written at offset 0 before any records.
const OplogHdrSize = oplogHdr

// ErrPoisoned is wrapped by every operation on a journal that has seen a
// storage failure.
var ErrPoisoned = errors.New("journal: poisoned by an earlier storage failure")

// Journal couples a rollback journal and an oplog for one store.
type Journal struct {
	mu      sync.Mutex
	store   *pagestore.Store
	fs      pagestore.FS
	jf      pagestore.File
	of      pagestore.File
	jPath   string
	oPath   string
	syncOps bool

	// Group-commit state. Lock order: syncMu before mu, never the
	// reverse. appendSeq/oplogBytes are guarded by mu; syncSeq by syncMu.
	syncMu     sync.Mutex
	appendSeq  int64 // records appended this epoch
	syncSeq    int64 // records covered by the last oplog fsync
	oplogBytes int64
	commits    atomic.Int64 // fsyncs issued by Commit (group commits)

	// Global sequence numbering for log shipping. Every appended record
	// has a global sequence number baseSeq+i (i = 1-based position in the
	// epoch); baseSeq is persisted in both file headers and advances at
	// each checkpoint, so sequence numbers survive restarts and epochs.
	// durable is the highest fsync-covered global sequence.
	baseSeq int64        // guarded by mu
	durable atomic.Int64 // baseSeq + syncSeq, published after each fsync

	// Sealed oplog segments retained for follower catch-up (oldest
	// first), and the retention policy; all guarded by mu. retain reports
	// the lowest global sequence some registered follower still needs
	// (math.MaxInt64 = none); segments wholly at or below it are pruned
	// at checkpoint, and the byte budget evicts oldest-first beyond it.
	segments     []segment
	segBytes     int64
	retain       func() int64
	retainBudget int64

	fail atomic.Pointer[failure] // sticky first storage failure

	captured   map[pagestore.PageID]bool
	checkpoint struct {
		pages, freeHead, root pagestore.PageID
		userData              [64]byte
	}
}

type failure struct{ err error }

// Open attaches a journal to the store, using path+".journal" and
// path+".oplog". If the files hold a prior epoch's data, the caller must
// run Recover (then replay the returned ops and Checkpoint) before using
// the store. syncOps controls whether every logged operation is fsync'd
// (durable per op) or left to Commit/Checkpoint (group commit).
func Open(path string, store *pagestore.Store, syncOps bool) (*Journal, error) {
	return OpenFS(path, store, syncOps, nil)
}

// OpenFS is Open through an explicit pagestore.FS (nil = OSFS) — the
// injection point for failpoint testing.
func OpenFS(path string, store *pagestore.Store, syncOps bool, fs pagestore.FS) (*Journal, error) {
	if fs == nil {
		fs = pagestore.OSFS
	}
	j := &Journal{
		store:    store,
		fs:       fs,
		jPath:    path + ".journal",
		oPath:    path + ".oplog",
		syncOps:  syncOps,
		captured: make(map[pagestore.PageID]bool),
	}
	var err error
	j.jf, err = fs.OpenFile(j.jPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.of, err = fs.OpenFile(j.oPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		j.jf.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	// A brand-new oplog gets its epoch header immediately (base 0, not
	// yet fsync'd — the first record's covering fsync persists it too).
	if st, err := j.of.Stat(); err == nil && st.Size() == 0 {
		if err := j.writeOplogHdr(0); err != nil {
			j.jf.Close()
			j.of.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	return j, nil
}

// writeOplogHdr stamps the oplog's epoch header at offset 0: the global
// sequence of the record before the file's first (= the epoch base).
// Recovery uses it to tell a live oplog from a stale one left behind by
// a checkpoint that crashed between its two file renames.
func (j *Journal) writeOplogHdr(base int64) error {
	hdr := make([]byte, oplogHdr)
	binary.LittleEndian.PutUint32(hdr[0:], oplogMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(base))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(hdr[:12]))
	_, err := j.of.WriteAt(hdr, 0)
	return err
}

// parseOplogHdr validates an oplog epoch header, returning its base.
func parseOplogHdr(b []byte) (int64, bool) {
	if len(b) < oplogHdr || binary.LittleEndian.Uint32(b[0:]) != oplogMagic {
		return 0, false
	}
	if crc32.ChecksumIEEE(b[:12]) != binary.LittleEndian.Uint32(b[12:]) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(b[4:])), true
}

// Close closes the journal files without checkpointing.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err1 := j.jf.Close()
	err2 := j.of.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Failed returns the sticky first storage failure, or nil.
func (j *Journal) Failed() error {
	if f := j.fail.Load(); f != nil {
		return fmt.Errorf("%w: %w", ErrPoisoned, f.err)
	}
	return nil
}

// poison records err as the sticky failure (first one wins) and returns it.
func (j *Journal) poison(err error) error {
	if err == nil {
		return nil
	}
	j.fail.CompareAndSwap(nil, &failure{err: err})
	return err
}

// NeedsRecovery reports whether the journal holds a prior epoch
// (a non-empty journal file).
func (j *Journal) NeedsRecovery() (bool, error) {
	st, err := j.jf.Stat()
	if err != nil {
		return false, err
	}
	return st.Size() > 0, nil
}

// Guard is the pagestore.WriteGuard: it captures the page's pre-image
// (once per epoch) before the store overwrites it.
func (j *Journal) Guard(id pagestore.PageID) error {
	if err := j.Failed(); err != nil {
		return err
	}
	j.mu.Lock()
	if j.captured[id] || id >= j.checkpoint.pages {
		// Already journaled, or a page born after the checkpoint (the
		// recovery truncate discards it).
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()

	// Read the pre-image without holding j.mu (Read takes the store lock).
	img, err := j.store.Read(id)
	if err != nil {
		return fmt.Errorf("journal: capture page %d: %w", id, err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.captured[id] {
		return nil
	}
	rec := make([]byte, 8+4+len(img)+4)
	binary.LittleEndian.PutUint64(rec[0:], uint64(id))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(img)))
	copy(rec[12:], img)
	binary.LittleEndian.PutUint32(rec[12+len(img):], crc32.ChecksumIEEE(rec[:12+len(img)]))
	if _, err := j.jf.Seek(0, io.SeekEnd); err != nil {
		return j.poison(err)
	}
	if _, err := j.jf.Write(rec); err != nil {
		return j.poison(err)
	}
	// Write-ahead rule: the image must be durable before the page write.
	if err := j.jf.Sync(); err != nil {
		return j.poison(err)
	}
	j.captured[id] = true
	return nil
}

// Append logs a logical operation. With syncOps the record is durable on
// return; otherwise it is durable at the next Commit (or Checkpoint).
func (j *Journal) Append(op Op) error {
	if err := j.Failed(); err != nil {
		return err
	}
	j.mu.Lock()
	rec := make([]byte, opRecSize)
	rec[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(rec[1:], uint64(op.Key))
	binary.LittleEndian.PutUint64(rec[9:], op.Val)
	binary.LittleEndian.PutUint32(rec[17:], crc32.ChecksumIEEE(rec[:17]))
	if _, err := j.of.Seek(0, io.SeekEnd); err != nil {
		j.mu.Unlock()
		return j.poison(err)
	}
	if _, err := j.of.Write(rec); err != nil {
		j.mu.Unlock()
		return j.poison(err)
	}
	j.appendSeq++
	j.oplogBytes += opRecSize
	j.mu.Unlock()
	if j.syncOps {
		j.syncMu.Lock()
		defer j.syncMu.Unlock()
		// Read the covered sequence BEFORE the fsync: records appended by
		// racing writers after the fsync starts are not covered by it.
		j.mu.Lock()
		covered, base := j.appendSeq, j.baseSeq
		j.mu.Unlock()
		if err := j.of.Sync(); err != nil {
			return j.poison(err)
		}
		if covered > j.syncSeq {
			j.syncSeq = covered
			j.durable.Store(base + covered)
		}
	}
	return nil
}

// Commit makes every record appended before the call durable: group
// commit. If a concurrent Commit's fsync already covered this caller's
// records, it returns without touching the disk; otherwise one fsync
// covers everything appended so far, including records raced in by other
// appenders. After a failed fsync the journal is poisoned — the records
// may or may not be on disk, and no later Commit may claim otherwise.
func (j *Journal) Commit() error {
	if err := j.Failed(); err != nil {
		return err
	}
	j.mu.Lock()
	target := j.appendSeq
	j.mu.Unlock()

	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if err := j.Failed(); err != nil {
		return err // poisoned while we waited for the leader's fsync
	}
	if j.syncSeq >= target {
		return nil // a concurrent commit's fsync covered us
	}
	j.mu.Lock()
	covered, base := j.appendSeq, j.baseSeq
	j.mu.Unlock()
	if err := j.of.Sync(); err != nil {
		return j.poison(err)
	}
	j.commits.Add(1)
	j.syncSeq = covered
	j.durable.Store(base + covered)
	return nil
}

// Stats reports durability progress for the current epoch: records
// appended, records covered by an oplog fsync, current oplog size in
// bytes, and group-commit fsyncs issued.
func (j *Journal) Stats() (appended, synced, oplogBytes, commits int64) {
	j.syncMu.Lock()
	synced = j.syncSeq
	j.syncMu.Unlock()
	j.mu.Lock()
	appended = j.appendSeq
	oplogBytes = j.oplogBytes
	j.mu.Unlock()
	return appended, synced, oplogBytes, j.commits.Load()
}

// Checkpoint begins a fresh epoch: it snapshots the store's current meta
// state into a new journal header (atomically, via rename) and retires
// the oplog — either truncating it, or, when a registered follower still
// needs its records (see SetRetention), sealing it as a catch-up segment
// and starting a fresh one. The global sequence base advances by the
// epoch's record count either way, so a record's sequence number never
// changes. The caller must have flushed and fsync'd the store first, and
// must ensure no Append or Commit runs concurrently.
func (j *Journal) Checkpoint() error {
	if err := j.Failed(); err != nil {
		return err
	}
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	pages, freeHead, root, userData := j.store.Snapshot()
	newBase := j.baseSeq + j.appendSeq

	hdr := make([]byte, journalHdr)
	binary.LittleEndian.PutUint32(hdr[0:], journalMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(pages))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(freeHead))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(root))
	copy(hdr[28:], userData[:])
	binary.LittleEndian.PutUint64(hdr[92:], uint64(newBase))
	binary.LittleEndian.PutUint32(hdr[100:], crc32.ChecksumIEEE(hdr[:100]))

	tmp := j.jPath + ".tmp"
	f, err := j.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return j.poison(err)
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return j.poison(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return j.poison(err)
	}
	if err := j.jf.Close(); err != nil {
		f.Close()
		return j.poison(err)
	}
	if err := j.fs.Rename(tmp, j.jPath); err != nil {
		f.Close()
		return j.poison(err)
	}
	j.jf = f

	// Retire the oplog. Sealing keeps the epoch's records available for
	// follower catch-up: the file is fsync'd (a sealed segment is durable
	// end to end) and renamed into the segment chain, and a fresh oplog
	// opens. Without a follower needing it, truncate as always.
	floor := int64(int64max)
	if j.retain != nil {
		floor = j.retain()
	}
	if j.retainBudget > 0 && j.appendSeq > 0 && floor < newBase {
		if err := j.of.Sync(); err != nil {
			return j.poison(err)
		}
		if err := j.of.Close(); err != nil {
			return j.poison(err)
		}
		segPath := segmentPath(j.oPath, j.baseSeq)
		if err := j.fs.Rename(j.oPath, segPath); err != nil {
			return j.poison(err)
		}
		j.segments = append(j.segments, segment{
			base:  j.baseSeq,
			count: j.appendSeq,
			bytes: j.oplogBytes + oplogHdr,
			path:  segPath,
		})
		j.segBytes += j.oplogBytes + oplogHdr
		nf, err := j.fs.OpenFile(j.oPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return j.poison(err)
		}
		j.of = nf
	} else if err := j.of.Truncate(0); err != nil {
		return j.poison(err)
	}
	if err := j.writeOplogHdr(newBase); err != nil {
		return j.poison(err)
	}
	if err := j.of.Sync(); err != nil {
		return j.poison(err)
	}
	j.baseSeq = newBase
	j.appendSeq = 0
	j.syncSeq = 0
	j.oplogBytes = 0
	j.durable.Store(newBase)
	j.pruneLocked(floor)

	j.captured = make(map[pagestore.PageID]bool)
	j.checkpoint.pages = pages
	j.checkpoint.freeHead = freeHead
	j.checkpoint.root = root
	j.checkpoint.userData = userData
	return nil
}

// Recover rewinds the store to the journaled checkpoint and returns the
// logical operations to replay. A journal without a valid header (fresh
// file) yields no restoration and no ops. Torn trailing records in either
// file are ignored.
func (j *Journal) Recover() ([]Op, error) {
	j.mu.Lock()
	defer j.mu.Unlock()

	jbytes, err := readAll(j.jf)
	if err != nil {
		return nil, err
	}
	if len(jbytes) == 0 {
		// Fresh journal: adopt the store's current state as the epoch base.
		j.checkpoint.pages, j.checkpoint.freeHead, j.checkpoint.root, j.checkpoint.userData = j.store.Snapshot()
		j.baseSeq, j.appendSeq, j.syncSeq, j.oplogBytes = 0, 0, 0, 0
		j.durable.Store(0)
		return nil, nil
	}
	if len(jbytes) < journalHdr {
		return nil, errors.New("journal: truncated header")
	}
	if binary.LittleEndian.Uint32(jbytes[0:]) != journalMagic {
		return nil, errors.New("journal: bad magic")
	}
	if crc32.ChecksumIEEE(jbytes[:100]) != binary.LittleEndian.Uint32(jbytes[100:]) {
		return nil, errors.New("journal: corrupt header")
	}
	pages := pagestore.PageID(binary.LittleEndian.Uint64(jbytes[4:]))
	freeHead := pagestore.PageID(binary.LittleEndian.Uint64(jbytes[12:]))
	root := pagestore.PageID(binary.LittleEndian.Uint64(jbytes[20:]))
	var userData [64]byte
	copy(userData[:], jbytes[28:92])
	base := int64(binary.LittleEndian.Uint64(jbytes[92:]))

	// Restore complete page images (pre-images of post-checkpoint writes).
	off := journalHdr
	type image struct {
		id   pagestore.PageID
		data []byte
	}
	var images []image
	for off+12 <= len(jbytes) {
		id := pagestore.PageID(binary.LittleEndian.Uint64(jbytes[off:]))
		n := int(binary.LittleEndian.Uint32(jbytes[off+8:]))
		if n < 0 || n > pagestore.PageSize || off+12+n+4 > len(jbytes) {
			break // torn tail
		}
		rec := jbytes[off : off+12+n]
		want := binary.LittleEndian.Uint32(jbytes[off+12+n:])
		if crc32.ChecksumIEEE(rec) != want {
			break // torn tail
		}
		images = append(images, image{id: id, data: jbytes[off+12 : off+12+n]})
		off += 12 + n + 4
	}
	// Truncate/restore meta first so restored writes land inside the file.
	if err := j.store.Restore(pages, freeHead, root, userData); err != nil {
		return nil, err
	}
	for _, img := range images {
		if img.id >= pages {
			continue // image of a page beyond the checkpoint (shouldn't happen)
		}
		if err := j.store.WriteRestored(img.id, img.data); err != nil {
			return nil, err
		}
	}
	j.checkpoint.pages = pages
	j.checkpoint.freeHead = freeHead
	j.checkpoint.root = root
	j.checkpoint.userData = userData

	// Parse the oplog, dropping a torn tail. The epoch header must match
	// the journal's base: a mismatch means a checkpoint crashed between
	// renaming the journal header and retiring the oplog, so the records
	// are from the ALREADY-FLUSHED previous epoch — replaying them would
	// be harmless (set semantics) but counting them would corrupt the
	// global sequence space, so the stale file is retired here instead:
	// sealed as a catch-up segment when its record count completes the
	// chain, discarded otherwise.
	obytes, err := readAll(j.of)
	if err != nil {
		return nil, err
	}
	j.baseSeq = base
	var ops []Op
	ohBase, ohOK := parseOplogHdr(obytes)
	switch {
	case ohOK && ohBase == base:
		ops = DecodeOps(obytes[oplogHdr:])
	case ohOK && ohBase < base && ohBase+int64(len(DecodeOps(obytes[oplogHdr:]))) >= base:
		// Stale epoch whose records run through the new base: finish the
		// interrupted seal so followers can still catch up across it.
		if err := j.sealStaleLocked(ohBase); err != nil {
			return nil, err
		}
	default:
		// Fresh, foreign, or short file: start the epoch clean.
		if err := j.of.Truncate(0); err != nil {
			return nil, j.poison(err)
		}
		if err := j.writeOplogHdr(base); err != nil {
			return nil, j.poison(err)
		}
	}
	j.appendSeq = int64(len(ops))
	j.syncSeq = int64(len(ops))
	j.oplogBytes = int64(len(ops)) * opRecSize
	j.durable.Store(base + int64(len(ops)))
	j.discoverSegmentsLocked()
	return ops, nil
}

// sealStaleLocked retires a stale previous-epoch oplog (left by a
// checkpoint that crashed mid-retirement) into the segment chain and
// opens a fresh oplog for the current epoch. Caller holds mu.
func (j *Journal) sealStaleLocked(staleBase int64) error {
	if err := j.of.Close(); err != nil {
		return j.poison(err)
	}
	segPath := segmentPath(j.oPath, staleBase)
	if err := j.fs.Rename(j.oPath, segPath); err != nil {
		return j.poison(err)
	}
	nf, err := j.fs.OpenFile(j.oPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return j.poison(err)
	}
	j.of = nf
	if err := j.writeOplogHdr(j.baseSeq); err != nil {
		return j.poison(err)
	}
	return nil
}

// DecodeOps parses oplog bytes into the valid prefix of logical
// operations, stopping at the first torn, corrupt, or unknown record —
// the crash-recovery contract for a log whose tail may have been in
// flight. It never fails: invalid input yields a shorter (possibly
// empty) prefix.
func DecodeOps(b []byte) []Op {
	var ops []Op
	for off := 0; off+opRecSize <= len(b); off += opRecSize {
		rec := b[off : off+opRecSize]
		if crc32.ChecksumIEEE(rec[:17]) != binary.LittleEndian.Uint32(rec[17:]) {
			break
		}
		kind := OpKind(rec[0])
		if kind != OpInsert && kind != OpDelete {
			break
		}
		ops = append(ops, Op{
			Kind: kind,
			Key:  int64(binary.LittleEndian.Uint64(rec[1:])),
			Val:  binary.LittleEndian.Uint64(rec[9:]),
		})
	}
	return ops
}

// AppendEncodedOp appends op's wire encoding to dst (tests, tooling).
func AppendEncodedOp(dst []byte, op Op) []byte {
	var rec [opRecSize]byte
	rec[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(rec[1:], uint64(op.Key))
	binary.LittleEndian.PutUint64(rec[9:], op.Val)
	binary.LittleEndian.PutUint32(rec[17:], crc32.ChecksumIEEE(rec[:17]))
	return append(dst, rec[:]...)
}

func readAll(f pagestore.File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}
