// Package journal is the logical oplog under a pagestore-backed tree:
// every committed operation (insert key→val, delete key) is appended as
// a CRC-framed record with a global sequence number. Durability and
// recovery follow the checkpoint-image model (ARIES-style fuzzy
// checkpoints, LMDB-style atomic image installs):
//
//   - The tree's durable state is a checkpoint image — a complete,
//     fsync'd pagestore file stamped with the sequence S of the last
//     operation it reflects. The live tree file is scratch: recovery
//     never reads it.
//   - Recovery = copy the image over the live file, then replay the
//     oplog suffix with sequences > S. Insert/delete have set semantics,
//     so replay is idempotent; a torn trailing record (in flight at the
//     crash) is detected by CRC and dropped.
//   - Installing a new image is Rotate: the oplog is atomically replaced
//     (single rename) by one whose epoch base is the image's sequence,
//     inside a bounded blocking window that excludes appenders — the
//     only pause a checkpoint imposes, independent of tree size.
//
// Rotate's crash ordering makes the image rename the commit point: the
// new oplog (holding the records concurrent with the image build) is
// written and fsync'd to a temp file first, then the image is renamed
// into place, then the oplog. A crash before the image rename recovers
// from the old image with the old oplog; a crash between the renames
// recovers from the new image with the old oplog, whose obsolete prefix
// Recover drops by rebasing the file to base S — the rebase invariant:
// after recovery the oplog's base always equals the image's sequence,
// so sequence numbers are never reused across a crash.
//
// # Durability points and group commit
//
// Appended operations are durable only once an oplog fsync covers them:
// per operation when syncOps is set, or at the next Commit otherwise.
// Commit implements group commit — one fsync covers every record
// appended before it, concurrent committers piggyback on each other's
// fsyncs — so a serving layer can acknowledge a whole pipelined batch
// after a single disk barrier.
//
// # Fail-stop on storage errors
//
// After any write or fsync failure, the journal poisons itself: every
// later Append, Commit, and Rotate returns the sticky first error. A
// failed fsync leaves the kernel free to have dropped the dirty pages
// whose writeback failed, so retrying the fsync and getting success
// proves nothing (the fsyncgate failure mode) — the only sound reaction
// is to stop acknowledging writes for good. Checkpoint failures (a
// half-written image on a full disk, say) poison through the same path
// via Poison.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/pagestore"
)

// OpKind labels an oplog record.
type OpKind byte

const (
	// OpInsert records insert(key, val).
	OpInsert OpKind = 1
	// OpDelete records delete(key).
	OpDelete OpKind = 2
)

// Op is one logical operation.
type Op struct {
	Kind OpKind
	Key  int64
	Val  uint64
}

const (
	oplogMagic = 0x4254424f // "BTBO"
	oplogHdr   = 4 + 8 + 4  // magic baseSeq crc
	opRecSize  = 1 + 8 + 8 + 4
)

// OpRecSize is the size in bytes of one encoded oplog record.
const OpRecSize = opRecSize

// OplogHdrSize is the size in bytes of the oplog's epoch header (magic,
// base sequence, CRC), written at offset 0 before any records.
const OplogHdrSize = oplogHdr

// ErrPoisoned is wrapped by every operation on a journal that has seen a
// storage failure.
var ErrPoisoned = errors.New("journal: poisoned by an earlier storage failure")

// Journal is the oplog for one tree.
type Journal struct {
	mu      sync.Mutex
	fs      pagestore.FS
	of      pagestore.File
	oPath   string
	syncOps bool

	// rotMu serializes Rotate/Recover against each other; appends and
	// commits are excluded only inside Rotate's bounded phase 2.
	rotMu sync.Mutex

	// Group-commit state. Lock order: syncMu before mu, never the
	// reverse. appendSeq/oplogBytes are guarded by mu; syncSeq by syncMu.
	syncMu     sync.Mutex
	appendSeq  int64 // records appended this epoch
	syncSeq    int64 // records covered by the last oplog fsync
	oplogBytes int64
	commits    atomic.Int64 // fsyncs issued by Commit (group commits)

	// Global sequence numbering for log shipping. Every appended record
	// has a global sequence number baseSeq+i (i = 1-based position in the
	// epoch); baseSeq is persisted in the epoch header and advances at
	// each rotation, so sequence numbers survive restarts and epochs.
	// durable is the highest fsync-covered global sequence.
	baseSeq int64        // guarded by mu
	durable atomic.Int64 // baseSeq + syncSeq, published after each fsync

	// Sealed oplog segments retained for follower catch-up (oldest
	// first), and the retention policy; all guarded by mu. retain reports
	// the lowest global sequence some registered follower still needs
	// (math.MaxInt64 = none); segments wholly at or below it are pruned
	// at rotation, and the byte budget evicts oldest-first beyond it.
	segments     []segment
	segBytes     int64
	retain       func() int64
	retainBudget int64

	fail atomic.Pointer[failure] // sticky first storage failure
}

type failure struct{ err error }

// Open attaches an oplog at path+".oplog". If the file holds a prior
// run's records, the caller must run Recover (then replay the returned
// ops and checkpoint) before appending. syncOps controls whether every
// logged operation is fsync'd (durable per op) or left to Commit (group
// commit).
func Open(path string, syncOps bool) (*Journal, error) {
	return OpenFS(path, syncOps, nil)
}

// OpenFS is Open through an explicit pagestore.FS (nil = OSFS) — the
// injection point for failpoint testing.
func OpenFS(path string, syncOps bool, fs pagestore.FS) (*Journal, error) {
	if fs == nil {
		fs = pagestore.OSFS
	}
	j := &Journal{
		fs:      fs,
		oPath:   path + ".oplog",
		syncOps: syncOps,
	}
	var err error
	j.of, err = fs.OpenFile(j.oPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// A brand-new oplog gets its epoch header immediately (base 0, not
	// yet fsync'd — the first record's covering fsync persists it too).
	if st, err := j.of.Stat(); err == nil && st.Size() == 0 {
		if err := j.writeOplogHdr(0); err != nil {
			j.of.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	return j, nil
}

// writeOplogHdr stamps the oplog's epoch header at offset 0: the global
// sequence of the record before the file's first (= the epoch base).
func (j *Journal) writeOplogHdr(base int64) error {
	hdr := make([]byte, oplogHdr)
	encodeOplogHdr(hdr, base)
	_, err := j.of.WriteAt(hdr, 0)
	return err
}

func encodeOplogHdr(hdr []byte, base int64) {
	binary.LittleEndian.PutUint32(hdr[0:], oplogMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(base))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(hdr[:12]))
}

// parseOplogHdr validates an oplog epoch header, returning its base.
func parseOplogHdr(b []byte) (int64, bool) {
	if len(b) < oplogHdr || binary.LittleEndian.Uint32(b[0:]) != oplogMagic {
		return 0, false
	}
	if crc32.ChecksumIEEE(b[:12]) != binary.LittleEndian.Uint32(b[12:]) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(b[4:])), true
}

// Close closes the oplog file without checkpointing.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.of.Close()
}

// Failed returns the sticky first storage failure, or nil.
func (j *Journal) Failed() error {
	if f := j.fail.Load(); f != nil {
		return fmt.Errorf("%w: %w", ErrPoisoned, f.err)
	}
	return nil
}

// Poison records err as the journal's sticky failure (first one wins):
// the fail-stop entry point for storage errors detected outside the
// journal itself, like a half-written checkpoint image. Nil is ignored.
func (j *Journal) Poison(err error) error { return j.poison(err) }

// poison records err as the sticky failure (first one wins) and returns it.
func (j *Journal) poison(err error) error {
	if err == nil {
		return nil
	}
	j.fail.CompareAndSwap(nil, &failure{err: err})
	return err
}

// Append logs a logical operation. With syncOps the record is durable on
// return; otherwise it is durable at the next Commit (or rotation).
func (j *Journal) Append(op Op) error {
	if err := j.Failed(); err != nil {
		return err
	}
	j.mu.Lock()
	rec := make([]byte, opRecSize)
	rec[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(rec[1:], uint64(op.Key))
	binary.LittleEndian.PutUint64(rec[9:], op.Val)
	binary.LittleEndian.PutUint32(rec[17:], crc32.ChecksumIEEE(rec[:17]))
	if _, err := j.of.Seek(0, io.SeekEnd); err != nil {
		j.mu.Unlock()
		return j.poison(err)
	}
	if _, err := j.of.Write(rec); err != nil {
		j.mu.Unlock()
		return j.poison(err)
	}
	j.appendSeq++
	j.oplogBytes += opRecSize
	j.mu.Unlock()
	if j.syncOps {
		j.syncMu.Lock()
		defer j.syncMu.Unlock()
		// Read the covered sequence BEFORE the fsync: records appended by
		// racing writers after the fsync starts are not covered by it.
		j.mu.Lock()
		covered, base := j.appendSeq, j.baseSeq
		j.mu.Unlock()
		if err := j.of.Sync(); err != nil {
			return j.poison(err)
		}
		if covered > j.syncSeq {
			j.syncSeq = covered
			j.durable.Store(base + covered)
		}
	}
	return nil
}

// Commit makes every record appended before the call durable: group
// commit. If a concurrent Commit's fsync already covered this caller's
// records, it returns without touching the disk; otherwise one fsync
// covers everything appended so far, including records raced in by other
// appenders. After a failed fsync the journal is poisoned — the records
// may or may not be on disk, and no later Commit may claim otherwise.
func (j *Journal) Commit() error {
	if err := j.Failed(); err != nil {
		return err
	}
	j.mu.Lock()
	target := j.appendSeq
	j.mu.Unlock()

	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if err := j.Failed(); err != nil {
		return err // poisoned while we waited for the leader's fsync
	}
	if j.syncSeq >= target {
		return nil // a concurrent commit's fsync covered us
	}
	j.mu.Lock()
	covered, base := j.appendSeq, j.baseSeq
	j.mu.Unlock()
	if err := j.of.Sync(); err != nil {
		return j.poison(err)
	}
	j.commits.Add(1)
	j.syncSeq = covered
	j.durable.Store(base + covered)
	return nil
}

// Stats reports durability progress for the current epoch: records
// appended, records covered by an oplog fsync, current oplog size in
// bytes, and group-commit fsyncs issued.
func (j *Journal) Stats() (appended, synced, oplogBytes, commits int64) {
	j.syncMu.Lock()
	synced = j.syncSeq
	j.syncMu.Unlock()
	j.mu.Lock()
	appended = j.appendSeq
	oplogBytes = j.oplogBytes
	j.mu.Unlock()
	return appended, synced, oplogBytes, j.commits.Load()
}

// Rotate installs a checkpoint image covering sequences up to upTo: it
// atomically replaces the oplog with one whose epoch base is upTo
// (keeping only the records appended concurrently with the image build)
// and, when a registered follower still needs the outgoing records,
// seals them as a catch-up segment first. commitImage, if non-nil, runs
// inside the blocking window after the replacement oplog is durable and
// must perform the image's atomic install (its rename): its success is
// the commit point of the whole checkpoint.
//
// Phase 1 (sealing) runs concurrently with appends and commits; only
// phase 2 — write + fsync of the small replacement oplog, the two
// renames, and the in-memory rebase — excludes them. The returned
// pause is phase 2's duration: the entire serving stall a checkpoint
// imposes, bounded by the append rate during the image build rather
// than the tree size.
func (j *Journal) Rotate(upTo int64, commitImage func() error) (pauseNs int64, err error) {
	if err := j.Failed(); err != nil {
		return 0, err
	}
	j.rotMu.Lock()
	defer j.rotMu.Unlock()

	j.mu.Lock()
	base := j.baseSeq
	head := base + j.appendSeq
	retain, retainBudget := j.retain, j.retainBudget
	j.mu.Unlock()
	if upTo < base || upTo > head {
		return 0, fmt.Errorf("journal: rotate to %d outside [%d, %d]", upTo, base, head)
	}

	// Phase 1: seal the outgoing records (base, upTo] as a segment while
	// appends continue. The bytes are stable — records never move once
	// appended, only the file's tail grows — so an unlocked ReadAt is
	// safe. The copy is fsync'd before it is renamed into the chain: a
	// sealed segment is durable end to end.
	floor := int64(int64max)
	if retain != nil {
		floor = retain()
	}
	var seg segment
	sealed := false
	if retainBudget > 0 && upTo > base && floor < upTo {
		buf := make([]byte, oplogHdr+(upTo-base)*opRecSize)
		encodeOplogHdr(buf, base)
		if _, err := j.of.ReadAt(buf[oplogHdr:], oplogHdr); err != nil {
			return 0, j.poison(fmt.Errorf("journal: seal segment: %w", err))
		}
		tmp := j.oPath + ".segtmp"
		sf, err := j.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return 0, j.poison(err)
		}
		if _, err := sf.WriteAt(buf, 0); err != nil {
			sf.Close()
			return 0, j.poison(err)
		}
		if err := sf.Sync(); err != nil {
			sf.Close()
			return 0, j.poison(err)
		}
		if err := sf.Close(); err != nil {
			return 0, j.poison(err)
		}
		segPath := segmentPath(j.oPath, base)
		if err := j.fs.Rename(tmp, segPath); err != nil {
			return 0, j.poison(err)
		}
		seg = segment{base: base, count: upTo - base, bytes: int64(len(buf)), path: segPath}
		sealed = true
	}

	// Phase 2: the bounded install pause.
	start := time.Now()
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	err = func() error {
		head = j.baseSeq + j.appendSeq // appends may have raced in since phase 1
		suffix := head - upTo
		buf := make([]byte, oplogHdr+suffix*opRecSize)
		encodeOplogHdr(buf, upTo)
		if suffix > 0 {
			if _, err := j.of.ReadAt(buf[oplogHdr:], oplogHdr+(upTo-base)*opRecSize); err != nil {
				return fmt.Errorf("journal: read rotate suffix: %w", err)
			}
		}
		tmp := j.oPath + ".tmp"
		f, err := j.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			f.Close()
			return err
		}
		// The suffix may hold acked records; it must be durable in the
		// replacement before the old file can be unlinked by the rename.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if commitImage != nil {
			if err := commitImage(); err != nil {
				f.Close()
				return err
			}
		}
		if err := j.fs.Rename(tmp, j.oPath); err != nil {
			f.Close()
			return err
		}
		j.of.Close()
		j.of = f
		j.baseSeq = upTo
		j.appendSeq = suffix
		j.syncSeq = suffix
		j.oplogBytes = suffix * opRecSize
		j.durable.Store(head) // the replacement's fsync covered everything
		if sealed {
			j.segments = append(j.segments, seg)
			j.segBytes += seg.bytes
		}
		j.pruneLocked(floor)
		return nil
	}()
	if err != nil {
		return 0, j.poison(err)
	}
	return time.Since(start).Nanoseconds(), nil
}

// Checkpoint rotates the oplog to its current head with no image
// install: every appended record is retired from the active file
// (sealed for followers or dropped). It is the epoch-advance primitive
// for callers that manage durability elsewhere — the tree always
// rotates through Rotate with a real image.
func (j *Journal) Checkpoint() error {
	_, err := j.Rotate(j.SeqAppended(), nil)
	return err
}

// Recover aligns the oplog with the checkpoint image the caller
// recovered from (imageSeq = the image's stamped sequence) and returns
// the operations to replay on top of it, in order, with global
// sequences (imageSeq, imageSeq+n]. Torn or corrupt trailing records
// are dropped — they were never covered by an fsync, so they were never
// acknowledged.
//
// The rebase invariant: on return the oplog's base equals imageSeq,
// whatever the file held. A file with an older base (a crash between
// Rotate's image and oplog renames) is rebased by rewriting it with
// only the surviving suffix; without that, the next run would reuse
// sequence numbers the image already covers, and a follower that saw
// the originals would silently diverge.
func (j *Journal) Recover(imageSeq int64) ([]Op, error) {
	j.rotMu.Lock()
	defer j.rotMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()

	// Clear temp files an interrupted rotation may have left behind.
	removeFile(j.fs, j.oPath+".tmp")
	removeFile(j.fs, j.oPath+".segtmp")

	obytes, err := readAll(j.of)
	if err != nil {
		return nil, err
	}
	base, ok := parseOplogHdr(obytes)
	var ops []Op
	if ok {
		ops = DecodeOps(obytes[oplogHdr:])
	}
	head := base + int64(len(ops))

	switch {
	case !ok:
		// Fresh, foreign, or short file: start the epoch clean at the image.
		if err := j.of.Truncate(0); err != nil {
			return nil, j.poison(err)
		}
		if err := j.writeOplogHdr(imageSeq); err != nil {
			return nil, j.poison(err)
		}
		ops = nil
	case base > imageSeq:
		// The log claims to start after the image ends: records
		// (imageSeq, base] are gone. Nothing sound can be replayed.
		return nil, fmt.Errorf("journal: oplog base %d ahead of image sequence %d", base, imageSeq)
	case base == imageSeq:
		// Aligned. Drop any torn bytes past the valid prefix so appended
		// records land at the offsets their sequences imply.
		if valid := int64(oplogHdr) + int64(len(ops))*opRecSize; valid < int64(len(obytes)) {
			if err := j.of.Truncate(valid); err != nil {
				return nil, j.poison(err)
			}
		}
	default: // base < imageSeq: rebase to the image (the invariant above)
		keep := head - imageSeq
		if keep < 0 {
			keep = 0
		}
		cut := oplogHdr + int(int64(len(ops))-keep)*opRecSize
		suffix := obytes[cut : cut+int(keep)*opRecSize]
		buf := make([]byte, oplogHdr+len(suffix))
		encodeOplogHdr(buf, imageSeq)
		copy(buf[oplogHdr:], suffix)
		tmp := j.oPath + ".tmp"
		f, err := j.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, j.poison(err)
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			f.Close()
			return nil, j.poison(err)
		}
		// The suffix records may have been acked before the crash — the
		// rebase must be durable before it replaces the old file.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, j.poison(err)
		}
		if err := j.fs.Rename(tmp, j.oPath); err != nil {
			f.Close()
			return nil, j.poison(err)
		}
		j.of.Close()
		j.of = f
		ops = ops[int64(len(ops))-keep:]
	}

	j.baseSeq = imageSeq
	j.appendSeq = int64(len(ops))
	j.syncSeq = int64(len(ops))
	j.oplogBytes = int64(len(ops)) * opRecSize
	j.durable.Store(imageSeq + int64(len(ops)))
	j.discoverSegmentsLocked()
	return ops, nil
}

// DecodeOps parses oplog bytes into the valid prefix of logical
// operations, stopping at the first torn, corrupt, or unknown record —
// the crash-recovery contract for a log whose tail may have been in
// flight. It never fails: invalid input yields a shorter (possibly
// empty) prefix.
func DecodeOps(b []byte) []Op {
	var ops []Op
	for off := 0; off+opRecSize <= len(b); off += opRecSize {
		rec := b[off : off+opRecSize]
		if crc32.ChecksumIEEE(rec[:17]) != binary.LittleEndian.Uint32(rec[17:]) {
			break
		}
		kind := OpKind(rec[0])
		if kind != OpInsert && kind != OpDelete {
			break
		}
		ops = append(ops, Op{
			Kind: kind,
			Key:  int64(binary.LittleEndian.Uint64(rec[1:])),
			Val:  binary.LittleEndian.Uint64(rec[9:]),
		})
	}
	return ops
}

// AppendEncodedOp appends op's wire encoding to dst (tests, tooling).
func AppendEncodedOp(dst []byte, op Op) []byte {
	var rec [opRecSize]byte
	rec[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(rec[1:], uint64(op.Key))
	binary.LittleEndian.PutUint64(rec[9:], op.Val)
	binary.LittleEndian.PutUint32(rec[17:], crc32.ChecksumIEEE(rec[:17]))
	return append(dst, rec[:]...)
}

func readAll(f pagestore.File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}
