package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openJournal(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.db")
	j, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

func TestFreshRecovery(t *testing.T) {
	j, _ := openJournal(t)
	ops, err := j.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("fresh recovery returned %d ops", len(ops))
	}
	if j.SeqAppended() != 0 || j.SeqDurable() != 0 {
		t.Fatalf("fresh seqs: appended=%d durable=%d", j.SeqAppended(), j.SeqDurable())
	}
}

func TestOplogRoundTrip(t *testing.T) {
	j, _ := openJournal(t)
	if _, err := j.Recover(0); err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Kind: OpInsert, Key: 1, Val: 100},
		{Kind: OpDelete, Key: 2},
		{Kind: OpInsert, Key: -7, Val: 9},
	}
	for _, op := range want {
		if err := j.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRotateDropsImagedPrefix(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)
	for i := int64(1); i <= 5; i++ {
		j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i)})
	}
	installed := false
	pause, err := j.Rotate(3, func() error { installed = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !installed {
		t.Fatal("commitImage not invoked")
	}
	if pause < 0 {
		t.Fatalf("pause = %d", pause)
	}
	// The rotation itself made everything durable (the replacement file
	// was fsync'd with the suffix in it).
	if j.SeqAppended() != 5 || j.SeqDurable() != 5 {
		t.Fatalf("seqs after rotate: appended=%d durable=%d", j.SeqAppended(), j.SeqDurable())
	}
	ops, err := j.Recover(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Key != 4 || ops[1].Key != 5 {
		t.Fatalf("suffix after rotate = %+v", ops)
	}
}

func TestRotateBoundsChecked(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)
	j.Append(Op{Kind: OpInsert, Key: 1, Val: 1})
	if _, err := j.Rotate(2, nil); err == nil {
		t.Fatal("rotate past head accepted")
	}
	if err := j.Failed(); err != nil {
		t.Fatalf("bounds error poisoned the journal: %v", err)
	}
}

func TestRotateFailedInstallPoisons(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)
	j.Append(Op{Kind: OpInsert, Key: 1, Val: 1})
	boom := errors.New("image rename exploded")
	if _, err := j.Rotate(1, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("rotate error = %v", err)
	}
	if err := j.Append(Op{Kind: OpInsert, Key: 2, Val: 2}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed install = %v", err)
	}
	if err := j.Commit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit after failed install = %v", err)
	}
}

func TestCheckpointRetiresOplog(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)
	j.Append(Op{Kind: OpInsert, Key: 1, Val: 1})
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ops, err := j.Recover(j.SeqAppended())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("%d ops survived a checkpoint", len(ops))
	}
	if j.SeqAppended() != 1 {
		t.Fatalf("sequence numbering reset: %d", j.SeqAppended())
	}
}

func TestTornOplogTailDropped(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)
	for i := int64(0); i < 5; i++ {
		j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i)})
	}
	// Tear the last record.
	of, err := os.OpenFile(path+".oplog", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := of.Stat()
	of.Truncate(st.Size() - 3)
	of.Close()

	ops, err := j.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("recovered %d ops from torn log, want 4", len(ops))
	}
}

func TestCorruptOplogRecordStopsReplay(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)
	for i := int64(0); i < 5; i++ {
		j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i)})
	}
	// Corrupt the middle record; replay must stop before it, and recovery
	// must discard everything from the corruption on (those records were
	// never fsync-covered, so they were never acked).
	of, _ := os.OpenFile(path+".oplog", os.O_RDWR, 0)
	of.WriteAt([]byte{0xEE}, 16+2*21+3) // 16-byte epoch header, then records
	of.Close()
	ops, err := j.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("recovered %d ops past corruption, want 2", len(ops))
	}
	// The torn tail is gone: appending works and a re-recovery sees the
	// survivors plus the new record at the right sequences.
	j.Append(Op{Kind: OpInsert, Key: 77, Val: 77})
	ops, err = j.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[2].Key != 77 {
		t.Fatalf("post-truncate append: %+v", ops)
	}
}

func TestRecoverRebasesOldEpoch(t *testing.T) {
	// A crash between Rotate's image rename and oplog rename leaves a new
	// image (seq S) with an old oplog (base < S). Recovery must rebase the
	// file to base S, dropping the imaged prefix, so sequence numbers are
	// never reused.
	j, path := openJournal(t)
	j.Recover(0)
	for i := int64(1); i <= 5; i++ {
		j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i)})
	}
	j.Commit()
	ops, err := j.Recover(3) // image says S=3; file base is 0
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Key != 4 || ops[1].Key != 5 {
		t.Fatalf("rebased suffix = %+v", ops)
	}
	if j.SeqAppended() != 5 {
		t.Fatalf("appended seq after rebase = %d", j.SeqAppended())
	}
	// The file itself was rewritten with base 3.
	raw, err := os.ReadFile(path + ".oplog")
	if err != nil {
		t.Fatal(err)
	}
	base, ok := parseOplogHdr(raw)
	if !ok || base != 3 {
		t.Fatalf("oplog base after rebase = %d (ok=%v), want 3", base, ok)
	}
	if len(raw) != OplogHdrSize+2*OpRecSize {
		t.Fatalf("oplog size after rebase = %d", len(raw))
	}
	// New appends continue at sequence 6.
	j.Append(Op{Kind: OpInsert, Key: 6, Val: 6})
	if j.SeqAppended() != 6 {
		t.Fatalf("appended after rebase+append = %d", j.SeqAppended())
	}
}

func TestRecoverRebasePastHead(t *testing.T) {
	// The image can be ahead of every surviving record (torn tail below
	// S): the oplog must still rebase to S with zero ops to replay.
	j, _ := openJournal(t)
	j.Recover(0)
	j.Append(Op{Kind: OpInsert, Key: 1, Val: 1})
	ops, err := j.Recover(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("replay ops = %+v, want none", ops)
	}
	if j.SeqAppended() != 4 || j.SeqDurable() != 4 {
		t.Fatalf("seqs = %d/%d, want 4/4", j.SeqAppended(), j.SeqDurable())
	}
}

func TestRecoverOplogAheadOfImageRejected(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)
	j.Append(Op{Kind: OpInsert, Key: 1, Val: 1})
	j.Checkpoint() // base is now 1
	if _, err := j.Recover(0); err == nil {
		t.Fatal("oplog base ahead of image accepted")
	}
}

func TestRecoverForeignFileStartsClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.db")
	if err := os.WriteFile(path+".oplog", []byte("not an oplog at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := j.Recover(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("foreign file yielded %d ops", len(ops))
	}
	if j.SeqAppended() != 7 {
		t.Fatalf("base after clean start = %d, want 7", j.SeqAppended())
	}
}

func TestJournalClose(t *testing.T) {
	j, _ := openJournal(t)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
