package journal

import (
	"os"
	"path/filepath"
	"testing"

	"btreeperf/internal/pagestore"
)

func openPair(t *testing.T) (*pagestore.Store, *Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.db")
	st, err := pagestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, st, false)
	if err != nil {
		t.Fatal(err)
	}
	return st, j, path
}

func TestFreshJournalNoRecovery(t *testing.T) {
	_, j, _ := openPair(t)
	need, err := j.NeedsRecovery()
	if err != nil {
		t.Fatal(err)
	}
	if need {
		t.Fatal("fresh journal claims recovery needed")
	}
	ops, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("fresh recovery returned %d ops", len(ops))
	}
}

func TestOplogRoundTrip(t *testing.T) {
	st, j, _ := openPair(t)
	if _, err := j.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Kind: OpInsert, Key: 1, Val: 100},
		{Kind: OpDelete, Key: 2},
		{Kind: OpInsert, Key: -7, Val: 9},
	}
	for _, op := range want {
		if err := j.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	_ = st
}

func TestCheckpointTruncatesOplog(t *testing.T) {
	_, j, _ := openPair(t)
	j.Recover()
	j.Checkpoint()
	j.Append(Op{Kind: OpInsert, Key: 1, Val: 1})
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ops, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("%d ops survived a checkpoint", len(ops))
	}
}

func TestTornOplogTailDropped(t *testing.T) {
	_, j, path := openPair(t)
	j.Recover()
	j.Checkpoint()
	for i := int64(0); i < 5; i++ {
		j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i)})
	}
	// Tear the last record.
	of, err := os.OpenFile(path+".oplog", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := of.Stat()
	of.Truncate(st.Size() - 3)
	of.Close()

	ops, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("recovered %d ops from torn log, want 4", len(ops))
	}
}

func TestCorruptOplogRecordStopsReplay(t *testing.T) {
	_, j, path := openPair(t)
	j.Recover()
	j.Checkpoint()
	for i := int64(0); i < 5; i++ {
		j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i)})
	}
	// Corrupt the middle record; replay must stop before it.
	of, _ := os.OpenFile(path+".oplog", os.O_RDWR, 0)
	of.WriteAt([]byte{0xEE}, 16+2*21+3) // 16-byte epoch header, then records
	of.Close()
	ops, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("recovered %d ops past corruption, want 2", len(ops))
	}
}

func TestPageRestore(t *testing.T) {
	st, j, _ := openPair(t)
	id, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(id, []byte("checkpoint state")); err != nil {
		t.Fatal(err)
	}
	st.SetRoot(id)
	j.Recover() // adopt current state as the epoch base
	j.Checkpoint()
	st.SetWriteGuard(j.Guard)

	// Overwrite the page post-checkpoint; the guard captures the image.
	if err := st.Write(id, []byte("dirty new state")); err != nil {
		t.Fatal(err)
	}
	// Also grow the file.
	id2, _ := st.Allocate()
	st.Write(id2, []byte("post-checkpoint page"))

	pagesBefore, _, _, _ := st.Snapshot()
	if _, err := j.Recover(); err != nil {
		t.Fatal(err)
	}
	data, err := st.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:16]) != "checkpoint state" {
		t.Fatalf("page not restored: %q", data[:16])
	}
	pagesAfter, _, root, _ := st.Snapshot()
	if pagesAfter >= pagesBefore {
		t.Fatalf("file not truncated: %d -> %d", pagesBefore, pagesAfter)
	}
	if root != id {
		t.Fatalf("root not restored: %d", root)
	}
}

func TestGuardCapturesOncePerEpoch(t *testing.T) {
	st, j, path := openPair(t)
	id, _ := st.Allocate()
	st.Write(id, []byte("v0"))
	j.Recover()
	j.Checkpoint()
	st.SetWriteGuard(j.Guard)

	st.Write(id, []byte("v1"))
	sz1, _ := os.Stat(path + ".journal")
	st.Write(id, []byte("v2"))
	sz2, _ := os.Stat(path + ".journal")
	if sz1.Size() != sz2.Size() {
		t.Fatalf("second write re-journaled the page: %d -> %d", sz1.Size(), sz2.Size())
	}
	// Recovery restores v0, not v1.
	j.Recover()
	data, _ := st.Read(id)
	if string(data[:2]) != "v0" {
		t.Fatalf("restored %q, want v0", data[:2])
	}
}

func TestFreshPagesNotJournaled(t *testing.T) {
	st, j, path := openPair(t)
	j.Recover()
	j.Checkpoint()
	st.SetWriteGuard(j.Guard)
	id, _ := st.Allocate() // born after the checkpoint
	st.Write(id, []byte("ephemeral"))
	sz, _ := os.Stat(path + ".journal")
	if sz.Size() != int64(journalHdr) {
		t.Fatalf("fresh page write journaled: %d bytes", sz.Size())
	}
	// Recovery truncates it away.
	j.Recover()
	if _, err := st.Read(id); err == nil {
		t.Fatal("post-checkpoint page survived recovery")
	}
}

func TestJournalClose(t *testing.T) {
	_, j, _ := openPair(t)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptJournalHeaderRejected(t *testing.T) {
	_, j, path := openPair(t)
	j.Recover()
	j.Checkpoint()
	// Corrupt the header.
	jf, err := os.OpenFile(path+".journal", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	jf.WriteAt([]byte{0xAB}, 10)
	jf.Close()
	if _, err := j.Recover(); err == nil {
		t.Fatal("corrupt journal header accepted")
	}
}

func TestTruncatedJournalHeaderRejected(t *testing.T) {
	_, j, path := openPair(t)
	j.Recover()
	j.Checkpoint()
	if err := os.Truncate(path+".journal", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Recover(); err == nil {
		t.Fatal("truncated journal header accepted")
	}
}

func TestTornJournalPageRecordDropped(t *testing.T) {
	st, j, path := openPair(t)
	id, _ := st.Allocate()
	st.Write(id, []byte("base"))
	j.Recover()
	j.Checkpoint()
	st.SetWriteGuard(j.Guard)
	st.Write(id, []byte("new")) // journals the pre-image

	// Tear the page record's tail: the write it guarded is assumed never
	// to have happened (write-ahead), so recovery skips it.
	fi, _ := os.Stat(path + ".journal")
	os.Truncate(path+".journal", fi.Size()-5)
	if _, err := j.Recover(); err != nil {
		t.Fatal(err)
	}
	// The page keeps its current ("new") content — no torn restore.
	data, err := st.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:3]) != "new" {
		t.Fatalf("page = %q", data[:3])
	}
}
