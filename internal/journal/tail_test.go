package journal

import (
	"os"
	"sync"
	"testing"
)

// Tail from seq 0 replays the whole retained history in order, across a
// segment boundary and into the active oplog, respecting max.
func TestTailFromZeroAcrossBoundary(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)
	j.SetRetention(func() int64 { return 0 }, 1<<20)

	appendN(t, j, 0, 4)
	j.Commit()
	j.Checkpoint()      // seals seqs 1..4
	appendN(t, j, 4, 3) // active: seqs 5..7
	j.Commit()

	tl := j.Tail(0)
	defer tl.Close()
	seq := int64(0)
	for seq < 7 {
		first, ops, err := tl.Next(3)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) == 0 {
			t.Fatalf("tail dried up at seq %d", seq)
		}
		if first != seq+1 {
			t.Fatalf("chunk starts at %d, want %d", first, seq+1)
		}
		for i, op := range ops {
			if want := seq + int64(i); op.Key != want {
				t.Fatalf("seq %d has key %d, want %d", first+int64(i), op.Key, want)
			}
		}
		seq += int64(len(ops))
	}
	if first, ops, err := tl.Next(3); err != nil || len(ops) != 0 || first != 0 {
		t.Fatalf("drained tail returned %d/%d/%v, want 0/0/nil", first, len(ops), err)
	}
	if tl.Pos() != 7 {
		t.Fatalf("Pos = %d, want 7", tl.Pos())
	}
}

// A tail must never serve a record ahead of the durability point: a
// leader crash could still lose it, and a follower that applied it would
// silently diverge.
func TestTailStopsAtDurable(t *testing.T) {
	j, _ := openJournal(t)
	j.Recover(0)

	appendN(t, j, 0, 2)
	j.Commit()
	appendN(t, j, 2, 3) // appended, not yet committed

	tl := j.Tail(0)
	defer tl.Close()
	first, ops, err := tl.Next(100)
	if err != nil || first != 1 || len(ops) != 2 {
		t.Fatalf("Next = %d/%d/%v, want 1/2/nil (durable bound)", first, len(ops), err)
	}
	if _, ops, _ := tl.Next(100); len(ops) != 0 {
		t.Fatalf("tail served %d unsynced records", len(ops))
	}
	j.Commit()
	if first, ops, err := tl.Next(100); err != nil || first != 3 || len(ops) != 3 {
		t.Fatalf("Next after commit = %d/%d/%v, want 3/3/nil", first, len(ops), err)
	}
}

// Regression (tail-reader torn-read edge): a reader that reaches EOF in
// the middle of an entry — the writer is mid-append, or the read raced a
// file swap — must consume the complete prefix and retry from the entry
// boundary, not surface an error. Simulated deterministically by
// truncating the file mid-record while the journal's counters still
// promise more, then restoring the missing bytes.
func TestTailEOFMidEntryRetriesFromBoundary(t *testing.T) {
	j, path := openJournal(t)
	j.Recover(0)
	appendN(t, j, 0, 5)
	j.Commit()

	oplog := path + ".oplog"
	full, err := os.ReadFile(oplog)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(OplogHdrSize + 3*OpRecSize + 10) // mid-record 4
	if err := os.Truncate(oplog, cut); err != nil {
		t.Fatal(err)
	}

	tl := j.Tail(0)
	defer tl.Close()
	first, ops, err := tl.Next(100)
	if err != nil {
		t.Fatalf("torn tail surfaced error: %v", err)
	}
	if first != 1 || len(ops) != 3 {
		t.Fatalf("Next on torn file = %d/%d, want the complete prefix 1/3", first, len(ops))
	}
	// Still torn: poll again, still no error, no progress.
	if _, ops, err := tl.Next(100); err != nil || len(ops) != 0 {
		t.Fatalf("retry on torn file = %d ops / %v, want 0/nil", len(ops), err)
	}

	// Writer finishes the entry (and the one after): reader resumes from
	// the record boundary and sees both, intact.
	f, err := os.OpenFile(oplog, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(full[cut:], cut); err != nil {
		t.Fatal(err)
	}
	f.Close()
	first, ops, err = tl.Next(100)
	if err != nil || first != 4 || len(ops) != 2 {
		t.Fatalf("Next after completion = %d/%d/%v, want 4/2/nil", first, len(ops), err)
	}
	if ops[0].Key != 3 || ops[1].Key != 4 {
		t.Fatalf("resumed records = %+v, want keys 3,4", ops)
	}
}

// A tail racing a live writer — appends, group commits, and sealing
// checkpoints all concurrent — must deliver every record exactly once,
// in order, with correct sequence numbers.
func TestTailConcurrentWriter(t *testing.T) {
	const total = 2000
	j, _ := openJournal(t)
	j.Recover(0)
	j.SetRetention(func() int64 { return 0 }, 64<<20)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < total; i++ {
			if err := j.Append(Op{Kind: OpInsert, Key: i, Val: uint64(i) * 3}); err != nil {
				t.Error(err)
				return
			}
			if i%17 == 0 {
				if err := j.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
			if i%479 == 478 {
				if err := j.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
		if err := j.Commit(); err != nil {
			t.Error(err)
		}
	}()

	tl := j.Tail(0)
	defer tl.Close()
	next := int64(1)
	for next <= total {
		first, ops, err := tl.Next(64)
		if err != nil {
			t.Fatalf("at seq %d: %v", next, err)
		}
		if len(ops) == 0 {
			continue
		}
		if first != next {
			t.Fatalf("chunk starts at %d, want %d", first, next)
		}
		for i, op := range ops {
			seq := first + int64(i)
			if op.Key != seq-1 || op.Val != uint64(seq-1)*3 {
				t.Fatalf("seq %d = %+v, want key %d", seq, op, seq-1)
			}
		}
		next += int64(len(ops))
	}
	wg.Wait()
}
