package journal

// Sealed-segment retention for log shipping. A checkpoint normally
// truncates the oplog — its records are reflected in the fsync'd data
// file, so local recovery no longer needs them. A replication follower
// might, though: it resumes from the global sequence it last applied,
// which can lie epochs behind the leader's head. SetRetention lets the
// shipping layer declare the lowest sequence any registered follower
// still needs; checkpoints then seal the outgoing oplog into a segment
// file (named by its epoch base) instead of truncating it, and prune
// the chain as followers advance. The byte budget bounds the chain:
// past it the oldest segments are evicted regardless of need, and a
// follower whose position was evicted must take a snapshot resync
// (Tail.Next reports ErrEvicted) — bounded disk beats silent divergence.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

const int64max = int64(^uint64(0) >> 1)

// segment is one sealed oplog epoch: records with global sequences
// (base, base+count], stored at path with an oplog header in front.
type segment struct {
	base  int64
	count int64
	bytes int64
	path  string
}

// segmentPath names a sealed segment by its epoch base.
func segmentPath(oPath string, base int64) string {
	return fmt.Sprintf("%s.seg-%020d", oPath, base)
}

// SetRetention installs the retention policy: fn reports the lowest
// global sequence still needed by a registered follower (return
// math.MaxInt64 for none), and budgetBytes bounds the total size of
// sealed segments (oldest evicted beyond it). A zero budget disables
// sealing entirely — checkpoints truncate, the pre-replication behavior.
func (j *Journal) SetRetention(fn func() int64, budgetBytes int64) {
	j.mu.Lock()
	j.retain = fn
	j.retainBudget = budgetBytes
	j.mu.Unlock()
}

// pruneLocked drops segments no follower needs (wholly at or below the
// floor), then enforces the byte budget oldest-first. Caller holds mu.
func (j *Journal) pruneLocked(floor int64) {
	drop, remaining := 0, j.segBytes
	for drop < len(j.segments) && j.segments[drop].base+j.segments[drop].count <= floor {
		remaining -= j.segments[drop].bytes
		drop++
	}
	// Over budget: evict the oldest still-needed segments. Followers
	// behind them will be told to resync from a snapshot.
	for drop < len(j.segments) && remaining > j.retainBudget {
		remaining -= j.segments[drop].bytes
		drop++
	}
	for i := 0; i < drop; i++ {
		removeFile(j.fs, j.segments[i].path)
	}
	if drop > 0 {
		j.segments = append([]segment(nil), j.segments[drop:]...)
		j.segBytes = remaining
	}
}

// removeFile deletes path through the FS when it supports removal,
// falling back to the real filesystem (every FS in this repo is backed
// by real files).
func removeFile(fs interface{}, path string) {
	if r, ok := fs.(interface{ Remove(string) error }); ok {
		r.Remove(path)
		return
	}
	os.Remove(path)
}

// discoverSegmentsLocked rebuilds the in-memory segment chain from disk
// after recovery: every well-formed segment file that chains contiguously
// up to the current epoch base is adopted; anything else (stale leftovers
// from evictions or an older tree) is deleted. Caller holds mu.
func (j *Journal) discoverSegmentsLocked() {
	dir, name := filepath.Dir(j.oPath), filepath.Base(j.oPath)+".seg-"
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var found []segment
	for _, e := range entries {
		if e.IsDir() || len(e.Name()) <= len(name) || e.Name()[:len(name)] != name {
			continue
		}
		path := filepath.Join(dir, e.Name())
		seg, ok := j.loadSegment(path)
		if !ok {
			removeFile(j.fs, path)
			continue
		}
		found = append(found, seg)
	}
	sort.Slice(found, func(a, b int) bool { return found[a].base < found[b].base })
	// Keep the maximal contiguous suffix ending exactly at the epoch base.
	keepFrom := len(found)
	next := j.baseSeq
	for i := len(found) - 1; i >= 0; i-- {
		if found[i].base+found[i].count != next {
			break
		}
		next = found[i].base
		keepFrom = i
	}
	for i := 0; i < keepFrom; i++ {
		removeFile(j.fs, found[i].path)
	}
	j.segments = append([]segment(nil), found[keepFrom:]...)
	j.segBytes = 0
	for _, s := range j.segments {
		j.segBytes += s.bytes
	}
}

// loadSegment validates a segment file: its oplog header's base must
// match the base encoded in its name, and its count is the CRC-valid
// record prefix (a sealed segment was fsync'd before the rename, so a
// short prefix means foreign or damaged data — the caller deletes it
// unless it still chains).
func (j *Journal) loadSegment(path string) (segment, bool) {
	f, err := j.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return segment{}, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < oplogHdr {
		return segment{}, false
	}
	hdr := make([]byte, oplogHdr)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return segment{}, false
	}
	base, ok := parseOplogHdr(hdr)
	if !ok {
		return segment{}, false
	}
	var nameBase int64
	if _, err := fmt.Sscanf(filepath.Base(path), filepath.Base(j.oPath)+".seg-%d", &nameBase); err != nil || nameBase != base {
		return segment{}, false
	}
	count := (st.Size() - oplogHdr) / opRecSize
	return segment{base: base, count: count, bytes: st.Size(), path: path}, true
}

// SeqAppended returns the global sequence of the most recently appended
// record (across all epochs since the tree was created).
func (j *Journal) SeqAppended() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.baseSeq + j.appendSeq
}

// SeqDurable returns the highest global sequence covered by an oplog
// fsync — the shipping bound: a leader crash cannot lose records at or
// below it, so only they may be replicated.
func (j *Journal) SeqDurable() int64 { return j.durable.Load() }

// LowestSeq returns the global sequence from which the retained log is
// contiguous: a Tail may resume from any fromSeq >= LowestSeq(). A
// follower further behind needs a snapshot resync.
func (j *Journal) LowestSeq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lowestLocked()
}

func (j *Journal) lowestLocked() int64 {
	if len(j.segments) > 0 {
		return j.segments[0].base
	}
	return j.baseSeq
}

// RetainedSegments reports the sealed catch-up chain: segment count and
// total bytes (the active oplog is not counted).
func (j *Journal) RetainedSegments() (n int, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segments), j.segBytes
}
