package journal

// Tail reads the oplog as a replication stream: a cursor over global
// sequence numbers that follows the log across sealed segments and the
// active epoch, bounded by the durable sequence — a leader never ships
// a record its own crash could still lose.
//
// Concurrency: a Tail owns a private read-only file handle, so its reads
// never race the appender's Seek+Write cursor. The planning step (which
// file, which offset, how many records are safe to read) runs under the
// journal lock; the file I/O does not, so a slow reader never stalls
// commits. A reader may catch the file mid-append — EOF in the middle of
// an entry, or a record whose bytes are not all in place yet. That is
// not an error: Next consumes the complete CRC-valid prefix and leaves
// the cursor at the entry boundary, so the next call retries the torn
// entry after the writer finishes it.

import (
	"errors"
	"io"
	"os"
)

// ErrEvicted reports that the requested sequence is no longer in the
// retained log (pruned or budget-evicted): the follower cannot catch up
// from the log and must take a snapshot resync.
var ErrEvicted = errors.New("journal: sequence evicted from the retained log")

// Tail is a sequential reader of the oplog from a global sequence.
type Tail struct {
	j    *Journal
	next int64 // next global sequence to deliver

	f     filehandle
	fPath string

	// unsynced lifts the durable bound to the appended head: records not
	// yet covered by an fsync are served too. Shipping MUST NOT use this
	// (an unsynced record can vanish in a leader crash after being
	// shipped); it exists for tests that exercise the torn-tail retry.
	unsynced bool

	buf []byte
	hdr [oplogHdr]byte
}

type filehandle interface {
	io.ReaderAt
	io.Closer
}

// Tail opens a read cursor delivering records with global sequences
// > fromSeq (fromSeq = 0 reads from the beginning of history). Errors —
// including an evicted fromSeq — surface on Next, so a follower
// registration can always be represented.
func (j *Journal) Tail(fromSeq int64) *Tail {
	return &Tail{j: j, next: fromSeq + 1}
}

// IncludeUnsynced widens the read bound from the durable sequence to the
// appended head (tests only; see the field comment).
func (t *Tail) IncludeUnsynced() { t.unsynced = true }

// Pos returns the sequence of the last delivered record.
func (t *Tail) Pos() int64 { return t.next - 1 }

// Close releases the cursor's file handle. The Tail may be used again;
// the next read reopens.
func (t *Tail) Close() error {
	if t.f != nil {
		err := t.f.Close()
		t.f, t.fPath = nil, ""
		return err
	}
	return nil
}

// Next returns up to max records starting at the cursor, with the global
// sequence of the first. (0, nil, nil) means nothing new yet — poll
// again after the next commit. ErrEvicted means the cursor fell off the
// retained log. Torn or in-flight tail entries are retried from the
// entry boundary, never surfaced as errors; a CRC failure strictly below
// the durable bound is real corruption and is surfaced.
func (t *Tail) Next(max int) (firstSeq int64, ops []Op, err error) {
	if max <= 0 {
		return 0, nil, nil
	}
	j := t.j

	// Plan under the lock: resolve the cursor to a file, an epoch base,
	// and the highest sequence safe to read from that file.
	j.mu.Lock()
	if t.next <= j.lowestLocked() {
		j.mu.Unlock()
		return 0, nil, ErrEvicted
	}
	path, base := j.oPath, j.baseSeq
	limit := j.durable.Load()
	if t.unsynced {
		limit = j.baseSeq + j.appendSeq
	}
	if t.next <= j.baseSeq {
		for _, s := range j.segments {
			if t.next <= s.base+s.count {
				path, base = s.path, s.base
				// A sealed segment is durable end to end.
				if end := s.base + s.count; end < limit || t.unsynced {
					limit = end
				}
				break
			}
		}
	}
	j.mu.Unlock()

	if limit < t.next {
		return 0, nil, nil
	}
	n := limit - t.next + 1
	if n > int64(max) {
		n = int64(max)
	}

	if t.fPath != path {
		// First read, or the cursor moved to another file (the active
		// oplog was sealed, or a segment was exhausted).
		if t.f != nil {
			t.f.Close()
		}
		f, err := j.fs.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return 0, nil, err
		}
		t.f, t.fPath = f, path
	}

	want := int(n) * opRecSize
	if cap(t.buf) < want {
		t.buf = make([]byte, want)
	}
	off := oplogHdr + (t.next-1-base)*opRecSize
	got, rerr := t.f.ReadAt(t.buf[:want], off)
	if rerr != nil && rerr != io.EOF && !errors.Is(rerr, io.ErrUnexpectedEOF) {
		return 0, nil, rerr
	}
	// The record read ran without the lock, and a checkpoint may have
	// rebased this very inode (truncate + new epoch header) or swapped the
	// file at this path (seal + fresh oplog) in between. The epoch header's
	// base only ever advances, so if it still matches the plan AFTER the
	// record read, the records read are from the planned epoch. On a
	// mismatch drop the bytes and the handle; the next call replans.
	if _, herr := t.f.ReadAt(t.hdr[:], 0); herr != nil {
		t.Close()
		return 0, nil, nil
	}
	if hb, ok := parseOplogHdr(t.hdr[:]); !ok || hb != base {
		t.Close()
		return 0, nil, nil
	}
	// Decode the complete CRC-valid prefix of whatever is there. A short
	// read or torn trailing entry leaves the cursor at the boundary.
	ops = DecodeOps(t.buf[:got])
	if len(ops) == 0 {
		if !t.unsynced && rerr == nil && got == want {
			// Full durable read that fails CRC: corruption, not a race.
			return 0, nil, errors.New("journal: corrupt record in durable log")
		}
		return 0, nil, nil
	}
	firstSeq = t.next
	t.next += int64(len(ops))
	return firstSeq, ops, nil
}
