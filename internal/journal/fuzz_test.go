package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeOps hammers the oplog record decoder with arbitrary bytes —
// the exact input a recovery sees after a torn write or a corrupted disk
// region. The decoder must never panic, must return only well-formed
// operations, and must honor the prefix contract: every returned op
// re-encodes to exactly the bytes it was decoded from, and decoding
// stops at the first invalid record.
func FuzzDecodeOps(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, OpRecSize))
	valid := AppendEncodedOp(nil, Op{Kind: OpInsert, Key: 42, Val: 7})
	valid = AppendEncodedOp(valid, Op{Kind: OpDelete, Key: -1})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := DecodeOps(data)
		if len(ops) > len(data)/OpRecSize {
			t.Fatalf("decoded %d ops from %d bytes (max %d)", len(ops), len(data), len(data)/OpRecSize)
		}
		for i, op := range ops {
			if op.Kind != OpInsert && op.Kind != OpDelete {
				t.Fatalf("op %d: invalid kind %d", i, op.Kind)
			}
			// Round-trip: the accepted record must re-encode byte-for-byte.
			rec := AppendEncodedOp(nil, op)
			if !bytes.Equal(rec, data[i*OpRecSize:(i+1)*OpRecSize]) {
				t.Fatalf("op %d: decode/encode mismatch", i)
			}
		}
	})
}
