package journal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"btreeperf/internal/pagestore"
)

func openFailJournal(t *testing.T, fs pagestore.FS) *Journal {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "s.db")
	j, err := OpenFS(path, false, fs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if _, err := j.Recover(0); err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCommitCoversAppendedRecords(t *testing.T) {
	j := openFailJournal(t, nil)
	for i := 0; i < 10; i++ {
		if err := j.Append(Op{Kind: OpInsert, Key: int64(i), Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	app, syn, bytes, _ := j.Stats()
	if app != 10 || syn != 0 {
		t.Fatalf("before commit: appended %d synced %d", app, syn)
	}
	if bytes != 10*OpRecSize {
		t.Fatalf("oplog bytes %d, want %d", bytes, 10*OpRecSize)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	app, syn, _, commits := j.Stats()
	if syn != app {
		t.Fatalf("after commit: appended %d synced %d", app, syn)
	}
	if commits != 1 {
		t.Fatalf("commits = %d, want 1", commits)
	}
	// A second Commit with nothing new to cover must not fsync again.
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, c := j.Stats(); c != 1 {
		t.Fatalf("idle commit fsynced: commits = %d", c)
	}
}

// TestGroupCommitPiggyback runs concurrent appenders+committers and
// checks every record ends up covered with far fewer fsyncs than commits
// requested (the group-commit amortization) — and that no Commit ever
// returns with its records uncovered.
func TestGroupCommitPiggyback(t *testing.T) {
	j := openFailJournal(t, nil)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := j.Append(Op{Kind: OpInsert, Key: int64(w*perWorker + i)}); err != nil {
					t.Error(err)
					return
				}
				if err := j.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	app, syn, _, commits := j.Stats()
	if app != workers*perWorker {
		t.Fatalf("appended %d, want %d", app, workers*perWorker)
	}
	if syn < app {
		t.Fatalf("synced %d < appended %d after every Commit returned", syn, app)
	}
	if commits >= workers*perWorker {
		t.Fatalf("no piggybacking: %d fsyncs for %d commits", commits, workers*perWorker)
	}
	t.Logf("group commit: %d records, %d fsyncs", app, commits)
}

// TestFailedSyncPoisonsJournal is the fsyncgate regression: after one
// failed oplog fsync, every later Append and Commit must fail — a retried
// fsync that "succeeds" proves nothing about the records whose writeback
// was dropped.
func TestFailedSyncPoisonsJournal(t *testing.T) {
	// Syncs in this sequence: Commit's fsync is the journal's first sync
	// (Recover on a fresh oplog syncs nothing).
	fs := pagestore.NewFailFS(nil, pagestore.FailPlan{FailSyncAt: 1})
	j := openFailJournal(t, fs)
	if err := j.Append(Op{Kind: OpInsert, Key: 1}); err != nil {
		t.Fatal(err)
	}
	err := j.Commit()
	if !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("Commit = %v, want injected sync failure", err)
	}
	// Sticky: everything after the failed fsync errors with ErrPoisoned,
	// even though the disk would now accept the I/O.
	if err := j.Commit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("second Commit = %v, want ErrPoisoned", err)
	}
	if err := j.Append(Op{Kind: OpInsert, Key: 2}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Append after poison = %v, want ErrPoisoned", err)
	}
	if err := j.Checkpoint(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Checkpoint after poison = %v, want ErrPoisoned", err)
	}
	if _, _, _, commits := j.Stats(); commits != 0 {
		t.Fatalf("poisoned journal recorded %d successful commits", commits)
	}
}

func TestFailedAppendWritePoisons(t *testing.T) {
	// Key the plan to the append's write by counting syscalls with an
	// inert run first.
	probe := pagestore.NewFailFS(nil, pagestore.FailPlan{})
	pj := openFailJournal(t, probe)
	before := probe.Ops()
	if err := pj.Append(Op{Kind: OpInsert, Key: 9}); err != nil {
		t.Fatal(err)
	}
	writeIdx := probe.Ops() // the append's write was the last mutating syscall

	fs := pagestore.NewFailFS(nil, pagestore.FailPlan{FailWriteAt: writeIdx, TornBytes: 5})
	j := openFailJournal(t, fs)
	if fs.Ops() != before {
		t.Fatalf("setup syscalls diverged: %d vs %d", fs.Ops(), before)
	}
	if err := j.Append(Op{Kind: OpInsert, Key: 9}); !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("Append = %v, want injected write failure", err)
	}
	if err := j.Append(Op{Kind: OpInsert, Key: 10}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Append after torn write = %v, want ErrPoisoned", err)
	}
}
