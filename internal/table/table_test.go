package table

import (
	"math"
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("Fig X", "lambda", "resp")
	tb.Caption = "a caption"
	tb.AddRow("0.1", "17.2")
	tb.AddRow("0.2", "18.9")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig X", "a caption", "lambda", "resp", "17.2", "18.9", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := New("", "a", "bbbbbb")
	tb.AddRow("xxxxxx", "y")
	var b strings.Builder
	tb.Render(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Header, separator, one row — all the same display width.
	if len(lines) != 3 {
		t.Fatalf("lines: %q", lines)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned:\n%s", b.String())
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "x", "y")
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x,y\n1,2\n3,4\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestShortRowPadsAndLongRowPanics(t *testing.T) {
	tb := New("t", "x", "y")
	tb.AddRow("only")
	if tb.Rows[0][1] != "" {
		t.Fatal("short row not padded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("long row did not panic")
		}
	}()
	tb.AddRow("1", "2", "3")
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		12345:  "12345",
		42.42:  "42.4",
		1.2345: "1.234",
		0.5:    "0.500",
		0.0001: "1.00e-04",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
	if F(math.Inf(1)) != "inf" || F(math.Inf(-1)) != "-inf" || F(math.NaN()) != "NaN" {
		t.Error("special values")
	}
	if FE(1.5, 0.25) != "1.500±0.250" {
		t.Errorf("FE = %q", FE(1.5, 0.25))
	}
}
