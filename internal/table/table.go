// Package table renders the experiment results as aligned text tables and
// CSV, the two formats cmd/btfigures writes.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("table: row with %d cells in %d-column table", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the header and rows as CSV (title and caption omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float compactly for table cells; NaN and ±Inf render as
// their names, and "unstable" marks an analysis past saturation.
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// FE formats a value ± half-width confidence interval.
func FE(v, ci float64) string {
	return fmt.Sprintf("%s±%s", F(v), F(ci))
}
