package faults

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client conn talking to a raw server conn
// over a real loopback TCP pair.
func pipePair(t *testing.T, inj *Injector) (client net.Conn, srv net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := inj.Conn(raw)
	if wrapped == nil {
		t.Fatal("conn dropped with PDrop=0")
	}
	srv = <-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	return wrapped, srv
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("latency=200us,jitter=1ms,pstall=0.25,stall=50ms,preset=0.5,ptrunc=0.125,pdrop=1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, Latency: 200 * time.Microsecond, Jitter: time.Millisecond,
		PStall: 0.25, Stall: 50 * time.Millisecond, PReset: 0.5, PTrunc: 0.125, PDrop: 1,
	}
	if c != want {
		t.Fatalf("got %+v want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatal("spec not Enabled")
	}
	if c, err := ParseSpec("  "); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"nope=1", "latency", "preset=2", "latency=xyz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	inj := New(Config{Latency: 30 * time.Millisecond})
	cl, srv := pipePair(t, inj)
	defer cl.Close()
	defer srv.Close()

	t0 := time.Now()
	if _, err := cl.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("write took %v, latency not injected", d)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Delayed == 0 {
		t.Fatal("no delayed I/O counted")
	}
}

func TestResetMidStream(t *testing.T) {
	inj := New(Config{PReset: 1, Seed: 3})
	cl, srv := pipePair(t, inj)
	defer cl.Close()
	defer srv.Close()

	if _, err := cl.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write on PReset=1 conn: %v, want net.ErrClosed", err)
	}
	// The peer observes the connection dying (RST or EOF).
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := srv.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("resets=%d, want 1", inj.Stats().Resets)
	}
}

func TestTruncatedWrite(t *testing.T) {
	inj := New(Config{PTrunc: 1, Seed: 5})
	cl, srv := pipePair(t, inj)
	defer cl.Close()
	defer srv.Close()

	payload := []byte("0123456789abcdef")
	n, err := cl.Write(payload)
	if err == nil {
		t.Fatal("truncated write reported success")
	}
	if n != len(payload)/2 {
		t.Fatalf("wrote %d bytes, want truncation to %d", n, len(payload)/2)
	}
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(srv)
	if len(got) > len(payload)/2 {
		t.Fatalf("peer received %d bytes past the truncation point", len(got))
	}
	if inj.Stats().Truncs != 1 {
		t.Fatalf("truncs=%d, want 1", inj.Stats().Truncs)
	}
}

func TestStallInjection(t *testing.T) {
	inj := New(Config{PStall: 1, Stall: 40 * time.Millisecond})
	cl, srv := pipePair(t, inj)
	defer cl.Close()
	defer srv.Close()

	t0 := time.Now()
	if _, err := cl.Write([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 35*time.Millisecond {
		t.Fatalf("write took %v, stall not injected", d)
	}
	if inj.Stats().Stalls == 0 {
		t.Fatal("no stalls counted")
	}
}

func TestDropAtAccept(t *testing.T) {
	inj := New(Config{PDrop: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := inj.Listener(ln)
	defer fln.Close()

	acceptErr := make(chan error, 1)
	go func() {
		_, err := fln.Accept() // every conn dropped: blocks until listener closes
		acceptErr <- err
	}()
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			continue // reset raced the handshake: still a drop
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("dropped conn delivered data")
		}
		c.Close()
	}
	// Every dial either failed outright or saw its conn die; give the
	// accept loop a moment to drain the backlog before counting.
	deadline := time.Now().Add(2 * time.Second)
	for inj.Stats().Drops < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-acceptErr:
		t.Fatalf("Accept returned early: %v", err)
	default:
	}
	fln.Close()
	if err := <-acceptErr; err == nil {
		t.Fatal("Accept nil error after listener close")
	}
	if got := inj.Stats().Drops; got < 1 {
		t.Fatalf("drops=%d, want >= 1", got)
	}
}

// TestDeterminism: the same seed produces the same fault schedule.
func TestDeterminism(t *testing.T) {
	schedule := func(seed uint64) []bool {
		inj := New(Config{PReset: 0.5, Seed: seed})
		c := &Conn{inj: inj, cfg: inj.cfg}
		c.rng.Store(seed + 0x9e3779b97f4a7c15)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, c.chance(0.5))
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
	c := schedule(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}
