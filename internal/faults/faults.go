// Package faults injects network failures into net.Listener/net.Conn
// pairs so the serving layer can be tested — and demonstrated — against
// the conditions it claims to survive: added latency, stalled peers,
// truncated frames, mid-stream connection resets, and dropped accepts.
//
// An Injector is built from a Config (or a compact spec string, see
// ParseSpec) and wraps listeners and conns. Every injected fault is
// drawn from a deterministic per-connection generator seeded from
// Config.Seed and the connection index, so a given (config, connection
// order) reproduces the same fault schedule. All wrappers are safe for
// the usual two-goroutine (one reader, one writer) connection pattern.
package faults

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Config parameterizes an Injector. Probabilities are per I/O call
// (PDrop: per connection); zero disables that fault.
type Config struct {
	Seed uint64 // generator seed; 0 means 1

	Latency time.Duration // fixed delay added to every read and write
	Jitter  time.Duration // uniform [0, Jitter) extra delay per call

	PStall float64       // probability an I/O call stalls for Stall first
	Stall  time.Duration // stall length; default 100ms when PStall > 0

	PReset float64 // probability an I/O call hard-closes the conn (RST on TCP)

	PTrunc float64 // probability a write sends a prefix, then hard-closes

	PDrop float64 // probability a new conn is closed before any I/O
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.Latency > 0 || c.Jitter > 0 || c.PStall > 0 || c.PReset > 0 ||
		c.PTrunc > 0 || c.PDrop > 0
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PStall > 0 && c.Stall == 0 {
		c.Stall = 100 * time.Millisecond
	}
}

// ParseSpec parses a compact comma-separated fault spec, e.g.
//
//	latency=200us,jitter=1ms,pstall=0.001,stall=50ms,preset=0.0005,ptrunc=0.0002,pdrop=0.01,seed=7
//
// Unknown keys are an error; an empty spec is a zero Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("faults: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "latency":
			c.Latency, err = time.ParseDuration(v)
		case "jitter":
			c.Jitter, err = time.ParseDuration(v)
		case "stall":
			c.Stall, err = time.ParseDuration(v)
		case "pstall":
			c.PStall, err = strconv.ParseFloat(v, 64)
		case "preset":
			c.PReset, err = strconv.ParseFloat(v, 64)
		case "ptrunc":
			c.PTrunc, err = strconv.ParseFloat(v, 64)
		case "pdrop":
			c.PDrop, err = strconv.ParseFloat(v, 64)
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return c, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("faults: bad %s: %v", k, err)
		}
	}
	for _, p := range []float64{c.PStall, c.PReset, c.PTrunc, c.PDrop} {
		if p < 0 || p > 1 {
			return c, fmt.Errorf("faults: probability %v outside [0,1]", p)
		}
	}
	return c, nil
}

// Stats counts injected faults across an Injector's connections.
type Stats struct {
	Conns   int64 // connections wrapped
	Drops   int64 // connections dropped at accept/dial
	Stalls  int64
	Resets  int64
	Truncs  int64
	Delayed int64 // I/O calls that got latency/jitter
}

func (s Stats) String() string {
	return fmt.Sprintf("conns=%d drops=%d stalls=%d resets=%d truncs=%d delayed=%d",
		s.Conns, s.Drops, s.Stalls, s.Resets, s.Truncs, s.Delayed)
}

// Injector wraps listeners and connections with fault injection.
type Injector struct {
	cfg     Config
	connSeq atomic.Uint64
	conns   atomic.Int64
	drops   atomic.Int64
	stalls  atomic.Int64
	resets  atomic.Int64
	truncs  atomic.Int64
	delayed atomic.Int64
}

// New builds an Injector for cfg.
func New(cfg Config) *Injector {
	cfg.fill()
	return &Injector{cfg: cfg}
}

// Stats snapshots the injected-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Conns:   i.conns.Load(),
		Drops:   i.drops.Load(),
		Stalls:  i.stalls.Load(),
		Resets:  i.resets.Load(),
		Truncs:  i.truncs.Load(),
		Delayed: i.delayed.Load(),
	}
}

// Listener wraps ln so every accepted connection carries the injector's
// faults. With PDrop, some connections are hard-closed at accept (the
// peer sees a reset/EOF; the caller never sees the conn).
func (i *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		fc := l.inj.Conn(c)
		if fc == nil {
			continue // dropped at accept; keep accepting
		}
		return fc, nil
	}
}

// Conn wraps c with the injector's faults. It returns nil when the
// connection is dropped on arrival (PDrop): the underlying conn has been
// hard-closed and the caller should treat the dial/accept as lost.
func (i *Injector) Conn(c net.Conn) net.Conn {
	fc := &Conn{
		conn: c,
		inj:  i,
		cfg:  i.cfg,
	}
	// splitmix64-style per-conn stream: decorrelate conns without locks.
	fc.rng.Store(i.cfg.Seed + (i.connSeq.Add(1) * 0x9e3779b97f4a7c15))
	if fc.chance(i.cfg.PDrop) {
		i.drops.Add(1)
		hardClose(c)
		return nil
	}
	i.conns.Add(1)
	return fc
}

// Conn is a net.Conn with fault injection on Read and Write. It is safe
// for one concurrent reader plus one concurrent writer, like net.TCPConn.
type Conn struct {
	conn net.Conn
	inj  *Injector
	cfg  Config
	rng  atomic.Uint64
	dead atomic.Bool
}

// next is a lock-free splitmix64 step.
func (c *Conn) next() uint64 {
	z := c.rng.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c *Conn) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(c.next()>>11)/(1<<53) < p
}

// delay sleeps the configured latency + jitter, if any.
func (c *Conn) delay() {
	d := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.next() % uint64(c.cfg.Jitter))
	}
	if d > 0 {
		c.inj.delayed.Add(1)
		time.Sleep(d)
	}
}

// preIO applies stall/reset faults shared by reads and writes. It
// returns false when the conn was reset and the caller should fail.
func (c *Conn) preIO() bool {
	if c.dead.Load() {
		return false
	}
	if c.chance(c.cfg.PStall) {
		c.inj.stalls.Add(1)
		time.Sleep(c.cfg.Stall)
	}
	if c.chance(c.cfg.PReset) {
		c.reset()
		return false
	}
	c.delay()
	return !c.dead.Load()
}

// reset hard-closes the connection: SetLinger(0) turns Close into a TCP
// RST so the peer sees a mid-stream reset, not a clean FIN.
func (c *Conn) reset() {
	if c.dead.Swap(true) {
		return
	}
	c.inj.resets.Add(1)
	hardClose(c.conn)
}

func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (c *Conn) Read(b []byte) (int, error) {
	if !c.preIO() {
		return 0, net.ErrClosed
	}
	return c.conn.Read(b)
}

func (c *Conn) Write(b []byte) (int, error) {
	if !c.preIO() {
		return 0, net.ErrClosed
	}
	if c.chance(c.cfg.PTrunc) && len(b) > 1 {
		c.inj.truncs.Add(1)
		n, err := c.conn.Write(b[:len(b)/2])
		c.reset()
		if err != nil {
			return n, err
		}
		return n, net.ErrClosed
	}
	return c.conn.Write(b)
}

func (c *Conn) Close() error {
	c.dead.Store(true)
	return c.conn.Close()
}

// CloseRead half-closes the read side when the underlying conn supports
// it (the server's drain path relies on this for TCP conns).
func (c *Conn) CloseRead() error {
	if cr, ok := c.conn.(interface{ CloseRead() error }); ok {
		return cr.CloseRead()
	}
	return c.conn.SetReadDeadline(time.Now())
}

// CloseWrite half-closes the write side when supported.
func (c *Conn) CloseWrite() error {
	if cw, ok := c.conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

func (c *Conn) LocalAddr() net.Addr                { return c.conn.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.conn.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.conn.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }
