package qmodel

import (
	"math"
	"testing"

	"btreeperf/internal/des"
	"btreeperf/internal/xrand"
)

func TestValidate(t *testing.T) {
	bad := []Input{
		{LambdaR: -1, MuR: 1},
		{LambdaW: -1, MuW: 1},
		{LambdaR: 1, MuR: 0},
		{LambdaW: 1, MuW: 0},
	}
	for _, in := range bad {
		if _, err := Solve(in); err == nil {
			t.Errorf("Solve(%+v) accepted invalid input", in)
		}
	}
}

func TestPureWriterReducesToMM1(t *testing.T) {
	// With no readers the queue is M/M/1: ρ_w = λ_w/μ_w, T_a = 1/μ_w.
	in := Input{LambdaW: 0.4, MuW: 1.0}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stable {
		t.Fatal("underloaded M/M/1 reported unstable")
	}
	if math.Abs(sol.RhoW-0.4) > 1e-9 {
		t.Fatalf("RhoW = %v, want 0.4", sol.RhoW)
	}
	if sol.RU != 0 || sol.RE != 0 {
		t.Fatalf("reader drains %v/%v with no readers", sol.RU, sol.RE)
	}
	if math.Abs(sol.TA-1) > 1e-9 {
		t.Fatalf("TA = %v, want 1", sol.TA)
	}
}

func TestPureReaderNeverSaturates(t *testing.T) {
	sol, err := Solve(Input{LambdaR: 1000, MuR: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stable || sol.RhoW != 0 {
		t.Fatalf("reader-only queue: %+v", sol)
	}
}

func TestSaturationDetected(t *testing.T) {
	sol, err := Solve(Input{LambdaW: 2, MuW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stable || sol.RhoW != 1 {
		t.Fatalf("overloaded queue reported %+v", sol)
	}
}

func TestReadersIncreaseRhoW(t *testing.T) {
	base, _ := Solve(Input{LambdaW: 0.3, MuW: 1})
	withReaders, _ := Solve(Input{LambdaR: 1, LambdaW: 0.3, MuR: 2, MuW: 1})
	if withReaders.RhoW <= base.RhoW {
		t.Fatalf("readers did not increase writer presence: %v vs %v",
			withReaders.RhoW, base.RhoW)
	}
	if withReaders.RU <= 0 || withReaders.RE <= 0 {
		t.Fatalf("reader drains should be positive: %+v", withReaders)
	}
	if withReaders.TA <= base.TA {
		t.Fatalf("aggregate service should grow with readers")
	}
}

func TestRhoWMonotoneInLambdaW(t *testing.T) {
	prev := -1.0
	for _, lw := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		sol, err := Solve(Input{LambdaR: 0.5, LambdaW: lw, MuR: 2, MuW: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sol.RhoW <= prev {
			t.Fatalf("RhoW not increasing at λ_w=%v: %v <= %v", lw, sol.RhoW, prev)
		}
		prev = sol.RhoW
	}
}

func TestFixedPointConsistency(t *testing.T) {
	in := Input{LambdaR: 0.8, LambdaW: 0.25, MuR: 1.5, MuW: 1.2}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stable {
		t.Fatal("unexpected saturation")
	}
	if got := in.rhs(sol.RhoW); math.Abs(got-sol.RhoW) > 1e-9 {
		t.Fatalf("fixed point residual: rhs(%v) = %v", sol.RhoW, got)
	}
}

func TestMM1Wait(t *testing.T) {
	if got := MM1Wait(0.5, 2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MM1Wait(0.5,2) = %v", got)
	}
	if !math.IsInf(MM1Wait(1, 1), 1) {
		t.Fatal("MM1Wait at saturation should be +Inf")
	}
	if MM1Wait(-0.1, 1) != 0 {
		t.Fatal("negative rho should clamp to 0")
	}
}

func TestMG1Wait(t *testing.T) {
	// For exponential service, M/G/1 reduces to M/M/1:
	// E[X²] = 2/μ², W = λ·2/μ² / (2(1−ρ)) = ρ/(μ(1−ρ)).
	lambda, mu := 0.5, 1.0
	rho := lambda / mu
	got := MG1Wait(lambda, 2/(mu*mu), rho)
	want := rho / (mu * (1 - rho))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MG1Wait = %v, want %v", got, want)
	}
	if !math.IsInf(MG1Wait(1, 1, 1), 1) {
		t.Fatal("MG1Wait at saturation should be +Inf")
	}
}

func TestTheorem3MomentsDegenerate(t *testing.T) {
	// With p_f = 0 and ρ_o = 0 the service is X_e + exp(re):
	// mean te + re, E[X²] = 2(te² + re² + te·re).
	mean, second := Theorem3Moments(2, 0, 99, 0, math.Inf(1), 3)
	if math.Abs(mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	want := 2 * (4.0 + 9.0 + 6.0)
	if math.Abs(second-want) > 1e-12 {
		t.Fatalf("second = %v, want %v", second, want)
	}
}

func TestTheorem3MomentsMonteCarlo(t *testing.T) {
	// Cross-check the closed form against direct sampling of the staged
	// service time.
	te, pf, tf, rhoO, muO, re := 1.0, 0.3, 4.0, 0.4, 0.5, 1.5
	mean, second := Theorem3Moments(te, pf, tf, rhoO, muO, re)
	src := xrand.New(31)
	const n = 400000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := src.Exp(te)
		if src.Bernoulli(pf) {
			x += src.Exp(tf)
		}
		if src.Bernoulli(rhoO) {
			x += src.Exp(1 / muO)
		} else {
			x += src.Exp(re)
		}
		sum += x
		sumSq += x * x
	}
	if got := sum / n; math.Abs(got-mean) > 0.02*mean {
		t.Fatalf("Monte Carlo mean %v vs closed form %v", got, mean)
	}
	if got := sumSq / n; math.Abs(got-second) > 0.05*second {
		t.Fatalf("Monte Carlo E[X²] %v vs closed form %v", got, second)
	}
}

// simulateQueue drives a des.RWLock with Poisson R/W arrivals and
// exponential services, returning measured ρ_w and mean waits.
func simulateQueue(in Input, n int, seed uint64) (rhoW, waitR, waitW float64) {
	env := des.NewEnvironment()
	l := des.NewRWLock(env, "q")
	src := xrand.New(seed)
	arrivals := src.Split(1)
	classes := src.Split(2)
	services := src.Split(3)
	total := in.LambdaR + in.LambdaW
	env.Spawn("arrivals", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			p.Delay(arrivals.ExpRate(total))
			isW := classes.Bernoulli(in.LambdaW / total)
			var class des.Class
			var svc float64
			if isW {
				class = des.Write
				svc = services.Exp(1 / in.MuW)
			} else {
				class = des.Read
				svc = services.Exp(1 / in.MuR)
			}
			env.Spawn("job", func(j *des.Proc) {
				g := l.Acquire(j, class)
				j.Delay(svc)
				l.Release(g)
			})
		}
	})
	end := env.RunAll()
	s := l.Snapshot(end)
	return s.RhoW, s.MeanWaitR, s.MeanWaitW
}

// TestTheorem6AgainstSimulation validates the analytical ρ_w and the
// aggregate-customer waiting-time construction against a direct simulation
// of the FCFS R/W queue. The analysis is approximate; the paper reports
// close agreement, so we allow moderate tolerances.
func TestTheorem6AgainstSimulation(t *testing.T) {
	cases := []Input{
		{LambdaR: 0.6, LambdaW: 0.2, MuR: 2, MuW: 1},
		{LambdaR: 1.5, LambdaW: 0.1, MuR: 2, MuW: 1},
		{LambdaR: 0.3, LambdaW: 0.4, MuR: 1, MuW: 1},
	}
	for _, in := range cases {
		sol, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Stable {
			t.Fatalf("case %+v unexpectedly saturated", in)
		}
		simRho, simWaitR, simWaitW := simulateQueue(in, 80000, 1234)

		if math.Abs(sol.RhoW-simRho) > 0.08 {
			t.Errorf("%+v: ρ_w analysis %v vs sim %v", in, sol.RhoW, simRho)
		}
		// Waiting times via the aggregate-customer M/M/1 view
		// (the paper's Theorem 4): R = ρ_w·T_a/(1−ρ_w),
		// W = R + ρ_w·r_u + (1−ρ_w)·r_e.
		r := MM1Wait(sol.RhoW, sol.TA)
		w := r + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE
		if rel := math.Abs(r-simWaitR) / (simWaitR + 0.05); rel > 0.35 {
			t.Errorf("%+v: reader wait analysis %v vs sim %v", in, r, simWaitR)
		}
		if rel := math.Abs(w-simWaitW) / (simWaitW + 0.05); rel > 0.35 {
			t.Errorf("%+v: writer wait analysis %v vs sim %v", in, w, simWaitW)
		}
	}
}

func TestSaturationMatchesSimulationBlowup(t *testing.T) {
	// At a load the model calls unstable, the simulated queue's wait grows
	// with the horizon (no steady state).
	in := Input{LambdaR: 0.5, LambdaW: 1.2, MuR: 2, MuW: 1}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stable {
		t.Fatalf("expected saturation: %+v", sol)
	}
	_, _, shortWait := simulateQueue(in, 2000, 5)
	_, _, longWait := simulateQueue(in, 20000, 5)
	if longWait < 2*shortWait {
		t.Errorf("unstable queue wait did not grow: %v vs %v", shortWait, longWait)
	}
}
