// Package qmodel implements the approximate analysis of the FCFS
// reader/writer queue from the appendix of Johnson & Shasha (PODS 1990),
// originally derived in Johnson's SIGMETRICS '90 paper ("Approximate
// analysis of reader and writer access to a shared resource").
//
// Readers arrive at rate λ_r and are served at rate μ_r sharing the
// resource; writers arrive at rate λ_w and are served exclusively at rate
// μ_w; grants are strictly FCFS. The analysis groups each writer with the
// readers immediately ahead of it into an "aggregate customer" and yields:
//
//   - ρ_w  — the probability a writer is in the queue (Theorem 6's fixed
//     point),
//   - r_u  — the expected reader-drain wait seen by a writer that arrives
//     while another writer is queued,
//   - r_e  — the same when the queue held no writer on arrival,
//   - T_a  — the aggregate customer service time
//     1/μ_w + ρ_w·r_u + (1−ρ_w)·r_e.
//
// The package also provides the M/M/1 and M/G/1 waiting-time formulas the
// paper's Theorems 3 and 4 are built on.
package qmodel

import (
	"fmt"
	"math"
)

// Input are the four rate parameters of the FCFS R/W queue.
type Input struct {
	LambdaR float64 // reader arrival rate
	LambdaW float64 // writer arrival rate
	MuR     float64 // reader service rate
	MuW     float64 // writer service rate
}

// Solution is the queue's operating point.
type Solution struct {
	RhoW   float64 // probability a writer is in the system
	RU     float64 // reader drain given a preceding writer
	RE     float64 // reader drain given an empty-of-writers queue
	TA     float64 // aggregate customer service time
	Stable bool    // false when no fixed point exists below 1
}

// Validate checks the input for usability.
func (in Input) Validate() error {
	if in.LambdaR < 0 || in.LambdaW < 0 {
		return fmt.Errorf("qmodel: negative arrival rate %+v", in)
	}
	if in.LambdaR > 0 && in.MuR <= 0 {
		return fmt.Errorf("qmodel: readers arrive but μ_r = %v", in.MuR)
	}
	if in.LambdaW > 0 && in.MuW <= 0 {
		return fmt.Errorf("qmodel: writers arrive but μ_w = %v", in.MuW)
	}
	return nil
}

// rhs evaluates the right-hand side of Theorem 6's fixed point at ρ.
func (in Input) rhs(rho float64) float64 {
	if in.LambdaW == 0 {
		return 0
	}
	t := 1 / in.MuW
	if in.LambdaR > 0 {
		t += rho / in.MuR * math.Log(1+rho*in.LambdaR/in.LambdaW)
		t += (1 - rho) / in.MuR * math.Log(1+(1+rho)*in.LambdaR/(in.MuR+in.LambdaW))
	}
	return in.LambdaW * t
}

// Solve computes the queue's operating point. When the fixed point
// ρ = rhs(ρ) has no solution in [0, 1), the queue is saturated: Solve
// returns RhoW = 1 with Stable = false (r_u, r_e, T_a are still evaluated
// at ρ = 1 so callers can inspect the limit).
func Solve(in Input) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if in.LambdaW == 0 {
		// Readers share; no writer ever queues.
		return Solution{RhoW: 0, RU: 0, RE: 0, TA: 0, Stable: true}, nil
	}
	// f(ρ) = ρ − rhs(ρ); f(0) < 0. A stable operating point is the
	// smallest root in [0, 1). rhs is increasing in ρ, so bisection on
	// [0, 1] is robust.
	f := func(rho float64) float64 { return rho - in.rhs(rho) }
	rho := 1.0
	stable := false
	if f(1) > 0 {
		lo, hi := 0.0, 1.0
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			if f(mid) < 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		rho = (lo + hi) / 2
		stable = true
	}
	sol := Solution{RhoW: rho, Stable: stable}
	if in.LambdaR > 0 {
		sol.RU = math.Log(1+rho*in.LambdaR/in.LambdaW) / in.MuR
		sol.RE = math.Log(1+(1+rho)*in.LambdaR/(in.MuR+in.LambdaW)) / in.MuR
	}
	sol.TA = 1/in.MuW + rho*sol.RU + (1-rho)*sol.RE
	return sol, nil
}

// MM1Wait is the M/M/1 queueing delay for utilization rho and mean service
// time ta: ρ·T/(1−ρ). It returns +Inf at or beyond saturation.
func MM1Wait(rho, ta float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		return 0
	}
	return rho * ta / (1 - rho)
}

// MG1Wait is the Pollaczek–Khinchine mean waiting time
// W = λ·E[X²] / (2(1−ρ)) for an M/G/1 queue with arrival rate lambda,
// service second moment ex2, and utilization rho. It returns +Inf at or
// beyond saturation.
func MG1Wait(lambda, ex2, rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return lambda * ex2 / (2 * (1 - rho))
}

// Theorem3Moments computes the first and second moments of the
// hyperexponential lock-service time of the paper's Theorem 3:
//
//	X = X_e + Bern(p_f)·X_l + M
//
// where X_e ~ exp(mean t_e) is the unconditional stage (node search plus
// reader drain), X_l ~ exp(mean t_f) is the unsafe-child stage taken with
// probability p_f, and M is the wait for the child's lock — a mixture that
// with probability ρ_o is exp(mean 1/μ_o) (a writer was queued at the
// child) and otherwise exp(mean r_e^child). The second moment is the
// second derivative at 0 of the product-form Laplace transform, i.e. twice
// the bracket of Theorem 3:
//
//	E[X²]/2 = t_o·t_e + p_f·t_f·t_e + t_e² + p_f·t_o·t_f
//	        + ρ_o/μ_o² + p_f·t_f² + (1−ρ_o)·r_e².
func Theorem3Moments(te, pf, tf, rhoO, muO, reChild float64) (mean, second float64) {
	to := (1 - rhoO) * reChild
	varTermO := (1 - rhoO) * reChild * reChild
	if rhoO > 0 {
		to += rhoO / muO
		varTermO += rhoO / (muO * muO)
	}
	mean = te + pf*tf + to
	second = 2 * (to*te + pf*tf*te + te*te + pf*to*tf + varTermO + pf*tf*tf)
	return mean, second
}
