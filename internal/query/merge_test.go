package query

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// fetchShard simulates one shard's Scan: up to limit entries with keys in
// [cursor, hi) drawn from the shard's sorted key set, plus the More flag.
func fetchShard(keys []int64, cursor, hi int64, limit int) ShardFetch {
	var f ShardFetch
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= cursor })
	for ; i < len(keys) && keys[i] < hi; i++ {
		if len(f.Entries) == limit {
			f.More = true
			break
		}
		f.Entries = append(f.Entries, KV{Key: keys[i], Val: uint64(keys[i])})
	}
	return f
}

// drive pages through [lo, hi) with MergePage over the simulated shards,
// returning every emitted key in emission order.
func drive(t *testing.T, shards [][]int64, lo, hi int64, limit int) []int64 {
	t.Helper()
	cursors := make([]int64, len(shards))
	for i := range cursors {
		cursors[i] = lo
	}
	var got []int64
	for pageN := 0; ; pageN++ {
		if pageN > 1_000_000 {
			t.Fatal("merge did not terminate")
		}
		fetches := make([]ShardFetch, len(shards))
		for i := range shards {
			if cursors[i] >= hi {
				continue
			}
			fetches[i] = fetchShard(shards[i], cursors[i], hi, limit)
		}
		page, done := MergePage(fetches, cursors, hi, limit, nil)
		if len(page) > limit {
			t.Fatalf("page of %d entries exceeds limit %d", len(page), limit)
		}
		for _, e := range page {
			got = append(got, e.Key)
		}
		if done {
			return got
		}
		if len(page) == 0 {
			t.Fatal("empty page but not done: the cursor advance is stuck")
		}
	}
}

func TestMergePageSingleShard(t *testing.T) {
	keys := []int64{1, 3, 5, 7, 9}
	got := drive(t, [][]int64{keys}, 0, 10, 2)
	if len(got) != 5 {
		t.Fatalf("got %d keys, want 5", len(got))
	}
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("key %d: %d != %d", i, got[i], k)
		}
	}
}

func TestMergePageEmptyRange(t *testing.T) {
	cursors := []int64{50}
	page, done := MergePage([]ShardFetch{{}}, cursors, 50, 10, nil)
	if len(page) != 0 || !done {
		t.Fatalf("empty fetch: page=%d done=%v", len(page), done)
	}
}

// TestMergePageRandomized checks the paging protocol against the oracle
// (global sort of every shard's in-range keys): every key exactly once,
// in ascending order, regardless of shard count, limit, or distribution.
func TestMergePageRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		nShards := 1 + rng.IntN(6)
		limit := 1 + rng.IntN(8)
		span := int64(1 + rng.IntN(500))
		lo := int64(rng.IntN(100)) - 50
		hi := lo + span

		// Deal random keys across shards disjointly (each key to one shard).
		shards := make([][]int64, nShards)
		var oracle []int64
		seen := map[int64]bool{}
		for n := rng.IntN(300); n > 0; n-- {
			k := lo - 20 + int64(rng.IntN(int(span)+40)) // some keys out of range
			if seen[k] {
				continue
			}
			seen[k] = true
			s := rng.IntN(nShards)
			shards[s] = append(shards[s], k)
			if k >= lo && k < hi {
				oracle = append(oracle, k)
			}
		}
		for i := range shards {
			sort.Slice(shards[i], func(a, b int) bool { return shards[i][a] < shards[i][b] })
		}
		sort.Slice(oracle, func(a, b int) bool { return oracle[a] < oracle[b] })

		got := drive(t, shards, lo, hi, limit)
		if len(got) != len(oracle) {
			t.Fatalf("trial %d: %d keys, oracle %d (shards=%d limit=%d range=[%d,%d))",
				trial, len(got), len(oracle), nShards, limit, lo, hi)
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("trial %d: position %d got %d want %d", trial, i, got[i], oracle[i])
			}
		}
	}
}

// TestMergePageAppendsToDst checks dst reuse: the page is appended, the
// limit counts only new entries.
func TestMergePageAppendsToDst(t *testing.T) {
	dst := []KV{{Key: -100}}
	fetches := []ShardFetch{{Entries: []KV{{Key: 1}, {Key: 2}}}}
	cursors := []int64{0}
	page, done := MergePage(fetches, cursors, 10, 2, dst)
	if len(page) != 3 || page[0].Key != -100 || page[1].Key != 1 || page[2].Key != 2 {
		t.Fatalf("page = %+v", page)
	}
	if !done {
		t.Fatal("fetch exhausted with no More should be done")
	}
}
