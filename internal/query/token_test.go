package query

import (
	"bytes"
	"math"
	"testing"
)

func TestTokenRoundTrip(t *testing.T) {
	cases := [][]int64{
		{0},
		{math.MinInt64, math.MaxInt64},
		{1, 2, 3, 4},
		make([]int64, MaxShards),
	}
	for _, cursors := range cases {
		tok := EncodeToken(nil, cursors)
		if len(tok) > MaxTokenSize {
			t.Fatalf("token for %d cursors is %d bytes (max %d)", len(cursors), len(tok), MaxTokenSize)
		}
		dec, err := DecodeToken(tok)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(cursors) {
			t.Fatalf("decoded %d cursors, want %d", len(dec), len(cursors))
		}
		for i := range dec {
			if dec[i] != cursors[i] {
				t.Fatalf("cursor %d: %d != %d", i, dec[i], cursors[i])
			}
		}
	}
}

func TestTokenAppendsToDst(t *testing.T) {
	pre := []byte{0xaa, 0xbb}
	tok := EncodeToken(pre, []int64{7})
	if !bytes.Equal(tok[:2], pre) {
		t.Fatal("EncodeToken did not append")
	}
	if _, err := DecodeToken(tok[2:]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

func TestTokenRejectsMalformed(t *testing.T) {
	good := EncodeToken(nil, []int64{1, 2})
	bad := [][]byte{
		nil,
		{},
		{0},                                   // zero cursor count
		{1},                                   // count without cursors
		{1, 0, 0, 0, 0, 0, 0, 0},              // truncated cursor
		{MaxShards + 1},                       // oversized count
		append(good[:len(good):len(good)], 0), // trailing byte
		good[:len(good)-1],                    // short one byte
	}
	for i, tok := range bad {
		if _, err := DecodeToken(tok); err == nil {
			t.Errorf("case %d: malformed token accepted", i)
		}
	}
}

func TestEncodeTokenPanicsOutOfRange(t *testing.T) {
	for _, cursors := range [][]int64{nil, make([]int64, MaxShards+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeToken(%d cursors) did not panic", len(cursors))
				}
			}()
			EncodeToken(nil, cursors)
		}()
	}
}

func FuzzDecodeToken(f *testing.F) {
	f.Add(EncodeToken(nil, []int64{1, 2, 3}))
	f.Add([]byte{3, 0, 0})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cursors, err := DecodeToken(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode byte-identically.
		if re := EncodeToken(nil, cursors); !bytes.Equal(re, data) {
			t.Fatalf("re-encode drifted: %x -> %x", data, re)
		}
	})
}
