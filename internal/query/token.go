package query

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MaxShards bounds how many per-shard cursors a continuation token may
// carry. It exists so a token's wire size is bounded (MaxTokenSize) and
// a hostile token cannot make the server allocate per its count byte;
// it comfortably exceeds any shard count the serving layer runs.
const MaxShards = 64

// MaxTokenSize is the largest encoded token: one count byte plus an
// 8-byte cursor per shard.
const MaxTokenSize = 1 + 8*MaxShards

// ErrBadToken reports a continuation token that is not a valid encoding
// (wrong length, zero or oversized shard count). The serving layer maps
// it to StatusBadRequest; it is never a panic.
var ErrBadToken = errors.New("query: malformed continuation token")

// EncodeToken appends the wire encoding of the per-shard cursors to dst:
// a count byte followed by each cursor as a big-endian 8-byte key. The
// token is opaque to clients; only its bounded size is contractual.
func EncodeToken(dst []byte, cursors []int64) []byte {
	if len(cursors) == 0 || len(cursors) > MaxShards {
		panic(fmt.Sprintf("query: EncodeToken with %d cursors", len(cursors)))
	}
	dst = append(dst, byte(len(cursors)))
	for _, c := range cursors {
		dst = binary.BigEndian.AppendUint64(dst, uint64(c))
	}
	return dst
}

// DecodeToken parses a token produced by EncodeToken, validating shape
// strictly: any length that does not exactly match the declared cursor
// count is ErrBadToken. The cursors themselves are arbitrary int64s —
// semantic validation (against the request's range and the server's
// shard count) is the caller's job.
func DecodeToken(tok []byte) ([]int64, error) {
	if len(tok) < 1 {
		return nil, ErrBadToken
	}
	n := int(tok[0])
	if n == 0 || n > MaxShards || len(tok) != 1+8*n {
		return nil, ErrBadToken
	}
	cursors := make([]int64, n)
	for i := range cursors {
		cursors[i] = int64(binary.BigEndian.Uint64(tok[1+8*i:]))
	}
	return cursors, nil
}
