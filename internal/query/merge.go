package query

// ShardFetch is one shard's contribution to the current page: up to the
// page limit of entries starting at that shard's cursor, plus whether
// the shard had further entries in range beyond the last one fetched.
type ShardFetch struct {
	Entries []KV
	More    bool
}

// MergePage merges the per-shard fetches of one page into the globally
// ordered page and advances the per-shard cursors in place, returning
// the page (appended to dst) and whether the whole range [*, hi) is now
// exhausted (no token needed).
//
// Contract: fetches[i] holds shard i's entries with keys >= cursors[i],
// in ascending order, fetched with the SAME limit as this page; keys are
// disjoint across shards (hash partitioning). A shard whose cursor had
// already reached hi contributes an empty fetch with More=false.
//
// Correctness of the cursor advance: let B be the last key emitted. Every
// key <= B on every shard has been emitted — if shard s held an unfetched
// key k <= B, then s returned `limit` entries all < k <= B, and those
// alone fill the page, contradicting B being emitted after them. So each
// shard's next cursor may safely skip to its first unemitted fetched
// entry; a shard whose fetch was fully emitted resumes at its last
// fetched key + 1 when it had more, and is exhausted (cursor = hi)
// otherwise. The +1 cannot overflow: every fetched key is < hi <=
// MaxInt64.
func MergePage(fetches []ShardFetch, cursors []int64, hi int64, limit int, dst []KV) (page []KV, done bool) {
	n := len(fetches)
	pos := make([]int, n)
	page = dst
	for len(page)-len(dst) < limit {
		best := -1
		for i := 0; i < n; i++ {
			if pos[i] >= len(fetches[i].Entries) {
				continue
			}
			if best < 0 || fetches[i].Entries[pos[i]].Key < fetches[best].Entries[pos[best]].Key {
				best = i
			}
		}
		if best < 0 {
			break
		}
		page = append(page, fetches[best].Entries[pos[best]])
		pos[best]++
	}
	done = true
	for i := 0; i < n; i++ {
		switch {
		case pos[i] < len(fetches[i].Entries):
			cursors[i] = fetches[i].Entries[pos[i]].Key
		case fetches[i].More:
			cursors[i] = fetches[i].Entries[len(fetches[i].Entries)-1].Key + 1
		default:
			cursors[i] = hi
		}
		if cursors[i] < hi {
			done = false
		}
	}
	return page, done
}
