// Package query is the serving layer's query subsystem: the entry type
// shared by range scans and secondary lookups, the opaque continuation
// token that makes paging stateless, and the ordered k-way merge that
// executes one logical scan across N hash-partitioned shards.
//
// The design constraint throughout is that the server holds no cursor
// state between pages: a scan of [lo, hi) is a sequence of independent
// requests, each carrying the previous response's token, so a client can
// abandon a scan mid-way (or retry a page against another connection)
// without leaking anything server-side. The token encodes one cursor per
// shard — the next key that shard has not yet contributed — which is all
// the k-way merge needs to resume exactly where the previous page ended.
//
// Range bounds are half-open: a scan covers keys in [lo, hi). The one
// key this cannot express is math.MaxInt64 (there is no exclusive bound
// above it); that key remains reachable by point ops but is outside the
// scannable keyspace, matching the in-memory tree's use of it as the
// +inf sentinel on its rightmost leaf chain.
package query

// KV is one key/value entry of a scan or lookup page, in ascending key
// order within the page.
type KV struct {
	Key int64
	Val uint64
}
