package index

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// ok-returning tree stand-ins.
func applyOK() (bool, error) { return true, nil }

func TestPutDelLookup(t *testing.T) {
	ix := New()
	ix.Put(1, 100, applyOK)
	ix.Put(2, 100, applyOK)
	ix.Put(3, 200, applyOK)

	keys, more := ix.Lookup(100, -1<<62, 10, nil)
	if more || len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("Lookup(100) = %v more=%v", keys, more)
	}

	// Re-pointing a key moves it between postings.
	ix.Put(2, 200, applyOK)
	keys, _ = ix.Lookup(100, -1<<62, 10, nil)
	if len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("after re-point, Lookup(100) = %v", keys)
	}
	keys, _ = ix.Lookup(200, -1<<62, 10, nil)
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 3 {
		t.Fatalf("after re-point, Lookup(200) = %v", keys)
	}

	ix.Del(2, applyOK)
	keys, _ = ix.Lookup(200, -1<<62, 10, nil)
	if len(keys) != 1 || keys[0] != 3 {
		t.Fatalf("after del, Lookup(200) = %v", keys)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}

func TestLookupPaging(t *testing.T) {
	ix := New()
	for k := int64(0); k < 10; k++ {
		ix.Add(k*2, 7) // keys 0,2,...,18
	}
	keys, more := ix.Lookup(7, -1<<62, 4, nil)
	if !more || len(keys) != 4 || keys[3] != 6 {
		t.Fatalf("page 1 = %v more=%v", keys, more)
	}
	// Resume after the last emitted key, inclusive semantics: after = k+1.
	keys, more = ix.Lookup(7, keys[3]+1, 4, nil)
	if !more || len(keys) != 4 || keys[0] != 8 {
		t.Fatalf("page 2 = %v more=%v", keys, more)
	}
	keys, more = ix.Lookup(7, keys[3]+1, 4, nil)
	if more || len(keys) != 2 || keys[1] != 18 {
		t.Fatalf("page 3 = %v more=%v", keys, more)
	}
	if keys, _ := ix.Lookup(99, -1<<62, 4, nil); len(keys) != 0 {
		t.Fatalf("absent value returned %v", keys)
	}
}

// TestPutFailedApplyDoesNotIndex pins the transactional contract: a tree
// op that errors must leave the index untouched.
func TestPutFailedApplyDoesNotIndex(t *testing.T) {
	ix := New()
	fail := func() (bool, error) { return false, errTest }
	if _, err := ix.Put(5, 50, fail); err == nil {
		t.Fatal("error swallowed")
	}
	if keys, _ := ix.Lookup(50, -1<<62, 10, nil); len(keys) != 0 {
		t.Fatalf("failed put indexed: %v", keys)
	}
	ix.Put(5, 50, applyOK)
	if _, err := ix.Del(5, fail); err == nil {
		t.Fatal("error swallowed")
	}
	if keys, _ := ix.Lookup(50, -1<<62, 10, nil); len(keys) != 1 {
		t.Fatalf("failed del unindexed: %v", keys)
	}
}

type testErr struct{}

func (testErr) Error() string { return "test error" }

var errTest = testErr{}

// TestConcurrentAgainstReference hammers the index from many goroutines,
// then checks it against a reference built from a serialized replay of
// the per-key winning order (the stripe lock serializes same-key
// updates, so each key's final value is whichever op ran last — which
// the test records inside the apply closure, exactly where the tree
// mutation would sit).
func TestConcurrentAgainstReference(t *testing.T) {
	ix := New()
	const (
		workers = 8
		opsEach = 5000
		keyMod  = 128 // few keys => heavy same-key contention
	)
	var refMu sync.Mutex
	ref := map[int64]uint64{} // key -> value, updated inside apply
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := 0; i < opsEach; i++ {
				key := int64(rng.IntN(keyMod))
				if rng.IntN(4) == 0 {
					ix.Del(key, func() (bool, error) {
						refMu.Lock()
						delete(ref, key)
						refMu.Unlock()
						return true, nil
					})
				} else {
					val := uint64(rng.IntN(16))
					ix.Put(key, val, func() (bool, error) {
						refMu.Lock()
						ref[key] = val
						refMu.Unlock()
						return true, nil
					})
				}
			}
		}(w)
	}
	wg.Wait()

	if ix.Len() != len(ref) {
		t.Fatalf("index has %d keys, reference %d", ix.Len(), len(ref))
	}
	// Invert the reference and compare every posting list.
	want := map[uint64][]int64{}
	for k, v := range ref {
		want[v] = append(want[v], k)
	}
	for v, keys := range want {
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		got, more := ix.Lookup(v, -1<<62, keyMod+1, nil)
		if more {
			t.Fatalf("value %d: unexpected more", v)
		}
		if len(got) != len(keys) {
			t.Fatalf("value %d: %d keys, want %d", v, len(got), len(keys))
		}
		for i := range got {
			if got[i] != keys[i] {
				t.Fatalf("value %d position %d: %d != %d", v, i, got[i], keys[i])
			}
		}
	}
}
