// Package index maintains one shard's secondary index: value → sorted
// primary keys, kept in step with the primary tree by wrapping each
// Put/Del so the tree mutation and the index update commit as one
// per-key atomic step.
//
// # Consistency
//
// A shard's worker pool mutates the same key from several goroutines, so
// "in step" needs an ordering guarantee: if put(k,v1) and put(k,v2) race,
// the index must end up describing whichever write the tree kept. The
// index serializes same-key updates with a striped key lock held across
// both the tree operation and the postings update; updates to different
// keys only contend on the short critical section of the postings map
// itself (one RWMutex). Lock order is always stripe → postings, so the
// two layers cannot deadlock. Lookups take only the postings read lock:
// they see a per-key-consistent map (never a value the tree did not
// store for that key), though — like scans — they are not a snapshot
// across keys.
//
// # Durability
//
// The index holds no log of its own. The primary oplog already journals
// every Put/Del, and the index is a pure function of the primary tree's
// contents, so after a kill -9 the serving layer recovers the tree from
// its journal and rebuilds the index from the recovered tree (Add). A
// separate index journal would double the fsync traffic to protect
// state that recovery can already reconstruct exactly.
package index

import (
	"sort"
	"sync"
)

// stripes is the key-lock stripe count; power of two so the stripe of a
// key is a mask, sized well past a shard's worker count.
const stripes = 64

// Index is one shard's value → primary-key postings.
type Index struct {
	stripe [stripes]sync.Mutex

	mu    sync.RWMutex
	post  map[uint64][]int64 // value → ascending primary keys
	byKey map[int64]uint64   // primary key → indexed value
}

// New returns an empty index.
func New() *Index {
	return &Index{
		post:  make(map[uint64][]int64),
		byKey: make(map[int64]uint64),
	}
}

func stripeOf(key int64) int {
	h := uint64(key)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & (stripes - 1))
}

// insertSorted adds k to the ascending slice keys (no-op if present).
func insertSorted(keys []int64, k int64) []int64 {
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
	if i < len(keys) && keys[i] == k {
		return keys
	}
	keys = append(keys, 0)
	copy(keys[i+1:], keys[i:])
	keys[i] = k
	return keys
}

// removeSorted deletes k from the ascending slice keys.
func removeSorted(keys []int64, k int64) []int64 {
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
	if i >= len(keys) || keys[i] != k {
		return keys
	}
	return append(keys[:i], keys[i+1:]...)
}

// link records key→val in the postings; call with ix.mu held.
func (ix *Index) link(key int64, val uint64) {
	if old, ok := ix.byKey[key]; ok {
		if old == val {
			return
		}
		ix.unlink(key, old)
	}
	ix.post[val] = insertSorted(ix.post[val], key)
	ix.byKey[key] = val
}

// unlink removes key from val's postings; call with ix.mu held.
func (ix *Index) unlink(key int64, val uint64) {
	if rest := removeSorted(ix.post[val], key); len(rest) > 0 {
		ix.post[val] = rest
	} else {
		delete(ix.post, val)
	}
	delete(ix.byKey, key)
}

// Put applies the primary-tree put (the closure) and, if it succeeded,
// re-points key's posting at val — all under key's stripe lock, so a
// racing Put/Del on the same key cannot leave the index describing a
// value the tree did not keep. The closure's results pass through.
func (ix *Index) Put(key int64, val uint64, apply func() (bool, error)) (bool, error) {
	s := &ix.stripe[stripeOf(key)]
	s.Lock()
	defer s.Unlock()
	ok, err := apply()
	if err != nil {
		return ok, err
	}
	ix.mu.Lock()
	ix.link(key, val)
	ix.mu.Unlock()
	return ok, err
}

// Del applies the primary-tree delete and, if the key was present,
// removes its posting, under the same stripe discipline as Put.
func (ix *Index) Del(key int64, apply func() (bool, error)) (bool, error) {
	s := &ix.stripe[stripeOf(key)]
	s.Lock()
	defer s.Unlock()
	ok, err := apply()
	if err != nil {
		return ok, err
	}
	ix.mu.Lock()
	if old, had := ix.byKey[key]; had {
		ix.unlink(key, old)
	}
	ix.mu.Unlock()
	return ok, err
}

// Add records key→val without running a tree operation — the rebuild
// path: the serving layer scans the recovered primary tree into a fresh
// index before taking traffic. Safe for concurrent use.
func (ix *Index) Add(key int64, val uint64) {
	s := &ix.stripe[stripeOf(key)]
	s.Lock()
	defer s.Unlock()
	ix.mu.Lock()
	ix.link(key, val)
	ix.mu.Unlock()
}

// Lookup appends to dst up to limit primary keys whose indexed value is
// val and whose key is >= after, in ascending order, reporting whether
// more remain. The (after, limit) shape is exactly what the cross-shard
// page merge needs to resume a paged lookup from a continuation token.
func (ix *Index) Lookup(val uint64, after int64, limit int, dst []int64) (keys []int64, more bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	all := ix.post[val]
	i := sort.Search(len(all), func(j int) bool { return all[j] >= after })
	n := len(all) - i
	if n > limit {
		n = limit
		more = true
	}
	return append(dst, all[i:i+n]...), more
}

// Len returns the number of indexed primary keys.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byKey)
}
