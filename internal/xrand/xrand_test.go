package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := New(7).Split(1)
	for i := 0; i < 100; i++ {
		v1, v2, v1a := c1.Uint64(), c2.Uint64(), c1again.Uint64()
		if v1 != v1a {
			t.Fatalf("Split(1) not reproducible at draw %d", i)
		}
		if v1 == v2 {
			t.Fatalf("Split(1) and Split(2) collided at draw %d", i)
		}
	}
}

func TestExpMeanAndVariance(t *testing.T) {
	const n = 200000
	src := New(11)
	mean := 3.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := src.Exp(mean)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05*mean {
		t.Errorf("sample mean %v, want ~%v", m, mean)
	}
	if math.Abs(v-mean*mean) > 0.1*mean*mean {
		t.Errorf("sample variance %v, want ~%v", v, mean*mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	src := New(1)
	for i := 0; i < 10; i++ {
		if got := src.Exp(0); got != 0 {
			t.Fatalf("Exp(0) = %v, want 0", got)
		}
	}
}

func TestExpRate(t *testing.T) {
	src := New(13)
	const n = 100000
	rate := 4.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += src.ExpRate(rate)
	}
	m := sum / n
	if math.Abs(m-1/rate) > 0.02 {
		t.Errorf("ExpRate(4) mean %v, want ~0.25", m)
	}
}

func TestExpNegativeMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

func TestHyperExpMean(t *testing.T) {
	src := New(17)
	p := []float64{0.3, 0.7}
	means := []float64{10, 1}
	want := 0.3*10 + 0.7*1
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += src.HyperExp(p, means)
	}
	m := sum / n
	if math.Abs(m-want) > 0.05*want {
		t.Errorf("HyperExp mean %v, want ~%v", m, want)
	}
}

func TestHyperExpSecondMoment(t *testing.T) {
	// For a hyperexponential, E[X^2] = sum p_i * 2*mean_i^2; its
	// coefficient of variation exceeds 1, unlike a plain exponential.
	src := New(19)
	p := []float64{0.5, 0.5}
	means := []float64{9, 1}
	wantM2 := 0.5*2*81 + 0.5*2*1
	const n = 400000
	sumSq := 0.0
	for i := 0; i < n; i++ {
		x := src.HyperExp(p, means)
		sumSq += x * x
	}
	m2 := sumSq / n
	if math.Abs(m2-wantM2) > 0.1*wantM2 {
		t.Errorf("HyperExp second moment %v, want ~%v", m2, wantM2)
	}
}

func TestHyperExpValidation(t *testing.T) {
	src := New(1)
	cases := []struct {
		p, m []float64
	}{
		{nil, nil},
		{[]float64{0.5}, []float64{1, 2}},
		{[]float64{0.5, 0.4}, []float64{1, 2}}, // sums to 0.9
		{[]float64{-0.5, 1.5}, []float64{1, 2}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: HyperExp(%v,%v) did not panic", i, c.p, c.m)
				}
			}()
			src.HyperExp(c.p, c.m)
		}()
	}
}

func TestBernoulli(t *testing.T) {
	src := New(23)
	if src.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !src.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) hit rate %v", frac)
	}
}

func TestChooseProportions(t *testing.T) {
	src := New(29)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[src.Choose(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Choose index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestChooseZeroWeightNeverPicked(t *testing.T) {
	src := New(31)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if idx := src.Choose(w); idx != 1 {
			t.Fatalf("Choose picked zero-weight index %d", idx)
		}
	}
}

func TestChoosePanics(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choose(%v) did not panic", w)
				}
			}()
			New(1).Choose(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		src := New(seed)
		for i := 0; i < 100; i++ {
			f := src.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMixAvalanche(t *testing.T) {
	// Neighboring labels must give well-separated seeds.
	base := mix(123, 0)
	for l := uint64(1); l < 100; l++ {
		if mix(123, l) == base {
			t.Fatalf("mix collision at label %d", l)
		}
	}
}

func TestSelfSimilar8020(t *testing.T) {
	src := New(41)
	const n = 10000
	const draws = 200000
	inHot := 0
	for i := 0; i < draws; i++ {
		idx := src.SelfSimilar(n, 0.2)
		if idx < 0 || idx >= n {
			t.Fatalf("index %d out of range", idx)
		}
		if idx < n/5 {
			inHot++
		}
	}
	frac := float64(inHot) / draws
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("hot-20%% fraction %v, want ~0.8", frac)
	}
}

func TestSelfSimilarHalfIsUniform(t *testing.T) {
	src := New(43)
	const n = 1000
	const draws = 200000
	firstHalf := 0
	for i := 0; i < draws; i++ {
		if src.SelfSimilar(n, 0.5) < n/2 {
			firstHalf++
		}
	}
	frac := float64(firstHalf) / draws
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("hot=0.5 first-half fraction %v, want ~0.5", frac)
	}
}

func TestSelfSimilarValidation(t *testing.T) {
	src := New(1)
	for _, f := range []func(){
		func() { src.SelfSimilar(0, 0.2) },
		func() { src.SelfSimilar(10, 0) },
		func() { src.SelfSimilar(10, 0.9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid SelfSimilar did not panic")
				}
			}()
			f()
		}()
	}
}
