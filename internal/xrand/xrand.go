// Package xrand provides the random variates used throughout btreeperf:
// exponential and hyperexponential service times, Poisson arrival gaps,
// and reproducible, splittable random sources.
//
// Every stochastic component in the repository draws from an xrand.Source
// seeded explicitly, so simulator runs are deterministic given a seed.
package xrand

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Source is a seeded random source with the variate generators needed by
// the simulator and workload generators. It is NOT safe for concurrent use;
// use Split to derive independent sources for concurrent consumers.
type Source struct {
	rng  *rand.Rand
	seed uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		seed: seed,
	}
}

// Seed returns the seed the Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Split derives a new, statistically independent Source. The derived seed
// mixes the parent seed with the supplied stream label so that the same
// (seed, label) pair always yields the same stream.
func (s *Source) Split(label uint64) *Source {
	return New(mix(s.seed, label))
}

// mix is SplitMix64-style avalanche mixing of two 64-bit words.
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Int63n returns a uniform variate in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 { return s.rng.Int64N(n) }

// IntN returns a uniform variate in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Exp returns an exponential variate with the given mean.
// Exp(0) returns 0 so that zero-cost service times are representable.
func (s *Source) Exp(mean float64) float64 {
	if mean < 0 {
		panic(fmt.Sprintf("xrand: negative exponential mean %v", mean))
	}
	if mean == 0 {
		return 0
	}
	// Inverse transform; 1-U in (0,1] avoids log(0).
	return -mean * math.Log(1-s.rng.Float64())
}

// ExpRate returns an exponential variate with the given rate (1/mean).
func (s *Source) ExpRate(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("xrand: non-positive exponential rate %v", rate))
	}
	return s.Exp(1 / rate)
}

// HyperExp returns a variate from a hyperexponential distribution: with
// probability p[i] the sample is exponential with mean means[i].
// The probabilities must sum to 1 (within 1e-9).
func (s *Source) HyperExp(p, means []float64) float64 {
	if len(p) != len(means) || len(p) == 0 {
		panic("xrand: HyperExp needs matching non-empty probability and mean slices")
	}
	sum := 0.0
	for _, pi := range p {
		if pi < 0 {
			panic("xrand: HyperExp negative probability")
		}
		sum += pi
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("xrand: HyperExp probabilities sum to %v, want 1", sum))
	}
	u := s.rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u < acc {
			return s.Exp(means[i])
		}
	}
	return s.Exp(means[len(means)-1])
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Choose returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. It panics on an empty or all-zero slice.
func (s *Source) Choose(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: Choose negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Choose needs a positive total weight")
	}
	u := s.rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Zipf returns an index in [0, n) drawn with probability approximately
// proportional to 1/(i+1)^skew, by inverting the continuous analogue of
// the Zipf CDF — one uniform draw, O(1), no table. skew <= 0 is uniform;
// larger skew concentrates mass on the low indices (skew = 1 is the
// classic Zipf's law).
func (s *Source) Zipf(n int, skew float64) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Zipf n = %d", n))
	}
	if skew <= 0 {
		return s.rng.IntN(n)
	}
	u := s.rng.Float64()
	var x float64
	if math.Abs(skew-1) < 1e-9 {
		// F(x) = ln x / ln(n+1) over [1, n+1).
		x = math.Exp(u * math.Log(float64(n)+1))
	} else {
		// F(x) = (x^(1−s) − 1)/((n+1)^(1−s) − 1) over [1, n+1).
		e := 1 - skew
		x = math.Pow(1+u*(math.Pow(float64(n)+1, e)-1), 1/e)
	}
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// SelfSimilar returns an index in [0, n) drawn from the self-similar
// ("80/20") distribution: a (1−hot) fraction of draws lands in the first
// hot·n indices, recursively at every scale (Gray et al.). hot must be in
// (0, 0.5]; hot = 0.2 is the classic 80/20 rule, hot = 0.5 is uniform.
func (s *Source) SelfSimilar(n int, hot float64) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: SelfSimilar n = %d", n))
	}
	if hot <= 0 || hot > 0.5 {
		panic(fmt.Sprintf("xrand: SelfSimilar hot = %v outside (0, 0.5]", hot))
	}
	// CDF F(x) = x^θ with θ = ln(1−hot)/ln(hot); invert by U^(1/θ).
	theta := math.Log(1-hot) / math.Log(hot)
	i := int(float64(n) * math.Pow(s.rng.Float64(), 1/theta))
	if i >= n {
		i = n - 1
	}
	return i
}
