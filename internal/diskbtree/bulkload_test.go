package diskbtree

import (
	"path/filepath"
	"testing"

	"btreeperf/internal/xrand"
)

func sortedPairs(n int) ([]int64, []uint64) {
	keys := make([]int64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = int64(i * 5)
		vals[i] = uint64(i)
	}
	return keys, vals
}

func TestDiskBulkLoadBasic(t *testing.T) {
	keys, vals := sortedPairs(20000)
	path := filepath.Join(t.TempDir(), "bulk.db")
	tr, err := BulkLoad(path, Options{Cap: 64, CacheNodes: 64}, keys, vals, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 37 {
		v, ok, err := tr.Search(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != vals[i] {
			t.Fatalf("Search(%d) = %d,%v", keys[i], v, ok)
		}
	}
}

func TestDiskBulkLoadPersists(t *testing.T) {
	keys, vals := sortedPairs(5000)
	path := filepath.Join(t.TempDir(), "bulk.db")
	tr, err := BulkLoad(path, Options{Cap: 32, CacheNodes: 32}, keys, vals, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(path, Options{Cap: 32, CacheNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != len(keys) {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskBulkLoadThenMutate(t *testing.T) {
	keys, vals := sortedPairs(3000)
	path := filepath.Join(t.TempDir(), "bulk.db")
	tr, err := BulkLoad(path, Options{Cap: 16, CacheNodes: 32}, keys, vals, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Full leaves: inserts must split cleanly.
	src := xrand.New(3)
	for i := 0; i < 2000; i++ {
		if _, err := tr.Insert(src.Int63n(20000), 9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := tr.Delete(src.Int63n(20000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskBulkLoadRejectsNonEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bulk.db")
	tr, err := Open(path, Options{Cap: 16, CacheNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(1, 1)
	tr.Close()
	if _, err := BulkLoad(path, Options{Cap: 16, CacheNodes: 16}, []int64{2}, []uint64{2}, 0.9); err == nil {
		t.Fatal("bulk load over existing data accepted")
	}
}

func TestDiskBulkLoadValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bulk.db")
	if _, err := BulkLoad(path, Options{}, []int64{2, 1}, []uint64{1, 2}, 0.9); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := BulkLoad(path, Options{}, []int64{1}, []uint64{}, 0.9); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := BulkLoad(path, Options{}, []int64{1}, []uint64{1}, 2); err == nil {
		t.Fatal("bad fill accepted")
	}
}

func TestDiskBulkLoadDurable(t *testing.T) {
	keys, vals := sortedPairs(2000)
	path := filepath.Join(t.TempDir(), "bulk.db")
	tr, err := BulkLoad(path, Options{Cap: 16, CacheNodes: 16, Durable: true}, keys, vals, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate post-load, then crash.
	for i := int64(0); i < 100; i++ {
		tr.Insert(i*5+1, 7)
	}
	crashed := copyCrashState(t, path, t.TempDir())
	rec, err := Open(crashed, Options{Cap: 16, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 2100 {
		t.Fatalf("Len = %d, want 2100", rec.Len())
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
