package diskbtree

import (
	"testing"

	"btreeperf/internal/pagestore"
)

// FuzzDecodeNode ensures arbitrary page bytes never panic the decoder —
// they must either round out to a node or return an error. (Corrupted
// pages are already caught by the pagestore checksum; this guards the
// parser itself.)
func FuzzDecodeNode(f *testing.F) {
	// Seed with real encodings.
	leaf := &dnode{level: 1, keys: []int64{1, 5, 9}, vals: []uint64{10, 50, 90}, high: 12, hasHigh: true, right: 7}
	f.Add(leaf.encode())
	internal := &dnode{level: 3, keys: []int64{100}, children: []pagestore.PageID{4, 5}}
	f.Add(internal.encode())
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := decodeNode(data)
		if err != nil {
			return
		}
		// A successfully decoded node must re-encode without panicking,
		// and the round trip must be stable.
		buf := n.encode()
		n2, err := decodeNode(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2.level != n.level || len(n2.keys) != len(n.keys) {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzEncodeDecodeRoundTrip drives structured nodes through the codec.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(3), int64(42), uint64(7), true)
	f.Add(uint8(2), uint8(10), int64(-1), uint64(0), false)
	f.Fuzz(func(t *testing.T, levelRaw, nRaw uint8, keyBase int64, valBase uint64, hasHigh bool) {
		level := int(levelRaw%8) + 1
		nkeys := int(nRaw % 64)
		n := &dnode{level: level, hasHigh: hasHigh, high: keyBase + 1000, right: 3}
		for i := 0; i < nkeys; i++ {
			n.keys = append(n.keys, keyBase+int64(i))
		}
		if n.isLeaf() {
			for i := 0; i < nkeys; i++ {
				n.vals = append(n.vals, valBase+uint64(i))
			}
		} else {
			for i := 0; i <= nkeys; i++ {
				n.children = append(n.children, pagestore.PageID(i+1))
			}
		}
		out, err := decodeNode(n.encode())
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if out.level != n.level || out.hasHigh != n.hasHigh || out.right != n.right {
			t.Fatal("header mismatch")
		}
		if len(out.keys) != len(n.keys) {
			t.Fatal("key count mismatch")
		}
		for i := range n.keys {
			if out.keys[i] != n.keys[i] {
				t.Fatal("key mismatch")
			}
		}
		if n.isLeaf() {
			for i := range n.vals {
				if out.vals[i] != n.vals[i] {
					t.Fatal("val mismatch")
				}
			}
		} else {
			for i := range n.children {
				if out.children[i] != n.children[i] {
					t.Fatal("child mismatch")
				}
			}
		}
	})
}
