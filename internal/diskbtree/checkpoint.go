package diskbtree

// Incremental concurrent checkpointing. A checkpoint walks the live tree
// in bounded key chunks — short shared latches on the leaf chain, fully
// concurrent with readers and writers — and streams the keys into a
// fresh, compact pagestore image built bottom-up in a sidecar file
// (path + ".ckpt.tmp"). When the walk finishes, the image is fsync'd and
// atomically installed: journal.Rotate renames it over path + ".ckpt"
// and rebases the oplog to the walk's start sequence S inside one
// bounded blocking window. Recovery then is: copy the image over the
// live file and replay the oplog suffix > S.
//
// Why the fuzzy walk is correct (ARIES-style): S is the oplog head when
// the walk begins, and every tree mutation strictly precedes its oplog
// append — so every operation with sequence ≤ S is fully visible to the
// walk. Operations racing with the walk (sequence > S) may or may not be
// captured, but all of them stay in the rotated oplog and replay
// idempotently (insert/delete have set semantics), in log order, on top
// of the image. Keys never move left in a Lehman–Yao tree (splits move
// them right, there is no merging), so a strictly increasing key cursor
// sees every persistent key exactly once and the streamed keys arrive in
// strictly ascending order — exactly what the bottom-up builder needs.

import (
	"encoding/binary"
	"fmt"
	"math"

	"btreeperf/internal/pagestore"
)

const (
	// ImageSuffix is appended to the tree path to name the installed
	// checkpoint image; ImageTmpSuffix names the in-progress build.
	ImageSuffix    = ".ckpt"
	ImageTmpSuffix = ".ckpt.tmp"

	// syncChunkKeys is the walk chunk used by synchronous full
	// checkpoints (Sync, Close, recovery bootstrap).
	syncChunkKeys = 8192

	// imageFillNum/imageFillDen give the leaf/internal fill factor of a
	// built image (3/4 leaves room for post-recovery inserts without an
	// immediate split wave).
	imageFillNum, imageFillDen = 3, 4
)

// pendingNode is a node of the image still accepting entries: its page
// id is pre-allocated so the previous node of the level can point its
// right link here before being written.
type pendingNode struct {
	n   *dnode
	id  pagestore.PageID
	min int64
}

// imageBuilder streams strictly ascending key/value pairs into a compact
// bottom-up B⁺-tree inside a fresh pagestore. levels[0] is the leaf
// level; a node is written out the moment its successor on the level
// materializes (resolving its right link and high key), so memory use is
// one pending node per level.
type imageBuilder struct {
	store  *pagestore.Store
	cap    int
	per    int
	levels []*pendingNode
	count  int64
}

func newImageBuilder(path string, fs pagestore.FS, cap int) (*imageBuilder, error) {
	pagestore.RemoveFile(fs, path) // debris from an interrupted build
	st, err := pagestore.OpenFS(path, fs)
	if err != nil {
		return nil, err
	}
	per := cap * imageFillNum / imageFillDen
	if per < 2 {
		per = 2
	}
	return &imageBuilder{store: st, cap: cap, per: per}, nil
}

func (b *imageBuilder) newPending(level int, min int64) (*pendingNode, error) {
	id, err := b.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &pendingNode{n: &dnode{level: level}, id: id, min: min}, nil
}

// add appends the next key of the ascending stream.
func (b *imageBuilder) add(key int64, val uint64) error {
	if len(b.levels) == 0 {
		p, err := b.newPending(1, key)
		if err != nil {
			return err
		}
		b.levels = append(b.levels, p)
	}
	p := b.levels[0]
	if len(p.n.keys) >= b.per {
		var err error
		if p, err = b.seal(0, key); err != nil {
			return err
		}
	}
	p.n.keys = append(p.n.keys, key)
	p.n.vals = append(p.n.vals, val)
	b.count++
	return nil
}

// seal writes out the pending node at level index lvl — right link to a
// freshly allocated successor, high key = the successor's minimum — and
// promotes its (id, min) into the parent level. It returns the new
// pending successor.
func (b *imageBuilder) seal(lvl int, nextMin int64) (*pendingNode, error) {
	p := b.levels[lvl]
	np, err := b.newPending(p.n.level, nextMin)
	if err != nil {
		return nil, err
	}
	p.n.right = np.id
	p.n.high, p.n.hasHigh = nextMin, true
	if err := b.store.Write(p.id, p.n.encode()); err != nil {
		return nil, err
	}
	if err := b.promote(lvl+1, p.id, p.min); err != nil {
		return nil, err
	}
	b.levels[lvl] = np
	return np, nil
}

// promote registers a finished child in the pending parent at level
// index lvl, creating or sealing the parent as needed.
func (b *imageBuilder) promote(lvl int, childID pagestore.PageID, childMin int64) error {
	if lvl == len(b.levels) {
		p, err := b.newPending(lvl+1, childMin)
		if err != nil {
			return err
		}
		b.levels = append(b.levels, p)
	}
	p := b.levels[lvl]
	if len(p.n.children) >= b.per {
		var err error
		if p, err = b.seal(lvl, childMin); err != nil {
			return err
		}
	}
	if len(p.n.children) > 0 {
		p.n.keys = append(p.n.keys, childMin)
	}
	p.n.children = append(p.n.children, childID)
	return nil
}

// finish flushes the pending spine bottom-up (each pending node is the
// rightmost of its level: right link 0, infinite high key), stamps the
// meta page (root, key count, capacity, and the checkpoint sequence) and
// fsyncs the image. The caller still owns the store and must close it.
func (b *imageBuilder) finish(seq int64) error {
	var root pagestore.PageID
	if len(b.levels) == 0 {
		// Empty tree: a lone empty leaf root, like a fresh Open.
		id, err := b.store.Allocate()
		if err != nil {
			return err
		}
		if err := b.store.Write(id, (&dnode{level: 1}).encode()); err != nil {
			return err
		}
		root = id
	} else {
		for lvl := 0; ; lvl++ {
			p := b.levels[lvl]
			if err := b.store.Write(p.id, p.n.encode()); err != nil {
				return err
			}
			if lvl == len(b.levels)-1 {
				root = p.id
				break
			}
			// May seal a full parent and grow the spine; the loop bound
			// is re-read each iteration.
			if err := b.promote(lvl+1, p.id, p.min); err != nil {
				return err
			}
		}
	}
	var ud [64]byte
	binary.LittleEndian.PutUint64(ud[0:8], uint64(b.count))
	binary.LittleEndian.PutUint64(ud[8:16], uint64(b.cap))
	binary.LittleEndian.PutUint64(ud[16:24], uint64(seq))
	if err := b.store.SetUserData(ud); err != nil {
		return err
	}
	if err := b.store.SetRoot(root); err != nil {
		return err
	}
	return b.store.Sync()
}

// Checkpoint is one incremental checkpoint in progress. The intended
// sequence is Begin → Step until done → Finalize → Install; Abort at any
// point discards the build. A single goroutine drives a Checkpoint, but
// Steps run fully concurrently with tree readers and writers.
type Checkpoint struct {
	t         *Tree
	seq       int64 // oplog head when the walk began
	b         *imageBuilder
	cursor    int64
	done      bool
	finalized bool
	closed    bool

	keysWalked int64
}

// BeginCheckpoint starts an incremental checkpoint of a durable tree:
// it captures the current oplog head S and opens the sidecar image
// build. Every operation sequenced ≤ S is guaranteed into the image;
// later ones stay in the rotated oplog.
func (t *Tree) BeginCheckpoint() (*Checkpoint, error) {
	if err := t.Poisoned(); err != nil {
		return nil, err
	}
	if t.jnl == nil {
		return nil, fmt.Errorf("diskbtree: checkpoint of a non-durable tree")
	}
	b, err := newImageBuilder(t.path+ImageTmpSuffix, t.fs, t.cap)
	if err != nil {
		return nil, t.poison(err)
	}
	return &Checkpoint{t: t, seq: t.jnl.SeqAppended(), b: b, cursor: math.MinInt64}, nil
}

// Seq returns the oplog sequence this checkpoint covers.
func (c *Checkpoint) Seq() int64 { return c.seq }

// KeysWalked returns the number of keys streamed into the image so far —
// the checkpoint's progress indicator against Tree.Len().
func (c *Checkpoint) KeysWalked() int64 { return c.keysWalked }

// fail poisons the tree and its journal fail-stop: a checkpoint that
// cannot reach disk (ENOSPC, I/O error) leaves durability unprovable, so
// nothing may be acknowledged afterwards.
func (c *Checkpoint) fail(err error) error {
	c.t.jnl.Poison(err)
	return c.t.poison(err)
}

// Step walks one bounded chunk of the live tree — at least maxKeys keys,
// rounded up to the containing leaf — holding only short shared latches
// on the leaf chain, and streams it into the image. It reports whether
// the walk has reached the right edge of the tree.
func (c *Checkpoint) Step(maxKeys int) (bool, error) {
	t := c.t
	if c.done || c.closed {
		return true, nil
	}
	if err := t.Poisoned(); err != nil {
		return false, err
	}
	if maxKeys < 1 {
		maxKeys = 1
	}
	keys := make([]int64, 0, maxKeys)
	vals := make([]uint64, 0, maxKeys)

	id, _, err := t.descend(c.cursor, false)
	if err != nil {
		return false, t.poison(err)
	}
	f, err := t.rLatch(id)
	if err != nil {
		return false, t.poison(err)
	}
	f, err = t.moveRightR(f, c.cursor)
	if err != nil {
		return false, t.poison(err)
	}
	for {
		for i, k := range f.n.keys {
			if k < c.cursor {
				continue // collected by an earlier chunk
			}
			keys = append(keys, k)
			vals = append(vals, f.n.vals[i])
		}
		if f.n.right == 0 {
			c.done = true
			t.rUnlatch(f)
			break
		}
		if len(keys) >= maxKeys {
			// Resume at the right sibling's lower bound: keys never move
			// left, so everything < high is behind us for good.
			c.cursor = f.n.high
			t.rUnlatch(f)
			break
		}
		nf, err := t.rLatch(f.n.right)
		if err != nil {
			t.rUnlatch(f)
			return false, t.poison(err)
		}
		t.rUnlatch(f)
		f = nf
	}

	// Feed the builder outside the latches: image I/O must not extend the
	// window in which writers to the chunk's last leaf are blocked.
	for i, k := range keys {
		if err := c.b.add(k, vals[i]); err != nil {
			return false, c.fail(fmt.Errorf("diskbtree: checkpoint image write: %w", err))
		}
	}
	c.keysWalked += int64(len(keys))
	return c.done, nil
}

// Finalize completes the image after the walk is done: flushes the
// builder's spine, stamps the meta page with S, fsyncs and closes the
// sidecar file. No tree latches are taken.
func (c *Checkpoint) Finalize() error {
	if c.closed {
		return fmt.Errorf("diskbtree: checkpoint already closed")
	}
	if !c.done {
		return fmt.Errorf("diskbtree: checkpoint walk not finished")
	}
	if c.finalized {
		return nil
	}
	if err := c.b.finish(c.seq); err != nil {
		return c.fail(fmt.Errorf("diskbtree: checkpoint finalize: %w", err))
	}
	if err := c.b.store.Close(); err != nil {
		return c.fail(fmt.Errorf("diskbtree: checkpoint finalize: %w", err))
	}
	c.finalized = true
	return nil
}

// Install atomically commits the finalized image: journal.Rotate renames
// it over path+".ckpt" (the commit point) and rebases the oplog to S
// inside one bounded blocking window — the only pause the checkpoint
// imposes, independent of tree size. It returns that pause in
// nanoseconds.
func (c *Checkpoint) Install() (pauseNs int64, err error) {
	t := c.t
	if c.closed {
		return 0, fmt.Errorf("diskbtree: checkpoint already closed")
	}
	if !c.finalized {
		return 0, fmt.Errorf("diskbtree: checkpoint not finalized")
	}
	pauseNs, err = t.jnl.Rotate(c.seq, func() error {
		return t.fs.Rename(t.path+ImageTmpSuffix, t.path+ImageSuffix)
	})
	if err != nil {
		return 0, t.poison(err)
	}
	c.closed = true
	t.ckptSeq.Store(c.seq)
	t.checkpoints.Add(1)
	return pauseNs, nil
}

// Abort discards an unfinished or failed checkpoint, deleting the
// sidecar build. Safe to call at any point, including after Install
// (where it is a no-op).
func (c *Checkpoint) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	if !c.finalized {
		c.b.store.Close()
	}
	pagestore.RemoveFile(c.t.fs, c.t.path+ImageTmpSuffix)
}

// CheckpointNow builds and installs a full checkpoint synchronously,
// walking the tree in syncChunkKeys-sized chunks. Unlike the old
// stop-the-world checkpoint it is safe to run concurrently with readers
// and writers; only Install's bounded window blocks appends. It returns
// the install pause in nanoseconds.
func (t *Tree) CheckpointNow() (pauseNs int64, err error) {
	c, err := t.BeginCheckpoint()
	if err != nil {
		return 0, err
	}
	for {
		done, err := c.Step(syncChunkKeys)
		if err != nil {
			c.Abort()
			return 0, err
		}
		if done {
			break
		}
	}
	if err := c.Finalize(); err != nil {
		c.Abort()
		return 0, err
	}
	return c.Install()
}

// CheckpointSeq returns the sequence of the last installed checkpoint
// image; SeqAppended − CheckpointSeq is the replay debt a crash would
// incur (the "mutations behind" telemetry).
func (t *Tree) CheckpointSeq() int64 { return t.ckptSeq.Load() }

// Checkpoints returns the number of images installed since Open.
func (t *Tree) Checkpoints() int64 { return t.checkpoints.Load() }
