// Package diskbtree is a disk-backed concurrent B⁺-tree: the Lehman–Yao
// (Link-type) protocol — the paper's winning algorithm — running over
// fixed-size pages with an LRU buffer pool. It makes the paper's abstract
// "disk cost D" concrete: node accesses that miss the buffer pool perform
// real page I/O, and the pool's hit ratio is exactly the quantity the
// LRU-buffering extension of the analytical model (core.BufferedCosts)
// predicts from the tree shape.
//
// Concurrency: any number of goroutines may call Search, Insert, Delete
// and Range concurrently. Each buffered node carries its own FCFS
// reader/writer latch; operations hold at most one latch at a time and
// recover from concurrent splits through right links, exactly as in
// internal/cbtree.
//
// Durability: a non-durable tree flushes dirty pages on Sync/Close and
// is NOT crash-atomic (a clean Close is required). With Options.Durable
// the tree follows the checkpoint-image model: every mutation is logged
// to an oplog, Sync installs an atomically renamed image of the whole
// tree (built incrementally, concurrent with serving — see
// BeginCheckpoint in checkpoint.go), and crash recovery restores the
// image and replays the oplog suffix. Restructuring is lazy
// merge-at-empty, as everywhere in this repository.
package diskbtree

import (
	"encoding/binary"
	"fmt"

	"btreeperf/internal/lock"
	"btreeperf/internal/pagestore"
)

// MaxCap is the largest node capacity a 4 KiB page can hold
// (16 bytes per item plus the header).
const MaxCap = 250

// headerSize is the serialized node header:
// level(2) flags(1) pad(1) nkeys(4) high(8) right(8).
const headerSize = 24

// dnode is the in-memory (decoded) form of a node page. All fields are
// guarded by mu; level is immutable after creation.
type dnode struct {
	mu       lock.FCFSRWMutex
	level    int
	keys     []int64
	vals     []uint64           // leaves
	children []pagestore.PageID // internal nodes
	right    pagestore.PageID   // 0 = rightmost
	high     int64
	hasHigh  bool
}

func (n *dnode) isLeaf() bool { return n.level == 1 }

func (n *dnode) items() int {
	if n.isLeaf() {
		return len(n.keys)
	}
	return len(n.children)
}

func (n *dnode) covers(key int64) bool { return !n.hasHigh || key < n.high }

func (n *dnode) childIndex(key int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < n.keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (n *dnode) keyIndex(key int64) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// encode serializes the node into a page payload. Caller holds n.mu.
func (n *dnode) encode() []byte {
	itemBytes := 16 * n.items()
	buf := make([]byte, headerSize+itemBytes+8)
	binary.LittleEndian.PutUint16(buf[0:], uint16(n.level))
	var flags byte
	if n.hasHigh {
		flags |= 1
	}
	buf[2] = flags
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(n.keys)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(n.high))
	binary.LittleEndian.PutUint64(buf[16:], uint64(n.right))
	off := headerSize
	for _, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], uint64(k))
		off += 8
	}
	if n.isLeaf() {
		for _, v := range n.vals {
			binary.LittleEndian.PutUint64(buf[off:], v)
			off += 8
		}
	} else {
		for _, c := range n.children {
			binary.LittleEndian.PutUint64(buf[off:], uint64(c))
			off += 8
		}
	}
	return buf[:off]
}

// decodeNode parses a page payload.
func decodeNode(buf []byte) (*dnode, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("diskbtree: short page (%d bytes)", len(buf))
	}
	n := &dnode{
		level:   int(binary.LittleEndian.Uint16(buf[0:])),
		hasHigh: buf[2]&1 != 0,
		high:    int64(binary.LittleEndian.Uint64(buf[8:])),
		right:   pagestore.PageID(binary.LittleEndian.Uint64(buf[16:])),
	}
	if n.level < 1 {
		return nil, fmt.Errorf("diskbtree: bad node level %d", n.level)
	}
	nkeys := int(binary.LittleEndian.Uint32(buf[4:]))
	if nkeys > MaxCap+1 {
		return nil, fmt.Errorf("diskbtree: implausible key count %d", nkeys)
	}
	nvals := nkeys
	if !n.isLeaf() {
		nvals = nkeys + 1 // children
	}
	need := headerSize + 8*nkeys + 8*nvals
	if len(buf) < need {
		return nil, fmt.Errorf("diskbtree: truncated node (%d < %d)", len(buf), need)
	}
	off := headerSize
	n.keys = make([]int64, nkeys)
	for i := range n.keys {
		n.keys[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if n.isLeaf() {
		n.vals = make([]uint64, nkeys)
		for i := range n.vals {
			n.vals[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
	} else {
		n.children = make([]pagestore.PageID, nvals)
		for i := range n.children {
			n.children[i] = pagestore.PageID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return n, nil
}

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
