package diskbtree

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"btreeperf/internal/xrand"
)

// copyCrashState simulates a crash: it copies the data file, checkpoint
// image and oplog while the tree object still holds dirty pages in its
// buffer pool (those are "lost" — exactly what a crash does to an OS page
// cache that was never flushed; evicted pages HAVE reached the file, but
// recovery never trusts the live file anyway — it restores from the
// image and replays the oplog suffix).
func copyCrashState(t *testing.T, path, dstDir string) string {
	t.Helper()
	dst := filepath.Join(dstDir, "crashed.db")
	for _, suffix := range []string{"", ".oplog", ImageSuffix, ImageTmpSuffix} {
		src, err := os.Open(path + suffix)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(dst + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, src); err != nil {
			t.Fatal(err)
		}
		out.Close()
		src.Close()
	}
	return dst
}

func TestCrashRecoveryBasic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointed prefix.
	for i := int64(0); i < 500; i++ {
		if _, err := tr.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: logged but not checkpointed. The tiny pool
	// forces evictions, so the data file holds a MIX of old and new pages.
	for i := int64(500); i < 900; i++ {
		if _, err := tr.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i++ {
		if _, err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}

	crashed := copyCrashState(t, path, t.TempDir())
	// The original process "dies" here (we simply stop using tr).

	rec, err := Open(crashed, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Recovered() == 0 {
		t.Fatal("no operations were replayed")
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree corrupt: %v", err)
	}
	if rec.Len() != 800 {
		t.Fatalf("recovered Len = %d, want 800", rec.Len())
	}
	for i := int64(0); i < 900; i++ {
		_, ok, err := rec.Search(i)
		if err != nil {
			t.Fatal(err)
		}
		want := i >= 100
		if ok != want {
			t.Fatalf("key %d: present=%v want %v", i, ok, want)
		}
	}
}

func TestCrashWithoutAnyCheckpoint(t *testing.T) {
	// Crash before the first explicit Sync: Open itself checkpoints after
	// attach, so the empty tree is the base and all ops replay.
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 8, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 700; i++ {
		tr.Insert(i*3, uint64(i))
	}
	crashed := copyCrashState(t, path, t.TempDir())

	rec, err := Open(crashed, Options{Cap: 8, CacheNodes: 8, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 700 {
		t.Fatalf("Len = %d", rec.Len())
	}
}

func TestCrashTornOplogTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		tr.Insert(i, uint64(i))
	}
	crashed := copyCrashState(t, path, t.TempDir())

	// Tear the oplog mid-record (a crash during an append).
	st, err := os.Stat(crashed + ".oplog")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(crashed+".oplog", st.Size()-7); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(crashed, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Exactly the torn op is lost.
	if rec.Len() != 299 {
		t.Fatalf("Len = %d, want 299", rec.Len())
	}
}

func TestCrashDuringRecoveryIsRecoverable(t *testing.T) {
	// Crash once, begin recovery, "crash" again mid-recovery (by copying
	// the files after a partial replay would have dirtied pages), recover
	// again: the journal must rewind to the same checkpoint both times.
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 8, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 400; i++ {
		tr.Insert(i, uint64(i))
	}
	tr.Sync()
	for i := int64(400); i < 800; i++ {
		tr.Insert(i, uint64(i))
	}
	crash1 := copyCrashState(t, path, t.TempDir())

	// First recovery succeeds; immediately "crash" again without Sync by
	// copying its files mid-life (recovery itself checkpointed at Open, so
	// this copy is post-recovery — now add more unsynced ops first).
	rec1, err := Open(crash1, Options{Cap: 8, CacheNodes: 8, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(800); i < 1000; i++ {
		rec1.Insert(i, uint64(i))
	}
	crash2 := copyCrashState(t, crash1, t.TempDir())

	rec2, err := Open(crash2, Options{Cap: 8, CacheNodes: 8, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if err := rec2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rec2.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", rec2.Len())
	}
}

// TestCrashFuzz crashes at many random points of a random workload and
// verifies every recovery yields exactly the acknowledged state.
func TestCrashFuzz(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "tree.db")
			tr, err := Open(path, Options{Cap: 5, CacheNodes: 8, Durable: true})
			if err != nil {
				t.Fatal(err)
			}
			src := xrand.New(uint64(trial)*131 + 7)
			model := map[int64]uint64{}
			nOps := 200 + src.IntN(1200)
			syncEvery := 50 + src.IntN(300)
			for i := 0; i < nOps; i++ {
				k := src.Int63n(500)
				if src.Bernoulli(0.7) {
					v := src.Uint64()
					if _, err := tr.Insert(k, v); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				} else {
					if _, err := tr.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				}
				if i%syncEvery == syncEvery-1 {
					if err := tr.Sync(); err != nil {
						t.Fatal(err)
					}
				}
			}
			crashed := copyCrashState(t, path, t.TempDir())

			rec, err := Open(crashed, Options{Cap: 5, CacheNodes: 8, Durable: true})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if err := rec.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if rec.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", rec.Len(), len(model))
			}
			for k, want := range model {
				got, ok, err := rec.Search(k)
				if err != nil {
					t.Fatal(err)
				}
				if !ok || got != want {
					t.Fatalf("key %d = %d,%v want %d", k, got, ok, want)
				}
			}
		})
	}
}

func TestDurableCleanReopenReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		tr.Insert(i, uint64(i))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(path, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Recovered() != 0 {
		t.Fatalf("clean reopen replayed %d ops", rec.Recovered())
	}
	if rec.Len() != 200 {
		t.Fatalf("Len = %d", rec.Len())
	}
}

func TestSyncOpsMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 16, Durable: true, SyncOps: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if _, err := tr.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	crashed := copyCrashState(t, path, t.TempDir())
	rec, err := Open(crashed, Options{Cap: 8, CacheNodes: 16, Durable: true, SyncOps: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 50 {
		t.Fatalf("Len = %d", rec.Len())
	}
}
