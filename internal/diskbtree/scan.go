package diskbtree

// ScanRange calls emit for each key in [lo, hi) in ascending order,
// stopping early when emit returns false. Like SearchGE it descends to
// the leaf covering lo once, then walks the right-link leaf chain with
// shared-latch coupling — one leaf latched at a time, so a scan never
// blocks writers for longer than one node visit, and concurrent splits
// are neither missed nor double-visited (the Lehman–Yao right-link
// argument: a split only ever moves keys to the right, where the walk is
// headed).
func (t *Tree) ScanRange(lo, hi int64, emit func(key int64, val uint64) bool) error {
	if err := t.Poisoned(); err != nil {
		return err
	}
	return t.poison(t.scanRange(lo, hi, emit))
}

func (t *Tree) scanRange(lo, hi int64, emit func(key int64, val uint64) bool) error {
	if hi <= lo {
		return nil
	}
	id, _, err := t.descend(lo, false)
	if err != nil {
		return err
	}
	f, err := t.rLatch(id)
	if err != nil {
		return err
	}
	f, err = t.moveRightR(f, lo)
	if err != nil {
		return err
	}
	for {
		i, _ := f.n.keyIndex(lo)
		for ; i < len(f.n.keys); i++ {
			k := f.n.keys[i]
			if k >= hi || !emit(k, f.n.vals[i]) {
				t.rUnlatch(f)
				return nil
			}
		}
		next := f.n.right
		if next == 0 {
			t.rUnlatch(f)
			return nil
		}
		nf, err := t.rLatch(next)
		if err != nil {
			t.rUnlatch(f)
			return err
		}
		t.rUnlatch(f)
		f = nf
	}
}
