package diskbtree

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"btreeperf/internal/xrand"
)

func openTemp(t *testing.T, opts Options) (*Tree, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tree.db")
	tr, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, path
}

func TestOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "a.db"), Options{Cap: 2}); err == nil {
		t.Error("cap 2 accepted")
	}
	if _, err := Open(filepath.Join(dir, "b.db"), Options{Cap: MaxCap + 1}); err == nil {
		t.Error("oversized cap accepted")
	}
}

func TestBasicOps(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 64})
	defer tr.Close()
	const n = 5000
	for i := int64(0); i < n; i++ {
		fresh, err := tr.Insert(i, uint64(i*7))
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("Insert(%d) reported duplicate", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < n; i++ {
		v, ok, err := tr.Search(i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != uint64(i*7) {
			t.Fatalf("Search(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok, _ := tr.Search(n + 1); ok {
		t.Fatal("phantom key")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceAndDelete(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 32})
	defer tr.Close()
	tr.Insert(1, 10)
	fresh, _ := tr.Insert(1, 20)
	if fresh {
		t.Fatal("replace reported fresh")
	}
	if v, _, _ := tr.Search(1); v != 20 {
		t.Fatalf("v = %d", v)
	}
	ok, _ := tr.Delete(1)
	if !ok {
		t.Fatal("Delete missed")
	}
	ok, _ = tr.Delete(1)
	if ok {
		t.Fatal("double delete")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	tr, path := openTemp(t, Options{Cap: 16, CacheNodes: 32})
	src := xrand.New(5)
	want := map[int64]uint64{}
	for i := 0; i < 10000; i++ {
		k := src.Int63n(1 << 30)
		v := src.Uint64()
		tr.Insert(k, v)
		want[k] = v
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	tr2, err := Open(path, Options{Cap: 16, CacheNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), len(want))
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, ok, err := tr2.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != v {
			t.Fatalf("Search(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestCapMismatchRejected(t *testing.T) {
	tr, path := openTemp(t, Options{Cap: 16, CacheNodes: 32})
	tr.Insert(1, 1)
	tr.Close()
	if _, err := Open(path, Options{Cap: 32, CacheNodes: 32}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

func TestTinyCacheStillCorrect(t *testing.T) {
	// A 4-node pool forces constant eviction and re-decode; contents and
	// structure must survive the round-trips.
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 4})
	defer tr.Close()
	src := xrand.New(7)
	model := map[int64]uint64{}
	for i := 0; i < 8000; i++ {
		k := src.Int63n(2000)
		switch src.IntN(3) {
		case 0:
			v := src.Uint64()
			tr.Insert(k, v)
			model[k] = v
		case 1:
			ok, _ := tr.Delete(k)
			if _, existed := model[k]; ok != existed {
				t.Fatalf("Delete(%d) mismatch", k)
			}
			delete(model, k)
		case 2:
			got, ok, _ := tr.Search(k)
			want, existed := model[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("Search(%d) mismatch", k)
			}
		}
	}
	stats := tr.CacheStats()
	if stats.Evictions == 0 {
		t.Fatal("tiny cache never evicted")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 64})
	defer tr.Close()
	for i := int64(0); i < 1000; i += 10 {
		tr.Insert(i, uint64(i))
	}
	var got []int64
	err := tr.Range(95, 155, func(k int64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 110, 120, 130, 140, 150}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	count := 0
	tr.Range(0, 999, func(int64, uint64) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestConcurrentOwnedKeys(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 16, CacheNodes: 256})
	defer tr.Close()
	const workers = 8
	const opsPer = 3000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.New(uint64(w) * 977)
			mine := map[int64]uint64{}
			for i := 0; i < opsPer; i++ {
				k := src.Int63n(3000)*workers + int64(w)
				switch src.IntN(3) {
				case 0:
					v := src.Uint64()
					if _, err := tr.Insert(k, v); err != nil {
						errs <- err
						return
					}
					mine[k] = v
				case 1:
					ok, err := tr.Delete(k)
					if err != nil {
						errs <- err
						return
					}
					if _, existed := mine[k]; ok != existed {
						errs <- fmt.Errorf("worker %d: Delete(%d) mismatch", w, k)
						return
					}
					delete(mine, k)
				case 2:
					got, ok, err := tr.Search(k)
					if err != nil {
						errs <- err
						return
					}
					want, existed := mine[k]
					if ok != existed || (ok && got != want) {
						errs <- fmt.Errorf("worker %d: Search(%d) = %d,%v want %d,%v",
							w, k, got, ok, want, existed)
						return
					}
				}
			}
			for k, want := range mine {
				got, ok, err := tr.Search(k)
				if err != nil || !ok || got != want {
					errs <- fmt.Errorf("worker %d: final Search(%d) = %d,%v,%v want %d",
						w, k, got, ok, err, want)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWithEvictionPressure(t *testing.T) {
	// Concurrency plus a small pool: pins, latches and eviction interact.
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 24})
	defer tr.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.New(uint64(w) + 31)
			for i := 0; i < 4000; i++ {
				k := src.Int63n(1 << 20)
				var err error
				if src.Bernoulli(0.6) {
					_, err = tr.Insert(k, uint64(k))
				} else {
					_, err = tr.Delete(k)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.CacheStats()
	if st.Evictions == 0 {
		t.Fatal("expected eviction pressure")
	}
	if st.HitRatio() <= 0 || st.HitRatio() > 1 {
		t.Fatalf("hit ratio %v", st.HitRatio())
	}
}

func TestSyncThenReopenWithoutClose(t *testing.T) {
	tr, path := openTemp(t, Options{Cap: 8, CacheNodes: 32})
	for i := int64(0); i < 2000; i++ {
		tr.Insert(i, uint64(i))
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate process abandonment after a clean Sync: reopen the file
	// directly (the old handle is dropped without Close).
	tr2, err := Open(path, Options{Cap: 8, CacheNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != 2000 {
		t.Fatalf("Len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitRatioGrowsWithPool(t *testing.T) {
	run := func(cacheNodes int) float64 {
		tr, _ := openTemp(t, Options{Cap: 16, CacheNodes: cacheNodes})
		defer tr.Close()
		src := xrand.New(11)
		for i := 0; i < 20000; i++ {
			tr.Insert(src.Int63n(1<<24), 1)
		}
		// Measure a read-only phase.
		tr2 := tr
		before := tr2.CacheStats()
		reads := xrand.New(13)
		for i := 0; i < 20000; i++ {
			tr2.Search(reads.Int63n(1 << 24))
		}
		after := tr2.CacheStats()
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		return float64(hits) / float64(hits+misses)
	}
	small := run(16)
	large := run(4096)
	if large <= small {
		t.Fatalf("hit ratio did not grow with pool: %v vs %v", small, large)
	}
	if large < 0.95 {
		t.Fatalf("all-resident pool hit ratio %v", large)
	}
}

func TestDescendingAndRandomInsertOrders(t *testing.T) {
	for _, order := range []string{"desc", "random"} {
		tr, _ := openTemp(t, Options{Cap: 5, CacheNodes: 64})
		src := xrand.New(3)
		const n = 3000
		for i := 0; i < n; i++ {
			k := int64(n - i)
			if order == "random" {
				k = src.Int63n(1 << 40)
			}
			tr.Insert(k, uint64(k))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", order, err)
		}
		tr.Close()
	}
}

func TestSearchGEAndMin(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 32})
	defer tr.Close()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i*10, uint64(i))
	}
	cases := []struct {
		in, want int64
		ok       bool
	}{
		{-5, 0, true},
		{0, 0, true},
		{1, 10, true},
		{445, 450, true},
		{990, 990, true},
		{991, 0, false},
	}
	for _, c := range cases {
		k, _, ok, err := tr.SearchGE(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.ok || (ok && k != c.want) {
			t.Errorf("SearchGE(%d) = %d,%v want %d,%v", c.in, k, ok, c.want, c.ok)
		}
	}
	k, _, ok, err := tr.Min()
	if err != nil || !ok || k != 0 {
		t.Fatalf("Min = %d,%v,%v", k, ok, err)
	}
	// Seeks skip lazily emptied leaves.
	for i := int64(0); i < 30; i++ {
		tr.Delete(i * 10)
	}
	k, _, ok, err = tr.Min()
	if err != nil || !ok || k != 300 {
		t.Fatalf("Min after deletes = %d,%v,%v", k, ok, err)
	}
}

func TestSearchGEEmpty(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 8})
	defer tr.Close()
	if _, _, ok, err := tr.SearchGE(0); ok || err != nil {
		t.Fatalf("empty SearchGE = %v,%v", ok, err)
	}
}
