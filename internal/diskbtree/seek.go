package diskbtree

// SearchGE returns the smallest stored key >= key and its value
// (an ordered "seek"); ok is false when no such key exists.
func (t *Tree) SearchGE(key int64) (k int64, v uint64, ok bool, err error) {
	id, _, err := t.descend(key, false)
	if err != nil {
		return 0, 0, false, err
	}
	f, err := t.rLatch(id)
	if err != nil {
		return 0, 0, false, err
	}
	f, err = t.moveRightR(f, key)
	if err != nil {
		return 0, 0, false, err
	}
	for {
		i, _ := f.n.keyIndex(key)
		if i < len(f.n.keys) {
			k, v = f.n.keys[i], f.n.vals[i]
			t.rUnlatch(f)
			return k, v, true, nil
		}
		next := f.n.right
		if next == 0 {
			t.rUnlatch(f)
			return 0, 0, false, nil
		}
		nf, err := t.rLatch(next)
		if err != nil {
			t.rUnlatch(f)
			return 0, 0, false, err
		}
		t.rUnlatch(f)
		f = nf
	}
}

// Min returns the smallest key in the tree.
func (t *Tree) Min() (k int64, v uint64, ok bool, err error) {
	return t.SearchGE(-1 << 63)
}
