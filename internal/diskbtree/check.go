package diskbtree

import (
	"fmt"
	"math"

	"btreeperf/internal/pagestore"
)

// CheckInvariants validates the on-disk structure. The tree must be
// quiescent. It walks every node through the buffer pool (so it also
// exercises serialization round-trips for evicted pages) and verifies key
// order, routing bounds, high keys, level link chains and the persisted
// key count.
func (t *Tree) CheckInvariants() error {
	rootID := t.rootID()
	leftmost := map[int]pagestore.PageID{}
	count := 0
	height, err := t.checkNode(rootID, math.MinInt64, 0, true, leftmost, &count)
	if err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("diskbtree: size %d but %d keys on leaves", t.Len(), count)
	}
	for level := 1; level <= height; level++ {
		if err := t.checkChain(leftmost[level], level); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) checkNode(id pagestore.PageID, lo, hi int64, hiInf bool, leftmost map[int]pagestore.PageID, count *int) (int, error) {
	f, err := t.rLatch(id)
	if err != nil {
		return 0, err
	}
	n := f.n
	level := n.level
	if _, seen := leftmost[level]; !seen {
		leftmost[level] = id
	}
	fail := func(format string, args ...interface{}) (int, error) {
		t.rUnlatch(f)
		return 0, fmt.Errorf("diskbtree: page %d: %s", id, fmt.Sprintf(format, args...))
	}
	if n.items() > t.cap {
		return fail("over capacity: %d > %d", n.items(), t.cap)
	}
	if hiInf {
		if n.hasHigh {
			return fail("rightmost node has finite high key")
		}
	} else if !n.hasHigh || n.high != hi {
		return fail("high key %v/%v, want %d", n.high, n.hasHigh, hi)
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return fail("keys out of order")
		}
	}
	if n.isLeaf() {
		for _, k := range n.keys {
			if k < lo || (!hiInf && k >= hi) {
				return fail("leaf key %d outside [%d, %d)", k, lo, hi)
			}
		}
		*count += len(n.keys)
		t.rUnlatch(f)
		return level, nil
	}
	if len(n.children) != len(n.keys)+1 || len(n.children) == 0 {
		return fail("%d children, %d routers", len(n.children), len(n.keys))
	}
	// Copy child descriptors, then release the latch before recursing so
	// the pool never holds a long pinned chain.
	type childSpec struct {
		id       pagestore.PageID
		lo, hi   int64
		hiInf    bool
		expected int
	}
	specs := make([]childSpec, len(n.children))
	for i, c := range n.children {
		clo := lo
		if i > 0 {
			clo = n.keys[i-1]
		}
		chi, chiInf := hi, hiInf
		if i < len(n.keys) {
			chi, chiInf = n.keys[i], false
		}
		specs[i] = childSpec{id: c, lo: clo, hi: chi, hiInf: chiInf, expected: level - 1}
	}
	t.rUnlatch(f)
	for _, sp := range specs {
		childLevel, err := t.checkNode(sp.id, sp.lo, sp.hi, sp.hiInf, leftmost, count)
		if err != nil {
			return 0, err
		}
		if childLevel != sp.expected {
			return 0, fmt.Errorf("diskbtree: page %d: child level %d under level %d", sp.id, childLevel, level)
		}
	}
	return level, nil
}

func (t *Tree) checkChain(first pagestore.PageID, level int) error {
	if first == 0 {
		return fmt.Errorf("diskbtree: level %d missing", level)
	}
	var prevHigh int64
	prevHasHigh := false
	started := false
	for id := first; id != 0; {
		f, err := t.rLatch(id)
		if err != nil {
			return err
		}
		if f.n.level != level {
			t.rUnlatch(f)
			return fmt.Errorf("diskbtree: level %d chain reached level %d", level, f.n.level)
		}
		if started {
			if !prevHasHigh {
				t.rUnlatch(f)
				return fmt.Errorf("diskbtree: interior level-%d node with infinite high key", level)
			}
			if f.n.hasHigh && f.n.high <= prevHigh {
				t.rUnlatch(f)
				return fmt.Errorf("diskbtree: level %d high keys not ascending", level)
			}
		}
		if f.n.right == 0 && f.n.hasHigh {
			t.rUnlatch(f)
			return fmt.Errorf("diskbtree: rightmost level-%d node has finite high key", level)
		}
		prevHigh, prevHasHigh = f.n.high, f.n.hasHigh
		started = true
		next := f.n.right
		t.rUnlatch(f)
		id = next
	}
	return nil
}
