package diskbtree

import (
	"fmt"

	"btreeperf/internal/pagestore"
)

// BulkLoad creates a tree file at path and builds it bottom-up from
// sorted data with the given fill factor — the fast path for loading
// large datasets. The file must not already contain a tree. keys must be
// strictly increasing and parallel to vals; fill in (0, 1]. The returned
// tree is synced and ready for concurrent use.
func BulkLoad(path string, opts Options, keys []int64, vals []uint64, fill float64) (*Tree, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("diskbtree: %d keys but %d values", len(keys), len(vals))
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("diskbtree: fill factor %v outside (0, 1]", fill)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return nil, fmt.Errorf("diskbtree: keys not strictly increasing at index %d", i)
		}
	}
	t, err := Open(path, opts)
	if err != nil {
		return nil, err
	}
	if t.Len() != 0 || len(keys) == 0 {
		if t.Len() != 0 {
			t.Close()
			return nil, fmt.Errorf("diskbtree: BulkLoad target already holds %d keys", t.Len())
		}
		return t, nil
	}

	per := int(fill * float64(t.cap))
	if per < 2 {
		per = 2
	}

	type built struct {
		id  pagestore.PageID
		min int64
	}
	// emit writes a fully formed node and returns its page id; links and
	// high keys are assigned as the next node of the level materializes.
	var prevOnLevel map[int]pagestore.PageID // last emitted page per level
	prevOnLevel = make(map[int]pagestore.PageID)
	emit := func(n *dnode, min int64) (pagestore.PageID, error) {
		f, err := t.cache.create(n)
		if err != nil {
			return 0, err
		}
		id := f.id
		t.cache.put(f, true)
		if prev, ok := prevOnLevel[n.level]; ok {
			pf, err := t.cache.get(prev)
			if err != nil {
				return 0, err
			}
			pf.n.right = id
			pf.n.high, pf.n.hasHigh = min, true
			t.cache.put(pf, true)
		}
		prevOnLevel[n.level] = id
		return id, nil
	}

	var level []built
	for off := 0; off < len(keys); off += per {
		end := off + per
		if end > len(keys) {
			end = len(keys)
		}
		n := &dnode{level: 1}
		n.keys = append(n.keys, keys[off:end]...)
		n.vals = append(n.vals, vals[off:end]...)
		id, err := emit(n, keys[off])
		if err != nil {
			t.Close()
			return nil, err
		}
		level = append(level, built{id: id, min: keys[off]})
	}

	h := 1
	for len(level) > 1 {
		h++
		var parents []built
		for off := 0; off < len(level); off += per {
			end := off + per
			if end > len(level) {
				end = len(level)
			}
			n := &dnode{level: h}
			for j := off; j < end; j++ {
				n.children = append(n.children, level[j].id)
				if j > off {
					n.keys = append(n.keys, level[j].min)
				}
			}
			id, err := emit(n, level[off].min)
			if err != nil {
				t.Close()
				return nil, err
			}
			parents = append(parents, built{id: id, min: level[off].min})
		}
		level = parents
	}

	// The original empty root leaf from Open is abandoned (merge-at-empty
	// lazily leaks it; a page of slack is acceptable for a fresh load).
	t.root.Store(uint64(level[0].id))
	t.size.Store(int64(len(keys)))
	if err := t.Sync(); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}
