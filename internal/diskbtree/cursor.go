package diskbtree

// Cursor iterates keys in ascending order. It is seek-based (each Next
// re-locates the successor of the last key), so it holds no latches or
// pins between calls and stays valid under concurrent updates. A Cursor
// must not be shared between goroutines.
type Cursor struct {
	t       *Tree
	nextKey int64
	done    bool

	// Current position, valid after a true Next.
	Key int64
	Val uint64
}

// Cursor returns a cursor positioned before the first key >= start.
func (t *Tree) Cursor(start int64) *Cursor {
	return &Cursor{t: t, nextKey: start}
}

// Next advances to the next key, reporting false at the end or on error
// (check Err).
func (c *Cursor) Next() (bool, error) {
	if c.done {
		return false, nil
	}
	k, v, ok, err := c.t.SearchGE(c.nextKey)
	if err != nil {
		c.done = true
		return false, err
	}
	if !ok {
		c.done = true
		return false, nil
	}
	c.Key, c.Val = k, v
	if k == 1<<63-1 {
		c.done = true
	} else {
		c.nextKey = k + 1
	}
	return true, nil
}
