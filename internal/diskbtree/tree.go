package diskbtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync/atomic"

	"btreeperf/internal/journal"
	"btreeperf/internal/pagestore"
)

// ErrPoisoned is wrapped by every operation on a tree that has seen a
// storage failure. A failed page write or oplog fsync leaves the on-disk
// state unknowable (the kernel may have dropped the dirty data — the
// fsyncgate failure mode), so the tree fail-stops: nothing after the
// first storage error is ever acknowledged.
var ErrPoisoned = errors.New("diskbtree: tree poisoned by an earlier storage failure")

// Tree is a disk-backed concurrent B⁺-tree under the Lehman–Yao protocol.
// Create or reopen one with Open; see the package comment for the
// concurrency and durability contract.
type Tree struct {
	store *pagestore.Store
	cache *cache
	cap   int
	path  string
	fs    pagestore.FS  // never nil (OSFS by default)
	root  atomic.Uint64 // pagestore.PageID of the root
	size  atomic.Int64

	jnl       *journal.Journal // nil when not durable
	replaying bool             // recovery replay in progress; skip oplog appends

	fail atomic.Pointer[treeFault] // sticky first storage failure

	splits      atomic.Int64
	crossings   atomic.Int64
	recovered   atomic.Int64 // operations replayed at the last Open
	ckptSeq     atomic.Int64 // sequence of the last installed checkpoint image
	checkpoints atomic.Int64 // images installed since Open
}

type treeFault struct{ err error }

// Poisoned returns the sticky storage failure wrapped in ErrPoisoned, or
// nil while the tree is healthy.
func (t *Tree) Poisoned() error {
	if f := t.fail.Load(); f != nil {
		return fmt.Errorf("%w: %w", ErrPoisoned, f.err)
	}
	return nil
}

// poison records err as the sticky failure (first one wins) and returns
// err unchanged.
func (t *Tree) poison(err error) error {
	if err == nil {
		return nil
	}
	t.fail.CompareAndSwap(nil, &treeFault{err: err})
	return err
}

// Options configures Open.
type Options struct {
	// Cap is the maximum items per node (3..MaxCap). Default 128.
	Cap int
	// CacheNodes is the buffer-pool capacity in nodes. Default 1024.
	CacheNodes int
	// Durable enables crash recovery under the checkpoint-image model:
	// the tree's durable state is an atomically installed image file
	// (path + ".ckpt") plus a logical oplog of the operations since the
	// image's sequence. Opening a durable tree after a crash copies the
	// image over the (scratch) live file and replays the oplog suffix.
	// Checkpoints are incremental and concurrent — see BeginCheckpoint.
	Durable bool
	// SyncOps, with Durable, fsyncs the oplog on every Insert/Delete so
	// each acknowledged operation survives a crash (slower). Without it,
	// operations are durable at the next Commit or Sync (group commit).
	SyncOps bool
	// FS overrides the file layer for the store and journal (failpoint
	// testing). Nil means the real filesystem.
	FS pagestore.FS
}

// Open opens (creating if necessary) a tree stored at path.
func Open(path string, opts Options) (*Tree, error) {
	if opts.Cap == 0 {
		opts.Cap = 128
	}
	if opts.Cap < 3 || opts.Cap > MaxCap {
		return nil, fmt.Errorf("diskbtree: capacity %d outside [3, %d]", opts.Cap, MaxCap)
	}
	if opts.CacheNodes == 0 {
		opts.CacheNodes = 1024
	}
	fs := opts.FS
	if fs == nil {
		fs = pagestore.OSFS
	}
	if opts.Durable {
		return openDurable(path, opts, fs)
	}
	store, err := pagestore.OpenFS(path, opts.FS)
	if err != nil {
		return nil, err
	}
	t := &Tree{store: store, cache: newCache(store, opts.CacheNodes), cap: opts.Cap, path: path, fs: fs}
	if store.Root() == 0 {
		if err := t.initEmpty(); err != nil {
			store.Close()
			return nil, err
		}
		return t, nil
	}
	if err := t.loadMeta(); err != nil {
		store.Close()
		return nil, err
	}
	return t, nil
}

// openDurable restores a durable tree under the checkpoint-image model:
// the installed image (path + ".ckpt") is the recovery source — the live
// file is scratch and is overwritten by a copy of it — and the oplog
// suffix past the image's sequence is replayed on top. With no image yet
// (first open, or a crash before the bootstrap install) the live file is
// discarded and the whole oplog replays over an empty tree. Either way
// Open finishes by installing a fresh image at the replayed head, so the
// image-exists invariant holds from here on.
func openDurable(path string, opts Options, fs pagestore.FS) (*Tree, error) {
	pagestore.RemoveFile(fs, path+ImageTmpSuffix) // interrupted build debris

	haveImage := true
	if err := pagestore.CloneFile(fs, path+ImageSuffix, path); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("diskbtree: restore checkpoint image: %w", err)
		}
		haveImage = false
		pagestore.RemoveFile(fs, path) // live file is scratch; start clean
	}
	store, err := pagestore.OpenFS(path, opts.FS)
	if err != nil {
		return nil, err
	}
	t := &Tree{store: store, cache: newCache(store, opts.CacheNodes), cap: opts.Cap, path: path, fs: fs}
	if haveImage {
		err = t.loadMeta()
	} else {
		err = t.initEmpty()
	}
	if err == nil {
		err = t.attachJournal(path, opts.SyncOps, opts.FS)
	}
	if err != nil {
		if t.jnl != nil {
			t.jnl.Close()
		}
		store.Close()
		return nil, err
	}
	t.cache.resetStats() // recovery replay + bootstrap image are not workload
	return t, nil
}

// initEmpty writes an empty leaf root into a fresh store.
func (t *Tree) initEmpty() error {
	f, err := t.cache.create(&dnode{level: 1})
	if err != nil {
		return err
	}
	t.cache.put(f, true)
	t.root.Store(uint64(f.id))
	return t.persistMeta()
}

// loadMeta restores root, size, and checkpoint sequence from the store's
// meta page, validating the persisted capacity.
func (t *Tree) loadMeta() error {
	t.root.Store(uint64(t.store.Root()))
	ud := t.store.UserData()
	t.size.Store(int64(binary.LittleEndian.Uint64(ud[:8])))
	storedCap := int(binary.LittleEndian.Uint64(ud[8:16]))
	if storedCap != 0 && storedCap != t.cap {
		return fmt.Errorf("diskbtree: store was created with capacity %d, not %d", storedCap, t.cap)
	}
	t.ckptSeq.Store(int64(binary.LittleEndian.Uint64(ud[16:24])))
	return nil
}

// attachJournal opens the oplog, aligns it with the recovered image
// (rebasing it if a crash interrupted a rotation), replays the suffix,
// and installs a fresh image at the replayed head.
func (t *Tree) attachJournal(path string, syncOps bool, fs pagestore.FS) error {
	j, err := journal.OpenFS(path, syncOps, fs)
	if err != nil {
		return err
	}
	t.jnl = j
	ops, err := j.Recover(t.ckptSeq.Load())
	if err != nil {
		return err
	}

	// Replay the logged operations (idempotent set semantics).
	t.replaying = true
	for _, op := range ops {
		var err error
		switch op.Kind {
		case journal.OpInsert:
			_, err = t.insert(op.Key, op.Val)
		case journal.OpDelete:
			_, err = t.del(op.Key)
		}
		if err != nil {
			t.replaying = false
			return fmt.Errorf("diskbtree: replay: %w", err)
		}
	}
	t.replaying = false
	t.recovered.Store(int64(len(ops)))

	// Bootstrap/refresh the image at the replayed head: recovery is
	// idempotent (a crash here reruns the same replay) and the oplog
	// shrinks back to empty.
	_, err = t.CheckpointNow()
	return err
}

// Recovered returns the number of operations replayed by the last Open
// (always zero after a clean shutdown).
func (t *Tree) Recovered() int { return int(t.recovered.Load()) }

// persistMeta records the root, size, capacity and checkpoint sequence
// in the store's meta page.
func (t *Tree) persistMeta() error {
	var ud [64]byte
	binary.LittleEndian.PutUint64(ud[:8], uint64(t.size.Load()))
	binary.LittleEndian.PutUint64(ud[8:16], uint64(t.cap))
	binary.LittleEndian.PutUint64(ud[16:24], uint64(t.ckptSeq.Load()))
	if err := t.store.SetUserData(ud); err != nil {
		return err
	}
	return t.store.SetRoot(pagestore.PageID(t.root.Load()))
}

// Sync makes the whole tree durable. On a durable tree it builds and
// installs a full checkpoint image (safe concurrently with readers and
// writers; only the bounded install window blocks appends). On a
// non-durable tree it flushes all dirty nodes and the meta page — the
// tree must then be quiescent. A storage failure poisons the tree.
func (t *Tree) Sync() error {
	if err := t.Poisoned(); err != nil {
		return err
	}
	return t.poison(t.sync())
}

func (t *Tree) sync() error {
	if t.jnl != nil {
		_, err := t.CheckpointNow()
		return err
	}
	if err := t.cache.flush(); err != nil {
		return err
	}
	if err := t.persistMeta(); err != nil {
		return err
	}
	return t.store.Sync()
}

// Commit makes every operation applied before the call durable without
// checkpointing: one oplog fsync covers all of them (group commit —
// concurrent committers piggyback on each other's fsyncs; see
// journal.Commit). Unlike Sync it is safe to call concurrently with
// other operations. Non-durable trees return nil. A failed fsync
// poisons the tree: no acknowledgment may ever follow it.
func (t *Tree) Commit() error {
	if err := t.Poisoned(); err != nil {
		return err
	}
	if t.jnl == nil {
		return nil
	}
	return t.poison(t.jnl.Commit())
}

// Close syncs and closes the underlying store. The tree must be quiescent.
// A poisoned tree skips the sync — the on-disk state is already
// unknowable — releases its descriptors, and returns the sticky error.
func (t *Tree) Close() error {
	if err := t.Poisoned(); err != nil {
		if t.jnl != nil {
			t.jnl.Close()
		}
		t.store.Close()
		return err
	}
	if err := t.poison(t.sync()); err != nil {
		t.store.Close()
		return err
	}
	if t.jnl != nil {
		if err := t.jnl.Close(); err != nil {
			t.store.Close()
			return err
		}
	}
	return t.store.Close()
}

// Journal exposes the tree's oplog journal for sequence-aware layers
// (replication tails the journal and pins its retention). Nil on a
// non-durable tree.
func (t *Tree) Journal() *journal.Journal { return t.jnl }

// DurabilityStats reports oplog progress on a durable tree: operations
// appended and fsync-covered this epoch, the oplog size in bytes, and
// group-commit fsyncs issued. Zeroes on a non-durable tree.
func (t *Tree) DurabilityStats() (appended, synced, oplogBytes, commits int64) {
	if t.jnl == nil {
		return 0, 0, 0, 0
	}
	return t.jnl.Stats()
}

// logOp appends a logical operation to the oplog (durable trees only).
func (t *Tree) logOp(kind journal.OpKind, key int64, val uint64) error {
	if t.jnl == nil || t.replaying {
		return nil
	}
	return t.jnl.Append(journal.Op{Kind: kind, Key: key, Val: val})
}

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Height returns the number of levels (1 = a lone leaf root). It reads
// the root's level field; 0 is returned if the root page is unreadable.
func (t *Tree) Height() int {
	f, err := t.cache.get(t.rootID())
	if err != nil {
		return 0
	}
	f.n.mu.RLock()
	h := f.n.level
	f.n.mu.RUnlock()
	t.cache.put(f, false)
	return h
}

// Cap returns the node capacity.
func (t *Tree) Cap() int { return t.cap }

// CacheStats reports buffer-pool hit/miss/eviction counts.
func (t *Tree) CacheStats() CacheStats { return t.cache.statsSnapshot() }

// Stats reports structural counters.
func (t *Tree) Stats() (splits, crossings int64) {
	return t.splits.Load(), t.crossings.Load()
}

// rootID loads the current root page id.
func (t *Tree) rootID() pagestore.PageID { return pagestore.PageID(t.root.Load()) }

// ---------------------------------------------------------------------------
// Latch-by-page helpers. Each returns a pinned frame whose node is latched
// in the requested mode; release with rUnlatch / wUnlatch.

func (t *Tree) rLatch(id pagestore.PageID) (*frame, error) {
	f, err := t.cache.get(id)
	if err != nil {
		return nil, err
	}
	f.n.mu.RLock()
	return f, nil
}

func (t *Tree) rUnlatch(f *frame) {
	f.n.mu.RUnlock()
	t.cache.put(f, false)
}

func (t *Tree) wLatch(id pagestore.PageID) (*frame, error) {
	f, err := t.cache.get(id)
	if err != nil {
		return nil, err
	}
	f.n.mu.Lock()
	return f, nil
}

func (t *Tree) wUnlatch(f *frame, dirty bool) {
	f.n.mu.Unlock()
	t.cache.put(f, dirty)
}

// moveRightR follows right links under shared latches until the node
// covers key.
func (t *Tree) moveRightR(f *frame, key int64) (*frame, error) {
	for !f.n.covers(key) {
		right := f.n.right
		t.rUnlatch(f)
		t.crossings.Add(1)
		var err error
		f, err = t.rLatch(right)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// moveRightW is moveRightR with exclusive latches.
func (t *Tree) moveRightW(f *frame, key int64) (*frame, error) {
	for !f.n.covers(key) {
		right := f.n.right
		t.wUnlatch(f, false)
		t.crossings.Add(1)
		var err error
		f, err = t.wLatch(right)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// descend returns the (unlatched) leaf page covering key, optionally
// recording the ancestor page ids for split repair.
func (t *Tree) descend(key int64, wantStack bool) (pagestore.PageID, []pagestore.PageID, error) {
	var stack []pagestore.PageID
	id := t.rootID()
	for {
		f, err := t.rLatch(id)
		if err != nil {
			return 0, nil, err
		}
		if f.n.isLeaf() {
			t.rUnlatch(f)
			return id, stack, nil
		}
		f, err = t.moveRightR(f, key)
		if err != nil {
			return 0, nil, err
		}
		child := f.n.children[f.n.childIndex(key)]
		if wantStack {
			stack = append(stack, f.id)
		}
		t.rUnlatch(f)
		id = child
	}
}

// ---------------------------------------------------------------------------
// Public operations.

// Search returns the value stored under key.
func (t *Tree) Search(key int64) (uint64, bool, error) {
	if err := t.Poisoned(); err != nil {
		return 0, false, err
	}
	v, ok, err := t.search(key)
	return v, ok, t.poison(err)
}

func (t *Tree) search(key int64) (uint64, bool, error) {
	id, _, err := t.descend(key, false)
	if err != nil {
		return 0, false, err
	}
	f, err := t.rLatch(id)
	if err != nil {
		return 0, false, err
	}
	f, err = t.moveRightR(f, key)
	if err != nil {
		return 0, false, err
	}
	i, ok := f.n.keyIndex(key)
	var v uint64
	if ok {
		v = f.n.vals[i]
	}
	t.rUnlatch(f)
	return v, ok, nil
}

// Insert stores key→val; a fresh insertion reports true. A storage
// failure poisons the tree: every later operation returns ErrPoisoned.
func (t *Tree) Insert(key int64, val uint64) (bool, error) {
	if err := t.Poisoned(); err != nil {
		return false, err
	}
	ok, err := t.insert(key, val)
	return ok, t.poison(err)
}

func (t *Tree) insert(key int64, val uint64) (bool, error) {
	id, stack, err := t.descend(key, true)
	if err != nil {
		return false, err
	}
	f, err := t.wLatch(id)
	if err != nil {
		return false, err
	}
	f, err = t.moveRightW(f, key)
	if err != nil {
		return false, err
	}
	if i, ok := f.n.keyIndex(key); ok {
		f.n.vals[i] = val
		t.wUnlatch(f, true)
		return false, t.logOp(journal.OpInsert, key, val)
	}
	i, _ := f.n.keyIndex(key)
	f.n.keys = insertAt(f.n.keys, i, key)
	f.n.vals = insertAt(f.n.vals, i, val)
	t.size.Add(1)
	if err := t.repairSplits(f, stack); err != nil {
		return false, err
	}
	return true, t.logOp(journal.OpInsert, key, val)
}

// repairSplits performs half-splits bottom-up starting from the latched,
// pinned frame f, releasing it when done.
func (t *Tree) repairSplits(f *frame, stack []pagestore.PageID) error {
	for f.n.items() > t.cap {
		sib, sep, err := t.split(f)
		if err != nil {
			t.wUnlatch(f, true)
			return err
		}
		if len(stack) == 0 && t.rootID() == f.id {
			err := t.growRoot(f, sep, sib)
			t.wUnlatch(f, true)
			return err
		}
		level := f.n.level + 1
		t.wUnlatch(f, true)

		var parentID pagestore.PageID
		if len(stack) > 0 {
			parentID = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			parentID, err = t.locate(level, sep)
			if err != nil {
				return err
			}
		}
		f, err = t.wLatch(parentID)
		if err != nil {
			return err
		}
		f, err = t.moveRightW(f, sep)
		if err != nil {
			return err
		}
		i := f.n.childIndex(sep)
		f.n.keys = insertAt(f.n.keys, i, sep)
		f.n.children = insertAt(f.n.children, i+1, sib)
	}
	t.wUnlatch(f, true)
	return nil
}

// split moves the upper half of the latched node into a fresh page. The
// sibling page is fully written into the buffer pool before the right
// link is published, so the release of f's latch orders its contents for
// every later reader.
func (t *Tree) split(f *frame) (pagestore.PageID, int64, error) {
	t.splits.Add(1)
	n := f.n
	sib := &dnode{level: n.level}
	var sep int64
	if n.isLeaf() {
		m := (len(n.keys) + 1) / 2
		sib.keys = append(sib.keys, n.keys[m:]...)
		sib.vals = append(sib.vals, n.vals[m:]...)
		n.keys = n.keys[:m:m]
		n.vals = n.vals[:m:m]
		sep = sib.keys[0]
	} else {
		m := (len(n.children) + 1) / 2
		sep = n.keys[m-1]
		sib.children = append(sib.children, n.children[m:]...)
		sib.keys = append(sib.keys, n.keys[m:]...)
		n.children = n.children[:m:m]
		n.keys = n.keys[: m-1 : m-1]
	}
	sib.high, sib.hasHigh = n.high, n.hasHigh
	sib.right = n.right
	sf, err := t.cache.create(sib)
	if err != nil {
		return 0, 0, err
	}
	t.cache.put(sf, true)
	n.right = sf.id
	n.high, n.hasHigh = sep, true
	return sf.id, sep, nil
}

// growRoot installs a new root above the split old root (whose pinned,
// latched frame the caller passes, having verified it is still the root).
func (t *Tree) growRoot(old *frame, sep int64, sib pagestore.PageID) error {
	rf, err := t.cache.create(&dnode{
		level:    old.n.level + 1,
		keys:     []int64{sep},
		children: []pagestore.PageID{old.id, sib},
	})
	if err != nil {
		return err
	}
	t.cache.put(rf, true)
	if !t.root.CompareAndSwap(uint64(old.id), uint64(rf.id)) {
		panic("diskbtree: concurrent root replacement")
	}
	return nil
}

// locate descends to the page at the given level covering key (used when
// the root grew past the remembered ancestor stack).
func (t *Tree) locate(level int, key int64) (pagestore.PageID, error) {
	id := t.rootID()
	for {
		f, err := t.rLatch(id)
		if err != nil {
			return 0, err
		}
		if f.n.level == level {
			t.rUnlatch(f)
			return id, nil
		}
		f, err = t.moveRightR(f, key)
		if err != nil {
			return 0, err
		}
		child := f.n.children[f.n.childIndex(key)]
		t.rUnlatch(f)
		id = child
	}
}

// Delete removes key, reporting whether it was present. Emptied leaves
// stay in place (lazy merge-at-empty). A storage failure poisons the
// tree: every later operation returns ErrPoisoned.
func (t *Tree) Delete(key int64) (bool, error) {
	if err := t.Poisoned(); err != nil {
		return false, err
	}
	ok, err := t.del(key)
	return ok, t.poison(err)
}

func (t *Tree) del(key int64) (bool, error) {
	id, _, err := t.descend(key, false)
	if err != nil {
		return false, err
	}
	f, err := t.wLatch(id)
	if err != nil {
		return false, err
	}
	f, err = t.moveRightW(f, key)
	if err != nil {
		return false, err
	}
	i, ok := f.n.keyIndex(key)
	if !ok {
		t.wUnlatch(f, false)
		return false, nil
	}
	f.n.keys = removeAt(f.n.keys, i)
	f.n.vals = removeAt(f.n.vals, i)
	t.size.Add(-1)
	t.wUnlatch(f, true)
	return true, t.logOp(journal.OpDelete, key, 0)
}

// Range calls fn for each key in [lo, hi] ascending, stopping early if fn
// returns false. It walks the leaf chain with latch coupling.
func (t *Tree) Range(lo, hi int64, fn func(key int64, val uint64) bool) error {
	if err := t.Poisoned(); err != nil {
		return err
	}
	return t.poison(t.rangeScan(lo, hi, fn))
}

func (t *Tree) rangeScan(lo, hi int64, fn func(key int64, val uint64) bool) error {
	id, _, err := t.descend(lo, false)
	if err != nil {
		return err
	}
	f, err := t.rLatch(id)
	if err != nil {
		return err
	}
	f, err = t.moveRightR(f, lo)
	if err != nil {
		return err
	}
	for {
		for i, k := range f.n.keys {
			if k < lo {
				continue
			}
			if k > hi || !fn(k, f.n.vals[i]) {
				t.rUnlatch(f)
				return nil
			}
		}
		next := f.n.right
		if next == 0 {
			t.rUnlatch(f)
			return nil
		}
		nf, err := t.rLatch(next)
		if err != nil {
			t.rUnlatch(f)
			return err
		}
		t.rUnlatch(f)
		f = nf
	}
}
