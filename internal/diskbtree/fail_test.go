package diskbtree

// Failpoint regression tests: the fsyncgate poisoning contract, a
// crash-at-every-syscall sweep of acked durability, and a torn-oplog
// sweep that truncates the log at every byte offset.

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"btreeperf/internal/journal"
	"btreeperf/internal/pagestore"
)

// TestFsyncPoisoning is the fsyncgate regression at the tree level: after
// one failed oplog fsync no operation may ever report success again. A
// retried fsync that "succeeds" proves nothing about the dirty data the
// kernel dropped, so the only safe behavior is fail-stop.
func TestFsyncPoisoning(t *testing.T) {
	open := func(fs pagestore.FS) *Tree {
		tr, err := Open(filepath.Join(t.TempDir(), "t.db"),
			Options{Cap: 8, CacheNodes: 16, Durable: true, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// Probe run: count the fsyncs issued by open + 3 inserts, so the plan
	// can target exactly the group-commit fsync that follows them.
	probe := pagestore.NewFailFS(nil, pagestore.FailPlan{})
	pt := open(probe)
	for i := int64(0); i < 3; i++ {
		if _, err := pt.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	target := probe.Syncs() + 1

	fs := pagestore.NewFailFS(nil, pagestore.FailPlan{FailSyncAt: target})
	tr := open(fs)
	for i := int64(0); i < 3; i++ {
		if _, err := tr.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Commit(); !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("Commit = %v, want the injected fsync failure", err)
	}
	// Sticky from here on: the disk would now accept every syscall, but
	// nothing may be acknowledged.
	if err := tr.Commit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("second Commit = %v, want ErrPoisoned", err)
	} else if !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("poison lost its cause: %v", err)
	}
	if _, err := tr.Insert(99, 1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Insert after poison = %v, want ErrPoisoned", err)
	}
	if _, _, err := tr.Search(1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Search after poison = %v, want ErrPoisoned", err)
	}
	if _, err := tr.Delete(1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Delete after poison = %v, want ErrPoisoned", err)
	}
	if err := tr.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Sync after poison = %v, want ErrPoisoned", err)
	}
	if err := tr.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Close after poison = %v, want ErrPoisoned", err)
	}
}

// TestCrashSweepAckedDurability crashes a commit-per-op workload at every
// mutating syscall of its trace and checks the one-sided durability
// contract after each: every operation whose Commit returned nil before
// the crash is present after recovery (unacked operations may or may not
// be).
func TestCrashSweepAckedDurability(t *testing.T) {
	opts := func(fs pagestore.FS) Options {
		return Options{Cap: 5, CacheNodes: 8, Durable: true, FS: fs}
	}
	// A cleanly shut-down base tree; each crash trial starts from a copy.
	base := filepath.Join(t.TempDir(), "tree.db")
	bt, err := Open(base, opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := bt.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}

	workload := func(tr *Tree) (acked []int64) {
		for i := int64(0); i < 25; i++ {
			k := 100 + i*3
			if _, err := tr.Insert(k, uint64(k)*7); err != nil {
				return
			}
			if err := tr.Commit(); err != nil {
				return
			}
			acked = append(acked, k)
			// A full checkpoint mid-workload puts every syscall of the
			// image build, install rename, and oplog rotation into the
			// sweep's crash range.
			if i == 12 {
				if err := tr.Sync(); err != nil {
					return
				}
			}
		}
		return
	}

	// Probe run to learn the workload's full syscall count.
	probe := pagestore.NewFailFS(nil, pagestore.FailPlan{})
	ppath := copyCrashState(t, base, t.TempDir())
	ptr, err := Open(ppath, opts(probe))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(workload(ptr)); got != 25 {
		t.Fatalf("probe acked %d/25 ops", got)
	}
	ptr.Close()
	total := probe.Ops()
	if total < 25 {
		t.Fatalf("implausible syscall count %d", total)
	}

	for n := int64(1); n <= total; n++ {
		path := copyCrashState(t, base, t.TempDir())
		fs := pagestore.NewFailFS(nil, pagestore.FailPlan{CrashAt: n})
		var acked []int64
		if tr, err := Open(path, opts(fs)); err == nil {
			acked = workload(tr)
			tr.Close() // errors after a crash; the real descriptors still close
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d/%d never fired", n, total)
		}
		// The simulated process is gone; reopen the frozen files for real.
		rec, err := Open(path, opts(nil))
		if err != nil {
			t.Fatalf("crash at syscall %d: reopen failed: %v", n, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("crash at syscall %d: recovered tree corrupt: %v", n, err)
		}
		for i := int64(0); i < 10; i++ {
			v, ok, err := rec.Search(i)
			if err != nil || !ok || v != uint64(i) {
				t.Fatalf("crash at syscall %d: base key %d = %d,%v,%v", n, i, v, ok, err)
			}
		}
		for _, k := range acked {
			v, ok, err := rec.Search(k)
			if err != nil || !ok || v != uint64(k)*7 {
				t.Fatalf("crash at syscall %d: acked key %d lost (= %d,%v,%v)", n, k, v, ok, err)
			}
		}
		rec.Close()
	}
	t.Logf("swept %d crash points", total)
}

// TestCrashSweepMidCheckpoint interleaves an incremental checkpoint's
// chunk walk with acked inserts and crashes at every syscall of the
// combined trace, so the kill lands inside image-page writes, the image
// fsync and rename, and the oplog rotation — with concurrent appends in
// flight. Every op acked before the crash must survive recovery,
// whichever image (old or newly installed) recovery starts from.
func TestCrashSweepMidCheckpoint(t *testing.T) {
	opts := func(fs pagestore.FS) Options {
		return Options{Cap: 5, CacheNodes: 8, Durable: true, FS: fs}
	}
	base := filepath.Join(t.TempDir(), "tree.db")
	bt, err := Open(base, opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		if _, err := bt.Insert(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}

	workload := func(tr *Tree) (acked []int64) {
		ck, _ := tr.BeginCheckpoint()
		step := func() {
			if ck == nil {
				return
			}
			done, err := ck.Step(4)
			if err != nil || !done {
				if err != nil {
					ck.Abort()
					ck = nil
				}
				return
			}
			if err := ck.Finalize(); err != nil {
				ck.Abort()
				ck = nil
				return
			}
			if _, err := ck.Install(); err != nil {
				ck.Abort()
			}
			ck = nil
		}
		for i := int64(0); i < 20; i++ {
			k := 1000 + i*3
			if _, err := tr.Insert(k, uint64(k)*7); err != nil {
				return
			}
			if err := tr.Commit(); err != nil {
				return
			}
			acked = append(acked, k)
			step()
		}
		for ck != nil {
			step()
		}
		return
	}

	probe := pagestore.NewFailFS(nil, pagestore.FailPlan{})
	ppath := copyCrashState(t, base, t.TempDir())
	ptr, err := Open(ppath, opts(probe))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(workload(ptr)); got != 20 {
		t.Fatalf("probe acked %d/20 ops", got)
	}
	ptr.Close()
	total := probe.Ops()

	for n := int64(1); n <= total; n++ {
		path := copyCrashState(t, base, t.TempDir())
		fs := pagestore.NewFailFS(nil, pagestore.FailPlan{CrashAt: n})
		var acked []int64
		if tr, err := Open(path, opts(fs)); err == nil {
			acked = workload(tr)
			tr.Close()
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d/%d never fired", n, total)
		}
		rec, err := Open(path, opts(nil))
		if err != nil {
			t.Fatalf("crash at syscall %d: reopen failed: %v", n, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("crash at syscall %d: recovered tree corrupt: %v", n, err)
		}
		for i := int64(0); i < 40; i++ {
			v, ok, err := rec.Search(i)
			if err != nil || !ok || v != uint64(i) {
				t.Fatalf("crash at syscall %d: base key %d = %d,%v,%v", n, i, v, ok, err)
			}
		}
		for _, k := range acked {
			v, ok, err := rec.Search(k)
			if err != nil || !ok || v != uint64(k)*7 {
				t.Fatalf("crash at syscall %d: acked key %d lost (= %d,%v,%v)", n, k, v, ok, err)
			}
		}
		rec.Close()
	}
	t.Logf("swept %d mid-checkpoint crash points", total)
}

// TestTornOplogTailSweep truncates the oplog at every byte offset — not
// just record boundaries — and verifies recovery keeps exactly the fully
// written records and drops exactly the torn one. A corrupt-byte variant
// flips each byte of the final record and expects the CRC framing to
// reject it.
func TestTornOplogTailSweep(t *testing.T) {
	const n = 12
	path := filepath.Join(t.TempDir(), "tree.db")
	tr, err := Open(path, Options{Cap: 8, CacheNodes: 16, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if _, err := tr.Insert(i, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	crashed := copyCrashState(t, path, t.TempDir())

	st, err := os.Stat(crashed + ".oplog")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != journal.OplogHdrSize+n*journal.OpRecSize {
		t.Fatalf("oplog is %d bytes, want %d (hdr+n*%d): record framing changed?",
			st.Size(), journal.OplogHdrSize+n*journal.OpRecSize, journal.OpRecSize)
	}

	verify := func(trial string, wantLen int, why string) {
		rec, err := Open(trial, Options{Cap: 8, CacheNodes: 16, Durable: true})
		if err != nil {
			t.Fatalf("%s: reopen failed: %v", why, err)
		}
		defer rec.Close()
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("%s: recovered tree corrupt: %v", why, err)
		}
		if rec.Len() != wantLen {
			t.Fatalf("%s: Len = %d, want %d", why, rec.Len(), wantLen)
		}
		for i := int64(0); i < n; i++ {
			v, ok, err := rec.Search(i)
			if err != nil {
				t.Fatalf("%s: Search(%d): %v", why, i, err)
			}
			if wantOk := i < int64(wantLen); ok != wantOk || (ok && v != uint64(i)+1) {
				t.Fatalf("%s: key %d = %d,%v, want present=%v", why, i, v, ok, wantOk)
			}
		}
	}

	for cut := int64(0); cut <= st.Size(); cut++ {
		trial := copyCrashState(t, crashed, t.TempDir())
		if err := os.Truncate(trial+".oplog", cut); err != nil {
			t.Fatal(err)
		}
		wantLen := 0
		if cut >= int64(journal.OplogHdrSize) {
			wantLen = int((cut - int64(journal.OplogHdrSize)) / journal.OpRecSize)
		}
		verify(trial, wantLen, "cut at byte "+strconv.FormatInt(cut, 10))
	}

	for off := int64(journal.OplogHdrSize + (n-1)*journal.OpRecSize); off < st.Size(); off++ {
		trial := copyCrashState(t, crashed, t.TempDir())
		f, err := os.OpenFile(trial+".oplog", os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xA5
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		f.Close()
		verify(trial, n-1, "flip at byte "+strconv.FormatInt(off, 10))
	}
}
