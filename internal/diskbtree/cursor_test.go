package diskbtree

import "testing"

func TestDiskCursor(t *testing.T) {
	tr, _ := openTemp(t, Options{Cap: 8, CacheNodes: 16})
	defer tr.Close()
	for i := int64(0); i < 300; i++ {
		tr.Insert(i*2, uint64(i))
	}
	c := tr.Cursor(100)
	n := 0
	last := int64(-1)
	for {
		ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if c.Key <= last || c.Key < 100 {
			t.Fatalf("cursor order violated at %d", c.Key)
		}
		last = c.Key
		n++
	}
	if n != 250 {
		t.Fatalf("saw %d keys", n)
	}
	ok, err := c.Next()
	if ok || err != nil {
		t.Fatal("exhausted cursor advanced")
	}
}
