package diskbtree

import (
	"container/list"
	"fmt"

	"btreeperf/internal/pagestore"
	"sync"
)

// frame is a buffer-pool slot holding one decoded node.
type frame struct {
	id    pagestore.PageID
	n     *dnode
	pins  int
	dirty bool
	lru   *list.Element // non-nil iff unpinned (eviction candidate)
}

// cache is the LRU buffer pool. Protocol: Get pins a frame; the caller
// may then latch frame.n.mu, use the node, unlatch, and Put. Latches must
// only be held on pinned frames, so eviction (which only considers
// unpinned frames) never races with node access.
type cache struct {
	mu       sync.Mutex
	store    *pagestore.Store
	capacity int
	frames   map[pagestore.PageID]*frame
	lruList  *list.List // front = most recently unpinned

	hits      int64
	misses    int64
	evictions int64
}

// CacheStats reports buffer-pool effectiveness — the measured counterpart
// of the LRU-buffering extension of the analytical model.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Resident  int
	Capacity  int
}

// HitRatio returns hits/(hits+misses), or 0 when there were no accesses —
// an untouched pool must not report a perfect cache.
func (c CacheStats) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// resetStats zeroes the access counters so stats measure the workload,
// not Open's recovery replay and bootstrap checkpoint walk.
func (c *cache) resetStats() {
	c.mu.Lock()
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.mu.Unlock()
}

func newCache(store *pagestore.Store, capacity int) *cache {
	if capacity < 4 {
		capacity = 4
	}
	return &cache{
		store:    store,
		capacity: capacity,
		frames:   make(map[pagestore.PageID]*frame, capacity),
		lruList:  list.New(),
	}
}

// get returns the pinned frame for a page, fetching and decoding on miss.
func (c *cache) get(id pagestore.PageID) (*frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.frames[id]; ok {
		c.hits++
		c.pinLocked(f)
		return f, nil
	}
	c.misses++
	if err := c.evictLocked(); err != nil {
		return nil, err
	}
	payload, err := c.store.Read(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(payload)
	if err != nil {
		return nil, fmt.Errorf("diskbtree: page %d: %w", id, err)
	}
	f := &frame{id: id, n: n, pins: 1}
	c.frames[id] = f
	return f, nil
}

// create allocates a fresh page and returns its pinned, dirty frame
// holding the given (fully initialized) node.
func (c *cache) create(n *dnode) (*frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.evictLocked(); err != nil {
		return nil, err
	}
	id, err := c.store.Allocate()
	if err != nil {
		return nil, err
	}
	f := &frame{id: id, n: n, pins: 1, dirty: true}
	c.frames[id] = f
	return f, nil
}

// put unpins a frame, recording whether the caller modified the node.
func (c *cache) put(f *frame, dirty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.pins <= 0 {
		panic("diskbtree: put of unpinned frame")
	}
	f.dirty = f.dirty || dirty
	f.pins--
	if f.pins == 0 {
		f.lru = c.lruList.PushFront(f)
	}
}

// pinLocked pins a cached frame, removing it from the eviction list.
func (c *cache) pinLocked(f *frame) {
	f.pins++
	if f.lru != nil {
		c.lruList.Remove(f.lru)
		f.lru = nil
	}
}

// evictLocked makes room for one more frame by writing back and dropping
// the least recently used unpinned frame, if the pool is full.
func (c *cache) evictLocked() error {
	for len(c.frames) >= c.capacity {
		tail := c.lruList.Back()
		if tail == nil {
			return fmt.Errorf("diskbtree: buffer pool exhausted (%d frames, all pinned)", len(c.frames))
		}
		f := tail.Value.(*frame)
		if f.dirty {
			if err := c.store.Write(f.id, f.n.encode()); err != nil {
				return err
			}
			f.dirty = false
		}
		c.lruList.Remove(tail)
		delete(c.frames, f.id)
		c.evictions++
	}
	return nil
}

// flush writes every dirty frame back to the store. It must only be
// called when the tree is quiescent: it reads node contents without
// latching them (latching under c.mu would invert the lock order with
// put), so concurrent mutators would race.
func (c *cache) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.frames {
		if f.dirty {
			if err := c.store.Write(f.id, f.n.encode()); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// stats snapshots the counters.
func (c *cache) statsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Resident:  len(c.frames),
		Capacity:  c.capacity,
	}
}
