// Package metrics is the live telemetry layer that turns the paper's
// analytic quantities into measured ones. A TreeProbe holds one LevelStats
// accumulator per B-tree level; every node lock of a level reports into
// that level's accumulator through the lock.Probe interface, so a running
// server observes — per level — the model's parameters directly from its
// own lock queues:
//
//	λ_r, λ_w — lock arrival rates per class (acquisitions/second)
//	μ_r, μ_w — lock service rates per class (completions per held-second)
//	W_r, W_w — mean queue waits, plus log-bucketed wait histograms
//	ρ_w      — fraction of time a writer is active or queued (the
//	           root-level value is the paper's saturation gauge)
//
// Rates differences two snapshots into per-level rates over a window, and
// Evaluate feeds those measured rates back into qmodel — the appendix's
// FCFS reader/writer queue analysis — yielding the predicted operating
// point next to the observed one.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"btreeperf/internal/qmodel"
)

// HistBuckets is the number of log₂ nanosecond buckets in a Hist: bucket i
// holds samples whose nanosecond value has bit length i, i.e. roughly
// [2^(i−1), 2^i). Bucket 0 holds zero/negative samples; the last bucket
// saturates (2^38 ns ≈ 4.6 min).
const HistBuckets = 40

// Hist is a lock-free histogram of durations with power-of-two buckets.
// The zero value is ready to use; all methods are safe for concurrent use.
type Hist struct {
	buckets [HistBuckets]atomic.Int64
}

func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records a duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
}

// ObserveN records n samples of the same duration with one atomic add —
// the batched serving path attributes a batch's amortized per-op service
// time to all of its operations at once.
func (h *Hist) ObserveN(ns int64, n int64) {
	h.buckets[bucketOf(ns)].Add(n)
}

// Snapshot copies the bucket counts.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Hist's bucket counts.
type HistSnapshot [HistBuckets]int64

// Sub returns the bucket-wise difference s − prev (the window histogram).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s {
		d[i] = s[i] - prev[i]
	}
	return d
}

// Add returns the bucket-wise sum s + o (merging shards' histograms).
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s {
		d[i] = s[i] + o[i]
	}
	return d
}

// N returns the total sample count.
func (s HistSnapshot) N() int64 {
	var n int64
	for _, c := range s {
		n += c
	}
	return n
}

// Quantile returns an approximate q-quantile in nanoseconds, using the
// geometric midpoint of the containing bucket. Empty snapshots yield 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	n := s.N()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	acc := 0.0
	for i, c := range s {
		acc += float64(c)
		if acc >= target && c > 0 {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			return lo + lo/2
		}
	}
	return int64(1) << (HistBuckets - 1)
}

// LevelStats accumulates lock telemetry for one B-tree level. It
// implements lock.Probe; share one instance across all node locks of a
// level. The zero value is ready to use.
type LevelStats struct {
	acquiredR  atomic.Int64
	acquiredW  atomic.Int64
	contendedR atomic.Int64
	contendedW atomic.Int64
	waitNsR    atomic.Int64
	waitNsW    atomic.Int64
	heldNsR    atomic.Int64
	heldNsW    atomic.Int64
	releasedR  atomic.Int64
	releasedW  atomic.Int64
	presentNs  atomic.Int64
	waitHistR  Hist
	waitHistW  Hist

	// Latch-free (OLC) read telemetry, fed through lock.VersionProbe:
	// optimistic readers never enter the lock queue, so their cost
	// surfaces as restarts and fallbacks instead of R-waits.
	readRestarts  atomic.Int64
	readFallbacks atomic.Int64
}

// Acquired implements lock.Probe.
func (s *LevelStats) Acquired(write bool, waitNs int64) {
	if write {
		s.acquiredW.Add(1)
		if waitNs > 0 {
			s.contendedW.Add(1)
			s.waitNsW.Add(waitNs)
		}
		s.waitHistW.Observe(waitNs)
	} else {
		s.acquiredR.Add(1)
		if waitNs > 0 {
			s.contendedR.Add(1)
			s.waitNsR.Add(waitNs)
		}
		s.waitHistR.Observe(waitNs)
	}
}

// Held implements lock.Probe.
func (s *LevelStats) Held(write bool, heldNs int64) {
	if write {
		s.heldNsW.Add(heldNs)
		s.releasedW.Add(1)
	} else {
		s.heldNsR.Add(heldNs)
		s.releasedR.Add(1)
	}
}

// WriterPresence implements lock.Probe.
func (s *LevelStats) WriterPresence(ns int64) { s.presentNs.Add(ns) }

// ReadRestart implements lock.VersionProbe: one failed snapshot
// validation by a latch-free reader at this level.
func (s *LevelStats) ReadRestart() { s.readRestarts.Add(1) }

// ReadFallback implements lock.VersionProbe: one latch-free descent
// exhausted its retries and re-descended under locks.
func (s *LevelStats) ReadFallback() { s.readFallbacks.Add(1) }

// LevelSnapshot is a point-in-time copy of a LevelStats.
type LevelSnapshot struct {
	Level      int
	AcquiredR  int64
	AcquiredW  int64
	ContendedR int64
	ContendedW int64
	WaitNsR    int64
	WaitNsW    int64
	HeldNsR    int64
	HeldNsW    int64
	ReleasedR  int64
	ReleasedW  int64
	PresentNs  int64
	WaitHistR  HistSnapshot
	WaitHistW  HistSnapshot

	ReadRestarts  int64 // OLC failed snapshot validations
	ReadFallbacks int64 // OLC descents that fell back to locking
}

// Snapshot copies the counters. Fields are loaded individually: each is
// exact, their mutual skew is bounded by in-flight operations.
func (s *LevelStats) Snapshot() LevelSnapshot {
	return LevelSnapshot{
		AcquiredR:  s.acquiredR.Load(),
		AcquiredW:  s.acquiredW.Load(),
		ContendedR: s.contendedR.Load(),
		ContendedW: s.contendedW.Load(),
		WaitNsR:    s.waitNsR.Load(),
		WaitNsW:    s.waitNsW.Load(),
		HeldNsR:    s.heldNsR.Load(),
		HeldNsW:    s.heldNsW.Load(),
		ReleasedR:  s.releasedR.Load(),
		ReleasedW:  s.releasedW.Load(),
		PresentNs:  s.presentNs.Load(),
		WaitHistR:  s.waitHistR.Snapshot(),
		WaitHistW:  s.waitHistW.Snapshot(),

		ReadRestarts:  s.readRestarts.Load(),
		ReadFallbacks: s.readFallbacks.Load(),
	}
}

// MaxLevels bounds the tracked tree height; a realistic B-tree is far
// shallower, and deeper levels would clamp into the top accumulator.
const MaxLevels = 24

// TreeProbe holds per-level accumulators for one tree. Level numbering
// follows cbtree: 1 is the leaf level and the root has level == height.
type TreeProbe struct {
	levels [MaxLevels + 1]LevelStats
	start  time.Time
}

// NewTreeProbe returns a probe anchored at the current time.
func NewTreeProbe() *TreeProbe {
	return &TreeProbe{start: time.Now()}
}

// Level returns the accumulator for a tree level (clamped to
// [1, MaxLevels]), suitable for lock.FCFSRWMutex.SetProbe.
func (p *TreeProbe) Level(level int) *LevelStats {
	if level < 1 {
		level = 1
	}
	if level > MaxLevels {
		level = MaxLevels
	}
	return &p.levels[level]
}

// Start returns the probe's creation time.
func (p *TreeProbe) Start() time.Time { return p.start }

// Snapshot captures every level that has seen any traffic, in level order
// (leaf first), stamped with the capture time.
type Snapshot struct {
	At     time.Time
	Levels []LevelSnapshot
}

// Snapshot captures the probe.
func (p *TreeProbe) Snapshot() Snapshot {
	s := Snapshot{At: time.Now()}
	for lv := 1; lv <= MaxLevels; lv++ {
		ls := p.levels[lv].Snapshot()
		// OLC internal levels may see only latch-free traffic: restarts
		// without a single lock acquisition still count as activity.
		if ls.AcquiredR == 0 && ls.AcquiredW == 0 && ls.ReadRestarts == 0 {
			continue
		}
		ls.Level = lv
		s.Levels = append(s.Levels, ls)
	}
	return s
}

// LevelRates are the measured model parameters of one level over a window.
type LevelRates struct {
	Level     int
	LambdaR   float64 // reader lock arrivals per second
	LambdaW   float64 // writer lock arrivals per second
	MuR       float64 // reader service rate (completions per held-second)
	MuW       float64 // writer service rate
	MeanHoldR float64 // seconds
	MeanHoldW float64 // seconds
	MeanWaitR float64 // seconds, over all acquisitions (0-wait included)
	MeanWaitW float64 // seconds
	RhoW      float64 // measured writer-presence fraction of the window
	WaitHistR HistSnapshot
	WaitHistW HistSnapshot
	Acquired  int64 // total acquisitions in the window, both classes
	Released  int64 // total releases in the window, both classes

	ReadRestarts  int64   // OLC validation failures in the window
	ReadFallbacks int64   // OLC locked fallbacks in the window
	RestartRate   float64 // OLC validation failures per second
	FallbackRate  float64 // OLC locked fallbacks per second
}

// MeanHold returns the class-blended mean hold time in seconds, weighting
// each class by its arrival rate.
func (r LevelRates) MeanHold() float64 {
	lam := r.LambdaR + r.LambdaW
	if lam == 0 {
		return 0
	}
	return (r.LambdaR*r.MeanHoldR + r.LambdaW*r.MeanHoldW) / lam
}

// Rates differences two snapshots of the same probe into per-level rates.
// Levels absent from either snapshot are carried with whatever window
// counts exist; a non-positive wall-clock window yields nil.
func Rates(prev, cur Snapshot) []LevelRates {
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return nil
	}
	prevByLevel := make(map[int]LevelSnapshot, len(prev.Levels))
	for _, ls := range prev.Levels {
		prevByLevel[ls.Level] = ls
	}
	var out []LevelRates
	for _, ls := range cur.Levels {
		p := prevByLevel[ls.Level] // zero value when the level is new
		d := LevelSnapshot{
			AcquiredR: ls.AcquiredR - p.AcquiredR,
			AcquiredW: ls.AcquiredW - p.AcquiredW,
			WaitNsR:   ls.WaitNsR - p.WaitNsR,
			WaitNsW:   ls.WaitNsW - p.WaitNsW,
			HeldNsR:   ls.HeldNsR - p.HeldNsR,
			HeldNsW:   ls.HeldNsW - p.HeldNsW,
			ReleasedR: ls.ReleasedR - p.ReleasedR,
			ReleasedW: ls.ReleasedW - p.ReleasedW,
			PresentNs: ls.PresentNs - p.PresentNs,

			ReadRestarts:  ls.ReadRestarts - p.ReadRestarts,
			ReadFallbacks: ls.ReadFallbacks - p.ReadFallbacks,
		}
		r := LevelRates{
			Level:     ls.Level,
			LambdaR:   float64(d.AcquiredR) / dt,
			LambdaW:   float64(d.AcquiredW) / dt,
			RhoW:      float64(d.PresentNs) / 1e9 / dt,
			WaitHistR: ls.WaitHistR.Sub(p.WaitHistR),
			WaitHistW: ls.WaitHistW.Sub(p.WaitHistW),
			Acquired:  d.AcquiredR + d.AcquiredW,
			Released:  d.ReleasedR + d.ReleasedW,

			ReadRestarts:  d.ReadRestarts,
			ReadFallbacks: d.ReadFallbacks,
			RestartRate:   float64(d.ReadRestarts) / dt,
			FallbackRate:  float64(d.ReadFallbacks) / dt,
		}
		if d.ReleasedR > 0 && d.HeldNsR > 0 {
			r.MeanHoldR = float64(d.HeldNsR) / 1e9 / float64(d.ReleasedR)
			r.MuR = 1 / r.MeanHoldR
		}
		if d.ReleasedW > 0 && d.HeldNsW > 0 {
			r.MeanHoldW = float64(d.HeldNsW) / 1e9 / float64(d.ReleasedW)
			r.MuW = 1 / r.MeanHoldW
		}
		if d.AcquiredR > 0 {
			r.MeanWaitR = float64(d.WaitNsR) / 1e9 / float64(d.AcquiredR)
		}
		if d.AcquiredW > 0 {
			r.MeanWaitW = float64(d.WaitNsW) / 1e9 / float64(d.AcquiredW)
		}
		if r.RhoW < 0 {
			r.RhoW = 0
		}
		if r.RhoW > 1 {
			r.RhoW = 1
		}
		out = append(out, r)
	}
	return out
}

// ModelPoint pairs a level's measured rates with the queueing model
// evaluated at those rates.
type ModelPoint struct {
	LevelRates
	Sol       qmodel.Solution
	Evaluated bool    // false when the window had no usable rates
	PredWaitR float64 // predicted reader queue wait, seconds
	PredWaitW float64 // predicted writer queue wait, seconds
}

// Evaluate solves the appendix's FCFS reader/writer queue at the measured
// parameters of one level and derives first-order predicted waits: writers
// wait behind earlier aggregate customers (M/M/1 on the aggregate stream,
// the composition of the paper's §5), readers wait only when a writer is
// in the system, for on the order of the aggregate service time.
func Evaluate(r LevelRates) ModelPoint {
	mp := ModelPoint{LevelRates: r}
	if r.LambdaR+r.LambdaW == 0 {
		return mp
	}
	in := qmodel.Input{LambdaR: r.LambdaR, LambdaW: r.LambdaW, MuR: r.MuR, MuW: r.MuW}
	sol, err := qmodel.Solve(in)
	if err != nil {
		return mp
	}
	mp.Sol = sol
	mp.Evaluated = true
	if r.LambdaW > 0 {
		rhoA := r.LambdaW * sol.TA
		if rhoA > 1 {
			rhoA = 1
		}
		mp.PredWaitW = qmodel.MM1Wait(rhoA, sol.TA)
		if math.IsInf(mp.PredWaitW, 1) {
			mp.PredWaitW = math.Inf(1)
		}
		mp.PredWaitR = sol.RhoW * sol.TA
	}
	return mp
}

// EvaluateAll maps Evaluate over per-level rates.
func EvaluateAll(rates []LevelRates) []ModelPoint {
	out := make([]ModelPoint, len(rates))
	for i, r := range rates {
		out[i] = Evaluate(r)
	}
	return out
}

// PredictedResponse composes the per-level model points into a predicted
// mean operation response time (seconds): each level contributes its
// blended queue wait plus blended hold time, weighted by how many lock
// visits an operation makes there (level arrival rate over the operation
// rate). opRate is the measured operations/second; a non-positive opRate
// yields 0.
func PredictedResponse(points []ModelPoint, opRate float64) float64 {
	if opRate <= 0 {
		return 0
	}
	total := 0.0
	for _, p := range points {
		lam := p.LambdaR + p.LambdaW
		if lam == 0 {
			continue
		}
		visits := lam / opRate
		var wait float64
		if p.Evaluated {
			wait = (p.LambdaR*p.PredWaitR + p.LambdaW*p.PredWaitW) / lam
		}
		hold := (p.LambdaR*p.MeanHoldR + p.LambdaW*p.MeanHoldW) / lam
		total += visits * (wait + hold)
	}
	return total
}
