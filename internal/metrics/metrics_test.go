package metrics

import (
	"sync"
	"testing"
	"time"

	"btreeperf/internal/lock"
)

func TestHistQuantile(t *testing.T) {
	var h Hist
	// 100 samples at ~1µs, 10 at ~1ms: p50 in the µs range, p99+ in ms.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.N() != 110 {
		t.Fatalf("N = %d", s.N())
	}
	p50 := s.Quantile(0.5)
	if p50 < 512 || p50 > 2048 {
		t.Errorf("p50 = %dns, want ~1µs", p50)
	}
	p999 := s.Quantile(0.999)
	if p999 < 512*1024 || p999 > 2*1024*1024 {
		t.Errorf("p99.9 = %dns, want ~1ms", p999)
	}
	// Window subtraction: a fresh window sees only the new samples.
	h.Observe(1 << 20)
	d := h.Snapshot().Sub(s)
	if d.N() != 1 {
		t.Errorf("window N = %d, want 1", d.N())
	}
}

func TestHistZeroAndOverflow(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1 << 62) // beyond the last bucket: saturates
	s := h.Snapshot()
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Quantile(0) != 0 {
		t.Errorf("q0 = %d, want 0", s.Quantile(0))
	}
}

// TestLevelStatsAsLockProbe wires a LevelStats to a real FCFSRWMutex and
// checks that measured rates come out in the right ballpark.
func TestLevelStatsAsLockProbe(t *testing.T) {
	probe := NewTreeProbe()
	var l lock.FCFSRWMutex
	l.SetProbe(probe.Level(1))

	s0 := probe.Snapshot()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		write := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if write {
					l.Lock()
					time.Sleep(50 * time.Microsecond)
					l.Unlock()
				} else {
					l.RLock()
					time.Sleep(50 * time.Microsecond)
					l.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	s1 := probe.Snapshot()

	rates := Rates(s0, s1)
	if len(rates) != 1 {
		t.Fatalf("got %d levels, want 1", len(rates))
	}
	r := rates[0]
	if r.Level != 1 {
		t.Fatalf("level %d", r.Level)
	}
	if r.LambdaR <= 0 || r.LambdaW <= 0 {
		t.Fatalf("arrival rates %+v", r)
	}
	// Mean writer hold is the sleep plus overhead: between 50µs and 5ms.
	if r.MeanHoldW < 50e-6 || r.MeanHoldW > 5e-3 {
		t.Errorf("mean writer hold %v s, want ~50µs", r.MeanHoldW)
	}
	if r.MeanHoldR < 50e-6 || r.MeanHoldR > 5e-3 {
		t.Errorf("mean reader hold %v s, want ~50µs", r.MeanHoldR)
	}
	// Writers are present much of the time under this contention.
	if r.RhoW <= 0 || r.RhoW > 1 {
		t.Errorf("rho_w = %v, want in (0, 1]", r.RhoW)
	}
	if r.Acquired != 800 || r.Released != 800 {
		t.Errorf("window acquired=%d released=%d, want 800/800", r.Acquired, r.Released)
	}

	mp := Evaluate(r)
	if !mp.Evaluated {
		t.Fatal("model did not evaluate")
	}
	if mp.Sol.RhoW < 0 || mp.Sol.RhoW > 1 {
		t.Errorf("model rho_w = %v", mp.Sol.RhoW)
	}
}

func TestRatesEmptyWindow(t *testing.T) {
	probe := NewTreeProbe()
	s := probe.Snapshot()
	if got := Rates(s, s); got != nil {
		t.Fatalf("zero-width window produced %v", got)
	}
	if len(s.Levels) != 0 {
		t.Fatalf("idle probe has %d active levels", len(s.Levels))
	}
}

func TestEvaluateLightVsHeavy(t *testing.T) {
	light := LevelRates{Level: 3, LambdaR: 100, LambdaW: 10, MuR: 1e5, MuW: 1e5}
	mp := Evaluate(light)
	if !mp.Evaluated || !mp.Sol.Stable {
		t.Fatalf("light load should be stable: %+v", mp)
	}
	if mp.Sol.RhoW >= 0.5 {
		t.Errorf("light load rho_w = %v, want < .5", mp.Sol.RhoW)
	}
	heavy := LevelRates{Level: 3, LambdaR: 9e4, LambdaW: 5e4, MuR: 1e5, MuW: 1e5}
	mh := Evaluate(heavy)
	if !mh.Evaluated {
		t.Fatal("heavy load did not evaluate")
	}
	if mh.Sol.RhoW < 0.5 {
		t.Errorf("overloaded queue rho_w = %v, want >= .5", mh.Sol.RhoW)
	}
	if mh.Sol.RhoW <= mp.Sol.RhoW {
		t.Errorf("rho_w not monotone: heavy %v <= light %v", mh.Sol.RhoW, mp.Sol.RhoW)
	}
}

func TestPredictedResponse(t *testing.T) {
	// Two levels, ops visit each once at 1000 ops/s; holds of 1µs and 2µs
	// with no waits predict ~3µs response.
	points := []ModelPoint{
		{LevelRates: LevelRates{Level: 1, LambdaR: 800, LambdaW: 200, MeanHoldR: 1e-6, MeanHoldW: 1e-6}},
		{LevelRates: LevelRates{Level: 2, LambdaR: 1000, MeanHoldR: 2e-6}},
	}
	got := PredictedResponse(points, 1000)
	if got < 2.5e-6 || got > 3.5e-6 {
		t.Fatalf("predicted response %v s, want ~3µs", got)
	}
	if PredictedResponse(points, 0) != 0 {
		t.Fatal("zero op rate should predict 0")
	}
}

func TestLevelClamping(t *testing.T) {
	p := NewTreeProbe()
	if p.Level(0) != p.Level(1) {
		t.Error("level 0 should clamp to 1")
	}
	if p.Level(MaxLevels+5) != p.Level(MaxLevels) {
		t.Error("deep levels should clamp to MaxLevels")
	}
}
