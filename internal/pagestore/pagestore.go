// Package pagestore provides fixed-size page storage on a single file:
// allocation with a free list, checksummed reads and writes, and a
// durable meta page. It is the raw disk substrate under
// internal/diskbtree, turning the paper's abstract "disk cost D" into
// actual page I/O.
//
// Layout: page 0 is the meta page; all other pages are user pages. Every
// page carries a CRC32 footer verified on read. The store is safe for
// concurrent use.
package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// payloadSize is the per-page space available to callers (the last 4
// bytes hold the checksum).
const payloadSize = PageSize - 4

// PageID identifies a page within a store. Zero is the meta page and is
// never returned by Allocate.
type PageID uint64

// metaMagic marks a formatted store.
const metaMagic = 0x42545045 // "BTPE"

// Store is a page file. Create or open one with Open.
type Store struct {
	mu       sync.Mutex
	f        File
	pages    PageID   // total pages including meta
	freeHead PageID   // head of the free list (0 = empty)
	root     PageID   // caller-managed root pointer stored in the meta page
	userData [64]byte // caller-managed blob stored in the meta page

	reads  int64
	writes int64
}

func errOversize(n int) error {
	return fmt.Errorf("pagestore: payload %d exceeds %d", n, payloadSize)
}

// Open opens (creating if necessary) the page store at path.
func Open(path string) (*Store, error) { return OpenFS(path, OSFS) }

// OpenFS is Open through an explicit FS — the injection point for the
// failpoint layer (FailFS) in crash and fault tests. fs nil means OSFS.
func OpenFS(path string, fs FS) (*Store, error) {
	if fs == nil {
		fs = OSFS
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	s := &Store{f: f}
	if st.Size() == 0 {
		// Fresh file: write the meta page.
		s.pages = 1
		if err := s.writeMetaLocked(); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: file size %d not page-aligned", st.Size())
	}
	s.pages = PageID(st.Size() / PageSize)
	if err := s.readMetaLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Close flushes the meta page and closes the file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeMetaLocked(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Pages returns the total number of pages (including meta and freed ones).
func (s *Store) Pages() int { s.mu.Lock(); defer s.mu.Unlock(); return int(s.pages) }

// Stats returns cumulative page reads and writes.
func (s *Store) Stats() (reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// Root returns the caller-managed root page id from the meta page.
func (s *Store) Root() PageID { s.mu.Lock(); defer s.mu.Unlock(); return s.root }

// SetRoot durably records the caller's root page id.
func (s *Store) SetRoot(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.root = id
	return s.writeMetaLocked()
}

// UserData returns the caller-managed meta blob.
func (s *Store) UserData() [64]byte { s.mu.Lock(); defer s.mu.Unlock(); return s.userData }

// SetUserData durably records the caller-managed meta blob.
func (s *Store) SetUserData(b [64]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.userData = b
	return s.writeMetaLocked()
}

// Allocate returns a fresh (or recycled) page id.
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freeHead != 0 {
		id := s.freeHead
		// The freed page's payload holds the next free id.
		buf, err := s.readLocked(id)
		if err != nil {
			return 0, err
		}
		s.freeHead = PageID(binary.LittleEndian.Uint64(buf))
		return id, nil
	}
	// Extension is a pure counter bump: the file grows lazily when the
	// page is first written (every live page is written before any read —
	// the buffer pool flushes dirty frames, Free writes the free-list
	// link). Recovery never trusts this file anyway; it is rebuilt from
	// the checkpoint image.
	id := s.pages
	s.pages++
	return id, nil
}

// Free returns a page to the free list. The page's contents are destroyed.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkID(id); err != nil {
		return err
	}
	buf := make([]byte, payloadSize)
	binary.LittleEndian.PutUint64(buf, uint64(s.freeHead))
	if err := s.writePayloadLocked(id, buf); err != nil {
		return err
	}
	s.freeHead = id
	return nil
}

// Write stores payload (at most PageSize−4 bytes) into the page.
func (s *Store) Write(id PageID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkID(id); err != nil {
		return err
	}
	if len(payload) > payloadSize {
		return errOversize(len(payload))
	}
	buf := make([]byte, payloadSize)
	copy(buf, payload)
	return s.writePayloadLocked(id, buf)
}

// Read returns the page's payload (PageSize−4 bytes), verifying the
// checksum.
func (s *Store) Read(id PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkID(id); err != nil {
		return nil, err
	}
	return s.readLocked(id)
}

// Sync flushes the file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

func (s *Store) checkID(id PageID) error {
	if id == 0 {
		return fmt.Errorf("pagestore: page 0 is the meta page")
	}
	if id >= s.pages {
		return fmt.Errorf("pagestore: page %d beyond end (%d pages)", id, s.pages)
	}
	return nil
}

func (s *Store) readLocked(id PageID) ([]byte, error) {
	buf := make([]byte, PageSize)
	if _, err := s.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pagestore: read page %d: %w", id, err)
	}
	s.reads++
	want := binary.LittleEndian.Uint32(buf[payloadSize:])
	if got := crc32.ChecksumIEEE(buf[:payloadSize]); got != want {
		return nil, fmt.Errorf("pagestore: page %d checksum mismatch (%08x != %08x)", id, got, want)
	}
	return buf[:payloadSize], nil
}

func (s *Store) writePayloadLocked(id PageID, payload []byte) error {
	buf := make([]byte, PageSize)
	copy(buf, payload)
	binary.LittleEndian.PutUint32(buf[payloadSize:], crc32.ChecksumIEEE(buf[:payloadSize]))
	return s.writeRawLocked(id, buf)
}

func (s *Store) writeRawLocked(id PageID, buf []byte) error {
	if _, err := s.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", id, err)
	}
	s.writes++
	return nil
}

// writeMetaLocked serializes the meta page.
func (s *Store) writeMetaLocked() error {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.pages))
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.freeHead))
	binary.LittleEndian.PutUint64(buf[24:], uint64(s.root))
	copy(buf[32:], s.userData[:])
	binary.LittleEndian.PutUint32(buf[payloadSize:], crc32.ChecksumIEEE(buf[:payloadSize]))
	if _, err := s.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pagestore: write meta: %w", err)
	}
	return nil
}

func (s *Store) readMetaLocked() error {
	buf := make([]byte, PageSize)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("pagestore: read meta: %w", err)
	}
	want := binary.LittleEndian.Uint32(buf[payloadSize:])
	if got := crc32.ChecksumIEEE(buf[:payloadSize]); got != want {
		return fmt.Errorf("pagestore: meta checksum mismatch")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return fmt.Errorf("pagestore: bad magic (not a btreeperf page store)")
	}
	s.pages = PageID(binary.LittleEndian.Uint64(buf[8:]))
	s.freeHead = PageID(binary.LittleEndian.Uint64(buf[16:]))
	s.root = PageID(binary.LittleEndian.Uint64(buf[24:]))
	copy(s.userData[:], buf[32:])
	return nil
}
