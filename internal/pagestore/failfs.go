package pagestore

// FailFS is the storage counterpart of internal/faults: a deterministic
// failpoint layer under the pagestore and journal. It wraps another FS
// (usually OSFS) and injects the failure modes real disks and kernels
// exhibit:
//
//   - torn / short writes: the Nth write persists only a prefix of its
//     payload, then errors (a crash or I/O error mid-write);
//   - fsync errors: the Nth Sync fails — the fsyncgate scenario, where
//     previously written data may or may not be durable and the only
//     safe reaction is to stop acknowledging;
//   - crash-at-Nth-syscall: after N mutating syscalls everything, reads
//     included, fails with ErrCrashed and nothing further reaches the
//     wrapped FS — the on-disk state is frozen exactly as a kill -9
//     at that syscall would leave it, so a test can reopen the real
//     files with OSFS and check recovery.
//
// Mutating syscalls (Write, WriteAt, Truncate, Sync, Rename) share one
// global 1-based counter across every file opened through the FailFS, so
// a deterministic workload can be crash-swept at every prefix of its
// syscall trace.

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrInjected is the error injected by a planned write or sync failure.
var ErrInjected = errors.New("pagestore: injected I/O fault")

// ErrCrashed is returned by every operation after the crash point.
var ErrCrashed = errors.New("pagestore: simulated crash (process is gone)")

// ErrNoSpace is the injected disk-full error: once a WriteBudget is
// exhausted, every further write fails with it (short-writing the last
// partial payload), exactly as ENOSPC behaves on a full filesystem.
var ErrNoSpace = errors.New("pagestore: injected ENOSPC (disk full)")

// FailPlan schedules faults against the shared mutating-syscall counter.
// Zero values mean "never".
type FailPlan struct {
	// FailWriteAt makes the mutating syscall with this 1-based index fail
	// with ErrInjected, if it is a Write/WriteAt: only the first TornBytes
	// bytes of the payload are persisted (0 = nothing lands — a pure short
	// write). If the syscall at that index is not a write it is unaffected.
	FailWriteAt int64
	TornBytes   int

	// FailSyncAt makes the Nth Sync (counted separately, 1-based) fail
	// with ErrInjected. The file contents are left as the kernel had them:
	// nothing is durably guaranteed either way — exactly the contract a
	// failed fsync gives.
	FailSyncAt int64

	// CrashAt freezes the world at the mutating syscall with this 1-based
	// index: that syscall and everything after it (reads too) fail with
	// ErrCrashed and never reach the wrapped FS.
	CrashAt int64

	// WriteBudget > 0 simulates a disk with that many writable bytes
	// left: writes consume it, and the write that would exceed it
	// persists only the remaining budget (a short write) and fails with
	// ErrNoSpace, as does every write after. Reads, syncs, and renames
	// are unaffected — metadata operations usually still succeed on a
	// full disk.
	WriteBudget int64
}

// FailFS wraps an FS with the plan. Safe for concurrent use.
type FailFS struct {
	inner FS
	mu    sync.Mutex
	plan  FailPlan

	ops     int64 // mutating syscalls observed
	syncs   int64 // Syncs observed
	written int64 // payload bytes written (the counter WriteBudget draws on)
	crashed bool
}

// NewFailFS wraps inner (nil = OSFS) with plan.
func NewFailFS(inner FS, plan FailPlan) *FailFS {
	if inner == nil {
		inner = OSFS
	}
	return &FailFS{inner: inner, plan: plan}
}

// Ops returns the number of mutating syscalls observed so far. A test can
// run a workload once with an inert plan to learn its syscall count, then
// crash-sweep every prefix.
func (fs *FailFS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Syncs returns the number of Sync calls observed so far (the counter
// FailSyncAt is matched against).
func (fs *FailFS) Syncs() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// BytesWritten returns the total payload bytes written so far. A test
// can run a workload once with no budget to size a WriteBudget that
// fails partway through it.
func (fs *FailFS) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.written
}

// Crashed reports whether the crash point has been reached.
func (fs *FailFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// mutOp accounts one mutating syscall. It returns (allow, err): err when
// the syscall must fail outright, allow = payload prefix length to
// persist when a torn write fires (-1 = persist everything).
func (fs *FailFS) mutOp(isWrite bool, payloadLen int) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, ErrCrashed
	}
	fs.ops++
	if fs.plan.CrashAt > 0 && fs.ops >= fs.plan.CrashAt {
		fs.crashed = true
		return 0, ErrCrashed
	}
	if isWrite && fs.plan.FailWriteAt > 0 && fs.ops == fs.plan.FailWriteAt {
		torn := fs.plan.TornBytes
		if torn > payloadLen {
			torn = payloadLen
		}
		return torn, ErrInjected
	}
	if isWrite {
		if fs.plan.WriteBudget > 0 && fs.written+int64(payloadLen) > fs.plan.WriteBudget {
			remain := fs.plan.WriteBudget - fs.written
			if remain < 0 {
				remain = 0
			}
			fs.written = fs.plan.WriteBudget
			return int(remain), ErrNoSpace
		}
		fs.written += int64(payloadLen)
	}
	return -1, nil
}

// syncOp accounts one Sync (which is also a mutating syscall for the
// crash counter).
func (fs *FailFS) syncOp() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	fs.ops++
	fs.syncs++
	if fs.plan.CrashAt > 0 && fs.ops >= fs.plan.CrashAt {
		fs.crashed = true
		return ErrCrashed
	}
	if fs.plan.FailSyncAt > 0 && fs.syncs == fs.plan.FailSyncAt {
		return ErrInjected
	}
	return nil
}

// readOp gates non-mutating syscalls: they pass until the crash.
func (fs *FailFS) readOp() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenFile opens through the wrapped FS, returning a fault-injecting File.
func (fs *FailFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := fs.readOp(); err != nil {
		return nil, err
	}
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{fs: fs, f: f}, nil
}

// Rename counts as a mutating syscall.
func (fs *FailFS) Rename(oldpath, newpath string) error {
	if _, err := fs.mutOp(false, 0); err != nil {
		return err
	}
	return fs.inner.Rename(oldpath, newpath)
}

// Remove counts as a mutating syscall (segment pruning in the journal's
// retention layer; see journal.SetRetention).
func (fs *FailFS) Remove(name string) error {
	if _, err := fs.mutOp(false, 0); err != nil {
		return err
	}
	if r, ok := fs.inner.(interface{ Remove(string) error }); ok {
		return r.Remove(name)
	}
	return os.Remove(name)
}

// failFile routes every syscall through the FailFS's plan.
type failFile struct {
	fs *FailFS
	f  File
}

func (f *failFile) write(p []byte, do func(q []byte) (int, error)) (int, error) {
	allow, err := f.fs.mutOp(true, len(p))
	if err != nil {
		if allow > 0 && (errors.Is(err, ErrInjected) || errors.Is(err, ErrNoSpace)) {
			// Torn or out-of-space write: a prefix lands before the failure.
			if n, werr := do(p[:allow]); werr != nil {
				return n, werr
			}
			return allow, fmt.Errorf("torn write after %d/%d bytes: %w", allow, len(p), err)
		}
		return 0, err
	}
	return do(p)
}

func (f *failFile) Write(p []byte) (int, error) {
	return f.write(p, func(q []byte) (int, error) { return f.f.Write(q) })
}

func (f *failFile) WriteAt(p []byte, off int64) (int, error) {
	return f.write(p, func(q []byte) (int, error) { return f.f.WriteAt(q, off) })
}

func (f *failFile) Truncate(size int64) error {
	if _, err := f.fs.mutOp(false, 0); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *failFile) Sync() error {
	if err := f.fs.syncOp(); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *failFile) Read(p []byte) (int, error) {
	if err := f.fs.readOp(); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *failFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.readOp(); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f *failFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.readOp(); err != nil {
		return 0, err
	}
	return f.f.Seek(offset, whence)
}

func (f *failFile) Stat() (os.FileInfo, error) {
	if err := f.fs.readOp(); err != nil {
		return nil, err
	}
	return f.f.Stat()
}

// Close always reaches the real file, even after a crash: the simulated
// process is gone, but the test process must not leak descriptors.
func (f *failFile) Close() error { return f.f.Close() }
