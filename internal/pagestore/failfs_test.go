package pagestore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openVia(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFailFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := NewFailFS(nil, FailPlan{FailWriteAt: 2, TornBytes: 3})
	f := openVia(t, fs, path)
	defer f.Close()

	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.WriteAt([]byte("world"), 5)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("torn write persisted %d bytes, want 3", n)
	}
	// The real file holds the full first write plus the torn prefix.
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "hellowor" {
		t.Fatalf("file contents %q, want %q", got, "hellowor")
	}
	// Later writes are unaffected (the plan fired once).
	if _, err := f.WriteAt([]byte("!"), 8); err != nil {
		t.Fatalf("write 3: %v", err)
	}
}

func TestFailFSSyncError(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailFS(nil, FailPlan{FailSyncAt: 2})
	f := openVia(t, fs, filepath.Join(dir, "f"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: err = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
}

func TestFailFSCrashFreezesEverything(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := NewFailFS(nil, FailPlan{CrashAt: 3})
	f := openVia(t, fs, path)
	defer f.Close()

	if _, err := f.WriteAt([]byte("aa"), 0); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("bb"), 2); !errors.Is(err, ErrCrashed) { // op 3: crash
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs not marked crashed")
	}
	// Everything after the crash fails, reads included, and nothing lands.
	if _, err := f.WriteAt([]byte("cc"), 4); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	var buf [2]byte
	if _, err := f.ReadAt(buf[:], 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := fs.OpenFile(path, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v", err)
	}
	if err := fs.Rename(path, path+"x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aa" {
		t.Fatalf("frozen file holds %q, want %q", got, "aa")
	}
	if fs.Ops() != 3 {
		t.Fatalf("Ops = %d, want 3", fs.Ops())
	}
}

// TestFailFSUnderStore drives a Store through the failpoint layer: a
// planned sync failure must surface through Store.Sync.
func TestFailFSUnderStore(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailFS(nil, FailPlan{FailSyncAt: 1})
	s, err := OpenFS(filepath.Join(dir, "s.db"), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Store.Sync = %v, want ErrInjected", err)
	}
}
