package pagestore

// This file adds the hooks internal/journal needs to make a store
// crash-recoverable: a write guard invoked before any user-page
// overwrite, and snapshot/restore of the store's full meta state.

// WriteGuard is called with the page id before Write or Free overwrites a
// user page (never for the meta page or for fresh pages appended by
// Allocate). A journal uses it to capture the page's prior image under the
// write-ahead rule. The guard runs without the store's internal lock, so
// it may call Read; the caller must not issue concurrent writes to the
// same page (internal/diskbtree's buffer pool already serializes them).
type WriteGuard func(PageID) error

// SetWriteGuard installs the guard (nil disables it).
func (s *Store) SetWriteGuard(g WriteGuard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = g
}

// guardFor fetches the current guard under the lock.
func (s *Store) guardFor() WriteGuard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.guard
}

// Snapshot returns the store's meta state: total pages, free-list head,
// root pointer and user data.
func (s *Store) Snapshot() (pages, freeHead, root PageID, userData [64]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages, s.freeHead, s.root, s.userData
}

// Restore rewinds the store to a snapshot: the file is truncated to the
// snapshot's page count and the meta page rewritten. Page contents within
// the retained range are NOT touched — the caller (the journal) restores
// those from its page images first.
func (s *Store) Restore(pages, freeHead, root PageID, userData [64]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pages < 1 {
		pages = 1
	}
	if err := s.f.Truncate(int64(pages) * PageSize); err != nil {
		return err
	}
	s.pages = pages
	s.freeHead = freeHead
	s.root = root
	s.userData = userData
	return s.writeMetaLocked()
}

// WriteRestored writes a page image during recovery, bypassing the guard.
func (s *Store) WriteRestored(id PageID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkID(id); err != nil {
		return err
	}
	if len(payload) > payloadSize {
		return errOversize(len(payload))
	}
	buf := make([]byte, payloadSize)
	copy(buf, payload)
	return s.writePayloadLocked(id, buf)
}
