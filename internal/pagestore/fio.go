package pagestore

// This file abstracts the store's file I/O behind small FS/File
// interfaces so tests can inject storage faults (see FailFS). The store
// itself, and internal/journal on top of it, only ever touch the disk
// through these interfaces; production code uses OSFS, the passthrough
// to the os package.

import (
	"io"
	"os"
)

// File is the slice of *os.File the storage layer needs. Implementations
// must be safe for the same concurrent use *os.File allows (independent
// ReadAt/WriteAt; Seek+Read/Write externally serialized by the caller).
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS opens files and renames paths. It is the seam where tests inject
// torn writes, fsync failures, and simulated crashes underneath the
// pagestore and journal.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
}

// OSFS is the production FS: a passthrough to the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove is available on the production FS (and FailFS) for the
// journal's segment pruning; it is not part of the FS interface, so
// minimal test FS implementations keep compiling — callers fall back to
// os.Remove when the method is absent.
func (osFS) Remove(name string) error { return os.Remove(name) }
