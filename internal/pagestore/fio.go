package pagestore

// This file abstracts the store's file I/O behind small FS/File
// interfaces so tests can inject storage faults (see FailFS). The store
// itself, and internal/journal on top of it, only ever touch the disk
// through these interfaces; production code uses OSFS, the passthrough
// to the os package.

import (
	"io"
	"os"
)

// File is the slice of *os.File the storage layer needs. Implementations
// must be safe for the same concurrent use *os.File allows (independent
// ReadAt/WriteAt; Seek+Read/Write externally serialized by the caller).
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS opens files and renames paths. It is the seam where tests inject
// torn writes, fsync failures, and simulated crashes underneath the
// pagestore and journal.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
}

// OSFS is the production FS: a passthrough to the os package.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove is available on the production FS (and FailFS) for the
// journal's segment pruning; it is not part of the FS interface, so
// minimal test FS implementations keep compiling — callers fall back to
// os.Remove when the method is absent.
func (osFS) Remove(name string) error { return os.Remove(name) }

// RemoveFile removes name through fs when it implements Remove (OSFS and
// FailFS both do, so crash sweeps see the syscall), falling back to
// os.Remove otherwise.
func RemoveFile(fs FS, name string) error {
	if r, ok := fs.(interface{ Remove(string) error }); ok {
		return r.Remove(name)
	}
	return os.Remove(name)
}

// CloneFile copies src over dst through fs, truncating dst to src's
// length. Recovery uses it to reset the scratch tree file from the
// checkpoint image; dst is not fsynced — callers that need durability
// sync it themselves.
func CloneFile(fs FS, src, dst string) error {
	if fs == nil {
		fs = OSFS
	}
	sf, err := fs.OpenFile(src, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer sf.Close()
	st, err := sf.Stat()
	if err != nil {
		return err
	}
	buf := make([]byte, st.Size())
	if _, err := io.ReadFull(io.NewSectionReader(sf, 0, st.Size()), buf); err != nil {
		return err
	}
	df, err := fs.OpenFile(dst, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer df.Close()
	if len(buf) > 0 {
		if _, err := df.WriteAt(buf, 0); err != nil {
			return err
		}
	}
	if err := df.Truncate(int64(len(buf))); err != nil {
		return err
	}
	return df.Close()
}
