package pagestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"btreeperf/internal/xrand"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestAllocateWriteRead(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("allocated meta page")
	}
	data := []byte("hello pages")
	if err := s.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("read %q", got[:len(data)])
	}
	if len(got) != PageSize-4 {
		t.Fatalf("payload size %d", len(got))
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	s, path := openTemp(t)
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoot(id); err != nil {
		t.Fatal(err)
	}
	var ud [64]byte
	copy(ud[:], "metadata blob")
	if err := s.SetUserData(ud); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Root() != id {
		t.Fatalf("root %d, want %d", s2.Root(), id)
	}
	if got := s2.UserData(); got != ud {
		t.Fatalf("user data %q", got[:16])
	}
	data, err := s2.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("persistent")) {
		t.Fatalf("data %q", data[:16])
	}
}

func TestFreeListRecycles(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	before := s.Pages()
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	// LIFO recycling: b then a, without growing the file.
	c, _ := s.Allocate()
	d, _ := s.Allocate()
	if c != b || d != a {
		t.Fatalf("recycled %d,%d want %d,%d", c, d, b, a)
	}
	if s.Pages() != before {
		t.Fatalf("file grew during recycling: %d -> %d", before, s.Pages())
	}
}

func TestFreeListSurvivesReopen(t *testing.T) {
	s, path := openTemp(t)
	a, _ := s.Allocate()
	s.Free(a)
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	b, _ := s2.Allocate()
	if b != a {
		t.Fatalf("free list lost: got %d want %d", b, a)
	}
}

func TestInvalidIDs(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Write(0, nil); err == nil {
		t.Error("write to meta page accepted")
	}
	if _, err := s.Read(999); err == nil {
		t.Error("read past end accepted")
	}
	if err := s.Free(0); err == nil {
		t.Error("free of meta page accepted")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	id, _ := s.Allocate()
	if err := s.Write(id, make([]byte, PageSize)); err == nil {
		t.Error("oversize payload accepted")
	}
	if err := s.Write(id, make([]byte, PageSize-4)); err != nil {
		t.Errorf("max payload rejected: %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s, path := openTemp(t)
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("important")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a byte in the page body.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(id)*PageSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Read(id); err == nil {
		t.Fatal("corrupted page read succeeded")
	}
}

func TestNotAStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.db")
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("junk file opened as store")
	}
	// Misaligned file.
	path2 := filepath.Join(t.TempDir(), "short.db")
	if err := os.WriteFile(path2, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path2); err == nil {
		t.Fatal("misaligned file opened as store")
	}
}

func TestConcurrentAllocWriteRead(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.New(uint64(w))
			ids := make([]PageID, 0, perWorker)
			payloads := make(map[PageID]byte)
			for i := 0; i < perWorker; i++ {
				id, err := s.Allocate()
				if err != nil {
					errs <- err
					return
				}
				b := byte(src.IntN(256))
				if err := s.Write(id, []byte{b, byte(w)}); err != nil {
					errs <- err
					return
				}
				ids = append(ids, id)
				payloads[id] = b
			}
			for _, id := range ids {
				data, err := s.Read(id)
				if err != nil {
					errs <- err
					return
				}
				if data[0] != payloads[id] || data[1] != byte(w) {
					errs <- os.ErrInvalid
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	reads, writes := s.Stats()
	if reads == 0 || writes == 0 {
		t.Fatal("stats not counted")
	}
}

func TestAllocatedIDsUnique(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	seen := map[PageID]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	dup := false
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id, err := s.Allocate()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[id] {
					dup = true
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if dup {
		t.Fatal("duplicate page id allocated")
	}
}

func TestCloneFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.db")
	dst := filepath.Join(dir, "dst.db")
	want := []byte("checkpoint image bytes")
	if err := os.WriteFile(src, want, 0o644); err != nil {
		t.Fatal(err)
	}
	// Pre-populate dst with something longer, so the truncate matters.
	if err := os.WriteFile(dst, make([]byte, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CloneFile(nil, src, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("clone = %q (%d bytes), want %q", got, len(got), want)
	}
	if err := CloneFile(nil, filepath.Join(dir, "missing"), dst); err == nil {
		t.Fatal("clone of missing source succeeded")
	}
}

func TestWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	// Probe: how many bytes does one page write cost?
	probe := NewFailFS(nil, FailPlan{})
	s, err := OpenFS(filepath.Join(dir, "probe.db"), probe)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	if err := s.Write(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	total := probe.BytesWritten() // up to and including the page write
	s.Close()
	if total == 0 {
		t.Fatal("probe counted no bytes")
	}

	// Budget one byte short of the workload: the last write comes up
	// short with ErrNoSpace, and every write after fails too.
	fs := NewFailFS(nil, FailPlan{WriteBudget: total - 1})
	s2, err := OpenFS(filepath.Join(dir, "full.db"), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	id2, _ := s2.Allocate()
	if err := s2.Write(id2, []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write on full disk: %v", err)
	}
	if err := s2.Write(id2, []byte("y")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second write on full disk: %v", err)
	}
}

func TestSync(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	id, _ := s.Allocate()
	s.Write(id, []byte("durable"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}
