package cbtree

import (
	"math/rand"
	"testing"
)

// TestSearchLinearBinaryAgree cross-checks the linear and binary node
// search paths against each other on sorted key sets of every size a
// node can hold, probing present keys, absent keys, and both ends.
func TestSearchLinearBinaryAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for size := 0; size <= 64; size++ {
		keys := make([]int64, 0, size)
		next := int64(rng.Intn(8))
		for i := 0; i < size; i++ {
			next += int64(1 + rng.Intn(6)) // strictly increasing, gaps of 1..6
			keys = append(keys, next)
		}
		probes := []int64{-1, 0, next + 1, next + 100}
		for _, k := range keys {
			probes = append(probes, k, k-1, k+1)
		}
		for _, k := range probes {
			if got, want := routeLinear(keys, k), routeBinary(keys, k); got != want {
				t.Fatalf("size %d key %d: routeLinear=%d routeBinary=%d (keys %v)",
					size, k, got, want, keys)
			}
			if got, want := lowerBoundLinear(keys, k), lowerBoundBinary(keys, k); got != want {
				t.Fatalf("size %d key %d: lowerBoundLinear=%d lowerBoundBinary=%d (keys %v)",
					size, k, got, want, keys)
			}
		}
	}
}

// TestSearchPathEquivalence runs an identical randomized workload through
// a capacity-8 tree (every node below linearScanMax, so always the linear
// path) and a capacity-64 tree (nodes mostly at or above it, so mostly
// the binary path) and checks that every operation's result agrees —
// an end-to-end check that the two search paths route identically.
func TestSearchPathEquivalence(t *testing.T) {
	for _, alg := range []Algorithm{LockCoupling, Optimistic, LinkType, OLC} {
		t.Run(alg.String(), func(t *testing.T) {
			small := New(8, alg)
			large := New(64, alg)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				key := int64(rng.Intn(3000))
				switch rng.Intn(4) {
				case 0, 1:
					v1, ok1 := small.Search(key)
					v2, ok2 := large.Search(key)
					if v1 != v2 || ok1 != ok2 {
						t.Fatalf("op %d: Search(%d) = (%d,%v) vs (%d,%v)", i, key, v1, ok1, v2, ok2)
					}
				case 2:
					val := rng.Uint64()
					if r1, r2 := small.Insert(key, val), large.Insert(key, val); r1 != r2 {
						t.Fatalf("op %d: Insert(%d) = %v vs %v", i, key, r1, r2)
					}
				default:
					if r1, r2 := small.Delete(key), large.Delete(key); r1 != r2 {
						t.Fatalf("op %d: Delete(%d) = %v vs %v", i, key, r1, r2)
					}
				}
			}
			if small.Len() != large.Len() {
				t.Fatalf("final Len: %d vs %d", small.Len(), large.Len())
			}
		})
	}
}
