package cbtree

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btreeperf/internal/lock"
	"btreeperf/internal/metrics"
)

// TestStatsConcurrentWithMutators exercises Stats, Len, and Height while
// mutators run, for every algorithm. Run under -race (the CI race matrix
// includes this package): any unsynchronized counter read shows up here.
func TestStatsConcurrentWithMutators(t *testing.T) {
	for _, alg := range []Algorithm{LockCoupling, Optimistic, LinkType, OLC} {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(8, alg)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 3000; i++ {
						k := int64(w*3000 + i)
						tr.Insert(k, uint64(k))
						if i%3 == 0 {
							tr.Delete(k)
						}
						tr.Search(k)
					}
				}(w)
			}
			readerDone := make(chan struct{})
			go func() {
				defer close(readerDone)
				var last Stats
				for !stop.Load() {
					s := tr.Stats()
					if s.Splits < last.Splits || s.Restarts < last.Restarts || s.Crossings < last.Crossings {
						t.Error("counters went backwards")
						return
					}
					last = s
					_ = tr.Len()
					_ = tr.Height()
				}
			}()
			wg.Wait()
			stop.Store(true)
			<-readerDone
			if s := tr.Stats(); alg != LinkType && alg != OLC && s.Crossings != 0 {
				t.Errorf("%v recorded %d link crossings", alg, s.Crossings)
			}
		})
	}
}

// TestInstrumentCoversAllLevels builds a multi-level tree, instruments it,
// runs concurrent traffic, and checks that telemetry appears at every
// level including the root, with balanced acquire/release counts.
func TestInstrumentCoversAllLevels(t *testing.T) {
	for _, alg := range []Algorithm{LockCoupling, Optimistic, LinkType} {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(4, alg)
			for i := int64(0); i < 200; i++ {
				tr.Insert(i, uint64(i))
			}
			probe := metrics.NewTreeProbe()
			tr.Instrument(func(level int) lock.Probe { return probe.Level(level) })

			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 1000; i++ {
						k := int64(200 + w*1000 + i)
						tr.Insert(k, uint64(k))
						tr.Search(k)
					}
				}(w)
			}
			wg.Wait()

			snap := probe.Snapshot()
			height := tr.Height()
			if len(snap.Levels) < height {
				t.Fatalf("telemetry at %d levels, tree height %d", len(snap.Levels), height)
			}
			for _, ls := range snap.Levels {
				if ls.AcquiredR+ls.AcquiredW == 0 {
					t.Errorf("level %d saw no acquisitions", ls.Level)
				}
				if got, want := ls.ReleasedR+ls.ReleasedW, ls.AcquiredR+ls.AcquiredW; got != want {
					t.Errorf("level %d releases %d != acquisitions %d", ls.Level, got, want)
				}
			}
		})
	}
}

// TestOLCRestartTelemetry drives concurrent latch-free readers against
// writers on an OLC tree and checks that validation restarts and locked
// fallbacks observed by the tree are mirrored, count for count, in the
// per-level probes (metrics.LevelStats implements lock.VersionProbe).
func TestOLCRestartTelemetry(t *testing.T) {
	tr := New(4, OLC)
	for i := int64(0); i < 500; i++ {
		tr.Insert(i*2, uint64(i))
	}
	probe := metrics.NewTreeProbe()
	tr.Instrument(func(level int) lock.Probe { return probe.Level(level) })

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // writers churn the keyspace, forcing conflicts
			defer wg.Done()
			k := int64(w)
			for !stop.Load() {
				tr.Insert(k*2+1, uint64(k))
				tr.Delete(k*2 + 1)
				k = (k + 2) % 500
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			k := int64(r)
			for !stop.Load() {
				tr.Search(k * 2)
				tr.Range(k*2, k*2+20, func(int64, uint64) bool { return true })
				k = (k + 1) % 500
			}
		}(r)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tr.Stats().ReadRestarts == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	st := tr.Stats()
	snap := probe.Snapshot()
	var probeRestarts, probeFallbacks int64
	for _, ls := range snap.Levels {
		probeRestarts += ls.ReadRestarts
		probeFallbacks += ls.ReadFallbacks
	}
	if probeRestarts != st.ReadRestarts {
		t.Errorf("probe restarts %d != tree restarts %d", probeRestarts, st.ReadRestarts)
	}
	if probeFallbacks != st.ReadFallbacks {
		t.Errorf("probe fallbacks %d != tree fallbacks %d", probeFallbacks, st.ReadFallbacks)
	}
	if st.ReadRestarts == 0 {
		t.Log("no restart observed this run; telemetry equality still checked")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
