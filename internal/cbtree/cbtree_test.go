package cbtree

import (
	"fmt"
	"sync"
	"testing"

	"btreeperf/internal/xrand"
)

var algorithms = []Algorithm{LockCoupling, Optimistic, LinkType, OLC}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		LockCoupling: "lock-coupling",
		Optimistic:   "optimistic",
		LinkType:     "link-type",
		OLC:          "olc",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Error("unknown algorithm string")
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(2, LinkType) },
		func() { New(13, Algorithm(9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSequentialBasics(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(4, alg)
			const n = 2000
			for i := int64(0); i < n; i++ {
				if !tr.Insert(i, uint64(i*3)) {
					t.Fatalf("Insert(%d) duplicate", i)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < n; i++ {
				v, ok := tr.Search(i)
				if !ok || v != uint64(i*3) {
					t.Fatalf("Search(%d) = %d,%v", i, v, ok)
				}
			}
			if _, ok := tr.Search(n); ok {
				t.Fatal("phantom key")
			}
			// Replace.
			if tr.Insert(5, 99) {
				t.Fatal("replace reported fresh")
			}
			if v, _ := tr.Search(5); v != 99 {
				t.Fatal("replace did not stick")
			}
			// Delete half.
			for i := int64(0); i < n; i += 2 {
				if !tr.Delete(i) {
					t.Fatalf("Delete(%d)", i)
				}
			}
			if tr.Delete(0) {
				t.Fatal("double delete")
			}
			if tr.Len() != n/2 {
				t.Fatalf("Len = %d", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialRandomAgainstModel(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(7, alg)
			model := map[int64]uint64{}
			src := xrand.New(uint64(alg) + 100)
			for i := 0; i < 20000; i++ {
				k := src.Int63n(2000)
				switch src.IntN(3) {
				case 0:
					v := src.Uint64()
					_, existed := model[k]
					if tr.Insert(k, v) == existed {
						t.Fatalf("Insert(%d) freshness mismatch", k)
					}
					model[k] = v
				case 1:
					_, existed := model[k]
					if tr.Delete(k) != existed {
						t.Fatalf("Delete(%d) mismatch", k)
					}
					delete(model, k)
				case 2:
					want, existed := model[k]
					got, ok := tr.Search(k)
					if ok != existed || (ok && got != want) {
						t.Fatalf("Search(%d) mismatch", k)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != len(model) {
				t.Fatalf("Len %d vs model %d", tr.Len(), len(model))
			}
		})
	}
}

func TestRangeScan(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(5, alg)
			for i := int64(0); i < 500; i += 5 {
				tr.Insert(i, uint64(i))
			}
			var got []int64
			tr.Range(100, 130, func(k int64, v uint64) bool {
				got = append(got, k)
				return true
			})
			want := []int64{100, 105, 110, 115, 120, 125, 130}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Range = %v, want %v", got, want)
			}
			// Early stop.
			count := 0
			tr.Range(0, 499, func(int64, uint64) bool { count++; return count < 3 })
			if count != 3 {
				t.Fatalf("early stop visited %d", count)
			}
		})
	}
}

// TestConcurrentOwnedKeys is the strongest concurrent correctness check:
// each goroutine owns a disjoint key slice and verifies its own keys
// exactly while all goroutines contend on the same nodes.
func TestConcurrentOwnedKeys(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(8, alg)
			const workers = 8
			const opsPer = 6000
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					src := xrand.New(uint64(w)*7919 + uint64(alg))
					mine := map[int64]uint64{}
					for i := 0; i < opsPer; i++ {
						// Keys owned by worker w: k ≡ w (mod workers).
						k := src.Int63n(4000)*workers + int64(w)
						switch src.IntN(3) {
						case 0:
							v := src.Uint64()
							_, existed := mine[k]
							if tr.Insert(k, v) == existed {
								errs <- fmt.Errorf("worker %d: Insert(%d) freshness", w, k)
								return
							}
							mine[k] = v
						case 1:
							_, existed := mine[k]
							if tr.Delete(k) != existed {
								errs <- fmt.Errorf("worker %d: Delete(%d)", w, k)
								return
							}
							delete(mine, k)
						case 2:
							want, existed := mine[k]
							got, ok := tr.Search(k)
							if ok != existed || (ok && got != want) {
								errs <- fmt.Errorf("worker %d: Search(%d) = %d,%v want %d,%v",
									w, k, got, ok, want, existed)
								return
							}
						}
					}
					// Final sweep: every owned key must be exactly right.
					for k, want := range mine {
						got, ok := tr.Search(k)
						if !ok || got != want {
							errs <- fmt.Errorf("worker %d: final Search(%d) = %d,%v want %d",
								w, k, got, ok, want)
							return
						}
					}
					errs <- nil
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentDisjointInsertsAllPresent(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(5, alg)
			const workers = 10
			const per = 3000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := int64(i*workers + w)
						tr.Insert(k, uint64(k))
					}
				}(w)
			}
			wg.Wait()
			if tr.Len() != workers*per {
				t.Fatalf("Len = %d, want %d", tr.Len(), workers*per)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for k := int64(0); k < workers*per; k++ {
				if v, ok := tr.Search(k); !ok || v != uint64(k) {
					t.Fatalf("missing key %d", k)
				}
			}
		})
	}
}

func TestConcurrentRangeDuringInserts(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(6, alg)
			// Pre-populate the even keys; they never change.
			for i := int64(0); i < 4000; i += 2 {
				tr.Insert(i, uint64(i))
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // churn odd keys
				defer wg.Done()
				src := xrand.New(3)
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := src.Int63n(2000)*2 + 1
					if src.Bernoulli(0.5) {
						tr.Insert(k, uint64(k))
					} else {
						tr.Delete(k)
					}
				}
			}()
			// Scans must always see every even key exactly once, in order.
			for scan := 0; scan < 50; scan++ {
				last := int64(-1)
				evens := 0
				tr.Range(0, 3999, func(k int64, v uint64) bool {
					if k <= last {
						t.Errorf("scan out of order: %d after %d", k, last)
					}
					last = k
					if k%2 == 0 {
						evens++
						if v != uint64(k) {
							t.Errorf("even key %d value %d", k, v)
						}
					}
					return true
				})
				if evens != 2000 {
					t.Errorf("scan %d saw %d even keys, want 2000", scan, evens)
				}
			}
			close(stop)
			wg.Wait()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLinkCrossingsObserved(t *testing.T) {
	// Under heavy concurrent inserts the LinkType tree should record some
	// right-link crossings (splits racing with descents), while remaining
	// correct; the other algorithms never cross.
	tr := New(4, LinkType)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.New(uint64(w) + 55)
			for i := 0; i < 20000; i++ {
				tr.Insert(src.Int63n(1<<40), 1)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Crossings are expected but not guaranteed on every run; just log.
	t.Logf("crossings: %d splits: %d", tr.Stats().Crossings, tr.Stats().Splits)
}

func TestOptimisticRestartsCounted(t *testing.T) {
	tr := New(4, Optimistic)
	src := xrand.New(9)
	for i := 0; i < 20000; i++ {
		tr.Insert(src.Int63n(1<<40), 1)
	}
	if tr.Stats().Restarts == 0 {
		t.Fatal("small nodes with many inserts should trigger optimistic restarts")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactReclaimsEmptyLeaves(t *testing.T) {
	tr := New(4, LinkType)
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < 1000; i++ {
		if i%10 != 0 {
			tr.Delete(i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	before := tr.Height()
	tr.Compact()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len after compact = %d", tr.Len())
	}
	if tr.Height() > before {
		t.Fatalf("compact grew the tree: %d -> %d", before, tr.Height())
	}
	for i := int64(0); i < 1000; i += 10 {
		if _, ok := tr.Search(i); !ok {
			t.Fatalf("key %d lost in compact", i)
		}
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New(3, LinkType)
	if tr.Height() != 1 {
		t.Fatal("empty height")
	}
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, 0)
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d", tr.Height())
	}
}
