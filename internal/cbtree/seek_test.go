package cbtree

import (
	"sync"
	"testing"

	"btreeperf/internal/xrand"
)

func TestSearchGE(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			tr := New(5, alg)
			for i := int64(0); i < 100; i++ {
				tr.Insert(i*10, uint64(i))
			}
			cases := []struct {
				in, want int64
				ok       bool
			}{
				{-5, 0, true},
				{0, 0, true},
				{1, 10, true},
				{995, 0, false},
				{990, 990, true},
				{445, 450, true},
			}
			for _, c := range cases {
				k, _, ok := tr.SearchGE(c.in)
				if ok != c.ok || (ok && k != c.want) {
					t.Errorf("SearchGE(%d) = %d,%v want %d,%v", c.in, k, ok, c.want, c.ok)
				}
			}
		})
	}
}

func TestSearchGEEmptyTree(t *testing.T) {
	tr := New(5, LinkType)
	if _, _, ok := tr.SearchGE(0); ok {
		t.Fatal("SearchGE on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
}

func TestMinMax(t *testing.T) {
	for _, alg := range algorithms {
		tr := New(4, alg)
		src := xrand.New(5)
		lo, hi := int64(1<<62), int64(-1<<62)
		for i := 0; i < 3000; i++ {
			k := src.Int63n(1 << 30)
			tr.Insert(k, uint64(k))
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if k, _, ok := tr.Min(); !ok || k != lo {
			t.Fatalf("%v: Min = %d,%v want %d", alg, k, ok, lo)
		}
		if k, _, ok := tr.Max(); !ok || k != hi {
			t.Fatalf("%v: Max = %d,%v want %d", alg, k, ok, hi)
		}
	}
}

func TestMinMaxWithEmptiedLeaves(t *testing.T) {
	// Delete the extremes so the edge leaves empty out (lazily retained);
	// Min/Max must skip them.
	tr := New(4, LinkType)
	for i := int64(0); i < 200; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < 50; i++ {
		tr.Delete(i)
	}
	for i := int64(150); i < 200; i++ {
		tr.Delete(i)
	}
	if k, _, ok := tr.Min(); !ok || k != 50 {
		t.Fatalf("Min = %d,%v want 50", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 149 {
		t.Fatalf("Max = %d,%v want 149", k, ok)
	}
}

func TestSeekUnderConcurrency(t *testing.T) {
	tr := New(8, LinkType)
	// Stable even keys.
	for i := int64(0); i < 2000; i += 2 {
		tr.Insert(i, uint64(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := xrand.New(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := src.Int63n(1000)*2 + 1
			if src.Bernoulli(0.5) {
				tr.Insert(k, 1)
			} else {
				tr.Delete(k)
			}
		}
	}()
	src := xrand.New(2)
	for i := 0; i < 20000; i++ {
		probe := src.Int63n(2000)
		k, _, ok := tr.SearchGE(probe)
		if !ok && probe <= 1998 {
			t.Fatalf("SearchGE(%d) found nothing", probe)
		}
		if ok && k < probe {
			t.Fatalf("SearchGE(%d) = %d below probe", probe, k)
		}
		// The next even key at or above probe must never be skipped.
		evenWant := (probe + 1) / 2 * 2
		if ok && evenWant < 2000 && k > evenWant {
			t.Fatalf("SearchGE(%d) = %d skipped stable even key %d", probe, k, evenWant)
		}
	}
	close(stop)
	wg.Wait()
}
