// Package cbtree is a goroutine-safe concurrent B⁺-tree implementing the
// three concurrency-control algorithms analyzed by Johnson & Shasha
// (PODS 1990) on real sync primitives, plus the framework's natural
// fourth algorithm:
//
//   - LockCoupling — Bayer/Schkolnick naive lock coupling: updates descend
//     with exclusive locks, releasing ancestors whenever the child cannot
//     split; searches descend with shared-lock coupling.
//   - Optimistic — optimistic descent: updates descend with shared locks
//     and lock only the leaf exclusively, restarting with the
//     lock-coupling protocol when the leaf might split.
//   - LinkType — Lehman–Yao: right links and high keys let every operation
//     hold at most one lock at a time; splits are half-splits repaired
//     upward.
//   - OLC — optimistic lock-coupling: writers follow the Link-type
//     protocol under seqlock-style versioned W locks, readers descend
//     latch-free against immutable node snapshots validated by version,
//     restarting on conflict with a bounded-retry fallback to the locked
//     path (see olc.go).
//
// All algorithms run against the same node layout, so they are
// directly comparable (see the benchmarks at the repository root, the
// modern analogue of the paper's Figure 12).
//
// Restructuring is merge-at-empty in the lazy sense the paper adopts for
// the Link-type algorithm: nodes emptied by deletes remain in place and
// are reclaimed only by Compact (which requires quiescence). With more
// inserts than deletes — the regime the paper's analysis covers — empty
// nodes are vanishingly rare ([10]).
package cbtree

import (
	"fmt"
	"sync/atomic"

	"btreeperf/internal/lock"
)

// Algorithm selects the concurrency-control protocol.
type Algorithm int

const (
	// LockCoupling is the paper's Naive Lock-coupling algorithm.
	LockCoupling Algorithm = iota
	// Optimistic is the paper's Optimistic Descent algorithm.
	Optimistic
	// LinkType is the paper's Link-type (Lehman–Yao) algorithm.
	LinkType
	// OLC is optimistic lock-coupling: version-validated latch-free
	// reads over Link-type writes.
	OLC
)

func (a Algorithm) String() string {
	switch a {
	case LockCoupling:
		return "lock-coupling"
	case Optimistic:
		return "optimistic"
	case LinkType:
		return "link-type"
	case OLC:
		return "olc"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Stats counts structural and protocol events since the tree was created.
type Stats struct {
	Splits        int64 // node splits
	Restarts      int64 // Optimistic second descents
	Crossings     int64 // LinkType/OLC right-link follows
	ReadRestarts  int64 // OLC failed snapshot validations
	ReadFallbacks int64 // OLC descents that fell back to locking
}

// node is a B⁺-tree node guarded by its own FCFS reader/writer lock
// (versioned, for OLC's latch-free readers). All fields after mu are
// protected by mu, except that the pointer identity of a node never
// changes and nodes are never freed (the GC reclaims unreachable ones),
// so holding a stale pointer is always safe — the Link-type protocol
// then recovers via right links.
type node struct {
	mu       lock.VersionLock
	level    int
	keys     []int64
	vals     []uint64
	children []*node
	right    *node
	high     int64
	hasHigh  bool

	// snap is the node's immutable published image, maintained only in
	// OLC mode: every mutating W critical section rebuilds it before
	// UnlockV, so whenever the version word is even (no writer) the
	// snapshot equals the live fields. Latch-free readers load it
	// through the ReadBegin/Validate protocol and never touch the
	// mutable slices — that is what makes OLC reads race-free in the
	// Go memory model, with the version word supplying recency.
	snap atomic.Pointer[nodeSnap]
}

// nodeSnap is one immutable image of a node. Fields mirror node's.
type nodeSnap struct {
	keys     []int64
	vals     []uint64
	children []*node
	right    *node
	high     int64
	hasHigh  bool
}

// publish rebuilds n's immutable snapshot from its live fields. Caller
// must hold n.mu exclusively, or own n exclusively because it is not yet
// reachable (construction, bulk load).
func (n *node) publish() {
	s := &nodeSnap{
		right:   n.right,
		high:    n.high,
		hasHigh: n.hasHigh,
	}
	if len(n.keys) > 0 {
		s.keys = append(make([]int64, 0, len(n.keys)), n.keys...)
	}
	if len(n.vals) > 0 {
		s.vals = append(make([]uint64, 0, len(n.vals)), n.vals...)
	}
	if len(n.children) > 0 {
		s.children = append(make([]*node, 0, len(n.children)), n.children...)
	}
	n.snap.Store(s)
}

// covers is the snapshot form of node.covers.
func (s *nodeSnap) covers(key int64) bool { return !s.hasHigh || key < s.high }

func (n *node) isLeaf() bool { return n.level == 1 }

// items is the paper's occupancy: keys for leaves, children for internal
// nodes. Caller must hold n.mu.
func (n *node) items() int {
	if n.isLeaf() {
		return len(n.keys)
	}
	return len(n.children)
}

// covers reports whether key belongs at or below this node (Link-type
// high-key test). Caller must hold n.mu.
func (n *node) covers(key int64) bool { return !n.hasHigh || key < n.high }

// linearScanMax is the node occupancy below which key search scans
// sequentially: for a handful of keys a branch-predictable linear scan
// beats binary search's data-dependent probes. From linearScanMax up —
// the serving default capacity 64 included — search is binary. The two
// implementations are cross-checked against each other in search_test.go.
const linearScanMax = 16

// childIndex returns the child slot routing key. Caller must hold n.mu.
func (n *node) childIndex(key int64) int {
	if len(n.keys) < linearScanMax {
		return routeLinear(n.keys, key)
	}
	return routeBinary(n.keys, key)
}

// childIndex returns the child slot routing key within a snapshot.
func (s *nodeSnap) childIndex(key int64) int {
	if len(s.keys) < linearScanMax {
		return routeLinear(s.keys, key)
	}
	return routeBinary(s.keys, key)
}

// keyIndex locates key in a leaf snapshot (see node.keyIndex).
func (s *nodeSnap) keyIndex(key int64) (int, bool) {
	var lo int
	if len(s.keys) < linearScanMax {
		lo = lowerBoundLinear(s.keys, key)
	} else {
		lo = lowerBoundBinary(s.keys, key)
	}
	return lo, lo < len(s.keys) && s.keys[lo] == key
}

// keyIndex locates key in a leaf, returning its slot (or the slot it
// would occupy) and whether it is present. Caller must hold n.mu.
func (n *node) keyIndex(key int64) (int, bool) {
	var lo int
	if len(n.keys) < linearScanMax {
		lo = lowerBoundLinear(n.keys, key)
	} else {
		lo = lowerBoundBinary(n.keys, key)
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// routeLinear returns the number of separators ≤ key (the child slot
// routing key) by sequential scan.
func routeLinear(keys []int64, key int64) int {
	for i, k := range keys {
		if key < k {
			return i
		}
	}
	return len(keys)
}

// routeBinary is routeLinear by binary search.
func routeBinary(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// lowerBoundLinear returns the first slot whose key is ≥ key by
// sequential scan.
func lowerBoundLinear(keys []int64, key int64) int {
	for i, k := range keys {
		if k >= key {
			return i
		}
	}
	return len(keys)
}

// lowerBoundBinary is lowerBoundLinear by binary search.
func lowerBoundBinary(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Tree is a concurrent B⁺-tree. Create one with New. All methods are safe
// for concurrent use by any number of goroutines.
type Tree struct {
	alg  Algorithm
	cap  int
	root atomic.Pointer[node]
	size atomic.Int64

	splits        atomic.Int64
	restarts      atomic.Int64
	crossings     atomic.Int64
	readRestarts  atomic.Int64 // OLC failed snapshot validations
	readFallbacks atomic.Int64 // OLC descents that fell back to locking

	// probe, when set (see Instrument), supplies the telemetry sink every
	// newly created node's lock reports into, keyed by tree level. Written
	// only while quiescent, read by concurrent splitters.
	probe func(level int) lock.Probe
}

// New creates an empty tree whose nodes hold at most cap items (cap >= 3)
// under the given concurrency-control algorithm.
func New(cap int, alg Algorithm) *Tree {
	if cap < 3 {
		panic(fmt.Sprintf("cbtree: capacity %d too small (need >= 3)", cap))
	}
	if alg != LockCoupling && alg != Optimistic && alg != LinkType && alg != OLC {
		panic(fmt.Sprintf("cbtree: unknown algorithm %v", alg))
	}
	t := &Tree{alg: alg, cap: cap}
	r := &node{level: 1}
	if alg == OLC {
		r.publish()
	}
	t.root.Store(r)
	return t
}

// Cap returns the node capacity.
func (t *Tree) Cap() int { return t.cap }

// Algorithm returns the concurrency-control protocol in use.
func (t *Tree) Algorithm() Algorithm { return t.alg }

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Stats returns the event counters.
func (t *Tree) Stats() Stats {
	return Stats{
		Splits:        t.splits.Load(),
		Restarts:      t.restarts.Load(),
		Crossings:     t.crossings.Load(),
		ReadRestarts:  t.readRestarts.Load(),
		ReadFallbacks: t.readFallbacks.Load(),
	}
}

// Height returns the current number of levels. It is exact when quiescent
// and approximate under concurrent root splits.
func (t *Tree) Height() int { return t.root.Load().level }

// Instrument attaches per-level lock telemetry: sinkFor(level) returns the
// probe that every node lock at that level reports into (level 1 is the
// leaf level, the root has level == Height). Existing nodes are wired
// immediately and nodes created by later splits inherit the sink, so the
// whole tree stays covered as it grows.
//
// Instrument requires quiescence: no operations may be in flight while it
// runs (call it right after building the tree, before serving). Passing
// nil detaches future nodes but leaves existing nodes wired.
func (t *Tree) Instrument(sinkFor func(level int) lock.Probe) {
	t.probe = sinkFor
	if sinkFor == nil {
		return
	}
	t.instrumentAll(t.root.Load(), sinkFor)
}

// instrumentAll walks the quiescent tree attaching sinks. Every node is a
// child of some parent (right-linked siblings included, once split repair
// completes), so child recursion reaches all of them.
func (t *Tree) instrumentAll(n *node, sinkFor func(level int) lock.Probe) {
	n.mu.SetProbe(sinkFor(n.level))
	for _, c := range n.children {
		t.instrumentAll(c, sinkFor)
	}
}

// insertSafe reports whether an insert cannot split n. Caller holds n.mu.
func (t *Tree) insertSafe(n *node) bool { return n.items() < t.cap }

// lockRoot locks the current root with the class chosen by classOf,
// retrying if the root pointer moved while we waited.
func (t *Tree) lockRoot(classOf func(*node) bool) *node {
	for {
		r := t.root.Load()
		write := classOf(r)
		if write {
			r.mu.Lock()
		} else {
			r.mu.RLock()
		}
		if t.root.Load() == r {
			return r
		}
		if write {
			r.mu.Unlock()
		} else {
			r.mu.RUnlock()
		}
	}
}

func alwaysRead(*node) bool    { return false }
func alwaysWrite(*node) bool   { return true }
func writeIfLeaf(n *node) bool { return n.isLeaf() }

// split moves the upper half of n into a new right sibling, maintaining
// right links and high keys (a Lehman–Yao half-split). Caller holds n.mu
// exclusively. Returns the sibling and separator.
func (t *Tree) split(n *node) (*node, int64) {
	t.splits.Add(1)
	sib := &node{level: n.level}
	if t.probe != nil {
		sib.mu.SetProbe(t.probe(sib.level))
	}
	var sep int64
	if n.isLeaf() {
		m := (len(n.keys) + 1) / 2
		sib.keys = append(sib.keys, n.keys[m:]...)
		sib.vals = append(sib.vals, n.vals[m:]...)
		n.keys = n.keys[:m:m]
		n.vals = n.vals[:m:m]
		sep = sib.keys[0]
	} else {
		m := (len(n.children) + 1) / 2
		sep = n.keys[m-1]
		sib.children = append(sib.children, n.children[m:]...)
		sib.keys = append(sib.keys, n.keys[m:]...)
		n.children = n.children[:m:m]
		n.keys = n.keys[: m-1 : m-1]
	}
	sib.high, sib.hasHigh = n.high, n.hasHigh
	sib.right = n.right
	n.right = sib
	n.high, n.hasHigh = sep, true
	return sib, sep
}

// addChild installs a (separator, child) pair. Caller holds n.mu
// exclusively and n must cover sep.
func (n *node) addChild(sep int64, child *node) {
	i := n.childIndex(sep)
	n.keys = insertAt(n.keys, i, sep)
	n.children = insertAt(n.children, i+1, child)
}

// growRoot replaces the root after splitting it. Caller holds old.mu
// exclusively and has verified old is the current root.
func (t *Tree) growRoot(old *node, sep int64, sib *node) {
	r := &node{
		level:    old.level + 1,
		keys:     []int64{sep},
		children: []*node{old, sib},
	}
	if t.probe != nil {
		r.mu.SetProbe(t.probe(r.level))
	}
	if t.alg == OLC {
		// Latch-free readers may reach the new root the instant the CAS
		// lands; its snapshot must already exist.
		r.publish()
	}
	if !t.root.CompareAndSwap(old, r) {
		panic("cbtree: concurrent root replacement")
	}
}

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
