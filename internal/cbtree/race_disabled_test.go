//go:build !race

package cbtree

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
