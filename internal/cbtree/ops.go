package cbtree

// Search returns the value stored under key.
func (t *Tree) Search(key int64) (uint64, bool) {
	switch t.alg {
	case LinkType:
		return t.linkSearch(key)
	case OLC:
		return t.olcSearch(key)
	default:
		return t.coupledSearch(key)
	}
}

// Insert stores key→val. A fresh insertion reports true; replacing an
// existing key's value reports false.
func (t *Tree) Insert(key int64, val uint64) bool {
	switch t.alg {
	case LockCoupling:
		return t.lcInsert(key, val)
	case Optimistic:
		return t.optInsert(key, val)
	case OLC:
		return t.olcInsert(key, val)
	default:
		return t.linkInsert(key, val)
	}
}

// Delete removes key, reporting whether it was present. Emptied nodes are
// left in place (lazy merge-at-empty); see Compact.
func (t *Tree) Delete(key int64) bool {
	switch t.alg {
	case LockCoupling:
		return t.lcDelete(key)
	case Optimistic:
		return t.optDelete(key)
	case OLC:
		return t.olcDelete(key)
	default:
		return t.linkDelete(key)
	}
}

// ---------------------------------------------------------------------------
// Lock-coupled operations (LockCoupling searches/updates, Optimistic
// searches and redo descents).

// coupledSearch descends with shared-lock coupling.
func (t *Tree) coupledSearch(key int64) (uint64, bool) {
	n := t.lockRoot(alwaysRead)
	for !n.isLeaf() {
		child := n.children[n.childIndex(key)]
		child.mu.RLock()
		n.mu.RUnlock()
		n = child
	}
	i, ok := n.keyIndex(key)
	var v uint64
	if ok {
		v = n.vals[i]
	}
	n.mu.RUnlock()
	return v, ok
}

// lcInsert is the Naive Lock-coupling insert: exclusive locks down the
// tree, ancestors released whenever the child cannot split.
func (t *Tree) lcInsert(key int64, val uint64) bool {
	n := t.lockRoot(alwaysWrite)
	chain := []*node{n}
	for !n.isLeaf() {
		child := n.children[n.childIndex(key)]
		child.mu.Lock()
		if t.insertSafe(child) {
			unlockAll(chain)
			chain = chain[:0]
		}
		chain = append(chain, child)
		n = child
	}
	if i, ok := n.keyIndex(key); ok {
		n.vals[i] = val
		unlockAll(chain)
		return false
	}
	i, _ := n.keyIndex(key)
	n.keys = insertAt(n.keys, i, key)
	n.vals = insertAt(n.vals, i, val)
	t.size.Add(1)

	// Split upward through the retained chain; the topmost retained node
	// is either safe (absorbs the split) or the root (grows the tree).
	idx := len(chain) - 1
	for n.items() > t.cap {
		sib, sep := t.split(n)
		if idx == 0 {
			t.growRoot(n, sep, sib)
			break
		}
		idx--
		n = chain[idx]
		n.addChild(sep, sib)
	}
	unlockAll(chain)
	return true
}

// lcDelete descends with exclusive-lock coupling. Deletes never
// restructure under lazy merge-at-empty, so every child is delete-safe and
// the parent lock is released immediately.
func (t *Tree) lcDelete(key int64) bool {
	n := t.lockRoot(alwaysWrite)
	for !n.isLeaf() {
		child := n.children[n.childIndex(key)]
		child.mu.Lock()
		n.mu.Unlock()
		n = child
	}
	ok := t.leafRemove(n, key)
	n.mu.Unlock()
	return ok
}

// leafRemove deletes key from a leaf. Caller holds n.mu exclusively.
func (t *Tree) leafRemove(n *node, key int64) bool {
	i, ok := n.keyIndex(key)
	if !ok {
		return false
	}
	n.keys = removeAt(n.keys, i)
	n.vals = removeAt(n.vals, i)
	t.size.Add(-1)
	return true
}

func unlockAll(chain []*node) {
	for _, n := range chain {
		n.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Optimistic Descent.

// optInsert descends optimistically (shared locks, exclusive only on the
// leaf); if the leaf might split it releases everything and redoes the
// descent with the lock-coupling protocol.
func (t *Tree) optInsert(key int64, val uint64) bool {
	n := t.lockRoot(writeIfLeaf)
	for !n.isLeaf() {
		child := n.children[n.childIndex(key)]
		if child.isLeaf() {
			child.mu.Lock()
		} else {
			child.mu.RLock()
		}
		n.mu.RUnlock()
		n = child
	}
	if !t.insertSafe(n) {
		n.mu.Unlock()
		t.restarts.Add(1)
		return t.lcInsert(key, val)
	}
	fresh := true
	if i, ok := n.keyIndex(key); ok {
		n.vals[i] = val
		fresh = false
	} else {
		i, _ := n.keyIndex(key)
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertAt(n.vals, i, val)
		t.size.Add(1)
	}
	n.mu.Unlock()
	return fresh
}

// optDelete's first descent always succeeds: deletes never restructure
// under lazy merge-at-empty.
func (t *Tree) optDelete(key int64) bool {
	n := t.lockRoot(writeIfLeaf)
	for !n.isLeaf() {
		child := n.children[n.childIndex(key)]
		if child.isLeaf() {
			child.mu.Lock()
		} else {
			child.mu.RLock()
		}
		n.mu.RUnlock()
		n = child
	}
	ok := t.leafRemove(n, key)
	n.mu.Unlock()
	return ok
}

// ---------------------------------------------------------------------------
// Link-type (Lehman–Yao).

// moveRightR follows right links while key lies beyond the node's high
// key, holding at most one shared lock at a time. n must be R-locked;
// the returned node is R-locked.
func (t *Tree) moveRightR(n *node, key int64) *node {
	for !n.covers(key) {
		r := n.right
		n.mu.RUnlock()
		t.crossings.Add(1)
		r.mu.RLock()
		n = r
	}
	return n
}

// moveRightW is moveRightR with exclusive locks.
func (t *Tree) moveRightW(n *node, key int64) *node {
	for !n.covers(key) {
		r := n.right
		n.mu.Unlock()
		t.crossings.Add(1)
		r.mu.Lock()
		n = r
	}
	return n
}

// linkDescend returns the (unlocked) leaf candidate for key and the
// ancestor stack for split repair. Reading level without the lock is safe:
// it is immutable.
func (t *Tree) linkDescend(key int64, wantStack bool) (*node, []*node) {
	var stack []*node
	n := t.root.Load()
	for n.level > 1 {
		n.mu.RLock()
		n = t.moveRightR(n, key)
		child := n.children[n.childIndex(key)]
		if wantStack {
			stack = append(stack, n)
		}
		n.mu.RUnlock()
		n = child
	}
	return n, stack
}

func (t *Tree) linkSearch(key int64) (uint64, bool) {
	n, _ := t.linkDescend(key, false)
	n.mu.RLock()
	n = t.moveRightR(n, key)
	i, ok := n.keyIndex(key)
	var v uint64
	if ok {
		v = n.vals[i]
	}
	n.mu.RUnlock()
	return v, ok
}

func (t *Tree) linkInsert(key int64, val uint64) bool {
	n, stack := t.linkDescend(key, true)
	n.mu.Lock()
	n = t.moveRightW(n, key)
	if i, ok := n.keyIndex(key); ok {
		n.vals[i] = val
		n.mu.Unlock()
		return false
	}
	i, _ := n.keyIndex(key)
	n.keys = insertAt(n.keys, i, key)
	n.vals = insertAt(n.vals, i, val)
	t.size.Add(1)

	// Half-split repair: split under the node's own lock, release, then
	// lock the parent to install the new pointer.
	for n.items() > t.cap {
		sib, sep := t.split(n)
		if len(stack) == 0 && t.root.Load() == n {
			t.growRoot(n, sep, sib)
			break
		}
		level := n.level + 1
		n.mu.Unlock()
		var parent *node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			// The root grew since our descent; find the parent level.
			parent = t.linkLocate(level, sep)
		}
		parent.mu.Lock()
		parent = t.moveRightW(parent, sep)
		parent.addChild(sep, sib)
		n = parent
	}
	n.mu.Unlock()
	return true
}

func (t *Tree) linkDelete(key int64) bool {
	n, _ := t.linkDescend(key, false)
	n.mu.Lock()
	n = t.moveRightW(n, key)
	ok := t.leafRemove(n, key)
	n.mu.Unlock()
	return ok
}

// linkLocate descends from the current root to the node at the given
// level responsible for key.
func (t *Tree) linkLocate(level int, key int64) *node {
	n := t.root.Load()
	for n.level > level {
		n.mu.RLock()
		n = t.moveRightR(n, key)
		child := n.children[n.childIndex(key)]
		n.mu.RUnlock()
		n = child
	}
	return n
}

// ---------------------------------------------------------------------------
// Range scans.

// Range calls fn for each key in [lo, hi] in ascending order, stopping if
// fn returns false. It descends to the leaf covering lo, then walks the
// leaf chain with shared-lock coupling; concurrent splits are neither
// missed nor double-visited.
func (t *Tree) Range(lo, hi int64, fn func(key int64, val uint64) bool) {
	if t.alg == OLC {
		t.olcRange(lo, hi, fn)
		return
	}
	var n *node
	if t.alg == LinkType {
		leaf, _ := t.linkDescend(lo, false)
		leaf.mu.RLock()
		n = t.moveRightR(leaf, lo)
	} else {
		n = t.lockRoot(alwaysRead)
		for !n.isLeaf() {
			child := n.children[n.childIndex(lo)]
			child.mu.RLock()
			n.mu.RUnlock()
			n = child
		}
	}
	for {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi || !fn(k, n.vals[i]) {
				n.mu.RUnlock()
				return
			}
		}
		next := n.right
		if next == nil {
			n.mu.RUnlock()
			return
		}
		next.mu.RLock()
		n.mu.RUnlock()
		n = next
	}
}

// ---------------------------------------------------------------------------
// Compact.

// Compact rebuilds the tree, reclaiming nodes emptied by deletes. It
// requires quiescence: the caller must guarantee no concurrent operations
// are in flight while Compact runs.
func (t *Tree) Compact() {
	fresh := New(t.cap, t.alg)
	if t.probe != nil {
		fresh.Instrument(t.probe)
	}
	t.Range(-1<<63, 1<<63-1, func(k int64, v uint64) bool {
		fresh.Insert(k, v)
		return true
	})
	t.root.Store(fresh.root.Load())
	t.size.Store(fresh.size.Load())
}
