package cbtree

import "fmt"

// BulkLoad builds a tree from sorted data bottom-up, far faster than
// repeated Insert and with a controlled fill factor. keys must be strictly
// increasing and parallel to vals; fill in (0, 1] sets the target node
// occupancy (the classical default 0.9 leaves headroom for later inserts;
// use 1.0 for read-only trees). The returned tree is immediately safe for
// concurrent use.
func BulkLoad(cap int, alg Algorithm, keys []int64, vals []uint64, fill float64) (*Tree, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("cbtree: %d keys but %d values", len(keys), len(vals))
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("cbtree: fill factor %v outside (0, 1]", fill)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return nil, fmt.Errorf("cbtree: keys not strictly increasing at index %d", i)
		}
	}
	t := New(cap, alg)
	if len(keys) == 0 {
		return t, nil
	}
	per := int(fill * float64(cap))
	if per < 2 {
		per = 2
	}

	// Build the leaf level.
	var level []built
	for off := 0; off < len(keys); off += per {
		end := off + per
		if end > len(keys) {
			end = len(keys)
		}
		n := &node{level: 1}
		n.keys = append(n.keys, keys[off:end]...)
		n.vals = append(n.vals, vals[off:end]...)
		level = append(level, built{n: n, min: keys[off]})
	}
	linkLevel(level)

	// Stack internal levels until one node remains.
	h := 1
	for len(level) > 1 {
		h++
		var parents []built
		for off := 0; off < len(level); off += per {
			end := off + per
			if end > len(level) {
				end = len(level)
			}
			n := &node{level: h}
			for j := off; j < end; j++ {
				n.children = append(n.children, level[j].n)
				if j > off {
					n.keys = append(n.keys, level[j].min)
				}
			}
			parents = append(parents, built{n: n, min: level[off].min})
		}
		linkLevel(parents)
		level = parents
	}

	if alg == OLC {
		publishAll(level[0].n)
	}
	t.root.Store(level[0].n)
	t.size.Store(int64(len(keys)))
	return t, nil
}

// publishAll publishes the snapshot of every node in a just-built
// subtree (OLC readers require one before a node becomes reachable).
func publishAll(n *node) {
	n.publish()
	for _, c := range n.children {
		publishAll(c)
	}
}

// built pairs a constructed node with the smallest key of its subtree.
type built struct {
	n   *node
	min int64
}

// linkLevel chains one built level left to right, setting right pointers
// and high keys (the next node's minimum).
func linkLevel(level []built) {
	for i := 0; i < len(level)-1; i++ {
		level[i].n.right = level[i+1].n
		level[i].n.high = level[i+1].min
		level[i].n.hasHigh = true
	}
}
