package cbtree

import (
	"fmt"
	"math"
)

// CheckInvariants validates the structure of the tree. It must only be
// called when the tree is quiescent (no concurrent operations in flight).
// Empty leaves are legal: deletes leave them in place until Compact.
func (t *Tree) CheckInvariants() error {
	root := t.root.Load()
	leftmost := make(map[int]*node)
	count := 0
	if err := t.checkNode(root, math.MinInt64, 0, true, leftmost, &count); err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("cbtree: size %d but %d keys in leaves", t.Len(), count)
	}
	for level := 1; level <= root.level; level++ {
		if err := checkChain(leftmost[level], level); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) checkNode(n *node, lo, hi int64, hiInf bool, leftmost map[int]*node, count *int) error {
	if _, seen := leftmost[n.level]; !seen {
		leftmost[n.level] = n
	}
	if n.items() > t.cap {
		return fmt.Errorf("cbtree: level %d node over capacity: %d > %d", n.level, n.items(), t.cap)
	}
	if t.alg == OLC {
		if err := n.checkSnap(); err != nil {
			return err
		}
	}
	if hiInf {
		if n.hasHigh {
			return fmt.Errorf("cbtree: rightmost level-%d node has finite high key", n.level)
		}
	} else if !n.hasHigh || n.high != hi {
		return fmt.Errorf("cbtree: level %d high key %v/%v, want %d", n.level, n.high, n.hasHigh, hi)
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return fmt.Errorf("cbtree: level %d keys out of order", n.level)
		}
	}
	if n.isLeaf() {
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("cbtree: leaf key/val mismatch")
		}
		for _, k := range n.keys {
			if k < lo || (!hiInf && k >= hi) {
				return fmt.Errorf("cbtree: leaf key %d outside [%d, %d)", k, lo, hi)
			}
		}
		*count += len(n.keys)
		return nil
	}
	if len(n.children) != len(n.keys)+1 || len(n.children) == 0 {
		return fmt.Errorf("cbtree: level %d has %d children, %d routers", n.level, len(n.children), len(n.keys))
	}
	for i, c := range n.children {
		if c.level != n.level-1 {
			return fmt.Errorf("cbtree: child level %d under level %d", c.level, n.level)
		}
		clo := lo
		if i > 0 {
			clo = n.keys[i-1]
		}
		chi, chiInf := hi, hiInf
		if i < len(n.keys) {
			chi, chiInf = n.keys[i], false
		}
		if err := t.checkNode(c, clo, chi, chiInf, leftmost, count); err != nil {
			return err
		}
	}
	return nil
}

// checkSnap verifies the OLC invariant that a quiescent node's published
// snapshot exists, is current, and the version word is even: every
// mutating critical section must republish before UnlockV.
func (n *node) checkSnap() error {
	if v := n.mu.Version(); v&1 != 0 {
		return fmt.Errorf("cbtree: level %d node version %d odd while quiescent", n.level, v)
	}
	s := n.snap.Load()
	if s == nil {
		return fmt.Errorf("cbtree: level %d node without a published snapshot", n.level)
	}
	if len(s.keys) != len(n.keys) || len(s.vals) != len(n.vals) ||
		len(s.children) != len(n.children) ||
		s.right != n.right || s.high != n.high || s.hasHigh != n.hasHigh {
		return fmt.Errorf("cbtree: level %d snapshot shape stale", n.level)
	}
	for i := range n.keys {
		if s.keys[i] != n.keys[i] {
			return fmt.Errorf("cbtree: level %d snapshot key %d stale", n.level, i)
		}
	}
	for i := range n.vals {
		if s.vals[i] != n.vals[i] {
			return fmt.Errorf("cbtree: level %d snapshot val %d stale", n.level, i)
		}
	}
	for i := range n.children {
		if s.children[i] != n.children[i] {
			return fmt.Errorf("cbtree: level %d snapshot child %d stale", n.level, i)
		}
	}
	return nil
}

func checkChain(first *node, level int) error {
	if first == nil {
		return fmt.Errorf("cbtree: level %d missing", level)
	}
	prev := (*node)(nil)
	for n := first; n != nil; n = n.right {
		if n.level != level {
			return fmt.Errorf("cbtree: level %d chain reached level %d", level, n.level)
		}
		if prev != nil {
			if !prev.hasHigh {
				return fmt.Errorf("cbtree: interior level-%d node with infinite high key", level)
			}
			if n.hasHigh && n.high <= prev.high {
				return fmt.Errorf("cbtree: level %d high keys not ascending", level)
			}
		}
		if n.right == nil && n.hasHigh {
			return fmt.Errorf("cbtree: rightmost level-%d chain node has finite high key", level)
		}
		prev = n
	}
	return nil
}
