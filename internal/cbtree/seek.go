package cbtree

// SearchGE returns the smallest stored key >= key and its value
// (an ordered "seek"). ok is false when no such key exists.
func (t *Tree) SearchGE(key int64) (k int64, v uint64, ok bool) {
	if t.alg == OLC {
		return t.olcSearchGE(key)
	}
	var n *node
	if t.alg == LinkType {
		leaf, _ := t.linkDescend(key, false)
		leaf.mu.RLock()
		n = t.moveRightR(leaf, key)
	} else {
		n = t.lockRoot(alwaysRead)
		for !n.isLeaf() {
			child := n.children[n.childIndex(key)]
			child.mu.RLock()
			n.mu.RUnlock()
			n = child
		}
	}
	// Walk the leaf chain until a qualifying key appears (lazily emptied
	// leaves may need skipping).
	for {
		i, _ := n.keyIndex(key)
		if i < len(n.keys) {
			k, v = n.keys[i], n.vals[i]
			n.mu.RUnlock()
			return k, v, true
		}
		next := n.right
		if next == nil {
			n.mu.RUnlock()
			return 0, 0, false
		}
		next.mu.RLock()
		n.mu.RUnlock()
		n = next
	}
}

// Min returns the smallest key in the tree.
func (t *Tree) Min() (k int64, v uint64, ok bool) {
	return t.SearchGE(-1 << 63)
}

// Max returns the largest key in the tree. The fast path scans the
// rightmost spine and the tail of the leaf chain; if lazily-emptied
// trailing leaves hide the maximum, a lock-coupled right-to-left descent
// finds the rightmost non-empty leaf.
func (t *Tree) Max() (k int64, v uint64, ok bool) {
	n := t.lockRoot(alwaysRead)
	for !n.isLeaf() {
		child := n.children[len(n.children)-1]
		child.mu.RLock()
		n.mu.RUnlock()
		n = child
	}
	// In LinkType mode a split may have pushed keys past the rightmost
	// routed child; chase the links to the true end of the chain, keeping
	// the last non-empty leaf's maximum.
	found := false
	for {
		if len(n.keys) > 0 {
			k, v = n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
			found = true
		}
		next := n.right
		if next == nil {
			n.mu.RUnlock()
			if found {
				return k, v, true
			}
			// Trailing leaves were all empty: fall back to the DFS.
			root := t.lockRoot(alwaysRead)
			return t.maxDFS(root)
		}
		next.mu.RLock()
		n.mu.RUnlock()
		n = next
	}
}

// maxDFS explores children right-to-left under shared-lock coupling
// (ancestors stay locked while a subtree is explored — the same top-down
// order every protocol uses, so it cannot deadlock) and returns the
// largest key found. n is R-locked on entry and released before return.
func (t *Tree) maxDFS(n *node) (int64, uint64, bool) {
	defer n.mu.RUnlock()
	if n.isLeaf() {
		if len(n.keys) > 0 {
			return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
		}
		return 0, 0, false
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		c := n.children[i]
		c.mu.RLock()
		if k, v, ok := t.maxDFS(c); ok {
			return k, v, true
		}
	}
	return 0, 0, false
}
