package cbtree

import "btreeperf/internal/lock"

// Optimistic lock-coupling (OLC): the framework's fourth algorithm.
//
// Writers run the Link-type protocol (one W lock at a time, half-splits
// repaired upward through right links) but enter every critical section
// through LockV/UnlockV, so the node's version word is odd exactly while
// it is being written, and republish the node's immutable snapshot
// before releasing. Readers descend with no locks at all: at each node
// they sample the version (ReadBegin), load the snapshot, route through
// it — following right links latch-free — and re-validate the version
// before trusting the routing decision (this also validates the parent
// link: the child pointer was read from a snapshot the parent's version
// still vouches for). A failed validation restarts the descent from the
// root; after olcMaxAttempts failed descents the operation falls back to
// the locked Link-type path, whose R locks queue behind writers in the
// ordinary FCFS way.
//
// Because snapshots are immutable and loaded through one atomic pointer,
// a validated read can never be torn; the version protocol adds recency
// (no writer overlapped the read) and is the restart process the
// analytical model in internal/core prices.

// olcMaxAttempts bounds latch-free descent attempts before an operation
// falls back to the locked path. Keep in sync with core.OLCMaxAttempts
// and the simulator's olcMaxAttempts: the analysis truncates its restart
// geometric series at the same depth.
const olcMaxAttempts = 3

// noteRestart counts one failed snapshot validation at the given level,
// streaming it into the level's probe when the sink understands
// latch-free telemetry.
func (t *Tree) noteRestart(level int) {
	t.readRestarts.Add(1)
	if probe := t.probe; probe != nil {
		if vp, ok := probe(level).(lock.VersionProbe); ok {
			vp.ReadRestart()
		}
	}
}

// noteFallback counts one descent that exhausted its retry budget.
// Fallbacks are charged to the leaf level: that is where the locked
// re-descent will queue.
func (t *Tree) noteFallback() {
	t.readFallbacks.Add(1)
	if probe := t.probe; probe != nil {
		if vp, ok := probe(1).(lock.VersionProbe); ok {
			vp.ReadFallback()
		}
	}
}

// olcSearch is the latch-free point lookup with bounded retry.
func (t *Tree) olcSearch(key int64) (uint64, bool) {
	for attempt := 0; attempt < olcMaxAttempts; attempt++ {
		if v, ok, done := t.olcTrySearch(key); done {
			return v, ok
		}
	}
	t.noteFallback()
	// The locked fallback must be right-link aware: a lock-coupled
	// descent with no moveRight would miss keys mid-half-split, so the
	// Link-type locked read is the correct pessimistic twin.
	return t.linkSearch(key)
}

// olcTrySearch makes one latch-free descent attempt. done is false when
// a validation failed and the caller should restart from the root.
func (t *Tree) olcTrySearch(key int64) (val uint64, ok, done bool) {
	n := t.root.Load()
	for {
		v, stable := n.mu.ReadBegin()
		if !stable {
			t.noteRestart(n.level)
			return 0, false, false
		}
		s := n.snap.Load()
		if !s.covers(key) {
			r := s.right
			if !n.mu.Validate(v) {
				t.noteRestart(n.level)
				return 0, false, false
			}
			t.crossings.Add(1)
			n = r
			continue
		}
		if n.level == 1 {
			i, found := s.keyIndex(key)
			var vv uint64
			if found {
				vv = s.vals[i]
			}
			if !n.mu.Validate(v) {
				t.noteRestart(1)
				return 0, false, false
			}
			return vv, found, true
		}
		child := s.children[s.childIndex(key)]
		if !n.mu.Validate(v) {
			t.noteRestart(n.level)
			return 0, false, false
		}
		n = child
	}
}

// olcDescendLeaf finds the (unlocked) leaf candidate for key latch-free,
// optionally collecting the ancestor stack for split repair, falling
// back to the locked descent after olcMaxAttempts failed attempts.
func (t *Tree) olcDescendLeaf(key int64, wantStack bool) (*node, []*node) {
	var stack []*node
	for attempt := 0; attempt < olcMaxAttempts; attempt++ {
		stack = stack[:0]
		n := t.root.Load()
		ok := true
		for ok && n.level > 1 {
			v, stable := n.mu.ReadBegin()
			if !stable {
				t.noteRestart(n.level)
				ok = false
				break
			}
			s := n.snap.Load()
			if !s.covers(key) {
				r := s.right
				if !n.mu.Validate(v) {
					t.noteRestart(n.level)
					ok = false
					break
				}
				t.crossings.Add(1)
				n = r
				continue
			}
			child := s.children[s.childIndex(key)]
			if !n.mu.Validate(v) {
				t.noteRestart(n.level)
				ok = false
				break
			}
			if wantStack {
				stack = append(stack, n)
			}
			n = child
		}
		if ok {
			return n, stack
		}
	}
	t.noteFallback()
	return t.linkDescend(key, wantStack)
}

// olcView returns a consistent immutable image of n: a validated
// latch-free snapshot after bounded per-node retries, else (counting a
// fallback) the current snapshot read under the node's R lock — with the
// R lock held no writer is active, so the stored snapshot is exact.
// Leaf-chain walkers (Range, SearchGE) use this instead of restarting
// from the root, which would lose their position.
func (t *Tree) olcView(n *node) *nodeSnap {
	for attempt := 0; attempt < olcMaxAttempts; attempt++ {
		v, stable := n.mu.ReadBegin()
		if stable {
			s := n.snap.Load()
			if n.mu.Validate(v) {
				return s
			}
		}
		t.noteRestart(n.level)
	}
	t.noteFallback()
	n.mu.RLock()
	s := n.snap.Load()
	n.mu.RUnlock()
	return s
}

// olcRange is the latch-free scan: descend to the leaf covering lo, then
// emit from validated leaf snapshots, chaining through their right
// pointers. Each leaf is observed atomically (an immutable image), the
// same per-leaf consistency the locked scan provides.
func (t *Tree) olcRange(lo, hi int64, fn func(key int64, val uint64) bool) {
	n, _ := t.olcDescendLeaf(lo, false)
	for n != nil {
		s := t.olcView(n)
		for i, k := range s.keys {
			if k < lo {
				continue
			}
			if k > hi || !fn(k, s.vals[i]) {
				return
			}
		}
		n = s.right
	}
}

// olcSearchGE is the latch-free seek: first stored key >= key.
func (t *Tree) olcSearchGE(key int64) (k int64, v uint64, ok bool) {
	n, _ := t.olcDescendLeaf(key, false)
	for n != nil {
		s := t.olcView(n)
		if i, _ := s.keyIndex(key); i < len(s.keys) {
			return s.keys[i], s.vals[i], true
		}
		n = s.right
	}
	return 0, 0, false
}

// ---------------------------------------------------------------------------
// Writes: the Link-type protocol under versioned locks, republishing the
// snapshot after every mutation.

// olcMoveRightW follows right links while key lies beyond the node's
// high key, holding one versioned W lock at a time. Releasing a node we
// did not mutate still bumps its version (UnlockV) — a conservative
// invalidation, never an unsafe one.
func (t *Tree) olcMoveRightW(n *node, key int64) *node {
	for !n.covers(key) {
		r := n.right
		n.mu.UnlockV()
		t.crossings.Add(1)
		r.mu.LockV()
		n = r
	}
	return n
}

func (t *Tree) olcInsert(key int64, val uint64) bool {
	n, stack := t.olcDescendLeaf(key, true)
	n.mu.LockV()
	n = t.olcMoveRightW(n, key)
	if i, ok := n.keyIndex(key); ok {
		n.vals[i] = val
		n.publish()
		n.mu.UnlockV()
		return false
	}
	i, _ := n.keyIndex(key)
	n.keys = insertAt(n.keys, i, key)
	n.vals = insertAt(n.vals, i, val)
	t.size.Add(1)

	// Half-split repair, as linkInsert: split under the node's own lock,
	// release, then lock the parent to install the new pointer. The new
	// sibling's snapshot is published before the split node's truncated
	// one — a reader can only reach the sibling through a snapshot
	// published after it.
	for n.items() > t.cap {
		sib, sep := t.split(n)
		sib.publish()
		if len(stack) == 0 && t.root.Load() == n {
			n.publish()
			t.growRoot(n, sep, sib)
			break
		}
		level := n.level + 1
		n.publish()
		n.mu.UnlockV()
		var parent *node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			// The root grew since our descent; find the parent level
			// under locks (rare, and correctness-critical).
			parent = t.linkLocate(level, sep)
		}
		parent.mu.LockV()
		parent = t.olcMoveRightW(parent, sep)
		parent.addChild(sep, sib)
		n = parent
	}
	n.publish()
	n.mu.UnlockV()
	return true
}

func (t *Tree) olcDelete(key int64) bool {
	n, _ := t.olcDescendLeaf(key, false)
	n.mu.LockV()
	n = t.olcMoveRightW(n, key)
	ok := t.leafRemove(n, key)
	if ok {
		n.publish()
	}
	n.mu.UnlockV()
	return ok
}
