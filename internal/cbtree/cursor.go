package cbtree

// Cursor iterates keys in ascending order. It is seek-based: each Next
// re-locates the successor of the last returned key, so it holds no locks
// between calls and stays valid under arbitrary concurrent updates
// (observing each key that exists for the whole iteration exactly once).
// A Cursor must not be shared between goroutines.
type Cursor struct {
	t       *Tree
	nextKey int64
	done    bool

	// Current position, valid after a true Next.
	Key int64
	Val uint64
}

// Cursor returns a cursor positioned before the first key >= start.
func (t *Tree) Cursor(start int64) *Cursor {
	return &Cursor{t: t, nextKey: start}
}

// Next advances to the next key, reporting false at the end.
func (c *Cursor) Next() bool {
	if c.done {
		return false
	}
	k, v, ok := c.t.SearchGE(c.nextKey)
	if !ok {
		c.done = true
		return false
	}
	c.Key, c.Val = k, v
	if k == 1<<63-1 {
		c.done = true
	} else {
		c.nextKey = k + 1
	}
	return true
}
