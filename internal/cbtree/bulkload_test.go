package cbtree

import (
	"sync"
	"testing"
	"testing/quick"

	"btreeperf/internal/xrand"
)

func sortedKeys(n int) ([]int64, []uint64) {
	keys := make([]int64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = int64(i * 3)
		vals[i] = uint64(i)
	}
	return keys, vals
}

func TestBulkLoadBasic(t *testing.T) {
	keys, vals := sortedKeys(10000)
	tr, err := BulkLoad(32, LinkType, keys, vals, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok := tr.Search(k)
		if !ok || v != vals[i] {
			t.Fatalf("Search(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Search(1); ok {
		t.Fatal("phantom key")
	}
	// Ordered full scan.
	last := int64(-1)
	n := 0
	tr.Range(-1<<62, 1<<62, func(k int64, v uint64) bool {
		if k <= last {
			t.Fatalf("scan out of order at %d", k)
		}
		last = k
		n++
		return true
	})
	if n != len(keys) {
		t.Fatalf("scan saw %d", n)
	}
}

func TestBulkLoadEmptyAndSmall(t *testing.T) {
	tr, err := BulkLoad(8, Optimistic, nil, nil, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty load")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr2, err := BulkLoad(8, Optimistic, []int64{5}, []uint64{50}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tr2.Search(5); !ok || v != 50 {
		t.Fatal("single-key load")
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(8, LinkType, []int64{1, 2}, []uint64{1}, 0.9); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BulkLoad(8, LinkType, []int64{2, 1}, []uint64{1, 2}, 0.9); err == nil {
		t.Error("unsorted accepted")
	}
	if _, err := BulkLoad(8, LinkType, []int64{1, 1}, []uint64{1, 2}, 0.9); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := BulkLoad(8, LinkType, []int64{1}, []uint64{1}, 0); err == nil {
		t.Error("zero fill accepted")
	}
	if _, err := BulkLoad(8, LinkType, []int64{1}, []uint64{1}, 1.5); err == nil {
		t.Error("fill > 1 accepted")
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	keys, vals := sortedKeys(10000)
	half, err := BulkLoad(100, LinkType, keys, vals, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BulkLoad(100, LinkType, keys, vals, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Lower fill → more nodes → possibly taller tree; both valid.
	if err := half.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := full.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A 1.0-fill leaf holds cap items: inserting into it must split, not
	// overflow.
	full.Insert(1, 1)
	if err := full.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadedTreeSupportsConcurrency(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			keys, vals := sortedKeys(20000)
			tr, err := BulkLoad(16, alg, keys, vals, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					src := xrand.New(uint64(w) + 3)
					for i := 0; i < 4000; i++ {
						k := src.Int63n(70000)
						switch src.IntN(3) {
						case 0:
							tr.Insert(k, uint64(k))
						case 1:
							tr.Delete(k)
						case 2:
							tr.Search(k)
						}
					}
				}(w)
			}
			wg.Wait()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: a bulk-loaded tree is indistinguishable (contents-wise) from
// one built by sequential inserts.
func TestBulkLoadEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed uint64, nRaw uint16, capRaw, fillRaw uint8) bool {
		n := int(nRaw%2000) + 1
		cap := int(capRaw%60) + 4
		fill := 0.3 + 0.7*float64(fillRaw)/255
		src := xrand.New(seed)
		seen := map[int64]bool{}
		var keys []int64
		for len(keys) < n {
			k := src.Int63n(int64(n) * 10)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sortInt64s(keys)
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(keys[i]) * 2
		}
		bulk, err := BulkLoad(cap, LinkType, keys, vals, fill)
		if err != nil {
			return false
		}
		if bulk.CheckInvariants() != nil || bulk.Len() != len(keys) {
			return false
		}
		seq := New(cap, LinkType)
		for i, k := range keys {
			seq.Insert(k, vals[i])
		}
		for i, k := range keys {
			bv, bok := bulk.Search(k)
			sv, sok := seq.Search(k)
			if !bok || !sok || bv != sv || bv != vals[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
