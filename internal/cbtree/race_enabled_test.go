//go:build race

package cbtree

// raceEnabled reports whether this test binary was built with -race.
// Allocation-count assertions are skipped under the race detector: its
// instrumentation allocates on its own schedule, so alloc counts are
// only meaningful in a plain build.
const raceEnabled = true
