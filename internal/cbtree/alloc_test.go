package cbtree

import "testing"

// Allocation regression tests for the OLC read path. The whole point of
// version-validated latch-free reads is a cheaper steady-state get: a
// descent that allocates would hand that win straight back to the
// garbage collector. Both the point lookup and the leaf-chain scan must
// stay at zero allocations per operation, including their restart
// bookkeeping.

func olcAllocTree(t *testing.T, n int) *Tree {
	t.Helper()
	keys := make([]int64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = int64(i) * 3
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(16, OLC, keys, vals, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestOLCSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr := olcAllocTree(t, 10000)
	key := int64(0)
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := tr.Search(key); !ok {
			t.Fatalf("key %d missing", key)
		}
		key = (key + 3003) % 30000
	}); n != 0 {
		t.Errorf("OLC Search: %v allocs/op, want 0", n)
	}
}

func TestOLCRangeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr := olcAllocTree(t, 10000)
	lo := int64(0)
	count := 0
	fn := func(k int64, v uint64) bool {
		count++
		return true
	}
	if n := testing.AllocsPerRun(200, func() {
		count = 0
		tr.Range(lo, lo+300, fn)
		if count == 0 {
			t.Fatalf("empty scan at lo=%d", lo)
		}
		lo = (lo + 2997) % 29000
	}); n != 0 {
		t.Errorf("OLC Range: %v allocs/op, want 0", n)
	}
}

func TestOLCSearchGEAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr := olcAllocTree(t, 10000)
	key := int64(1)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, ok := tr.SearchGE(key); !ok {
			t.Fatalf("no key >= %d", key)
		}
		key = (key + 3003) % 29000
	}); n != 0 {
		t.Errorf("OLC SearchGE: %v allocs/op, want 0", n)
	}
}
