package cbtree

import (
	"sync"
	"testing"

	"btreeperf/internal/xrand"
)

func TestCursorFullScan(t *testing.T) {
	tr := New(6, LinkType)
	for i := int64(0); i < 500; i++ {
		tr.Insert(i*3, uint64(i))
	}
	c := tr.Cursor(-1 << 62)
	var got []int64
	for c.Next() {
		got = append(got, c.Key)
	}
	if len(got) != 500 {
		t.Fatalf("cursor saw %d keys", len(got))
	}
	for i, k := range got {
		if k != int64(i*3) {
			t.Fatalf("key %d = %d", i, k)
		}
	}
	if c.Next() {
		t.Fatal("exhausted cursor advanced")
	}
}

func TestCursorStartMidway(t *testing.T) {
	tr := New(6, Optimistic)
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, uint64(i))
	}
	c := tr.Cursor(90)
	n := 0
	for c.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("saw %d keys from 90", n)
	}
}

func TestCursorSeesStableKeysUnderChurn(t *testing.T) {
	tr := New(8, LinkType)
	for i := int64(0); i < 2000; i += 2 {
		tr.Insert(i, uint64(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := xrand.New(9)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := src.Int63n(1000)*2 + 1
			if src.Bernoulli(0.5) {
				tr.Insert(k, 1)
			} else {
				tr.Delete(k)
			}
		}
	}()
	for scan := 0; scan < 30; scan++ {
		c := tr.Cursor(0)
		evens := 0
		last := int64(-1)
		for c.Next() {
			if c.Key <= last {
				t.Fatalf("cursor went backwards: %d after %d", c.Key, last)
			}
			last = c.Key
			if c.Key%2 == 0 && c.Key < 2000 {
				evens++
			}
		}
		if evens != 1000 {
			t.Fatalf("scan %d saw %d stable even keys", scan, evens)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCursorBoundaryKeys(t *testing.T) {
	tr := New(4, LinkType)
	maxKey := int64(1<<63 - 1)
	tr.Insert(maxKey, 1)
	tr.Insert(0, 2)
	c := tr.Cursor(-1 << 63)
	var got []int64
	for c.Next() {
		got = append(got, c.Key)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != maxKey {
		t.Fatalf("boundary scan = %v", got)
	}
}
