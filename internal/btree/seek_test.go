package btree

import (
	"testing"
	"testing/quick"

	"btreeperf/internal/xrand"
)

func TestSeekBasics(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	if _, _, ok := tr.SearchGE(0); ok {
		t.Fatal("SearchGE on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for i := int64(0); i < 100; i++ {
		tr.Insert(i*7, uint64(i))
	}
	if k, _, ok := tr.SearchGE(8); !ok || k != 14 {
		t.Fatalf("SearchGE(8) = %d,%v", k, ok)
	}
	if k, _, ok := tr.SearchGE(14); !ok || k != 14 {
		t.Fatalf("SearchGE(14) = %d,%v", k, ok)
	}
	if _, _, ok := tr.SearchGE(694); ok {
		t.Fatal("SearchGE past the end")
	}
	if k, _, ok := tr.Min(); !ok || k != 0 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 693 {
		t.Fatalf("Max = %d,%v", k, ok)
	}
}

// Property: SearchGE matches a linear scan of the surviving key set after
// arbitrary insert/delete interleavings.
func TestSeekAgainstModel(t *testing.T) {
	err := quick.Check(func(seed uint64, probes uint8) bool {
		src := xrand.New(seed)
		tr := New(5, MergeAtEmpty)
		live := map[int64]bool{}
		for i := 0; i < 400; i++ {
			k := src.Int63n(500)
			if src.Bernoulli(0.7) {
				tr.Insert(k, uint64(k))
				live[k] = true
			} else {
				tr.Delete(k)
				delete(live, k)
			}
		}
		for p := 0; p < int(probes%32)+1; p++ {
			probe := src.Int63n(600)
			wantK, wantOK := int64(0), false
			for k := range live {
				if k >= probe && (!wantOK || k < wantK) {
					wantK, wantOK = k, true
				}
			}
			gotK, gotV, gotOK := tr.SearchGE(probe)
			if gotOK != wantOK || (gotOK && (gotK != wantK || gotV != uint64(wantK))) {
				return false
			}
		}
		// Min/Max agree with the model extremes.
		if len(live) == 0 {
			_, _, ok := tr.Min()
			return !ok
		}
		lo, hi := int64(1<<62), int64(-1<<62)
		for k := range live {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		mink, _, okMin := tr.Min()
		maxk, _, okMax := tr.Max()
		return okMin && okMax && mink == lo && maxk == hi
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}
