package btree

import (
	"fmt"
	"math"
)

// CheckInvariants validates the full structural health of the tree and
// returns the first violation found, or nil. It verifies:
//
//   - level consistency (children are exactly one level below their parent,
//     all leaves at level 1, root at level Height()),
//   - key ordering within nodes and against the routing bounds,
//   - occupancy limits (<= cap everywhere; >= minItems for merge-at-half
//     non-root nodes),
//   - high keys matching the routing bounds,
//   - sibling links forming a complete, ordered, doubly-linked chain on
//     every level,
//   - the stored size matching the actual number of leaf keys.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("nil root")
	}
	if t.root.level != t.height {
		return fmt.Errorf("root level %d != height %d", t.root.level, t.height)
	}
	leftmost := make(map[int]*Node) // first node visited per level
	count := 0
	if err := t.checkNode(t.root, math.MinInt64, math.MaxInt64, true, leftmost, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d keys in leaves", t.size, count)
	}
	for level := 1; level <= t.height; level++ {
		if err := t.checkChain(leftmost[level], level); err != nil {
			return err
		}
	}
	return nil
}

// checkNode recursively validates node n whose routed key range is
// [lo, hi); hiInf marks hi as +infinity.
func (t *Tree) checkNode(n *Node, lo, hi int64, hiInf bool, leftmost map[int]*Node, count *int) error {
	if _, seen := leftmost[n.level]; !seen {
		leftmost[n.level] = n
	}
	if n.Items() > t.cap {
		return fmt.Errorf("level %d node over capacity: %d > %d", n.level, n.Items(), t.cap)
	}
	if t.policy == MergeAtHalf && n != t.root && n.Items() < t.minItems() {
		return fmt.Errorf("level %d node underfull: %d < %d", n.level, n.Items(), t.minItems())
	}
	// High key must equal the routed upper bound.
	if hiInf {
		if n.hasHigh {
			return fmt.Errorf("level %d rightmost node has finite high key %d", n.level, n.high)
		}
	} else {
		if !n.hasHigh || n.high != hi {
			return fmt.Errorf("level %d node high key %v (has=%v), want %d", n.level, n.high, n.hasHigh, hi)
		}
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return fmt.Errorf("level %d keys out of order: %d >= %d", n.level, n.keys[i-1], n.keys[i])
		}
	}
	if n.IsLeaf() {
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("leaf key/val length mismatch: %d vs %d", len(n.keys), len(n.vals))
		}
		for _, k := range n.keys {
			if k < lo || (!hiInf && k >= hi) {
				return fmt.Errorf("leaf key %d outside routed range [%d, %d)", k, lo, hi)
			}
		}
		*count += len(n.keys)
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("level %d internal node has %d children, %d routers", n.level, len(n.children), len(n.keys))
	}
	if len(n.children) == 0 {
		return fmt.Errorf("level %d internal node with no children", n.level)
	}
	for _, k := range n.keys {
		if k < lo || (!hiInf && k >= hi) {
			return fmt.Errorf("router %d outside range [%d, %d)", k, lo, hi)
		}
	}
	for i, c := range n.children {
		if c.level != n.level-1 {
			return fmt.Errorf("child level %d under level %d node", c.level, n.level)
		}
		clo := lo
		if i > 0 {
			clo = n.keys[i-1]
		}
		chi, chiInf := hi, hiInf
		if i < len(n.keys) {
			chi, chiInf = n.keys[i], false
		}
		if err := t.checkNode(c, clo, chi, chiInf, leftmost, count); err != nil {
			return err
		}
	}
	return nil
}

// checkChain walks the sibling links of one level, verifying ordering,
// back-links, and that high keys ascend and terminate at +infinity.
func (t *Tree) checkChain(first *Node, level int) error {
	if first == nil {
		return fmt.Errorf("level %d missing from traversal", level)
	}
	if first.left != nil {
		return fmt.Errorf("level %d leftmost node has a left link", level)
	}
	prev := (*Node)(nil)
	for n := first; n != nil; n = n.right {
		if n.level != level {
			return fmt.Errorf("level %d chain reached level %d node", level, n.level)
		}
		if n.left != prev {
			return fmt.Errorf("level %d broken back-link", level)
		}
		if prev != nil {
			if !prev.hasHigh {
				return fmt.Errorf("level %d interior node with infinite high key", level)
			}
			if n.hasHigh && n.high <= prev.high {
				return fmt.Errorf("level %d high keys not ascending: %d <= %d", level, n.high, prev.high)
			}
		}
		if n.right == nil && n.hasHigh {
			return fmt.Errorf("level %d rightmost chain node has finite high key", level)
		}
		prev = n
	}
	return nil
}

// LevelStats describes one level of the tree.
type LevelStats struct {
	Level     int
	Nodes     int
	Items     int     // total items (keys for leaves, children for internal)
	MeanItems float64 // average occupancy = paper's E(level) fanout
	Util      float64 // occupancy / capacity
}

// StructureStats returns per-level occupancy statistics, leaves first.
// These are compared against the analytical shape model of internal/shape.
func (t *Tree) StructureStats() []LevelStats {
	counts := make([]LevelStats, t.height)
	var walk func(n *Node)
	walk = func(n *Node) {
		ls := &counts[n.level-1]
		ls.Level = n.level
		ls.Nodes++
		ls.Items += n.Items()
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	for i := range counts {
		if counts[i].Nodes > 0 {
			counts[i].MeanItems = float64(counts[i].Items) / float64(counts[i].Nodes)
			counts[i].Util = counts[i].MeanItems / float64(t.cap)
		}
	}
	return counts
}

// RootFanout returns the number of children of the root (or the number of
// keys if the root is a leaf) — the paper's E(h).
func (t *Tree) RootFanout() int { return t.root.Items() }
